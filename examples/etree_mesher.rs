//! Generate a wavelength-adaptive LA-basin mesh *out of core*: the octree
//! lives in a disk B-tree, so mesh size is limited by disk, not RAM — the
//! paper generated 1.2-billion-element meshes this way on a desktop.
//!
//! ```bash
//! cargo run --release --example etree_mesher
//! ```

use quake::etree::{DiskStore, EtreePipeline, MaterialRec, PipelineStats};
use quake::model::{LaBasinModel, MaterialModel};
use quake::octree::Octant;

fn main() {
    let extent = 40_000.0;
    let model = LaBasinModel::scaled(250.0, extent);
    let (fmax, ppw, max_level) = (0.15, 10.0, 7);

    let dir = std::env::temp_dir().join(format!("quake-etree-example-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let mut store = DiskStore::create(&dir.join("octants.btree"), 512).unwrap();

    let refine = |o: &Octant| {
        if o.level < 3 {
            return true;
        }
        if o.level >= max_level {
            return false;
        }
        let c = o.corner_unit();
        let s = o.size_unit();
        let lo = [c[0] * extent, c[1] * extent, c[2] * extent];
        let hi = [(c[0] + s) * extent, (c[1] + s) * extent, (c[2] + s) * extent];
        s * extent > model.min_vs_in_box(lo, hi) / (ppw * fmax)
    };
    let material = |o: &Octant| {
        let c = o.center_unit();
        let m = model.sample(c[0] * extent, c[1] * extent, c[2] * extent);
        MaterialRec { vp: m.vp, vs: m.vs, rho: m.rho }
    };

    let pipeline = EtreePipeline::default();
    let mut stats = PipelineStats::default();
    pipeline.construct(&mut store, refine, material, &mut stats).unwrap();
    println!("construct: {} octants in {:.2} s", stats.constructed_octants, stats.construct_secs);
    pipeline.balance(&mut store, material, &mut stats).unwrap();
    println!(
        "balance:   {} octants in {:.2} s (boundary queue {})",
        stats.after_balance_octants, stats.balance_secs, stats.boundary_queue_len
    );
    let db = pipeline.transform(&mut store, &dir, &mut stats).unwrap();
    println!(
        "transform: {} elements, {} nodes ({} hanging) in {:.2} s",
        db.n_elements, db.n_nodes, db.n_hanging, stats.transform_secs
    );
    store.flush().unwrap();
    let io = store.io_stats();
    println!(
        "pager: {} disk reads / {} writes, cache hit rate {:.1}%",
        io.disk_reads,
        io.disk_writes,
        100.0 * io.cache_hits as f64 / (io.cache_hits + io.cache_misses).max(1) as f64
    );

    // Stream the first few element records back from the database.
    println!("\nfirst elements of the on-disk element DB:");
    for rec in db.read_elements().unwrap().take(5) {
        let e = rec.unwrap();
        println!(
            "  level {:2}, h = {:6.0} m, vs = {:4.0} m/s, nodes {:?}",
            e.octant.level,
            e.octant.size_unit() * extent,
            e.material.vs,
            &e.nodes[..4]
        );
    }
    std::fs::remove_dir_all(dir).ok();
}
