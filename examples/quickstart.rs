//! Quickstart: mesh a layered halfspace adaptively, shake it with a small
//! strike-slip earthquake, and look at the surface seismograms.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use quake::mesh::{mesh_from_model, MeshStats, MeshingParams};
use quake::model::{layer_over_halfspace, DoubleCouple, Material, PointSource, SlipFunction};
use quake::solver::{assemble_point_sources, ElasticConfig, ElasticSolver};

fn main() {
    // A 10 km cube: 600 m/s sediments over 2800 m/s bedrock.
    let soft = Material::new(1500.0, 600.0, 1900.0);
    let stiff = Material::new(5000.0, 2800.0, 2600.0);
    let model = layer_over_halfspace(1_500.0, soft, stiff);

    // Mesh to resolve 0.5 Hz with 10 points per wavelength: the mesher
    // refines the soft layer automatically.
    let mut params = MeshingParams::new(10_000.0, 0.5);
    params.max_level = 7;
    let (tree, mesh) = mesh_from_model(&params, &model);
    println!("{}", MeshStats::compute(&mesh).report());

    // A magnitude ~5 strike-slip point source at 4 km depth.
    let source = PointSource {
        position: [5_000.0, 5_000.0, 4_000.0],
        moment: DoubleCouple::moment_tensor(
            30f64.to_radians(),
            80f64.to_radians(),
            0.0,
            3.2e16, // ~Mw 5.0
        ),
        slip: SlipFunction::new(0.5, 0.8, 1.0),
    };
    let sources = assemble_point_sources(&mesh, &tree, &[source]);

    // Three surface stations at increasing epicentral distance.
    let stations = [[5_500.0, 5_000.0, 0.0], [7_000.0, 5_500.0, 0.0], [9_000.0, 7_000.0, 0.0]];
    let receivers: Vec<u32> = stations.iter().map(|&p| mesh.nearest_node(p)).collect();

    // 8 seconds of shaking, free surface on top, absorbing elsewhere.
    let solver = ElasticSolver::new(&mesh, &ElasticConfig::new(8.0));
    println!("dt = {:.4} s, {} steps", solver.dt, solver.n_steps);
    let run = solver.run(&sources, &receivers, None);

    for (i, seis) in run.seismograms.iter().enumerate() {
        let pgv: f64 = (0..3)
            .map(|c| seis.velocity(c).iter().fold(0.0f64, |m, v| m.max(v.abs())))
            .fold(0.0, f64::max);
        println!(
            "station {} at {:?} m: peak displacement {:.2e} m, PGV {:.2e} m/s",
            i,
            stations[i],
            (0..3).map(|c| seis.peak(c)).fold(0.0f64, f64::max),
            pgv
        );
    }
    println!(
        "solved {} ODEs x {} steps at {:.0} Mflop/s",
        3 * mesh.n_nodes(),
        run.n_steps,
        run.flops as f64 / run.wall_secs / 1e6
    );
}
