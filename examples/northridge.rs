//! A scaled Northridge-1994 scenario in the synthetic LA basin: adaptive
//! octree meshing of soft sedimentary bowls, an extended thrust rupture
//! with a radial rupture front, and basin-vs-bedrock station comparison.
//!
//! ```bash
//! cargo run --release --example northridge
//! ```

use quake::core::{northridge_scenario, run_forward};

fn main() {
    // 20 km box, 0.5 Hz, 300 m/s sediment floor, 12 s of shaking.
    let (model, mut scenario) = northridge_scenario(20_000.0, 0.5, 300.0, 12.0, 6);
    scenario.meshing.max_level = 7;
    println!(
        "fault: strike {:.0} deg, dip {:.0} deg, rake {:.0} deg, M0 {:.2e} N m",
        scenario.fault.strike.to_degrees(),
        scenario.fault.dip.to_degrees(),
        scenario.fault.rake.to_degrees(),
        scenario.fault.total_moment
    );
    let out = run_forward(&model, &scenario);
    print!("{}", out.mesh_stats.report());
    println!(
        "sustained {:.0} Mflop/s over {} steps ({:.1} s wall)",
        out.result.flops as f64 / out.result.wall_secs / 1e6,
        out.result.n_steps,
        out.result.wall_secs
    );
    println!("\nstation | position (km)      | PGD (m)   | PGV (m/s)");
    for (i, seis) in out.result.seismograms.iter().enumerate() {
        let p = scenario.receivers[i];
        let pgd = (0..3).map(|c| seis.peak(c)).fold(0.0f64, f64::max);
        let pgv: f64 = (0..3)
            .map(|c| seis.velocity(c).iter().fold(0.0f64, |m, v| m.max(v.abs())))
            .fold(0.0, f64::max);
        println!(
            "{:7} | ({:5.1}, {:5.1}) | {:.3e} | {:.3e}",
            i,
            p[0] / 1000.0,
            p[1] / 1000.0,
            pgd,
            pgv
        );
    }
    println!(
        "\n(stations over the sedimentary bowls show amplified, longer shaking\n\
         than bedrock sites — the basin effect the paper resolves at 1 Hz)"
    );
}
