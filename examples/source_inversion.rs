//! Recover an earthquake's rupture history — delay time, rise time and
//! slip along the fault — from surface records (a small Fig 3.3).
//!
//! ```bash
//! cargo run --release --example source_inversion
//! ```

use quake::core::source_scenario;
use quake::inverse::{invert_source, GnConfig, SourceInversionConfig};

fn main() {
    let sc = source_scenario(20, 12, 250, 16, 0.0, 9);
    let ns = sc.fault_true.n_segments();
    println!("fault: {ns} segments; {} receivers; unknowns: 3 x {ns}", sc.data.len());

    let cfg = SourceInversionConfig {
        gn: GnConfig { max_gn_iters: 40, grad_tol: 1e-8, ..GnConfig::default() },
        beta_delay: 1e-6,
        beta_rise: 1e-6,
        beta_amplitude: 1e-6,
        ..SourceInversionConfig::default()
    };
    let out = invert_source(
        &sc.solver,
        &sc.fault_true,
        &sc.mu,
        &sc.data,
        (&sc.initial.0, &sc.initial.1, &sc.initial.2),
        &cfg,
    );
    println!(
        "misfit {:.2e} -> {:.2e} in {} GN / {} CG iterations\n",
        out.stats.misfit_history.first().unwrap(),
        out.stats.misfit_history.last().unwrap(),
        out.stats.gn_iters,
        out.stats.cg_iters_total
    );
    println!("depth km |  T: got / true  | t0: got / true | u0: got / true");
    for (j, p) in sc.fault_true.params.iter().enumerate() {
        println!(
            "{:8.2} | {:6.3} / {:6.3} | {:5.2} / {:5.2}  | {:5.2} / {:5.2}",
            sc.fault_true.centers_z[j] / 1000.0,
            out.delays[j],
            p.delay,
            out.rises[j],
            p.rise,
            out.amplitudes[j],
            p.amplitude
        );
    }
}
