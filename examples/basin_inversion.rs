//! Invert for the shear-modulus structure of a 2-D basin cross-section
//! from noisy surface seismograms (a small Fig 3.2): multiscale
//! Gauss-Newton-CG with total-variation regularization.
//!
//! ```bash
//! cargo run --release --example basin_inversion
//! ```

use quake::core::material_scenario;
use quake::inverse::{invert_multiscale, GnConfig, MaterialMap, MultiscaleConfig};

fn main() {
    // 28 x 16 wave grid over the 35 x 20 km section, 32 receivers on the
    // free surface, 5% data noise.
    let sc = material_scenario(28, 16, 160, 32, 0.05, 42);
    let base = sc.mu_background[0];
    println!(
        "wave grid: {} elements; {} receivers; {} time steps; 5% noise",
        sc.mu_true.len(),
        sc.data.len(),
        sc.data[0].len()
    );

    let cfg = MultiscaleConfig {
        grids: vec![[2, 2, 1], [3, 3, 1], [5, 4, 1], [9, 6, 1]],
        domain: sc.domain,
        tv_eps: 0.02 * base / 2000.0,
        tv_beta: 1e-26,
        per_level: GnConfig {
            max_gn_iters: 12,
            max_cg_iters: 30,
            grad_tol: 1e-2,
            barrier: Some((0.05 * base, 1e-7)),
            ..GnConfig::default()
        },
        freq_schedule: None,
    };
    let forcing = sc.forcing();
    let (m, levels) = invert_multiscale(&sc.solver, &forcing, &sc.data, &sc.centers, base, &cfg);

    println!("\nlevel | GN iters | CG iters | final misfit");
    for l in &levels {
        println!(
            "{:>2}x{:<2} | {:>8} | {:>8} | {:.3e}",
            l.dims[0],
            l.dims[1],
            l.stats.gn_iters,
            l.stats.cg_iters_total,
            l.stats.misfit_history.last().copied().unwrap_or(0.0)
        );
    }

    // How close is the recovered shear velocity?
    let map = MaterialMap::new(&sc.centers, sc.domain, [9, 6, 1]);
    let mu_inv = map.interpolate(&m);
    let mut err = 0.0;
    let mut norm = 0.0;
    for (a, b) in mu_inv.iter().zip(&sc.mu_true) {
        let (va, vb) = ((a / sc.section.rho).sqrt(), (b / sc.section.rho).sqrt());
        err += (va - vb) * (va - vb);
        norm += vb * vb;
    }
    println!(
        "\nrecovered shear velocity: {:.1}% relative L2 error vs the target section",
        100.0 * (err / norm).sqrt()
    );
    println!("(run `cargo run --release -p quake-bench --bin fig3_2_material_inversion`\n for the full cascade with heatmaps and the 64-vs-16 receiver study)");
}
