//! # quake — terascale forward and inverse earthquake modeling
//!
//! A Rust reproduction of *"High Resolution Forward And Inverse Earthquake
//! Modeling on Terascale Computers"* (Akcelik et al., SC2003): octree-based
//! multiresolution hexahedral FEM wave propagation, the out-of-core *etree*
//! mesh generator, and adjoint-based Gauss-Newton-CG inversion for basin
//! material models and earthquake sources.
//!
//! This crate is a facade re-exporting the workspace crates:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`fem`] | `quake-fem` | element matrices, shape functions, quadrature |
//! | [`octree`] | `quake-octree` | linear octrees, balancing, adaptivity |
//! | [`etree`] | `quake-etree` | out-of-core octree B-tree + mesh pipeline |
//! | [`mesh`] | `quake-mesh` | hex meshes, hanging nodes, partitioning |
//! | [`model`] | `quake-model` | material + source models |
//! | [`parcomm`] | `quake-parcomm` | SPMD rank/communicator layer |
//! | [`machine`] | `quake-machine` | calibrated machine performance model |
//! | [`telemetry`] | `quake-telemetry` | spans/counters/NDJSON traces |
//! | [`solver`] | `quake-solver` | 3-D elastic/scalar explicit wave solvers |
//! | [`antiplane`] | `quake-antiplane` | 2-D SH forward/adjoint solvers |
//! | [`inverse`] | `quake-inverse` | Gauss-Newton-CG inversion framework |
//! | [`ckpt`] | `quake-ckpt` | checksummed checkpoint/restart snapshots |
//! | [`lint`] | `quake-lint` | std-only static analysis of the workspace |
//! | [`core`] | `quake-core` | end-to-end simulation/inversion drivers |
//! | [`serve`] | `quake-serve` | scenario-ensemble job engine + result cache |
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs`: build a layered basin model, mesh it
//! adaptively, run an earthquake, and look at the seismograms.

pub use quake_antiplane as antiplane;
pub use quake_ckpt as ckpt;
pub use quake_core as core;
pub use quake_etree as etree;
pub use quake_fem as fem;
pub use quake_inverse as inverse;
pub use quake_lint as lint;
pub use quake_machine as machine;
pub use quake_mesh as mesh;
pub use quake_model as model;
pub use quake_octree as octree;
pub use quake_parcomm as parcomm;
pub use quake_serve as serve;
pub use quake_solver as solver;
pub use quake_telemetry as telemetry;
