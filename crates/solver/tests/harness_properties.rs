//! Property tests for the canonical `SolverHarness` loop: hook-order
//! independence, panic safety of the checkpoint retention, and the
//! final-step pin against the frozen reference step.

use std::path::PathBuf;

use quake_ckpt::{CheckpointPolicy, CheckpointReader, CheckpointWriter, PeriodicSink};
use quake_mesh::hexmesh::{ElemMaterial, HexMesh};
use quake_octree::{BalanceMode, LinearOctree, MAX_LEVEL};
use quake_solver::harness::{HookCtx, StopReason};
use quake_solver::layout::{to_interleaved3, to_planar3};
use quake_solver::reference::reference_step;
use quake_solver::{
    CheckpointHook, ElasticConfig, ElasticSolver, NoExchange, ReceiverHook, RunConfig, RunOutcome,
    SolverHarness, SolverState, StepHook, TelemetryHook,
};

/// Small multiresolution mesh with hanging nodes — the production step shape.
fn build_mesh() -> HexMesh {
    let half = 1u32 << (MAX_LEVEL - 1);
    let mut tree = LinearOctree::build(|o| o.level < 2 || (o.level < 3 && o.x < half));
    tree.balance(BalanceMode::Full);
    HexMesh::from_octree(&tree, 8.0, |_, _, _, _| ElemMaterial { lambda: 2.0, mu: 1.0, rho: 1.0 })
}

fn pulse(mesh: &HexMesh) -> (Vec<f64>, Vec<f64>) {
    let n = mesh.n_nodes();
    let mut u = vec![0.0; 3 * n];
    let v = vec![0.0; 3 * n];
    for (i, c) in mesh.coords.iter().enumerate() {
        let r2 = (c[0] - 4.0).powi(2) + (c[1] - 4.0).powi(2) + (c[2] - 4.0).powi(2);
        u[3 * i + 1] = (-r2 / 2.0).exp();
    }
    mesh.interpolate_hanging(&mut u, 3);
    (u, v)
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("quake-harness-tests")
        .join(format!("{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn assert_bits_eq(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: bit mismatch at dof {i}");
    }
}

/// Satellite 3a: any permutation of {telemetry, checkpoint, receiver} hooks
/// yields bit-identical displacement histories — hooks observe the step,
/// they never perturb it.
#[test]
fn hook_order_does_not_change_the_history() {
    let mesh = build_mesh();
    let mut cfg = ElasticConfig::new(1.0);
    cfg.dt = Some(0.05);
    let solver = ElasticSolver::new(&mesh, &cfg);
    let (u0, v0) = pulse(&mesh);
    let nodes: Vec<u32> = vec![0, (mesh.n_nodes() / 2) as u32];
    let n_steps = 9u64;

    let perms: [[usize; 3]; 6] = [[0, 1, 2], [0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0]];
    let mut baseline: Option<SolverState> = None;
    for (pi, perm) in perms.iter().enumerate() {
        let dir = tmpdir(&format!("perm{pi}"));
        let writer = CheckpointWriter::new(&dir, "perm").unwrap();
        let policy = CheckpointPolicy::every_steps(3);
        let mut sink = PeriodicSink::new(&writer, &policy);

        let mut receivers = ReceiverHook::new(&nodes);
        let mut ckpt = CheckpointHook::new(&mut sink);
        let mut telemetry = TelemetryHook::new(&solver);
        let mut slots: [Option<&mut dyn StepHook>; 3] =
            [Some(&mut receivers), Some(&mut ckpt), Some(&mut telemetry)];
        let mut hooks: Vec<&mut dyn StepHook> = Vec::new();
        for &slot in perm {
            hooks.push(slots[slot].take().unwrap());
        }

        let mut state = solver.initial_state(nodes.len(), Some((&u0, &v0)));
        let mut ws = solver.workspace();
        let run_cfg = RunConfig::to_step(n_steps);
        let outcome = SolverHarness::new(&solver).run(
            &run_cfg,
            &mut state,
            &mut ws,
            &mut NoExchange,
            &mut hooks,
        );
        assert!(matches!(outcome, RunOutcome::Finished { executed } if executed == n_steps));
        // Every permutation checkpointed the same due steps.
        assert_eq!(CheckpointReader::new(&dir, "perm").steps(), vec![3, 6, 9]);

        match &baseline {
            None => baseline = Some(state),
            Some(b) => {
                assert_bits_eq(&b.u_prev, &state.u_prev, "u_prev");
                assert_bits_eq(&b.u_now, &state.u_now, "u_now");
                for (sa, sb) in b.seismograms.iter().zip(&state.seismograms) {
                    assert_bits_eq(&sa.data, &sb.data, "seismogram");
                }
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

struct PanicAt {
    step: u64,
}

impl StepHook for PanicAt {
    fn after_step(&mut self, ctx: &mut HookCtx<'_>) -> Result<(), StopReason> {
        assert!(ctx.state.step <= self.step, "hook survived its own panic");
        if ctx.state.step == self.step {
            panic!("user hook exploded at step {}", self.step);
        }
        Ok(())
    }
}

/// Satellite 3b: a panicking user hook cannot corrupt checkpoint retention.
/// Every file on disk after the unwind is a finalized, CRC-valid snapshot
/// (writes go through tmp + rename), and resuming from the newest one
/// reproduces an uninterrupted run bit-for-bit.
#[test]
fn panicking_hook_leaves_checkpoints_atomic_and_resumable() {
    let mesh = build_mesh();
    let mut cfg = ElasticConfig::new(1.0);
    cfg.dt = Some(0.05);
    let solver = ElasticSolver::new(&mesh, &cfg);
    let (u0, v0) = pulse(&mesh);
    let n_steps = 10u64;

    // Straight run: the ground truth.
    let (ref_up, ref_un) =
        SolverHarness::new(&solver).run_to_state(Some((&u0, &v0)), n_steps as usize);

    let dir = tmpdir("panic");
    let writer = CheckpointWriter::new(&dir, "panic").unwrap().with_retention(2);
    let policy = CheckpointPolicy::every_steps(2);
    let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut sink = PeriodicSink::new(&writer, &policy);
        let mut ckpt = CheckpointHook::new(&mut sink);
        let mut boom = PanicAt { step: 7 };
        let mut hooks: Vec<&mut dyn StepHook> = vec![&mut ckpt, &mut boom];
        let mut state = solver.initial_state(0, Some((&u0, &v0)));
        let mut ws = solver.workspace();
        SolverHarness::new(&solver).run(
            &RunConfig::to_step(n_steps),
            &mut state,
            &mut ws,
            &mut NoExchange,
            &mut hooks,
        );
    }));
    assert!(panicked.is_err(), "the hook must actually panic");

    // No half-written `.tmp` leftovers; retention kept exactly the newest 2.
    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    names.sort();
    assert!(names.iter().all(|n| n.ends_with(".qckpt")), "stray temp file: {names:?}");
    assert_eq!(CheckpointReader::new(&dir, "panic").steps(), vec![4, 6]);

    // The newest snapshot is CRC-valid and resumes to a bit-identical end.
    let reg = quake_telemetry::Registry::disabled();
    let (step, state): (u64, SolverState) =
        CheckpointReader::new(&dir, "panic").latest_valid(&reg).expect("valid checkpoint");
    assert_eq!(step, 6);
    let mut state = state;
    let mut ws = solver.workspace();
    let outcome = SolverHarness::new(&solver).run(
        &RunConfig::to_step(n_steps),
        &mut state,
        &mut ws,
        &mut NoExchange,
        &mut [],
    );
    assert!(matches!(outcome, RunOutcome::Finished { executed } if executed == 4));
    // `run_to_state` returns interleaved vectors; the raw state is planar.
    assert_bits_eq(&ref_up, &to_interleaved3(&state.u_prev), "resumed u_prev");
    assert_bits_eq(&ref_un, &to_interleaved3(&state.u_now), "resumed u_now");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite 2: the harness's final-step semantics pinned against both
/// oracles. Against a longhand `step_with` loop the harness is **bit-exact**
/// (the collapse changed no arithmetic); against the frozen pre-optimization
/// `reference_step` the final displacement and the final-step velocity
/// `(u_now - u_prev) / dt` agree to the repo's 1e-12 relative bar
/// (`reference.rs` differs in floating-point summation order only).
#[test]
fn final_step_velocity_matches_the_frozen_reference() {
    let mesh = build_mesh();
    let mut cfg = ElasticConfig::new(1.0);
    cfg.dt = Some(0.05);
    let solver = ElasticSolver::new(&mesh, &cfg);
    let (u0, v0) = pulse(&mesh);
    let n_steps = 12;
    let ndof = 3 * mesh.n_nodes();

    let (hup, hun) = SolverHarness::new(&solver).run_to_state(Some((&u0, &v0)), n_steps);

    // Oracle A: the pre-harness step loop written out longhand, on the
    // production fused step — must be bit-identical. The fused step runs on
    // the planar layout, so the longhand loop does too (the planar/interleaved
    // conversion is an exact permutation, so bit-level asserts still hold).
    let u0p = to_planar3(&u0);
    let v0p = to_planar3(&v0);
    let mut up = vec![0.0; ndof];
    let mut un = u0p.clone();
    for d in 0..ndof {
        up[d] = u0p[d] - solver.dt * v0p[d];
    }
    let mut up_r = vec![0.0; ndof];
    let mut un_r = u0.clone();
    for d in 0..ndof {
        up_r[d] = u0[d] - solver.dt * v0[d];
    }
    let mut next = vec![0.0; ndof];
    let mut next_r = vec![0.0; ndof];
    let f = vec![0.0; ndof];
    let mut ws = solver.workspace();
    for _ in 0..n_steps {
        solver.step_with(&up, &un, &f, &mut next, &mut ws);
        std::mem::swap(&mut up, &mut un);
        std::mem::swap(&mut un, &mut next);
        // Oracle B: the frozen pre-optimization reference step (interleaved).
        reference_step(&solver, &up_r, &un_r, &f, &mut next_r);
        std::mem::swap(&mut up_r, &mut un_r);
        std::mem::swap(&mut un_r, &mut next_r);
    }
    assert_bits_eq(&to_interleaved3(&up), &hup, "final u_prev vs longhand loop");
    assert_bits_eq(&to_interleaved3(&un), &hun, "final u_now vs longhand loop");

    let vel_h: Vec<f64> = hun.iter().zip(&hup).map(|(a, b)| (a - b) / solver.dt).collect();
    let vel_r: Vec<f64> = un_r.iter().zip(&up_r).map(|(a, b)| (a - b) / solver.dt).collect();
    let scale = vel_r.iter().fold(0.0f64, |m, v| m.max(v.abs()));
    assert!(scale > 0.0, "reference velocity field is identically zero");
    let worst = vel_h.iter().zip(&vel_r).fold(0.0f64, |m, (a, b)| m.max((a - b).abs() / scale));
    assert!(worst <= 1e-12, "final-step velocity vs reference: relative error {worst}");
}
