//! Seismic source injection: moment-tensor point sources as equivalent
//! nodal forces.
//!
//! A moment tensor `M` at point `xs` is the equivalent body force
//! `b = -div(M delta(x - xs))`; its weak form gives the nodal forces
//! `f_{a,i} = sum_j M_ij dphi_a/dx_j (xs)` on the nodes of the containing
//! element (and, through the hanging-node projection, their masters). The
//! time dependence is the normalized dislocation ramp `g(t; T, t0)` of the
//! slip function.

use quake_fem::shape::hex8_dn;
use quake_mesh::HexMesh;
use quake_model::{PointSource, SlipFunction};
use quake_octree::LinearOctree;

/// A point source assembled onto its containing element's nodes.
#[derive(Clone, Debug)]
pub struct AssembledSource {
    /// (dof index, weight): `f[dof] += weight * g(t)`.
    pub weights: Vec<(u32, f64)>,
    pub slip: SlipFunction,
}

impl AssembledSource {
    /// Accumulate this source's force at time `t` into an *interleaved*
    /// (`dof = 3 * node + comp`) force vector — the layout the weights are
    /// stored in.
    pub fn add_force(&self, t: f64, f: &mut [f64]) {
        // `moment` was folded into the weights; `g` carries the normalized
        // ramp (amplitude folded in too, so use the normalized value).
        let g = self.slip.dg_d_amplitude(t);
        if g == 0.0 {
            return;
        }
        for &(dof, w) in &self.weights {
            f[dof as usize] += w * g;
        }
    }

    /// [`AssembledSource::add_force`] into a *planar* force vector
    /// (`dof = comp * n + node`, `n = f.len() / 3` — the elastic solver's
    /// internal layout, see `quake_solver::layout`). Same weights, same
    /// per-dof accumulation order, so the injected values are identical.
    pub fn add_force_planar(&self, t: f64, f: &mut [f64]) {
        let g = self.slip.dg_d_amplitude(t);
        if g == 0.0 {
            return;
        }
        let n = f.len() / 3;
        for &(dof, w) in &self.weights {
            let (nd, comp) = (dof as usize / 3, dof as usize % 3);
            f[comp * n + nd] += w * g;
        }
    }
}

/// Assemble point moment sources onto the mesh.
///
/// Panics if a source lies outside the domain.
pub fn assemble_point_sources(
    mesh: &HexMesh,
    tree: &LinearOctree,
    sources: &[PointSource],
) -> Vec<AssembledSource> {
    sources
        .iter()
        .map(|s| {
            let (ei, xi) = mesh
                .locate(tree, s.position)
                .unwrap_or_else(|| panic!("source at {:?} outside the domain", s.position));
            let e = &mesh.elements[ei as usize];
            let dn = hex8_dn(xi);
            let mut weights = Vec::with_capacity(24);
            for (a, &nd) in e.nodes.iter().enumerate() {
                for i in 0..3 {
                    let mut w = 0.0;
                    for j in 0..3 {
                        // Physical gradient = reference gradient / h.
                        w += s.moment[i][j] * dn[a][j] / e.h;
                    }
                    if w != 0.0 {
                        weights.push((nd * 3 + i as u32, w));
                    }
                }
            }
            AssembledSource { weights, slip: s.slip }
        })
        .collect()
}

/// Nodal force version (point force at the nearest node), for tests and
/// simple excitations.
pub fn point_force(
    mesh: &HexMesh,
    position: [f64; 3],
    direction: [f64; 3],
    slip: SlipFunction,
) -> AssembledSource {
    let nd = mesh.nearest_node(position);
    let weights = (0..3)
        .filter(|&i| direction[i] != 0.0)
        .map(|i| (nd * 3 + i as u32, direction[i]))
        .collect();
    AssembledSource { weights, slip }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quake_mesh::hexmesh::ElemMaterial;
    use quake_model::DoubleCouple;
    use quake_octree::LinearOctree;

    fn setup() -> (LinearOctree, HexMesh) {
        let t = LinearOctree::uniform(2);
        let m = HexMesh::from_octree(&t, 8.0, |_, _, _, _| ElemMaterial {
            lambda: 2.0,
            mu: 1.0,
            rho: 1.0,
        });
        (t, m)
    }

    #[test]
    fn moment_source_forces_are_self_equilibrated() {
        let (t, m) = setup();
        let src = PointSource {
            position: [4.3, 3.9, 4.1],
            moment: DoubleCouple::moment_tensor(0.5, 0.9, 0.3, 2.0),
            slip: SlipFunction::new(0.0, 1.0, 1.0),
        };
        let asm = assemble_point_sources(&m, &t, &[src]);
        assert_eq!(asm.len(), 1);
        // Net force must vanish (a moment source carries no net thrust):
        // sum_a dphi_a/dx_j = 0 at any interior point.
        let mut f = vec![0.0; 3 * m.n_nodes()];
        asm[0].add_force(10.0, &mut f); // fully ramped
        let mut net = [0.0; 3];
        for (nd, c) in f.chunks(3).enumerate() {
            let _ = nd;
            for i in 0..3 {
                net[i] += c[i];
            }
        }
        for v in net {
            assert!(v.abs() < 1e-9, "net thrust {net:?}");
        }
        // But the force field itself is nonzero.
        assert!(f.iter().any(|&v| v.abs() > 1e-6));
    }

    #[test]
    fn force_ramps_with_slip_function() {
        let (t, m) = setup();
        let src = PointSource {
            position: [4.0, 4.0, 4.0],
            moment: DoubleCouple::moment_tensor(0.0, 1.0, 0.0, 1.0),
            slip: SlipFunction::new(1.0, 2.0, 1.0),
        };
        let asm = &assemble_point_sources(&m, &t, &[src])[0];
        let mut f0 = vec![0.0; 3 * m.n_nodes()];
        asm.add_force(0.5, &mut f0);
        assert!(f0.iter().all(|&v| v == 0.0), "no force before the delay");
        let mut fh = vec![0.0; 3 * m.n_nodes()];
        asm.add_force(2.0, &mut fh); // mid-rise: ramp = 1/2
        let mut ff = vec![0.0; 3 * m.n_nodes()];
        asm.add_force(100.0, &mut ff);
        for (a, b) in fh.iter().zip(&ff) {
            assert!((2.0 * a - b).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "outside the domain")]
    fn source_outside_domain_panics() {
        let (t, m) = setup();
        let src = PointSource {
            position: [100.0, 0.0, 0.0],
            moment: [[0.0; 3]; 3],
            slip: SlipFunction::new(0.0, 1.0, 1.0),
        };
        let _ = assemble_point_sources(&m, &t, &[src]);
    }

    #[test]
    fn point_force_targets_one_node() {
        let (_, m) = setup();
        let s = point_force(&m, [4.0, 4.0, 0.0], [0.0, 0.0, 1.5], SlipFunction::new(0.0, 1.0, 1.0));
        assert_eq!(s.weights.len(), 1);
        let (dof, w) = s.weights[0];
        assert_eq!(dof % 3, 2);
        assert_eq!(w, 1.5);
    }
}
