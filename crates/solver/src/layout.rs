//! Nodal vector layouts and conversions.
//!
//! The solver's *internal* state is planar (structure of arrays): three
//! component planes of length `n_nodes`, `dof(comp, node) = comp * n_nodes +
//! node`, so the element gather/scatter and every diagonal pass stream
//! contiguously. The *public* boundary layout (initial fields, returned
//! states, assembled source weights, seismogram samples, mesh utilities
//! shared with the tet solver) stays interleaved, `dof(node, comp) = 3 *
//! node + comp`. These helpers convert between the two; both are exact
//! permutations, so round-tripping is bit-identical.

/// Interleaved (`3 * node + comp`) to planar (`comp * n + node`), 3
/// components.
pub fn to_planar3(interleaved: &[f64]) -> Vec<f64> {
    let mut out = vec![0.0; interleaved.len()];
    planar3_into(interleaved, &mut out);
    out
}

/// Planar (`comp * n + node`) to interleaved (`3 * node + comp`), 3
/// components.
pub fn to_interleaved3(planar: &[f64]) -> Vec<f64> {
    let mut out = vec![0.0; planar.len()];
    interleaved3_into(planar, &mut out);
    out
}

/// In-place-buffer variant of [`to_planar3`].
pub fn planar3_into(interleaved: &[f64], out: &mut [f64]) {
    let n = interleaved.len() / 3;
    assert_eq!(interleaved.len(), 3 * n);
    assert_eq!(out.len(), 3 * n);
    for nd in 0..n {
        for comp in 0..3 {
            out[comp * n + nd] = interleaved[3 * nd + comp];
        }
    }
}

/// In-place-buffer variant of [`to_interleaved3`].
pub fn interleaved3_into(planar: &[f64], out: &mut [f64]) {
    let n = planar.len() / 3;
    assert_eq!(planar.len(), 3 * n);
    assert_eq!(out.len(), 3 * n);
    for nd in 0..n {
        for comp in 0..3 {
            out[3 * nd + comp] = planar[comp * n + nd];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_is_bit_identical() {
        let v: Vec<f64> = (0..3 * 17).map(|i| (i as f64).sin()).collect();
        let p = to_planar3(&v);
        assert_eq!(to_interleaved3(&p), v);
        // Spot-check the permutation itself.
        let n = 17;
        assert_eq!(p[0], v[0]); // (comp 0, node 0)
        assert_eq!(p[n], v[1]); // (comp 1, node 0)
        assert_eq!(p[2 * n + 5], v[3 * 5 + 2]); // (comp 2, node 5)
    }
}
