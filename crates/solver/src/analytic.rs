//! Closed-form references for verification (Fig 2.2).
//!
//! - d'Alembert traveling pulses in a homogeneous medium,
//! - normal-incidence reflection/transmission coefficients at a material
//!   interface (the layer-over-halfspace test),
//! - a fine-grid 1-D SH finite-difference reference for layered media,
//!   accurate enough to serve as "closed-form grade" ground truth for the
//!   3-D solver run on pseudo-1-D columns.

/// d'Alembert solution for an initial displacement `f` and velocity `-c f'`
/// (a pure rightward-traveling pulse): `u(x, t) = f(x - c t)`.
pub fn dalembert_rightward(f: impl Fn(f64) -> f64, c: f64, x: f64, t: f64) -> f64 {
    f(x - c * t)
}

/// Standing split: initial displacement `f`, zero initial velocity:
/// `u = (f(x - ct) + f(x + ct)) / 2`.
pub fn dalembert_standing(f: impl Fn(f64) -> f64 + Copy, c: f64, x: f64, t: f64) -> f64 {
    0.5 * (f(x - c * t) + f(x + c * t))
}

/// Displacement reflection coefficient for an SH wave at normal incidence
/// going from medium 1 into medium 2 (`Z = rho vs`):
/// `R = (Z1 - Z2) / (Z1 + Z2)`.
pub fn reflection_coefficient(rho1: f64, vs1: f64, rho2: f64, vs2: f64) -> f64 {
    let z1 = rho1 * vs1;
    let z2 = rho2 * vs2;
    (z1 - z2) / (z1 + z2)
}

/// Displacement transmission coefficient `T = 2 Z1 / (Z1 + Z2)`.
pub fn transmission_coefficient(rho1: f64, vs1: f64, rho2: f64, vs2: f64) -> f64 {
    let z1 = rho1 * vs1;
    let z2 = rho2 * vs2;
    2.0 * z1 / (z1 + z2)
}

/// 1-D layered SH reference solution by a fine staggered-grid FD scheme:
/// `rho(z) u_tt = (mu(z) u_z)_z`, free surface at z = 0, absorbing at depth.
///
/// Returns the displacement field at the requested times, sampled on the FD
/// grid `z_i = i dz`, from the initial condition `u0(z)` at rest.
pub struct Sh1dReference {
    pub dz: f64,
    pub dt: f64,
    pub u: Vec<Vec<f64>>,
    pub times: Vec<f64>,
}

pub fn sh1d_reference(
    depth: f64,
    n_cells: usize,
    rho: impl Fn(f64) -> f64,
    mu: impl Fn(f64) -> f64,
    u0: impl Fn(f64) -> f64,
    v0: impl Fn(f64) -> f64,
    t_end: f64,
    record_times: &[f64],
) -> Sh1dReference {
    let dz = depth / n_cells as f64;
    let n = n_cells + 1;
    // Cell-centered mu, node-centered rho.
    let mu_c: Vec<f64> = (0..n_cells).map(|i| mu((i as f64 + 0.5) * dz)).collect();
    let rho_n: Vec<f64> = (0..n).map(|i| rho(i as f64 * dz)).collect();
    let vmax =
        (0..n_cells).map(|i| (mu_c[i] / rho_n[i].min(rho_n[i + 1])).sqrt()).fold(0.0f64, f64::max);
    let dt = 0.5 * dz / vmax;
    let steps = (t_end / dt).ceil() as usize;

    let mut up: Vec<f64> = (0..n).map(|i| u0(i as f64 * dz) - dt * v0(i as f64 * dz)).collect();
    let mut un: Vec<f64> = (0..n).map(|i| u0(i as f64 * dz)).collect();
    let mut out = Vec::new();
    let mut times = Vec::new();
    let mut next_rec = 0usize;
    for k in 0..=steps {
        let t = k as f64 * dt;
        while next_rec < record_times.len() && t >= record_times[next_rec] - 0.5 * dt {
            out.push(un.clone());
            times.push(t);
            next_rec += 1;
        }
        if k == steps {
            break;
        }
        let mut unew = vec![0.0; n];
        for i in 0..n {
            // Stress divergence with free surface (mirror) at i=0 and a
            // simple absorbing (one-way) condition at the bottom node.
            if i == n - 1 {
                // u_t = -v u_z  (outgoing toward +z).
                let v = (mu_c[n_cells - 1] / rho_n[i]).sqrt();
                unew[i] = un[i] - v * dt / dz * (un[i] - un[i - 1]);
                continue;
            }
            let s_plus = mu_c[i] * (un[i + 1] - un[i]) / dz;
            let s_minus = if i == 0 { -s_plus } else { mu_c[i - 1] * (un[i] - un[i - 1]) / dz };
            // Free surface: stress is zero at the surface, so the one-sided
            // divergence uses a zero traction above.
            let div = if i == 0 { s_plus / (0.5 * dz) } else { (s_plus - s_minus) / dz };
            unew[i] = 2.0 * un[i] - up[i] + dt * dt / rho_n[i] * div;
        }
        up = un;
        un = unew;
    }
    Sh1dReference { dz, dt, u: out, times }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coefficients_satisfy_continuity() {
        // 1 + R = T at a displacement interface.
        let (r1, v1, r2, v2) = (1800.0, 400.0, 2600.0, 2800.0);
        let r = reflection_coefficient(r1, v1, r2, v2);
        let t = transmission_coefficient(r1, v1, r2, v2);
        assert!((1.0 + r - t).abs() < 1e-12);
        // Hard-over-soft flips the sign.
        assert!(r < 0.0);
        assert!(reflection_coefficient(r2, v2, r1, v1) > 0.0);
        // Identical media: no reflection, full transmission.
        assert_eq!(reflection_coefficient(r1, v1, r1, v1), 0.0);
        assert_eq!(transmission_coefficient(r1, v1, r1, v1), 1.0);
    }

    #[test]
    fn fd_reference_propagates_homogeneous_pulse_correctly() {
        // Gaussian at depth 500 m, vs = 1000: after 0.2 s the split halves
        // sit at 300 and 700 m.
        let vs = 1000.0;
        let rho = 2000.0;
        let mu = rho * vs * vs;
        let rec = [0.2];
        let r = sh1d_reference(
            2000.0,
            2000,
            |_| rho,
            |_| mu,
            |z| (-((z - 500.0) / 50.0).powi(2)).exp(),
            |_| 0.0,
            0.25,
            &rec,
        );
        let u = &r.u[0];
        let t = r.times[0];
        let mut err = 0.0;
        let mut norm = 0.0;
        for (i, &ui) in u.iter().enumerate() {
            let z = i as f64 * r.dz;
            if z > 1500.0 {
                continue; // skip the absorbing toe
            }
            let exact = dalembert_standing(|x| (-((x - 500.0) / 50.0).powi(2)).exp(), vs, z, t);
            err += (ui - exact).powi(2);
            norm += exact.powi(2);
        }
        assert!((err / norm).sqrt() < 0.02, "FD reference error {}", (err / norm).sqrt());
    }

    #[test]
    fn fd_reference_free_surface_doubles_amplitude() {
        // An upgoing pulse reflects at the free surface with coefficient +1:
        // the surface displacement peaks at ~2x the incident amplitude.
        let vs = 1000.0;
        let rho = 2000.0;
        let mu = rho * vs * vs;
        // Upgoing pulse: u0 Gaussian at 600 m, v0 = +vs u0' (traveling -z).
        let g = |z: f64| (-((z - 600.0) / 60.0).powi(2)).exp();
        let rec: Vec<f64> = (0..40).map(|k| k as f64 * 0.025).collect();
        let r = sh1d_reference(
            3000.0,
            3000,
            |_| rho,
            |_| mu,
            g,
            |z| vs * (-2.0 * (z - 600.0) / 60.0f64.powi(2)) * g(z),
            1.0,
            &rec,
        );
        let surface_peak = r.u.iter().map(|u| u[0].abs()).fold(0.0f64, f64::max);
        assert!(
            surface_peak > 1.8 && surface_peak < 2.2,
            "free-surface amplification {surface_peak}"
        );
    }
}
