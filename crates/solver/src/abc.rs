//! Stacey absorbing-boundary terms (Section 2.1).
//!
//! On a boundary face with outward normal `n` and tangentials `tau1, tau2`,
//! Stacey's condition prescribes the traction
//!
//! ```text
//! t_n    = -d1 dun/dt + c1 (dutau1/dtau1 + dutau2/dtau2)
//! t_tau1 = -c1 dun/dtau1 - d2 dutau1/dt
//! t_tau2 = -c1 dun/dtau2 - d2 dutau2/dt
//! ```
//!
//! with `d1 = rho vp`, `d2 = rho vs`, `c1 = -2 mu + sqrt(mu (lambda + 2 mu))`.
//! The velocity terms are lumped into the diagonal damping `C^AB` (they enter
//! the eq. (2.4) update semi-implicitly); the tangential-derivative terms form
//! the unsymmetric face stiffness `K^AB`, applied explicitly each step. Both
//! are local in space and time — the property that makes the condition cheap
//! on thousands of processors.

use quake_fem::quad4::quad4_n_dn_unit;
use quake_mesh::hexmesh::{HexMesh, FACE_CORNERS};

/// Precomputed Stacey data for one absorbing boundary face.
#[derive(Clone, Copy, Debug)]
pub struct AbcFace {
    /// Owning element (faces are partitioned with their elements).
    pub element: u32,
    /// Global node ids of the face corners in quad4 order.
    pub nodes: [u32; 4],
    /// Normal axis (0..3) and outward sign.
    pub normal_axis: usize,
    pub normal_sign: f64,
    /// The two in-face axes, matching the quad4 local axes.
    pub tangent_axes: [usize; 2],
    /// `c1 * h` (the tangential-coupling scale).
    pub c1_h: f64,
    /// Lumped damping per node: normal and tangential (already times
    /// area/4).
    pub d_normal: f64,
    pub d_tangent: f64,
}

/// Build the absorbing faces for a mesh. `absorb[f]` says whether domain
/// face `f` (0/1 = -x/+x, 2/3 = -y/+y, 4/5 = -z/+z) absorbs; the free
/// surface (usually face 4, z = 0) is simply omitted.
pub fn build_abc_faces(mesh: &HexMesh, absorb: [bool; 6]) -> Vec<AbcFace> {
    let mut out = Vec::new();
    for bf in &mesh.boundary_faces {
        if !absorb[bf.face as usize] {
            continue;
        }
        let e = &mesh.elements[bf.element as usize];
        let corners = FACE_CORNERS[bf.face as usize];
        let nodes = std::array::from_fn(|i| e.nodes[corners[i]]);
        let normal_axis = (bf.face / 2) as usize;
        let normal_sign = if bf.face % 2 == 0 { -1.0 } else { 1.0 };
        let tangent_axes = match normal_axis {
            0 => [1, 2],
            1 => [0, 2],
            _ => [0, 1],
        };
        let (lambda, mu, rho) = (e.material.lambda, e.material.mu, e.material.rho);
        let vp = ((lambda + 2.0 * mu) / rho).sqrt();
        let vs = (mu / rho).sqrt();
        let c1 = -2.0 * mu + (mu * (lambda + 2.0 * mu)).sqrt();
        let area4 = e.h * e.h / 4.0;
        out.push(AbcFace {
            element: bf.element,
            nodes,
            normal_axis,
            normal_sign,
            tangent_axes,
            c1_h: c1 * e.h,
            d_normal: rho * vp * area4,
            d_tangent: rho * vs * area4,
        });
    }
    out
}

/// Accumulate the lumped `C^AB` diagonal (per dof, 3 comps per node).
pub fn accumulate_abc_damping(faces: &[AbcFace], diag: &mut [f64]) {
    for f in faces {
        for &n in &f.nodes {
            let base = n as usize * 3;
            diag[base + f.normal_axis] += f.d_normal;
            diag[base + f.tangent_axes[0]] += f.d_tangent;
            diag[base + f.tangent_axes[1]] += f.d_tangent;
        }
    }
}

// lint:hot-path — per-step ABC traction accumulation: runs once per face
// per step inside the solver's step loop; fixed-size stack scratch only.
/// Add `scale` times the `K^AB` traction forces at displacement `u` into
/// `force`. The scale parameter lets the solver accumulate `dt^2 * t` into
/// its rhs directly, with no intermediate traction vector.
pub fn apply_abc_stiffness(faces: &[AbcFace], u: &[f64], force: &mut [f64], scale: f64) {
    let fnd = quad4_n_dn_unit();
    for f in faces {
        // Gather the face displacements.
        let mut un = [0.0; 4];
        let mut ut = [[0.0; 4]; 2];
        for (c, &n) in f.nodes.iter().enumerate() {
            let base = n as usize * 3;
            un[c] = f.normal_sign * u[base + f.normal_axis];
            ut[0][c] = u[base + f.tangent_axes[0]];
            ut[1][c] = u[base + f.tangent_axes[1]];
        }
        for (r, &n) in f.nodes.iter().enumerate() {
            let base = n as usize * 3;
            // t_n += c1 (surface divergence of tangential displacement).
            let mut div = 0.0;
            let mut dn0 = 0.0;
            let mut dn1 = 0.0;
            for c in 0..4 {
                div += fnd[0][r][c] * ut[0][c] + fnd[1][r][c] * ut[1][c];
                dn0 += fnd[0][r][c] * un[c];
                dn1 += fnd[1][r][c] * un[c];
            }
            force[base + f.normal_axis] += scale * f.normal_sign * f.c1_h * div;
            force[base + f.tangent_axes[0]] -= scale * f.c1_h * dn0;
            force[base + f.tangent_axes[1]] -= scale * f.c1_h * dn1;
        }
    }
}

/// [`apply_abc_stiffness`] for planar (structure-of-arrays) vectors:
/// `dof = axis * n_nodes + node` with `n_nodes = u.len() / 3`. Per-face
/// arithmetic is identical to the node-major variant — only the
/// gather/scatter indexing differs — so every dof receives a bit-identical
/// contribution.
pub fn apply_abc_stiffness_planar(faces: &[AbcFace], u: &[f64], force: &mut [f64], scale: f64) {
    let n = u.len() / 3;
    let fnd = quad4_n_dn_unit();
    for f in faces {
        let mut un = [0.0; 4];
        let mut ut = [[0.0; 4]; 2];
        for (c, &nd) in f.nodes.iter().enumerate() {
            let nd = nd as usize;
            un[c] = f.normal_sign * u[f.normal_axis * n + nd];
            ut[0][c] = u[f.tangent_axes[0] * n + nd];
            ut[1][c] = u[f.tangent_axes[1] * n + nd];
        }
        for (r, &nd) in f.nodes.iter().enumerate() {
            let nd = nd as usize;
            let mut div = 0.0;
            let mut dn0 = 0.0;
            let mut dn1 = 0.0;
            for c in 0..4 {
                div += fnd[0][r][c] * ut[0][c] + fnd[1][r][c] * ut[1][c];
                dn0 += fnd[0][r][c] * un[c];
                dn1 += fnd[1][r][c] * un[c];
            }
            force[f.normal_axis * n + nd] += scale * f.normal_sign * f.c1_h * div;
            force[f.tangent_axes[0] * n + nd] -= scale * f.c1_h * dn0;
            force[f.tangent_axes[1] * n + nd] -= scale * f.c1_h * dn1;
        }
    }
}
// lint:hot-path-end

#[cfg(test)]
mod tests {
    use super::*;
    use quake_mesh::hexmesh::ElemMaterial;
    use quake_octree::LinearOctree;

    fn mesh() -> HexMesh {
        HexMesh::from_octree(&LinearOctree::uniform(1), 2.0, |_, _, _, _| ElemMaterial {
            lambda: 2.0,
            mu: 1.0,
            rho: 1.0,
        })
    }

    #[test]
    fn face_counts_and_coefficients() {
        let m = mesh();
        let faces = build_abc_faces(&m, [true; 6]);
        assert_eq!(faces.len(), 6 * 4);
        let f = &faces[0];
        // vp = 2, vs = 1, h = 1: d_normal = rho vp h^2/4 = 0.5.
        assert!((f.d_normal - 0.5).abs() < 1e-12);
        assert!((f.d_tangent - 0.25).abs() < 1e-12);
        // c1 = -2 mu + sqrt(mu (lambda + 2 mu)) = -2 + 2 = 0 for this material.
        assert!(f.c1_h.abs() < 1e-12);
    }

    #[test]
    fn free_surface_is_skipped() {
        let m = mesh();
        let faces = build_abc_faces(&m, [true, true, true, true, false, true]);
        assert_eq!(faces.len(), 5 * 4);
        assert!(faces.iter().all(|f| !(f.normal_axis == 2 && f.normal_sign < 0.0)));
    }

    #[test]
    fn damping_diag_is_positive_on_abc_nodes_only() {
        let m = mesh();
        let faces = build_abc_faces(&m, [true, false, false, false, false, false]);
        let mut diag = vec![0.0; m.n_nodes() * 3];
        accumulate_abc_damping(&faces, &mut diag);
        for (n, gc) in m.grid_coords.iter().enumerate() {
            let on = gc[0] == 0;
            let d = diag[3 * n] + diag[3 * n + 1] + diag[3 * n + 2];
            assert_eq!(d > 0.0, on, "node {n} at {gc:?}");
        }
    }

    #[test]
    fn stiffness_term_vanishes_for_rigid_translation() {
        // A rigid translation has no tangential derivatives: K^AB u = 0.
        let m = HexMesh::from_octree(&LinearOctree::uniform(1), 2.0, |_, _, _, _| {
            ElemMaterial { lambda: 3.0, mu: 1.0, rho: 1.0 } // c1 != 0 here
        });
        let faces = build_abc_faces(&m, [true; 6]);
        assert!(faces[0].c1_h.abs() > 0.01);
        let u = vec![1.0; m.n_nodes() * 3];
        let mut f = vec![0.0; m.n_nodes() * 3];
        apply_abc_stiffness(&faces, &u, &mut f, 1.0);
        for v in f {
            assert!(v.abs() < 1e-12);
        }
    }

    #[test]
    fn planar_stiffness_matches_interleaved_bitwise() {
        let m = HexMesh::from_octree(&LinearOctree::uniform(1), 2.0, |_, _, _, _| ElemMaterial {
            lambda: 3.0,
            mu: 1.0,
            rho: 1.0,
        });
        let faces = build_abc_faces(&m, [true, true, true, true, false, true]);
        let n = m.n_nodes();
        let mut s = 424242u64;
        let mut rnd = || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let ui: Vec<f64> = (0..3 * n).map(|_| rnd()).collect();
        let mut up = vec![0.0; 3 * n];
        for nd in 0..n {
            for c in 0..3 {
                up[c * n + nd] = ui[3 * nd + c];
            }
        }
        let mut fi = vec![0.0; 3 * n];
        let mut fp = vec![0.0; 3 * n];
        apply_abc_stiffness(&faces, &ui, &mut fi, 0.37);
        apply_abc_stiffness_planar(&faces, &up, &mut fp, 0.37);
        for nd in 0..n {
            for c in 0..3 {
                assert_eq!(fi[3 * nd + c].to_bits(), fp[c * n + nd].to_bits());
            }
        }
    }

    #[test]
    fn stiffness_forces_balance_globally() {
        // int of dN/dtau over a face is zero row-summed in c, and the force
        // columns sum to zero over the face nodes for linear fields... at
        // minimum, total force from a linear normal field must cancel between
        // opposite tangential directions. Check sum of tangential forces = 0
        // for un linear in tau (pure couple).
        let m = HexMesh::from_octree(&LinearOctree::uniform(1), 2.0, |_, _, _, _| ElemMaterial {
            lambda: 3.0,
            mu: 1.0,
            rho: 1.0,
        });
        let faces = build_abc_faces(&m, [true, false, false, false, false, false]);
        let mut u = vec![0.0; m.n_nodes() * 3];
        // un on the -x face linear in y: u_x = y at x = 0.
        for (n, c) in m.coords.iter().enumerate() {
            if m.grid_coords[n][0] == 0 {
                u[3 * n] = c[1];
            }
        }
        let mut f = vec![0.0; m.n_nodes() * 3];
        apply_abc_stiffness(&faces, &u, &mut f, 1.0);
        let ty: f64 = (0..m.n_nodes()).map(|n| f[3 * n + 1]).sum();
        // The net tangential thrust int c1 dun/dy dA is nonzero (it is the
        // absorbed shear); but the *z*-tangential force must vanish since
        // un has no z-dependence.
        let tz: f64 = (0..m.n_nodes()).map(|n| f[3 * n + 2]).sum();
        assert!(tz.abs() < 1e-12, "tz = {tz}");
        assert!(ty.abs() > 1e-6, "expected nonzero absorbed shear, got {ty}");
    }
}
