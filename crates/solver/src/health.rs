//! Numerics health watchdog — catches silent solution corruption.
//!
//! Comm-layer defenses (step tags, checkpoints, CRCs) catch *infrastructure*
//! faults: dead ranks, dropped exchanges, corrupt files. None of them can see
//! a silent numerical fault — a NaN written by a bit flip or a kernel bug, or
//! an instability pumping energy into the field — because the corrupted state
//! checkpoints and exchanges just fine. The [`HealthHook`] closes that gap:
//! on a configurable step cadence it scans the solution for non-finite
//! values and samples the discrete energy
//! `E_k = 1/2 v^T M v + 1/2 u^T K u` (the invariant a source-free,
//! boundary-less leapfrog run conserves to rounding), aborts the run on a
//! violation, and — before aborting — writes an NDJSON post-mortem dump:
//! one diagnostic header line (step, dt, energy history, offending dof
//! ranges, last checkpoint line expected valid) followed by the tail of the
//! registry's flight recorder ([`TraceBuffer::ndjson_tail`]).
//!
//! **Hook order matters**: place the `HealthHook` *before* any
//! `CheckpointHook` in the harness hook list and give it a cadence that
//! divides the checkpoint cadence. `after_step` processing stops at the
//! first erroring hook, so every state a checkpoint sink persists has passed
//! the health check — a detected corruption can never poison the newest
//! restore line, and resume from the reported `last_valid_ckpt` is
//! bit-identical to an unfaulted run up to that line.
//!
//! The watchdog is an opt-in hook: runs that do not install it pay nothing.

use std::io::Write;
use std::path::{Path, PathBuf};

use crate::elastic::ElasticSolver;
use crate::harness::{HookCtx, StepHook, StopReason};
use quake_telemetry::Registry;

/// Watchdog configuration. `Default` checks every step, allows a 10x energy
/// excursion over the running peak, and dumps nowhere.
#[derive(Clone, Debug)]
pub struct HealthConfig {
    /// Check when `state.step % cadence == 0` (post-step step index). A
    /// corruption is caught within one cadence window of appearing.
    pub cadence: u64,
    /// Abort when the sampled energy exceeds `max_energy_growth` times the
    /// running peak (leapfrog conserves discrete energy to rounding in a
    /// source-free interior; damping and ABCs only remove energy, so
    /// sustained growth is unphysical). Values ≤ tiny absolute floors are
    /// ignored so a quiescent field cannot trip the ratio.
    pub max_energy_growth: f64,
    /// Where to write the post-mortem NDJSON dump on violation (`None` =
    /// report in the [`StopReason::Health`] string only).
    pub dump_path: Option<PathBuf>,
    /// Flight-recorder events to include in the dump tail.
    pub dump_last_events: usize,
    /// Checkpoint cadence of the surrounding run, if it checkpoints — lets
    /// the dump name the last checkpoint line expected valid (see the module
    /// docs for the hook-order contract that makes that line trustworthy).
    pub ckpt_every: Option<u64>,
}

impl Default for HealthConfig {
    fn default() -> HealthConfig {
        HealthConfig {
            cadence: 1,
            max_energy_growth: 10.0,
            dump_path: None,
            dump_last_events: 256,
            ckpt_every: None,
        }
    }
}

impl HealthConfig {
    /// Check every `cadence` steps.
    pub fn every(cadence: u64) -> HealthConfig {
        HealthConfig { cadence: cadence.max(1), ..HealthConfig::default() }
    }

    /// Write the post-mortem dump here on violation.
    pub fn with_dump(mut self, path: PathBuf) -> HealthConfig {
        self.dump_path = Some(path);
        self
    }

    /// Name the surrounding run's checkpoint cadence in dumps.
    pub fn with_ckpt_every(mut self, every: u64) -> HealthConfig {
        self.ckpt_every = Some(every);
        self
    }

    /// Abort when energy exceeds `factor` × the running peak.
    pub fn with_max_growth(mut self, factor: f64) -> HealthConfig {
        self.max_energy_growth = factor;
        self
    }
}

/// What the watchdog found when it aborted a run.
#[derive(Clone, Debug)]
pub struct HealthReport {
    /// Post-step step index at detection (`state.step`, the *next* step).
    pub step: u64,
    pub dt: f64,
    /// Human-readable violation.
    pub reason: String,
    /// Energy at detection (NaN when the field itself is non-finite).
    pub energy: f64,
    /// Running peak energy over all previous samples.
    pub peak_energy: f64,
    /// Offending planar dof ranges `[start, end)` (capped; non-finite scans
    /// only).
    pub bad_dofs: Vec<(usize, usize)>,
    /// Highest checkpoint line expected valid (multiples of
    /// [`HealthConfig::ckpt_every`] strictly below `step`).
    pub last_valid_ckpt: Option<u64>,
}

/// The watchdog hook. See the module docs for placement rules.
pub struct HealthHook<'s, 'm> {
    solver: &'s ElasticSolver<'m>,
    cfg: HealthConfig,
    peak_energy: f64,
    /// Set when the hook aborted the run (for drivers that want the full
    /// report, not just the [`StopReason::Health`] string).
    report: Option<HealthReport>,
}

impl<'s, 'm> HealthHook<'s, 'm> {
    pub fn new(solver: &'s ElasticSolver<'m>, cfg: HealthConfig) -> HealthHook<'s, 'm> {
        HealthHook { solver, cfg, peak_energy: 0.0, report: None }
    }

    /// The violation report, if this hook aborted the run.
    pub fn report(&self) -> Option<&HealthReport> {
        self.report.as_ref()
    }

    /// Up to `cap` maximal contiguous ranges of non-finite entries across
    /// `u_prev ++ u_now` (indices into the concatenation; `u_now` entries
    /// start at `u_prev.len()`).
    fn bad_ranges(u_prev: &[f64], u_now: &[f64], cap: usize) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        let n = u_prev.len();
        let finite_at =
            |d: usize| if d < n { u_prev[d].is_finite() } else { u_now[d - n].is_finite() };
        let total = n + u_now.len();
        let mut d = 0;
        while d < total && out.len() < cap {
            if finite_at(d) {
                d += 1;
                continue;
            }
            let start = d;
            while d < total && !finite_at(d) {
                d += 1;
            }
            out.push((start, d));
        }
        out
    }

    fn violation(&mut self, ctx: &HookCtx<'_>, reason: String, energy: f64) -> StopReason {
        let step = ctx.state.step;
        let report = HealthReport {
            step,
            dt: ctx.info.dt,
            reason: reason.clone(),
            energy,
            peak_energy: self.peak_energy,
            bad_dofs: Self::bad_ranges(&ctx.state.u_prev, &ctx.state.u_now, 8),
            last_valid_ckpt: self
                .cfg
                .ckpt_every
                .map(|every| (step.saturating_sub(1) / every) * every),
        };
        if let Some(path) = &self.cfg.dump_path {
            // Best effort: a failed dump must not mask the violation itself.
            let _ = write_health_dump(path, ctx.reg, &report, self.cfg.dump_last_events);
        }
        let msg = format!("step {step}: {reason}");
        self.report = Some(report);
        StopReason::Health(msg)
    }
}

impl StepHook for HealthHook<'_, '_> {
    fn after_step(&mut self, ctx: &mut HookCtx<'_>) -> Result<(), StopReason> {
        if !ctx.state.step.is_multiple_of(self.cfg.cadence) {
            return Ok(());
        }
        let bad_now = ctx.state.u_now.iter().any(|v| !v.is_finite());
        let bad_prev = bad_now || ctx.state.u_prev.iter().any(|v| !v.is_finite());
        if bad_prev {
            let reason = "non-finite field values (NaN/Inf) in solution state".to_string();
            return Err(self.violation(ctx, reason, f64::NAN));
        }
        let energy = self.solver.energy_planar(&ctx.state.u_prev, &ctx.state.u_now);
        if !energy.is_finite() {
            let reason = "non-finite discrete energy".to_string();
            return Err(self.violation(ctx, reason, energy));
        }
        // Absolute floor: a quiescent field's rounding noise must not trip
        // the relative growth check.
        const ENERGY_FLOOR: f64 = 1e-300;
        if self.peak_energy > ENERGY_FLOOR && energy > self.cfg.max_energy_growth * self.peak_energy
        {
            let reason = format!(
                "energy growth: E = {energy:.6e} exceeds {}x running peak {:.6e}",
                self.cfg.max_energy_growth, self.peak_energy
            );
            return Err(self.violation(ctx, reason, energy));
        }
        self.peak_energy = self.peak_energy.max(energy);
        Ok(())
    }
}

/// Minimal JSON string escaping for dump header fields.
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_f64_or_null(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v:e}"));
    } else {
        out.push_str("null");
    }
}

/// Write a health-violation post-mortem: one `health_violation` header line
/// followed by the last `last_events` flight-recorder events (NDJSON).
pub fn write_health_dump(
    path: &Path,
    reg: &Registry,
    report: &HealthReport,
    last_events: usize,
) -> std::io::Result<()> {
    let mut line = String::new();
    line.push_str("{\"type\":\"health_violation\",\"rank\":");
    line.push_str(&reg.rank().to_string());
    line.push_str(",\"step\":");
    line.push_str(&report.step.to_string());
    line.push_str(",\"dt\":");
    push_f64_or_null(&mut line, report.dt);
    line.push_str(",\"reason\":");
    push_json_str(&mut line, &report.reason);
    line.push_str(",\"energy\":");
    push_f64_or_null(&mut line, report.energy);
    line.push_str(",\"peak_energy\":");
    push_f64_or_null(&mut line, report.peak_energy);
    line.push_str(",\"bad_dofs\":[");
    for (i, (a, b)) in report.bad_dofs.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        line.push_str(&format!("[{a},{b}]"));
    }
    line.push(']');
    if let Some(ck) = report.last_valid_ckpt {
        line.push_str(",\"last_valid_ckpt\":");
        line.push_str(&ck.to_string());
    }
    line.push_str("}\n");

    let mut file = std::fs::File::create(path)?;
    file.write_all(line.as_bytes())?;
    file.write_all(reg.trace_buffer().ndjson_tail(last_events).as_bytes())?;
    file.flush()
}

/// Write a generic post-mortem for a rank that failed for a non-numerics
/// reason (killed, comm abort, checkpoint error): one `post_mortem` header
/// line followed by the flight-recorder tail. Used by the distributed
/// recovery supervisor when a dump directory is configured.
pub fn dump_post_mortem(
    path: &Path,
    reg: &Registry,
    reason: &str,
    step: u64,
    last_events: usize,
) -> std::io::Result<()> {
    let mut line = String::new();
    line.push_str("{\"type\":\"post_mortem\",\"rank\":");
    line.push_str(&reg.rank().to_string());
    line.push_str(",\"step\":");
    line.push_str(&step.to_string());
    line.push_str(",\"reason\":");
    push_json_str(&mut line, reason);
    line.push_str("}\n");

    let mut file = std::fs::File::create(path)?;
    file.write_all(line.as_bytes())?;
    file.write_all(reg.trace_buffer().ndjson_tail(last_events).as_bytes())?;
    file.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elastic::ElasticConfig;
    use crate::harness::{RunConfig, RunOutcome, SolverHarness};
    use quake_mesh::hexmesh::ElemMaterial;
    use quake_mesh::HexMesh;
    use quake_octree::{BalanceMode, LinearOctree};

    fn setup() -> (HexMesh, ElasticConfig) {
        let tree = {
            let mut t = LinearOctree::build(|o| o.level < 2);
            t.balance(BalanceMode::Full);
            t
        };
        let mesh = HexMesh::from_octree(&tree, 8.0, |_, _, _, _| ElemMaterial {
            lambda: 2.0,
            mu: 1.0,
            rho: 1.0,
        });
        let mut cfg = ElasticConfig::new(1.0);
        cfg.dt = Some(0.05);
        (mesh, cfg)
    }

    fn pulse(mesh: &HexMesh) -> (Vec<f64>, Vec<f64>) {
        let n = mesh.n_nodes();
        let mut u = vec![0.0; 3 * n];
        let v = vec![0.0; 3 * n];
        for (i, c) in mesh.coords.iter().enumerate() {
            let r2 = (c[0] - 4.0).powi(2) + (c[1] - 4.0).powi(2) + (c[2] - 4.0).powi(2);
            u[3 * i + 1] = (-r2 / 2.0).exp();
        }
        let mut uu = u;
        mesh.interpolate_hanging(&mut uu, 3);
        (uu, v)
    }

    #[test]
    fn healthy_run_passes_the_watchdog() {
        let (mesh, cfg) = setup();
        let solver = ElasticSolver::new(&mesh, &cfg);
        let (u0, v0) = pulse(&mesh);
        let mut state = solver.initial_state(0, Some((&u0, &v0)));
        let mut ws = solver.workspace();
        let mut hook = HealthHook::new(&solver, HealthConfig::every(1));
        let outcome = SolverHarness::new(&solver).run(
            &RunConfig::to_step(10),
            &mut state,
            &mut ws,
            &mut crate::harness::NoExchange,
            &mut [&mut hook],
        );
        assert!(matches!(outcome, RunOutcome::Finished { executed: 10 }));
        assert!(hook.report().is_none());
        assert!(hook.peak_energy > 0.0);
    }

    #[test]
    fn nan_in_state_is_caught_within_one_cadence_window() {
        let (mesh, cfg) = setup();
        let solver = ElasticSolver::new(&mesh, &cfg);
        let (u0, v0) = pulse(&mesh);
        let mut state = solver.initial_state(0, Some((&u0, &v0)));
        let mut ws = solver.workspace();
        // Corrupt one entry after 3 clean steps, watchdog cadence 4: the
        // NaN lands before step 3 executes, detection must come at
        // state.step == 4 (post-step index), i.e. within one window.
        struct Corruptor;
        impl StepHook for Corruptor {
            fn before_step(&mut self, ctx: &mut HookCtx<'_>) -> Result<(), StopReason> {
                if ctx.state.step == 3 {
                    ctx.state.u_now[17] = f64::NAN;
                }
                Ok(())
            }
        }
        let mut corrupt = Corruptor;
        let mut hook = HealthHook::new(&solver, HealthConfig::every(4));
        let outcome = SolverHarness::new(&solver).run(
            &RunConfig::to_step(20),
            &mut state,
            &mut ws,
            &mut crate::harness::NoExchange,
            &mut [&mut corrupt, &mut hook],
        );
        let RunOutcome::Stopped { step, reason: StopReason::Health(msg) } = outcome else {
            panic!("watchdog must stop the run, got {outcome:?}");
        };
        assert_eq!(step, 3, "stopped while executing the first checked step window");
        assert!(msg.contains("non-finite"), "{msg}");
        let report = hook.report().expect("report recorded");
        assert_eq!(report.step, 4, "detected at the first cadence boundary");
        assert!(!report.bad_dofs.is_empty());
    }

    #[test]
    fn energy_growth_is_caught_and_reported() {
        let (mesh, cfg) = setup();
        let solver = ElasticSolver::new(&mesh, &cfg);
        let (u0, v0) = pulse(&mesh);
        let mut state = solver.initial_state(0, Some((&u0, &v0)));
        let mut ws = solver.workspace();
        // Inject a finite but huge amplitude spike: energy ratio trips, not
        // the NaN scan.
        struct Amplifier;
        impl StepHook for Amplifier {
            fn before_step(&mut self, ctx: &mut HookCtx<'_>) -> Result<(), StopReason> {
                if ctx.state.step == 5 {
                    for v in ctx.state.u_now.iter_mut() {
                        *v *= 1e6;
                    }
                }
                Ok(())
            }
        }
        let mut amp = Amplifier;
        let mut hook = HealthHook::new(&solver, HealthConfig::every(1).with_max_growth(4.0));
        let outcome = SolverHarness::new(&solver).run(
            &RunConfig::to_step(20),
            &mut state,
            &mut ws,
            &mut crate::harness::NoExchange,
            &mut [&mut amp, &mut hook],
        );
        let RunOutcome::Stopped { reason: StopReason::Health(msg), .. } = outcome else {
            panic!("watchdog must stop the run, got {outcome:?}");
        };
        assert!(msg.contains("energy growth"), "{msg}");
        let report = hook.report().expect("report recorded");
        assert!(report.energy > report.peak_energy * 4.0);
        assert!(report.bad_dofs.is_empty(), "field is finite, just unphysical");
    }

    #[test]
    fn violation_dump_contains_header_and_trace_tail() {
        let (mesh, cfg) = setup();
        let solver = ElasticSolver::new(&mesh, &cfg);
        let (u0, v0) = pulse(&mesh);
        let mut state = solver.initial_state(0, Some((&u0, &v0)));
        let reg = Registry::new(0);
        reg.enable_trace(512);
        let mut ws = solver.workspace_with(reg);
        let dir = std::env::temp_dir()
            .join("quake-health-tests")
            .join(format!("dump-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("violation.ndjson");
        struct Corruptor;
        impl StepHook for Corruptor {
            fn before_step(&mut self, ctx: &mut HookCtx<'_>) -> Result<(), StopReason> {
                if ctx.state.step == 2 {
                    ctx.state.u_now[0] = f64::INFINITY;
                }
                Ok(())
            }
        }
        let mut corrupt = Corruptor;
        let hcfg = HealthConfig::every(1).with_dump(path.clone()).with_ckpt_every(2);
        let mut hook = HealthHook::new(&solver, hcfg);
        let outcome = SolverHarness::new(&solver).run(
            &RunConfig::to_step(10),
            &mut state,
            &mut ws,
            &mut crate::harness::NoExchange,
            &mut [&mut corrupt, &mut hook],
        );
        assert!(matches!(outcome, RunOutcome::Stopped { reason: StopReason::Health(_), .. }));
        let dump = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = dump.lines().collect();
        assert!(lines.len() > 1, "header + trace tail expected:\n{dump}");
        assert!(lines[0].contains("\"type\":\"health_violation\""));
        assert!(lines[0].contains("\"step\":3"));
        assert!(lines[0].contains("\"last_valid_ckpt\":2"));
        assert!(lines[0].contains("\"bad_dofs\":[["));
        // Tail lines are flight-recorder events from the instrumented steps.
        assert!(lines[1..].iter().all(|l| l.contains("\"type\":\"trace\"")));
        assert!(lines[1..].iter().any(|l| l.contains("\"name\":\"step\"")));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
