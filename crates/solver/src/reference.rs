//! Frozen pre-optimization explicit step — the equivalence and benchmark
//! baseline.
//!
//! This is the elastic step exactly as it existed before the hot-path
//! overhaul: ascending element order, a separate row-wise `elastic_matvec`
//! per input vector (two full sweeps over the canonical matrices for damped
//! elements), a per-step scratch vector for the absorbing-boundary
//! tractions, and separate passes for the diagonal-damping term and the
//! history/`lhs_inv` tail. Keep it frozen: `bench_step` measures the fused
//! step against it, and the solver tests assert <= 1e-12 agreement.

use crate::abc::apply_abc_stiffness;
use crate::elastic::ElasticSolver;
use quake_fem::hex8::{elastic_hex_matrices, ElasticHexMatrices};

/// The original row-wise element matvec (single accumulator pair per row, no
/// column blocking): `y += scale * (lambda K_L + mu K_M) x`.
#[inline]
fn matvec_rowwise(
    m: &ElasticHexMatrices,
    lambda: f64,
    mu: f64,
    scale: f64,
    x: &[f64; 24],
    y: &mut [f64; 24],
) {
    for r in 0..24 {
        let rl = &m.k_lambda[r];
        let rm = &m.k_mu[r];
        let mut al = 0.0;
        let mut am = 0.0;
        for c in 0..24 {
            al += rl[c] * x[c];
            am += rm[c] * x[c];
        }
        y[r] += scale * (lambda * al + mu * am);
    }
}

/// One explicit step of the pre-optimization two-pass implementation over
/// the full domain. Semantically equivalent to
/// [`ElasticSolver::step`]; numerically equal up to floating-point
/// summation order (different element order and accumulator shape).
pub fn reference_step(
    solver: &ElasticSolver<'_>,
    u_prev: &[f64],
    u_now: &[f64],
    f_ext: &[f64],
    u_next: &mut [f64],
) {
    let mesh = solver.mesh;
    let ndof = 3 * mesh.n_nodes();
    assert_eq!(u_prev.len(), ndof);
    assert_eq!(u_now.len(), ndof);
    assert_eq!(f_ext.len(), ndof);
    assert_eq!(u_next.len(), ndof);
    let dt = solver.dt;
    let dt2 = dt * dt;
    let mats = elastic_hex_matrices();

    let rhs = u_next;
    for d in 0..ndof {
        rhs[d] = dt2 * f_ext[d];
    }
    // Element loop in ascending (Morton) order; damped elements pay a second
    // full sweep over the canonical matrices.
    for (i, e) in mesh.elements.iter().enumerate() {
        let mut xu = [0.0; 24];
        let mut xw = [0.0; 24];
        for (c, &nd) in e.nodes.iter().enumerate() {
            let b = nd as usize * 3;
            for comp in 0..3 {
                xu[3 * c + comp] = u_now[b + comp];
                xw[3 * c + comp] = u_now[b + comp] - u_prev[b + comp];
            }
        }
        let mut y = [0.0; 24];
        matvec_rowwise(mats, e.material.lambda, e.material.mu, e.h, &xu, &mut y);
        let mut yw = [0.0; 24];
        if solver.beta[i] != 0.0 {
            matvec_rowwise(mats, e.material.lambda, e.material.mu, e.h, &xw, &mut yw);
        }
        let bscale = 0.5 * dt * solver.beta[i];
        for (c, &nd) in e.nodes.iter().enumerate() {
            let b = nd as usize * 3;
            for comp in 0..3 {
                rhs[b + comp] -= dt2 * y[3 * c + comp] + bscale * yw[3 * c + comp];
            }
        }
    }

    // Stacey K^AB through a freshly allocated traction vector (the per-step
    // allocation the overhaul removed).
    if !solver.faces.is_empty() {
        let mut fab = vec![0.0; ndof];
        apply_abc_stiffness(&solver.faces, u_now, &mut fab, 1.0);
        for d in 0..ndof {
            rhs[d] += dt2 * fab[d];
        }
    }

    // Diagonal damping term on w = u0 - u- (its own pass).
    for d in 0..ndof {
        rhs[d] -= 0.5 * dt * solver.damp_diag[d] * (u_now[d] - u_prev[d]);
    }

    mesh.fold_hanging(rhs, 3);

    // History terms and the diagonal solve (two statements, one pass — as in
    // the original).
    for d in 0..ndof {
        rhs[d] += (2.0 * solver.mass_f[d] + 0.5 * dt * solver.cdiag_f[d]) * u_now[d]
            - solver.mass_f[d] * u_prev[d];
        rhs[d] *= solver.lhs_inv[d];
    }
    mesh.interpolate_hanging(rhs, 3);
}
