//! Seismograms and waveform post-processing.

/// A multi-component time series recorded at a receiver.
#[derive(Clone, Debug, PartialEq)]
pub struct Seismogram {
    pub dt: f64,
    pub ncomp: usize,
    /// Sample-major storage: `data[k * ncomp + c]`.
    pub data: Vec<f64>,
}

impl Seismogram {
    pub fn new(dt: f64, ncomp: usize) -> Seismogram {
        Seismogram { dt, ncomp, data: Vec::new() }
    }

    pub fn push(&mut self, sample: &[f64]) {
        assert_eq!(sample.len(), self.ncomp);
        self.data.extend_from_slice(sample);
    }

    pub fn n_samples(&self) -> usize {
        self.data.len() / self.ncomp
    }

    /// One component as a contiguous vector.
    pub fn component(&self, c: usize) -> Vec<f64> {
        assert!(c < self.ncomp);
        self.data.iter().skip(c).step_by(self.ncomp).copied().collect()
    }

    /// Velocity of one component by central differences.
    pub fn velocity(&self, c: usize) -> Vec<f64> {
        let u = self.component(c);
        let n = u.len();
        let mut v = vec![0.0; n];
        for k in 1..n.saturating_sub(1) {
            v[k] = (u[k + 1] - u[k - 1]) / (2.0 * self.dt);
        }
        if n >= 2 {
            v[0] = (u[1] - u[0]) / self.dt;
            v[n - 1] = (u[n - 1] - u[n - 2]) / self.dt;
        }
        v
    }

    /// Peak absolute amplitude of a component.
    pub fn peak(&self, c: usize) -> f64 {
        self.component(c).iter().fold(0.0f64, |m, v| m.max(v.abs()))
    }
}

/// Append one displacement sample per receiver: trace `i` gets the three
/// components of `u` at node `nodes[i]`. This is the single sampling routine
/// every solver loop routes through (the harness's `ReceiverHook`, the tet
/// baseline) — the interpolation used to be re-implemented inline in each
/// step loop.
pub fn record_sample(traces: &mut [Seismogram], nodes: &[u32], u: &[f64]) {
    assert_eq!(traces.len(), nodes.len());
    for (tr, &nd) in traces.iter_mut().zip(nodes) {
        let b = nd as usize * 3;
        tr.push(&u[b..b + 3]);
    }
}

/// [`record_sample`] for a *planar* displacement vector (`dof = comp * n +
/// node`, `n = u.len() / 3` — the elastic solver's internal layout). The
/// sample values are identical to the interleaved variant's.
pub fn record_sample_planar(traces: &mut [Seismogram], nodes: &[u32], u: &[f64]) {
    assert_eq!(traces.len(), nodes.len());
    let n = u.len() / 3;
    for (tr, &nd) in traces.iter_mut().zip(nodes) {
        let nd = nd as usize;
        tr.push(&[u[nd], u[n + nd], u[2 * n + nd]]);
    }
}

/// Zero-phase low-pass filter: a 2nd-order Butterworth biquad applied
/// forward then backward (filtfilt), as used to band-limit the Fig 2.4
/// waveform comparisons to 0.5 / 1.0 Hz.
pub fn lowpass_filtfilt(x: &[f64], dt: f64, fc: f64) -> Vec<f64> {
    assert!(fc > 0.0 && dt > 0.0);
    let fwd = biquad_lowpass(x, dt, fc);
    let mut rev: Vec<f64> = fwd.into_iter().rev().collect();
    rev = biquad_lowpass(&rev, dt, fc);
    rev.reverse();
    rev
}

fn biquad_lowpass(x: &[f64], dt: f64, fc: f64) -> Vec<f64> {
    // Standard RBJ biquad, Q = 1/sqrt(2).
    let w0 = 2.0 * std::f64::consts::PI * fc * dt;
    let cw = w0.cos();
    let sw = w0.sin();
    let alpha = sw / 2.0f64.sqrt();
    let b0 = (1.0 - cw) / 2.0;
    let b1 = 1.0 - cw;
    let b2 = (1.0 - cw) / 2.0;
    let a0 = 1.0 + alpha;
    let a1 = -2.0 * cw;
    let a2 = 1.0 - alpha;
    let (b0, b1, b2, a1, a2) = (b0 / a0, b1 / a0, b2 / a0, a1 / a0, a2 / a0);
    let mut y = vec![0.0; x.len()];
    let (mut x1, mut x2, mut y1, mut y2) = (0.0, 0.0, 0.0, 0.0);
    for (i, &xi) in x.iter().enumerate() {
        let yi = b0 * xi + b1 * x1 + b2 * x2 - a1 * y1 - a2 * y2;
        y[i] = yi;
        x2 = x1;
        x1 = xi;
        y2 = y1;
        y1 = yi;
    }
    y
}

/// Normalized cross-correlation at zero lag — the waveform-similarity score
/// used to compare hex vs tet seismograms.
pub fn correlation(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    dot / (na * nb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seismogram_components_roundtrip() {
        let mut s = Seismogram::new(0.1, 3);
        s.push(&[1.0, 2.0, 3.0]);
        s.push(&[4.0, 5.0, 6.0]);
        assert_eq!(s.n_samples(), 2);
        assert_eq!(s.component(0), vec![1.0, 4.0]);
        assert_eq!(s.component(2), vec![3.0, 6.0]);
        assert_eq!(s.peak(1), 5.0);
    }

    #[test]
    fn velocity_of_linear_ramp_is_constant() {
        let mut s = Seismogram::new(0.5, 1);
        for k in 0..10 {
            s.push(&[2.0 * k as f64 * 0.5]);
        }
        let v = s.velocity(0);
        for vi in v {
            assert!((vi - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn lowpass_keeps_slow_kills_fast() {
        let dt = 0.01;
        let n = 2000;
        let slow: Vec<f64> =
            (0..n).map(|k| (2.0 * std::f64::consts::PI * 0.2 * k as f64 * dt).sin()).collect();
        let fast: Vec<f64> =
            (0..n).map(|k| (2.0 * std::f64::consts::PI * 10.0 * k as f64 * dt).sin()).collect();
        let mixed: Vec<f64> = slow.iter().zip(&fast).map(|(a, b)| a + b).collect();
        let filt = lowpass_filtfilt(&mixed, dt, 1.0);
        // Middle section (away from edge transients) matches the slow part.
        let mut err = 0.0;
        let mut norm = 0.0;
        for k in 300..n - 300 {
            err += (filt[k] - slow[k]).powi(2);
            norm += slow[k].powi(2);
        }
        assert!((err / norm).sqrt() < 0.05);
    }

    #[test]
    fn filtfilt_is_zero_phase() {
        // A symmetric pulse stays centered after filtering.
        let dt = 0.01;
        let n = 1001;
        let x: Vec<f64> = (0..n).map(|k| (-((k as f64 - 500.0) / 30.0).powi(2)).exp()).collect();
        let y = lowpass_filtfilt(&x, dt, 2.0);
        let peak_idx = y.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).unwrap().0;
        assert!((peak_idx as i64 - 500).abs() <= 1, "peak moved to {peak_idx}");
    }

    #[test]
    fn correlation_bounds() {
        let a = [1.0, 2.0, -1.0, 0.5];
        assert!((correlation(&a, &a) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = a.iter().map(|v| -v).collect();
        assert!((correlation(&a, &neg) + 1.0).abs() < 1e-12);
        let zero = [0.0; 4];
        assert_eq!(correlation(&a, &zero), 0.0);
    }
}
