//! The linear-tetrahedral baseline solver — the paper's "old" design.
//!
//! Before the octree hexahedral code, the Quake group's solvers used linear
//! tets with node-based sparse data structures. Section 2 credits the new
//! code with ~10x less memory and much better cache behaviour; Fig 2.4
//! compares the two codes' seismograms. This module reproduces that
//! baseline: each hex of the input mesh is split into 6 tets, the global
//! stiffness is assembled into CSR (the memory the hex code never spends),
//! and time stepping is the same lumped-mass central-difference scheme with
//! first-order (damping-only) absorbing boundaries.

use crate::abc::{accumulate_abc_damping, build_abc_faces};
use quake_fem::tet4::{tet4_lumped_mass, tet4_stiffness, HEX_TO_TETS};
use quake_mesh::HexMesh;

/// Compressed-sparse-row symmetric stiffness matrix over 3N dofs.
pub struct Csr {
    pub row_ptr: Vec<usize>,
    pub col_idx: Vec<u32>,
    pub values: Vec<f64>,
}

impl Csr {
    /// `y = A x`.
    pub fn mul(&self, x: &[f64], y: &mut [f64]) {
        for (r, yr) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for i in self.row_ptr[r]..self.row_ptr[r + 1] {
                acc += self.values[i] * x[self.col_idx[i] as usize];
            }
            *yr = acc;
        }
    }

    /// Storage footprint in bytes (the memory-comparison figure).
    pub fn memory_bytes(&self) -> usize {
        self.row_ptr.len() * 8 + self.col_idx.len() * 4 + self.values.len() * 8
    }
}

/// The assembled tetrahedral solver.
pub struct TetSolver<'m> {
    pub mesh: &'m HexMesh,
    pub dt: f64,
    pub k: Csr,
    mass: Vec<f64>,
    cab_diag: Vec<f64>,
    lhs_inv: Vec<f64>,
}

impl<'m> TetSolver<'m> {
    /// Assemble from a hex mesh (each hex -> 6 tets). Supports meshes
    /// without hanging nodes (the baseline code never had an octree).
    pub fn new(mesh: &'m HexMesh, dt: f64, abc: [bool; 6]) -> TetSolver<'m> {
        assert_eq!(
            mesh.n_hanging(),
            0,
            "the tetrahedral baseline supports conforming (uniform) meshes only"
        );
        let n = mesh.n_nodes();
        let ndof = 3 * n;

        // Assembly: triplets -> CSR.
        let mut triplets: Vec<(u32, u32, f64)> = Vec::new();
        let mut mass = vec![0.0; n];
        for e in &mesh.elements {
            let lo = mesh.coords[e.nodes[0] as usize];
            let corner = |c: usize| -> [f64; 3] {
                [
                    lo[0] + if c & 1 != 0 { e.h } else { 0.0 },
                    lo[1] + if c & 2 != 0 { e.h } else { 0.0 },
                    lo[2] + if c & 4 != 0 { e.h } else { 0.0 },
                ]
            };
            for tet in HEX_TO_TETS {
                let v = [corner(tet[0]), corner(tet[1]), corner(tet[2]), corner(tet[3])];
                let ke = tet4_stiffness(&v, e.material.lambda, e.material.mu);
                let m = tet4_lumped_mass(&v, e.material.rho);
                let gids = [e.nodes[tet[0]], e.nodes[tet[1]], e.nodes[tet[2]], e.nodes[tet[3]]];
                for (a, &ga) in gids.iter().enumerate() {
                    mass[ga as usize] += m;
                    for (b, &gb) in gids.iter().enumerate() {
                        for ca in 0..3 {
                            for cb in 0..3 {
                                let val = ke[(3 * a + ca, 3 * b + cb)];
                                if val != 0.0 {
                                    triplets.push((ga * 3 + ca as u32, gb * 3 + cb as u32, val));
                                }
                            }
                        }
                    }
                }
            }
        }
        triplets.sort_unstable_by_key(|t| (t.0, t.1));
        let mut row_ptr = vec![0usize; ndof + 1];
        let mut col_idx = Vec::new();
        let mut values: Vec<f64> = Vec::new();
        let mut i = 0;
        for r in 0..ndof as u32 {
            row_ptr[r as usize] = col_idx.len();
            while i < triplets.len() && triplets[i].0 == r {
                let c = triplets[i].1;
                let mut v = 0.0;
                while i < triplets.len() && triplets[i].0 == r && triplets[i].1 == c {
                    v += triplets[i].2;
                    i += 1;
                }
                col_idx.push(c);
                values.push(v);
            }
        }
        row_ptr[ndof] = col_idx.len();
        let k = Csr { row_ptr, col_idx, values };

        // First-order ABC: the same lumped face damping as the hex solver
        // (the c1 coupling terms are the hex code's improvement).
        let faces = build_abc_faces(mesh, abc);
        let mut cab_diag = vec![0.0; ndof];
        accumulate_abc_damping(&faces, &mut cab_diag);

        let mut lhs_inv = vec![0.0; ndof];
        for nd in 0..n {
            for c in 0..3 {
                lhs_inv[3 * nd + c] = 1.0 / (mass[nd] + 0.5 * dt * cab_diag[3 * nd + c]);
            }
        }
        TetSolver { mesh, dt, k, mass, cab_diag, lhs_inv }
    }

    /// One central-difference step.
    pub fn step(&self, u_prev: &[f64], u_now: &[f64], f_ext: &[f64], u_next: &mut [f64]) {
        let ndof = 3 * self.mesh.n_nodes();
        let dt = self.dt;
        let dt2 = dt * dt;
        self.k.mul(u_now, u_next);
        for d in 0..ndof {
            let m = self.mass[d / 3];
            u_next[d] = (2.0 * m * u_now[d] - dt2 * u_next[d]
                + (-m + 0.5 * dt * self.cab_diag[d]) * u_prev[d]
                + dt2 * f_ext[d])
                * self.lhs_inv[d];
        }
    }

    /// Run from an initial state for `n_steps`, returning the final pair.
    ///
    /// Delegates to the same canonical leapfrog loop as the hex solver
    /// ([`crate::harness::leapfrog_to_state`]) so the two baselines share
    /// final-step semantics: the returned pair is `(u at (n-1) dt, u at n dt)`.
    pub fn run_to_state(
        &self,
        initial: Option<(&[f64], &[f64])>,
        n_steps: usize,
    ) -> (Vec<f64>, Vec<f64>) {
        let ndof = 3 * self.mesh.n_nodes();
        crate::harness::leapfrog_to_state(ndof, self.dt, initial, n_steps, |up, un, f, unext| {
            self.step(up, un, f, unext)
        })
    }

    /// Run with sources and record receiver displacement traces.
    pub fn run(
        &self,
        sources: &[crate::sources::AssembledSource],
        receiver_nodes: &[u32],
        n_steps: usize,
    ) -> Vec<crate::receivers::Seismogram> {
        let ndof = 3 * self.mesh.n_nodes();
        let mut u_prev = vec![0.0; ndof];
        let mut u_now = vec![0.0; ndof];
        let mut u_next = vec![0.0; ndof];
        let mut f = vec![0.0; ndof];
        let mut traces: Vec<crate::receivers::Seismogram> =
            receiver_nodes.iter().map(|_| crate::receivers::Seismogram::new(self.dt, 3)).collect();
        for kstep in 0..n_steps {
            let t = kstep as f64 * self.dt;
            f.iter_mut().for_each(|v| *v = 0.0);
            for s in sources {
                s.add_force(t, &mut f);
            }
            self.step(&u_prev, &u_now, &f, &mut u_next);
            crate::receivers::record_sample(&mut traces, receiver_nodes, &u_now);
            std::mem::swap(&mut u_prev, &mut u_now);
            std::mem::swap(&mut u_now, &mut u_next);
        }
        traces
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quake_mesh::hexmesh::ElemMaterial;
    use quake_octree::LinearOctree;

    fn mesh(level: u8) -> HexMesh {
        HexMesh::from_octree(&LinearOctree::uniform(level), 8.0, |_, _, _, _| ElemMaterial {
            lambda: 2.0,
            mu: 1.0,
            rho: 1.0,
        })
    }

    #[test]
    fn csr_stiffness_annihilates_rigid_modes() {
        let m = mesh(2);
        let s = TetSolver::new(&m, 0.05, [false; 6]);
        let ndof = 3 * m.n_nodes();
        for comp in 0..3 {
            let mut u = vec![0.0; ndof];
            for nd in 0..m.n_nodes() {
                u[3 * nd + comp] = 1.0;
            }
            let mut y = vec![0.0; ndof];
            s.k.mul(&u, &mut y);
            for v in &y {
                assert!(v.abs() < 1e-9);
            }
        }
    }

    #[test]
    fn csr_is_symmetric_on_probes() {
        let m = mesh(1);
        let s = TetSolver::new(&m, 0.05, [false; 6]);
        let ndof = 3 * m.n_nodes();
        let mut st = 3u64;
        let mut rnd = || {
            st = st.wrapping_mul(6364136223846793005).wrapping_add(1);
            (st >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let a: Vec<f64> = (0..ndof).map(|_| rnd()).collect();
        let b: Vec<f64> = (0..ndof).map(|_| rnd()).collect();
        let mut ka = vec![0.0; ndof];
        s.k.mul(&a, &mut ka);
        let mut kb = vec![0.0; ndof];
        s.k.mul(&b, &mut kb);
        let x: f64 = ka.iter().zip(&b).map(|(p, q)| p * q).sum();
        let y: f64 = kb.iter().zip(&a).map(|(p, q)| p * q).sum();
        assert!((x - y).abs() < 1e-9 * (1.0 + x.abs()));
    }

    #[test]
    fn tet_and_hex_agree_on_smooth_pulse() {
        // Both second-order discretizations of the same PDE on the same
        // nodes: a well-resolved pulse must evolve nearly identically.
        use crate::elastic::{ElasticConfig, ElasticSolver};
        let m = mesh(3); // h = 1
        let mut cfg = ElasticConfig::new(1.0);
        cfg.abc = [false; 6];
        cfg.dt = Some(0.05);
        let hex = ElasticSolver::new(&m, &cfg);
        let tet = TetSolver::new(&m, 0.05, [false; 6]);
        let n = m.n_nodes();
        let mut u0 = vec![0.0; 3 * n];
        let v0 = vec![0.0; 3 * n];
        for (i, c) in m.coords.iter().enumerate() {
            let r2 = (c[0] - 4.0).powi(2) + (c[1] - 4.0).powi(2) + (c[2] - 4.0).powi(2);
            u0[3 * i + 1] = (-r2 / 4.0).exp();
        }
        let steps = 30;
        let (_, uh) =
            crate::harness::SolverHarness::new(&hex).run_to_state(Some((&u0, &v0)), steps);
        let (_, ut) = tet.run_to_state(Some((&u0, &v0)), steps);
        let mut err = 0.0;
        let mut norm = 0.0;
        for d in 0..3 * n {
            err += (uh[d] - ut[d]).powi(2);
            norm += uh[d].powi(2);
        }
        let rel = (err / norm).sqrt();
        assert!(rel < 0.15, "hex/tet disagree: {rel}");
    }

    #[test]
    fn tet_memory_exceeds_hex_by_large_factor() {
        // The paper's ~10x memory claim: CSR storage vs the hex solver's
        // matrix-free footprint.
        let m = mesh(3);
        let s = TetSolver::new(&m, 0.05, [false; 6]);
        let tet_bytes = s.k.memory_bytes();
        let hex_bytes = m.memory_estimate_bytes(3);
        assert!(tet_bytes > 3 * hex_bytes, "tet {tet_bytes} vs hex {hex_bytes}");
    }
}
