//! The blocked element sweep: per-class stiffness templates applied to
//! cache-sized batches of elements, color by color.
//!
//! Octree meshes have very few *distinct* elements: all elements of one
//! refinement level share the side `h`, so elements agreeing on `(h, lambda,
//! mu)` share the exact combined stiffness `T = h (lambda K_L + mu K_M)`
//! (`quake_fem::hex8::combined_hex_stiffness`). A [`SweepSchedule`]
//! precomputes one 24x24 template per distinct class and reorders each color
//! of the node-disjoint coloring so same-class elements are contiguous; the
//! kernel then processes a class run in batches of [`BATCH`] elements:
//!
//! ```text
//! gather   X[24 x B]  <- dt^2 u + (dt beta_e/2) w   (planar SoA reads)
//! matvec   Y[24 x B]  =  T[24 x 24] X[24 x B]       (one L1-resident template)
//! scatter  rhs       -=  Y                          (planar SoA writes)
//! ```
//!
//! versus the fused per-element kernel this replaces, the template matvec
//! does half the flops (one 24x24 matrix instead of two canonical ones) and
//! streams no matrix data at all in the steady state (the active template
//! stays in L1 across its whole run). The fixed-width inner loops over the
//! batch lanes vectorize without a reduction dependency.
//!
//! Reordering elements within a color is bit-safe: the coloring is
//! node-disjoint, so within one color every rhs entry is written by at most
//! one element — the scatter order cannot change any floating-point sum.
//! Each element's own accumulation runs in fixed ascending-column order,
//! independent of its batch position or thread, so the sweep is
//! bit-deterministic for any thread count and any chunking.

use quake_fem::hex8::combined_hex_stiffness;
use quake_mesh::coloring::ElementColoring;
use quake_mesh::HexMesh;

/// Elements processed per kernel invocation. 32 lanes keep the X/Y scratch
/// (2 x 24 x 32 doubles = 12 KiB) plus one template (4.5 KiB) L1-resident
/// while giving the auto-vectorizer full-width independent accumulators.
pub const BATCH: usize = 32;

/// A maximal run of same-class elements inside one color, half-open over
/// schedule positions.
#[derive(Clone, Copy, Debug)]
struct Run {
    class: u32,
    begin: u32,
    end: u32,
}

/// The precomputed element schedule of one [`StepScope`](crate::elastic::StepScope):
/// per-class stiffness templates, the color-major (class, id)-sorted element
/// order, and the per-element gather data (corner nodes, damping scale).
/// Built once per scope, reused every step.
pub struct SweepSchedule {
    n_nodes: usize,
    /// `dt^2`, folded into the gather so the matvec needs no post-scale.
    dt2: f64,
    /// One combined stiffness per class, flat row-major, stride 576.
    templates: Vec<f64>,
    /// Corner nodes of scheduled element `j`: `nodes[8j..8j+8]` (all `< n_nodes`).
    nodes: Vec<u32>,
    /// Damping gather coefficient `dt beta_e / 2` of scheduled element `j`.
    bscale: Vec<f64>,
    /// Class-homogeneous runs in schedule order.
    runs: Vec<Run>,
    /// Color `ci` owns `runs[color_runs[ci]..color_runs[ci+1]]`.
    color_runs: Vec<usize>,
}

impl SweepSchedule {
    /// Build the schedule for a colored element subset: group the mesh's
    /// distinct `(h, lambda, mu)` classes (exact bit equality), precompute
    /// one combined template per class, and sort each color's elements by
    /// (class, id) so the kernel sees maximal same-template runs.
    pub fn build(
        mesh: &HexMesh,
        coloring: &ElementColoring,
        beta: &[f64],
        dt: f64,
    ) -> SweepSchedule {
        let n = mesh.n_nodes();
        let class_key = |ei: u32| {
            let e = &mesh.elements[ei as usize];
            (e.h.to_bits(), e.material.lambda.to_bits(), e.material.mu.to_bits())
        };
        let mut keys: Vec<(u64, u64, u64)> = coloring.order.iter().map(|&e| class_key(e)).collect();
        keys.sort_unstable();
        keys.dedup();
        let mut templates = Vec::with_capacity(keys.len() * 576);
        for &(h, l, m) in &keys {
            let t = combined_hex_stiffness(f64::from_bits(l), f64::from_bits(m), f64::from_bits(h));
            templates.extend_from_slice(&t);
        }

        let n_sched = coloring.order.len();
        let mut nodes = Vec::with_capacity(8 * n_sched);
        let mut bscale = Vec::with_capacity(n_sched);
        let mut runs: Vec<Run> = Vec::new();
        let mut color_runs = Vec::with_capacity(coloring.n_colors() + 1);
        color_runs.push(0);
        let mut pos = 0u32;
        let mut sorted: Vec<(u32, u32)> = Vec::new();
        for color in coloring.colors() {
            sorted.clear();
            for &ei in color {
                let class = keys.binary_search(&class_key(ei)).expect("class registered") as u32;
                sorted.push((class, ei));
            }
            // Within a color the node sets are pairwise disjoint, so any
            // element order gives bit-identical scatters; (class, id) order
            // maximizes template reuse while keeping Morton order per class.
            sorted.sort_unstable();
            for &(class, ei) in &*sorted {
                let e = &mesh.elements[ei as usize];
                for &nd in &e.nodes {
                    assert!((nd as usize) < n, "element node out of range");
                    nodes.push(nd);
                }
                bscale.push(0.5 * dt * beta[ei as usize]);
                // Extend the current run only within this color (a run that
                // ended exactly at the previous color boundary must not leak
                // across it).
                let extend = match runs.last() {
                    Some(r) if r.class == class && r.end == pos => {
                        color_runs.last() != Some(&runs.len())
                    }
                    _ => false,
                };
                if extend {
                    runs.last_mut().expect("nonempty when extending").end = pos + 1;
                } else {
                    runs.push(Run { class, begin: pos, end: pos + 1 });
                }
                pos += 1;
            }
            color_runs.push(runs.len());
        }
        SweepSchedule { n_nodes: n, dt2: dt * dt, templates, nodes, bscale, runs, color_runs }
    }

    pub fn n_colors(&self) -> usize {
        self.color_runs.len() - 1
    }

    /// Number of scheduled elements.
    pub fn n_elements(&self) -> usize {
        self.bscale.len()
    }

    /// Number of distinct stiffness classes (levels x materials).
    pub fn n_classes(&self) -> usize {
        self.templates.len() / 576
    }

    /// Schedule-position span of color `ci`.
    fn color_span(&self, ci: usize) -> (usize, usize) {
        let (rlo, rhi) = (self.color_runs[ci], self.color_runs[ci + 1]);
        if rlo == rhi {
            return (0, 0);
        }
        (self.runs[rlo].begin as usize, self.runs[rhi - 1].end as usize)
    }

    // lint:hot-path — the blocked element kernel: per-class template
    // batches with unchecked planar gather/scatter. Runs once per element
    // per step; fixed-size stack scratch only, bit-deterministic for any
    // thread count or chunking (node-disjoint colors).
    /// Process every element of color `ci` serially. `u_now`/`w`/`rhs` are
    /// planar (`dof = comp * n_nodes + node`).
    pub fn sweep_color(&self, ci: usize, u_now: &[f64], w: &[f64], rhs: &mut [f64]) {
        let n3 = 3 * self.n_nodes;
        assert_eq!(u_now.len(), n3);
        assert_eq!(w.len(), n3);
        assert_eq!(rhs.len(), n3);
        let (lo, hi) = self.color_span(ci);
        // SAFETY: `rhs` is an exclusive borrow of a `3 * n_nodes` buffer
        // (asserted above) and this thread is the only writer; every node id
        // in the schedule was validated `< n_nodes` at build time
        // (UNSAFE_LEDGER.md).
        unsafe { self.sweep_range_raw(ci, lo, hi, u_now, w, rhs.as_mut_ptr()) };
    }

    /// Threaded sweep over all colors: each color's schedule span is split
    /// into contiguous chunks, one per thread, with a barrier between colors.
    /// Within a color no two elements share a node, so concurrent scatters
    /// touch disjoint `rhs` entries; per-element arithmetic is independent of
    /// the chunking, so the result is bit-identical to the serial sweep.
    #[cfg(feature = "parallel")]
    pub fn sweep_parallel(&self, threads: usize, u_now: &[f64], w: &[f64], rhs: &mut [f64]) {
        let n3 = 3 * self.n_nodes;
        assert_eq!(u_now.len(), n3);
        assert_eq!(w.len(), n3);
        assert_eq!(rhs.len(), n3);
        struct RhsPtr(*mut f64);
        // SAFETY: sharing a raw `*mut f64` to rhs across threads is sound
        // because the coloring is node-disjoint and chunks are disjoint — no
        // two threads ever write the same entry between barriers
        // (UNSAFE_LEDGER.md).
        unsafe impl Sync for RhsPtr {}
        let ptr = RhsPtr(rhs.as_mut_ptr());
        let barrier = std::sync::Barrier::new(threads);
        std::thread::scope(|s| {
            for tid in 0..threads {
                let ptr = &ptr;
                let barrier = &barrier;
                s.spawn(move || {
                    for ci in 0..self.n_colors() {
                        let (clo, chi) = self.color_span(ci);
                        let len = chi - clo;
                        let per = len.div_ceil(threads);
                        let lo = clo + (tid * per).min(len);
                        let hi = clo + ((tid + 1) * per).min(len);
                        if lo < hi {
                            // SAFETY: `ptr.0` points to the live exclusive
                            // rhs buffer for the whole scope; threads write
                            // disjoint entries (node-disjoint color, disjoint
                            // [lo, hi) chunks) and the barrier orders colors
                            // (UNSAFE_LEDGER.md).
                            unsafe { self.sweep_range_raw(ci, lo, hi, u_now, w, ptr.0) };
                        }
                        barrier.wait();
                    }
                });
            }
        });
    }

    /// The batched kernel over schedule positions `[lo, hi)` of color `ci`,
    /// writing through a raw pointer (the threaded sweep's chunks alias the
    /// same buffer; disjointness — not the borrow checker — guarantees race
    /// freedom).
    ///
    /// # Safety
    /// `rhs` must point to a live `3 * n_nodes` buffer, and no other thread
    /// may concurrently access the entries of this range's element nodes.
    /// Callers discharge this via the node-disjoint coloring (within a color
    /// no two elements share a node) plus disjoint `[lo, hi)` chunks and an
    /// inter-color barrier. `u_now` and `w` must be `3 * n_nodes` long
    /// (checked by the safe wrappers); schedule node ids are validated at
    /// build time, so the unchecked planar accesses stay in bounds (see
    /// UNSAFE_LEDGER.md).
    unsafe fn sweep_range_raw(
        &self,
        ci: usize,
        lo: usize,
        hi: usize,
        u_now: &[f64],
        w: &[f64],
        rhs: *mut f64,
    ) {
        let n = self.n_nodes;
        let dt2 = self.dt2;
        // Batch scratch: X holds the combined gather, Y the template matvec.
        // Stale tail lanes of X (partial batches) are finite garbage whose Y
        // columns are computed but never scattered.
        let mut x = [[0.0f64; BATCH]; 24];
        let mut y = [[0.0f64; BATCH]; 24];
        for r in &self.runs[self.color_runs[ci]..self.color_runs[ci + 1]] {
            let seg_lo = lo.max(r.begin as usize);
            let seg_hi = hi.min(r.end as usize);
            if seg_lo >= seg_hi {
                continue;
            }
            let t = &self.templates[r.class as usize * 576..r.class as usize * 576 + 576];
            let mut j = seg_lo;
            while j < seg_hi {
                let nb = (seg_hi - j).min(BATCH);
                for b in 0..nb {
                    let el = j + b;
                    let bs = *self.bscale.get_unchecked(el);
                    for c8 in 0..8 {
                        let nd = *self.nodes.get_unchecked(8 * el + c8) as usize;
                        for comp in 0..3 {
                            let dof = comp * n + nd;
                            x[3 * c8 + comp][b] =
                                dt2 * *u_now.get_unchecked(dof) + bs * *w.get_unchecked(dof);
                        }
                    }
                }
                // Y[r][:] = sum_c T[r][c] X[c][:], fixed ascending-c order:
                // each lane's sum is independent of batch composition, thread
                // chunking, and nb, so per-element results are bit-stable.
                for row in 0..24 {
                    let mut acc = [0.0f64; BATCH];
                    for c in 0..24 {
                        let trc = *t.get_unchecked(24 * row + c);
                        for b in 0..BATCH {
                            acc[b] += trc * x[c][b];
                        }
                    }
                    y[row] = acc;
                }
                for b in 0..nb {
                    let el = j + b;
                    for c8 in 0..8 {
                        let nd = *self.nodes.get_unchecked(8 * el + c8) as usize;
                        for comp in 0..3 {
                            let p = rhs.add(comp * n + nd);
                            *p -= y[3 * c8 + comp][b];
                        }
                    }
                }
                j += nb;
            }
        }
    }
    // lint:hot-path-end
}

#[cfg(test)]
mod tests {
    use super::*;
    use quake_fem::hex8::{elastic_hex_matrices, elastic_matvec};
    use quake_mesh::coloring::color_elements;
    use quake_mesh::hexmesh::ElemMaterial;
    use quake_octree::{BalanceMode, LinearOctree, MAX_LEVEL};

    fn hanging_mesh() -> HexMesh {
        let half = 1u32 << (MAX_LEVEL - 1);
        let mut tree = LinearOctree::build(|o| o.level < 3 || (o.level < 4 && o.x < half));
        tree.balance(BalanceMode::Full);
        HexMesh::from_octree(&tree, 8.0, |x, _, _, _| ElemMaterial {
            lambda: if x < 4.0 { 2.0 } else { 3.5 },
            mu: if x < 4.0 { 1.0 } else { 0.8 },
            rho: 1.0,
        })
    }

    fn rnd_vec(n: usize, seed: u64) -> Vec<f64> {
        let mut s = seed;
        (0..n)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            })
            .collect()
    }

    /// The blocked template sweep against a plain per-element loop using the
    /// canonical two-matrix matvec: <= 1e-13 relative on every dof, across
    /// levels (two octree levels in the mesh) and heterogeneous materials.
    #[test]
    fn blocked_sweep_matches_per_element_matvec() {
        let mesh = hanging_mesh();
        let n = mesh.n_nodes();
        let elems: Vec<u32> = (0..mesh.n_elements() as u32).collect();
        let coloring = color_elements(&mesh, &elems);
        let beta: Vec<f64> = (0..mesh.n_elements()).map(|i| 0.01 * (i % 3) as f64).collect();
        let dt = 0.05;
        let sched = SweepSchedule::build(&mesh, &coloring, &beta, dt);
        assert!(sched.n_classes() >= 2, "expected multiple (h, material) classes");
        assert_eq!(sched.n_elements(), mesh.n_elements());

        let u = rnd_vec(3 * n, 0xA5A5);
        let w = rnd_vec(3 * n, 0x5A5A);
        let mut rhs = vec![0.0; 3 * n];
        for ci in 0..sched.n_colors() {
            sched.sweep_color(ci, &u, &w, &mut rhs);
        }

        // Reference: interleaved gather + canonical matvec, any order.
        let mats = elastic_hex_matrices();
        let dt2 = dt * dt;
        let mut rhs_ref = vec![0.0; 3 * n];
        for (i, e) in mesh.elements.iter().enumerate() {
            let bs = 0.5 * dt * beta[i];
            let mut xc = [0.0; 24];
            for (c, &nd) in e.nodes.iter().enumerate() {
                for comp in 0..3 {
                    let dof = comp * n + nd as usize;
                    xc[3 * c + comp] = dt2 * u[dof] + bs * w[dof];
                }
            }
            let mut y = [0.0; 24];
            elastic_matvec(mats, e.material.lambda, e.material.mu, e.h, &xc, &mut y);
            for (c, &nd) in e.nodes.iter().enumerate() {
                for comp in 0..3 {
                    rhs_ref[comp * n + nd as usize] -= y[3 * c + comp];
                }
            }
        }
        let scale = rhs_ref.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        assert!(scale > 0.0);
        for d in 0..3 * n {
            assert!(
                (rhs[d] - rhs_ref[d]).abs() <= 1e-13 * scale,
                "dof {d}: {} vs {}",
                rhs[d],
                rhs_ref[d]
            );
        }
    }

    /// Batch boundaries must not change results: sweeping a color in one call
    /// equals sweeping it as two ranges split mid-batch, bit for bit.
    #[test]
    fn chunked_ranges_are_bit_identical() {
        let mesh = hanging_mesh();
        let n = mesh.n_nodes();
        let elems: Vec<u32> = (0..mesh.n_elements() as u32).collect();
        let coloring = color_elements(&mesh, &elems);
        let beta = vec![0.3; mesh.n_elements()];
        let sched = SweepSchedule::build(&mesh, &coloring, &beta, 0.05);
        let u = rnd_vec(3 * n, 1);
        let w = rnd_vec(3 * n, 2);
        let mut whole = vec![0.0; 3 * n];
        let mut split = vec![0.0; 3 * n];
        for ci in 0..sched.n_colors() {
            sched.sweep_color(ci, &u, &w, &mut whole);
            let (lo, hi) = sched.color_span(ci);
            let mid = lo + (hi - lo) / 2 + 7; // deliberately off batch stride
            let mid = mid.min(hi);
            // SAFETY (test): exclusive &mut split, ranges disjoint, ids valid.
            unsafe {
                sched.sweep_range_raw(ci, lo, mid, &u, &w, split.as_mut_ptr());
                sched.sweep_range_raw(ci, mid, hi, &u, &w, split.as_mut_ptr());
            }
        }
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&whole), bits(&split));
    }
}
