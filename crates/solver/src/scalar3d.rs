//! Structured-grid 3-D scalar wave solver — the Table 3.1 substrate.
//!
//! The paper's inversion-scalability study (Table 3.1) runs on a *regular*
//! hexahedral grid (65^3 wave-propagation unknowns), with the shear modulus
//! as the inverted field. This module provides that discretization with the
//! [`crate::wave::ScalarWaveEq`] interface: lumped mass, canonical 8x8
//! element stiffness (`K_e = mu_e h K_S`), first-order absorbing boundaries
//! with a frozen background impedance, and a free surface on top.

use crate::wave::ScalarWaveEq;
use quake_fem::hex8::scalar_hex_stiffness;

/// Configuration of the structured scalar solver.
#[derive(Clone, Debug)]
pub struct Scalar3dConfig {
    /// Elements per axis.
    pub nx: usize,
    pub ny: usize,
    pub nz: usize,
    /// Element edge (m).
    pub h: f64,
    /// Constant density (kg/m^3).
    pub rho: f64,
    pub dt: f64,
    pub n_steps: usize,
    /// Absorbing domain faces (0/1 -x/+x, 2/3 -y/+y, 4/5 -z/+z);
    /// face 4 (z = 0) is typically the free surface.
    pub abc: [bool; 6],
    /// Receiver node indices.
    pub receivers: Vec<usize>,
    /// Background modulus for the frozen ABC impedance `sqrt(rho mu)`.
    pub mu_background: f64,
}

/// The assembled solver.
pub struct Scalar3dSolver {
    pub cfg: Scalar3dConfig,
    mass: Vec<f64>,
    cab: Vec<f64>,
}

impl Scalar3dSolver {
    pub fn new(cfg: &Scalar3dConfig) -> Scalar3dSolver {
        assert!(cfg.nx > 0 && cfg.ny > 0 && cfg.nz > 0);
        assert!(cfg.dt > 0.0 && cfg.h > 0.0 && cfg.rho > 0.0);
        let nn = (cfg.nx + 1) * (cfg.ny + 1) * (cfg.nz + 1);
        let shell = Scalar3dSolver { cfg: cfg.clone(), mass: Vec::new(), cab: Vec::new() };
        // Lumped mass: rho h^3 / 8 per incident element.
        let mut mass = vec![0.0; nn];
        let me = cfg.rho * cfg.h * cfg.h * cfg.h / 8.0;
        for e in 0..shell.n_elements() {
            for c in 0..8 {
                mass[shell.elem_node(e, c)] += me;
            }
        }
        // Frozen ABC impedance: sqrt(rho mu0) * h^2/4 per incident
        // quarter-face on each absorbing side.
        let mut cab = vec![0.0; nn];
        let imp = (cfg.rho * cfg.mu_background).sqrt() * cfg.h * cfg.h / 4.0;
        let (nx, ny, nz) = (cfg.nx, cfg.ny, cfg.nz);
        for k in 0..=nz {
            for j in 0..=ny {
                for i in 0..=nx {
                    let idx = shell.node(i, j, k);
                    let mut quarters = 0u32;
                    if cfg.abc[0] && i == 0 {
                        quarters += face_mult(j, ny) * face_mult(k, nz);
                    }
                    if cfg.abc[1] && i == nx {
                        quarters += face_mult(j, ny) * face_mult(k, nz);
                    }
                    if cfg.abc[2] && j == 0 {
                        quarters += face_mult(i, nx) * face_mult(k, nz);
                    }
                    if cfg.abc[3] && j == ny {
                        quarters += face_mult(i, nx) * face_mult(k, nz);
                    }
                    if cfg.abc[4] && k == 0 {
                        quarters += face_mult(i, nx) * face_mult(j, ny);
                    }
                    if cfg.abc[5] && k == nz {
                        quarters += face_mult(i, nx) * face_mult(j, ny);
                    }
                    cab[idx] = imp * quarters as f64;
                }
            }
        }
        Scalar3dSolver { cfg: cfg.clone(), mass, cab }
    }

    /// Node index from grid coordinates.
    pub fn node(&self, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(i <= self.cfg.nx && j <= self.cfg.ny && k <= self.cfg.nz);
        i + (self.cfg.nx + 1) * (j + (self.cfg.ny + 1) * k)
    }

    /// Element index from grid coordinates.
    pub fn elem(&self, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(i < self.cfg.nx && j < self.cfg.ny && k < self.cfg.nz);
        i + self.cfg.nx * (j + self.cfg.ny * k)
    }

    /// Global node of an element corner (bit-coded as in `quake-fem`).
    #[inline]
    pub fn elem_node(&self, e: usize, c: usize) -> usize {
        let i = e % self.cfg.nx;
        let j = (e / self.cfg.nx) % self.cfg.ny;
        let k = e / (self.cfg.nx * self.cfg.ny);
        self.node(i + (c & 1), j + ((c >> 1) & 1), k + ((c >> 2) & 1))
    }

    /// Center coordinates of an element (m).
    pub fn elem_center(&self, e: usize) -> [f64; 3] {
        let i = e % self.cfg.nx;
        let j = (e / self.cfg.nx) % self.cfg.ny;
        let k = e / (self.cfg.nx * self.cfg.ny);
        [
            (i as f64 + 0.5) * self.cfg.h,
            (j as f64 + 0.5) * self.cfg.h,
            (k as f64 + 0.5) * self.cfg.h,
        ]
    }

    /// Place `n x n` receivers uniformly on the free surface (z = 0),
    /// builder-style.
    pub fn with_receivers_at_surface(mut self, n: usize) -> Scalar3dSolver {
        let mut rec = Vec::with_capacity(n * n);
        let shell = Scalar3dSolver { cfg: self.cfg.clone(), mass: Vec::new(), cab: Vec::new() };
        for a in 0..n {
            for b in 0..n {
                let i = (a + 1) * self.cfg.nx / (n + 1);
                let j = (b + 1) * self.cfg.ny / (n + 1);
                rec.push(shell.node(i, j, 0));
            }
        }
        rec.sort_unstable();
        rec.dedup();
        self.cfg.receivers = rec;
        self
    }
}

/// Per-axis multiplicity of quarter-faces at a boundary node: a node in the
/// interior of a face grid line touches 2 element edges along that axis.
fn face_mult(i: usize, n: usize) -> u32 {
    if i == 0 || i == n {
        1
    } else {
        2
    }
}

impl ScalarWaveEq for Scalar3dSolver {
    fn n_nodes(&self) -> usize {
        (self.cfg.nx + 1) * (self.cfg.ny + 1) * (self.cfg.nz + 1)
    }

    fn n_elements(&self) -> usize {
        self.cfg.nx * self.cfg.ny * self.cfg.nz
    }

    fn n_steps(&self) -> usize {
        self.cfg.n_steps
    }

    fn dt(&self) -> f64 {
        self.cfg.dt
    }

    fn receivers(&self) -> &[usize] {
        &self.cfg.receivers
    }

    fn mass(&self) -> &[f64] {
        &self.mass
    }

    fn abc_damping(&self) -> &[f64] {
        &self.cab
    }

    fn apply_k(&self, mu: &[f64], x: &[f64], y: &mut [f64], scale: f64) {
        assert_eq!(mu.len(), self.n_elements());
        let ks = scalar_hex_stiffness();
        for e in 0..self.n_elements() {
            let s = scale * mu[e] * self.cfg.h;
            if s == 0.0 {
                continue;
            }
            let mut xe = [0.0; 8];
            let mut nid = [0usize; 8];
            for c in 0..8 {
                nid[c] = self.elem_node(e, c);
                xe[c] = x[nid[c]];
            }
            // Two blocks of four columns with independent lane accumulators
            // (the same auto-vectorization shape as the elastic matvec).
            for r in 0..8 {
                let row = &ks[r];
                let mut acc = [0.0; 4];
                for l in 0..4 {
                    acc[l] += row[l] * xe[l];
                    acc[l] += row[4 + l] * xe[4 + l];
                }
                y[nid[r]] += s * ((acc[0] + acc[1]) + (acc[2] + acc[3]));
            }
        }
    }

    fn accumulate_dk(&self, u: &[f64], v: &[f64], out: &mut [f64]) {
        let ks = scalar_hex_stiffness();
        for e in 0..self.n_elements() {
            let mut ue = [0.0; 8];
            let mut ve = [0.0; 8];
            for c in 0..8 {
                let nid = self.elem_node(e, c);
                ue[c] = u[nid];
                ve[c] = v[nid];
            }
            let mut acc = 0.0;
            for r in 0..8 {
                for c in 0..8 {
                    acc += ue[r] * ks[r][c] * ve[c];
                }
            }
            out[e] += self.cfg.h * acc;
        }
    }

    fn apply_dk(&self, dmu: &[f64], x: &[f64], y: &mut [f64], scale: f64) {
        self.apply_k(dmu, x, y, scale);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wave::{forward, ScalarWaveEq};

    fn cfg() -> Scalar3dConfig {
        Scalar3dConfig {
            nx: 8,
            ny: 8,
            nz: 8,
            h: 100.0,
            rho: 2000.0,
            dt: 0.015,
            n_steps: 60,
            abc: [true, true, true, true, false, true],
            receivers: vec![],
            mu_background: 2e9,
        }
    }

    #[test]
    fn mass_sums_to_total() {
        let s = Scalar3dSolver::new(&cfg());
        let total: f64 = s.mass().iter().sum();
        let expect = 2000.0 * (800.0f64).powi(3);
        assert!((total - expect).abs() < 1e-6 * expect);
    }

    #[test]
    fn abc_damping_only_on_absorbing_faces() {
        let s = Scalar3dSolver::new(&cfg());
        let cab = s.abc_damping();
        // Free surface interior node: no damping.
        assert_eq!(cab[s.node(4, 4, 0)], 0.0);
        // Bottom interior node: 4 quarter-faces.
        let imp = (2000.0f64 * 2e9).sqrt() * 100.0 * 100.0 / 4.0;
        assert!((cab[s.node(4, 4, 8)] - 4.0 * imp).abs() < 1e-6);
        // Side interior node.
        assert!((cab[s.node(0, 4, 4)] - 4.0 * imp).abs() < 1e-6);
        // Interior: zero.
        assert_eq!(cab[s.node(4, 4, 4)], 0.0);
        // Bottom edge node: 2 quarter-faces from the bottom + side face.
        assert!(cab[s.node(0, 4, 8)] > 3.9 * imp);
    }

    #[test]
    fn apply_k_annihilates_constants_and_is_symmetric() {
        let s = Scalar3dSolver::new(&cfg());
        let mu: Vec<f64> = (0..s.n_elements()).map(|e| 1e9 * (1.0 + (e % 3) as f64)).collect();
        let n = s.n_nodes();
        let ones = vec![1.0; n];
        let mut y = vec![0.0; n];
        s.apply_k(&mu, &ones, &mut y, 1.0);
        assert!(y.iter().all(|v| v.abs() < 1e-3), "K 1 != 0");
        let mut st = 7u64;
        let mut rnd = || {
            st = st.wrapping_mul(6364136223846793005).wrapping_add(1);
            (st >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let a: Vec<f64> = (0..n).map(|_| rnd()).collect();
        let b: Vec<f64> = (0..n).map(|_| rnd()).collect();
        let mut ka = vec![0.0; n];
        s.apply_k(&mu, &a, &mut ka, 1.0);
        let mut kb = vec![0.0; n];
        s.apply_k(&mu, &b, &mut kb, 1.0);
        let x: f64 = ka.iter().zip(&b).map(|(p, q)| p * q).sum();
        let yv: f64 = kb.iter().zip(&a).map(|(p, q)| p * q).sum();
        assert!((x - yv).abs() < 1e-9 * (1.0 + x.abs()));
    }

    #[test]
    fn accumulate_dk_is_derivative_of_apply_k() {
        let s = Scalar3dSolver::new(&cfg());
        let n = s.n_nodes();
        let ne = s.n_elements();
        let mut st = 9u64;
        let mut rnd = || {
            st = st.wrapping_mul(6364136223846793005).wrapping_add(1);
            (st >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let u: Vec<f64> = (0..n).map(|_| rnd()).collect();
        let v: Vec<f64> = (0..n).map(|_| rnd()).collect();
        let mut dk = vec![0.0; ne];
        s.accumulate_dk(&u, &v, &mut dk);
        for &e in &[0usize, ne / 2, ne - 1] {
            let mut mu = vec![0.0; ne];
            mu[e] = 1.0;
            let mut kv = vec![0.0; n];
            s.apply_k(&mu, &v, &mut kv, 1.0);
            let direct: f64 = u.iter().zip(&kv).map(|(a, b)| a * b).sum();
            assert!((dk[e] - direct).abs() < 1e-9 * (1.0 + direct.abs()), "e={e}");
        }
    }

    #[test]
    fn wave_propagates_at_shear_speed() {
        let mut c = cfg();
        c.n_steps = 120;
        c.dt = 0.01;
        let s = Scalar3dSolver::new(&c);
        let mu = vec![2e9; s.n_elements()];
        let vs = (2e9f64 / 2000.0).sqrt(); // 1000 m/s
        let src = s.node(4, 4, 4);
        let probe = s.node(7, 4, 4); // 300 m away
        let run = forward(
            &s,
            &mu,
            &mut |k, f| {
                if k < 3 {
                    f[src] = 1e9;
                }
            },
            true,
        );
        let series: Vec<f64> = run.states.iter().map(|u| u[probe].abs()).collect();
        let peak = series.iter().cloned().fold(0.0f64, f64::max);
        assert!(peak > 0.0);
        let arrival = series.iter().position(|&v| v > 0.05 * peak).unwrap() as f64 * c.dt;
        let expected = 300.0 / vs; // 0.3 s
        assert!((arrival - expected).abs() < 0.12, "arrival {arrival} vs expected {expected}");
    }

    #[test]
    fn receivers_builder_places_surface_nodes() {
        let s = Scalar3dSolver::new(&cfg()).with_receivers_at_surface(3);
        assert_eq!(s.receivers().len(), 9);
        for &r in s.receivers() {
            assert!(r < (8 + 1) * (8 + 1), "receiver {r} not on the z=0 plane");
        }
    }
}
