//! The production elastic wave solver (Section 2.1-2.2 of the paper).
//!
//! Explicit central differences on the lumped-mass Galerkin semidiscretization
//! of Navier's equations, exactly in the split form of eq. (2.4):
//!
//! ```text
//! [ (1 + a dt/2) M + (b dt/2) K_diag + (dt/2) C^AB_diag ] u_{k+1} =
//!   [ 2M - dt^2 (K + K^AB) - (b dt/2) K_off ] u_k
//! + [ (a dt/2 - 1) M + (b dt/2) K + (dt/2) C^AB ] u_{k-1} + dt^2 b_k
//! ```
//!
//! with elementwise Rayleigh constants `(a_e, b_e)` least-squares fitted to
//! the local soil's damping ratio, and Stacey absorbing boundaries. Hanging
//! nodes are eliminated by the projection `B^T A B ubar = B^T rhs`, which
//! keeps the update explicit because `A` is diagonal.
//!
//! The solver stores *no per-element matrices*: per element only `(h,
//! lambda, mu, rho, a, b)` plus one combined 24x24 stiffness *template* per
//! distinct `(h, lambda, mu)` class — on an octree mesh that is a handful of
//! templates for millions of elements (see [`crate::sweep`]).
//!
//! # Nodal state layout: planar (structure of arrays)
//!
//! All solver-internal nodal vectors (`u_prev`, `u_now`, `rhs`, `w`,
//! `f_ext`) are **planar**: component planes of length `n_nodes`, i.e.
//! `dof(comp, node) = comp * n_nodes + node`. The element gather/scatter,
//! the diagonal fill/tail passes, ABC, and the hanging-node fold/interp all
//! stream the x/y/z planes contiguously instead of striding through
//! interleaved `[f64; 3]` triples. Public *boundaries* stay interleaved
//! (`dof = 3 * node + comp`): [`ElasticSolver::initial_state`] accepts
//! interleaved fields, the harness's `run_to_state` returns them, and
//! [`crate::layout`] converts between the two.
//!
//! # Hot-path organization
//!
//! The step is built from three preallocated pieces so that its steady state
//! performs **zero heap allocations**:
//!
//! - [`StepScope`]: the element schedule (a node-disjoint coloring from
//!   `quake-mesh` plus the blocked per-class template schedule of
//!   [`crate::sweep::SweepSchedule`]), the scope's absorbing-boundary
//!   faces, and the owned-node mask — all computed once per rank, not per
//!   step.
//! - [`StepWorkspace`]: the per-run scratch (the damping increment
//!   `w = u_k - u_{k-1}`), allocated once and reused every step.
//! - The fused kernels: damped elements apply `K_e` to the pre-combined
//!   vector `dt^2 u_k + (dt beta_e / 2) w` in a single template matvec
//!   (ONE 24x24 matrix instead of the two canonical ones — half the flops),
//!   the initial rhs fill folds the diagonal-damping term into the source
//!   term, and the post-exchange tail fuses the history axpy with the
//!   `lhs_inv` scale.
//!
//! With the `parallel` feature the element sweep runs threaded over the
//! coloring: within one color no two elements share a node, so scatters are
//! race-free and the result is bit-identical to the serial color-major sweep
//! for any thread count.

use crate::abc::{accumulate_abc_damping, apply_abc_stiffness_planar, build_abc_faces, AbcFace};
use crate::checkpoint::SolverState;
use crate::receivers::Seismogram;
use crate::sources::AssembledSource;
use crate::sweep::SweepSchedule;
use quake_fem::hex8::{elastic_hex_matrices, elastic_matvec, lumped_hex_mass};
use quake_machine::phases::{elastic_step_phases, ElasticStepShape};
use quake_mesh::coloring::{color_elements, ElementColoring};
use quake_mesh::HexMesh;
use quake_model::attenuation::{damping_target_for_vs, fit_rayleigh};
use quake_telemetry::{Registry, SpanId};

/// Rayleigh-damping configuration: the frequency band the elementwise
/// least-squares fit targets.
#[derive(Clone, Copy, Debug)]
pub struct RayleighBand {
    pub f_lo: f64,
    pub f_hi: f64,
}

/// Solver configuration.
#[derive(Clone, Copy, Debug)]
pub struct ElasticConfig {
    /// Simulated duration (s).
    pub duration: f64,
    /// Time step; `None` = CFL-limited (`cfl * min h/vp`).
    pub dt: Option<f64>,
    /// CFL safety factor.
    pub cfl: f64,
    /// Which domain faces absorb (0/1 -x/+x, 2/3 -y/+y, 4/5 -z/+z).
    /// Default: all but face 4 — z=0 is the free surface.
    pub abc: [bool; 6],
    /// Material attenuation; `None` = lossless.
    pub rayleigh: Option<RayleighBand>,
}

impl ElasticConfig {
    pub fn new(duration: f64) -> ElasticConfig {
        ElasticConfig {
            duration,
            dt: None,
            cfl: 0.5,
            abc: [true, true, true, true, false, true],
            rayleigh: None,
        }
    }
}

/// Outcome of a run: seismograms plus performance accounting.
#[derive(Clone, Debug)]
pub struct RunResult {
    pub seismograms: Vec<Seismogram>,
    pub n_steps: usize,
    pub dt: f64,
    /// Analytic flop count of the run (see `quake-machine`).
    pub flops: u64,
    pub wall_secs: f64,
}

/// The per-rank step schedule: which elements to assemble (color-major, so
/// the sweep can run threaded without write races), which absorbing faces
/// belong to those elements, and which nodes' diagonal damping this rank
/// owns. Built once ([`ElasticSolver::scope`]), reused every step.
pub struct StepScope {
    /// Node-disjoint coloring of the scope's elements.
    pub coloring: ElementColoring,
    /// Blocked per-class template schedule derived from the coloring (see
    /// [`crate::sweep`]).
    pub schedule: SweepSchedule,
    /// Absorbing faces owned by the scope's elements.
    pub faces: Vec<AbcFace>,
    /// Owned-node mask (`None` = the scope owns every node).
    pub owned: Option<Vec<bool>>,
}

/// Preallocated per-run scratch for the explicit step. Reusing one of these
/// across steps makes the step's steady state allocation-free.
///
/// The workspace also carries the step's telemetry: a per-rank
/// [`Registry`] (disabled by default — a disabled registry costs one branch
/// per phase) and the pre-interned span ids of the step's phases, so the
/// instrumented hot path performs no string lookups or allocations.
pub struct StepWorkspace {
    /// Damping increment `w = u_k - u_{k-1}`, refreshed each step.
    w: Vec<f64>,
    /// Per-rank metric registry (see [`ElasticSolver::workspace_instrumented`]).
    pub reg: Registry,
    /// Interned span ids of the step phases.
    pub(crate) ids: StepSpanIds,
}

/// Pre-interned telemetry span ids of the step's phases (see the phase map
/// in DESIGN.md's "Telemetry" section).
pub(crate) struct StepSpanIds {
    step: SpanId,
    fill: SpanId,
    elements: SpanId,
    abc: SpanId,
    fold: SpanId,
    exchange: SpanId,
    tail: SpanId,
    interp: SpanId,
    pub(crate) source: SpanId,
    /// Per-color children of `step/elements`, grown on demand (the color
    /// count is a property of the scope, not the workspace).
    colors: Vec<SpanId>,
}

impl StepSpanIds {
    fn intern(reg: &Registry) -> StepSpanIds {
        StepSpanIds {
            step: reg.span_id("step"),
            fill: reg.span_id("step/fill"),
            elements: reg.span_id("step/elements"),
            abc: reg.span_id("step/abc"),
            fold: reg.span_id("step/fold"),
            exchange: reg.span_id("step/exchange"),
            tail: reg.span_id("step/tail"),
            interp: reg.span_id("step/interp"),
            source: reg.span_id("source"),
            colors: Vec::new(),
        }
    }
}

impl StepWorkspace {
    fn new(ndof: usize) -> StepWorkspace {
        StepWorkspace::with_registry(ndof, Registry::disabled())
    }

    fn with_registry(ndof: usize, reg: Registry) -> StepWorkspace {
        let ids = StepSpanIds::intern(&reg);
        StepWorkspace { w: vec![0.0; ndof], reg, ids }
    }

    /// Move the accumulated telemetry out of the workspace.
    pub fn into_registry(self) -> Registry {
        self.reg
    }
}

/// The assembled explicit solver.
///
/// Hanging-node treatment: stiffness-like terms are applied matrix-free on
/// the full node set and folded exactly (`B^T K B`), while every *diagonal*
/// matrix (mass, damping) is lumped in master space — `diag(B^T D B)`, i.e.
/// squared-weight folding — and used identically on both sides of the
/// update. This keeps the master-space operator symmetric (plain leapfrog
/// stability analysis applies) and the update explicit, which is what the
/// paper means by "the projection preserves the diagonality of A".
pub struct ElasticSolver<'m> {
    pub mesh: &'m HexMesh,
    pub dt: f64,
    pub n_steps: usize,
    /// Lumped nodal mass per node (unprojected; diagnostics only).
    mass: Vec<f64>,
    /// Projected (squared-weight folded) mass per dof. Interleaved — the
    /// frozen `reference` oracle reads these four diagonals; the planar
    /// `*_p` twins below are what the production step streams.
    pub(crate) mass_f: Vec<f64>,
    /// Projected diagonal damping per dof: `a M + b K_diag + C^AB_diag`.
    pub(crate) cdiag_f: Vec<f64>,
    /// Unprojected `alpha M + C^AB` diagonal (the damping matvec `C w` term
    /// contributed by the owner of each node).
    pub(crate) damp_diag: Vec<f64>,
    /// Folded inverse LHS diagonal.
    pub(crate) lhs_inv: Vec<f64>,
    /// Planar (`dof = comp * n + node`) copies of the step diagonals.
    mass_fp: Vec<f64>,
    cdiag_fp: Vec<f64>,
    damp_diag_p: Vec<f64>,
    lhs_inv_p: Vec<f64>,
    pub(crate) faces: Vec<AbcFace>,
    /// Per-element Rayleigh constants.
    alpha: Vec<f64>,
    pub(crate) beta: Vec<f64>,
    /// Full-domain schedule (cached for the serial step's hot path).
    full_scope: StepScope,
}

impl<'m> ElasticSolver<'m> {
    pub fn new(mesh: &'m HexMesh, cfg: &ElasticConfig) -> ElasticSolver<'m> {
        let n = mesh.n_nodes();
        let ndof = 3 * n;
        let mats = elastic_hex_matrices();

        // CFL-limited time step: dt_crit = h / (sqrt(3) vp) for the lumped
        // trilinear hex (tensor-product eigenvalue bound).
        let mut h_over_vp = f64::INFINITY;
        for e in &mesh.elements {
            h_over_vp = h_over_vp.min(e.h / e.material.vp());
        }
        let dt = cfg.dt.unwrap_or(cfg.cfl * h_over_vp / 3.0f64.sqrt());
        assert!(dt > 0.0 && dt.is_finite(), "bad time step {dt}");
        let n_steps = (cfg.duration / dt).ceil() as usize;

        // Rayleigh constants per element.
        let ne = mesh.n_elements();
        let mut alpha = vec![0.0; ne];
        let mut beta = vec![0.0; ne];
        if let Some(band) = cfg.rayleigh {
            for (i, e) in mesh.elements.iter().enumerate() {
                let zeta = damping_target_for_vs(e.material.vs());
                let fit = fit_rayleigh(zeta, band.f_lo, band.f_hi, 16);
                alpha[i] = fit.alpha;
                beta[i] = fit.beta;
            }
        }

        // Assemble lumped mass, aM diag, bK diag.
        let mut mass = vec![0.0; n];
        let mut am_diag = vec![0.0; ndof];
        let mut bk_diag = vec![0.0; ndof];
        for (i, e) in mesh.elements.iter().enumerate() {
            let me = lumped_hex_mass(e.material.rho, e.h);
            for (c, &nd) in e.nodes.iter().enumerate() {
                mass[nd as usize] += me;
                for comp in 0..3 {
                    am_diag[nd as usize * 3 + comp] += alpha[i] * me;
                    let kd = e.h
                        * (e.material.lambda * mats.k_lambda_diag[3 * c + comp]
                            + e.material.mu * mats.k_mu_diag[3 * c + comp]);
                    bk_diag[nd as usize * 3 + comp] += beta[i] * kd;
                }
            }
        }

        // Stacey faces and their lumped damping.
        let faces = build_abc_faces(mesh, cfg.abc);
        let mut cab_diag = vec![0.0; ndof];
        accumulate_abc_damping(&faces, &mut cab_diag);

        // Projected diagonals: squared-weight folding, used identically on
        // both sides of the update.
        let mut mass_f = vec![0.0; ndof];
        for nd in 0..n {
            for comp in 0..3 {
                mass_f[3 * nd + comp] = mass[nd];
            }
        }
        mesh.fold_hanging_diag(&mut mass_f, 3);
        let mut cdiag_f = vec![0.0; ndof];
        for d in 0..ndof {
            cdiag_f[d] = am_diag[d] + bk_diag[d] + cab_diag[d];
        }
        mesh.fold_hanging_diag(&mut cdiag_f, 3);

        let mut lhs_inv = vec![0.0; ndof];
        for d in 0..ndof {
            lhs_inv[d] = 1.0 / (mass_f[d] + 0.5 * dt * cdiag_f[d]);
        }

        // Owner-contributed diagonal damping `alpha M + C^AB` (one vector —
        // the step reads it once per dof).
        let mut damp_diag = am_diag;
        for d in 0..ndof {
            damp_diag[d] += cab_diag[d];
        }

        let all: Vec<u32> = (0..ne as u32).collect();
        let coloring = color_elements(mesh, &all);
        let full_scope = StepScope {
            schedule: SweepSchedule::build(mesh, &coloring, &beta, dt),
            coloring,
            faces: faces.clone(),
            owned: None,
        };

        let planar = |inter: &[f64]| crate::layout::to_planar3(inter);
        ElasticSolver {
            mesh,
            dt,
            n_steps,
            mass,
            mass_fp: planar(&mass_f),
            cdiag_fp: planar(&cdiag_f),
            damp_diag_p: planar(&damp_diag),
            lhs_inv_p: planar(&lhs_inv),
            mass_f,
            cdiag_f,
            damp_diag,
            lhs_inv,
            faces,
            alpha,
            beta,
            full_scope,
        }
    }

    /// A fresh preallocated step workspace for this solver's mesh, with
    /// telemetry disabled (the hot path pays one branch per phase).
    pub fn workspace(&self) -> StepWorkspace {
        StepWorkspace::new(3 * self.mesh.n_nodes())
    }

    /// A workspace whose [`Registry`] records per-phase span timings for
    /// `rank` (use rank 0 for serial runs). Read the result from
    /// [`StepWorkspace::reg`] or [`StepWorkspace::into_registry`].
    pub fn workspace_instrumented(&self, rank: usize) -> StepWorkspace {
        StepWorkspace::with_registry(3 * self.mesh.n_nodes(), Registry::new(rank))
    }

    /// A workspace driven by a caller-built [`Registry`] — for drivers that
    /// need a shared epoch across ranks or a flight recorder attached before
    /// the first step (see [`Registry::with_epoch`] /
    /// [`Registry::enable_trace`]).
    pub fn workspace_with(&self, reg: Registry) -> StepWorkspace {
        StepWorkspace::with_registry(3 * self.mesh.n_nodes(), reg)
    }

    /// The cached full-domain step schedule (the one [`ElasticSolver::step_with`] runs).
    pub fn full_scope(&self) -> &StepScope {
        &self.full_scope
    }

    /// The analytic per-step shape of a scope (damped/undamped element
    /// split, nodes, hanging nodes, faces) for `quake-machine`'s per-phase
    /// cost model. `exchange_doubles` is zero — only the caller that built
    /// the exchange plan knows the interface volume.
    pub fn phase_shape(&self, scope: &StepScope) -> ElasticStepShape {
        let mut n_damped = 0u64;
        let mut n_total = 0u64;
        for color in scope.coloring.colors() {
            for &ei in color {
                n_total += 1;
                if self.beta[ei as usize] != 0.0 {
                    n_damped += 1;
                }
            }
        }
        ElasticStepShape {
            n_damped,
            n_undamped: n_total - n_damped,
            n_nodes: self.mesh.n_nodes() as u64,
            n_hanging: self.mesh.n_hanging() as u64,
            n_abc_faces: scope.faces.len() as u64,
            exchange_doubles: 0,
        }
    }

    /// Record the analytic flop/byte counts of `n_steps` steps of `scope`
    /// into `reg` as `step/<phase>/flops` and `step/<phase>/bytes` counters
    /// (absolute set, so calling again after more steps overwrites). These
    /// are the denominators the roofline report divides the measured span
    /// times into.
    pub fn record_step_costs(&self, scope: &StepScope, n_steps: u64, reg: &Registry) {
        self.record_step_costs_shaped(&self.phase_shape(scope), n_steps, reg);
    }

    /// [`ElasticSolver::record_step_costs`] with a caller-adjusted shape
    /// (e.g. with the real `exchange_doubles` of a distributed rank).
    pub fn record_step_costs_shaped(&self, shape: &ElasticStepShape, n_steps: u64, reg: &Registry) {
        if !reg.is_enabled() {
            return;
        }
        for p in elastic_step_phases(shape) {
            reg.set(&format!("step/{}/flops", p.name), p.flops * n_steps);
            reg.set(&format!("step/{}/bytes", p.name), p.bytes * n_steps);
        }
    }

    /// Build the step schedule for an element subset (ascending ids): the
    /// node-disjoint coloring, the subset's absorbing faces, and the
    /// owned-node mask (`None` = owns everything). One-time cost per rank.
    pub fn scope(&self, elems: &[u32], owned: Option<Vec<bool>>) -> StepScope {
        let mut mine = vec![false; self.mesh.n_elements()];
        for &e in elems {
            mine[e as usize] = true;
        }
        let coloring = color_elements(self.mesh, elems);
        StepScope {
            schedule: SweepSchedule::build(self.mesh, &coloring, &self.beta, self.dt),
            coloring,
            faces: self.faces.iter().filter(|f| mine[f.element as usize]).copied().collect(),
            owned,
        }
    }

    /// One explicit step: given `u_prev = u_{k-1}`, `u_now = u_k` (both with
    /// hanging nodes interpolated) and the external force `f_ext` (physical
    /// units, at time level k), fill `u_next`. All four vectors are
    /// **planar** (`dof = comp * n_nodes + node`; see [`crate::layout`]).
    ///
    /// Convenience wrapper that allocates a fresh workspace; hot loops should
    /// hold one [`ElasticSolver::workspace`] and call
    /// [`ElasticSolver::step_with`].
    pub fn step(&self, u_prev: &[f64], u_now: &[f64], f_ext: &[f64], u_next: &mut [f64]) {
        let mut ws = self.workspace();
        self.step_with(u_prev, u_now, f_ext, u_next, &mut ws);
    }

    /// One explicit step over the full domain, reusing `ws` — the
    /// allocation-free hot path. Planar vectors throughout.
    pub fn step_with(
        &self,
        u_prev: &[f64],
        u_now: &[f64],
        f_ext: &[f64],
        u_next: &mut [f64],
        ws: &mut StepWorkspace,
    ) {
        self.step_scoped_impl(&self.full_scope, u_prev, u_now, f_ext, u_next, ws, |_, _| {}, false);
    }

    /// [`ElasticSolver::step_with`] with the threaded sweep disabled even
    /// when the `parallel` feature is on — the bench's serial row, so the
    /// layout-vs-threading speedup decomposition stays measurable from one
    /// build. Bit-identical to `step_with` by construction.
    pub fn step_with_serial(
        &self,
        u_prev: &[f64],
        u_now: &[f64],
        f_ext: &[f64],
        u_next: &mut [f64],
        ws: &mut StepWorkspace,
    ) {
        self.step_scoped_impl(&self.full_scope, u_prev, u_now, f_ext, u_next, ws, |_, _| {}, true);
    }

    // lint:hot-path — the explicit step and its element kernels. The
    // steady state must stay allocation-free (PR 1's guarantee; scratch
    // lives in StepWorkspace/StepScope) and bit-deterministic across
    // thread counts and ranks. quake-lint enforces both until the
    // matching end marker below.
    /// The step over a [`StepScope`] with a mid-step exchange hook — the
    /// building block of the distributed solver. The scope selects the
    /// elements (and their boundary faces) this rank assembles; `f_ext` must
    /// likewise hold only this rank's share of the sources; the scope's
    /// owned-node mask (`None` = all) selects the nodes whose diagonal
    /// damping term this rank contributes — exactly one rank must own each
    /// node. All partial terms are constraint-folded *before* `exchange`
    /// (the fold is linear, so per-rank folded partials sum to the global
    /// fold); everything after the exchange is local and replicated.
    ///
    /// All nodal vectors — including the rhs handed to `exchange` — are
    /// planar (`dof = comp * n_nodes + node`). The closure also receives the
    /// workspace registry (which `ws` itself mutably borrows at that point),
    /// so an instrumented exchange can attribute `wait`/`copy` sub-intervals
    /// under the open `step/exchange` span.
    ///
    /// Steady-state heap allocations: **zero** (scratch lives in `ws`, the
    /// face list and schedule in `scope`).
    pub fn step_scoped(
        &self,
        scope: &StepScope,
        u_prev: &[f64],
        u_now: &[f64],
        f_ext: &[f64],
        u_next: &mut [f64],
        ws: &mut StepWorkspace,
        exchange: impl FnOnce(&mut [f64], &Registry),
    ) {
        self.step_scoped_impl(scope, u_prev, u_now, f_ext, u_next, ws, exchange, false);
    }

    #[allow(clippy::too_many_arguments)]
    fn step_scoped_impl(
        &self,
        scope: &StepScope,
        u_prev: &[f64],
        u_now: &[f64],
        f_ext: &[f64],
        u_next: &mut [f64],
        ws: &mut StepWorkspace,
        exchange: impl FnOnce(&mut [f64], &Registry),
        force_serial: bool,
    ) {
        let mesh = self.mesh;
        let n = mesh.n_nodes();
        let ndof = 3 * n;
        assert_eq!(u_prev.len(), ndof);
        assert_eq!(u_now.len(), ndof);
        assert_eq!(f_ext.len(), ndof);
        assert_eq!(u_next.len(), ndof);
        assert_eq!(ws.w.len(), ndof);
        let dt = self.dt;
        let dt2 = dt * dt;

        // Disjoint field borrows: the scratch vector mutably, the registry
        // shared, the span-id table mutably (per-color ids grow lazily).
        let StepWorkspace { w, reg, ids } = ws;
        reg.enter(ids.step);

        // Fused initial fill: one pass computes the damping increment
        // `w = u_k - u_{k-1}`, the source term, and the owner's diagonal
        // damping contribution -(dt/2) (alpha M + C^AB) w. Planar layout:
        // the unmasked pass is one contiguous stream over all three planes.
        let rhs = &mut *u_next; // reuse the output buffer
        reg.enter(ids.fill);
        match &scope.owned {
            None => {
                for d in 0..ndof {
                    let wd = u_now[d] - u_prev[d];
                    w[d] = wd;
                    rhs[d] = dt2 * f_ext[d] - 0.5 * dt * self.damp_diag_p[d] * wd;
                }
            }
            Some(mask) => {
                for comp in 0..3 {
                    for (nd, &own) in mask.iter().enumerate() {
                        let d = comp * n + nd;
                        let wd = u_now[d] - u_prev[d];
                        w[d] = wd;
                        rhs[d] = dt2 * f_ext[d]
                            - if own { 0.5 * dt * self.damp_diag_p[d] * wd } else { 0.0 };
                    }
                }
            }
        }
        reg.exit(ids.fill);

        // Element stiffness/damping sweep, color-major, blocked per class.
        reg.enter(ids.elements);
        self.sweep(scope, u_now, w, rhs, reg, &mut ids.colors, force_serial);
        reg.exit(ids.elements);

        // Stacey tangential coupling (K^AB) of this scope's faces, applied
        // as a traction force directly into the rhs (pre-scaled by dt^2).
        reg.enter(ids.abc);
        apply_abc_stiffness_planar(&scope.faces, u_now, rhs, dt2);
        reg.exit(ids.abc);

        // Project this rank's partial terms BEFORE the exchange. The fold is
        // linear, so the sum of per-rank folded partials equals the fold of
        // the assembled sum — and no rank ever needs hanging-node values it
        // did not itself assemble.
        reg.enter(ids.fold);
        mesh.fold_hanging_planar(rhs, 3);
        reg.exit(ids.fold);

        // Sum-exchange the partially assembled terms at interface nodes
        // (planar dof indices).
        reg.enter(ids.exchange);
        exchange(rhs, reg);
        reg.exit(ids.exchange);

        // Fused tail: master-space history terms with the *projected*
        // diagonals (same matrices as the LHS — this symmetry is what keeps
        // the constrained update stable) and the diagonal solve, one pass:
        //   rhs_m = lhs_inv * (rhs_m + 2 Mf u0 - Mf u- + (dt/2) Cf u0)
        reg.enter(ids.tail);
        for d in 0..ndof {
            rhs[d] = (rhs[d] + (2.0 * self.mass_fp[d] + 0.5 * dt * self.cdiag_fp[d]) * u_now[d]
                - self.mass_fp[d] * u_prev[d])
                * self.lhs_inv_p[d];
        }
        reg.exit(ids.tail);
        reg.enter(ids.interp);
        mesh.interpolate_hanging_planar(rhs, 3);
        reg.exit(ids.interp);
        reg.exit(ids.step);
    }

    /// Element sweep dispatch: threaded over the coloring with the
    /// `parallel` feature (unless `force_serial`), serial color-major
    /// otherwise (identical results — each node is written by at most one
    /// element per color). The actual kernel is the blocked per-class
    /// template sweep of [`crate::sweep::SweepSchedule`].
    ///
    /// `reg`/`colors` carry the per-color telemetry spans
    /// (`step/elements/color<i>`), interned lazily on first visit; a
    /// disabled registry skips all of it at the cost of one branch per color.
    #[allow(clippy::too_many_arguments)]
    fn sweep(
        &self,
        scope: &StepScope,
        u_now: &[f64],
        w: &[f64],
        rhs: &mut [f64],
        reg: &Registry,
        colors: &mut Vec<SpanId>,
        force_serial: bool,
    ) {
        #[cfg(feature = "parallel")]
        if !force_serial {
            let n_elems = scope.coloring.order.len();
            let hw = std::thread::available_parallelism().map_or(1, |p| p.get());
            // Don't spawn for tiny sweeps: a thread needs a few hundred
            // element updates to amortize its creation. The threaded sweep
            // attributes its whole time to `step/elements` (the per-rank
            // registry is single-threaded by design).
            let threads = hw.min(n_elems / 256).max(1);
            if threads > 1 {
                scope.schedule.sweep_parallel(threads, u_now, w, rhs);
                return;
            }
        }
        let _ = force_serial;
        self.sweep_serial(scope, u_now, w, rhs, reg, colors);
    }

    /// Serial color-major element sweep — the canonical order.
    fn sweep_serial(
        &self,
        scope: &StepScope,
        u_now: &[f64],
        w: &[f64],
        rhs: &mut [f64],
        reg: &Registry,
        colors: &mut Vec<SpanId>,
    ) {
        for ci in 0..scope.schedule.n_colors() {
            if reg.is_enabled() {
                while colors.len() <= ci {
                    colors.push(reg.span_id(&format!("step/elements/color{}", colors.len())));
                }
                reg.enter(colors[ci]);
            }
            scope.schedule.sweep_color(ci, u_now, w, rhs);
            if reg.is_enabled() {
                reg.exit(colors[ci]);
            }
        }
    }
    // lint:hot-path-end

    /// Run the full simulation with the given sources and receiver nodes.
    /// `u0`/`v0` optionally set an initial state (e.g. a plane-wave pulse).
    ///
    /// Thin shim over [`SolverHarness::run_simulation`](crate::harness::SolverHarness::run_simulation)
    /// — resumable, instrumented, or checkpointed runs drive the harness
    /// directly with their own workspace, state, and hooks.
    pub fn run(
        &self,
        sources: &[AssembledSource],
        receiver_nodes: &[u32],
        initial: Option<(&[f64], &[f64])>,
    ) -> RunResult {
        let mut ws = self.workspace();
        let state = self.initial_state(receiver_nodes.len(), initial);
        let (result, _) = crate::harness::SolverHarness::new(self)
            .run_simulation(sources, receiver_nodes, state, &mut ws, None)
            .expect("no checkpoint sink, so no failure mode");
        result
    }

    /// Fresh [`SolverState`] at step 0 with empty traces. `u0`/`v0`
    /// optionally seed an initial displacement/velocity field — both given
    /// in the public *interleaved* layout (`dof = 3 * node + comp`); the
    /// state they seed is planar (see [`crate::layout`]).
    pub fn initial_state(
        &self,
        n_receivers: usize,
        initial: Option<(&[f64], &[f64])>,
    ) -> SolverState {
        let n = self.mesh.n_nodes();
        let ndof = 3 * n;
        let mut u_prev = vec![0.0; ndof];
        let mut u_now = vec![0.0; ndof];
        if let Some((u0, v0)) = initial {
            // u_now = u(0); u_prev = u(-dt) ~ u0 - dt v0 (first order is
            // enough: the error is O(dt^2), matching the scheme).
            assert_eq!(u0.len(), ndof);
            assert_eq!(v0.len(), ndof);
            for nd in 0..n {
                for comp in 0..3 {
                    let d = comp * n + nd;
                    let i = 3 * nd + comp;
                    u_now[d] = u0[i];
                    u_prev[d] = u0[i] - self.dt * v0[i];
                }
            }
        }
        SolverState {
            step: 0,
            u_prev,
            u_now,
            seismograms: (0..n_receivers).map(|_| Seismogram::new(self.dt, 3)).collect(),
        }
    }

    /// The fitted per-element Rayleigh constants `(alpha, beta)`.
    pub fn rayleigh_constants(&self) -> (&[f64], &[f64]) {
        (&self.alpha, &self.beta)
    }

    /// Total mechanical energy of a state: `1/2 v^T M v + 1/2 u^T K u` with
    /// `v = (u_now - u_prev)/dt`.
    pub fn energy(&self, u_prev: &[f64], u_now: &[f64]) -> f64 {
        let mats = elastic_hex_matrices();
        let mut e_kin = 0.0;
        for (nd, &m) in self.mass.iter().enumerate() {
            for comp in 0..3 {
                let v = (u_now[3 * nd + comp] - u_prev[3 * nd + comp]) / self.dt;
                e_kin += 0.5 * m * v * v;
            }
        }
        let mut e_str = 0.0;
        for e in &self.mesh.elements {
            let mut x = [0.0; 24];
            for (c, &nd) in e.nodes.iter().enumerate() {
                for comp in 0..3 {
                    x[3 * c + comp] = u_now[nd as usize * 3 + comp];
                }
            }
            let mut y = [0.0; 24];
            elastic_matvec(mats, e.material.lambda, e.material.mu, e.h, &x, &mut y);
            for i in 0..24 {
                e_str += 0.5 * x[i] * y[i];
            }
        }
        e_kin + e_str
    }

    /// [`ElasticSolver::energy`] over vectors in the solver's internal
    /// *planar* layout (`dof = comp * n_nodes + node`) — the layout of
    /// [`SolverState::u_prev`]/[`SolverState::u_now`], so the health
    /// watchdog can sample energy without a layout conversion. Identical
    /// summation order per node/element as the interleaved form.
    pub fn energy_planar(&self, u_prev: &[f64], u_now: &[f64]) -> f64 {
        let n = self.mesh.n_nodes();
        let mats = elastic_hex_matrices();
        let mut e_kin = 0.0;
        for (nd, &m) in self.mass.iter().enumerate() {
            for comp in 0..3 {
                let d = comp * n + nd;
                let v = (u_now[d] - u_prev[d]) / self.dt;
                e_kin += 0.5 * m * v * v;
            }
        }
        let mut e_str = 0.0;
        for e in &self.mesh.elements {
            let mut x = [0.0; 24];
            for (c, &nd) in e.nodes.iter().enumerate() {
                for comp in 0..3 {
                    x[3 * c + comp] = u_now[comp * n + nd as usize];
                }
            }
            let mut y = [0.0; 24];
            elastic_matvec(mats, e.material.lambda, e.material.mu, e.h, &x, &mut y);
            for i in 0..24 {
                e_str += 0.5 * x[i] * y[i];
            }
        }
        e_kin + e_str
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quake_mesh::hexmesh::ElemMaterial;
    use quake_mesh::HexMesh;
    use quake_octree::{BalanceMode, LinearOctree, MAX_LEVEL};

    fn uniform_mesh(level: u8, l: f64, lambda: f64, mu: f64, rho: f64) -> HexMesh {
        HexMesh::from_octree(&LinearOctree::uniform(level), l, |_, _, _, _| ElemMaterial {
            lambda,
            mu,
            rho,
        })
    }

    /// Shorthand: drive the harness's source-free loop to a final state.
    fn run_to_state(
        solver: &ElasticSolver<'_>,
        initial: Option<(&[f64], &[f64])>,
        n_steps: usize,
    ) -> (Vec<f64>, Vec<f64>) {
        crate::harness::SolverHarness::new(solver).run_to_state(initial, n_steps)
    }

    /// Gaussian shear pulse traveling in +x: u_y = exp(-((x-x0)/w)^2).
    fn shear_pulse(mesh: &HexMesh, x0: f64, w: f64, vs: f64) -> (Vec<f64>, Vec<f64>) {
        let n = mesh.n_nodes();
        let mut u = vec![0.0; 3 * n];
        let mut v = vec![0.0; 3 * n];
        for (i, c) in mesh.coords.iter().enumerate() {
            let a = (c[0] - x0) / w;
            let g = (-a * a).exp();
            u[3 * i + 1] = g;
            // For a rightward-traveling wave f(x - vs t): du/dt = -vs f'.
            v[3 * i + 1] = vs * 2.0 * a / w * g;
        }
        (u, v)
    }

    #[test]
    fn zero_state_stays_zero() {
        let mesh = uniform_mesh(2, 8.0, 2.0, 1.0, 1.0);
        let solver = ElasticSolver::new(&mesh, &ElasticConfig::new(1.0));
        let (up, un) = run_to_state(&solver, None, 10);
        assert!(up.iter().chain(&un).all(|&v| v == 0.0));
    }

    #[test]
    fn dt_respects_cfl() {
        let mesh = uniform_mesh(3, 8.0, 2.0, 1.0, 1.0);
        let solver = ElasticSolver::new(&mesh, &ElasticConfig::new(1.0));
        let h = 1.0;
        let vp = ((2.0 + 2.0) / 1.0f64).sqrt();
        assert!(solver.dt <= 0.5 * h / vp + 1e-12);
    }

    #[test]
    fn energy_conserved_without_damping_or_abc() {
        let mesh = uniform_mesh(3, 8.0, 2.0, 1.0, 1.0);
        let mut cfg = ElasticConfig::new(0.5);
        cfg.abc = [false; 6];
        // Well inside the stability limit: the staggered-velocity energy
        // proxy oscillates with O((dt w)^2) amplitude near the CFL limit.
        cfg.dt = Some(0.05);
        let solver = ElasticSolver::new(&mesh, &cfg);
        let (u0, v0) = shear_pulse(&mesh, 4.0, 1.0, 1.0);
        let (up1, un1) = run_to_state(&solver, Some((&u0, &v0)), 1);
        let e_start = solver.energy(&up1, &un1);
        let (up, un) = run_to_state(&solver, Some((&u0, &v0)), 200);
        let e_end = solver.energy(&up, &un);
        assert!((e_end - e_start).abs() < 5e-3 * e_start, "energy drift {e_start} -> {e_end}");
        assert!(e_start > 0.0);
    }

    #[test]
    fn energy_planar_matches_interleaved_energy_bitwise() {
        let mesh = uniform_mesh(3, 8.0, 2.0, 1.0, 1.0);
        let mut cfg = ElasticConfig::new(0.5);
        cfg.dt = Some(0.05);
        let solver = ElasticSolver::new(&mesh, &cfg);
        let (u0, v0) = shear_pulse(&mesh, 4.0, 1.0, 1.0);
        let (up, un) = run_to_state(&solver, Some((&u0, &v0)), 7);
        let e = solver.energy(&up, &un);
        let e_planar =
            solver.energy_planar(&crate::layout::to_planar3(&up), &crate::layout::to_planar3(&un));
        // Same per-node / per-element summation order: identical to the bit.
        assert_eq!(e.to_bits(), e_planar.to_bits(), "{e} vs {e_planar}");
        assert!(e > 0.0);
    }

    #[test]
    fn pulse_travels_at_shear_speed() {
        // d'Alembert: a rightward shear pulse at x0 arrives at x0 + vs*T.
        // Free boundaries pollute from the y/z faces at vp, so measure at the
        // center before pollution arrives.
        let (lambda, mu, rho) = (2.0f64, 1.0f64, 1.0f64);
        let vs = (mu / rho).sqrt(); // 1.0
        let mesh = uniform_mesh(4, 16.0, lambda, mu, rho); // h = 1
        let mut cfg = ElasticConfig::new(1.0);
        cfg.abc = [false; 6];
        let solver = ElasticSolver::new(&mesh, &cfg);
        let (u0, v0) = shear_pulse(&mesh, 5.0, 2.5, vs);
        let travel = 3.0; // seconds; pollution needs 8/vp = 4 s to reach center
        let n_steps = (travel / solver.dt).round() as usize;
        let (_, un) = run_to_state(&solver, Some((&u0, &v0)), n_steps);
        // Compare u_y along the center line y = z = 8 against the analytic
        // translated pulse.
        let t_actual = n_steps as f64 * solver.dt;
        let mut err = 0.0;
        let mut norm = 0.0;
        for (i, c) in mesh.coords.iter().enumerate() {
            if (c[1] - 8.0).abs() < 1e-9 && (c[2] - 8.0).abs() < 1e-9 {
                let a = (c[0] - 5.0 - vs * t_actual) / 2.5;
                let exact = (-a * a).exp();
                let got = un[3 * i + 1];
                err += (got - exact) * (got - exact);
                norm += exact * exact;
            }
        }
        let rel = (err / norm).sqrt();
        assert!(rel < 0.08, "relative waveform error {rel}");
    }

    #[test]
    fn abc_absorbs_outgoing_pulse() {
        let mesh = uniform_mesh(3, 8.0, 2.0, 1.0, 1.0);
        let mut cfg = ElasticConfig::new(1.0);
        cfg.abc = [true; 6];
        let solver = ElasticSolver::new(&mesh, &cfg);
        let (u0, v0) = shear_pulse(&mesh, 4.0, 1.0, 1.0);
        let (up1, un1) = run_to_state(&solver, Some((&u0, &v0)), 1);
        let e_start = solver.energy(&up1, &un1);
        // After the pulse crosses the domain (8 units at vs = 1 -> 8 s) it
        // should be mostly gone.
        let n_steps = (10.0 / solver.dt).round() as usize;
        let (up, un) = run_to_state(&solver, Some((&u0, &v0)), n_steps);
        let e_end = solver.energy(&up, &un);
        // Stacey is exact only at normal incidence; the 1-D pulse grazes the
        // four side faces, which is the worst case — ~10-15% residual is the
        // expected behaviour (compare the reflecting control test: > 90%).
        assert!(e_end < 0.2 * e_start, "ABC left {:.1}% of the energy", 100.0 * e_end / e_start);
    }

    #[test]
    fn reflecting_box_keeps_energy_in() {
        // Control for the ABC test: with free boundaries the energy stays.
        let mesh = uniform_mesh(3, 8.0, 2.0, 1.0, 1.0);
        let mut cfg = ElasticConfig::new(1.0);
        cfg.abc = [false; 6];
        let solver = ElasticSolver::new(&mesh, &cfg);
        let (u0, v0) = shear_pulse(&mesh, 4.0, 1.0, 1.0);
        let (up1, un1) = run_to_state(&solver, Some((&u0, &v0)), 1);
        let e_start = solver.energy(&up1, &un1);
        let n_steps = (10.0 / solver.dt).round() as usize;
        let (up, un) = run_to_state(&solver, Some((&u0, &v0)), n_steps);
        let e_end = solver.energy(&up, &un);
        assert!(e_end > 0.9 * e_start, "free box lost energy: {e_start} -> {e_end}");
    }

    #[test]
    fn rayleigh_damping_decays_energy() {
        let mesh = uniform_mesh(3, 8.0, 2.0, 1.0, 1.0);
        let mut cfg = ElasticConfig::new(1.0);
        cfg.abc = [false; 6];
        cfg.rayleigh = Some(RayleighBand { f_lo: 0.05, f_hi: 2.0 });
        let solver = ElasticSolver::new(&mesh, &cfg);
        let (u0, v0) = shear_pulse(&mesh, 4.0, 1.0, 1.0);
        let (up1, un1) = run_to_state(&solver, Some((&u0, &v0)), 1);
        let e_start = solver.energy(&up1, &un1);
        let n_steps = (8.0 / solver.dt).round() as usize;
        let (up, un) = run_to_state(&solver, Some((&u0, &v0)), n_steps);
        let e_end = solver.energy(&up, &un);
        assert!(e_end < 0.7 * e_start, "damping too weak: {e_start} -> {e_end}");
        assert!(e_end > 0.0);
    }

    #[test]
    fn hanging_node_mesh_propagates_smoothly() {
        // A multiresolution mesh must carry a pulse across the refinement
        // interface without blowing up and with bounded interface artifacts:
        // compare against the uniform-coarse solution on shared nodes.
        let half = 1u32 << (MAX_LEVEL - 1);
        let mut tree = LinearOctree::build(|o| o.level < 3 || (o.level < 4 && o.x < half));
        tree.balance(BalanceMode::Full);
        let mk = |t: &LinearOctree| {
            HexMesh::from_octree(t, 8.0, |_, _, _, _| ElemMaterial {
                lambda: 2.0,
                mu: 1.0,
                rho: 1.0,
            })
        };
        let mesh_fine = mk(&tree);
        assert!(mesh_fine.n_hanging() > 0);
        let mesh_coarse = mk(&LinearOctree::uniform(3));
        let mut cfg = ElasticConfig::new(1.0);
        cfg.abc = [false; 6];
        // Use the same dt for comparability.
        cfg.dt = Some(0.1);
        let s_fine = ElasticSolver::new(&mesh_fine, &cfg);
        let s_coarse = ElasticSolver::new(&mesh_coarse, &cfg);
        let (u0f, v0f) = shear_pulse(&mesh_fine, 4.0, 1.5, 1.0);
        let (u0c, v0c) = shear_pulse(&mesh_coarse, 4.0, 1.5, 1.0);
        let n_steps = 20;
        let (_, unf) = run_to_state(&s_fine, Some((&u0f, &v0f)), n_steps);
        let (_, unc) = run_to_state(&s_coarse, Some((&u0c, &v0c)), n_steps);
        // Compare on the coarse mesh's nodes.
        let mut fine_by_grid = std::collections::HashMap::new();
        for (i, g) in mesh_fine.grid_coords.iter().enumerate() {
            fine_by_grid.insert(*g, i);
        }
        let mut err = 0.0;
        let mut norm = 0.0;
        for (i, g) in mesh_coarse.grid_coords.iter().enumerate() {
            let j = fine_by_grid[g];
            let d = unf[3 * j + 1] - unc[3 * i + 1];
            err += d * d;
            norm += unc[3 * i + 1] * unc[3 * i + 1];
        }
        let rel = (err / norm).sqrt();
        assert!(rel < 0.1, "fine/coarse mismatch {rel}");
        assert!(unf.iter().all(|v| v.is_finite()));
    }

    /// A hanging-node mesh with Rayleigh damping and ABC — the satellite
    /// equivalence scenario.
    fn damped_hanging_setup() -> (HexMesh, ElasticConfig) {
        let half = 1u32 << (MAX_LEVEL - 1);
        let mut tree = LinearOctree::build(|o| o.level < 3 || (o.level < 4 && o.x < half));
        tree.balance(BalanceMode::Full);
        let mesh = HexMesh::from_octree(&tree, 8.0, |_, _, _, _| ElemMaterial {
            lambda: 2.0,
            mu: 1.0,
            rho: 1.0,
        });
        let mut cfg = ElasticConfig::new(1.0);
        cfg.dt = Some(0.05);
        cfg.abc = [true, true, true, true, false, true];
        cfg.rayleigh = Some(RayleighBand { f_lo: 0.05, f_hi: 2.0 });
        (mesh, cfg)
    }

    #[test]
    fn fused_step_matches_reference_on_damped_hanging_mesh() {
        // The overhauled step (planar SoA state, per-class template sweep,
        // blocked batches, in-place ABC) against the frozen pre-optimization
        // interleaved reference step: <= 1e-12 relative on every dof after
        // several steps.
        let (mesh, cfg) = damped_hanging_setup();
        assert!(mesh.n_hanging() > 0);
        let solver = ElasticSolver::new(&mesh, &cfg);
        let (u0, v0) = shear_pulse(&mesh, 4.0, 1.5, 1.0);
        let ndof = 3 * mesh.n_nodes();

        // Path A (production): planar state.
        let mut up_b = vec![0.0; ndof];
        let mut un_b = u0.clone();
        for d in 0..ndof {
            up_b[d] = u0[d] - solver.dt * v0[d];
        }
        let mut up_a = crate::layout::to_planar3(&up_b);
        let mut un_a = crate::layout::to_planar3(&un_b);
        let mut next_a = vec![0.0; ndof];
        let mut next_b = vec![0.0; ndof];
        let f = vec![0.0; ndof];
        let mut ws = solver.workspace();
        for _ in 0..25 {
            solver.step_with(&up_a, &un_a, &f, &mut next_a, &mut ws);
            crate::reference::reference_step(&solver, &up_b, &un_b, &f, &mut next_b);
            std::mem::swap(&mut up_a, &mut un_a);
            std::mem::swap(&mut un_a, &mut next_a);
            std::mem::swap(&mut up_b, &mut un_b);
            std::mem::swap(&mut un_b, &mut next_b);
        }
        let un_a = crate::layout::to_interleaved3(&un_a);
        let scale = un_b.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        assert!(scale > 0.0);
        let mut worst = 0.0f64;
        for d in 0..ndof {
            worst = worst.max((un_a[d] - un_b[d]).abs() / scale);
        }
        assert!(worst <= 1e-12, "fused vs reference relative error {worst}");
    }

    #[test]
    fn serial_step_entry_is_bit_identical_to_step_with() {
        // `step_with_serial` (the bench's serial row) must be the same
        // arithmetic as `step_with` — with the `parallel` feature this
        // pins the threaded sweep's bit-identity end to end.
        let (mesh, cfg) = damped_hanging_setup();
        let solver = ElasticSolver::new(&mesh, &cfg);
        let ndof = 3 * mesh.n_nodes();
        let (u0, v0) = shear_pulse(&mesh, 4.0, 1.5, 1.0);
        let state = solver.initial_state(0, Some((&u0, &v0)));
        let f = vec![0.0; ndof];
        let mut ws = solver.workspace();
        let mut next_a = vec![0.0; ndof];
        let mut next_b = vec![0.0; ndof];
        solver.step_with(&state.u_prev, &state.u_now, &f, &mut next_a, &mut ws);
        solver.step_with_serial(&state.u_prev, &state.u_now, &f, &mut next_b, &mut ws);
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&next_a), bits(&next_b));
    }

    #[test]
    fn instrumented_step_accounts_every_phase() {
        let (mesh, cfg) = damped_hanging_setup();
        let solver = ElasticSolver::new(&mesh, &cfg);
        let ndof = 3 * mesh.n_nodes();
        let (u0, v0) = shear_pulse(&mesh, 4.0, 1.5, 1.0);
        let mut up = vec![0.0; ndof];
        let mut un = u0.clone();
        for d in 0..ndof {
            up[d] = u0[d] - solver.dt * v0[d];
        }
        let mut next = vec![0.0; ndof];
        let f = vec![0.0; ndof];
        let n_steps = 5u64;
        let mut ws = solver.workspace_instrumented(0);
        for _ in 0..n_steps {
            solver.step_with(&up, &un, &f, &mut next, &mut ws);
            std::mem::swap(&mut up, &mut un);
            std::mem::swap(&mut un, &mut next);
        }
        solver.record_step_costs(solver.full_scope(), n_steps, &ws.reg);
        let reg = ws.into_registry();

        const PHASES: [&str; 7] = ["fill", "elements", "abc", "fold", "exchange", "tail", "interp"];
        let step = reg.span_stats("step").unwrap();
        assert_eq!(step.count, n_steps);
        // The seven phases are the step's only children, so their total time
        // must equal the step's child time exactly (no lost nanoseconds).
        let mut child_ns = 0;
        for ph in PHASES {
            let s = reg.span_stats(&format!("step/{ph}")).unwrap();
            assert_eq!(s.count, n_steps, "phase {ph} missed a step");
            child_ns += s.total_ns;
        }
        assert_eq!(child_ns, step.child_ns);

        // The serial sweep nests one span per color under step/elements.
        #[cfg(not(feature = "parallel"))]
        {
            let elements = reg.span_stats("step/elements").unwrap();
            let mut color_ns = 0;
            let mut ci = 0;
            while let Some(s) = reg.span_stats(&format!("step/elements/color{ci}")) {
                assert_eq!(s.count, n_steps);
                color_ns += s.total_ns;
                ci += 1;
            }
            assert!(ci >= 2, "expected a multi-color schedule, got {ci}");
            assert_eq!(color_ns, elements.child_ns);
        }

        // Analytic work was attached to every phase (exchange has zero flops
        // but the counter still exists).
        let mut flops = 0;
        for ph in PHASES {
            flops += reg.counter(&format!("step/{ph}/flops")).unwrap();
            assert!(reg.counter(&format!("step/{ph}/bytes")).is_some());
        }
        let shape = solver.phase_shape(solver.full_scope());
        assert_eq!(shape.n_damped + shape.n_undamped, mesh.n_elements() as u64);
        assert!(shape.n_damped > 0, "rayleigh config should damp elements");
        assert!(flops > 0);
    }

    #[test]
    fn disabled_workspace_records_nothing() {
        let (mesh, cfg) = damped_hanging_setup();
        let solver = ElasticSolver::new(&mesh, &cfg);
        let ndof = 3 * mesh.n_nodes();
        let mut ws = solver.workspace();
        let (u0, v0) = shear_pulse(&mesh, 4.0, 1.5, 1.0);
        let mut up = vec![0.0; ndof];
        for d in 0..ndof {
            up[d] = u0[d] - solver.dt * v0[d];
        }
        let mut next = vec![0.0; ndof];
        let f = vec![0.0; ndof];
        solver.step_with(&up, &u0, &f, &mut next, &mut ws);
        solver.record_step_costs(solver.full_scope(), 1, &ws.reg);
        let reg = ws.into_registry();
        assert!(!reg.is_enabled());
        assert!(reg.span_stats("step").is_none());
        assert!(reg.counter("step/fill/flops").is_none());
    }

    #[test]
    fn checkpoint_resume_is_bit_identical_to_straight_run() {
        use crate::harness::{CheckpointHook, NoExchange, ReceiverHook, RunConfig, SolverHarness};
        use quake_ckpt::{CheckpointPolicy, CheckpointReader, CheckpointWriter, PeriodicSink};
        let (mesh, cfg) = damped_hanging_setup();
        let solver = ElasticSolver::new(&mesh, &cfg);
        let harness = SolverHarness::new(&solver);
        let (u0, v0) = shear_pulse(&mesh, 4.0, 1.5, 1.0);
        let receivers: Vec<u32> = vec![0, (mesh.n_nodes() / 2) as u32];
        let n = solver.n_steps as u64;
        let half = n / 2;
        assert!(half >= 2);

        // Straight run: all n steps without interruption.
        let mut ws = solver.workspace();
        let mut straight = solver.initial_state(receivers.len(), Some((&u0, &v0)));
        let mut recv = ReceiverHook::new(&receivers);
        harness.run(
            &RunConfig::to_step(n),
            &mut straight,
            &mut ws,
            &mut NoExchange,
            &mut [&mut recv],
        );

        // Interrupted run: advance to n/2 writing a checkpoint there, then
        // restore from disk into a FRESH state and finish.
        let dir = std::env::temp_dir()
            .join("quake-solver-tests")
            .join(format!("resume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let writer = CheckpointWriter::new(&dir, "elastic").unwrap();
        let policy = CheckpointPolicy::every_steps(half);
        let mut first_leg = solver.initial_state(receivers.len(), Some((&u0, &v0)));
        {
            let mut sink = PeriodicSink::new(&writer, &policy);
            let mut recv = ReceiverHook::new(&receivers);
            let mut ckpt = CheckpointHook::new(&mut sink);
            harness.run(
                &RunConfig::to_step(half),
                &mut first_leg,
                &mut ws,
                &mut NoExchange,
                &mut [&mut recv, &mut ckpt],
            );
        }
        drop(first_leg); // resume must come purely from the file

        let reader = CheckpointReader::new(&dir, "elastic");
        let (step, mut resumed): (u64, SolverState) =
            reader.latest_valid(&quake_telemetry::Registry::disabled()).unwrap();
        assert_eq!(step, half);
        assert_eq!(resumed.step, half);
        let mut recv = ReceiverHook::new(&receivers);
        harness.run(
            &RunConfig::to_step(n),
            &mut resumed,
            &mut ws,
            &mut NoExchange,
            &mut [&mut recv],
        );

        // Bit-identical: every displacement dof and every trace sample.
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&straight.u_prev), bits(&resumed.u_prev));
        assert_eq!(bits(&straight.u_now), bits(&resumed.u_now));
        for (a, b) in straight.seismograms.iter().zip(&resumed.seismograms) {
            assert_eq!(bits(&a.data), bits(&b.data));
            assert_eq!(a.n_samples(), n as usize);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resumed_simulation_matches_run_shim() {
        use crate::harness::SolverHarness;
        let (mesh, cfg) = damped_hanging_setup();
        let solver = ElasticSolver::new(&mesh, &cfg);
        let (u0, v0) = shear_pulse(&mesh, 4.0, 1.5, 1.0);
        let receivers: Vec<u32> = vec![3];
        let baseline = solver.run(&[], &receivers, Some((&u0, &v0)));
        let mut ws = solver.workspace();
        let state = solver.initial_state(receivers.len(), Some((&u0, &v0)));
        let (result, fin) = SolverHarness::new(&solver)
            .run_simulation(&[], &receivers, state, &mut ws, None)
            .unwrap();
        assert_eq!(fin.step, solver.n_steps as u64);
        assert_eq!(result.seismograms[0].data, baseline.seismograms[0].data);
        assert_eq!(result.flops, baseline.flops);
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_sweep_is_bit_identical_to_serial() {
        // The threaded colored loop must match the serial color-major sweep
        // EXACTLY (each node is written by one element per color, so the
        // floating-point sum order is schedule-independent).
        let (mesh, cfg) = damped_hanging_setup();
        let solver = ElasticSolver::new(&mesh, &cfg);
        let ndof = 3 * mesh.n_nodes();
        let mut state = 0xF00Du64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        let u_now: Vec<f64> = (0..ndof).map(|_| next()).collect();
        let w: Vec<f64> = (0..ndof).map(|_| next()).collect();
        let mut rhs_serial = vec![0.0; ndof];
        let mut rhs_parallel = vec![0.0; ndof];
        let scope = &solver.full_scope;
        let reg = Registry::disabled();
        let mut colors = Vec::new();
        solver.sweep_serial(scope, &u_now, &w, &mut rhs_serial, &reg, &mut colors);
        for threads in [2, 3, 5] {
            rhs_parallel.fill(0.0);
            scope.schedule.sweep_parallel(threads, &u_now, &w, &mut rhs_parallel);
            assert_eq!(rhs_serial, rhs_parallel, "threads = {threads}");
        }
    }
}
