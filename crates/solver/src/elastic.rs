//! The production elastic wave solver (Section 2.1-2.2 of the paper).
//!
//! Explicit central differences on the lumped-mass Galerkin semidiscretization
//! of Navier's equations, exactly in the split form of eq. (2.4):
//!
//! ```text
//! [ (1 + a dt/2) M + (b dt/2) K_diag + (dt/2) C^AB_diag ] u_{k+1} =
//!   [ 2M - dt^2 (K + K^AB) - (b dt/2) K_off ] u_k
//! + [ (a dt/2 - 1) M + (b dt/2) K + (dt/2) C^AB ] u_{k-1} + dt^2 b_k
//! ```
//!
//! with elementwise Rayleigh constants `(a_e, b_e)` least-squares fitted to
//! the local soil's damping ratio, and Stacey absorbing boundaries. Hanging
//! nodes are eliminated by the projection `B^T A B ubar = B^T rhs`, which
//! keeps the update explicit because `A` is diagonal.
//!
//! The solver stores *no matrices*: per element only `(h, lambda, mu, rho,
//! a, b)` — the element matvec runs against the two canonical 24x24 matrices
//! of `quake-fem`.

use crate::abc::{accumulate_abc_damping, apply_abc_stiffness, build_abc_faces, AbcFace};
use crate::receivers::Seismogram;
use crate::sources::AssembledSource;
use quake_fem::hex8::{elastic_hex_matrices, elastic_matvec, lumped_hex_mass};
use quake_mesh::HexMesh;
use quake_model::attenuation::{damping_target_for_vs, fit_rayleigh};

/// Rayleigh-damping configuration: the frequency band the elementwise
/// least-squares fit targets.
#[derive(Clone, Copy, Debug)]
pub struct RayleighBand {
    pub f_lo: f64,
    pub f_hi: f64,
}

/// Solver configuration.
#[derive(Clone, Copy, Debug)]
pub struct ElasticConfig {
    /// Simulated duration (s).
    pub duration: f64,
    /// Time step; `None` = CFL-limited (`cfl * min h/vp`).
    pub dt: Option<f64>,
    /// CFL safety factor.
    pub cfl: f64,
    /// Which domain faces absorb (0/1 -x/+x, 2/3 -y/+y, 4/5 -z/+z).
    /// Default: all but face 4 — z=0 is the free surface.
    pub abc: [bool; 6],
    /// Material attenuation; `None` = lossless.
    pub rayleigh: Option<RayleighBand>,
}

impl ElasticConfig {
    pub fn new(duration: f64) -> ElasticConfig {
        ElasticConfig {
            duration,
            dt: None,
            cfl: 0.5,
            abc: [true, true, true, true, false, true],
            rayleigh: None,
        }
    }
}

/// Outcome of a run: seismograms plus performance accounting.
#[derive(Clone, Debug)]
pub struct RunResult {
    pub seismograms: Vec<Seismogram>,
    pub n_steps: usize,
    pub dt: f64,
    /// Analytic flop count of the run (see `quake-machine`).
    pub flops: u64,
    pub wall_secs: f64,
}

/// The assembled explicit solver.
///
/// Hanging-node treatment: stiffness-like terms are applied matrix-free on
/// the full node set and folded exactly (`B^T K B`), while every *diagonal*
/// matrix (mass, damping) is lumped in master space — `diag(B^T D B)`, i.e.
/// squared-weight folding — and used identically on both sides of the
/// update. This keeps the master-space operator symmetric (plain leapfrog
/// stability analysis applies) and the update explicit, which is what the
/// paper means by "the projection preserves the diagonality of A".
pub struct ElasticSolver<'m> {
    pub mesh: &'m HexMesh,
    pub dt: f64,
    pub n_steps: usize,
    /// Lumped nodal mass per node (unprojected; diagnostics only).
    mass: Vec<f64>,
    /// Projected (squared-weight folded) mass per dof.
    mass_f: Vec<f64>,
    /// Projected diagonal damping per dof: `a M + b K_diag + C^AB_diag`.
    cdiag_f: Vec<f64>,
    /// Unprojected `alpha M` and `C^AB` diagonals (for the full damping
    /// matvec `C w`).
    am_diag: Vec<f64>,
    cab_diag: Vec<f64>,
    /// Folded inverse LHS diagonal.
    lhs_inv: Vec<f64>,
    faces: Vec<AbcFace>,
    /// Per-element Rayleigh constants.
    alpha: Vec<f64>,
    beta: Vec<f64>,
    /// All element ids (cached for the serial step's hot path).
    all_elements: Vec<u32>,
}

impl<'m> ElasticSolver<'m> {
    pub fn new(mesh: &'m HexMesh, cfg: &ElasticConfig) -> ElasticSolver<'m> {
        let n = mesh.n_nodes();
        let ndof = 3 * n;
        let mats = elastic_hex_matrices();

        // CFL-limited time step: dt_crit = h / (sqrt(3) vp) for the lumped
        // trilinear hex (tensor-product eigenvalue bound).
        let mut h_over_vp = f64::INFINITY;
        for e in &mesh.elements {
            h_over_vp = h_over_vp.min(e.h / e.material.vp());
        }
        let dt = cfg.dt.unwrap_or(cfg.cfl * h_over_vp / 3.0f64.sqrt());
        assert!(dt > 0.0 && dt.is_finite(), "bad time step {dt}");
        let n_steps = (cfg.duration / dt).ceil() as usize;

        // Rayleigh constants per element.
        let ne = mesh.n_elements();
        let mut alpha = vec![0.0; ne];
        let mut beta = vec![0.0; ne];
        if let Some(band) = cfg.rayleigh {
            for (i, e) in mesh.elements.iter().enumerate() {
                let zeta = damping_target_for_vs(e.material.vs());
                let fit = fit_rayleigh(zeta, band.f_lo, band.f_hi, 16);
                alpha[i] = fit.alpha;
                beta[i] = fit.beta;
            }
        }

        // Assemble lumped mass, aM diag, bK diag.
        let mut mass = vec![0.0; n];
        let mut am_diag = vec![0.0; ndof];
        let mut bk_diag = vec![0.0; ndof];
        for (i, e) in mesh.elements.iter().enumerate() {
            let me = lumped_hex_mass(e.material.rho, e.h);
            for (c, &nd) in e.nodes.iter().enumerate() {
                mass[nd as usize] += me;
                for comp in 0..3 {
                    am_diag[nd as usize * 3 + comp] += alpha[i] * me;
                    let kd = e.h
                        * (e.material.lambda * mats.k_lambda_diag[3 * c + comp]
                            + e.material.mu * mats.k_mu_diag[3 * c + comp]);
                    bk_diag[nd as usize * 3 + comp] += beta[i] * kd;
                }
            }
        }

        // Stacey faces and their lumped damping.
        let faces = build_abc_faces(mesh, cfg.abc);
        let mut cab_diag = vec![0.0; ndof];
        accumulate_abc_damping(&faces, &mut cab_diag);

        // Projected diagonals: squared-weight folding, used identically on
        // both sides of the update.
        let mut mass_f = vec![0.0; ndof];
        for nd in 0..n {
            for comp in 0..3 {
                mass_f[3 * nd + comp] = mass[nd];
            }
        }
        mesh.fold_hanging_diag(&mut mass_f, 3);
        let mut cdiag_f = vec![0.0; ndof];
        for d in 0..ndof {
            cdiag_f[d] = am_diag[d] + bk_diag[d] + cab_diag[d];
        }
        mesh.fold_hanging_diag(&mut cdiag_f, 3);

        let mut lhs_inv = vec![0.0; ndof];
        for d in 0..ndof {
            lhs_inv[d] = 1.0 / (mass_f[d] + 0.5 * dt * cdiag_f[d]);
        }

        ElasticSolver {
            mesh,
            dt,
            n_steps,
            mass,
            mass_f,
            cdiag_f,
            am_diag,
            cab_diag,
            lhs_inv,
            faces,
            alpha,
            beta,
            all_elements: (0..mesh.n_elements() as u32).collect(),
        }
    }

    /// One explicit step: given `u_prev = u_{k-1}`, `u_now = u_k` (both with
    /// hanging nodes interpolated) and the external force `f_ext` (physical
    /// units, at time level k), fill `u_next`.
    pub fn step(&self, u_prev: &[f64], u_now: &[f64], f_ext: &[f64], u_next: &mut [f64]) {
        self.step_partial(&self.all_elements, None, u_prev, u_now, f_ext, u_next, |_| {});
    }

    /// The step over an element subset with a mid-step exchange hook — the
    /// building block of the distributed solver. `elems` selects the
    /// elements (and their boundary faces) this rank assembles; `f_ext` must
    /// likewise hold only this rank's share of the sources; `owned_nodes`
    /// (None = all) selects the nodes whose diagonal damping term this rank
    /// contributes — exactly one rank must own each node. All partial terms
    /// are constraint-folded *before* `exchange` (the fold is linear, so
    /// per-rank folded partials sum to the global fold); everything after
    /// the exchange is local and replicated.
    #[allow(clippy::too_many_arguments)]
    pub fn step_partial(
        &self,
        elems: &[u32],
        owned_nodes: Option<&[bool]>,
        u_prev: &[f64],
        u_now: &[f64],
        f_ext: &[f64],
        u_next: &mut [f64],
        exchange: impl FnOnce(&mut [f64]),
    ) {
        let mesh = self.mesh;
        let n = mesh.n_nodes();
        let ndof = 3 * n;
        assert_eq!(u_prev.len(), ndof);
        assert_eq!(u_now.len(), ndof);
        assert_eq!(f_ext.len(), ndof);
        assert_eq!(u_next.len(), ndof);
        let dt = self.dt;
        let dt2 = dt * dt;
        let mats = elastic_hex_matrices();

        // Partial (exchanged) phase: element stiffness/damping terms, this
        // rank's boundary faces, and this rank's sources.
        let rhs = u_next; // reuse the output buffer
        for d in 0..ndof {
            rhs[d] = dt2 * f_ext[d];
        }
        for &ei in elems {
            let i = ei as usize;
            let e = &mesh.elements[i];
            let mut xu = [0.0; 24];
            let mut xw = [0.0; 24];
            for (c, &nd) in e.nodes.iter().enumerate() {
                let b = nd as usize * 3;
                for comp in 0..3 {
                    xu[3 * c + comp] = u_now[b + comp];
                    xw[3 * c + comp] = u_now[b + comp] - u_prev[b + comp];
                }
            }
            let mut y = [0.0; 24];
            elastic_matvec(mats, e.material.lambda, e.material.mu, e.h, &xu, &mut y);
            let mut yw = [0.0; 24];
            if self.beta[i] != 0.0 {
                elastic_matvec(mats, e.material.lambda, e.material.mu, e.h, &xw, &mut yw);
            }
            let bscale = 0.5 * dt * self.beta[i];
            for (c, &nd) in e.nodes.iter().enumerate() {
                let b = nd as usize * 3;
                for comp in 0..3 {
                    rhs[b + comp] -= dt2 * y[3 * c + comp] + bscale * yw[3 * c + comp];
                }
            }
        }

        // Stacey tangential coupling (K^AB) of this rank's faces, applied as
        // a traction force.
        if !self.faces.is_empty() {
            let mut fab = vec![0.0; ndof];
            if elems.len() == mesh.n_elements() {
                apply_abc_stiffness(&self.faces, u_now, &mut fab);
            } else {
                // Boundary faces are partitioned with their elements.
                let mut mine = vec![false; mesh.n_elements()];
                for &ei in elems {
                    mine[ei as usize] = true;
                }
                let faces: Vec<crate::abc::AbcFace> = self
                    .faces
                    .iter()
                    .filter(|f| mine[f.element as usize])
                    .copied()
                    .collect();
                apply_abc_stiffness(&faces, u_now, &mut fab);
            }
            for d in 0..ndof {
                rhs[d] += dt2 * fab[d];
            }
        }

        // Owner-computed diagonal damping term on w = u0 - u-.
        match owned_nodes {
            None => {
                for d in 0..ndof {
                    rhs[d] -=
                        0.5 * dt * (self.am_diag[d] + self.cab_diag[d]) * (u_now[d] - u_prev[d]);
                }
            }
            Some(mask) => {
                for nd in 0..n {
                    if !mask[nd] {
                        continue;
                    }
                    for comp in 0..3 {
                        let d = 3 * nd + comp;
                        rhs[d] -= 0.5
                            * dt
                            * (self.am_diag[d] + self.cab_diag[d])
                            * (u_now[d] - u_prev[d]);
                    }
                }
            }
        }

        // Project this rank's partial terms BEFORE the exchange. The fold is
        // linear, so the sum of per-rank folded partials equals the fold of
        // the assembled sum — and no rank ever needs hanging-node values it
        // did not itself assemble.
        mesh.fold_hanging(rhs, 3);

        // Sum-exchange the partially assembled terms at interface nodes.
        exchange(rhs);

        // Master-space history terms with the *projected* diagonals (same
        // matrices as the LHS — this symmetry is what keeps the constrained
        // update stable):
        //   rhs_m += 2 Mf u0 - Mf u- + (dt/2) Cf u0
        for d in 0..ndof {
            rhs[d] += (2.0 * self.mass_f[d] + 0.5 * dt * self.cdiag_f[d]) * u_now[d]
                - self.mass_f[d] * u_prev[d];
            rhs[d] *= self.lhs_inv[d];
        }
        mesh.interpolate_hanging(rhs, 3);
    }

    /// Run the full simulation with the given sources and receiver nodes.
    /// `u0`/`v0` optionally set an initial state (e.g. a plane-wave pulse).
    pub fn run(
        &self,
        sources: &[AssembledSource],
        receiver_nodes: &[u32],
        initial: Option<(&[f64], &[f64])>,
    ) -> RunResult {
        let t0 = std::time::Instant::now();
        let ndof = 3 * self.mesh.n_nodes();
        let mut u_prev = vec![0.0; ndof];
        let mut u_now = vec![0.0; ndof];
        let mut u_next = vec![0.0; ndof];
        let mut f = vec![0.0; ndof];
        if let Some((u0, v0)) = initial {
            // u_now = u(0); u_prev = u(-dt) ~ u0 - dt v0 (first order is
            // enough: the error is O(dt^2), matching the scheme).
            u_now.copy_from_slice(u0);
            for d in 0..ndof {
                u_prev[d] = u0[d] - self.dt * v0[d];
            }
        }

        let mut traces: Vec<Seismogram> =
            receiver_nodes.iter().map(|_| Seismogram::new(self.dt, 3)).collect();

        for k in 0..self.n_steps {
            let t = k as f64 * self.dt;
            f.iter_mut().for_each(|v| *v = 0.0);
            for s in sources {
                s.add_force(t, &mut f);
            }
            self.step(&u_prev, &u_now, &f, &mut u_next);
            for (tr, &nd) in traces.iter_mut().zip(receiver_nodes) {
                let b = nd as usize * 3;
                tr.push(&u_now[b..b + 3]);
            }
            std::mem::swap(&mut u_prev, &mut u_now);
            std::mem::swap(&mut u_now, &mut u_next);
        }

        let flops = quake_machine::flops::elastic_total(
            self.mesh.n_elements() as u64,
            self.mesh.n_nodes() as u64,
            self.faces.len() as u64,
            self.n_steps as u64,
        );
        RunResult {
            seismograms: traces,
            n_steps: self.n_steps,
            dt: self.dt,
            flops,
            wall_secs: t0.elapsed().as_secs_f64(),
        }
    }

    /// Run and return the final `(u_prev, u_now)` state (for field tests).
    pub fn run_to_state(
        &self,
        initial: Option<(&[f64], &[f64])>,
        n_steps: usize,
    ) -> (Vec<f64>, Vec<f64>) {
        let ndof = 3 * self.mesh.n_nodes();
        let mut u_prev = vec![0.0; ndof];
        let mut u_now = vec![0.0; ndof];
        let mut u_next = vec![0.0; ndof];
        let f = vec![0.0; ndof];
        if let Some((u0, v0)) = initial {
            u_now.copy_from_slice(u0);
            for d in 0..ndof {
                u_prev[d] = u0[d] - self.dt * v0[d];
            }
        }
        for _ in 0..n_steps {
            self.step(&u_prev, &u_now, &f, &mut u_next);
            std::mem::swap(&mut u_prev, &mut u_now);
            std::mem::swap(&mut u_now, &mut u_next);
        }
        (u_prev, u_now)
    }

    /// The fitted per-element Rayleigh constants `(alpha, beta)`.
    pub fn rayleigh_constants(&self) -> (&[f64], &[f64]) {
        (&self.alpha, &self.beta)
    }

    /// Total mechanical energy of a state: `1/2 v^T M v + 1/2 u^T K u` with
    /// `v = (u_now - u_prev)/dt`.
    pub fn energy(&self, u_prev: &[f64], u_now: &[f64]) -> f64 {
        let mats = elastic_hex_matrices();
        let mut e_kin = 0.0;
        for (nd, &m) in self.mass.iter().enumerate() {
            for comp in 0..3 {
                let v = (u_now[3 * nd + comp] - u_prev[3 * nd + comp]) / self.dt;
                e_kin += 0.5 * m * v * v;
            }
        }
        let mut e_str = 0.0;
        for e in &self.mesh.elements {
            let mut x = [0.0; 24];
            for (c, &nd) in e.nodes.iter().enumerate() {
                for comp in 0..3 {
                    x[3 * c + comp] = u_now[nd as usize * 3 + comp];
                }
            }
            let mut y = [0.0; 24];
            elastic_matvec(mats, e.material.lambda, e.material.mu, e.h, &x, &mut y);
            for i in 0..24 {
                e_str += 0.5 * x[i] * y[i];
            }
        }
        e_kin + e_str
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quake_mesh::hexmesh::ElemMaterial;
    use quake_mesh::HexMesh;
    use quake_octree::{BalanceMode, LinearOctree, MAX_LEVEL};

    fn uniform_mesh(level: u8, l: f64, lambda: f64, mu: f64, rho: f64) -> HexMesh {
        HexMesh::from_octree(&LinearOctree::uniform(level), l, |_, _, _, _| ElemMaterial {
            lambda,
            mu,
            rho,
        })
    }

    /// Gaussian shear pulse traveling in +x: u_y = exp(-((x-x0)/w)^2).
    fn shear_pulse(mesh: &HexMesh, x0: f64, w: f64, vs: f64) -> (Vec<f64>, Vec<f64>) {
        let n = mesh.n_nodes();
        let mut u = vec![0.0; 3 * n];
        let mut v = vec![0.0; 3 * n];
        for (i, c) in mesh.coords.iter().enumerate() {
            let a = (c[0] - x0) / w;
            let g = (-a * a).exp();
            u[3 * i + 1] = g;
            // For a rightward-traveling wave f(x - vs t): du/dt = -vs f'.
            v[3 * i + 1] = vs * 2.0 * a / w * g;
        }
        (u, v)
    }

    #[test]
    fn zero_state_stays_zero() {
        let mesh = uniform_mesh(2, 8.0, 2.0, 1.0, 1.0);
        let solver = ElasticSolver::new(&mesh, &ElasticConfig::new(1.0));
        let (up, un) = solver.run_to_state(None, 10);
        assert!(up.iter().chain(&un).all(|&v| v == 0.0));
    }

    #[test]
    fn dt_respects_cfl() {
        let mesh = uniform_mesh(3, 8.0, 2.0, 1.0, 1.0);
        let solver = ElasticSolver::new(&mesh, &ElasticConfig::new(1.0));
        let vp = 2.0f64.sqrt(); // sqrt((lambda+2mu)/rho) = sqrt(4) = 2.0...
        let _ = vp;
        let h = 1.0;
        let vp = ((2.0 + 2.0) / 1.0f64).sqrt();
        assert!(solver.dt <= 0.5 * h / vp + 1e-12);
    }

    #[test]
    fn energy_conserved_without_damping_or_abc() {
        let mesh = uniform_mesh(3, 8.0, 2.0, 1.0, 1.0);
        let mut cfg = ElasticConfig::new(0.5);
        cfg.abc = [false; 6];
        // Well inside the stability limit: the staggered-velocity energy
        // proxy oscillates with O((dt w)^2) amplitude near the CFL limit.
        cfg.dt = Some(0.05);
        let solver = ElasticSolver::new(&mesh, &cfg);
        let (u0, v0) = shear_pulse(&mesh, 4.0, 1.0, 1.0);
        let (up1, un1) = solver.run_to_state(Some((&u0, &v0)), 1);
        let e_start = solver.energy(&up1, &un1);
        let (up, un) = solver.run_to_state(Some((&u0, &v0)), 200);
        let e_end = solver.energy(&up, &un);
        assert!(
            (e_end - e_start).abs() < 5e-3 * e_start,
            "energy drift {e_start} -> {e_end}"
        );
        assert!(e_start > 0.0);
    }

    #[test]
    fn pulse_travels_at_shear_speed() {
        // d'Alembert: a rightward shear pulse at x0 arrives at x0 + vs*T.
        // Free boundaries pollute from the y/z faces at vp, so measure at the
        // center before pollution arrives.
        let (lambda, mu, rho) = (2.0, 1.0, 1.0);
        let vs = (mu / rho as f64).sqrt(); // 1.0
        let mesh = uniform_mesh(4, 16.0, lambda, mu, rho); // h = 1
        let mut cfg = ElasticConfig::new(1.0);
        cfg.abc = [false; 6];
        let solver = ElasticSolver::new(&mesh, &cfg);
        let (u0, v0) = shear_pulse(&mesh, 5.0, 2.5, vs);
        let travel = 3.0; // seconds; pollution needs 8/vp = 4 s to reach center
        let n_steps = (travel / solver.dt).round() as usize;
        let (_, un) = solver.run_to_state(Some((&u0, &v0)), n_steps);
        // Compare u_y along the center line y = z = 8 against the analytic
        // translated pulse.
        let t_actual = n_steps as f64 * solver.dt;
        let mut err = 0.0;
        let mut norm = 0.0;
        for (i, c) in mesh.coords.iter().enumerate() {
            if (c[1] - 8.0).abs() < 1e-9 && (c[2] - 8.0).abs() < 1e-9 {
                let a = (c[0] - 5.0 - vs * t_actual) / 2.5;
                let exact = (-a * a).exp();
                let got = un[3 * i + 1];
                err += (got - exact) * (got - exact);
                norm += exact * exact;
            }
        }
        let rel = (err / norm).sqrt();
        assert!(rel < 0.08, "relative waveform error {rel}");
    }

    #[test]
    fn abc_absorbs_outgoing_pulse() {
        let mesh = uniform_mesh(3, 8.0, 2.0, 1.0, 1.0);
        let mut cfg = ElasticConfig::new(1.0);
        cfg.abc = [true; 6];
        let solver = ElasticSolver::new(&mesh, &cfg);
        let (u0, v0) = shear_pulse(&mesh, 4.0, 1.0, 1.0);
        let (up1, un1) = solver.run_to_state(Some((&u0, &v0)), 1);
        let e_start = solver.energy(&up1, &un1);
        // After the pulse crosses the domain (8 units at vs = 1 -> 8 s) it
        // should be mostly gone.
        let n_steps = (10.0 / solver.dt).round() as usize;
        let (up, un) = solver.run_to_state(Some((&u0, &v0)), n_steps);
        let e_end = solver.energy(&up, &un);
        // Stacey is exact only at normal incidence; the 1-D pulse grazes the
        // four side faces, which is the worst case — ~10-15% residual is the
        // expected behaviour (compare the reflecting control test: > 90%).
        assert!(
            e_end < 0.2 * e_start,
            "ABC left {:.1}% of the energy",
            100.0 * e_end / e_start
        );
    }

    #[test]
    fn reflecting_box_keeps_energy_in() {
        // Control for the ABC test: with free boundaries the energy stays.
        let mesh = uniform_mesh(3, 8.0, 2.0, 1.0, 1.0);
        let mut cfg = ElasticConfig::new(1.0);
        cfg.abc = [false; 6];
        let solver = ElasticSolver::new(&mesh, &cfg);
        let (u0, v0) = shear_pulse(&mesh, 4.0, 1.0, 1.0);
        let (up1, un1) = solver.run_to_state(Some((&u0, &v0)), 1);
        let e_start = solver.energy(&up1, &un1);
        let n_steps = (10.0 / solver.dt).round() as usize;
        let (up, un) = solver.run_to_state(Some((&u0, &v0)), n_steps);
        let e_end = solver.energy(&up, &un);
        assert!(e_end > 0.9 * e_start, "free box lost energy: {e_start} -> {e_end}");
    }

    #[test]
    fn rayleigh_damping_decays_energy() {
        let mesh = uniform_mesh(3, 8.0, 2.0, 1.0, 1.0);
        let mut cfg = ElasticConfig::new(1.0);
        cfg.abc = [false; 6];
        cfg.rayleigh = Some(RayleighBand { f_lo: 0.05, f_hi: 2.0 });
        let solver = ElasticSolver::new(&mesh, &cfg);
        let (u0, v0) = shear_pulse(&mesh, 4.0, 1.0, 1.0);
        let (up1, un1) = solver.run_to_state(Some((&u0, &v0)), 1);
        let e_start = solver.energy(&up1, &un1);
        let n_steps = (8.0 / solver.dt).round() as usize;
        let (up, un) = solver.run_to_state(Some((&u0, &v0)), n_steps);
        let e_end = solver.energy(&up, &un);
        assert!(e_end < 0.7 * e_start, "damping too weak: {e_start} -> {e_end}");
        assert!(e_end > 0.0);
    }

    #[test]
    fn hanging_node_mesh_propagates_smoothly() {
        // A multiresolution mesh must carry a pulse across the refinement
        // interface without blowing up and with bounded interface artifacts:
        // compare against the uniform-coarse solution on shared nodes.
        let half = 1u32 << (MAX_LEVEL - 1);
        let mut tree = LinearOctree::build(|o| {
            o.level < 3 || (o.level < 4 && o.x < half)
        });
        tree.balance(BalanceMode::Full);
        let mk = |t: &LinearOctree| {
            HexMesh::from_octree(t, 8.0, |_, _, _, _| ElemMaterial {
                lambda: 2.0,
                mu: 1.0,
                rho: 1.0,
            })
        };
        let mesh_fine = mk(&tree);
        assert!(mesh_fine.n_hanging() > 0);
        let mesh_coarse = mk(&LinearOctree::uniform(3));
        let mut cfg = ElasticConfig::new(1.0);
        cfg.abc = [false; 6];
        // Use the same dt for comparability.
        cfg.dt = Some(0.1);
        let s_fine = ElasticSolver::new(&mesh_fine, &cfg);
        let s_coarse = ElasticSolver::new(&mesh_coarse, &cfg);
        let (u0f, v0f) = shear_pulse(&mesh_fine, 4.0, 1.5, 1.0);
        let (u0c, v0c) = shear_pulse(&mesh_coarse, 4.0, 1.5, 1.0);
        let n_steps = 20;
        let (_, unf) = s_fine.run_to_state(Some((&u0f, &v0f)), n_steps);
        let (_, unc) = s_coarse.run_to_state(Some((&u0c, &v0c)), n_steps);
        // Compare on the coarse mesh's nodes.
        let mut fine_by_grid = std::collections::HashMap::new();
        for (i, g) in mesh_fine.grid_coords.iter().enumerate() {
            fine_by_grid.insert(*g, i);
        }
        let mut err = 0.0;
        let mut norm = 0.0;
        for (i, g) in mesh_coarse.grid_coords.iter().enumerate() {
            let j = fine_by_grid[g];
            let d = unf[3 * j + 1] - unc[3 * i + 1];
            err += d * d;
            norm += unc[3 * i + 1] * unc[3 * i + 1];
        }
        let rel = (err / norm).sqrt();
        assert!(rel < 0.1, "fine/coarse mismatch {rel}");
        assert!(unf.iter().all(|v| v.is_finite()));
    }
}
