//! Checkpointable solver state — the resumable run path's snapshot type.
//!
//! A [`SolverState`] is everything the leapfrog scheme needs to continue a
//! run as if it had never stopped: the next step index, the two displacement
//! fields the two-term recurrence reads, and the seismogram buffers recorded
//! so far. Displacements are stored as raw `f64` bit patterns (see
//! `quake-ckpt`), so a restored run is **bit-identical** to an uninterrupted
//! one — the test suite asserts byte-equal fields and traces for
//! straight-vs-resumed runs, serial and SPMD.

use quake_ckpt::{Checkpointable, CkptError, Decoder, Encoder};

use crate::receivers::Seismogram;

/// Resumable state of an explicit elastic run.
///
/// `step` is the index of the *next* step to execute: after completing
/// 0-based step `k` the state holds `u_prev = u_k`, `u_now = u_{k+1}`,
/// `k + 1` samples per trace, and `step == k + 1`.
///
/// The displacement vectors are stored in the solver's internal *planar*
/// layout (`dof = comp * n_nodes + node`, see `quake_solver::layout`) —
/// hence the `v2` kind: a `v1` (interleaved) snapshot must not silently
/// resume under the new layout.
#[derive(Clone, Debug, PartialEq)]
pub struct SolverState {
    /// Next step to execute (0-based).
    pub step: u64,
    /// Displacement at `t = (step - 1) dt`.
    pub u_prev: Vec<f64>,
    /// Displacement at `t = step * dt`.
    pub u_now: Vec<f64>,
    /// Per-receiver traces recorded so far (one sample per completed step).
    pub seismograms: Vec<Seismogram>,
}

impl Checkpointable for SolverState {
    const KIND: &'static str = "quake.solver.elastic.v2";

    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.step);
        enc.put_f64_slice(&self.u_prev);
        enc.put_f64_slice(&self.u_now);
        enc.put_u64(self.seismograms.len() as u64);
        for tr in &self.seismograms {
            enc.put_f64(tr.dt);
            enc.put_u64(tr.ncomp as u64);
            enc.put_f64_slice(&tr.data);
        }
    }

    fn decode(dec: &mut Decoder) -> Result<SolverState, CkptError> {
        let step = dec.take_u64()?;
        let u_prev = dec.take_f64_vec()?;
        let u_now = dec.take_f64_vec()?;
        let n_traces = dec.take_u64()? as usize;
        let mut seismograms = Vec::with_capacity(n_traces.min(1 << 20));
        for _ in 0..n_traces {
            let dt = dec.take_f64()?;
            let ncomp = dec.take_u64()? as usize;
            let data = dec.take_f64_vec()?;
            if ncomp == 0 || !data.len().is_multiple_of(ncomp) {
                return Err(CkptError::Malformed("seismogram length not a multiple of ncomp"));
            }
            seismograms.push(Seismogram { dt, ncomp, data });
        }
        Ok(SolverState { step, u_prev, u_now, seismograms })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quake_ckpt::format::{decode_file, encode_file};

    #[test]
    fn solver_state_roundtrips_bit_exactly() {
        let mut tr = Seismogram::new(0.25, 3);
        tr.push(&[1.0, -0.0, f64::MIN_POSITIVE]);
        tr.push(&[3.5e-17, 2.0, -9.0]);
        let state = SolverState {
            step: 42,
            u_prev: vec![0.1, -2.0, f64::from_bits(0x7FF0_0000_0000_0001)],
            u_now: vec![4.0; 5],
            seismograms: vec![tr],
        };
        let mut enc = Encoder::new();
        state.encode(&mut enc);
        let file = encode_file(SolverState::KIND, state.step, &enc.into_bytes());
        let (step, payload) = decode_file(SolverState::KIND, &file).unwrap();
        let mut dec = Decoder::new(payload);
        let back = SolverState::decode(&mut dec).unwrap();
        dec.finish().unwrap();
        assert_eq!(step, 42);
        assert_eq!(back.step, state.step);
        // Bit-level comparison (NaN payloads included).
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&back.u_prev), bits(&state.u_prev));
        assert_eq!(bits(&back.u_now), bits(&state.u_now));
        assert_eq!(bits(&back.seismograms[0].data), bits(&state.seismograms[0].data));
        assert_eq!(back.seismograms[0].ncomp, 3);
    }

    #[test]
    fn zero_ncomp_trace_is_rejected() {
        let mut enc = Encoder::new();
        enc.put_u64(0); // step
        enc.put_f64_slice(&[]); // u_prev
        enc.put_f64_slice(&[]); // u_now
        enc.put_u64(1); // one trace
        enc.put_f64(0.1);
        enc.put_u64(0); // ncomp = 0: invalid
        enc.put_f64_slice(&[1.0]);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert!(matches!(SolverState::decode(&mut dec), Err(CkptError::Malformed(_))));
    }
}
