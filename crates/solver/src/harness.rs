//! The one canonical explicit time loop — [`SolverHarness`] — and the
//! [`StepHook`] surface that composes every cross-cutting concern onto it.
//!
//! Before this module, each feature of the elastic solver forked the leapfrog
//! loop into a new `run_*` variant: telemetry, checkpointing, resumability,
//! distribution, fault injection, and their combinations were ten
//! near-duplicate copies of the same ten-line recurrence. The harness inverts
//! that: there is exactly **one** step loop, driven by a [`RunConfig`], with
//! an ordered list of hooks observing it. The collapsed entry points —
//! `ElasticSolver::run`, `run_distributed`, `run_distributed_recoverable`,
//! `run_forward` — are thin shims that assemble a hook list and delegate
//! here.
//!
//! The loop structure (bit-identical to every variant it replaced):
//!
//! ```text
//! for k in first..until:
//!     before_step(hooks)                  # FaultHook kills here
//!     f = sum of sources at t = k dt      # skipped when there are none
//!     step_scoped(u_prev, u_now, f -> u_next):
//!         mid-step: pre_exchange(hooks)   # FaultHook drops/delays here
//!                   exchange.exchange(k, rhs)
//!     swap(u_prev, u_now); swap(u_now, u_next); state.step = k+1
//!     after_step(hooks)                   # ReceiverHook samples u_k (now in
//!                                         # u_prev), CheckpointHook offers
//!                                         # the state to its StepSink
//! on_run_end(hooks)                       # TelemetryHook records analytic
//!                                         # step costs
//! ```
//!
//! Hook order matters only where hooks share data: [`ReceiverHook`] must
//! precede [`CheckpointHook`] so a snapshot taken after step `k` contains
//! step `k`'s seismogram sample (the order the collapsed serial loop had).
//! Hooks that touch disjoint state commute — the displacement history is
//! bit-identical under any permutation (tested).
//!
//! Hooks are zero-cost in the no-op case: an empty hook slice costs one
//! empty-slice iteration per phase, and `bench_step --check-overhead` gates
//! the no-op-hook harness against the frozen reference step.

use crate::checkpoint::SolverState;
use crate::elastic::{ElasticSolver, RunResult, StepScope, StepWorkspace};
use crate::receivers::record_sample_planar;
use crate::sources::AssembledSource;
use quake_ckpt::{CkptError, StepSink};
use quake_machine::phases::ElasticStepShape;
use quake_parcomm::RankFaults;
use quake_telemetry::{Registry, StepObserver};

/// Immutable facts about the run a hook can read from any phase.
#[derive(Clone, Copy, Debug)]
pub struct RunInfo {
    /// Telemetry rank of the driving workspace (0 for serial runs).
    pub rank: usize,
    /// Time-step size.
    pub dt: f64,
    /// First step index this run executes (`state.step` at entry).
    pub first_step: u64,
    /// One past the last step index (exclusive bound).
    pub until_step: u64,
}

/// What a hook sees between steps: the run facts, the mutable solver state,
/// the workspace registry, and whether the state is tainted (an exchange was
/// skipped, so the fields are suspect and must not be persisted).
pub struct HookCtx<'a> {
    pub info: &'a RunInfo,
    pub state: &'a mut SolverState,
    pub reg: &'a Registry,
    pub tainted: bool,
}

/// A hook's verdict on the mid-step interface exchange.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExchangeFlow {
    /// Perform the exchange normally.
    Proceed,
    /// Skip it (fault injection). The run is tainted from this step on.
    Skip,
}

/// Why a run stopped before its final step.
#[derive(Debug)]
pub enum StopReason {
    /// A hook killed the rank (scripted fault) before executing the step.
    Killed,
    /// The mid-step exchange failed (dead peer, protocol skew).
    Comm(String),
    /// A checkpoint sink failed to persist the state.
    Ckpt(CkptError),
    /// The numerics health watchdog ([`crate::health::HealthHook`]) found a
    /// violation (NaN/Inf in the fields, or unphysical energy growth) and
    /// aborted the run after dumping its post-mortem.
    Health(String),
}

/// How a harness run ended.
#[derive(Debug)]
pub enum RunOutcome {
    /// Reached `until_step`; `executed` steps were performed by this call.
    Finished { executed: u64 },
    /// Stopped at `step` (the step being executed, or — for a checkpoint
    /// failure — the step just completed) for `reason`.
    Stopped { step: u64, reason: StopReason },
}

/// Observer/controller of the canonical step loop. Every method defaults to
/// a no-op, so implementations override only the phases they care about.
pub trait StepHook {
    /// Before the first step. Errors abort the run before any step executes.
    fn on_run_start(&mut self, _ctx: &mut HookCtx<'_>) -> Result<(), StopReason> {
        Ok(())
    }

    /// At the top of each step, before forces are assembled; `ctx.state.step`
    /// is the step about to execute. Errors stop the run at this step.
    fn before_step(&mut self, _ctx: &mut HookCtx<'_>) -> Result<(), StopReason> {
        Ok(())
    }

    /// Mid-step, just before the interface exchange of `step`. The solver
    /// state is borrowed by the step kernel here, so only the run facts are
    /// visible. Returning [`ExchangeFlow::Skip`] suppresses the exchange and
    /// taints the run.
    fn pre_exchange(&mut self, _info: &RunInfo, _step: u64) -> ExchangeFlow {
        ExchangeFlow::Proceed
    }

    /// After the step's swaps: `ctx.state.step` is the *next* step, the
    /// just-computed displacement is `ctx.state.u_now`, and the one sampled
    /// at the completed step's time level sits in `ctx.state.u_prev`.
    fn after_step(&mut self, _ctx: &mut HookCtx<'_>) -> Result<(), StopReason> {
        Ok(())
    }

    /// After the loop finished normally (not called on early stops, matching
    /// the accounting of the collapsed variants).
    fn on_run_end(&mut self, _ctx: &mut HookCtx<'_>) {}
}

/// The default hook: observes nothing, costs nothing.
pub struct NoopHook;

impl StepHook for NoopHook {}

/// The mid-step interface exchange. Serial runs use [`NoExchange`]; the
/// distributed entry points plug the `quake-parcomm` fabric in (fail-stop or
/// step-tagged).
pub trait Exchange {
    /// Sum-exchange the partially assembled interface values of `step`.
    /// `reg` is the driving workspace's registry: an instrumented exchange
    /// records its `wait`/`copy` split there (the `step/exchange` span is
    /// open around this call, so recorded sub-intervals nest under it).
    fn exchange(&mut self, step: u64, rhs: &mut [f64], reg: &Registry) -> Result<(), String>;
}

/// No communication: the serial exchange.
pub struct NoExchange;

impl Exchange for NoExchange {
    fn exchange(&mut self, _step: u64, _rhs: &mut [f64], _reg: &Registry) -> Result<(), String> {
        Ok(())
    }
}

/// What to run: the sources, the step bound, and (for distributed ranks) the
/// step schedule. Defaults: no sources, the solver's full-domain scope.
pub struct RunConfig<'a> {
    sources: &'a [AssembledSource],
    until_step: u64,
    scope: Option<&'a StepScope>,
}

impl<'a> RunConfig<'a> {
    /// Run source-free on the full domain up to (exclusive) `until_step`.
    /// Note the bound is **not** clamped to the solver's configured step
    /// count — callers that want the simulation end pass `solver.n_steps`.
    pub fn to_step(until_step: u64) -> RunConfig<'a> {
        RunConfig { sources: &[], until_step, scope: None }
    }

    /// Drive the run with these assembled sources.
    pub fn with_sources(mut self, sources: &'a [AssembledSource]) -> RunConfig<'a> {
        self.sources = sources;
        self
    }

    /// Restrict the step to a rank's schedule (elements, faces, owned nodes).
    pub fn with_scope(mut self, scope: &'a StepScope) -> RunConfig<'a> {
        self.scope = Some(scope);
        self
    }
}

/// The per-run scratch vectors of the step loop: the `u_next` target of the
/// three-term recurrence and the assembled force vector. [`SolverHarness::run`]
/// allocates a fresh pair per call; a caller that drives many runs back to
/// back (the `quake-serve` worker pool) preallocates one of these and uses
/// [`SolverHarness::run_with_scratch`] so steady-state serving performs no
/// per-run heap allocation. Both buffers are zeroed on entry, so a reused
/// scratch is bit-identical to a fresh one.
pub struct RunScratch {
    u_next: Vec<f64>,
    f: Vec<f64>,
}

impl RunScratch {
    /// Scratch for a solver with `ndof` planar degrees of freedom
    /// (`3 * mesh.n_nodes()`).
    pub fn for_ndof(ndof: usize) -> RunScratch {
        RunScratch { u_next: vec![0.0; ndof], f: vec![0.0; ndof] }
    }
}

/// The one canonical step loop. See the module docs for the loop structure
/// and the hook phase map.
pub struct SolverHarness<'s, 'm> {
    solver: &'s ElasticSolver<'m>,
}

impl<'s, 'm> SolverHarness<'s, 'm> {
    pub fn new(solver: &'s ElasticSolver<'m>) -> SolverHarness<'s, 'm> {
        SolverHarness { solver }
    }

    /// Advance `state` from `state.step` up to (exclusive)
    /// `cfg.until_step`, invoking `hooks` in order at each phase. This is
    /// the loop every public `run_*` entry point delegates to.
    pub fn run(
        &self,
        cfg: &RunConfig<'_>,
        state: &mut SolverState,
        ws: &mut StepWorkspace,
        exchange: &mut dyn Exchange,
        hooks: &mut [&mut dyn StepHook],
    ) -> RunOutcome {
        let mut scratch = RunScratch::for_ndof(3 * self.solver.mesh.n_nodes());
        self.run_with_scratch(cfg, state, ws, exchange, hooks, &mut scratch)
    }

    /// [`SolverHarness::run`] with caller-owned scratch vectors, for drivers
    /// that execute many runs against one solver (scenario serving). The
    /// scratch is zeroed here, so the displacement history is bit-identical
    /// to [`SolverHarness::run`] regardless of what a previous run left in
    /// the buffers.
    pub fn run_with_scratch(
        &self,
        cfg: &RunConfig<'_>,
        state: &mut SolverState,
        ws: &mut StepWorkspace,
        exchange: &mut dyn Exchange,
        hooks: &mut [&mut dyn StepHook],
        scratch: &mut RunScratch,
    ) -> RunOutcome {
        let solver = self.solver;
        let ndof = 3 * solver.mesh.n_nodes();
        assert_eq!(state.u_prev.len(), ndof, "state does not match this mesh");
        assert_eq!(state.u_now.len(), ndof, "state does not match this mesh");
        assert_eq!(scratch.u_next.len(), ndof, "scratch does not match this mesh");
        assert_eq!(scratch.f.len(), ndof, "scratch does not match this mesh");
        let scope = cfg.scope.unwrap_or_else(|| solver.full_scope());
        let info = RunInfo {
            rank: ws.reg.rank(),
            dt: solver.dt,
            first_step: state.step,
            until_step: cfg.until_step,
        };
        let u_next = &mut scratch.u_next;
        let f = &mut scratch.f;
        u_next.iter_mut().for_each(|v| *v = 0.0);
        f.iter_mut().for_each(|v| *v = 0.0);
        let mut tainted = false;

        {
            let mut ctx = HookCtx { info: &info, state, reg: &ws.reg, tainted };
            for h in hooks.iter_mut() {
                if let Err(reason) = h.on_run_start(&mut ctx) {
                    return RunOutcome::Stopped { step: info.first_step, reason };
                }
            }
        }

        for k in info.first_step..info.until_step {
            {
                let mut ctx = HookCtx { info: &info, state, reg: &ws.reg, tainted };
                for h in hooks.iter_mut() {
                    if let Err(reason) = h.before_step(&mut ctx) {
                        return RunOutcome::Stopped { step: k, reason };
                    }
                }
            }
            if !cfg.sources.is_empty() {
                let t = k as f64 * solver.dt;
                f.iter_mut().for_each(|v| *v = 0.0);
                ws.reg.enter(ws.ids.source);
                for s in cfg.sources {
                    s.add_force_planar(t, f);
                }
                ws.reg.exit(ws.ids.source);
            }
            let mut comm_err = None;
            solver.step_scoped(scope, &state.u_prev, &state.u_now, f, u_next, ws, |rhs, reg| {
                let mut flow = ExchangeFlow::Proceed;
                for h in hooks.iter_mut() {
                    if h.pre_exchange(&info, k) == ExchangeFlow::Skip {
                        flow = ExchangeFlow::Skip;
                    }
                }
                if flow == ExchangeFlow::Skip {
                    tainted = true;
                    return;
                }
                if let Err(e) = exchange.exchange(k, rhs, reg) {
                    comm_err = Some(e);
                }
            });
            // A failed exchange aborts before the swaps: the state keeps
            // describing the last *completed* step.
            if let Some(e) = comm_err {
                return RunOutcome::Stopped { step: k, reason: StopReason::Comm(e) };
            }
            std::mem::swap(&mut state.u_prev, &mut state.u_now);
            std::mem::swap(&mut state.u_now, u_next);
            state.step = k + 1;
            {
                let mut ctx = HookCtx { info: &info, state, reg: &ws.reg, tainted };
                for h in hooks.iter_mut() {
                    if let Err(reason) = h.after_step(&mut ctx) {
                        return RunOutcome::Stopped { step: k, reason };
                    }
                }
            }
        }

        let executed = state.step - info.first_step;
        {
            let mut ctx = HookCtx { info: &info, state, reg: &ws.reg, tainted };
            for h in hooks.iter_mut() {
                h.on_run_end(&mut ctx);
            }
        }
        RunOutcome::Finished { executed }
    }

    /// Run source-free from an optional initial `(u0, v0)` for `n_steps` and
    /// return the final `(u_prev, u_now)` pair (for field tests). The bound
    /// is *not* clamped to the solver's configured duration. Both the inputs
    /// and the returned pair use the public interleaved layout; the planar
    /// internal state never leaks out of this call.
    pub fn run_to_state(
        &self,
        initial: Option<(&[f64], &[f64])>,
        n_steps: usize,
    ) -> (Vec<f64>, Vec<f64>) {
        let mut state = self.solver.initial_state(0, initial);
        let mut ws = self.solver.workspace();
        let cfg = RunConfig::to_step(n_steps as u64);
        self.run(&cfg, &mut state, &mut ws, &mut NoExchange, &mut []);
        (
            crate::layout::to_interleaved3(&state.u_prev),
            crate::layout::to_interleaved3(&state.u_now),
        )
    }

    /// Drive a full simulation to the solver's configured end: sources on,
    /// receivers sampled through a [`ReceiverHook`], analytic step costs
    /// recorded through a [`TelemetryHook`], and — when `sink` is given —
    /// the state offered to it after every step through a
    /// [`CheckpointHook`]. Returns the run accounting and the final state;
    /// `flops` and step costs cover only the steps executed by *this* call
    /// (a resumed run accounts only its own tail).
    pub fn run_simulation(
        &self,
        sources: &[AssembledSource],
        receiver_nodes: &[u32],
        mut state: SolverState,
        ws: &mut StepWorkspace,
        sink: Option<&mut dyn StepSink<SolverState>>,
    ) -> Result<(RunResult, SolverState), CkptError> {
        let solver = self.solver;
        let t0 = std::time::Instant::now();
        let executed = (solver.n_steps as u64).saturating_sub(state.step);
        let cfg = RunConfig::to_step(solver.n_steps as u64).with_sources(sources);
        let mut receivers = ReceiverHook::new(receiver_nodes);
        let mut telemetry = TelemetryHook::new(solver);
        // ReceiverHook precedes CheckpointHook: a snapshot after step k must
        // already contain step k's seismogram sample.
        let outcome = match sink {
            Some(sink) => {
                let mut ckpt = CheckpointHook::new(sink);
                self.run(
                    &cfg,
                    &mut state,
                    ws,
                    &mut NoExchange,
                    &mut [&mut receivers, &mut ckpt, &mut telemetry],
                )
            }
            None => self.run(
                &cfg,
                &mut state,
                ws,
                &mut NoExchange,
                &mut [&mut receivers, &mut telemetry],
            ),
        };
        match outcome {
            RunOutcome::Finished { .. } => {}
            RunOutcome::Stopped { reason: StopReason::Ckpt(e), .. } => return Err(e),
            RunOutcome::Stopped { reason, .. } => {
                unreachable!("serial run cannot stop for {reason:?}")
            }
        }
        let flops = quake_machine::flops::elastic_total(
            solver.mesh.n_elements() as u64,
            solver.mesh.n_nodes() as u64,
            solver.faces.len() as u64,
            executed,
        );
        let result = RunResult {
            seismograms: state.seismograms.clone(),
            n_steps: solver.n_steps,
            dt: solver.dt,
            flops,
            wall_secs: t0.elapsed().as_secs_f64(),
        };
        Ok((result, state))
    }
}

/// The central-difference recurrence every solver in this crate shares:
/// seed `(u_prev, u_now)` from an optional `(u0, v0)` (first-order backward
/// start, matching the scheme's order), run `n_steps` force-free steps via
/// `step`, swap-swap, and return the final pair. [`SolverHarness`] embeds
/// these semantics; the tet baseline's `run_to_state` delegates here so the
/// two cannot drift in their start/finish handling again.
pub fn leapfrog_to_state(
    ndof: usize,
    dt: f64,
    initial: Option<(&[f64], &[f64])>,
    n_steps: usize,
    mut step: impl FnMut(&[f64], &[f64], &[f64], &mut [f64]),
) -> (Vec<f64>, Vec<f64>) {
    let mut u_prev = vec![0.0; ndof];
    let mut u_now = vec![0.0; ndof];
    let mut u_next = vec![0.0; ndof];
    let f = vec![0.0; ndof];
    if let Some((u0, v0)) = initial {
        u_now.copy_from_slice(u0);
        for d in 0..ndof {
            u_prev[d] = u0[d] - dt * v0[d];
        }
    }
    for _ in 0..n_steps {
        step(&u_prev, &u_now, &f, &mut u_next);
        std::mem::swap(&mut u_prev, &mut u_now);
        std::mem::swap(&mut u_now, &mut u_next);
    }
    (u_prev, u_now)
}

/// Samples receiver displacements into the state's seismograms — the single
/// home of the interpolation that used to be copy-pasted into every loop.
/// Sample `k` of every trace is the displacement at time `k dt`, taken from
/// `u_prev` *after* the step's swaps (which is the buffer that held `u_now`
/// when the step was computed).
pub struct ReceiverHook<'a> {
    nodes: &'a [u32],
}

impl<'a> ReceiverHook<'a> {
    pub fn new(nodes: &'a [u32]) -> ReceiverHook<'a> {
        ReceiverHook { nodes }
    }
}

impl StepHook for ReceiverHook<'_> {
    fn on_run_start(&mut self, ctx: &mut HookCtx<'_>) -> Result<(), StopReason> {
        assert_eq!(
            ctx.state.seismograms.len(),
            self.nodes.len(),
            "state has one seismogram per receiver node"
        );
        Ok(())
    }

    fn after_step(&mut self, ctx: &mut HookCtx<'_>) -> Result<(), StopReason> {
        record_sample_planar(&mut ctx.state.seismograms, self.nodes, &ctx.state.u_prev);
        Ok(())
    }
}

/// Offers the post-step state to a [`StepSink`] (skipping while the run is
/// tainted, so suspect fields never reach disk). The sink owns cadence and
/// atomicity; a sink failure stops the run with [`StopReason::Ckpt`].
pub struct CheckpointHook<'a> {
    sink: &'a mut dyn StepSink<SolverState>,
}

impl<'a> CheckpointHook<'a> {
    pub fn new(sink: &'a mut dyn StepSink<SolverState>) -> CheckpointHook<'a> {
        CheckpointHook { sink }
    }
}

impl StepHook for CheckpointHook<'_> {
    fn after_step(&mut self, ctx: &mut HookCtx<'_>) -> Result<(), StopReason> {
        if ctx.tainted {
            return Ok(());
        }
        self.sink.offer(ctx.state.step, ctx.state, ctx.reg).map_err(StopReason::Ckpt)
    }
}

/// Records the run's analytic per-phase step costs on completion (joining
/// the measured spans to the roofline model) and optionally forwards
/// lifecycle notifications to a [`StepObserver`]. The per-step phase spans
/// themselves are emitted by the step kernel via the workspace registry —
/// this hook only adds the end-of-run accounting the collapsed variants did.
pub struct TelemetryHook<'s, 'm> {
    solver: &'s ElasticSolver<'m>,
    shape: ElasticStepShape,
    observer: Option<&'s mut dyn StepObserver>,
}

impl<'s, 'm> TelemetryHook<'s, 'm> {
    /// Costs of the full-domain step (serial runs).
    pub fn new(solver: &'s ElasticSolver<'m>) -> TelemetryHook<'s, 'm> {
        let shape = solver.phase_shape(solver.full_scope());
        TelemetryHook { solver, shape, observer: None }
    }

    /// Costs of a caller-adjusted shape (a distributed rank's scope with its
    /// true interface exchange volume).
    pub fn shaped(solver: &'s ElasticSolver<'m>, shape: ElasticStepShape) -> TelemetryHook<'s, 'm> {
        TelemetryHook { solver, shape, observer: None }
    }

    /// Also forward run lifecycle notifications to `observer`.
    pub fn with_observer(mut self, observer: &'s mut dyn StepObserver) -> TelemetryHook<'s, 'm> {
        self.observer = Some(observer);
        self
    }
}

impl StepHook for TelemetryHook<'_, '_> {
    fn on_run_start(&mut self, ctx: &mut HookCtx<'_>) -> Result<(), StopReason> {
        if let Some(obs) = self.observer.as_deref_mut() {
            obs.on_run_start(ctx.state.step, ctx.reg);
        }
        Ok(())
    }

    fn after_step(&mut self, ctx: &mut HookCtx<'_>) -> Result<(), StopReason> {
        if let Some(obs) = self.observer.as_deref_mut() {
            obs.on_step(ctx.state.step, ctx.reg);
        }
        Ok(())
    }

    fn on_run_end(&mut self, ctx: &mut HookCtx<'_>) {
        let executed = ctx.state.step - ctx.info.first_step;
        self.solver.record_step_costs_shaped(&self.shape, executed, ctx.reg);
        if let Some(obs) = self.observer.as_deref_mut() {
            obs.on_run_end(executed, ctx.reg);
        }
    }
}

/// Injects a scripted [`FaultPlan`](quake_parcomm::FaultPlan) into the loop:
/// kills the rank at the top of its scripted step, corrupts a solution entry
/// with NaN (a silent numerical fault only a `HealthHook` can catch), and
/// drops or delays the mid-step exchange. The production configuration is
/// simply *no FaultHook in the list* — injection support costs nothing when
/// absent.
pub struct FaultHook<'p> {
    faults: RankFaults<'p>,
}

impl<'p> FaultHook<'p> {
    pub fn new(faults: RankFaults<'p>) -> FaultHook<'p> {
        FaultHook { faults }
    }
}

impl StepHook for FaultHook<'_> {
    fn before_step(&mut self, ctx: &mut HookCtx<'_>) -> Result<(), StopReason> {
        if self.faults.kills(ctx.state.step) {
            return Err(StopReason::Killed);
        }
        if let Some(index) = self.faults.corrupts(ctx.state.step) {
            let i = index % ctx.state.u_now.len().max(1);
            ctx.state.u_now[i] = f64::NAN;
        }
        Ok(())
    }

    fn pre_exchange(&mut self, _info: &RunInfo, step: u64) -> ExchangeFlow {
        if self.faults.drops(step) {
            return ExchangeFlow::Skip;
        }
        let delay = self.faults.delay_ms(step);
        if delay > 0 {
            std::thread::sleep(std::time::Duration::from_millis(delay));
        }
        ExchangeFlow::Proceed
    }
}
