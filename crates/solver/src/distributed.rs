//! Rank-parallel elastic solver (owner-computes + interface sum-exchange).
//!
//! Each rank assembles the stiffness/force terms of its own elements, the
//! partially assembled interface values are sum-exchanged once per step via
//! `quake-parcomm`, and the (replicated) diagonal solve and constraint
//! projection are local. The result is bit-identical to the serial solver —
//! the property the scalability experiments of Table 2.1 rest on. Timing of
//! machines larger than this host is the job of `quake-machine`.

use std::path::PathBuf;
use std::sync::Mutex;
use std::time::Instant;

use crate::checkpoint::SolverState;
use crate::elastic::{ElasticSolver, StepScope};
use crate::harness::{
    CheckpointHook, Exchange, FaultHook, HookCtx, RunConfig, RunOutcome, SolverHarness, StepHook,
    StopReason, TelemetryHook,
};
use crate::health::{dump_post_mortem, HealthConfig, HealthHook};
use quake_ckpt::{CheckpointPolicy, CheckpointReader, CheckpointWriter, CkptError, PeriodicSink};
use quake_mesh::{partition_morton, ExchangePlan, HexMesh};
use quake_parcomm::{run_spmd, CommError, Communicator, ExchangeTiming, FaultPlan};
use quake_telemetry::{reduce_across_ranks, Reduced, Registry, Snapshot, SpanId, TraceBuffer};

/// What to run distributed: rank count, step count, optional initial
/// `(u0, v0)` field, and whether each rank steps with an instrumented
/// telemetry registry (optionally with a flight recorder attached).
#[derive(Clone, Copy, Debug)]
pub struct DistConfig<'a> {
    pub n_ranks: usize,
    pub n_steps: usize,
    pub initial: Option<(&'a [f64], &'a [f64])>,
    /// Per-rank phase telemetry + cross-rank reduction
    /// ([`run_distributed`] only; the recovery supervisor records its own
    /// `recover/*` metrics instead).
    pub telemetry: bool,
    /// Flight-recorder capacity per rank (events). `Some` implies tracing:
    /// every rank's registry shares one epoch and records span slices, the
    /// timed exchange splits `wait`/`copy`, and [`DistributedRun::traces`]
    /// returns the per-rank buffers. Requires [`DistConfig::telemetry`].
    pub trace_capacity: Option<usize>,
}

impl<'a> DistConfig<'a> {
    pub fn new(n_ranks: usize, n_steps: usize) -> DistConfig<'a> {
        DistConfig { n_ranks, n_steps, initial: None, telemetry: false, trace_capacity: None }
    }

    /// Seed every rank with the initial `(u0, v0)` field.
    pub fn with_initial(mut self, u0: &'a [f64], v0: &'a [f64]) -> DistConfig<'a> {
        self.initial = Some((u0, v0));
        self
    }

    /// Step with per-rank instrumented registries and reduce the common
    /// phase metrics across ranks at the end of the run.
    pub fn with_telemetry(mut self) -> DistConfig<'a> {
        self.telemetry = true;
        self
    }

    /// Attach a per-rank flight recorder of `capacity` events (implies
    /// telemetry) and return the merged-timeline buffers with the run.
    pub fn with_trace(mut self, capacity: usize) -> DistConfig<'a> {
        self.telemetry = true;
        self.trace_capacity = Some(capacity);
        self
    }
}

/// Lazily interned sub-span ids of the timed exchange (one set per rank).
struct ExchangeSpanIds {
    wait: SpanId,
    copy: SpanId,
}

/// Timed sum-exchange shared by both exchange flavors: measures the
/// wait/copy split via [`Communicator::try_exchange_sum_timed`] and records
/// both as sub-spans of the already-open `step/exchange` span (so the
/// phase-accounting invariant — children sum into the parent's `child_ns` —
/// still holds). The split is rendered copy-then-wait: durations are exact,
/// but the true per-neighbor interleaving (pack → block → unpack) is not
/// preserved in slice start times.
fn exchange_timed(
    comm: &Communicator,
    neighbors: &[(usize, Vec<u32>)],
    rhs: &mut [f64],
    tag: u64,
    reg: &Registry,
    spans: &mut Option<ExchangeSpanIds>,
) -> Result<(), CommError> {
    let ids = spans.get_or_insert_with(|| ExchangeSpanIds {
        wait: reg.span_id("step/exchange/wait"),
        copy: reg.span_id("step/exchange/copy"),
    });
    let t0 = Instant::now();
    let mut timing = ExchangeTiming::default();
    comm.try_exchange_sum_timed(neighbors, rhs, 1, tag, &mut timing)?;
    let t0_ns = reg.since_epoch_ns(t0);
    reg.record_span(ids.copy, t0_ns, timing.copy_ns);
    reg.record_span(ids.wait, t0_ns + timing.copy_ns, timing.wait_ns);
    Ok(())
}

/// Tag of the untagged (plain fail-stop) exchange when it goes through the
/// timed path — the same constant `Communicator::exchange_sum` uses, so both
/// code paths interoperate.
const PLAIN_EXCHANGE_TAG: u64 = 0xE0;

/// The fail-stop interface exchange of the plain distributed path, where
/// rank failure is not survivable anyway: the untimed branch panics inside
/// `parcomm` if a peer disappears; the instrumented branch surfaces the
/// error as [`StopReason::Comm`] and [`run_distributed`] asserts the run
/// finished.
///
/// `neighbors` lists *planar dof* indices (`comp * n_nodes + node`, matching
/// the rhs layout the step hands out), expanded identically on both sides of
/// each link from the exchange plan's node order — so the exchange runs with
/// `ncomp = 1` and the fabric stays layout-agnostic.
struct CommExchange<'c> {
    comm: &'c Communicator,
    neighbors: Vec<(usize, Vec<u32>)>,
    spans: Option<ExchangeSpanIds>,
}

impl Exchange for CommExchange<'_> {
    fn exchange(&mut self, _step: u64, rhs: &mut [f64], reg: &Registry) -> Result<(), String> {
        if !reg.is_enabled() {
            // Steady state pays zero clock reads beyond the phase spans.
            self.comm.exchange_sum(&self.neighbors, rhs, 1);
            return Ok(());
        }
        exchange_timed(self.comm, &self.neighbors, rhs, PLAIN_EXCHANGE_TAG, reg, &mut self.spans)
            .map_err(|e| e.to_string())
    }
}

/// The step-tagged exchange of the recovery path: the exchange of step `k`
/// carries tag `STEP_TAG_BASE + k`, so a peer that skipped a step is
/// detected as protocol skew and surfaces as a run-stopping error instead
/// of silently summing stale data. Planar dof lists, like [`CommExchange`].
struct TaggedExchange<'c> {
    comm: &'c Communicator,
    neighbors: Vec<(usize, Vec<u32>)>,
    spans: Option<ExchangeSpanIds>,
}

impl Exchange for TaggedExchange<'_> {
    fn exchange(&mut self, step: u64, rhs: &mut [f64], reg: &Registry) -> Result<(), String> {
        if !reg.is_enabled() {
            return self
                .comm
                .try_exchange_sum(&self.neighbors, rhs, 1, STEP_TAG_BASE + step)
                .map_err(|e| e.to_string());
        }
        exchange_timed(self.comm, &self.neighbors, rhs, STEP_TAG_BASE + step, reg, &mut self.spans)
            .map_err(|e| e.to_string())
    }
}

/// Per-step cross-rank load-imbalance gauge: after every step each rank
/// takes the wall-time delta of its `step/elements` span, the ranks
/// allreduce max and sum, and every rank records `imbalance` =
/// max / mean (≥ 1.0; 1.0 = perfectly balanced) as a gauge (last step),
/// a histogram sample (distribution over steps), and — when a flight
/// recorder is attached — a timeline mark. The reduced values are identical
/// on every rank, so the metric participates cleanly in the end-of-run
/// cross-rank reduction.
struct ImbalanceHook<'c> {
    comm: &'c Communicator,
    mark: SpanId,
    prev_elements_ns: u64,
}

impl<'c> ImbalanceHook<'c> {
    fn new(comm: &'c Communicator, reg: &Registry) -> ImbalanceHook<'c> {
        ImbalanceHook { comm, mark: reg.span_id("imbalance"), prev_elements_ns: 0 }
    }
}

impl StepHook for ImbalanceHook<'_> {
    fn after_step(&mut self, ctx: &mut HookCtx<'_>) -> Result<(), StopReason> {
        let total = ctx.reg.span_stats("step/elements").map_or(0, |s| s.total_ns);
        let delta = (total - self.prev_elements_ns) as f64;
        self.prev_elements_ns = total;
        // Two tiny collectives per step; this hook only runs on the
        // instrumented path, so the steady-state loop never sees them.
        let mut sum = [delta];
        self.comm.allreduce_sum(&mut sum);
        let max = self.comm.allreduce_max(delta);
        let mean = sum[0] / self.comm.size() as f64;
        let imb = if mean > 0.0 { max / mean } else { 1.0 };
        ctx.reg.gauge("imbalance", imb);
        ctx.reg.observe("imbalance", imb);
        if ctx.reg.trace_is_enabled() {
            ctx.reg.trace_mark(self.mark, imb);
        }
        Ok(())
    }
}

/// Per-rank outcome of a distributed run. A rank's state vectors are valid
/// (identical to the serial solver) exactly on the nodes its own elements
/// touch — values elsewhere are never communicated, exactly as in a real
/// distributed-memory code where they would not even be allocated.
pub struct DistributedRun {
    /// `(u_prev, u_now)` per rank.
    pub states: Vec<(Vec<f64>, Vec<f64>)>,
    /// Elements owned by each rank.
    pub elements: Vec<Vec<u32>>,
    /// Interface exchange volume (node values per step) per rank.
    pub volumes: Vec<usize>,
    /// Per-rank telemetry snapshots (empty unless telemetry was requested).
    pub snapshots: Vec<Snapshot>,
    /// Min/max/mean across ranks of every common metric — the per-phase load
    /// imbalance view of the paper's scaling tables. Empty unless telemetry
    /// was requested.
    pub reduced: Vec<Reduced>,
    /// Per-rank flight-recorder buffers sharing one epoch (empty unless
    /// [`DistConfig::with_trace`] was requested). Merge with
    /// [`quake_telemetry::json::chrome_trace`] for a per-rank-track timeline.
    pub traces: Vec<TraceBuffer>,
}

/// Run the elastic solver on [`DistConfig::n_ranks`] SPMD ranks with a
/// Morton element partition: every rank drives the **same**
/// [`SolverHarness`] loop as the serial solver, scoped to its own elements,
/// with the fail-stop sum-exchange plugged into the mid-step hook point.
///
/// With [`DistConfig::telemetry`] each rank steps with an instrumented
/// registry, a [`TelemetryHook`] records its analytic phase costs (including
/// the true interface exchange volume), and the run ends with a collective
/// min/max/mean reduction over the phase metrics all ranks share.
pub fn run_distributed(solver: &ElasticSolver<'_>, cfg: &DistConfig<'_>) -> DistributedRun {
    let setup = DistSetup::build(solver, cfg.n_ranks);
    let volumes = setup.volumes.clone();
    // One epoch for every rank's registry: per-rank timestamps land on a
    // common timeline, so the merged trace shows true cross-rank skew.
    let epoch = Instant::now();

    let results = run_spmd(cfg.n_ranks, |comm: &Communicator| {
        let rank = comm.rank();
        let scope = &setup.scopes[rank];
        let mut ws = if cfg.telemetry {
            let reg = Registry::with_epoch(rank, epoch);
            if let Some(cap) = cfg.trace_capacity {
                reg.enable_trace(cap);
            }
            solver.workspace_with(reg)
        } else {
            solver.workspace()
        };
        let mut state = solver.initial_state(0, cfg.initial);
        let mut exchange = CommExchange {
            comm,
            neighbors: setup.neighbors(rank, solver.mesh.n_nodes()),
            spans: None,
        };
        let run_cfg = RunConfig::to_step(cfg.n_steps as u64).with_scope(scope);
        let harness = SolverHarness::new(solver);
        let outcome = if cfg.telemetry {
            // This rank's true interface traffic: 3 doubles per shared
            // node, each sent AND received.
            let mut shape = solver.phase_shape(scope);
            shape.exchange_doubles = 2 * 3 * volumes[rank] as u64;
            let mut telemetry = TelemetryHook::shaped(solver, shape);
            let mut imbalance = ImbalanceHook::new(comm, &ws.reg);
            harness.run(
                &run_cfg,
                &mut state,
                &mut ws,
                &mut exchange,
                &mut [&mut telemetry, &mut imbalance],
            )
        } else {
            harness.run(&run_cfg, &mut state, &mut ws, &mut exchange, &mut [])
        };
        // Fail-stop path: a stopped rank means a dead peer — surface it.
        assert!(
            matches!(outcome, RunOutcome::Finished { .. }),
            "fail-stop distributed run stopped: {outcome:?}"
        );

        // Reduce the common metrics across ranks. The per-color element
        // spans are rank-local names (color counts differ per partition), so
        // they stay in the snapshot but are excluded from the collective.
        let (snapshot, reduced) = if cfg.telemetry {
            let snap = ws.reg.snapshot();
            let mut common = snap.clone();
            common.retain(|name| !name.starts_with("span.step/elements/color"));
            let reduced = reduce_across_ranks(comm, &common);
            (snap, reduced)
        } else {
            (Snapshot::default(), Vec::new())
        };
        let trace = ws.reg.trace_buffer();
        // Public boundary: hand the states back interleaved.
        (
            crate::layout::to_interleaved3(&state.u_prev),
            crate::layout::to_interleaved3(&state.u_now),
            snapshot,
            reduced,
            trace,
        )
    });

    let mut states = Vec::with_capacity(cfg.n_ranks);
    let mut snapshots = Vec::with_capacity(cfg.n_ranks);
    let mut reduced = Vec::new();
    let mut traces = Vec::new();
    for (up, un, snap, red, trace) in results {
        states.push((up, un));
        snapshots.push(snap);
        if reduced.is_empty() {
            reduced = red; // identical on every rank — keep rank 0's copy
        }
        if cfg.trace_capacity.is_some() {
            traces.push(trace);
        }
    }
    if !cfg.telemetry {
        snapshots.clear();
    }

    DistributedRun { states, elements: setup.per_rank, volumes, snapshots, reduced, traces }
}

/// The rank decomposition shared by every distributed entry point: Morton
/// element partition, interface exchange plan, lowest-rank node ownership,
/// and the per-rank step schedules (built once, reused every step and every
/// recovery attempt).
struct DistSetup {
    per_rank: Vec<Vec<u32>>,
    scopes: Vec<StepScope>,
    plan: ExchangePlan,
    volumes: Vec<usize>,
}

impl DistSetup {
    fn build(solver: &ElasticSolver<'_>, n_ranks: usize) -> DistSetup {
        let mesh: &HexMesh = solver.mesh;
        let parts = partition_morton(mesh.n_elements(), n_ranks);
        let plan = ExchangePlan::build(mesh, &parts, n_ranks);
        let volumes: Vec<usize> = (0..n_ranks).map(|p| plan.exchange_volume(p)).collect();

        let mut per_rank: Vec<Vec<u32>> = vec![Vec::new(); n_ranks];
        for (e, &p) in parts.iter().enumerate() {
            per_rank[p as usize].push(e as u32);
        }

        // Node ownership: the lowest-numbered rank whose elements touch a
        // node contributes its diagonal damping term.
        let mut owner = vec![u32::MAX; mesh.n_nodes()];
        for (e, &p) in parts.iter().enumerate() {
            for &nd in &mesh.elements[e].nodes {
                if p < owner[nd as usize] {
                    owner[nd as usize] = p;
                }
            }
        }
        // Per-rank step schedules (element coloring + boundary faces + owned
        // mask), built ONCE — the per-step face filtering the old code did
        // is gone.
        let scopes: Vec<StepScope> = (0..n_ranks)
            .map(|r| {
                solver.scope(&per_rank[r], Some(owner.iter().map(|&o| o == r as u32).collect()))
            })
            .collect();
        DistSetup { per_rank, scopes, plan, volumes }
    }

    /// This rank's neighbor links as *planar dof* lists: the plan's shared
    /// nodes expanded component-major (`comp * n_nodes + node`). Both ends
    /// of a link expand the same node order, so the packed send/receive
    /// streams line up and per-dof accumulation order is unchanged from the
    /// interleaved scheme (one contribution per neighbor per dof, neighbors
    /// visited in plan order) — the bit-identity guarantee is preserved.
    fn neighbors(&self, rank: usize, n_nodes: usize) -> Vec<(usize, Vec<u32>)> {
        self.plan.plans[rank]
            .iter()
            .map(|(q, nodes)| {
                let mut dofs = Vec::with_capacity(3 * nodes.len());
                for comp in 0..3u32 {
                    for &nd in nodes {
                        dofs.push(comp * n_nodes as u32 + nd);
                    }
                }
                (*q as usize, dofs)
            })
            .collect()
    }
}

/// Tag base for step-tagged interface exchanges: the exchange of step `k`
/// uses tag `STEP_TAG_BASE + k`. A peer that skipped an exchange (injected
/// [`quake_parcomm::Fault::DropExchange`], or a bug) is detected by its
/// neighbors as tag skew — a [`quake_parcomm::CommError::Protocol`] error —
/// on the very next message, instead of silently summing stale data.
pub const STEP_TAG_BASE: u64 = 0xE000_0000;

/// Configuration of the checkpoint/recovery supervisor.
#[derive(Clone, Debug)]
pub struct RecoveryConfig {
    /// Directory holding the per-rank checkpoint files (`rank{r}.*.qckpt`).
    pub ckpt_dir: PathBuf,
    /// Checkpoint cadence in steps (all ranks checkpoint the same steps, so
    /// a consistent restore line always exists).
    pub every_steps: u64,
    /// Give up after this many attempts (≥ 1; each recovery is one retry).
    pub max_attempts: usize,
    /// Scripted faults, injected through a per-rank
    /// [`FaultHook`] on the **first attempt only** (so a retry is clean).
    /// [`FaultPlan::none`] is the production configuration.
    pub faults: FaultPlan,
    /// When set, each rank runs with a small flight recorder and any rank
    /// that does not finish an attempt (killed, comm abort, checkpoint
    /// error, health abort) writes a post-mortem NDJSON dump
    /// (`rank{r}.attempt{a}.postmortem.ndjson`) into this directory before
    /// the supervisor decides whether to retry.
    pub dump_dir: Option<PathBuf>,
    /// When set, every rank runs a numerics [`HealthHook`] with this
    /// configuration, ordered **before** the checkpoint hook — so no state a
    /// rank persists has failed the health check, and the restore line after
    /// a watchdog abort predates the corruption. The watchdog cadence should
    /// divide [`RecoveryConfig::every_steps`]. Per-rank violation dumps
    /// (`rank{r}.attempt{a}.health.ndjson`) land in
    /// [`RecoveryConfig::dump_dir`] when that is set.
    pub health: Option<HealthConfig>,
}

impl RecoveryConfig {
    /// Fault-free supervisor over `ckpt_dir` with a step cadence and retry
    /// budget.
    pub fn new(ckpt_dir: PathBuf, every_steps: u64, max_attempts: usize) -> RecoveryConfig {
        RecoveryConfig {
            ckpt_dir,
            every_steps,
            max_attempts,
            faults: FaultPlan::none(),
            dump_dir: None,
            health: None,
        }
    }

    /// Inject this fault plan on the first attempt.
    pub fn with_faults(mut self, faults: FaultPlan) -> RecoveryConfig {
        self.faults = faults;
        self
    }

    /// Write per-rank post-mortem dumps of failed attempts into `dir`.
    pub fn with_dump_dir(mut self, dir: PathBuf) -> RecoveryConfig {
        self.dump_dir = Some(dir);
        self
    }

    /// Run every rank under a numerics watchdog (see
    /// [`RecoveryConfig::health`] for the ordering contract).
    pub fn with_health(mut self, health: HealthConfig) -> RecoveryConfig {
        self.health = Some(health);
        self
    }
}

/// How one rank ended one attempt.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RankOutcome {
    /// Ran to the final step.
    Finished,
    /// Killed by the fault plan before executing `step`.
    Killed { step: u64 },
    /// Observed a failure (dead peer, protocol skew, checkpoint write
    /// error) during `step` and exited.
    Aborted { step: u64, reason: String },
}

/// Result of a recoverable distributed run.
pub struct RecoveredRun {
    /// Per-rank `(u_prev, u_now)` of the final (successful) attempt; valid
    /// on the nodes each rank's elements touch, as in [`DistributedRun`].
    pub states: Vec<(Vec<f64>, Vec<f64>)>,
    /// Elements owned by each rank.
    pub elements: Vec<Vec<u32>>,
    /// Attempts executed (1 = no failure).
    pub attempts: usize,
    /// Successful restarts from checkpoint (attempts - 1 when finished).
    pub recoveries: usize,
    /// Step every rank of the final attempt started from (0 = from scratch).
    pub restored_step: u64,
    /// Per-attempt, per-rank outcomes (diagnostics).
    pub outcomes: Vec<Vec<RankOutcome>>,
    /// Did the run reach the final step on every rank within
    /// `max_attempts`?
    pub finished: bool,
}

/// Internal per-rank result of one attempt.
enum RankRun {
    Finished(SolverState),
    Killed { step: u64 },
    Aborted { step: u64, reason: String },
}

/// Run the distributed elastic solver under the checkpoint/recovery
/// supervisor, optionally injecting the scripted faults of
/// [`RecoveryConfig::faults`] (first attempt only).
///
/// Each rank drives the same [`SolverHarness`] loop as every other entry
/// point, composed from hooks: a [`FaultHook`] injects the scripted
/// kills/drops/delays, a [`CheckpointHook`] offers the state to a per-rank
/// [`PeriodicSink`] every [`RecoveryConfig::every_steps`] steps, and the
/// mid-step exchange is **step-tagged** ([`TaggedExchange`]). There is **no
/// barrier in the step loop** — a dead rank must not be able to hang
/// survivors — so failure propagates through the communication fabric
/// itself: a rank that stops for any reason drops its channel endpoints,
/// every neighbor's next exchange observes `RankFailure` (or `Protocol`
/// skew) and aborts, and the cascade reaches every connected rank.
/// `run_spmd`'s thread join is the survivor barrier. The supervisor then
/// computes the **restore line** — the highest step at which *every* rank
/// has a checksum-valid checkpoint (corrupt or truncated files are skipped
/// per rank) — reloads all ranks there, and relaunches. Faults are injected
/// on the first attempt only, so a retry is clean; a rank that *dropped* an
/// exchange is tainted and its [`CheckpointHook`] stops persisting, keeping
/// corrupt state off disk.
///
/// The final states are bit-identical to an unfaulted run: restore is exact
/// (raw `f64` bit patterns) and the element sweep order is deterministic.
///
/// `reg` receives supervisor telemetry: `recover/attempts`,
/// `recover/recoveries`, `recover/restored_step` counters, a `ckpt_restore`
/// span per reloaded rank, and one NDJSON `recover_attempt` event per
/// attempt.
pub fn run_distributed_recoverable(
    solver: &ElasticSolver<'_>,
    cfg: &DistConfig<'_>,
    rcfg: &RecoveryConfig,
    reg: &Registry,
) -> Result<RecoveredRun, CkptError> {
    assert!(rcfg.every_steps > 0, "checkpoint cadence must be positive");
    assert!(rcfg.max_attempts >= 1);
    let n_ranks = cfg.n_ranks;
    let setup = DistSetup::build(solver, n_ranks);
    let policy = CheckpointPolicy::every_steps(rcfg.every_steps);

    let writers: Vec<CheckpointWriter> = (0..n_ranks)
        .map(|r| CheckpointWriter::new(&rcfg.ckpt_dir, &format!("rank{r}")))
        .collect::<Result<_, _>>()?;
    if let Some(dir) = &rcfg.dump_dir {
        std::fs::create_dir_all(dir)?;
    }

    let fresh = || solver.initial_state(0, cfg.initial);
    // Unless the caller pinned one, dumps name restore lines in terms of
    // this supervisor's own checkpoint cadence.
    let health_cfg = rcfg.health.as_ref().map(|hc| {
        let mut hc = hc.clone();
        if hc.ckpt_every.is_none() {
            hc.ckpt_every = Some(rcfg.every_steps);
        }
        hc
    });

    let mut outcomes: Vec<Vec<RankOutcome>> = Vec::new();
    let mut restored_step = 0u64;
    for attempt in 0..rcfg.max_attempts {
        let recoveries = attempt; // every attempt past the first is a restart
                                  // Restore line: the highest step where ALL ranks hold a valid
                                  // checkpoint; from scratch if there is none. States are decoded
                                  // serially here (the supervisor survives rank deaths by
                                  // construction) and moved into the rank closures via take-once
                                  // slots.
        let (start_step, states) = match restore_line(&rcfg.ckpt_dir, n_ranks, reg) {
            Some((s, states)) => (s, states),
            None => (0, (0..n_ranks).map(|_| fresh()).collect()),
        };
        restored_step = start_step;
        let slots: Vec<Mutex<Option<SolverState>>> =
            states.into_iter().map(|s| Mutex::new(Some(s))).collect();
        let inject = attempt == 0 && !rcfg.faults.is_empty();
        let no_faults = FaultPlan::default();

        let runs = run_spmd(n_ranks, |comm: &Communicator| {
            let rank = comm.rank();
            // A poisoned or already-drained slot means another incarnation of
            // this rank ran in the same attempt — abort the rank (the
            // supervisor treats it like any other failed rank) rather than
            // panicking mid-exchange.
            let Some(state) = slots[rank].lock().ok().and_then(|mut slot| slot.take()) else {
                return RankRun::Aborted { step: 0, reason: "rank state slot unavailable".into() };
            };
            run_rank_recoverable(
                solver,
                &setup,
                comm,
                state,
                cfg.n_steps as u64,
                &writers[rank],
                &policy,
                if inject { &rcfg.faults } else { &no_faults },
                rcfg.dump_dir.as_deref().map(|d| (d, attempt)),
                health_cfg.as_ref(),
            )
        });

        let finished = runs.iter().all(|r| matches!(r, RankRun::Finished(_)));
        outcomes.push(
            runs.iter()
                .map(|r| match r {
                    RankRun::Finished(_) => RankOutcome::Finished,
                    RankRun::Killed { step } => RankOutcome::Killed { step: *step },
                    RankRun::Aborted { step, reason } => {
                        RankOutcome::Aborted { step: *step, reason: reason.clone() }
                    }
                })
                .collect(),
        );
        reg.event(
            "recover_attempt",
            &[
                ("attempt", attempt as f64),
                ("restored_step", start_step as f64),
                ("finished", if finished { 1.0 } else { 0.0 }),
            ],
        );
        if finished {
            reg.set("recover/attempts", (attempt + 1) as u64);
            reg.set("recover/recoveries", recoveries as u64);
            reg.set("recover/restored_step", restored_step);
            // `finished` established every run is Finished; filter_map keeps
            // this arm panic-free regardless.
            let states = runs
                .into_iter()
                .filter_map(|r| match r {
                    RankRun::Finished(s) => Some((
                        crate::layout::to_interleaved3(&s.u_prev),
                        crate::layout::to_interleaved3(&s.u_now),
                    )),
                    _ => None,
                })
                .collect();
            return Ok(RecoveredRun {
                states,
                elements: setup.per_rank,
                attempts: attempt + 1,
                recoveries,
                restored_step,
                outcomes,
                finished: true,
            });
        }
    }
    reg.set("recover/attempts", rcfg.max_attempts as u64);
    reg.set("recover/recoveries", (rcfg.max_attempts - 1) as u64);
    Ok(RecoveredRun {
        states: Vec::new(),
        elements: setup.per_rank,
        attempts: rcfg.max_attempts,
        recoveries: rcfg.max_attempts - 1,
        restored_step,
        outcomes,
        finished: false,
    })
}

/// One rank of one recovery attempt: the canonical harness loop with a
/// [`FaultHook`] (scripted kills/drops/delays), a [`CheckpointHook`] over
/// this rank's [`PeriodicSink`], and the step-tagged exchange. No barriers —
/// see [`run_distributed_recoverable`] for the liveness argument. A rank
/// that dropped an exchange holds silently wrong fields from that step on;
/// the harness taints the run and the checkpoint hook stops persisting
/// (peers abort on the tag skew and the supervisor restores everyone from
/// the pre-fault line).
#[allow(clippy::too_many_arguments)]
fn run_rank_recoverable(
    solver: &ElasticSolver<'_>,
    setup: &DistSetup,
    comm: &Communicator,
    mut state: SolverState,
    n_steps: u64,
    writer: &CheckpointWriter,
    policy: &CheckpointPolicy,
    faults: &FaultPlan,
    dump: Option<(&std::path::Path, usize)>,
    health: Option<&HealthConfig>,
) -> RankRun {
    // Flight-recorder capacity of the post-mortem path: enough for the tail
    // of a run's phase slices without measurable steady-state cost.
    const DUMP_TRACE_EVENTS: usize = 4096;
    let rank = comm.rank();
    let mut ws = if dump.is_some() {
        let reg = Registry::with_epoch(rank, Instant::now());
        reg.enable_trace(DUMP_TRACE_EVENTS);
        solver.workspace_with(reg)
    } else {
        solver.workspace()
    };
    let mut exchange = TaggedExchange {
        comm,
        neighbors: setup.neighbors(rank, solver.mesh.n_nodes()),
        spans: None,
    };
    let mut fault_hook = FaultHook::new(faults.rank_view(rank));
    let mut sink = PeriodicSink::new(writer, policy);
    let mut ckpt_hook = CheckpointHook::new(&mut sink);
    let mut health_hook = health.map(|hc| {
        let mut hc = hc.clone();
        // Per-rank violation dump beside the generic post-mortems.
        hc.dump_path = dump
            .map(|(dir, attempt)| dir.join(format!("rank{rank}.attempt{attempt}.health.ndjson")));
        HealthHook::new(solver, hc)
    });
    let run_cfg = RunConfig::to_step(n_steps).with_scope(&setup.scopes[rank]);
    // HealthHook precedes CheckpointHook: after_step processing stops at the
    // first erroring hook, so a state that fails the health check is never
    // offered to the checkpoint sink.
    let outcome = match health_hook.as_mut() {
        Some(h) => SolverHarness::new(solver).run(
            &run_cfg,
            &mut state,
            &mut ws,
            &mut exchange,
            &mut [&mut fault_hook, h, &mut ckpt_hook],
        ),
        None => SolverHarness::new(solver).run(
            &run_cfg,
            &mut state,
            &mut ws,
            &mut exchange,
            &mut [&mut fault_hook, &mut ckpt_hook],
        ),
    };
    let run = match outcome {
        RunOutcome::Finished { .. } => RankRun::Finished(state),
        RunOutcome::Stopped { step, reason: StopReason::Killed } => RankRun::Killed { step },
        RunOutcome::Stopped { step, reason: StopReason::Comm(e) } => {
            RankRun::Aborted { step, reason: e }
        }
        RunOutcome::Stopped { step, reason: StopReason::Ckpt(e) } => {
            RankRun::Aborted { step, reason: format!("checkpoint write: {e}") }
        }
        RunOutcome::Stopped { step, reason: StopReason::Health(e) } => {
            RankRun::Aborted { step, reason: format!("health watchdog: {e}") }
        }
    };
    if let Some((dir, attempt)) = dump {
        let (step, reason) = match &run {
            RankRun::Finished(_) => (n_steps, String::new()),
            RankRun::Killed { step } => (*step, "killed by fault plan".to_string()),
            RankRun::Aborted { step, reason } => (*step, reason.clone()),
        };
        if !reason.is_empty() {
            let path = dir.join(format!("rank{rank}.attempt{attempt}.postmortem.ndjson"));
            // Best effort: a failed dump must not mask the rank outcome.
            let _ = dump_post_mortem(&path, &ws.reg, &reason, step, DUMP_TRACE_EVENTS);
        }
    }
    run
}

/// The consistent restore line: the highest step at which **every** rank's
/// checkpoint file fully decodes (magic, version, kind, CRC). Per-rank
/// corruption just lowers the line for everyone — ranks whose newer files
/// are intact reload the older consistent step instead.
fn restore_line(
    dir: &std::path::Path,
    n_ranks: usize,
    reg: &Registry,
) -> Option<(u64, Vec<SolverState>)> {
    let readers: Vec<CheckpointReader> =
        (0..n_ranks).map(|r| CheckpointReader::new(dir, &format!("rank{r}"))).collect();
    let mut candidates = readers[0].steps();
    candidates.reverse(); // descending: newest line first
    for step in candidates {
        let span = reg.span("ckpt_restore");
        let loaded: Result<Vec<SolverState>, CkptError> =
            readers.iter().map(|r| r.load::<SolverState>(step).map(|(_, s)| s)).collect();
        drop(span);
        match loaded {
            Ok(states) => return Some((step, states)),
            Err(_) => reg.add("ckpt/skipped_invalid", 1),
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elastic::ElasticConfig;
    use quake_mesh::hexmesh::ElemMaterial;
    use quake_octree::{BalanceMode, LinearOctree, MAX_LEVEL};

    fn pulse(mesh: &HexMesh) -> (Vec<f64>, Vec<f64>) {
        let n = mesh.n_nodes();
        let mut u = vec![0.0; 3 * n];
        let v = vec![0.0; 3 * n];
        for (i, c) in mesh.coords.iter().enumerate() {
            let r2 = (c[0] - 4.0).powi(2) + (c[1] - 4.0).powi(2) + (c[2] - 4.0).powi(2);
            u[3 * i + 1] = (-r2 / 2.0).exp();
        }
        let mut uu = u;
        mesh.interpolate_hanging(&mut uu, 3);
        (uu, v)
    }

    #[test]
    fn distributed_matches_serial_exactly() {
        // Multiresolution mesh (constraints cross partition boundaries), ABC
        // on, several rank counts: the distributed run must agree with the
        // serial solver to rounding.
        let half = 1u32 << (MAX_LEVEL - 1);
        let mut tree = LinearOctree::build(|o| o.level < 2 || (o.level < 3 && o.x < half));
        tree.balance(BalanceMode::Full);
        let mesh = HexMesh::from_octree(&tree, 8.0, |_, _, _, _| ElemMaterial {
            lambda: 2.0,
            mu: 1.0,
            rho: 1.0,
        });
        assert!(mesh.n_hanging() > 0);
        let mut cfg = ElasticConfig::new(1.0);
        cfg.dt = Some(0.05);
        let solver = ElasticSolver::new(&mesh, &cfg);
        let (u0, v0) = pulse(&mesh);
        let steps = 12;
        let (sp, sn) =
            crate::harness::SolverHarness::new(&solver).run_to_state(Some((&u0, &v0)), steps);
        for ranks in [1usize, 2, 4] {
            let run =
                run_distributed(&solver, &DistConfig::new(ranks, steps).with_initial(&u0, &v0));
            for (rank, (dp, dn)) in run.states.iter().enumerate() {
                // Compare on the nodes this rank's elements touch.
                let mut touched = vec![false; mesh.n_nodes()];
                for &ei in &run.elements[rank] {
                    for &nd in &mesh.elements[ei as usize].nodes {
                        touched[nd as usize] = true;
                    }
                }
                let mut err = 0.0f64;
                for nd in 0..mesh.n_nodes() {
                    if !touched[nd] {
                        continue;
                    }
                    for c in 0..3 {
                        err = err.max((sn[3 * nd + c] - dn[3 * nd + c]).abs());
                        err = err.max((sp[3 * nd + c] - dp[3 * nd + c]).abs());
                    }
                }
                assert!(err < 1e-12, "ranks {ranks}, rank {rank}: err {err}");
            }
            if ranks > 1 {
                assert!(run.volumes.iter().any(|&v| v > 0), "no exchange at P={ranks}");
            }
            // Uninstrumented runs carry no telemetry.
            assert!(run.snapshots.is_empty() && run.reduced.is_empty());
        }
    }

    #[test]
    fn instrumented_run_reduces_phase_metrics_across_ranks() {
        let half = 1u32 << (MAX_LEVEL - 1);
        let mut tree = LinearOctree::build(|o| o.level < 2 || (o.level < 3 && o.x < half));
        tree.balance(BalanceMode::Full);
        let mesh = HexMesh::from_octree(&tree, 8.0, |_, _, _, _| ElemMaterial {
            lambda: 2.0,
            mu: 1.0,
            rho: 1.0,
        });
        let mut cfg = ElasticConfig::new(1.0);
        cfg.dt = Some(0.05);
        let solver = ElasticSolver::new(&mesh, &cfg);
        let (u0, v0) = pulse(&mesh);
        let (ranks, steps) = (4usize, 6usize);
        let run = run_distributed(
            &solver,
            &DistConfig::new(ranks, steps).with_initial(&u0, &v0).with_telemetry(),
        );

        assert_eq!(run.snapshots.len(), ranks);
        // Every rank stepped every phase `steps` times.
        for (rank, snap) in run.snapshots.iter().enumerate() {
            for ph in ["step", "step/fill", "step/elements", "step/exchange", "step/tail"] {
                let count = snap.get(&format!("span.{ph}.count"));
                assert_eq!(count, Some(steps as f64), "rank {rank} phase {ph}");
            }
        }
        // The reduction is present, covers the step span, and is coherent.
        let by = |n: &str| {
            run.reduced.iter().find(|r| r.name == n).unwrap_or_else(|| {
                panic!("missing reduced metric {n}");
            })
        };
        let secs = by("span.step.secs");
        assert!(secs.min > 0.0 && secs.min <= secs.mean && secs.mean <= secs.max);
        // Exchange traffic: some rank moves bytes, and the analytic counter
        // matches the plan's volume (2 directions x 3 comps x 8 bytes).
        let xbytes = by("ctr.step/exchange/bytes");
        let max_vol = run.volumes.iter().copied().max().unwrap() as f64;
        assert_eq!(xbytes.max, max_vol * 2.0 * 3.0 * 8.0 * steps as f64);
        // Per-color spans stay rank-local (excluded from the collective).
        assert!(run.reduced.iter().all(|r| !r.name.contains("color")));
    }

    #[test]
    fn traced_run_splits_exchange_and_merges_rank_timelines() {
        let half = 1u32 << (MAX_LEVEL - 1);
        let mut tree = LinearOctree::build(|o| o.level < 2 || (o.level < 3 && o.x < half));
        tree.balance(BalanceMode::Full);
        let mesh = HexMesh::from_octree(&tree, 8.0, |_, _, _, _| ElemMaterial {
            lambda: 2.0,
            mu: 1.0,
            rho: 1.0,
        });
        let mut cfg = ElasticConfig::new(1.0);
        cfg.dt = Some(0.05);
        let solver = ElasticSolver::new(&mesh, &cfg);
        let (u0, v0) = pulse(&mesh);
        let (ranks, steps) = (4usize, 6usize);
        let run = run_distributed(
            &solver,
            &DistConfig::new(ranks, steps).with_initial(&u0, &v0).with_trace(4096),
        );

        // One flight recorder per rank, none wrapped at this size.
        assert_eq!(run.traces.len(), ranks);
        for (rank, buf) in run.traces.iter().enumerate() {
            assert_eq!(buf.rank, rank);
            assert_eq!(buf.dropped, 0);
            let count = |n: &str| buf.events.iter().filter(|e| e.name == n).count();
            assert_eq!(count("step"), steps, "rank {rank}");
            // The timed exchange recorded its split every step...
            assert_eq!(count("step/exchange/wait"), steps, "rank {rank}");
            assert_eq!(count("step/exchange/copy"), steps, "rank {rank}");
            // ...and the sub-slices nest inside their step's exchange slice.
            for name in ["step/exchange/wait", "step/exchange/copy"] {
                for sub in buf.events.iter().filter(|e| e.name == name) {
                    assert!(
                        buf.events.iter().any(|x| x.name == "step/exchange"
                            && x.t0_ns <= sub.t0_ns
                            && sub.t0_ns + sub.dur_ns <= x.t0_ns + x.dur_ns),
                        "rank {rank}: {name} slice outside every exchange slice"
                    );
                }
            }
            // The imbalance hook dropped one mark per step.
            assert_eq!(
                buf.events
                    .iter()
                    .filter(|e| e.name == "imbalance" && e.kind == quake_telemetry::TraceKind::Mark)
                    .count(),
                steps,
                "rank {rank}"
            );
        }
        // The split feeds the aggregate stats too, nested under exchange.
        for snap in &run.snapshots {
            for ph in ["step/exchange/wait", "step/exchange/copy"] {
                assert_eq!(snap.get(&format!("span.{ph}.count")), Some(steps as f64));
            }
        }
        // The imbalance gauge reduces coherently (identical on all ranks).
        let imb = run.reduced.iter().find(|r| r.name == "gauge.imbalance").unwrap();
        assert!(imb.min >= 1.0 && (imb.max - imb.min).abs() < 1e-12, "{imb:?}");

        // The merged Chrome trace carries one track per rank.
        let json = quake_telemetry::json::chrome_trace(&run.traces);
        for rank in 0..ranks {
            assert!(json.contains(&format!("\"rank {rank}\"")), "missing track for rank {rank}");
        }
        assert!(json.contains("\"step/exchange/wait\""));
        assert!(json.contains("\"step/exchange/copy\""));
    }

    fn recovery_setup() -> (HexMesh, ElasticConfig) {
        let half = 1u32 << (MAX_LEVEL - 1);
        let mut tree = LinearOctree::build(|o| o.level < 2 || (o.level < 3 && o.x < half));
        tree.balance(BalanceMode::Full);
        let mesh = HexMesh::from_octree(&tree, 8.0, |_, _, _, _| ElemMaterial {
            lambda: 2.0,
            mu: 1.0,
            rho: 1.0,
        });
        let mut cfg = ElasticConfig::new(1.0);
        cfg.dt = Some(0.05);
        (mesh, cfg)
    }

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("quake-dist-recover-tests")
            .join(format!("{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Max |difference| between a recovered run and the plain distributed
    /// run on each rank's touched nodes; must be exactly 0.0 (bitwise).
    fn assert_matches_unfaulted(mesh: &HexMesh, run: &RecoveredRun, reference: &DistributedRun) {
        for (rank, (dp, dn)) in run.states.iter().enumerate() {
            let (rp, rn) = &reference.states[rank];
            let mut touched = vec![false; mesh.n_nodes()];
            for &ei in &run.elements[rank] {
                for &nd in &mesh.elements[ei as usize].nodes {
                    touched[nd as usize] = true;
                }
            }
            for nd in 0..mesh.n_nodes() {
                if !touched[nd] {
                    continue;
                }
                for c in 0..3 {
                    assert_eq!(
                        dn[3 * nd + c].to_bits(),
                        rn[3 * nd + c].to_bits(),
                        "rank {rank} node {nd} comp {c} (u_now)"
                    );
                    assert_eq!(
                        dp[3 * nd + c].to_bits(),
                        rp[3 * nd + c].to_bits(),
                        "rank {rank} node {nd} comp {c} (u_prev)"
                    );
                }
            }
        }
    }

    #[test]
    fn kill_and_resume_is_bit_identical_to_unfaulted_run() {
        let (mesh, cfg) = recovery_setup();
        let solver = ElasticSolver::new(&mesh, &cfg);
        let (u0, v0) = pulse(&mesh);
        let (ranks, steps) = (4usize, 12usize);
        let reference =
            run_distributed(&solver, &DistConfig::new(ranks, steps).with_initial(&u0, &v0));

        let dir = tmpdir("kill-resume");
        let cfg_r = RecoveryConfig::new(dir.clone(), 4, 3);
        // Kill rank 2 just before step 7 (mid-run, after the step-8 line is
        // NOT yet written: last full line is step 4).
        let faults = FaultPlan::kill(2, 7);
        let reg = Registry::new(0);
        let run = run_distributed_recoverable(
            &solver,
            &DistConfig::new(ranks, steps).with_initial(&u0, &v0),
            &cfg_r.clone().with_faults(faults.clone()),
            &reg,
        )
        .unwrap();
        assert!(run.finished, "outcomes: {:?}", run.outcomes);
        assert_eq!(run.attempts, 2, "recovery within one retry");
        assert_eq!(run.recoveries, 1);
        assert_eq!(run.restored_step, 4, "restored from the last full line");
        // Attempt 0: rank 2 killed at step 7; every survivor aborted (dead
        // peer or cascade), none hung.
        assert_eq!(run.outcomes[0][2], RankOutcome::Killed { step: 7 });
        for r in [0usize, 1, 3] {
            assert!(
                matches!(run.outcomes[0][r], RankOutcome::Aborted { .. }),
                "rank {r}: {:?}",
                run.outcomes[0][r]
            );
        }
        assert!(run.outcomes[1].iter().all(|o| *o == RankOutcome::Finished));
        assert_eq!(reg.counter("recover/recoveries"), Some(1));
        assert_matches_unfaulted(&mesh, &run, &reference);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn nan_corruption_is_caught_dumped_and_recovered_bit_identically() {
        let (mesh, cfg) = recovery_setup();
        let solver = ElasticSolver::new(&mesh, &cfg);
        let (u0, v0) = pulse(&mesh);
        let (ranks, steps) = (4usize, 16usize);
        let reference =
            run_distributed(&solver, &DistConfig::new(ranks, steps).with_initial(&u0, &v0));

        let dir = tmpdir("nan-watchdog");
        let dumps = dir.join("dumps");
        // Checkpoint cadence 4, watchdog cadence 4 (health precedes ckpt in
        // the hook list, so no persisted line can hold the corruption).
        // Rank 1 silently NaNs one velocity entry before executing step 8:
        // the step-8 line (written after step 7) is clean, detection comes
        // at the next cadence boundary (post-step index 12, while executing
        // step 11) — within one cadence window of the corruption.
        let cfg_r = RecoveryConfig::new(dir.clone(), 4, 3)
            .with_faults(FaultPlan::none().and(quake_parcomm::Fault::CorruptState {
                rank: 1,
                step: 8,
                index: 10,
            }))
            .with_dump_dir(dumps.clone())
            .with_health(crate::health::HealthConfig::every(4));
        let reg = Registry::new(0);
        let run = run_distributed_recoverable(
            &solver,
            &DistConfig::new(ranks, steps).with_initial(&u0, &v0),
            &cfg_r,
            &reg,
        )
        .unwrap();
        assert!(run.finished, "outcomes: {:?}", run.outcomes);
        assert_eq!(run.attempts, 2, "one watchdog abort, one clean retry");
        assert_eq!(run.recoveries, 1);
        assert_eq!(run.restored_step, 8, "restored from the last pre-corruption line");
        // Attempt 0: rank 1 aborted by the watchdog within one cadence
        // window; every other rank also stopped (NaN contamination caught by
        // its own watchdog, or a dead-peer comm error), none hung.
        match &run.outcomes[0][1] {
            RankOutcome::Aborted { step, reason } => {
                assert!(reason.contains("health watchdog"), "{reason}");
                assert!(reason.contains("non-finite"), "{reason}");
                assert_eq!(*step, 11, "caught at the first cadence boundary after step 8");
            }
            o => panic!("rank 1: {o:?}"),
        }
        for r in [0usize, 2, 3] {
            assert!(
                matches!(run.outcomes[0][r], RankOutcome::Aborted { .. }),
                "rank {r}: {:?}",
                run.outcomes[0][r]
            );
        }
        assert!(run.outcomes[1].iter().all(|o| *o == RankOutcome::Finished));

        // The watchdog's violation dump: diagnostic header + flight-recorder
        // tail with the recent step slices.
        let health_dump =
            std::fs::read_to_string(dumps.join("rank1.attempt0.health.ndjson")).unwrap();
        let lines: Vec<&str> = health_dump.lines().collect();
        assert!(lines[0].contains("\"type\":\"health_violation\""));
        assert!(lines[0].contains("\"step\":12"));
        assert!(lines[0].contains("\"last_valid_ckpt\":8"));
        assert!(lines[0].contains("\"bad_dofs\":[["));
        assert!(lines.len() > 1, "flight-recorder tail expected");
        assert!(lines[1..].iter().filter(|l| l.contains("\"name\":\"step\"")).count() >= 4);
        // The generic post-mortem of the failed rank exists too.
        assert!(dumps.join("rank1.attempt0.postmortem.ndjson").exists());

        // Resume from the last valid line is bit-identical to an unfaulted
        // run: no persisted checkpoint ever held the corruption.
        assert_matches_unfaulted(&mesh, &run, &reference);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_newest_checkpoint_lowers_the_restore_line() {
        let (mesh, cfg) = recovery_setup();
        let solver = ElasticSolver::new(&mesh, &cfg);
        let (u0, v0) = pulse(&mesh);
        let (ranks, steps) = (2usize, 12usize);
        let reference =
            run_distributed(&solver, &DistConfig::new(ranks, steps).with_initial(&u0, &v0));

        let dir = tmpdir("corrupt-fallback");
        let cfg_r = RecoveryConfig::new(dir.clone(), 3, 3);
        let faults = FaultPlan::kill(1, 8);
        // First: let attempt 0 run and fail, producing checkpoints at steps
        // 3 and 6. Corrupt rank 0's step-6 file before the retry by running
        // the supervisor with max_attempts = 1 (so it stops after the fault),
        // flipping a byte, then resuming with a fresh supervisor call.
        let reg = Registry::disabled();
        let first = run_distributed_recoverable(
            &solver,
            &DistConfig::new(ranks, steps).with_initial(&u0, &v0),
            &RecoveryConfig { max_attempts: 1, ..cfg_r.clone() }.with_faults(faults.clone()),
            &reg,
        )
        .unwrap();
        assert!(!first.finished);
        let victim = dir.join("rank0.0000000006.qckpt");
        let mut bytes = std::fs::read(&victim).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&victim, &bytes).unwrap();

        // The resumed supervisor (no faults this time) must skip the
        // corrupted step-6 line and restore everyone from step 3.
        let run = run_distributed_recoverable(
            &solver,
            &DistConfig::new(ranks, steps).with_initial(&u0, &v0),
            &cfg_r,
            &reg,
        )
        .unwrap();
        assert!(run.finished);
        assert_eq!(run.restored_step, 3, "corrupt step-6 file must lower the line");
        assert_matches_unfaulted(&mesh, &run, &reference);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn delayed_exchange_does_not_change_results_or_need_recovery() {
        let (mesh, cfg) = recovery_setup();
        let solver = ElasticSolver::new(&mesh, &cfg);
        let (u0, v0) = pulse(&mesh);
        let (ranks, steps) = (4usize, 8usize);
        let reference =
            run_distributed(&solver, &DistConfig::new(ranks, steps).with_initial(&u0, &v0));

        let dir = tmpdir("delay");
        let cfg_r = RecoveryConfig::new(dir.clone(), 4, 2);
        let faults = FaultPlan::none().and(quake_parcomm::Fault::DelayExchange {
            rank: 1,
            step: 3,
            millis: 20,
        });
        let reg = Registry::disabled();
        let run = run_distributed_recoverable(
            &solver,
            &DistConfig::new(ranks, steps).with_initial(&u0, &v0),
            &cfg_r.clone().with_faults(faults.clone()),
            &reg,
        )
        .unwrap();
        assert!(run.finished);
        assert_eq!(run.attempts, 1, "a slow rank is not a failure");
        assert_eq!(run.recoveries, 0);
        assert_matches_unfaulted(&mesh, &run, &reference);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dropped_exchange_is_detected_and_recovered() {
        let (mesh, cfg) = recovery_setup();
        let solver = ElasticSolver::new(&mesh, &cfg);
        let (u0, v0) = pulse(&mesh);
        let (ranks, steps) = (4usize, 10usize);
        let reference =
            run_distributed(&solver, &DistConfig::new(ranks, steps).with_initial(&u0, &v0));

        let dir = tmpdir("drop");
        let cfg_r = RecoveryConfig::new(dir.clone(), 5, 3);
        let faults = FaultPlan::none().and(quake_parcomm::Fault::DropExchange { rank: 0, step: 6 });
        let reg = Registry::disabled();
        let run = run_distributed_recoverable(
            &solver,
            &DistConfig::new(ranks, steps).with_initial(&u0, &v0),
            &cfg_r.clone().with_faults(faults.clone()),
            &reg,
        )
        .unwrap();
        assert!(run.finished, "outcomes: {:?}", run.outcomes);
        assert_eq!(run.attempts, 2, "tag skew must be detected, then recovered");
        // Rank 0 is tainted from step 6 and must not have persisted any
        // checkpoint past the pre-fault line.
        assert_eq!(run.restored_step, 5);
        assert!(run.outcomes[0].iter().any(|o| matches!(o, RankOutcome::Aborted { .. })));
        assert_matches_unfaulted(&mesh, &run, &reference);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
