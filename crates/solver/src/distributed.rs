//! Rank-parallel elastic solver (owner-computes + interface sum-exchange).
//!
//! Each rank assembles the stiffness/force terms of its own elements, the
//! partially assembled interface values are sum-exchanged once per step via
//! `quake-parcomm`, and the (replicated) diagonal solve and constraint
//! projection are local. The result is bit-identical to the serial solver —
//! the property the scalability experiments of Table 2.1 rest on. Timing of
//! machines larger than this host is the job of `quake-machine`.

use crate::elastic::ElasticSolver;
use quake_mesh::{partition_morton, ExchangePlan, HexMesh};
use quake_parcomm::{run_spmd, Communicator};
use quake_telemetry::{reduce_across_ranks, Reduced, Snapshot};

/// Per-rank outcome of a distributed run. A rank's state vectors are valid
/// (identical to the serial solver) exactly on the nodes its own elements
/// touch — values elsewhere are never communicated, exactly as in a real
/// distributed-memory code where they would not even be allocated.
pub struct DistributedRun {
    /// `(u_prev, u_now)` per rank.
    pub states: Vec<(Vec<f64>, Vec<f64>)>,
    /// Elements owned by each rank.
    pub elements: Vec<Vec<u32>>,
    /// Interface exchange volume (node values per step) per rank.
    pub volumes: Vec<usize>,
    /// Per-rank telemetry snapshots (empty unless telemetry was requested).
    pub snapshots: Vec<Snapshot>,
    /// Min/max/mean across ranks of every common metric — the per-phase load
    /// imbalance view of the paper's scaling tables. Empty unless telemetry
    /// was requested.
    pub reduced: Vec<Reduced>,
}

/// Run `n_steps` of the elastic solver on `n_ranks` SPMD ranks with a Morton
/// element partition.
pub fn run_distributed(
    solver: &ElasticSolver<'_>,
    n_ranks: usize,
    initial: Option<(&[f64], &[f64])>,
    n_steps: usize,
) -> DistributedRun {
    run_distributed_instrumented(solver, n_ranks, initial, n_steps, false)
}

/// [`run_distributed`] with optional per-rank telemetry: each rank steps with
/// an instrumented registry, records its analytic phase costs (including the
/// true interface exchange volume), and the run ends with a collective
/// min/max/mean reduction over the phase metrics all ranks share.
pub fn run_distributed_instrumented(
    solver: &ElasticSolver<'_>,
    n_ranks: usize,
    initial: Option<(&[f64], &[f64])>,
    n_steps: usize,
    telemetry: bool,
) -> DistributedRun {
    let mesh: &HexMesh = solver.mesh;
    let parts = partition_morton(mesh.n_elements(), n_ranks);
    let plan = ExchangePlan::build(mesh, &parts, n_ranks);
    let volumes: Vec<usize> = (0..n_ranks).map(|p| plan.exchange_volume(p)).collect();

    let mut per_rank: Vec<Vec<u32>> = vec![Vec::new(); n_ranks];
    for (e, &p) in parts.iter().enumerate() {
        per_rank[p as usize].push(e as u32);
    }

    // Node ownership: the lowest-numbered rank whose elements touch a node
    // contributes its diagonal damping term.
    let mut owner = vec![u32::MAX; mesh.n_nodes()];
    for (e, &p) in parts.iter().enumerate() {
        for &nd in &mesh.elements[e].nodes {
            if p < owner[nd as usize] {
                owner[nd as usize] = p;
            }
        }
    }
    // Per-rank step schedules (element coloring + boundary faces + owned
    // mask), built ONCE — the per-step face filtering the old code did is
    // gone.
    let scopes: Vec<_> = (0..n_ranks)
        .map(|r| solver.scope(&per_rank[r], Some(owner.iter().map(|&o| o == r as u32).collect())))
        .collect();

    let results = run_spmd(n_ranks, |comm: &Communicator| {
        let rank = comm.rank();
        let scope = &scopes[rank];
        let neighbors: Vec<(usize, Vec<u32>)> =
            plan.plans[rank].iter().map(|(q, nodes)| (*q as usize, nodes.clone())).collect();
        let ndof = 3 * mesh.n_nodes();
        let mut u_prev = vec![0.0; ndof];
        let mut u_now = vec![0.0; ndof];
        let mut u_next = vec![0.0; ndof];
        let f = vec![0.0; ndof];
        let mut ws =
            if telemetry { solver.workspace_instrumented(rank) } else { solver.workspace() };
        if let Some((u0, v0)) = initial {
            u_now.copy_from_slice(u0);
            for d in 0..ndof {
                u_prev[d] = u0[d] - solver.dt * v0[d];
            }
        }
        for _ in 0..n_steps {
            solver.step_scoped(scope, &u_prev, &u_now, &f, &mut u_next, &mut ws, |rhs| {
                comm.exchange_sum(&neighbors, rhs, 3);
            });
            std::mem::swap(&mut u_prev, &mut u_now);
            std::mem::swap(&mut u_now, &mut u_next);
        }

        // Attach this rank's analytic phase costs (with its true interface
        // traffic: 3 doubles per shared node, each sent AND received) and
        // reduce the common metrics across ranks. The per-color element
        // spans are rank-local names (color counts differ per partition), so
        // they stay in the snapshot but are excluded from the collective.
        let (snapshot, reduced) = if telemetry {
            let mut shape = solver.phase_shape(scope);
            shape.exchange_doubles = 2 * 3 * volumes[rank] as u64;
            solver.record_step_costs_shaped(&shape, n_steps as u64, &ws.reg);
            let snap = ws.reg.snapshot();
            let mut common = snap.clone();
            common.retain(|name| !name.starts_with("span.step/elements/color"));
            let reduced = reduce_across_ranks(comm, &common);
            (snap, reduced)
        } else {
            (Snapshot::default(), Vec::new())
        };
        (u_prev, u_now, snapshot, reduced)
    });

    let mut states = Vec::with_capacity(n_ranks);
    let mut snapshots = Vec::with_capacity(n_ranks);
    let mut reduced = Vec::new();
    for (up, un, snap, red) in results {
        states.push((up, un));
        snapshots.push(snap);
        if reduced.is_empty() {
            reduced = red; // identical on every rank — keep rank 0's copy
        }
    }
    if !telemetry {
        snapshots.clear();
    }

    DistributedRun { states, elements: per_rank, volumes, snapshots, reduced }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elastic::ElasticConfig;
    use quake_mesh::hexmesh::ElemMaterial;
    use quake_octree::{BalanceMode, LinearOctree, MAX_LEVEL};

    fn pulse(mesh: &HexMesh) -> (Vec<f64>, Vec<f64>) {
        let n = mesh.n_nodes();
        let mut u = vec![0.0; 3 * n];
        let v = vec![0.0; 3 * n];
        for (i, c) in mesh.coords.iter().enumerate() {
            let r2 = (c[0] - 4.0).powi(2) + (c[1] - 4.0).powi(2) + (c[2] - 4.0).powi(2);
            u[3 * i + 1] = (-r2 / 2.0).exp();
        }
        let mut uu = u;
        mesh.interpolate_hanging(&mut uu, 3);
        (uu, v)
    }

    #[test]
    fn distributed_matches_serial_exactly() {
        // Multiresolution mesh (constraints cross partition boundaries), ABC
        // on, several rank counts: the distributed run must agree with the
        // serial solver to rounding.
        let half = 1u32 << (MAX_LEVEL - 1);
        let mut tree = LinearOctree::build(|o| o.level < 2 || (o.level < 3 && o.x < half));
        tree.balance(BalanceMode::Full);
        let mesh = HexMesh::from_octree(&tree, 8.0, |_, _, _, _| ElemMaterial {
            lambda: 2.0,
            mu: 1.0,
            rho: 1.0,
        });
        assert!(mesh.n_hanging() > 0);
        let mut cfg = ElasticConfig::new(1.0);
        cfg.dt = Some(0.05);
        let solver = ElasticSolver::new(&mesh, &cfg);
        let (u0, v0) = pulse(&mesh);
        let steps = 12;
        let (sp, sn) = solver.run_to_state(Some((&u0, &v0)), steps);
        for ranks in [1usize, 2, 4] {
            let run = run_distributed(&solver, ranks, Some((&u0, &v0)), steps);
            for (rank, (dp, dn)) in run.states.iter().enumerate() {
                // Compare on the nodes this rank's elements touch.
                let mut touched = vec![false; mesh.n_nodes()];
                for &ei in &run.elements[rank] {
                    for &nd in &mesh.elements[ei as usize].nodes {
                        touched[nd as usize] = true;
                    }
                }
                let mut err = 0.0f64;
                for nd in 0..mesh.n_nodes() {
                    if !touched[nd] {
                        continue;
                    }
                    for c in 0..3 {
                        err = err.max((sn[3 * nd + c] - dn[3 * nd + c]).abs());
                        err = err.max((sp[3 * nd + c] - dp[3 * nd + c]).abs());
                    }
                }
                assert!(err < 1e-12, "ranks {ranks}, rank {rank}: err {err}");
            }
            if ranks > 1 {
                assert!(run.volumes.iter().any(|&v| v > 0), "no exchange at P={ranks}");
            }
            // Uninstrumented runs carry no telemetry.
            assert!(run.snapshots.is_empty() && run.reduced.is_empty());
        }
    }

    #[test]
    fn instrumented_run_reduces_phase_metrics_across_ranks() {
        let half = 1u32 << (MAX_LEVEL - 1);
        let mut tree = LinearOctree::build(|o| o.level < 2 || (o.level < 3 && o.x < half));
        tree.balance(BalanceMode::Full);
        let mesh = HexMesh::from_octree(&tree, 8.0, |_, _, _, _| ElemMaterial {
            lambda: 2.0,
            mu: 1.0,
            rho: 1.0,
        });
        let mut cfg = ElasticConfig::new(1.0);
        cfg.dt = Some(0.05);
        let solver = ElasticSolver::new(&mesh, &cfg);
        let (u0, v0) = pulse(&mesh);
        let (ranks, steps) = (4usize, 6usize);
        let run = run_distributed_instrumented(&solver, ranks, Some((&u0, &v0)), steps, true);

        assert_eq!(run.snapshots.len(), ranks);
        // Every rank stepped every phase `steps` times.
        for (rank, snap) in run.snapshots.iter().enumerate() {
            for ph in ["step", "step/fill", "step/elements", "step/exchange", "step/tail"] {
                let count = snap.get(&format!("span.{ph}.count"));
                assert_eq!(count, Some(steps as f64), "rank {rank} phase {ph}");
            }
        }
        // The reduction is present, covers the step span, and is coherent.
        let by = |n: &str| {
            run.reduced.iter().find(|r| r.name == n).unwrap_or_else(|| {
                panic!("missing reduced metric {n}");
            })
        };
        let secs = by("span.step.secs");
        assert!(secs.min > 0.0 && secs.min <= secs.mean && secs.mean <= secs.max);
        // Exchange traffic: some rank moves bytes, and the analytic counter
        // matches the plan's volume (2 directions x 3 comps x 8 bytes).
        let xbytes = by("ctr.step/exchange/bytes");
        let max_vol = run.volumes.iter().copied().max().unwrap() as f64;
        assert_eq!(xbytes.max, max_vol * 2.0 * 3.0 * 8.0 * steps as f64);
        // Per-color spans stay rank-local (excluded from the collective).
        assert!(run.reduced.iter().all(|r| !r.name.contains("color")));
    }
}
