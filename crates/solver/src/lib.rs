//! Explicit wave-propagation solvers on octree hexahedral meshes.
//!
//! The heart of the forward-modeling half of the paper (Section 2):
//!
//! - [`elastic`]: the production solver — Navier elastodynamics, trilinear
//!   hexes on a balanced octree, lumped-mass central differences with the
//!   diagonal/off-diagonal damping split of eq. (2.4), elementwise
//!   least-squares Rayleigh damping, Stacey absorbing boundaries and
//!   hanging-node projection (`B^T A B ubar = B^T b`). No per-element
//!   matrix is ever stored: the element matvec is `gather -> 24x24 dense ->
//!   scatter` against one precomputed stiffness *template* per distinct
//!   `(h, lambda, mu)` class — a handful of matrices on an octree mesh,
//! - [`sweep`]: the blocked element kernel behind [`elastic`]: per-class
//!   templates, cache-sized batches, color-parallel scatters,
//! - [`layout`]: the planar (structure-of-arrays) nodal layout the solver
//!   runs on internally, and conversions to the interleaved boundary layout,
//! - [`abc`]: the Stacey boundary terms shared by the solvers,
//! - [`sources`]: moment-tensor point sources assembled into nodal forces,
//!   plane-wave/Gaussian initial conditions,
//! - [`receivers`]: seismograms and zero-phase low-pass filtering (for the
//!   Fig 2.4-style waveform comparisons),
//! - [`tet`]: the linear-tetrahedral baseline solver (node-based CSR
//!   assembly — the "old" design the paper compares against),
//! - [`scalar3d`]: a structured-grid scalar (SH/acoustic) wave solver with
//!   the `march` API the inversion framework drives (Table 3.1's substrate),
//! - [`analytic`]: closed-form solutions used for verification (Fig 2.2):
//!   d'Alembert pulses and interface reflection/transmission coefficients,
//! - [`harness`]: the ONE canonical step loop ([`harness::SolverHarness`])
//!   every public `run_*` entry point delegates to, driven by a
//!   [`harness::RunConfig`] plus ordered [`harness::StepHook`]s (telemetry,
//!   checkpointing, receiver sampling, fault injection),
//! - [`health`]: the numerics watchdog hook — NaN/Inf scans and discrete
//!   energy-growth bounds on a step cadence, with an NDJSON post-mortem dump
//!   (diagnostic header + flight-recorder tail) on violation,
//! - [`distributed`]: the rank-parallel elastic solver over `quake-parcomm`
//!   (owner-computes + interface sum-exchange), bit-identical to the serial
//!   solver,
//! - [`reference`]: the frozen pre-optimization elastic step — the
//!   equivalence and `bench_step` baseline.
//!
//! The elastic hot path is organized around preallocated
//! [`elastic::StepScope`]/[`elastic::StepWorkspace`] state so the steady
//! state of a time loop performs no heap allocations; with the `parallel`
//! feature the element sweep runs threaded over a node-disjoint coloring
//! (bit-identical to serial).

pub mod abc;
pub mod analytic;
pub mod checkpoint;
pub mod distributed;
pub mod elastic;
pub mod harness;
pub mod health;
pub mod layout;
pub mod receivers;
pub mod reference;
pub mod scalar3d;
pub mod sources;
pub mod sweep;
pub mod tet;
pub mod wave;

pub use checkpoint::SolverState;
pub use distributed::{
    run_distributed, run_distributed_recoverable, DistConfig, RankOutcome, RecoveredRun,
    RecoveryConfig,
};
pub use elastic::{ElasticConfig, ElasticSolver, RunResult, StepScope, StepWorkspace};
pub use harness::{
    CheckpointHook, Exchange, ExchangeFlow, FaultHook, HookCtx, NoExchange, NoopHook, ReceiverHook,
    RunConfig, RunInfo, RunOutcome, RunScratch, SolverHarness, StepHook, StopReason, TelemetryHook,
};
pub use health::{HealthConfig, HealthHook, HealthReport};
pub use receivers::{lowpass_filtfilt, record_sample, record_sample_planar, Seismogram};
pub use scalar3d::{Scalar3dConfig, Scalar3dSolver};
pub use wave::ScalarWaveEq;

pub use sources::{assemble_point_sources, AssembledSource};
