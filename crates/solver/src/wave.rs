//! Generic scalar wave marching engine.
//!
//! The inversion half of the paper needs, besides the forward solve, the
//! *discrete adjoint* solve and stiffness-derivative products. Both the 2-D
//! antiplane solver (Section 3.2) and the 3-D scalar solver (Table 3.1)
//! share the same semidiscrete structure
//!
//! ```text
//! A u_{k+1} = B u_k + C u_{k-1} + dt^2 f_k ,   u_0 = u_{-1} = 0
//! A = M + (dt/2) C_ab     (diagonal)
//! B = 2M - dt^2 K(mu)     (symmetric)
//! C = -M + (dt/2) C_ab    (diagonal)
//! ```
//!
//! so the marching logic lives here once, generic over [`ScalarWaveEq`].
//! Because `A`, `B`, `C` are symmetric, the exact discrete adjoint is the
//! same recurrence run backward:
//!
//! ```text
//! A l_m = B l_{m+1} + C l_{m+2} - dt r_m ,   l_{n+1} = l_{n+2} = 0
//! ```
//!
//! with `r_m` the receiver residuals at step `m`. Gradients assembled from
//! these fields pass finite-difference checks to machine precision
//! (discretize-then-optimize), which is what lets CG on the reduced Hessian
//! behave as in Table 3.1.
//!
//! The absorbing-boundary damping is computed once from a *frozen background
//! modulus* and kept fixed during inversion (a deviation from eq. (3.4)'s
//! boundary term, recorded in DESIGN.md: it keeps the discrete gradient
//! exact while preserving the absorbing behaviour).

/// The spatially discretized scalar wave equation.
pub trait ScalarWaveEq: Sync {
    fn n_nodes(&self) -> usize;
    fn n_elements(&self) -> usize;
    fn n_steps(&self) -> usize;
    fn dt(&self) -> f64;
    /// Receiver node indices.
    fn receivers(&self) -> &[usize];
    /// Lumped nodal mass.
    fn mass(&self) -> &[f64];
    /// Frozen absorbing-boundary damping diagonal.
    fn abc_damping(&self) -> &[f64];
    /// `y += scale * K(mu) x`.
    fn apply_k(&self, mu: &[f64], x: &[f64], y: &mut [f64], scale: f64);
    /// `out[e] += u_e^T (dK/dmu_e) v_e` for every element.
    fn accumulate_dk(&self, u: &[f64], v: &[f64], out: &mut [f64]);
    /// `y += scale * (dK/dmu . dmu) x` (directional stiffness derivative).
    fn apply_dk(&self, dmu: &[f64], x: &[f64], y: &mut [f64], scale: f64);
}

/// Result of a forward or adjoint march.
pub struct WaveRun {
    /// `states[k] = u_k` for `k = 0..=n` (forward) or `lambda_k` with
    /// `states[0]` unused (adjoint). Empty unless requested.
    pub states: Vec<Vec<f64>>,
    /// `traces[r][k-1] = u_k[receiver r]` for `k = 1..=n` (forward only).
    pub traces: Vec<Vec<f64>>,
}

/// Forward march: `forcing(k, f)` must *add* the nodal force at time
/// `t_k = k dt` into `f`.
pub fn forward(
    eq: &dyn ScalarWaveEq,
    mu: &[f64],
    forcing: &mut dyn FnMut(usize, &mut [f64]),
    store_states: bool,
) -> WaveRun {
    let n = eq.n_nodes();
    let steps = eq.n_steps();
    let dt = eq.dt();
    let dt2 = dt * dt;
    let mass = eq.mass();
    let cab = eq.abc_damping();
    let lhs_inv: Vec<f64> = (0..n).map(|i| 1.0 / (mass[i] + 0.5 * dt * cab[i])).collect();

    let mut u_prev = vec![0.0; n];
    let mut u_now = vec![0.0; n];
    let mut u_next = vec![0.0; n];
    let mut f = vec![0.0; n];
    let mut states = Vec::new();
    if store_states {
        states.push(u_now.clone()); // u_0
    }
    let mut traces = vec![Vec::with_capacity(steps); eq.receivers().len()];

    for k in 0..steps {
        f.iter_mut().for_each(|v| *v = 0.0);
        forcing(k, &mut f);
        // rhs = B u_k + C u_{k-1} + dt^2 f_k
        for i in 0..n {
            u_next[i] =
                2.0 * mass[i] * u_now[i] + (-mass[i] + 0.5 * dt * cab[i]) * u_prev[i] + dt2 * f[i];
        }
        eq.apply_k(mu, &u_now, &mut u_next, -dt2);
        for i in 0..n {
            u_next[i] *= lhs_inv[i];
        }
        std::mem::swap(&mut u_prev, &mut u_now);
        std::mem::swap(&mut u_now, &mut u_next);
        // u_now is u_{k+1}.
        for (tr, &r) in traces.iter_mut().zip(eq.receivers()) {
            tr.push(u_now[r]);
        }
        if store_states {
            states.push(u_now.clone());
        }
    }
    WaveRun { states, traces }
}

/// Adjoint march driven by receiver residuals `residuals[r][m-1]` for
/// `m = 1..=n`. Returns `lambda_m` in `states[m]` (`states[0]` is zeros).
///
/// Derivation: with the Lagrangian
/// `L = J + sum_k l_{k+1}^T (A u_{k+1} - B u_k - C u_{k-1} - dt^2 f_k)` and
/// `J = (dt/2) sum_m sum_r (u_m[r] - d_m[r])^2`, stationarity in `u_m` gives
/// `A l_m = B l_{m+1} + C l_{m+2} - dt r_m`.
pub fn adjoint(eq: &dyn ScalarWaveEq, mu: &[f64], residuals: &[Vec<f64>]) -> WaveRun {
    let n = eq.n_nodes();
    let steps = eq.n_steps();
    let dt = eq.dt();
    let dt2 = dt * dt;
    assert_eq!(residuals.len(), eq.receivers().len());
    for r in residuals {
        assert_eq!(r.len(), steps);
    }
    let mass = eq.mass();
    let cab = eq.abc_damping();
    let lhs_inv: Vec<f64> = (0..n).map(|i| 1.0 / (mass[i] + 0.5 * dt * cab[i])).collect();

    let mut l_pp = vec![0.0; n]; // lambda_{m+2}
    let mut l_p = vec![0.0; n]; // lambda_{m+1}
    let mut l_m = vec![0.0; n];
    let mut states = vec![Vec::new(); steps + 1];
    states[0] = vec![0.0; n];
    for m in (1..=steps).rev() {
        for i in 0..n {
            l_m[i] = 2.0 * mass[i] * l_p[i] + (-mass[i] + 0.5 * dt * cab[i]) * l_pp[i];
        }
        eq.apply_k(mu, &l_p, &mut l_m, -dt2);
        for (res, &r) in residuals.iter().zip(eq.receivers()) {
            l_m[r] -= dt * res[m - 1];
        }
        for i in 0..n {
            l_m[i] *= lhs_inv[i];
        }
        states[m] = l_m.clone();
        std::mem::swap(&mut l_pp, &mut l_p);
        std::mem::swap(&mut l_p, &mut l_m);
    }
    WaveRun { states, traces: Vec::new() }
}

/// The data-misfit gradient w.r.t. the element moduli:
/// `g_e = dt^2 sum_{m=1..n} lambda_m^T (dK/dmu_e) u_{m-1}`.
pub fn material_gradient(
    eq: &dyn ScalarWaveEq,
    u_states: &[Vec<f64>],
    lambda_states: &[Vec<f64>],
) -> Vec<f64> {
    let steps = eq.n_steps();
    assert_eq!(u_states.len(), steps + 1);
    assert_eq!(lambda_states.len(), steps + 1);
    let dt2 = eq.dt() * eq.dt();
    let mut g = vec![0.0; eq.n_elements()];
    for m in 1..=steps {
        eq.accumulate_dk(&lambda_states[m], &u_states[m - 1], &mut g);
    }
    for v in &mut g {
        *v *= dt2;
    }
    g
}

/// Checkpointed adjoint gradient (Griewank-style two-level checkpointing,
/// the paper's "optional use of algorithmic checkpointing" [21]).
///
/// Instead of storing all `n+1` forward states (O(n) memory), the forward
/// pass keeps one `(u_s, u_{s-1})` pair every `segment` steps; during the
/// backward march each segment's states are recomputed from its checkpoint.
/// Memory drops to `O(n/segment + segment)` states for one extra forward
/// sweep of compute. The result is bitwise the full-storage gradient.
pub fn material_gradient_checkpointed(
    eq: &dyn ScalarWaveEq,
    mu: &[f64],
    forcing: &mut dyn FnMut(usize, &mut [f64]),
    residuals: &[Vec<f64>],
    segment: usize,
) -> Vec<f64> {
    let n = eq.n_nodes();
    let steps = eq.n_steps();
    let seg = segment.max(1);
    let dt = eq.dt();
    let dt2 = dt * dt;
    let mass = eq.mass();
    let cab = eq.abc_damping();
    let lhs_inv: Vec<f64> = (0..n).map(|i| 1.0 / (mass[i] + 0.5 * dt * cab[i])).collect();

    // One forward step of the recurrence.
    let step_fwd = |k: usize,
                    u_prev: &[f64],
                    u_now: &[f64],
                    f: &mut Vec<f64>,
                    out: &mut Vec<f64>,
                    forcing: &mut dyn FnMut(usize, &mut [f64])| {
        f.iter_mut().for_each(|v| *v = 0.0);
        forcing(k, f);
        for i in 0..n {
            out[i] =
                2.0 * mass[i] * u_now[i] + (-mass[i] + 0.5 * dt * cab[i]) * u_prev[i] + dt2 * f[i];
        }
        eq.apply_k(mu, u_now, out, -dt2);
        for i in 0..n {
            out[i] *= lhs_inv[i];
        }
    };

    // Forward sweep: store (u_s, u_{s-1}) at every segment boundary.
    let mut checkpoints: Vec<(usize, Vec<f64>, Vec<f64>)> = vec![(0, vec![0.0; n], vec![0.0; n])];
    {
        let mut u_prev = vec![0.0; n];
        let mut u_now = vec![0.0; n];
        let mut u_next = vec![0.0; n];
        let mut f = vec![0.0; n];
        for k in 0..steps {
            step_fwd(k, &u_prev, &u_now, &mut f, &mut u_next, forcing);
            std::mem::swap(&mut u_prev, &mut u_now);
            std::mem::swap(&mut u_now, &mut u_next);
            let s = k + 1; // u_now = u_s
            if s % seg == 0 && s < steps {
                checkpoints.push((s, u_now.clone(), u_prev.clone()));
            }
        }
    }

    // Backward sweep, one segment at a time.
    let mut g = vec![0.0; eq.n_elements()];
    let mut l_pp = vec![0.0; n];
    let mut l_p = vec![0.0; n];
    let mut l_m = vec![0.0; n];
    let mut hi = steps; // adjoint computed for m in (lo, hi]
    for (s, cu, cup) in checkpoints.iter().rev() {
        let lo = *s;
        // Recompute u_lo .. u_hi from the checkpoint.
        let mut states: Vec<Vec<f64>> = Vec::with_capacity(hi - lo + 1);
        states.push(cu.clone());
        {
            let mut u_prev = cup.clone();
            let mut u_now = cu.clone();
            let mut u_next = vec![0.0; n];
            let mut f = vec![0.0; n];
            for k in lo..hi {
                step_fwd(k, &u_prev, &u_now, &mut f, &mut u_next, forcing);
                std::mem::swap(&mut u_prev, &mut u_now);
                std::mem::swap(&mut u_now, &mut u_next);
                states.push(u_now.clone());
            }
        }
        // Adjoint march m = hi .. lo+1, accumulating the gradient with
        // u_{m-1} = states[m-1-lo].
        for m in (lo + 1..=hi).rev() {
            for i in 0..n {
                l_m[i] = 2.0 * mass[i] * l_p[i] + (-mass[i] + 0.5 * dt * cab[i]) * l_pp[i];
            }
            eq.apply_k(mu, &l_p, &mut l_m, -dt2);
            for (res, &r) in residuals.iter().zip(eq.receivers()) {
                l_m[r] -= dt * res[m - 1];
            }
            for i in 0..n {
                l_m[i] *= lhs_inv[i];
            }
            eq.accumulate_dk(&l_m, &states[m - 1 - lo], &mut g);
            std::mem::swap(&mut l_pp, &mut l_p);
            std::mem::swap(&mut l_p, &mut l_m);
        }
        hi = lo;
    }
    for v in &mut g {
        *v *= dt2;
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar3d::{Scalar3dConfig, Scalar3dSolver};

    fn small_solver() -> Scalar3dSolver {
        Scalar3dSolver::new(&Scalar3dConfig {
            nx: 6,
            ny: 6,
            nz: 6,
            h: 100.0,
            rho: 2000.0,
            dt: 0.01,
            n_steps: 40,
            abc: [true, true, true, true, false, true],
            receivers: vec![],
            mu_background: 2000.0 * 1000.0 * 1000.0,
        })
        .with_receivers_at_surface(4)
    }

    #[test]
    fn forward_adjoint_duality() {
        // <L u, l> source-to-receiver duality: running forward from a point
        // source and sampling at a receiver equals running "forward" from
        // the receiver and sampling at the source (reciprocity of the
        // symmetric discrete operator).
        let eq = small_solver();
        let mu = vec![2e9; eq.n_elements()];
        let n = eq.n_nodes();
        let (a, b) = (n / 3, 2 * n / 3);
        let run_ab = forward(
            &eq,
            &mu,
            &mut |k, f| {
                if k == 0 {
                    f[a] = 1.0;
                }
            },
            false,
        );
        let run_ba = forward(
            &eq,
            &mu,
            &mut |k, f| {
                if k == 0 {
                    f[b] = 1.0;
                }
            },
            true,
        );
        let _ = run_ab;
        // Reciprocity: u^{(a)}(b, t) == u^{(b)}(a, t).
        let ua = forward(
            &eq,
            &mu,
            &mut |k, f| {
                if k == 0 {
                    f[a] = 1.0;
                }
            },
            true,
        );
        for m in 0..=eq.n_steps() {
            let x = ua.states[m][b];
            let y = run_ba.states[m][a];
            assert!((x - y).abs() < 1e-14 * (1.0 + x.abs()), "step {m}: {x} vs {y}");
        }
    }

    #[test]
    fn adjoint_is_exact_transpose() {
        // <S f, r> == <f, S^T r> where S maps a (step-0) source to receiver
        // traces and S^T is the adjoint march sampled at the source node.
        let eq = small_solver();
        let mu: Vec<f64> = (0..eq.n_elements())
            .map(|e| 2e9 * (1.0 + 0.3 * ((e * 37 % 11) as f64 / 11.0)))
            .collect();
        let src = eq.n_nodes() / 2 + 3;
        let fwd = forward(
            &eq,
            &mu,
            &mut |k, f| {
                if k == 0 {
                    f[src] = 1.7;
                }
            },
            false,
        );
        // Random residual traces.
        let mut s = 42u64;
        let mut rnd = || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let res: Vec<Vec<f64>> =
            (0..eq.receivers().len()).map(|_| (0..eq.n_steps()).map(|_| rnd()).collect()).collect();
        // For the linear functional Jt = dt sum_m traces.res, the Lagrangian
        // gives dJt/df_0[src] = -dt^2 lambda_1[src]; with a source of
        // magnitude 1.7, <S f, r> = 1.7 * dJt/d(unit force).
        let lhs: f64 = fwd
            .traces
            .iter()
            .zip(&res)
            .map(|(t, r)| t.iter().zip(r).map(|(a, b)| a * b).sum::<f64>())
            .sum::<f64>()
            * eq.dt();
        let adj = adjoint(&eq, &mu, &res);
        let rhs = -adj.states[1][src] * 1.7 * eq.dt() * eq.dt();
        assert!((lhs - rhs).abs() < 1e-12 * (1.0 + lhs.abs()), "{lhs} vs {rhs}");
    }

    #[test]
    fn checkpointed_gradient_matches_full_storage() {
        let eq = small_solver();
        let ne = eq.n_elements();
        let mu: Vec<f64> = (0..ne).map(|e| 2e9 * (1.0 + 0.15 * ((e % 6) as f64 / 6.0))).collect();
        let src = eq.n_nodes() / 2 + 1;
        let mut forcing = |k: usize, f: &mut [f64]| {
            if k < 7 {
                f[src] = 2e6 * (k as f64 + 1.0);
            }
        };
        // Residuals: the traces themselves (misfit against zero data).
        let run = forward(&eq, &mu, &mut forcing, true);
        let adj = adjoint(&eq, &mu, &run.traces);
        let g_full = material_gradient(&eq, &run.states, &adj.states);
        for segment in [1usize, 3, 7, 16, 1000] {
            let g_ck = material_gradient_checkpointed(&eq, &mu, &mut forcing, &run.traces, segment);
            for (a, b) in g_ck.iter().zip(&g_full) {
                assert!((a - b).abs() <= 1e-12 * (1.0 + b.abs()), "segment {segment}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn material_gradient_matches_finite_differences() {
        let eq = small_solver();
        let ne = eq.n_elements();
        let mu0: Vec<f64> = (0..ne).map(|e| 2e9 * (1.0 + 0.2 * ((e % 7) as f64 / 7.0))).collect();
        let src = eq.n_nodes() / 2;
        fn forcing_at(src: usize) -> impl FnMut(usize, &mut [f64]) {
            move |k, f| {
                if k < 5 {
                    f[src] = 1e6 * (k as f64 + 1.0);
                }
            }
        }
        // Synthetic data from a perturbed model.
        let mut mu_true = mu0.clone();
        for (i, v) in mu_true.iter_mut().enumerate() {
            *v *= 1.0 + 0.05 * ((i % 5) as f64 / 5.0);
        }
        let data = forward(&eq, &mu_true, &mut forcing_at(src), false).traces;

        let misfit = |mu: &[f64]| -> f64 {
            let run = forward(&eq, mu, &mut forcing_at(src), false);
            let mut j = 0.0;
            for (t, d) in run.traces.iter().zip(&data) {
                for (a, b) in t.iter().zip(d) {
                    j += 0.5 * (a - b) * (a - b) * eq.dt();
                }
            }
            j
        };

        // Adjoint gradient.
        let run = forward(&eq, &mu0, &mut forcing_at(src), true);
        let residuals: Vec<Vec<f64>> = run
            .traces
            .iter()
            .zip(&data)
            .map(|(t, d)| t.iter().zip(d).map(|(a, b)| a - b).collect())
            .collect();
        let adj = adjoint(&eq, &mu0, &residuals);
        let g = material_gradient(&eq, &run.states, &adj.states);

        // Check several elements against central differences.
        let j0 = misfit(&mu0);
        assert!(j0 > 0.0);
        for &e in &[0usize, ne / 2, ne - 1, 13 % ne] {
            let eps = mu0[e] * 1e-6;
            let mut mp = mu0.clone();
            mp[e] += eps;
            let mut mm = mu0.clone();
            mm[e] -= eps;
            let fd = (misfit(&mp) - misfit(&mm)) / (2.0 * eps);
            let rel = (g[e] - fd).abs() / (1.0 + fd.abs().max(g[e].abs()));
            assert!(rel < 1e-5, "element {e}: adjoint {} vs fd {fd} (rel {rel})", g[e]);
        }
    }
}
