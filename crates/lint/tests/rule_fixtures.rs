//! One positive (rule fires on a seeded violation) and one negative (rule
//! stays silent on clean code) fixture per rule, plus the baseline and
//! ledger cross-check behaviors. Fixtures are synthetic `SourceFile`s with
//! in-scope paths — no filesystem involved, so each case states exactly
//! the code shape it pins.

use quake_lint::rules::{
    FloatDeterminism, HarnessAllowlist, NoAllocInHotPath, NoPanicInComm, Rule, UnsafeLedger,
    WorkspaceCtx,
};
use quake_lint::{Finding, SourceFile};

fn run_rule(rule: &mut dyn Rule, path: &str, src: &str) -> Vec<Finding> {
    let f = SourceFile::parse(path, src.to_string());
    let mut out = Vec::new();
    rule.check(&f, &mut out);
    out
}

fn run_with_finish(
    rule: &mut dyn Rule,
    files: &[(&str, &str)],
    ledger: Option<&str>,
) -> Vec<Finding> {
    let mut out = Vec::new();
    for (path, src) in files {
        let f = SourceFile::parse(path, src.to_string());
        rule.check(&f, &mut out);
    }
    rule.finish(&WorkspaceCtx { unsafe_ledger: ledger }, &mut out);
    out
}

// ---- harness-allowlist -------------------------------------------------

#[test]
fn harness_allowlist_fires_on_new_run_variant() {
    let out = run_rule(
        &mut HarnessAllowlist::default(),
        "crates/solver/src/experiments.rs",
        "pub fn run_my_experiment() {}\n",
    );
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].rule, "harness-allowlist");
    assert!(out[0].message.contains("run_my_experiment"));
}

#[test]
fn harness_allowlist_silent_on_allowed_and_quoted_names() {
    let mut rule = HarnessAllowlist::default();
    // Allowlisted file + name.
    assert!(run_rule(&mut rule, "crates/parcomm/src/lib.rs", "pub fn run_spmd() {}\n").is_empty());
    // Wildcard file.
    assert!(run_rule(&mut rule, "crates/solver/src/harness.rs", "pub fn run_anything() {}\n")
        .is_empty());
    // Non-pub helper, doc-comment mention, string mention: all fine.
    let src = "/// like `pub fn run_x` but private\n\
               fn run_helper() {}\n\
               const S: &str = \"pub fn run_fake\";\n";
    assert!(run_rule(&mut rule, "crates/solver/src/lib.rs", src).is_empty());
    assert_eq!(rule.seen, 2, "only real definitions count toward seen");
}

// ---- no-panic-in-comm --------------------------------------------------

#[test]
fn no_panic_fires_on_unwrap_expect_and_macros_in_scope() {
    let src = "pub fn f(x: Option<u32>) -> u32 {\n\
                   let v = x.unwrap();\n\
                   let w = compute().expect(\"io\");\n\
                   if v == 0 { panic!(\"zero\") }\n\
                   match v { 1 => w, _ => unreachable!() }\n\
               }\n";
    let out = run_rule(&mut NoPanicInComm, "crates/parcomm/src/lib.rs", src);
    let lines: Vec<u32> = out.iter().map(|f| f.line).collect();
    assert_eq!(lines, vec![2, 3, 4, 5]);
    assert!(out.iter().all(|f| f.rule == "no-panic-in-comm"));
}

#[test]
fn no_panic_silent_out_of_scope_in_tests_and_in_strings() {
    // Out of scope entirely.
    assert!(run_rule(
        &mut NoPanicInComm,
        "crates/solver/src/elastic.rs",
        "fn f() { x.unwrap(); }\n"
    )
    .is_empty());
    // In scope, but test module / string / assert are all fine.
    let src = "pub fn f() { assert!(true, \"contract\"); }\n\
               const HELP: &str = \"do not panic!(...) or x.unwrap() here\";\n\
               #[cfg(test)]\n\
               mod tests {\n\
                   #[test]\n\
                   fn t() { x.unwrap(); panic!(\"fine in tests\"); }\n\
               }\n";
    assert!(run_rule(&mut NoPanicInComm, "crates/ckpt/src/format.rs", src).is_empty());
}

// ---- no-alloc-in-hot-path ----------------------------------------------

#[test]
fn no_alloc_fires_inside_hot_region() {
    let src = "// lint:hot-path\n\
               fn kernel(xs: &[f64]) -> Vec<f64> {\n\
                   let a = xs.to_vec();\n\
                   let b: Vec<f64> = xs.iter().copied().collect();\n\
                   let c = Vec::new();\n\
                   let d = format!(\"{}\", xs.len());\n\
                   a\n\
               }\n\
               // lint:hot-path-end\n";
    let out = run_rule(&mut NoAllocInHotPath, "crates/solver/src/kern.rs", src);
    let lines: Vec<u32> = out.iter().map(|f| f.line).collect();
    assert_eq!(lines, vec![3, 4, 5, 6]);
    assert!(out.iter().all(|f| f.rule == "no-alloc-in-hot-path"));
}

#[test]
fn no_alloc_silent_outside_region_and_for_push_reuse() {
    let src = "fn setup() -> Vec<f64> { vec![0.0; 8] }\n\
               // lint:hot-path\n\
               fn kernel(scratch: &mut Vec<f64>, x: f64) {\n\
                   scratch.push(x);\n\
                   let y = x.max(0.0);\n\
                   scratch[0] = y;\n\
               }\n\
               // lint:hot-path-end\n\
               fn teardown(v: Vec<f64>) -> Vec<f64> { v.clone() }\n";
    assert!(run_rule(&mut NoAllocInHotPath, "crates/solver/src/kern.rs", src).is_empty());
}

// ---- unsafe-ledger -----------------------------------------------------

const UNSAFE_SRC_NO_SAFETY: &str = "pub fn f(p: *mut f64) {\n\
                                        unsafe { *p = 1.0 };\n\
                                    }\n";

const UNSAFE_SRC_WITH_SAFETY: &str = "pub fn f(p: *mut f64) {\n\
                                          // SAFETY: p is the only live pointer (caller contract).\n\
                                          unsafe { *p = 1.0 };\n\
                                      }\n";

#[test]
fn unsafe_ledger_fires_on_missing_safety_comment_and_missing_entry() {
    let out = run_with_finish(
        &mut UnsafeLedger::default(),
        &[("crates/x/src/lib.rs", UNSAFE_SRC_NO_SAFETY)],
        None,
    );
    assert_eq!(out.len(), 2, "{out:?}");
    assert!(out[0].message.contains("SAFETY"));
    assert!(out[1].message.contains("UNSAFE_LEDGER.md"));
}

#[test]
fn unsafe_ledger_silent_when_comment_and_ledger_agree() {
    let ledger = "# Unsafe ledger\n\n## crates/x/src/lib.rs\n\n- raw store in f: caller contract\n";
    let out = run_with_finish(
        &mut UnsafeLedger::default(),
        &[("crates/x/src/lib.rs", UNSAFE_SRC_WITH_SAFETY)],
        Some(ledger),
    );
    assert!(out.is_empty(), "{out:?}");
}

#[test]
fn unsafe_ledger_flags_stale_section_and_count_mismatch() {
    let ledger = "## crates/x/src/lib.rs\n- one\n- two (stale: only one site)\n\
                  ## crates/gone/src/lib.rs\n- whole section stale\n";
    let out = run_with_finish(
        &mut UnsafeLedger::default(),
        &[("crates/x/src/lib.rs", UNSAFE_SRC_WITH_SAFETY)],
        Some(ledger),
    );
    assert_eq!(out.len(), 2, "{out:?}");
    assert!(out.iter().any(|f| f.message.contains("lists 2 site(s)")));
    assert!(out.iter().any(|f| f.message.contains("stale ledger section")));
}

// ---- float-determinism -------------------------------------------------

#[test]
fn float_determinism_fires_on_casts_hash_iteration_and_time() {
    let src = "// lint:hot-path\n\
               fn kernel(n: usize, m: &HashMap<u32, f64>) -> f64 {\n\
                   let x = n as f64;\n\
                   let t = Instant::now();\n\
                   x\n\
               }\n\
               // lint:hot-path-end\n";
    let out = run_rule(&mut FloatDeterminism, "crates/solver/src/kern.rs", src);
    let lines: Vec<u32> = out.iter().map(|f| f.line).collect();
    assert_eq!(lines, vec![2, 3, 4]);
    assert!(out.iter().all(|f| f.rule == "float-determinism"));
}

#[test]
fn float_determinism_wall_clock_annotation_exempts_time_only() {
    // `lint:wall-clock-ok(...)` silences the time/randomness check on the
    // annotated line or the line directly below it (rustfmt moves trailing
    // comments above long signatures), but nothing else: casts and hash
    // hazards still fire, and unannotated time lines still fire.
    let src = "// lint:hot-path\n\
               // lint:wall-clock-ok(output-only timestamp)\n\
               fn record(epoch: Instant) -> u64 {\n\
                   let t = Instant::now(); // lint:wall-clock-ok(output-only timestamp)\n\
                   let n = 3usize as f64; // lint:wall-clock-ok(does not cover casts)\n\
                   let bad = Instant::now();\n\
                   n as u64\n\
               }\n\
               // lint:hot-path-end\n";
    let out = run_rule(&mut FloatDeterminism, "crates/telemetry/src/kern.rs", src);
    let lines: Vec<u32> = out.iter().map(|f| f.line).collect();
    assert_eq!(lines, vec![5, 6], "cast on 5 and unannotated Instant on 6 still fire");
}

#[test]
fn float_determinism_silent_on_int_casts_and_cold_code() {
    let src = "fn cold(n: usize) -> f64 { n as f64 }\n\
               // lint:hot-path\n\
               fn kernel(ei: u32, xs: &[f64]) -> f64 {\n\
                   let i = ei as usize;\n\
                   let w = f64::from(1u8);\n\
                   xs[i] + w\n\
               }\n\
               // lint:hot-path-end\n";
    assert!(run_rule(&mut FloatDeterminism, "crates/solver/src/kern.rs", src).is_empty());
}
