//! The acceptance gate, enforced by `cargo test` itself: the real
//! workspace must lint clean — zero unsuppressed findings AND zero stale
//! baseline entries — with the checked-in `lint-baseline.txt` and
//! `UNSAFE_LEDGER.md`. This is the same check CI's
//! `cargo run -p quake-lint -- --deny` performs, run as a tier-1 test so a
//! regression cannot land even when CI config is skipped.

use std::path::Path;

use quake_lint::lint_workspace;

fn workspace_root() -> &'static Path {
    // crates/lint -> crates -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR")).parent().unwrap().parent().unwrap()
}

#[test]
fn workspace_lints_clean_under_the_checked_in_baseline() {
    let root = workspace_root();
    assert!(root.join("Cargo.toml").exists(), "bad root: {}", root.display());
    let report = lint_workspace(root);

    assert!(report.n_files > 40, "scan collapsed: only {} files seen", report.n_files);
    assert!(
        report.findings.is_empty(),
        "unsuppressed lint findings:\n{}",
        report.findings.iter().map(|f| f.render()).collect::<Vec<_>>().join("\n")
    );
    assert!(
        report.stale_baseline.is_empty(),
        "stale lint-baseline.txt entries:\n{}",
        report.stale_baseline.join("\n")
    );
}

#[test]
fn baseline_suppressions_stay_few_and_deliberate() {
    // The baseline is an exception list, not a dumping ground. If this
    // number needs to grow, the new entry needs a written justification in
    // lint-baseline.txt — and scrutiny in review.
    let report = lint_workspace(workspace_root());
    assert!(
        report.suppressed.len() <= 12,
        "baseline now suppresses {} findings — trim it",
        report.suppressed.len()
    );
}

#[test]
fn hot_path_regions_exist_where_the_guarantees_live() {
    // The no-alloc and float-determinism rules are vacuous without
    // annotated regions; pin the files that must carry them.
    let files = quake_lint::collect_files(workspace_root());
    for expected in [
        "crates/solver/src/elastic.rs",
        "crates/solver/src/sweep.rs",
        "crates/solver/src/abc.rs",
        "crates/mesh/src/hexmesh.rs",
        "crates/fem/src/hex8.rs",
        "crates/serve/src/exec.rs",
    ] {
        let f = files.iter().find(|f| f.path == expected);
        assert!(f.is_some_and(|f| f.has_hot_region()), "{expected} lost its lint:hot-path region");
    }
}
