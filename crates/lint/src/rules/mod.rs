//! The invariant rules. Each rule walks one file's token stream at a time
//! (`check`), and may do a workspace-level pass once every file has been
//! seen (`finish` — used by the unsafe ledger to cross-check
//! `UNSAFE_LEDGER.md` against the sites actually found).
//!
//! Adding a rule (see DESIGN.md "Static analysis"):
//! 1. add a module here implementing [`Rule`],
//! 2. register it in [`all_rules`],
//! 3. add a positive + negative fixture in `tests/rule_fixtures.rs`,
//! 4. document it in the DESIGN.md rule table.

mod float_det;
mod harness_allowlist;
mod no_alloc;
mod no_panic;
mod unsafe_ledger;

pub use float_det::FloatDeterminism;
pub use harness_allowlist::HarnessAllowlist;
pub use no_alloc::NoAllocInHotPath;
pub use no_panic::NoPanicInComm;
pub use unsafe_ledger::UnsafeLedger;

use crate::source::SourceFile;
use crate::Finding;

/// Workspace-level inputs available to `finish`.
pub struct WorkspaceCtx<'a> {
    /// Contents of `UNSAFE_LEDGER.md` at the workspace root, if present.
    pub unsafe_ledger: Option<&'a str>,
}

pub trait Rule {
    fn id(&self) -> &'static str;
    fn description(&self) -> &'static str;
    /// Examine one file, appending findings.
    fn check(&mut self, file: &SourceFile, out: &mut Vec<Finding>);
    /// Called once after every file has been checked.
    fn finish(&mut self, _ctx: &WorkspaceCtx<'_>, _out: &mut Vec<Finding>) {}
}

/// The full rule set, in documentation order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(HarnessAllowlist::default()),
        Box::new(NoPanicInComm),
        Box::new(NoAllocInHotPath),
        Box::new(UnsafeLedger::default()),
        Box::new(FloatDeterminism),
    ]
}
