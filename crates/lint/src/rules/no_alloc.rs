//! **no-alloc-in-hot-path** — PR 1's zero-steady-state-allocation
//! guarantee, machine-checked. Code inside `// lint:hot-path` regions (the
//! elastic step loop, the element kernels, fold/ABC phases, the fem
//! matvecs) may not construct or grow heap storage: at 3000 PEs an
//! allocator call in the element loop is both a throughput cliff and a
//! cross-rank jitter source.
//!
//! Matched forms: `Vec::new`/`with_capacity`/`from` (and the same on `Box`,
//! `String`, `VecDeque`, `HashMap`, `HashSet`, `BTreeMap`), the `.to_vec()`
//! / `.collect()` / `.clone()` / `.to_string()` / `.to_owned()` method
//! calls, and the `format!` / `vec!` macros. `Vec::push` on preallocated
//! scratch is deliberately NOT matched — the workspace pattern is "allocate
//! in `new`, reuse in `step`", and push-into-capacity is how the scratch is
//! reused. Test lines are exempt; one-time lazily-gated allocations carry a
//! baseline entry with the justification inline.

use super::Rule;
use crate::source::SourceFile;
use crate::Finding;

const ALLOC_METHODS: &[&str] = &["to_vec", "collect", "clone", "to_string", "to_owned"];
const ALLOC_TYPES: &[&str] =
    &["Vec", "Box", "String", "VecDeque", "HashMap", "HashSet", "BTreeMap"];
const ALLOC_CTORS: &[&str] = &["new", "with_capacity", "from"];
const ALLOC_MACROS: &[&str] = &["format", "vec"];

pub struct NoAllocInHotPath;

impl Rule for NoAllocInHotPath {
    fn id(&self) -> &'static str {
        "no-alloc-in-hot-path"
    }

    fn description(&self) -> &'static str {
        "no heap allocation inside lint:hot-path regions"
    }

    fn check(&mut self, file: &SourceFile, out: &mut Vec<Finding>) {
        if !file.has_hot_region() {
            return;
        }
        let code = file.code_indices();
        for (k, &i) in code.iter().enumerate() {
            let t = &file.tokens[i];
            if !file.is_hot_line(t.line) || file.is_test_line(t.line) {
                continue;
            }
            let text = file.tok_text(t);
            let next_punct =
                |c: char| code.get(k + 1).is_some_and(|&n| file.tokens[n].is_punct(&file.text, c));
            let what = if ALLOC_METHODS.contains(&text)
                && k > 0
                && file.tokens[code[k - 1]].is_punct(&file.text, '.')
                && (next_punct('(') || next_punct(':'))
            {
                // `.collect::<...>()` lexes `::` as two ':' puncts.
                Some(format!(".{text}()"))
            } else if ALLOC_TYPES.contains(&text)
                && next_punct(':')
                && code
                    .get(k + 3)
                    .is_some_and(|&n| ALLOC_CTORS.contains(&file.tok_text(&file.tokens[n])))
            {
                Some(format!("{}::{}", text, file.tok_text(&file.tokens[code[k + 3]])))
            } else if ALLOC_MACROS.contains(&text) && next_punct('!') {
                Some(format!("{text}!"))
            } else {
                None
            };
            if let Some(what) = what {
                out.push(Finding {
                    rule: self.id(),
                    file: file.path.clone(),
                    line: t.line,
                    message: format!(
                        "`{}` in `{}` — hot-path regions must stay allocation-free \
                         (preallocate in the workspace/scope, reuse per step): `{}`",
                        what,
                        "lint:hot-path",
                        file.line_text(t.line).trim()
                    ),
                });
            }
        }
    }
}
