//! **float-determinism** — the harness property tests pin bit-identity
//! (serial vs threaded sweep, resume vs uninterrupted, 4-rank recovery),
//! and the paper's reproducibility story depends on it. Inside
//! `lint:hot-path` regions (the numerical kernels) this rule bans the
//! constructs that silently break bit-reproducibility:
//!
//! - `HashMap`/`HashSet` (+ `RandomState`): iteration order varies run to
//!   run, so any float reduction over one is nondeterministic. Use `Vec`,
//!   index arrays, or `BTreeMap` at setup time.
//! - `as f64` / `as f32` casts: lossy, and a favorite way for an integer
//!   code path to leak platform-width behavior into the arithmetic. Use
//!   `f64::from` for widening, and keep kernel inputs already-floating.
//! - time (`Instant`, `SystemTime`) and randomness (`random`,
//!   `thread_rng`): wall-clock or seed-dependent values must never feed a
//!   kernel; they belong in telemetry and test drivers outside the region.
//!
//! Test lines are exempt (tests measure time and build HashMaps freely).
//! A line carrying a `lint:wall-clock-ok(reason)` annotation — on the line
//! itself or directly above it — is exempt from the time/randomness check
//! only; this exists for the telemetry flight recorder, whose hot record
//! path legitimately handles `Instant` values that are output-only
//! (timestamps never feed arithmetic that reaches the state).

use super::Rule;
use crate::source::SourceFile;
use crate::Finding;

const ORDER_HAZARDS: &[&str] = &["HashMap", "HashSet", "RandomState"];
const TIME_RANDOM: &[&str] = &["Instant", "SystemTime", "random", "thread_rng"];

pub struct FloatDeterminism;

impl Rule for FloatDeterminism {
    fn id(&self) -> &'static str {
        "float-determinism"
    }

    fn description(&self) -> &'static str {
        "no HashMap/HashSet, as-float casts, or time/random calls inside numerical kernels"
    }

    fn check(&mut self, file: &SourceFile, out: &mut Vec<Finding>) {
        if !file.has_hot_region() {
            return;
        }
        let code = file.code_indices();
        for (k, &i) in code.iter().enumerate() {
            let t = &file.tokens[i];
            if !file.is_hot_line(t.line) || file.is_test_line(t.line) {
                continue;
            }
            let text = file.tok_text(t);
            let why = if ORDER_HAZARDS.contains(&text) {
                Some(format!("`{text}` has nondeterministic iteration order"))
            } else if TIME_RANDOM.contains(&text) {
                // The annotation may sit on the line itself or — rustfmt
                // moves trailing comments off long signatures — as a pure
                // comment line directly above (a trailing comment above
                // annotates its own line only, not the one below).
                let above = t.line > 1 && {
                    let prev = file.line_text(t.line - 1);
                    prev.trim_start().starts_with("//") && prev.contains("lint:wall-clock-ok")
                };
                let annotated = file.line_text(t.line).contains("lint:wall-clock-ok") || above;
                if annotated {
                    None
                } else {
                    Some(format!("`{text}` injects wall-clock/seed-dependent values"))
                }
            } else if text == "as"
                && code
                    .get(k + 1)
                    .is_some_and(|&n| matches!(file.tok_text(&file.tokens[n]), "f64" | "f32"))
            {
                Some("lossy `as` float cast (use f64::from / keep inputs floating)".to_string())
            } else {
                None
            };
            if let Some(why) = why {
                out.push(Finding {
                    rule: self.id(),
                    file: file.path.clone(),
                    line: t.line,
                    message: format!(
                        "{} — forbidden in a lint:hot-path kernel; bit-reproducibility across \
                         ranks and reruns is a pinned contract: `{}`",
                        why,
                        file.line_text(t.line).trim()
                    ),
                });
            }
        }
    }
}
