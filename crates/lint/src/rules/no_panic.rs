//! **no-panic-in-comm** — the recovery supervisor (PR 3) treats `CommError`
//! as the only legitimate failure signal, and the checkpoint reader must
//! survive arbitrary on-disk corruption. A panic anywhere in those paths
//! turns a recoverable fault into a dead rank, so `unwrap()`, `expect()`,
//! `panic!`, `unreachable!`, `todo!`, and `unimplemented!` are forbidden in:
//!
//! - `crates/parcomm/src/**` (the comm fabric itself),
//! - `crates/solver/src/distributed.rs` (the SPMD driver + supervisor),
//! - `crates/ckpt/src/**` (the checkpoint reader path must degrade to
//!   `CkptError`, never abort — the writer lives in the same files),
//! - `crates/inverse/src/checkpoint.rs` (resumable-inversion state I/O),
//! - `crates/serve/src/cache.rs` (the result-cache reader must treat any
//!   on-disk corruption as a miss and recompute, never abort a worker).
//!
//! `assert!`/`debug_assert!` on *caller contracts* (e.g. rank bounds) stay
//! allowed: they document programmer error, not runtime failure. Test code
//! is exempt. Deliberate fail-stop sites (the pre-recovery `Communicator`
//! wrappers) are suppressed in `lint-baseline.txt` with the reason inline.

use super::Rule;
use crate::source::SourceFile;
use crate::Finding;

const SCOPE: &[&str] = &[
    "crates/parcomm/src/",
    "crates/solver/src/distributed.rs",
    "crates/ckpt/src/",
    "crates/inverse/src/checkpoint.rs",
    "crates/serve/src/cache.rs",
];

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

pub struct NoPanicInComm;

pub fn in_comm_scope(path: &str) -> bool {
    SCOPE.iter().any(|p| path == *p || (p.ends_with('/') && path.starts_with(p)))
}

impl Rule for NoPanicInComm {
    fn id(&self) -> &'static str {
        "no-panic-in-comm"
    }

    fn description(&self) -> &'static str {
        "unwrap/expect/panic!/unreachable! forbidden in comm, distributed, and checkpoint-reader code"
    }

    fn check(&mut self, file: &SourceFile, out: &mut Vec<Finding>) {
        if !in_comm_scope(&file.path) {
            return;
        }
        let code = file.code_indices();
        for (k, &i) in code.iter().enumerate() {
            let t = &file.tokens[i];
            let text = file.tok_text(t);
            let hit = match text {
                // `.unwrap(` / `.expect(` — method calls only, so a local
                // named `unwrap` or an `expect` field cannot trip this.
                "unwrap" | "expect" => {
                    k > 0
                        && file.tokens[code[k - 1]].is_punct(&file.text, '.')
                        && code
                            .get(k + 1)
                            .is_some_and(|&n| file.tokens[n].is_punct(&file.text, '('))
                }
                // `panic!(` etc — macro invocations only.
                _ if PANIC_MACROS.contains(&text) => {
                    code.get(k + 1).is_some_and(|&n| file.tokens[n].is_punct(&file.text, '!'))
                }
                _ => false,
            };
            if hit && !file.is_test_line(t.line) {
                out.push(Finding {
                    rule: self.id(),
                    file: file.path.clone(),
                    line: t.line,
                    message: format!(
                        "`{}` — panics are forbidden in comm/recovery/checkpoint-reader code; \
                         propagate CommError, CkptError, or io::Result instead",
                        file.line_text(t.line).trim()
                    ),
                });
            }
        }
    }
}
