//! **unsafe-ledger** — every `unsafe` in library code must carry its proof
//! obligation in two places:
//!
//! 1. **At the site**: a `// SAFETY:` comment (or a `/// # Safety` doc
//!    section for `unsafe fn`) within the few lines above the keyword,
//!    stating the argument — for the solver's element scatters, the
//!    node-disjoint-coloring argument.
//! 2. **In the ledger**: a bullet under the file's `## path` section in the
//!    checked-in `UNSAFE_LEDGER.md`, so the full unsafe surface is visible
//!    in one reviewable document and every new site is a diff to it.
//!
//! The ledger is cross-checked both ways in `finish`: a file whose
//! bullet count does not match its actual site count is a finding (missing
//! entry), and a ledger section for a file with no unsafe left is a finding
//! too (stale ledger — delete the section when you delete the unsafe).
//! Test code is exempt from the site check and excluded from the counts.

use super::{Rule, WorkspaceCtx};
use crate::source::SourceFile;
use crate::Finding;

/// How many lines above an `unsafe` keyword the SAFETY comment may sit
/// (covers an attribute + multi-line comment between the two).
const SAFETY_SEARCH_LINES: u32 = 14;

#[derive(Default)]
pub struct UnsafeLedger {
    /// (file path, line of each non-test `unsafe` keyword).
    sites: Vec<(String, u32)>,
}

fn has_safety_comment(file: &SourceFile, line: u32) -> bool {
    let lo = line.saturating_sub(SAFETY_SEARCH_LINES).max(1);
    (lo..=line).any(|l| {
        let t = file.line_text(l);
        t.contains("SAFETY") || t.contains("# Safety")
    })
}

impl Rule for UnsafeLedger {
    fn id(&self) -> &'static str {
        "unsafe-ledger"
    }

    fn description(&self) -> &'static str {
        "every unsafe needs a SAFETY comment and an UNSAFE_LEDGER.md entry"
    }

    fn check(&mut self, file: &SourceFile, out: &mut Vec<Finding>) {
        if !(file.path.starts_with("crates/") || file.path.starts_with("src/")) {
            return;
        }
        for t in &file.tokens {
            if file.tok_text(t) != "unsafe" || file.is_test_line(t.line) {
                continue;
            }
            self.sites.push((file.path.clone(), t.line));
            if !has_safety_comment(file, t.line) {
                out.push(Finding {
                    rule: self.id(),
                    file: file.path.clone(),
                    line: t.line,
                    message: format!(
                        "`unsafe` without a SAFETY comment — state the soundness argument \
                         in a `// SAFETY:` comment directly above: `{}`",
                        file.line_text(t.line).trim()
                    ),
                });
            }
        }
    }

    fn finish(&mut self, ctx: &WorkspaceCtx<'_>, out: &mut Vec<Finding>) {
        // Count sites per file, in first-seen order.
        let mut counts: Vec<(String, u32, usize)> = Vec::new();
        for (path, line) in &self.sites {
            match counts.iter_mut().find(|(p, _, _)| p == path) {
                Some((_, _, n)) => *n += 1,
                None => counts.push((path.clone(), *line, 1)),
            }
        }

        let ledger = parse_ledger(ctx.unsafe_ledger.unwrap_or(""));

        for (path, first_line, n_sites) in &counts {
            let n_ledger = ledger.iter().find(|(p, _)| p == path).map_or(0, |(_, n)| *n);
            if n_ledger != *n_sites {
                out.push(Finding {
                    rule: self.id(),
                    file: path.clone(),
                    line: *first_line,
                    message: format!(
                        "UNSAFE_LEDGER.md lists {n_ledger} site(s) for this file but the \
                         source has {n_sites} — add one `- ` bullet per unsafe site under \
                         a `## {path}` section"
                    ),
                });
            }
        }
        for (path, _) in &ledger {
            if !counts.iter().any(|(p, _, _)| p == path) {
                out.push(Finding {
                    rule: self.id(),
                    file: "UNSAFE_LEDGER.md".to_string(),
                    line: 1,
                    message: format!(
                        "stale ledger section `## {path}` — the file has no unsafe sites \
                         (or was not scanned); delete the section"
                    ),
                });
            }
        }
    }
}

/// Parse the ledger: `## <path>` headings, `- ` bullets under each.
fn parse_ledger(text: &str) -> Vec<(String, usize)> {
    let mut sections: Vec<(String, usize)> = Vec::new();
    let mut current: Option<usize> = None;
    for line in text.lines() {
        let line = line.trim_end();
        if let Some(path) = line.strip_prefix("## ") {
            sections.push((path.trim().to_string(), 0));
            current = Some(sections.len() - 1);
        } else if line.trim_start().starts_with("- ") {
            if let Some(i) = current {
                sections[i].1 += 1;
            }
        }
    }
    sections
}
