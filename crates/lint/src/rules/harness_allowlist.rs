//! **harness-allowlist** — guard against the run-variant explosion PR 4
//! collapsed. Every public `run_*` entry point must delegate to the one
//! `SolverHarness` step loop; a new `pub fn run_*` outside the allowlist is
//! a finding. Add an entry only for a genuinely new *workflow* — new
//! combinations of behavior belong in `RunConfig` + `StepHook`s.
//!
//! This rule absorbs the grep that used to live in `tests/variant_guard.rs`
//! (that test is now a thin wrapper over this rule). Unlike the grep, a
//! `pub fn run_*` quoted in a doc comment or string no longer trips it.

use super::Rule;
use crate::source::SourceFile;
use crate::Finding;

/// (file, allowed names); `"*"` allows the whole file (the harness module).
pub const ALLOWED: &[(&str, &[&str])] = &[
    ("crates/parcomm/src/lib.rs", &["run_spmd"]),
    ("crates/solver/src/harness.rs", &["*"]),
    ("crates/solver/src/distributed.rs", &["run_distributed", "run_distributed_recoverable"]),
    ("crates/solver/src/tet.rs", &["run_to_state"]),
    ("crates/core/src/forward.rs", &["run_forward"]),
    ("crates/serve/src/exec.rs", &["run_scenario"]),
];

#[derive(Default)]
pub struct HarnessAllowlist {
    /// How many `pub fn run_*` definitions the scan saw, allowed or not.
    /// `tests/variant_guard.rs` asserts this stays ≥ the known entry-point
    /// count, so a broken scan cannot silently pass.
    pub seen: usize,
}

impl Rule for HarnessAllowlist {
    fn id(&self) -> &'static str {
        "harness-allowlist"
    }

    fn description(&self) -> &'static str {
        "no pub fn run_* outside the SolverHarness allowlist"
    }

    fn check(&mut self, file: &SourceFile, out: &mut Vec<Finding>) {
        // Same scope as the original guard: library code only.
        if !(file.path.starts_with("crates/") || file.path.starts_with("src/")) {
            return;
        }
        let code = file.code_indices();
        for w in code.windows(3) {
            let (a, b, c) = (&file.tokens[w[0]], &file.tokens[w[1]], &file.tokens[w[2]]);
            if file.tok_text(a) != "pub" || file.tok_text(b) != "fn" {
                continue;
            }
            let name = file.tok_text(c);
            if !name.starts_with("run_") {
                continue;
            }
            self.seen += 1;
            let ok = ALLOWED.iter().any(|(f, names)| {
                *f == file.path && (names.contains(&"*") || names.contains(&name))
            });
            if !ok {
                out.push(Finding {
                    rule: self.id(),
                    file: file.path.clone(),
                    line: c.line,
                    message: format!(
                        "`pub fn {name}` outside the SolverHarness allowlist — route new \
                         workflows through SolverHarness/RunConfig + StepHooks, or add a \
                         reviewed allowlist entry"
                    ),
                });
            }
        }
    }
}
