//! Per-file source model: lexed tokens plus the two line classifications
//! every rule needs — "is this line test code?" and "is this line inside a
//! `lint:hot-path` region?".
//!
//! Test code is exempt from most rules (tests are allowed to `unwrap()`,
//! allocate, and compare floats however they like). A line is test code if
//! the file lives under a `tests/`, `benches/`, or `examples/` directory,
//! or if it falls inside the braces of an item annotated `#[cfg(test)]`.
//! The latter is found by token matching (`#` `[` `cfg` `(` `test` `)` `]`)
//! followed by brace-matching the next item body — strings and comments are
//! already out of the token stream, so `{`/`}` inside them cannot skew the
//! depth count.
//!
//! Hot-path regions are delimited by plain marker comments in the source:
//!
//! ```text
//! // lint:hot-path — why this region must stay allocation-free
//! ...kernel code...
//! // lint:hot-path-end
//! ```
//!
//! Markers are only honored inside comment tokens, so a string containing
//! the marker text cannot open a region. An unclosed region extends to EOF
//! (the conservative direction: more code checked, not less).

use crate::lexer::{lex, TokKind, Token};

pub struct SourceFile {
    /// Repo-relative path with `/` separators — the identity used in
    /// findings, baseline entries, and `UNSAFE_LEDGER.md` sections.
    pub path: String,
    pub text: String,
    /// Full token stream, comments included.
    pub tokens: Vec<Token>,
    /// Byte offset of each line start; `line_starts[0] == 0`.
    line_starts: Vec<usize>,
    /// Indexed by `line - 1`.
    test_lines: Vec<bool>,
    hot_lines: Vec<bool>,
}

impl SourceFile {
    pub fn parse(path: &str, text: String) -> SourceFile {
        let tokens = lex(&text);
        let mut line_starts = vec![0usize];
        for (i, b) in text.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        let n_lines = line_starts.len();

        let mut test_lines = vec![false; n_lines];
        if is_test_path(path) {
            test_lines.iter_mut().for_each(|l| *l = true);
        } else {
            mark_cfg_test_regions(&text, &tokens, &mut test_lines);
        }

        let mut hot_lines = vec![false; n_lines];
        mark_hot_regions(&text, &tokens, &mut hot_lines);

        SourceFile { path: path.to_string(), text, tokens, line_starts, test_lines, hot_lines }
    }

    pub fn is_test_line(&self, line: u32) -> bool {
        self.test_lines.get(line as usize - 1).copied().unwrap_or(false)
    }

    pub fn is_hot_line(&self, line: u32) -> bool {
        self.hot_lines.get(line as usize - 1).copied().unwrap_or(false)
    }

    /// True if any line of the file is inside a hot-path region.
    pub fn has_hot_region(&self) -> bool {
        self.hot_lines.iter().any(|&h| h)
    }

    /// The 1-based line's text, without its newline.
    pub fn line_text(&self, line: u32) -> &str {
        let i = line as usize - 1;
        let start = match self.line_starts.get(i) {
            Some(&s) => s,
            None => return "",
        };
        let end = self.line_starts.get(i + 1).map_or(self.text.len(), |&e| e);
        self.text[start..end].trim_end_matches(['\n', '\r'])
    }

    /// Indices into `tokens` of the non-comment tokens, in order. Rules
    /// that match adjacent-token patterns walk this so an interleaved
    /// comment cannot break up a pattern.
    pub fn code_indices(&self) -> Vec<usize> {
        (0..self.tokens.len())
            .filter(|&i| {
                !matches!(self.tokens[i].kind, TokKind::LineComment | TokKind::BlockComment)
            })
            .collect()
    }

    pub fn tok_text(&self, t: &Token) -> &str {
        t.text(&self.text)
    }
}

fn is_test_path(path: &str) -> bool {
    path.starts_with("tests/")
        || path.starts_with("benches/")
        || path.starts_with("examples/")
        || path.contains("/tests/")
        || path.contains("/benches/")
        || path.contains("/examples/")
}

/// Find every `#[cfg(test)]` attribute and mark the lines of the item body
/// that follows it (from its `{` line through its matching `}` line).
fn mark_cfg_test_regions(src: &str, tokens: &[Token], out: &mut [bool]) {
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| !matches!(tokens[i].kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();
    let txt = |ci: usize| tokens[code[ci]].text(src);
    let punct = |ci: usize, c: char| tokens[code[ci]].is_punct(src, c);

    let mut ci = 0;
    while ci + 6 < code.len() {
        let is_cfg_test = punct(ci, '#')
            && punct(ci + 1, '[')
            && txt(ci + 2) == "cfg"
            && punct(ci + 3, '(')
            && txt(ci + 4) == "test"
            && punct(ci + 5, ')')
            && punct(ci + 6, ']');
        if !is_cfg_test {
            ci += 1;
            continue;
        }
        // Walk past any further attributes to the item, then to its body.
        let mut j = ci + 7;
        while j < code.len() && punct(j, '#') {
            // Skip the attribute's bracket group.
            let mut k = j + 1;
            let mut depth = 0i32;
            while k < code.len() {
                if punct(k, '[') {
                    depth += 1;
                } else if punct(k, ']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                k += 1;
            }
            j = k + 1;
        }
        // Find the item's opening `{` (or give up at `;` — a braceless item
        // like `#[cfg(test)] use ...;` guards nothing worth marking).
        while j < code.len() && !punct(j, '{') && !punct(j, ';') {
            j += 1;
        }
        if j < code.len() && punct(j, '{') {
            let open = j;
            let mut depth = 0i32;
            while j < code.len() {
                if punct(j, '{') {
                    depth += 1;
                } else if punct(j, '}') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            let first = tokens[code[open]].line as usize - 1;
            let last =
                if j < code.len() { tokens[code[j]].line as usize - 1 } else { out.len() - 1 };
            let last = last.min(out.len() - 1);
            for l in out.iter_mut().take(last + 1).skip(first) {
                *l = true;
            }
        }
        ci = j.max(ci + 7);
    }
}

/// Marker comments toggle hot regions. A marker must LEAD the comment
/// (after the `//`/`/*`/doc sigils): prose that merely *mentions*
/// `lint:hot-path` mid-sentence — rule docs, this file — is inert. The end
/// marker is checked first so `lint:hot-path-end` is not misread as a
/// start (it contains the start text as a prefix).
fn mark_hot_regions(src: &str, tokens: &[Token], out: &mut [bool]) {
    let mut open_from: Option<usize> = None;
    for t in tokens {
        if !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment) {
            continue;
        }
        let text = t
            .text(src)
            .trim_start_matches(|c: char| matches!(c, '/' | '*' | '!') || c.is_whitespace());
        if text.starts_with("lint:hot-path-end") {
            if let Some(start) = open_from.take() {
                let end = (t.line as usize - 1).min(out.len() - 1);
                for l in out.iter_mut().take(end + 1).skip(start) {
                    *l = true;
                }
            }
        } else if text.starts_with("lint:hot-path") {
            open_from.get_or_insert(t.line as usize - 1);
        }
    }
    if let Some(start) = open_from {
        // Unclosed region: runs to EOF.
        for l in out.iter_mut().skip(start) {
            *l = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_module_lines_are_test_lines() {
        let src = "fn live() { x.unwrap(); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       #[test]\n\
                       fn t() { y.unwrap(); }\n\
                   }\n\
                   fn also_live() {}\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", src.to_string());
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(3));
        assert!(f.is_test_line(5));
        assert!(f.is_test_line(6));
        assert!(!f.is_test_line(7));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nfn live() { x.unwrap(); }\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", src.to_string());
        assert!(!f.is_test_line(2));
    }

    #[test]
    fn tests_dir_files_are_entirely_test() {
        let f = SourceFile::parse("crates/x/tests/it.rs", "fn f() {}\n".to_string());
        assert!(f.is_test_line(1));
        let g = SourceFile::parse("tests/e2e.rs", "fn f() {}\n".to_string());
        assert!(g.is_test_line(1));
    }

    #[test]
    fn hot_region_markers_toggle() {
        let src = "fn cold() {}\n\
                   // lint:hot-path — kernel\n\
                   fn hot() {}\n\
                   // lint:hot-path-end\n\
                   fn cold2() {}\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", src.to_string());
        assert!(!f.is_hot_line(1));
        assert!(f.is_hot_line(3));
        assert!(!f.is_hot_line(5));
    }

    #[test]
    fn hot_marker_inside_string_is_ignored() {
        let src = "fn f() { let s = \"// lint:hot-path\"; }\nfn g() {}\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", src.to_string());
        assert!(!f.is_hot_line(2));
        assert!(!f.has_hot_region());
    }

    #[test]
    fn hot_marker_mentioned_mid_comment_is_inert() {
        let src = "/// Functions inside `lint:hot-path` regions may not allocate.\n\
                   fn documented() {}\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", src.to_string());
        assert!(!f.has_hot_region());
    }

    #[test]
    fn unclosed_hot_region_runs_to_eof() {
        let src = "// lint:hot-path\nfn h() {}\nfn i() {}\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", src.to_string());
        assert!(f.is_hot_line(3));
    }

    #[test]
    fn braces_in_strings_do_not_skew_test_regions() {
        let src = "#[cfg(test)]\n\
                   mod tests {\n\
                       const S: &str = \"}}}{{{\";\n\
                       fn t() {}\n\
                   }\n\
                   fn live() {}\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", src.to_string());
        assert!(f.is_test_line(4));
        assert!(!f.is_test_line(6));
    }
}
