//! quake-lint: std-only static analysis for the workspace's unwritten
//! contracts.
//!
//! The terascale claims this codebase reproduces rest on invariants the
//! compiler cannot see: the element kernels must stay allocation-free and
//! bit-deterministic (PR 1's steady-state guarantee, the harness property
//! tests' bit-identity pins), and the comm/recovery layer must never panic
//! mid-exchange now that `CommError` is the only legitimate failure signal
//! (PR 3). This crate makes those conventions machine-checked:
//!
//! - its own lightweight [`lexer`] (nested comments, raw/byte strings,
//!   char-vs-lifetime) so rules match token streams, never raw text;
//! - a [`rules`] engine with five invariant rules — `harness-allowlist`,
//!   `no-panic-in-comm`, `no-alloc-in-hot-path`, `unsafe-ledger`,
//!   `float-determinism`;
//! - findings as NDJSON in the quake-telemetry event shape ([`engine`]);
//! - a reviewed suppression file, `lint-baseline.txt` ([`baseline`]),
//!   whose stale entries are themselves failures;
//! - a `--deny` CLI for CI (`cargo run -p quake-lint -- --deny`).
//!
//! See DESIGN.md "Static analysis" for the rule table and the policy on
//! suppressions, hot-path markers, and the unsafe ledger.

pub mod baseline;
pub mod engine;
pub mod lexer;
pub mod rules;
pub mod source;

pub use baseline::Baseline;
pub use engine::{collect_files, discover_root, lint_workspace, ndjson, LintReport};
pub use source::SourceFile;

/// One rule violation at one source location. The message embeds the
/// offending source line, which is what baseline needles match against.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: &'static str,
    /// Repo-relative path, `/`-separated.
    pub file: String,
    /// 1-based.
    pub line: u32,
    pub message: String,
}

impl Finding {
    /// Human-readable one-liner: `path:line: [rule] message`.
    pub fn render(&self) -> String {
        format!("{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}
