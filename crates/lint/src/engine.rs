//! The workspace walk and report assembly: collect `.rs` files, run every
//! rule, apply the baseline, and render findings as NDJSON in the same
//! event shape `quake-telemetry` emits (`{"t":...,"rank":...,"event":...}`
//! leading fields), so lint findings drop into the same trace tooling as
//! solver telemetry. `quake-lint` stays dependency-free, so the small JSON
//! string escaper is replicated here rather than imported.

use std::path::{Path, PathBuf};

use crate::baseline::Baseline;
use crate::rules::{all_rules, Rule, WorkspaceCtx};
use crate::source::SourceFile;
use crate::Finding;

/// Directories scanned under the workspace root.
const SCAN_DIRS: &[&str] = &["crates", "src", "tests", "examples"];

pub struct LintReport {
    /// Findings not covered by the baseline — these fail `--deny`.
    pub findings: Vec<Finding>,
    /// Findings covered by a baseline entry (still reported in NDJSON).
    pub suppressed: Vec<Finding>,
    /// Baseline entries that matched nothing — these also fail `--deny`.
    pub stale_baseline: Vec<String>,
    pub n_files: usize,
}

impl LintReport {
    pub fn clean(&self) -> bool {
        self.findings.is_empty() && self.stale_baseline.is_empty()
    }
}

/// Collect and parse every `.rs` file under the standard scan dirs,
/// skipping `target/` and hidden directories. Paths are repo-relative with
/// `/` separators; the list is sorted so reports are deterministic.
pub fn collect_files(root: &Path) -> Vec<SourceFile> {
    let mut paths = Vec::new();
    for dir in SCAN_DIRS {
        walk(&root.join(dir), &mut paths);
    }
    paths.sort();
    paths
        .iter()
        .filter_map(|p| {
            let rel = p.strip_prefix(root).ok()?.to_string_lossy().replace('\\', "/");
            let text = std::fs::read_to_string(p).ok()?;
            Some(SourceFile::parse(&rel, text))
        })
        .collect()
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            walk(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Run `rules` over `files` (checks, then finishes), sorted by location.
pub fn apply_rules(
    files: &[SourceFile],
    rules: &mut [Box<dyn Rule>],
    unsafe_ledger: Option<&str>,
) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in files {
        for r in rules.iter_mut() {
            r.check(f, &mut out);
        }
    }
    let ctx = WorkspaceCtx { unsafe_ledger };
    for r in rules.iter_mut() {
        r.finish(&ctx, &mut out);
    }
    out.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    out
}

/// Lint the workspace at `root` with the full rule set, reading
/// `UNSAFE_LEDGER.md` and `lint-baseline.txt` from the root if present.
pub fn lint_workspace(root: &Path) -> LintReport {
    let files = collect_files(root);
    let ledger = std::fs::read_to_string(root.join("UNSAFE_LEDGER.md")).ok();
    let baseline = std::fs::read_to_string(root.join("lint-baseline.txt")).ok();
    let mut rules = all_rules();
    let findings = apply_rules(&files, &mut rules, ledger.as_deref());
    let baseline = Baseline::parse(baseline.as_deref().unwrap_or(""));
    let (findings, suppressed, stale_baseline) = baseline.apply(findings);
    LintReport { findings, suppressed, stale_baseline, n_files: files.len() }
}

/// Walk upward from `start` to the first directory whose `Cargo.toml`
/// declares `[workspace]` — the default `--root`.
pub fn discover_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Render the report as NDJSON, one event per line, telemetry-shaped:
/// `t` is fixed at 0.0 (lint output is deterministic by design — no
/// wall-clock in the event stream) and `rank` at 0.
pub fn ndjson(report: &LintReport) -> String {
    let mut s = String::new();
    for f in &report.findings {
        finding_line(&mut s, f, false);
    }
    for f in &report.suppressed {
        finding_line(&mut s, f, true);
    }
    for e in &report.stale_baseline {
        s.push_str("{\"t\":0.0,\"rank\":0,\"event\":\"lint_stale_suppression\",\"entry\":");
        escape_into(&mut s, e);
        s.push_str("}\n");
    }
    s
}

fn finding_line(s: &mut String, f: &Finding, suppressed: bool) {
    s.push_str("{\"t\":0.0,\"rank\":0,\"event\":\"lint_finding\",\"rule\":");
    escape_into(s, f.rule);
    s.push_str(",\"file\":");
    escape_into(s, &f.file);
    s.push_str(",\"line\":");
    s.push_str(&f.line.to_string());
    s.push_str(",\"suppressed\":");
    s.push_str(if suppressed { "true" } else { "false" });
    s.push_str(",\"message\":");
    escape_into(s, &f.message);
    s.push_str("}\n");
}

/// Minimal JSON string escaping (same escape set as quake-telemetry).
fn escape_into(s: &mut String, v: &str) {
    s.push('"');
    for c in v.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\r' => s.push_str("\\r"),
            '\t' => s.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                s.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => s.push(c),
        }
    }
    s.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ndjson_lines_are_telemetry_shaped_and_escaped() {
        let report = LintReport {
            findings: vec![Finding {
                rule: "no-panic-in-comm",
                file: "crates/x/src/lib.rs".to_string(),
                line: 7,
                message: "`x.expect(\"boom\")` — say \"no\"\tplease".to_string(),
            }],
            suppressed: vec![],
            stale_baseline: vec!["line 3: rule path needle".to_string()],
            n_files: 1,
        };
        let out = ndjson(&report);
        let mut lines = out.lines();
        let l1 = lines.next().unwrap();
        assert!(l1.starts_with("{\"t\":0.0,\"rank\":0,\"event\":\"lint_finding\""));
        assert!(l1.contains("\"line\":7"));
        assert!(l1.contains("\\\"boom\\\""));
        assert!(l1.contains("\\t"));
        assert!(l1.contains("\"suppressed\":false"));
        let l2 = lines.next().unwrap();
        assert!(l2.contains("lint_stale_suppression"));
        assert!(lines.next().is_none());
    }
}
