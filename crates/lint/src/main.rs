//! The quake-lint CLI.
//!
//! ```text
//! quake-lint [--root DIR] [--deny] [--ndjson FILE] [--list-rules]
//! ```
//!
//! - `--root DIR`: workspace root (default: walk up from the current
//!   directory to the first `Cargo.toml` containing `[workspace]`).
//! - `--deny`: exit nonzero if any unsuppressed finding OR stale baseline
//!   entry exists — the CI mode.
//! - `--ndjson FILE`: also write every finding (suppressed included) and
//!   stale-baseline event as NDJSON, telemetry-shaped.
//! - `--list-rules`: print the rule table and exit.
//!
//! `lint-baseline.txt` and `UNSAFE_LEDGER.md` are read from the root.

use std::path::PathBuf;
use std::process::ExitCode;

use quake_lint::rules::all_rules;
use quake_lint::{discover_root, lint_workspace, ndjson};

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut deny = false;
    let mut ndjson_path: Option<PathBuf> = None;
    let mut list_rules = false;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--deny" => deny = true,
            "--ndjson" => ndjson_path = args.next().map(PathBuf::from),
            "--list-rules" => list_rules = true,
            "--help" | "-h" => {
                eprintln!("usage: quake-lint [--root DIR] [--deny] [--ndjson FILE] [--list-rules]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("quake-lint: unknown argument `{other}` (see --help)");
                return ExitCode::FAILURE;
            }
        }
    }

    if list_rules {
        for r in all_rules() {
            println!("{:<22} {}", r.id(), r.description());
        }
        return ExitCode::SUCCESS;
    }

    let root = match root.or_else(|| std::env::current_dir().ok().and_then(|d| discover_root(&d))) {
        Some(r) => r,
        None => {
            eprintln!("quake-lint: no workspace root found (pass --root)");
            return ExitCode::FAILURE;
        }
    };

    let report = lint_workspace(&root);

    if let Some(path) = &ndjson_path {
        if let Err(e) = std::fs::write(path, ndjson(&report)) {
            eprintln!("quake-lint: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }

    for f in &report.findings {
        println!("{}", f.render());
    }
    for e in &report.stale_baseline {
        println!("lint-baseline.txt {e}: stale suppression (matches no finding) — delete it");
    }
    println!(
        "quake-lint: {} finding(s), {} suppressed by lint-baseline.txt, {} stale \
         suppression(s) ({} files)",
        report.findings.len(),
        report.suppressed.len(),
        report.stale_baseline.len(),
        report.n_files,
    );

    if deny && !report.clean() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
