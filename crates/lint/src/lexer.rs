//! A lightweight Rust lexer — just enough structure to walk source safely.
//!
//! The rules in this crate match *token* sequences, never raw text, so a
//! `panic!` inside a string literal, a `pub fn run_x` quoted in a doc
//! comment, or a `.unwrap()` shown in an example string can never produce a
//! false finding. That pushes all the difficulty into the token boundaries,
//! which this lexer gets right for the constructs that actually appear in
//! (and confuse greps over) real Rust:
//!
//! - line comments (`//`, `///`, `//!`) and **nested** block comments,
//! - string literals with escapes, raw strings with any `#` count, byte
//!   strings and raw byte strings,
//! - `'a'` char literals (including escapes and `b'x'`) vs `'a` lifetimes,
//! - numeric literals with type suffixes, hex digits, and exponents.
//!
//! It deliberately does NOT build an AST: items, generics, and expressions
//! stay a flat token stream, which is exactly the level the invariant rules
//! need (adjacent-token patterns plus brace matching).

/// Token classification. Comments are kept as tokens — region detection
/// (`lint:hot-path` markers, `SAFETY:` comments) reads them.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// `'a`, `'static`, `'_` — a quote introducing a lifetime, not a char.
    Lifetime,
    /// `'x'`, `'\n'`, `b'x'`, `'é'`.
    CharLit,
    /// `"..."`, `r"..."`, `r#"..."#`, `b"..."`, `br##"..."##`.
    StrLit,
    /// Integer or float literal, any base, with optional suffix/exponent.
    NumLit,
    /// `// ...` up to (not including) the newline; doc comments too.
    LineComment,
    /// `/* ... */`, nested to any depth.
    BlockComment,
    /// Any other single character (`{`, `.`, `!`, `#`, ...).
    Punct,
}

#[derive(Clone, Copy, Debug)]
pub struct Token {
    pub kind: TokKind,
    /// Byte range in the source text.
    pub start: usize,
    pub end: usize,
    /// 1-based line of the token's first byte.
    pub line: u32,
}

impl Token {
    /// The token's text within `src` (the string it was lexed from).
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }

    /// True for `Punct` tokens whose single character is `c`.
    pub fn is_punct(&self, src: &str, c: char) -> bool {
        self.kind == TokKind::Punct && self.text(src).starts_with(c)
    }
}

/// Lex `text` into a flat token stream. Never fails: malformed input
/// (unterminated strings/comments) produces a token running to EOF, so the
/// rules degrade gracefully instead of panicking on odd fixtures.
pub fn lex(text: &str) -> Vec<Token> {
    Lexer { text, b: text.as_bytes(), pos: 0, line: 1, toks: Vec::new() }.run()
}

struct Lexer<'a> {
    text: &'a str,
    b: &'a [u8],
    pos: usize,
    line: u32,
    toks: Vec<Token>,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

impl Lexer<'_> {
    fn peek(&self, k: usize) -> u8 {
        self.b.get(self.pos + k).copied().unwrap_or(0)
    }

    fn at(&self, i: usize) -> u8 {
        self.b.get(i).copied().unwrap_or(0)
    }

    /// Move to `end`, counting newlines in the consumed range so token line
    /// numbers stay correct across multi-line strings and comments.
    fn advance_to(&mut self, end: usize) {
        let end = end.min(self.b.len());
        for i in self.pos..end {
            if self.b[i] == b'\n' {
                self.line += 1;
            }
        }
        self.pos = end;
    }

    fn emit(&mut self, kind: TokKind, start: usize, end: usize, line: u32) {
        self.advance_to(end);
        self.toks.push(Token { kind, start, end: self.pos, line });
    }

    fn run(mut self) -> Vec<Token> {
        while self.pos < self.b.len() {
            let start = self.pos;
            let line = self.line;
            let c = self.b[self.pos];
            match c {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b' ' | b'\t' | b'\r' => self.pos += 1,
                b'/' if self.peek(1) == b'/' => {
                    let end = self.scan_line_comment(start);
                    self.emit(TokKind::LineComment, start, end, line);
                }
                b'/' if self.peek(1) == b'*' => {
                    let end = self.scan_block_comment(start);
                    self.emit(TokKind::BlockComment, start, end, line);
                }
                b'r' | b'b' => match self.raw_or_byte(start) {
                    Some((kind, end)) => self.emit(kind, start, end, line),
                    None => {
                        let end = self.scan_ident(start);
                        self.emit(TokKind::Ident, start, end, line);
                    }
                },
                b'"' => {
                    let end = self.scan_string(start + 1);
                    self.emit(TokKind::StrLit, start, end, line);
                }
                b'\'' => self.char_or_lifetime(start, line),
                _ if is_ident_start(c) => {
                    let end = self.scan_ident(start);
                    self.emit(TokKind::Ident, start, end, line);
                }
                b'0'..=b'9' => {
                    let end = self.scan_number(start);
                    self.emit(TokKind::NumLit, start, end, line);
                }
                _ => {
                    // Single-character punctuation. Skip whole chars so a
                    // stray non-ASCII byte can't desynchronize the lexer.
                    let end = start + self.char_len(start);
                    self.emit(TokKind::Punct, start, end, line);
                }
            }
        }
        self.toks
    }

    /// Byte length of the UTF-8 char starting at `i` (1 if out of range).
    fn char_len(&self, i: usize) -> usize {
        self.text.get(i..).and_then(|s| s.chars().next()).map_or(1, |c| c.len_utf8())
    }

    fn scan_line_comment(&self, mut j: usize) -> usize {
        while j < self.b.len() && self.b[j] != b'\n' {
            j += 1;
        }
        j
    }

    /// `j` at the opening `/`. Handles nesting: `/* a /* b */ c */`.
    fn scan_block_comment(&self, mut j: usize) -> usize {
        let n = self.b.len();
        let mut depth = 0usize;
        while j < n {
            if self.b[j] == b'/' && self.at(j + 1) == b'*' {
                depth += 1;
                j += 2;
            } else if self.b[j] == b'*' && self.at(j + 1) == b'/' {
                depth -= 1;
                j += 2;
                if depth == 0 {
                    return j;
                }
            } else {
                j += 1;
            }
        }
        n
    }

    /// `j` just past the opening quote of a (possibly byte) string.
    fn scan_string(&self, mut j: usize) -> usize {
        let n = self.b.len();
        while j < n {
            match self.b[j] {
                b'\\' => j += 2,
                b'"' => return j + 1,
                _ => j += 1,
            }
        }
        n
    }

    /// `j` just past the opening quote of a raw string with `hashes` hashes.
    fn scan_raw_string(&self, mut j: usize, hashes: usize) -> usize {
        let n = self.b.len();
        while j < n {
            if self.b[j] == b'"' {
                let mut k = 0;
                while k < hashes && self.at(j + 1 + k) == b'#' {
                    k += 1;
                }
                if k == hashes {
                    return j + 1 + hashes;
                }
            }
            j += 1;
        }
        n
    }

    /// `j` just past the opening quote of a char-like literal. Escapes
    /// (`\'`, `\\`, `\u{..}`) cannot hide the closing quote from this scan.
    fn scan_char_like(&self, mut j: usize) -> usize {
        let n = self.b.len();
        while j < n {
            match self.b[j] {
                b'\\' => j += 2,
                b'\'' => return j + 1,
                _ => j += 1,
            }
        }
        n
    }

    fn scan_ident(&self, j: usize) -> usize {
        let mut end = j;
        for (off, ch) in self.text[j..].char_indices() {
            if ch.is_alphanumeric() || ch == '_' {
                end = j + off + ch.len_utf8();
            } else {
                break;
            }
        }
        end
    }

    /// `j` at the first digit. Covers `0x1F`, `1_000u64`, `2.5e-3f64`,
    /// but leaves `0..n` as NumLit + two Puncts (`.` not followed by a
    /// digit stays punctuation).
    fn scan_number(&self, mut j: usize) -> usize {
        let n = self.b.len();
        let alnum = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
        while j < n && alnum(self.b[j]) {
            j += 1;
        }
        if j < n && self.b[j] == b'.' && self.at(j + 1).is_ascii_digit() {
            j += 1;
            while j < n && alnum(self.b[j]) {
                j += 1;
            }
        }
        if j > 0
            && j < n
            && (self.b[j] == b'+' || self.b[j] == b'-')
            && matches!(self.b[j - 1], b'e' | b'E')
            && self.at(j + 1).is_ascii_digit()
        {
            j += 1;
            while j < n && alnum(self.b[j]) {
                j += 1;
            }
        }
        j
    }

    /// Literals that start with `r` or `b`. Returns `None` when the prefix
    /// turns out to be an ordinary identifier (`rate`, `bytes`, `r#ident` —
    /// the latter lexes as `r` `#` `ident`, fine for rule purposes).
    fn raw_or_byte(&self, i: usize) -> Option<(TokKind, usize)> {
        let c = self.b[i];
        if c == b'b' && self.at(i + 1) == b'\'' {
            return Some((TokKind::CharLit, self.scan_char_like(i + 2)));
        }
        if c == b'b' && self.at(i + 1) == b'"' {
            return Some((TokKind::StrLit, self.scan_string(i + 2)));
        }
        let prefix = match (c, self.at(i + 1)) {
            (b'r', _) => 1,
            (b'b', b'r') => 2,
            _ => return None,
        };
        let mut hashes = 0;
        while self.at(i + prefix + hashes) == b'#' {
            hashes += 1;
        }
        if self.at(i + prefix + hashes) != b'"' {
            return None;
        }
        Some((TokKind::StrLit, self.scan_raw_string(i + prefix + hashes + 1, hashes)))
    }

    /// `start` at a `'`: decide char literal vs lifetime. The rule: after
    /// an escape it is always a char; after a single ident-start character
    /// it is a char only if the *next* char is the closing quote (`'a'`),
    /// otherwise a lifetime (`'a`, `'static`, `'_`); anything else
    /// (`'9'`, `' '`, `'é'`) is a char literal.
    fn char_or_lifetime(&mut self, start: usize, line: u32) {
        let next = self.at(start + 1);
        if next == b'\\' {
            let end = self.scan_char_like(start + 1);
            self.emit(TokKind::CharLit, start, end, line);
        } else if is_ident_start(next) {
            let after_one = start + 1 + self.char_len(start + 1);
            if self.at(after_one) == b'\'' {
                self.emit(TokKind::CharLit, start, after_one + 1, line);
            } else {
                let end = self.scan_ident(start + 1);
                self.emit(TokKind::Lifetime, start, end, line);
            }
        } else if next == 0 || next == b'\n' || next == b'\'' {
            // Stray quote (or `''`): punctuation, don't swallow the file.
            self.emit(TokKind::Punct, start, start + 1, line);
        } else {
            let after_one = start + 1 + self.char_len(start + 1);
            if self.at(after_one) == b'\'' {
                self.emit(TokKind::CharLit, start, after_one + 1, line);
            } else {
                self.emit(TokKind::Punct, start, start + 1, line);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).iter().map(|t| (t.kind, t.text(src).to_string())).collect()
    }

    #[test]
    fn nested_block_comments_are_one_token() {
        let src = "/* a /* b /* c */ */ d */ let x = 1;";
        let toks = kinds(src);
        assert_eq!(toks[0].0, TokKind::BlockComment);
        assert_eq!(toks[0].1, "/* a /* b /* c */ */ d */");
        assert_eq!(toks[1], (TokKind::Ident, "let".to_string()));
    }

    #[test]
    fn raw_strings_with_hashes_hide_their_contents() {
        let src = r####"let s = r##"quote " and "# inside"##; panic!()"####;
        let toks = kinds(src);
        let s = toks.iter().find(|(k, _)| *k == TokKind::StrLit).unwrap();
        assert_eq!(s.1, r###"r##"quote " and "# inside"##"###);
        // The panic! AFTER the raw string is still visible as an ident.
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "panic"));
    }

    #[test]
    fn lifetime_vs_char_literal() {
        let src = "fn f<'a>(x: &'a str, c: char) { let c = 'a'; let u = '\\u{1F600}'; }";
        let toks = kinds(src);
        let lifetimes: Vec<_> =
            toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).map(|(_, t)| t.clone()).collect();
        let chars: Vec<_> =
            toks.iter().filter(|(k, _)| *k == TokKind::CharLit).map(|(_, t)| t.clone()).collect();
        assert_eq!(lifetimes, vec!["'a", "'a"]);
        assert_eq!(chars, vec!["'a'", "'\\u{1F600}'"]);
    }

    #[test]
    fn static_lifetime_and_underscore() {
        let src = "fn g(x: &'static str) -> &'_ str { let y = '_'; x }";
        let toks = kinds(src);
        let lifetimes: Vec<_> =
            toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).map(|(_, t)| t.clone()).collect();
        assert_eq!(lifetimes, vec!["'static", "'_"]);
        assert!(toks.contains(&(TokKind::CharLit, "'_'".to_string())));
    }

    #[test]
    fn string_embedded_panic_is_not_an_ident() {
        let src = r#"let msg = "call panic!(\"no\") and x.unwrap() here"; ok()"#;
        let toks = kinds(src);
        assert!(!toks.iter().any(|(k, t)| *k == TokKind::Ident && (t == "panic" || t == "unwrap")));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "ok"));
    }

    #[test]
    fn byte_and_raw_byte_literals() {
        let src = r##"let a = b"bytes"; let b = br#"raw " bytes"#; let c = b'\n';"##;
        let toks = kinds(src);
        let strs: Vec<_> =
            toks.iter().filter(|(k, _)| *k == TokKind::StrLit).map(|(_, t)| t.clone()).collect();
        assert_eq!(strs, vec![r#"b"bytes""#, r##"br#"raw " bytes"#"##]);
        assert!(toks.contains(&(TokKind::CharLit, r"b'\n'".to_string())));
    }

    #[test]
    fn idents_starting_with_r_and_b_stay_idents() {
        let src = "let rate = bytes + rb + r; r#type";
        let toks = kinds(src);
        for name in ["rate", "bytes", "rb", "r"] {
            assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && t == name), "{name}");
        }
        assert!(!toks.iter().any(|(k, _)| *k == TokKind::StrLit));
    }

    #[test]
    fn numbers_with_suffixes_and_exponents() {
        let src = "let x = 2.5e-3f64 + 0x1F + 1_000u64; let r = 0..n; a.0";
        let toks = kinds(src);
        let nums: Vec<_> =
            toks.iter().filter(|(k, _)| *k == TokKind::NumLit).map(|(_, t)| t.clone()).collect();
        assert_eq!(nums, vec!["2.5e-3f64", "0x1F", "1_000u64", "0", "0"]);
    }

    #[test]
    fn line_numbers_track_multiline_tokens() {
        let src = "/* one\ntwo */\nfn f() {\n    panic!(\"x\")\n}\n";
        let toks = lex(src);
        let f = toks.iter().find(|t| t.text(src) == "fn").unwrap();
        assert_eq!(f.line, 3);
        let p = toks.iter().find(|t| t.text(src) == "panic").unwrap();
        assert_eq!(p.line, 4);
    }

    #[test]
    fn escaped_quote_in_char_literal() {
        let src = r"let q = '\''; let b = '\\';";
        let toks = kinds(src);
        let chars: Vec<_> =
            toks.iter().filter(|(k, _)| *k == TokKind::CharLit).map(|(_, t)| t.clone()).collect();
        assert_eq!(chars, vec![r"'\''", r"'\\'"]);
    }
}
