//! The suppression baseline (`lint-baseline.txt`): the only way to silence
//! a finding, and deliberately a checked-in, reviewed file so every
//! exception is visible in code review with its justification inline.
//!
//! Format — one entry per line, `#` comments and blank lines ignored:
//!
//! ```text
//! <rule-id> <file-path> <needle>
//! ```
//!
//! An entry suppresses findings of `rule-id` in `file-path` whose message
//! contains `needle` (the message always embeds the offending source line,
//! so the needle is typically a stable fragment of that line). The needle
//! may contain spaces; an omitted needle matches any finding of that rule
//! in that file (discouraged — prefer a needle).
//!
//! **Stale entries are themselves findings**: an entry that suppresses
//! nothing fails `--deny`, so the baseline can only shrink or be edited
//! deliberately, never rot.

use crate::Finding;

#[derive(Debug, Clone)]
pub struct BaselineEntry {
    pub rule: String,
    pub path: String,
    pub needle: String,
    /// 1-based line in the baseline file, for stale reporting.
    pub line_no: usize,
}

impl BaselineEntry {
    fn matches(&self, f: &Finding) -> bool {
        self.rule == f.rule
            && self.path == f.file
            && (self.needle.is_empty() || f.message.contains(&self.needle))
    }
}

#[derive(Debug, Default)]
pub struct Baseline {
    pub entries: Vec<BaselineEntry>,
}

impl Baseline {
    pub fn parse(text: &str) -> Baseline {
        let mut entries = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(3, char::is_whitespace);
            let (Some(rule), Some(path)) = (parts.next(), parts.next()) else {
                continue;
            };
            entries.push(BaselineEntry {
                rule: rule.to_string(),
                path: path.to_string(),
                needle: parts.next().unwrap_or("").trim().to_string(),
                line_no: i + 1,
            });
        }
        Baseline { entries }
    }

    /// Split findings into (kept, suppressed) and report entries that
    /// matched nothing as stale, formatted `line N: <rule> <path> <needle>`.
    pub fn apply(&self, findings: Vec<Finding>) -> (Vec<Finding>, Vec<Finding>, Vec<String>) {
        let mut used = vec![false; self.entries.len()];
        let mut kept = Vec::new();
        let mut suppressed = Vec::new();
        for f in findings {
            let mut hit = false;
            for (i, e) in self.entries.iter().enumerate() {
                if e.matches(&f) {
                    used[i] = true;
                    hit = true;
                }
            }
            if hit {
                suppressed.push(f);
            } else {
                kept.push(f);
            }
        }
        let stale = self
            .entries
            .iter()
            .zip(&used)
            .filter(|(_, &u)| !u)
            .map(|(e, _)| format!("line {}: {} {} {}", e.line_no, e.rule, e.path, e.needle))
            .collect();
        (kept, suppressed, stale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, file: &str, message: &str) -> Finding {
        Finding { rule, file: file.to_string(), line: 1, message: message.to_string() }
    }

    #[test]
    fn needle_suppresses_matching_findings_only() {
        let b = Baseline::parse(
            "# comment\n\
             no-panic-in-comm crates/parcomm/src/lib.rs expect(\"peer rank hung up\")\n",
        );
        let fs = vec![
            finding(
                "no-panic-in-comm",
                "crates/parcomm/src/lib.rs",
                "`x.expect(\"peer rank hung up\")`",
            ),
            finding("no-panic-in-comm", "crates/parcomm/src/lib.rs", "`y.unwrap()`"),
            finding(
                "no-panic-in-comm",
                "crates/ckpt/src/format.rs",
                "`x.expect(\"peer rank hung up\")`",
            ),
        ];
        let (kept, suppressed, stale) = b.apply(fs);
        assert_eq!(suppressed.len(), 1);
        assert_eq!(kept.len(), 2);
        assert!(stale.is_empty());
    }

    #[test]
    fn one_entry_may_suppress_many_findings() {
        let b = Baseline::parse("no-panic-in-comm crates/parcomm/src/lib.rs hung up\n");
        let fs = vec![
            finding("no-panic-in-comm", "crates/parcomm/src/lib.rs", "`a` hung up"),
            finding("no-panic-in-comm", "crates/parcomm/src/lib.rs", "`b` hung up"),
        ];
        let (kept, suppressed, stale) = b.apply(fs);
        assert!(kept.is_empty());
        assert_eq!(suppressed.len(), 2);
        assert!(stale.is_empty());
    }

    #[test]
    fn unused_entries_are_stale() {
        let b = Baseline::parse("no-alloc-in-hot-path crates/solver/src/elastic.rs gone_code\n");
        let (kept, suppressed, stale) = b.apply(vec![]);
        assert!(kept.is_empty() && suppressed.is_empty());
        assert_eq!(stale.len(), 1);
        assert!(stale[0].contains("gone_code"), "{}", stale[0]);
    }
}
