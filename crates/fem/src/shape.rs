//! Shape functions on unit reference elements.
//!
//! Node ordering is bit-coded: node `i` of the hex sits at
//! `((i & 1), (i >> 1) & 1, (i >> 2) & 1)` on the unit cube, and likewise for
//! the quad on the unit square. This makes octree-corner <-> node-index maps
//! trivial throughout the workspace.

/// Trilinear shape functions of the 8-node hex at `xi` in `[0,1]^3`.
pub fn hex8_n(xi: [f64; 3]) -> [f64; 8] {
    let mut n = [0.0; 8];
    for (i, ni) in n.iter_mut().enumerate() {
        let fx = if i & 1 == 0 { 1.0 - xi[0] } else { xi[0] };
        let fy = if (i >> 1) & 1 == 0 { 1.0 - xi[1] } else { xi[1] };
        let fz = if (i >> 2) & 1 == 0 { 1.0 - xi[2] } else { xi[2] };
        *ni = fx * fy * fz;
    }
    n
}

/// Gradients (w.r.t. reference coordinates) of the hex8 shape functions.
///
/// For a physical cube of side `h`, divide by `h`.
pub fn hex8_dn(xi: [f64; 3]) -> [[f64; 3]; 8] {
    let mut dn = [[0.0; 3]; 8];
    for (i, di) in dn.iter_mut().enumerate() {
        let fx = if i & 1 == 0 { 1.0 - xi[0] } else { xi[0] };
        let fy = if (i >> 1) & 1 == 0 { 1.0 - xi[1] } else { xi[1] };
        let fz = if (i >> 2) & 1 == 0 { 1.0 - xi[2] } else { xi[2] };
        let gx = if i & 1 == 0 { -1.0 } else { 1.0 };
        let gy = if (i >> 1) & 1 == 0 { -1.0 } else { 1.0 };
        let gz = if (i >> 2) & 1 == 0 { -1.0 } else { 1.0 };
        di[0] = gx * fy * fz;
        di[1] = fx * gy * fz;
        di[2] = fx * fy * gz;
    }
    dn
}

/// Bilinear shape functions of the 4-node quad at `xi` in `[0,1]^2`.
pub fn quad4_n(xi: [f64; 2]) -> [f64; 4] {
    let mut n = [0.0; 4];
    for (i, ni) in n.iter_mut().enumerate() {
        let fx = if i & 1 == 0 { 1.0 - xi[0] } else { xi[0] };
        let fy = if (i >> 1) & 1 == 0 { 1.0 - xi[1] } else { xi[1] };
        *ni = fx * fy;
    }
    n
}

/// Reference-coordinate gradients of the quad4 shape functions.
pub fn quad4_dn(xi: [f64; 2]) -> [[f64; 2]; 4] {
    let mut dn = [[0.0; 2]; 4];
    for (i, di) in dn.iter_mut().enumerate() {
        let fx = if i & 1 == 0 { 1.0 - xi[0] } else { xi[0] };
        let fy = if (i >> 1) & 1 == 0 { 1.0 - xi[1] } else { xi[1] };
        let gx = if i & 1 == 0 { -1.0 } else { 1.0 };
        let gy = if (i >> 1) & 1 == 0 { -1.0 } else { 1.0 };
        di[0] = gx * fy;
        di[1] = fx * gy;
    }
    dn
}

/// Barycentric (linear) shape-function gradients of a tetrahedron with the
/// given vertex coordinates. Returns `(grads, volume)`; the gradients are
/// constant over the element. Panics if the element is degenerate or
/// inverted (non-positive volume).
pub fn tet4_grads(v: &[[f64; 3]; 4]) -> ([[f64; 3]; 4], f64) {
    // Volume from the scalar triple product.
    let e1 = sub(v[1], v[0]);
    let e2 = sub(v[2], v[0]);
    let e3 = sub(v[3], v[0]);
    let vol6 = dot3(e1, cross(e2, e3));
    assert!(vol6 > 1e-300, "degenerate or inverted tetrahedron (6V = {vol6})");
    let vol = vol6 / 6.0;
    // grad N_i = (opposite-face normal, inward) / (3 V); compute each from the
    // other three vertices.
    let mut g = [[0.0; 3]; 4];
    for i in 0..4 {
        let o: Vec<usize> = (0..4).filter(|&j| j != i).collect();
        let a = sub(v[o[1]], v[o[0]]);
        let b = sub(v[o[2]], v[o[0]]);
        let mut n = cross(a, b);
        // Orient toward vertex i so that N_i increases toward its own vertex.
        let to_i = sub(v[i], v[o[0]]);
        if dot3(n, to_i) < 0.0 {
            n = [-n[0], -n[1], -n[2]];
        }
        let scale = 1.0 / dot3(n, to_i);
        g[i] = [n[0] * scale, n[1] * scale, n[2] * scale];
    }
    (g, vol)
}

fn sub(a: [f64; 3], b: [f64; 3]) -> [f64; 3] {
    [a[0] - b[0], a[1] - b[1], a[2] - b[2]]
}

fn cross(a: [f64; 3], b: [f64; 3]) -> [f64; 3] {
    [a[1] * b[2] - a[2] * b[1], a[2] * b[0] - a[0] * b[2], a[0] * b[1] - a[1] * b[0]]
}

fn dot3(a: [f64; 3], b: [f64; 3]) -> f64 {
    a[0] * b[0] + a[1] * b[1] + a[2] * b[2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex8_partition_of_unity() {
        for &xi in &[[0.2, 0.7, 0.4], [0.0, 0.0, 0.0], [1.0, 1.0, 1.0], [0.5, 0.5, 0.5]] {
            let n = hex8_n(xi);
            let s: f64 = n.iter().sum();
            assert!((s - 1.0).abs() < 1e-14);
            let dn = hex8_dn(xi);
            for d in 0..3 {
                let g: f64 = dn.iter().map(|di| di[d]).sum();
                assert!(g.abs() < 1e-14, "gradient of constant must vanish");
            }
        }
    }

    #[test]
    fn hex8_kronecker_delta_at_nodes() {
        for i in 0..8usize {
            let xi = [(i & 1) as f64, ((i >> 1) & 1) as f64, ((i >> 2) & 1) as f64];
            let n = hex8_n(xi);
            for (j, nj) in n.iter().enumerate() {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((nj - expect).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn hex8_reproduces_linear_field() {
        // u(x) = 2x - 3y + z + 5 must be interpolated exactly.
        let f = |p: [f64; 3]| 2.0 * p[0] - 3.0 * p[1] + p[2] + 5.0;
        let nodal: Vec<f64> = (0..8usize)
            .map(|i| f([(i & 1) as f64, ((i >> 1) & 1) as f64, ((i >> 2) & 1) as f64]))
            .collect();
        let xi = [0.3, 0.8, 0.45];
        let n = hex8_n(xi);
        let u: f64 = n.iter().zip(&nodal).map(|(a, b)| a * b).sum();
        assert!((u - f(xi)).abs() < 1e-13);
        // Gradient must be (2,-3,1).
        let dn = hex8_dn(xi);
        for (d, expect) in [(0, 2.0), (1, -3.0), (2, 1.0)] {
            let g: f64 = dn.iter().zip(&nodal).map(|(a, b)| a[d] * b).sum();
            assert!((g - expect).abs() < 1e-13);
        }
    }

    #[test]
    fn quad4_partition_of_unity_and_delta() {
        let n = quad4_n([0.25, 0.6]);
        assert!((n.iter().sum::<f64>() - 1.0).abs() < 1e-14);
        for i in 0..4usize {
            let xi = [(i & 1) as f64, ((i >> 1) & 1) as f64];
            let n = quad4_n(xi);
            assert!((n[i] - 1.0).abs() < 1e-14);
        }
    }

    #[test]
    fn quad4_gradient_of_linear_field() {
        let f = |p: [f64; 2]| 4.0 * p[0] + 7.0 * p[1] - 2.0;
        let nodal: Vec<f64> =
            (0..4usize).map(|i| f([(i & 1) as f64, ((i >> 1) & 1) as f64])).collect();
        let dn = quad4_dn([0.1, 0.9]);
        let gx: f64 = dn.iter().zip(&nodal).map(|(a, b)| a[0] * b).sum();
        let gy: f64 = dn.iter().zip(&nodal).map(|(a, b)| a[1] * b).sum();
        assert!((gx - 4.0).abs() < 1e-13);
        assert!((gy - 7.0).abs() < 1e-13);
    }

    #[test]
    fn tet4_grads_reproduce_linear_field() {
        let v = [[0.0, 0.0, 0.0], [2.0, 0.0, 0.0], [0.0, 1.5, 0.0], [0.3, 0.2, 1.0]];
        let (g, vol) = tet4_grads(&v);
        assert!(vol > 0.0);
        let f = |p: [f64; 3]| 1.0 * p[0] - 2.0 * p[1] + 0.5 * p[2];
        // grad of interpolant = sum_i f(v_i) grad N_i must equal (1,-2,0.5).
        let mut grad = [0.0; 3];
        for i in 0..4 {
            let fi = f(v[i]);
            for d in 0..3 {
                grad[d] += fi * g[i][d];
            }
        }
        assert!((grad[0] - 1.0).abs() < 1e-12);
        assert!((grad[1] + 2.0).abs() < 1e-12);
        assert!((grad[2] - 0.5).abs() < 1e-12);
        // Partition of unity: gradients sum to zero.
        for d in 0..3 {
            let s: f64 = (0..4).map(|i| g[i][d]).sum();
            assert!(s.abs() < 1e-12);
        }
    }

    #[test]
    fn tet4_volume_of_unit_corner_tet() {
        let v = [[0.0, 0.0, 0.0], [1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]];
        let (_, vol) = tet4_grads(&v);
        assert!((vol - 1.0 / 6.0).abs() < 1e-14);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn tet4_degenerate_panics() {
        let v = [[0.0, 0.0, 0.0], [1.0, 0.0, 0.0], [2.0, 0.0, 0.0], [3.0, 0.0, 0.0]];
        let _ = tet4_grads(&v);
    }
}
