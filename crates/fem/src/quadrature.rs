//! Gauss-Legendre quadrature on the unit interval, square and cube.
//!
//! Everything is expressed on `[0,1]^d` because all reference elements in this
//! workspace live on the unit cube/square (octree leaves are axis-aligned
//! cubes and the mapping is a pure scaling).

/// A quadrature point: location in `[0,1]^d` plus weight.
#[derive(Clone, Copy, Debug)]
pub struct QPoint<const D: usize> {
    pub xi: [f64; D],
    pub w: f64,
}

/// n-point Gauss-Legendre rule on `[0,1]` (n = 1..=4).
///
/// Exact for polynomials of degree `2n-1`; the 2-point rule is what the
/// trilinear element matrices need.
pub fn gauss_1d(n: usize) -> Vec<QPoint<1>> {
    // Abscissae/weights on [-1,1], then affine map to [0,1].
    let (xs, ws): (Vec<f64>, Vec<f64>) = match n {
        1 => (vec![0.0], vec![2.0]),
        2 => {
            let a = 1.0 / 3.0f64.sqrt();
            (vec![-a, a], vec![1.0, 1.0])
        }
        3 => {
            let a = (3.0f64 / 5.0).sqrt();
            (vec![-a, 0.0, a], vec![5.0 / 9.0, 8.0 / 9.0, 5.0 / 9.0])
        }
        4 => {
            let a = (3.0 / 7.0 - 2.0 / 7.0 * (6.0f64 / 5.0).sqrt()).sqrt();
            let b = (3.0 / 7.0 + 2.0 / 7.0 * (6.0f64 / 5.0).sqrt()).sqrt();
            let wa = (18.0 + 30.0f64.sqrt()) / 36.0;
            let wb = (18.0 - 30.0f64.sqrt()) / 36.0;
            (vec![-b, -a, a, b], vec![wb, wa, wa, wb])
        }
        _ => panic!("gauss_1d supports n = 1..=4, got {n}"),
    };
    xs.iter().zip(&ws).map(|(&x, &w)| QPoint { xi: [0.5 * (x + 1.0)], w: 0.5 * w }).collect()
}

/// Tensor-product rule on the unit square.
pub fn gauss_2d(n: usize) -> Vec<QPoint<2>> {
    let g = gauss_1d(n);
    let mut out = Vec::with_capacity(n * n);
    for a in &g {
        for b in &g {
            out.push(QPoint { xi: [a.xi[0], b.xi[0]], w: a.w * b.w });
        }
    }
    out
}

/// Tensor-product rule on the unit cube.
pub fn gauss_3d(n: usize) -> Vec<QPoint<3>> {
    let g = gauss_1d(n);
    let mut out = Vec::with_capacity(n * n * n);
    for a in &g {
        for b in &g {
            for c in &g {
                out.push(QPoint { xi: [a.xi[0], b.xi[0], c.xi[0]], w: a.w * b.w * c.w });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn integrate_1d(n: usize, f: impl Fn(f64) -> f64) -> f64 {
        gauss_1d(n).iter().map(|q| q.w * f(q.xi[0])).sum()
    }

    #[test]
    fn weights_sum_to_measure() {
        for n in 1..=4 {
            let s1: f64 = gauss_1d(n).iter().map(|q| q.w).sum();
            assert!((s1 - 1.0).abs() < 1e-14, "1d n={n}");
            let s3: f64 = gauss_3d(n).iter().map(|q| q.w).sum();
            assert!((s3 - 1.0).abs() < 1e-13, "3d n={n}");
        }
    }

    #[test]
    fn two_point_rule_exact_for_cubics() {
        // int_0^1 x^3 dx = 1/4
        let v = integrate_1d(2, |x| x * x * x);
        assert!((v - 0.25).abs() < 1e-14);
    }

    #[test]
    fn two_point_rule_not_exact_for_quartics_but_three_point_is() {
        // int_0^1 x^4 dx = 1/5
        let v2 = integrate_1d(2, |x| x.powi(4));
        assert!((v2 - 0.2).abs() > 1e-6);
        let v3 = integrate_1d(3, |x| x.powi(4));
        assert!((v3 - 0.2).abs() < 1e-14);
    }

    #[test]
    fn tensor_rule_integrates_separable_polynomial() {
        // int over cube of x*y^2*z^3 = 1/2 * 1/3 * 1/4.
        let v: f64 =
            gauss_3d(2).iter().map(|q| q.w * q.xi[0] * q.xi[1] * q.xi[1] * q.xi[2].powi(3)).sum();
        assert!((v - 1.0 / 24.0).abs() < 1e-14);
    }

    #[test]
    fn four_point_rule_exact_for_degree_seven() {
        let v = integrate_1d(4, |x| x.powi(7));
        assert!((v - 0.125).abs() < 1e-13);
    }
}
