//! Linear tetrahedral elements — the *baseline* element of the paper.
//!
//! The authors' earlier earthquake codes used linear tets with node-based
//! sparse data structures; Section 2 and Fig 2.4 compare the new hexahedral
//! code against it. We reproduce that baseline: per-element 12x12 stiffness
//! from arbitrary vertex coordinates (tets are not self-similar, so unlike the
//! hexes a canonical matrix does not exist — which is exactly why the tet code
//! needed an order of magnitude more memory).

use crate::linalg::DMat;
use crate::shape::tet4_grads;

/// 12x12 elastic stiffness of a linear tet with vertices `v` and moduli
/// `(lambda, mu)`. DOF ordering is node-major (`dof = 3*node + comp`).
pub fn tet4_stiffness(v: &[[f64; 3]; 4], lambda: f64, mu: f64) -> DMat {
    let (g, vol) = tet4_grads(v);
    // Constant 6x12 B matrix (Voigt, engineering shears).
    let mut b = DMat::zeros(6, 12);
    for i in 0..4 {
        let [gx, gy, gz] = g[i];
        let c = 3 * i;
        b[(0, c)] = gx;
        b[(1, c + 1)] = gy;
        b[(2, c + 2)] = gz;
        b[(3, c)] = gy;
        b[(3, c + 1)] = gx;
        b[(4, c + 1)] = gz;
        b[(4, c + 2)] = gy;
        b[(5, c)] = gz;
        b[(5, c + 2)] = gx;
    }
    // D = lambda m m^T + mu diag(2,2,2,1,1,1).
    let mut d = DMat::zeros(6, 6);
    for r in 0..3 {
        for c in 0..3 {
            d[(r, c)] = lambda;
        }
        d[(r, r)] += 2.0 * mu;
    }
    for r in 3..6 {
        d[(r, r)] = mu;
    }
    let mut k = b.transpose().mul(&d.mul(&b));
    k.scale_in_place(vol);
    k
}

/// Lumped nodal mass of a tet: `rho * V / 4` per node.
pub fn tet4_lumped_mass(v: &[[f64; 3]; 4], rho: f64) -> f64 {
    let (_, vol) = tet4_grads(v);
    rho * vol / 4.0
}

/// Split a unit-ordering hexahedron (bit-coded corners, see `crate::shape`)
/// into 6 tetrahedra sharing the main diagonal 0-7.
///
/// Returns local hex-corner indices for each tet. All tets are positively
/// oriented for an axis-aligned cube.
pub const HEX_TO_TETS: [[usize; 4]; 6] =
    [[0, 1, 3, 7], [0, 3, 2, 7], [0, 2, 6, 7], [0, 6, 4, 7], [0, 4, 5, 7], [0, 5, 1, 7]];

#[cfg(test)]
mod tests {
    use super::*;

    fn corner(i: usize, h: f64) -> [f64; 3] {
        [(i & 1) as f64 * h, ((i >> 1) & 1) as f64 * h, ((i >> 2) & 1) as f64 * h]
    }

    #[test]
    fn hex_to_tets_tile_the_cube() {
        let mut vol = 0.0;
        for t in HEX_TO_TETS {
            let v = [corner(t[0], 2.0), corner(t[1], 2.0), corner(t[2], 2.0), corner(t[3], 2.0)];
            let (_, tv) = tet4_grads(&v);
            assert!(tv > 0.0, "tet {t:?} inverted");
            vol += tv;
        }
        assert!((vol - 8.0).abs() < 1e-12);
    }

    #[test]
    fn tet_stiffness_symmetric_and_rigid_modes() {
        let v = [[0.0, 0.0, 0.0], [1.0, 0.1, 0.0], [0.2, 1.3, 0.0], [0.1, 0.2, 0.9]];
        let k = tet4_stiffness(&v, 1.4, 0.8);
        for r in 0..12 {
            for c in 0..12 {
                assert!((k[(r, c)] - k[(c, r)]).abs() < 1e-12);
            }
        }
        // Rigid translation nullspace.
        for comp in 0..3 {
            let mut u = vec![0.0; 12];
            for n in 0..4 {
                u[3 * n + comp] = 1.0;
            }
            let f = k.mul_vec(&u);
            for fi in f {
                assert!(fi.abs() < 1e-11);
            }
        }
        // Rigid rotation about z.
        let mut u = vec![0.0; 12];
        for n in 0..4 {
            u[3 * n] = -v[n][1];
            u[3 * n + 1] = v[n][0];
        }
        let f = k.mul_vec(&u);
        for fi in f {
            assert!(fi.abs() < 1e-11);
        }
    }

    #[test]
    fn tet_mesh_of_cube_matches_hex_uniaxial_energy() {
        // Both discretizations reproduce a linear displacement field exactly,
        // so the strain energy of u = (x,0,0) must agree with the continuum.
        let (lambda, mu) = (1.0, 1.0);
        let mut energy = 0.0;
        for t in HEX_TO_TETS {
            let v = [corner(t[0], 1.0), corner(t[1], 1.0), corner(t[2], 1.0), corner(t[3], 1.0)];
            let k = tet4_stiffness(&v, lambda, mu);
            let mut u = vec![0.0; 12];
            for n in 0..4 {
                u[3 * n] = v[n][0];
            }
            let f = k.mul_vec(&u);
            energy += 0.5 * crate::linalg::dot(&u, &f);
        }
        assert!((energy - 0.5 * (lambda + 2.0 * mu)).abs() < 1e-12);
    }

    #[test]
    fn tet_lumped_mass_total_is_rho_v() {
        let v = [[0.0, 0.0, 0.0], [1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]];
        let m = tet4_lumped_mass(&v, 6.0);
        assert!((4.0 * m - 6.0 / 6.0).abs() < 1e-13);
    }
}
