//! Canonical trilinear hexahedral element matrices.
//!
//! Every element in an octree mesh is an axis-aligned cube, so the elastic
//! stiffness of an element with side `h` and Lame moduli `(lambda, mu)` is
//!
//! ```text
//! K_e = h * (lambda * K_L + mu * K_M)
//! ```
//!
//! for two *constant* 24x24 matrices computed once here. This is the paper's
//! key memory optimization: no element (let alone global) stiffness storage —
//! just two canonical matrices plus per-element `(h, lambda, mu, rho)`
//! vectors. The scalar (acoustic / SH) analogue is an 8x8 matrix with
//! `K_e = h * mu * K_S`.
//!
//! DOF ordering for the elastic matrices is node-major: `dof = 3*node + comp`.

use crate::quadrature::gauss_3d;
use crate::shape::hex8_dn;
use std::sync::OnceLock;

/// The two canonical 24x24 elastic stiffness factors plus the 8x8 scalar
/// stiffness and the 8x8 consistent mass (all on the unit cube).
#[derive(Clone, Debug)]
pub struct ElasticHexMatrices {
    /// Lambda (volumetric) part; multiply by `h * lambda`.
    pub k_lambda: [[f64; 24]; 24],
    /// Mu (shear) part; multiply by `h * mu`.
    pub k_mu: [[f64; 24]; 24],
    /// Combined `K = h (lambda K_L + mu K_M)` diagonal helper: the diagonal of
    /// `K_L` and `K_M` (used to split diagonal/off-diagonal damping in the
    /// paper's explicit update (2.4)).
    pub k_lambda_diag: [f64; 24],
    pub k_mu_diag: [f64; 24],
}

static ELASTIC: OnceLock<ElasticHexMatrices> = OnceLock::new();
static SCALAR: OnceLock<[[f64; 8]; 8]> = OnceLock::new();
static MASS_CONSISTENT: OnceLock<[[f64; 8]; 8]> = OnceLock::new();

/// Canonical elastic hex matrices (computed once, 2x2x2 Gauss — exact for
/// trilinear basis on affine cubes).
pub fn elastic_hex_matrices() -> &'static ElasticHexMatrices {
    ELASTIC.get_or_init(|| {
        let mut kl = [[0.0; 24]; 24];
        let mut km = [[0.0; 24]; 24];
        for q in gauss_3d(2) {
            let dn = hex8_dn(q.xi);
            // Build the 6x24 strain-displacement matrix B (Voigt order
            // [exx, eyy, ezz, gxy, gyz, gzx], engineering shears).
            let mut b = [[0.0; 24]; 6];
            for i in 0..8 {
                let [gx, gy, gz] = dn[i];
                let c = 3 * i;
                b[0][c] = gx;
                b[1][c + 1] = gy;
                b[2][c + 2] = gz;
                b[3][c] = gy;
                b[3][c + 1] = gx;
                b[4][c + 1] = gz;
                b[4][c + 2] = gy;
                b[5][c] = gz;
                b[5][c + 2] = gx;
            }
            // D_lambda = m m^T with m = [1,1,1,0,0,0];
            // D_mu = diag(2,2,2,1,1,1).
            for r in 0..24 {
                for c in 0..24 {
                    let div_r = b[0][r] + b[1][r] + b[2][r];
                    let div_c = b[0][c] + b[1][c] + b[2][c];
                    kl[r][c] += q.w * div_r * div_c;
                    let mut mu_rc = 0.0;
                    for k in 0..3 {
                        mu_rc += 2.0 * b[k][r] * b[k][c];
                    }
                    for k in 3..6 {
                        mu_rc += b[k][r] * b[k][c];
                    }
                    km[r][c] += q.w * mu_rc;
                }
            }
        }
        let mut kld = [0.0; 24];
        let mut kmd = [0.0; 24];
        for i in 0..24 {
            kld[i] = kl[i][i];
            kmd[i] = km[i][i];
        }
        ElasticHexMatrices { k_lambda: kl, k_mu: km, k_lambda_diag: kld, k_mu_diag: kmd }
    })
}

/// Canonical scalar stiffness on the unit cube: `K_e = h * mu * K_S`.
pub fn scalar_hex_stiffness() -> &'static [[f64; 8]; 8] {
    SCALAR.get_or_init(|| {
        let mut k = [[0.0; 8]; 8];
        for q in gauss_3d(2) {
            let dn = hex8_dn(q.xi);
            for r in 0..8 {
                for c in 0..8 {
                    k[r][c] +=
                        q.w * (dn[r][0] * dn[c][0] + dn[r][1] * dn[c][1] + dn[r][2] * dn[c][2]);
                }
            }
        }
        k
    })
}

/// Consistent scalar mass on the unit cube: `M_e = rho h^3 * M_C`.
///
/// The production solvers lump (`rho h^3 / 8` per node); the consistent matrix
/// is kept for the lumped-vs-consistent ablation bench.
pub fn consistent_hex_mass() -> &'static [[f64; 8]; 8] {
    MASS_CONSISTENT.get_or_init(|| {
        let mut m = [[0.0; 8]; 8];
        for q in gauss_3d(2) {
            let n = crate::shape::hex8_n(q.xi);
            for r in 0..8 {
                for c in 0..8 {
                    m[r][c] += q.w * n[r] * n[c];
                }
            }
        }
        m
    })
}

/// Lumped nodal mass of a hex of side `h` and density `rho`.
#[inline]
pub fn lumped_hex_mass(rho: f64, h: f64) -> f64 {
    rho * h * h * h / 8.0
}

/// Combined stiffness template `T = h (lambda K_L + mu K_M)` as a flat
/// row-major 24x24 matrix (`t[r * 24 + c]`).
///
/// On an octree mesh every element of a given level has the same side `h`,
/// so elements sharing `(h, lambda, mu)` share this exact matrix. The solver
/// precomputes one template per distinct class (a handful per mesh: levels x
/// materials) and the element sweep applies a single 24x24 matvec against
/// it, instead of combining the two canonical matrices on the fly — half the
/// flops and half the matrix traffic per element.
///
/// Build-time only; the per-step kernel lives in `quake-solver`.
pub fn combined_hex_stiffness(lambda: f64, mu: f64, h: f64) -> [f64; 576] {
    let m = elastic_hex_matrices();
    let mut t = [0.0; 576];
    for r in 0..24 {
        for c in 0..24 {
            t[r * 24 + c] = h * (lambda * m.k_lambda[r][c] + mu * m.k_mu[r][c]);
        }
    }
    t
}

#[inline(always)]
fn sum4(a: [f64; 4]) -> f64 {
    (a[0] + a[1]) + (a[2] + a[3])
}

// lint:hot-path — the innermost element matvecs; pure fixed-size array
// arithmetic, executed once (or twice) per element per step.
/// `y += scale * (lambda*K_L + mu*K_M) x` for 24-vectors — the element matvec
/// at the heart of the wave solver.
///
/// The inner loop runs over six blocks of four columns with four independent
/// lane accumulators per canonical matrix, a shape the auto-vectorizer maps
/// onto 256-bit FMA lanes without a reduction dependency per column.
///
/// Flop count: 24*24*4 + 24*4 muls/adds ~ 2400 flops (see `quake-machine`).
#[inline]
pub fn elastic_matvec(
    m: &ElasticHexMatrices,
    lambda: f64,
    mu: f64,
    scale: f64,
    x: &[f64; 24],
    y: &mut [f64; 24],
) {
    for r in 0..24 {
        let rl = &m.k_lambda[r];
        let rm = &m.k_mu[r];
        let mut al = [0.0; 4];
        let mut am = [0.0; 4];
        for b in 0..6 {
            let c0 = 4 * b;
            for l in 0..4 {
                al[l] += rl[c0 + l] * x[c0 + l];
                am[l] += rm[c0 + l] * x[c0 + l];
            }
        }
        y[r] += scale * (lambda * sum4(al) + mu * sum4(am));
    }
}

/// Fused two-vector element matvec: applies `K_e = scale (lambda K_L + mu K_M)`
/// to *two* input vectors in a single sweep over the canonical matrices:
///
/// ```text
/// yu += K_e xu        (displacement term)
/// yw += K_e xw        (stiffness-damping increment, xw = u^n - u^{n-1})
/// ```
///
/// A damped explicit step needs both products per element; fusing them halves
/// the canonical-matrix traffic (each `k_lambda`/`k_mu` row is loaded once and
/// applied to both inputs) and doubles the arithmetic intensity of the sweep.
/// Per-vector accumulation order is identical to [`elastic_matvec`], so each
/// output matches two separate calls bit-for-bit.
#[inline]
pub fn elastic_matvec2(
    m: &ElasticHexMatrices,
    lambda: f64,
    mu: f64,
    scale: f64,
    xu: &[f64; 24],
    xw: &[f64; 24],
    yu: &mut [f64; 24],
    yw: &mut [f64; 24],
) {
    for r in 0..24 {
        let rl = &m.k_lambda[r];
        let rm = &m.k_mu[r];
        let mut alu = [0.0; 4];
        let mut amu = [0.0; 4];
        let mut alw = [0.0; 4];
        let mut amw = [0.0; 4];
        for b in 0..6 {
            let c0 = 4 * b;
            for l in 0..4 {
                let kl = rl[c0 + l];
                let km = rm[c0 + l];
                alu[l] += kl * xu[c0 + l];
                amu[l] += km * xu[c0 + l];
                alw[l] += kl * xw[c0 + l];
                amw[l] += km * xw[c0 + l];
            }
        }
        yu[r] += scale * (lambda * sum4(alu) + mu * sum4(amu));
        yw[r] += scale * (lambda * sum4(alw) + mu * sum4(amw));
    }
}
// lint:hot-path-end

#[cfg(test)]
mod tests {
    use super::*;

    fn full_k(lambda: f64, mu: f64, h: f64) -> [[f64; 24]; 24] {
        let m = elastic_hex_matrices();
        let mut k = [[0.0; 24]; 24];
        for r in 0..24 {
            for c in 0..24 {
                k[r][c] = h * (lambda * m.k_lambda[r][c] + mu * m.k_mu[r][c]);
            }
        }
        k
    }

    #[test]
    fn stiffness_is_symmetric() {
        let k = full_k(1.3, 0.7, 2.0);
        for r in 0..24 {
            for c in 0..24 {
                assert!((k[r][c] - k[c][r]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn rigid_translations_are_in_nullspace() {
        let k = full_k(2.0, 1.0, 1.5);
        for comp in 0..3 {
            let mut u = [0.0; 24];
            for n in 0..8 {
                u[3 * n + comp] = 1.0;
            }
            for r in 0..24 {
                let f: f64 = (0..24).map(|c| k[r][c] * u[c]).sum();
                assert!(f.abs() < 1e-11, "translation {comp} row {r}: {f}");
            }
        }
    }

    #[test]
    fn rigid_rotations_are_in_nullspace() {
        // Infinitesimal rotation u = omega x (x - x0) produces zero strain.
        let k = full_k(2.0, 1.0, 1.0);
        let omegas = [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]];
        for w in omegas {
            let mut u = [0.0; 24];
            for n in 0..8usize {
                let x = [
                    (n & 1) as f64 - 0.5,
                    ((n >> 1) & 1) as f64 - 0.5,
                    ((n >> 2) & 1) as f64 - 0.5,
                ];
                u[3 * n] = w[1] * x[2] - w[2] * x[1];
                u[3 * n + 1] = w[2] * x[0] - w[0] * x[2];
                u[3 * n + 2] = w[0] * x[1] - w[1] * x[0];
            }
            for r in 0..24 {
                let f: f64 = (0..24).map(|c| k[r][c] * u[c]).sum();
                assert!(f.abs() < 1e-11, "rotation {w:?} row {r}: {f}");
            }
        }
    }

    #[test]
    fn stiffness_is_positive_semidefinite_on_random_vectors() {
        let k = full_k(1.0, 1.0, 1.0);
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        for _ in 0..50 {
            let mut u = [0.0; 24];
            for v in &mut u {
                *v = next();
            }
            let mut e = 0.0;
            for r in 0..24 {
                for c in 0..24 {
                    e += u[r] * k[r][c] * u[c];
                }
            }
            assert!(e > -1e-11, "u^T K u = {e} < 0");
        }
    }

    #[test]
    fn uniaxial_stretch_energy_matches_continuum() {
        // u = (x, 0, 0) on a unit cube: exx = 1, energy = 1/2 (lambda + 2 mu).
        let (lambda, mu) = (1.7, 0.9);
        let k = full_k(lambda, mu, 1.0);
        let mut u = [0.0; 24];
        for n in 0..8usize {
            u[3 * n] = (n & 1) as f64;
        }
        let mut e = 0.0;
        for r in 0..24 {
            for c in 0..24 {
                e += 0.5 * u[r] * k[r][c] * u[c];
            }
        }
        assert!((e - 0.5 * (lambda + 2.0 * mu)).abs() < 1e-12, "energy {e}");
    }

    #[test]
    fn simple_shear_energy_matches_continuum() {
        // u = (y, 0, 0): gamma_xy = 1, energy = 1/2 mu.
        let (lambda, mu) = (2.3, 0.6);
        let k = full_k(lambda, mu, 1.0);
        let mut u = [0.0; 24];
        for n in 0..8usize {
            u[3 * n] = ((n >> 1) & 1) as f64;
        }
        let mut e = 0.0;
        for r in 0..24 {
            for c in 0..24 {
                e += 0.5 * u[r] * k[r][c] * u[c];
            }
        }
        assert!((e - 0.5 * mu).abs() < 1e-12, "energy {e}");
    }

    #[test]
    fn scalar_stiffness_constant_nullspace_and_linear_energy() {
        let k = scalar_hex_stiffness();
        // Constant field: K u = 0.
        for r in 0..8 {
            let s: f64 = k[r].iter().sum();
            assert!(s.abs() < 1e-13);
        }
        // u = x on a unit cube: energy = 1/2 |grad u|^2 = 1/2.
        let mut u = [0.0; 8];
        for n in 0..8usize {
            u[n] = (n & 1) as f64;
        }
        let mut e = 0.0;
        for r in 0..8 {
            for c in 0..8 {
                e += 0.5 * u[r] * k[r][c] * u[c];
            }
        }
        assert!((e - 0.5).abs() < 1e-13);
    }

    #[test]
    fn elastic_matvec_matches_explicit_product() {
        let m = elastic_hex_matrices();
        let (lambda, mu, h) = (1.1, 0.4, 3.0);
        let k = full_k(lambda, mu, h);
        let mut x = [0.0; 24];
        for (i, v) in x.iter_mut().enumerate() {
            *v = (i as f64 * 0.37).sin();
        }
        let mut y = [0.0; 24];
        elastic_matvec(m, lambda, mu, h, &x, &mut y);
        for r in 0..24 {
            let expect: f64 = (0..24).map(|c| k[r][c] * x[c]).sum();
            assert!((y[r] - expect).abs() < 1e-11);
        }
    }

    #[test]
    fn elastic_matvec2_matches_two_single_matvecs_exactly() {
        let m = elastic_hex_matrices();
        let (lambda, mu, h) = (2.1, 0.8, 0.5);
        let mut xu = [0.0; 24];
        let mut xw = [0.0; 24];
        for i in 0..24 {
            xu[i] = (i as f64 * 0.37).sin();
            xw[i] = (i as f64 * 0.91).cos();
        }
        let mut yu = [0.0; 24];
        let mut yw = [0.0; 24];
        elastic_matvec2(m, lambda, mu, h, &xu, &xw, &mut yu, &mut yw);
        let mut yu2 = [0.0; 24];
        let mut yw2 = [0.0; 24];
        elastic_matvec(m, lambda, mu, h, &xu, &mut yu2);
        elastic_matvec(m, lambda, mu, h, &xw, &mut yw2);
        // Same per-vector accumulation order => bit-identical.
        assert_eq!(yu, yu2);
        assert_eq!(yw, yw2);
    }

    #[test]
    fn combined_template_times_x_matches_per_element_matvec() {
        // Property: for every octree level's h and heterogeneous (lambda, mu),
        // a single matvec against the combined template reproduces the
        // canonical per-element stiffness matvec to <= 1e-13 (relative).
        let m = elastic_hex_matrices();
        let mut state = 0x2545f4914f6cdd1du64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        for level in 0..8 {
            let h = 8.0 / (1u64 << level) as f64;
            for (lambda, mu) in [(2.0, 1.0), (5.4, 0.3), (0.9, 2.7)] {
                let t = combined_hex_stiffness(lambda, mu, h);
                let k = full_k(lambda, mu, h);
                let mut x = [0.0; 24];
                for v in &mut x {
                    *v = next();
                }
                let mut y_ref = [0.0; 24];
                elastic_matvec(m, lambda, mu, h, &x, &mut y_ref);
                for r in 0..24 {
                    let yt: f64 = (0..24).map(|c| t[r * 24 + c] * x[c]).sum();
                    let yk: f64 = (0..24).map(|c| k[r][c] * x[c]).sum();
                    // Template entries equal the explicit K entries bit-exactly
                    // (same arithmetic), so the matvecs agree bit-exactly too.
                    assert_eq!(yt.to_bits(), yk.to_bits(), "level {level} row {r}");
                    let scale = x.iter().map(|v| v.abs()).fold(0.0f64, f64::max)
                        * t[r * 24..r * 24 + 24].iter().map(|v| v.abs()).sum::<f64>();
                    assert!(
                        (yt - y_ref[r]).abs() <= 1e-13 * scale.max(1e-300),
                        "level {level} ({lambda},{mu}) row {r}: {yt} vs {}",
                        y_ref[r]
                    );
                }
            }
        }
    }

    #[test]
    fn consistent_mass_rows_sum_to_lumped() {
        // Row-sum lumping of the consistent mass gives 1/8 per node.
        let m = consistent_hex_mass();
        for r in 0..8 {
            let s: f64 = m[r].iter().sum();
            assert!((s - 0.125).abs() < 1e-13);
        }
        assert!((lumped_hex_mass(2.0, 3.0) - 2.0 * 27.0 / 8.0).abs() < 1e-12);
    }
}
