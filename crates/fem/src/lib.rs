//! Finite-element kernels for the quake workspace.
//!
//! This crate provides the small, dense building blocks the wave-propagation
//! solvers are made of:
//!
//! - [`linalg`]: small dense vectors/matrices (no external BLAS),
//! - [`quadrature`]: Gauss-Legendre rules on the unit interval/square/cube,
//! - [`shape`]: trilinear hex8, bilinear quad4 and linear tet4 shape functions,
//! - [`hex8`]: canonical hexahedral element matrices. Because every octree leaf
//!   is a cube, the elastic stiffness of *any* element is
//!   `h * (lambda * K_L + mu * K_M)` for two constant 24x24 matrices — the
//!   memory-free element design of the SC2003 paper,
//! - [`quad4`]: canonical bilinear quad matrices for the 2-D antiplane solver,
//! - [`tet4`]: linear tetrahedra for the baseline (pre-octree) solver.
//!
//! All matrices use engineering (Voigt) shear strains and the node ordering
//! `node i = ((i)&1, (i>>1)&1, (i>>2)&1)` on the unit reference cube.

pub mod hex8;
pub mod linalg;
pub mod quad4;
pub mod quadrature;
pub mod shape;
pub mod tet4;

pub use hex8::{elastic_hex_matrices, scalar_hex_stiffness, ElasticHexMatrices};
pub use linalg::{DMat, Mat3, Vec3};
pub use quad4::scalar_quad_stiffness;
pub use tet4::tet4_stiffness;
