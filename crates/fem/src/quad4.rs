//! Canonical bilinear quad element matrices.
//!
//! Used by the 2-D antiplane (SH) solver of Section 3 and for the boundary
//! faces of the 3-D hexahedral solver (Stacey absorbing-boundary terms).
//!
//! A useful 2-D fact: the scalar stiffness `int grad N . grad N dA` of a
//! square element is *independent of its size* (the 1/h^2 from the gradients
//! cancels the h^2 from the area), so a single canonical 4x4 matrix covers
//! every element: `K_e = mu_e * K_Q`.

use crate::quadrature::gauss_2d;
use crate::shape::{quad4_dn, quad4_n};
use std::sync::OnceLock;

static SCALAR: OnceLock<[[f64; 4]; 4]> = OnceLock::new();
static FACE_MASS: OnceLock<[[f64; 4]; 4]> = OnceLock::new();
static FACE_N_DN: OnceLock<[[[f64; 4]; 4]; 2]> = OnceLock::new();

/// Canonical scalar quad stiffness `K_Q` (size-independent):
/// `K_e = mu_e * K_Q`.
pub fn scalar_quad_stiffness() -> &'static [[f64; 4]; 4] {
    SCALAR.get_or_init(|| {
        let mut k = [[0.0; 4]; 4];
        for q in gauss_2d(2) {
            let dn = quad4_dn(q.xi);
            for r in 0..4 {
                for c in 0..4 {
                    k[r][c] += q.w * (dn[r][0] * dn[c][0] + dn[r][1] * dn[c][1]);
                }
            }
        }
        k
    })
}

/// Consistent face/element mass on the unit square: `M = rho h^2 * M_F`.
pub fn quad4_mass_unit() -> &'static [[f64; 4]; 4] {
    FACE_MASS.get_or_init(|| {
        let mut m = [[0.0; 4]; 4];
        for q in gauss_2d(2) {
            let n = quad4_n(q.xi);
            for r in 0..4 {
                for c in 0..4 {
                    m[r][c] += q.w * n[r] * n[c];
                }
            }
        }
        m
    })
}

/// `int_face N_r dN_c/dxi_axis dA` on the unit square, for `axis = 0, 1`.
///
/// On a physical face of side `h` this scales by `h` (one factor `h^2` from
/// the area times `1/h` from the tangential derivative). These are the
/// building blocks of the Stacey boundary's `c1 d/dtau` coupling terms.
pub fn quad4_n_dn_unit() -> &'static [[[f64; 4]; 4]; 2] {
    FACE_N_DN.get_or_init(|| {
        let mut f = [[[0.0; 4]; 4]; 2];
        for q in gauss_2d(2) {
            let n = quad4_n(q.xi);
            let dn = quad4_dn(q.xi);
            for axis in 0..2 {
                for r in 0..4 {
                    for c in 0..4 {
                        f[axis][r][c] += q.w * n[r] * dn[c][axis];
                    }
                }
            }
        }
        f
    })
}

/// Lumped nodal mass of a square element of side `h`, density `rho`.
#[inline]
pub fn lumped_quad_mass(rho: f64, h: f64) -> f64 {
    rho * h * h / 4.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_quad_stiffness_known_values() {
        // The classic bilinear square stiffness: diagonal 2/3, opposite
        // corner -1/3, edge neighbors -1/6.
        let k = scalar_quad_stiffness();
        for r in 0..4 {
            assert!((k[r][r] - 2.0 / 3.0).abs() < 1e-13);
        }
        // Node 0 = (0,0); node 3 = (1,1) is its diagonal opposite.
        assert!((k[0][3] + 1.0 / 3.0).abs() < 1e-13);
        assert!((k[0][1] + 1.0 / 6.0).abs() < 1e-13);
        assert!((k[0][2] + 1.0 / 6.0).abs() < 1e-13);
    }

    #[test]
    fn scalar_quad_constant_nullspace() {
        let k = scalar_quad_stiffness();
        for r in 0..4 {
            let s: f64 = k[r].iter().sum();
            assert!(s.abs() < 1e-14);
        }
    }

    #[test]
    fn face_mass_rows_sum_to_quarter() {
        let m = quad4_mass_unit();
        for r in 0..4 {
            let s: f64 = m[r].iter().sum();
            assert!((s - 0.25).abs() < 1e-14);
        }
        assert!((lumped_quad_mass(3.0, 2.0) - 3.0).abs() < 1e-14);
    }

    #[test]
    fn n_dn_columns_integrate_derivative_of_linear_field() {
        // sum_r int N_r dN_c/dxi = int dN_c/dxi (partition of unity), and
        // contracting columns with nodal values of u = xi gives
        // int N_r du/dxi = int N_r = 1/4.
        let f = quad4_n_dn_unit();
        let u: [f64; 4] = [0.0, 1.0, 0.0, 1.0]; // u = xi_0 at the four nodes
        for r in 0..4 {
            let v: f64 = (0..4).map(|c| f[0][r][c] * u[c]).sum();
            assert!((v - 0.25).abs() < 1e-14, "row {r}: {v}");
        }
        // d(xi_0)/d(xi_1) = 0.
        for r in 0..4 {
            let v: f64 = (0..4).map(|c| f[1][r][c] * u[c]).sum();
            assert!(v.abs() < 1e-14);
        }
    }
}
