//! Small dense linear algebra.
//!
//! The solvers never form global sparse matrices (the element-based design of
//! the paper), so all we need is fixed-size 3-vectors/3-matrices plus a plain
//! heap-backed dense matrix for element-matrix construction, propagator
//! matrices and the inversion machinery's small dense systems.

/// A 3-vector of `f64`.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Vec3 {
    pub x: f64,
    pub y: f64,
    pub z: f64,
}

impl Vec3 {
    pub const ZERO: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 0.0 };

    pub fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    pub fn dot(self, o: Vec3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    pub fn cross(self, o: Vec3) -> Vec3 {
        Vec3::new(
            self.y * o.z - self.z * o.y,
            self.z * o.x - self.x * o.z,
            self.x * o.y - self.y * o.x,
        )
    }

    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    pub fn scale(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }

    pub fn normalized(self) -> Vec3 {
        let n = self.norm();
        assert!(n > 0.0, "cannot normalize the zero vector");
        self.scale(1.0 / n)
    }

    pub fn as_array(self) -> [f64; 3] {
        [self.x, self.y, self.z]
    }
}

impl std::ops::Add for Vec3 {
    type Output = Vec3;
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl std::ops::Sub for Vec3 {
    type Output = Vec3;
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl std::ops::Mul<f64> for Vec3 {
    type Output = Vec3;
    fn mul(self, s: f64) -> Vec3 {
        self.scale(s)
    }
}

impl From<[f64; 3]> for Vec3 {
    fn from(a: [f64; 3]) -> Vec3 {
        Vec3::new(a[0], a[1], a[2])
    }
}

/// A 3x3 matrix, row-major.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Mat3 {
    pub m: [[f64; 3]; 3],
}

impl Mat3 {
    pub fn zero() -> Mat3 {
        Mat3 { m: [[0.0; 3]; 3] }
    }

    pub fn identity() -> Mat3 {
        let mut r = Mat3::zero();
        for i in 0..3 {
            r.m[i][i] = 1.0;
        }
        r
    }

    pub fn from_rows(r0: Vec3, r1: Vec3, r2: Vec3) -> Mat3 {
        Mat3 { m: [r0.as_array(), r1.as_array(), r2.as_array()] }
    }

    pub fn mul_vec(&self, v: Vec3) -> Vec3 {
        Vec3::new(
            self.m[0][0] * v.x + self.m[0][1] * v.y + self.m[0][2] * v.z,
            self.m[1][0] * v.x + self.m[1][1] * v.y + self.m[1][2] * v.z,
            self.m[2][0] * v.x + self.m[2][1] * v.y + self.m[2][2] * v.z,
        )
    }

    pub fn mul(&self, o: &Mat3) -> Mat3 {
        let mut r = Mat3::zero();
        for i in 0..3 {
            for k in 0..3 {
                let a = self.m[i][k];
                for j in 0..3 {
                    r.m[i][j] += a * o.m[k][j];
                }
            }
        }
        r
    }

    pub fn transpose(&self) -> Mat3 {
        let mut r = Mat3::zero();
        for i in 0..3 {
            for j in 0..3 {
                r.m[j][i] = self.m[i][j];
            }
        }
        r
    }

    pub fn det(&self) -> f64 {
        let m = &self.m;
        m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
            - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
            + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0])
    }

    /// Inverse; panics on (near-)singular input.
    pub fn inverse(&self) -> Mat3 {
        let d = self.det();
        assert!(d.abs() > 1e-300, "singular 3x3 matrix");
        let m = &self.m;
        let inv = |a: f64, b: f64, c: f64, e: f64| (a * e - b * c) / d;
        Mat3 {
            m: [
                [
                    inv(m[1][1], m[1][2], m[2][1], m[2][2]),
                    inv(m[0][2], m[0][1], m[2][2], m[2][1]),
                    inv(m[0][1], m[0][2], m[1][1], m[1][2]),
                ],
                [
                    inv(m[1][2], m[1][0], m[2][2], m[2][0]),
                    inv(m[0][0], m[0][2], m[2][0], m[2][2]),
                    inv(m[0][2], m[0][0], m[1][2], m[1][0]),
                ],
                [
                    inv(m[1][0], m[1][1], m[2][0], m[2][1]),
                    inv(m[0][1], m[0][0], m[2][1], m[2][0]),
                    inv(m[0][0], m[0][1], m[1][0], m[1][1]),
                ],
            ],
        }
    }
}

/// Heap-backed dense matrix, row-major.
///
/// Used for element-matrix construction (24x24 and smaller) and for the small
/// dense solves inside the inversion machinery. Not intended for large-N
/// linear algebra — the solvers are matrix-free by design.
#[derive(Clone, Debug, PartialEq)]
pub struct DMat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DMat {
    pub fn zeros(rows: usize, cols: usize) -> DMat {
        DMat { rows, cols, data: vec![0.0; rows * cols] }
    }

    pub fn identity(n: usize) -> DMat {
        let mut m = DMat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// `self * v` for a dense vector.
    pub fn mul_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols);
        let mut out = vec![0.0; self.rows];
        for i in 0..self.rows {
            let row = self.row(i);
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(v) {
                acc += a * b;
            }
            out[i] = acc;
        }
        out
    }

    /// `self^T * v`.
    pub fn mul_vec_transposed(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.rows);
        let mut out = vec![0.0; self.cols];
        for i in 0..self.rows {
            let row = self.row(i);
            let s = v[i];
            for (o, a) in out.iter_mut().zip(row) {
                *o += s * a;
            }
        }
        out
    }

    pub fn mul(&self, o: &DMat) -> DMat {
        assert_eq!(self.cols, o.rows);
        let mut r = DMat::zeros(self.rows, o.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..o.cols {
                    r[(i, j)] += a * o[(k, j)];
                }
            }
        }
        r
    }

    pub fn transpose(&self) -> DMat {
        let mut r = DMat::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                r[(j, i)] = self[(i, j)];
            }
        }
        r
    }

    pub fn scale_in_place(&mut self, s: f64) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    pub fn add_scaled(&mut self, o: &DMat, s: f64) {
        assert_eq!((self.rows, self.cols), (o.rows, o.cols));
        for (a, b) in self.data.iter_mut().zip(&o.data) {
            *a += s * b;
        }
    }

    /// Maximum absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, x| m.max(x.abs()))
    }

    /// Solve `self * x = b` by Gaussian elimination with partial pivoting.
    ///
    /// Destroys neither input; intended for small systems (n <= a few hundred).
    pub fn solve(&self, b: &[f64]) -> Option<Vec<f64>> {
        assert_eq!(self.rows, self.cols);
        assert_eq!(b.len(), self.rows);
        let n = self.rows;
        let mut a = self.data.clone();
        let mut x = b.to_vec();
        for col in 0..n {
            // Partial pivot.
            let mut piv = col;
            let mut best = a[col * n + col].abs();
            for r in col + 1..n {
                let v = a[r * n + col].abs();
                if v > best {
                    best = v;
                    piv = r;
                }
            }
            if best < 1e-300 {
                return None;
            }
            if piv != col {
                for j in 0..n {
                    a.swap(col * n + j, piv * n + j);
                }
                x.swap(col, piv);
            }
            let d = a[col * n + col];
            for r in col + 1..n {
                let f = a[r * n + col] / d;
                if f == 0.0 {
                    continue;
                }
                for j in col..n {
                    a[r * n + j] -= f * a[col * n + j];
                }
                x[r] -= f * x[col];
            }
        }
        for col in (0..n).rev() {
            let mut acc = x[col];
            for j in col + 1..n {
                acc -= a[col * n + j] * x[j];
            }
            x[col] = acc / a[col * n + col];
        }
        Some(x)
    }
}

impl std::ops::Index<(usize, usize)> for DMat {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for DMat {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

/// Dot product of two equal-length slices.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm of a slice.
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// `y += s * x`.
pub fn axpy(s: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += s * xi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec3_cross_is_orthogonal() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-2.0, 0.5, 4.0);
        let c = a.cross(b);
        assert!(c.dot(a).abs() < 1e-12);
        assert!(c.dot(b).abs() < 1e-12);
    }

    #[test]
    fn mat3_inverse_roundtrip() {
        let m = Mat3::from_rows(
            Vec3::new(2.0, 1.0, 0.0),
            Vec3::new(0.5, 3.0, -1.0),
            Vec3::new(1.0, 0.0, 4.0),
        );
        let inv = m.inverse();
        let p = m.mul(&inv);
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((p.m[i][j] - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn dmat_solve_matches_known_system() {
        let mut a = DMat::zeros(3, 3);
        a[(0, 0)] = 4.0;
        a[(0, 1)] = 1.0;
        a[(1, 0)] = 1.0;
        a[(1, 1)] = 3.0;
        a[(1, 2)] = -1.0;
        a[(2, 1)] = -1.0;
        a[(2, 2)] = 5.0;
        let x_true = [1.0, -2.0, 0.5];
        let b = a.mul_vec(&x_true);
        let x = a.solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-12);
        }
    }

    #[test]
    fn dmat_solve_detects_singular() {
        let mut a = DMat::zeros(2, 2);
        a[(0, 0)] = 1.0;
        a[(0, 1)] = 2.0;
        a[(1, 0)] = 2.0;
        a[(1, 1)] = 4.0;
        assert!(a.solve(&[1.0, 1.0]).is_none());
    }

    #[test]
    fn dmat_transpose_mul_vec_consistent() {
        let mut a = DMat::zeros(2, 3);
        for i in 0..2 {
            for j in 0..3 {
                a[(i, j)] = (i * 3 + j) as f64 + 0.5;
            }
        }
        let v = [1.0, -1.0];
        let direct = a.transpose().mul_vec(&v);
        let fused = a.mul_vec_transposed(&v);
        assert_eq!(direct, fused);
    }

    #[test]
    fn axpy_and_dot() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [1.0, 1.0, 1.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [3.0, 5.0, 7.0]);
        assert_eq!(dot(&x, &x), 14.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
    }
}
