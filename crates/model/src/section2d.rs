//! The 2-D basin cross-section of Section 3 — the material-inversion target.
//!
//! Fig 3.2 inverts for the shear-wave velocity in a 35 km x 20 km vertical
//! section through the LA basin, with values between ~1000 and ~3500 m/s, a
//! soft basin lens near the surface and layered bedrock below (sharp
//! interfaces — the reason for total-variation regularization). Density is
//! assumed known and constant, the material is lossless, and motion is
//! antiplane (SH), so the only unknown field is `mu(x, z) = rho vs^2`.

/// The synthetic cross-section target model.
#[derive(Clone, Debug)]
pub struct Section2d {
    /// Horizontal extent (m). Paper: 35 km.
    pub width: f64,
    /// Depth extent (m). Paper: 20 km.
    pub depth: f64,
    /// Constant (known) density, kg/m^3.
    pub rho: f64,
}

impl Default for Section2d {
    fn default() -> Self {
        Section2d { width: 35_000.0, depth: 20_000.0, rho: 2200.0 }
    }
}

impl Section2d {
    /// Target shear velocity (m/s) at `(x, z)`; `z` down, surface at 0.
    ///
    /// Three sharp, dipping bedrock layers (1800 / 2600 / 3500 m/s) with a
    /// soft Gaussian basin lens (down to ~1000 m/s) carved into the top.
    pub fn vs(&self, x: f64, z: f64) -> f64 {
        // Dipping layer interfaces.
        let dip = 0.06; // 6% grade across the section
        let i1 = 3_000.0 + dip * x;
        let i2 = 9_000.0 + 0.5 * dip * x;
        let background = if z < i1 {
            1800.0
        } else if z < i2 {
            2600.0
        } else {
            3500.0
        };
        // Basin lens centered at x = 14 km.
        let r2 = ((x - 14_000.0) / 7_000.0).powi(2) + (z / 2_500.0).powi(2);
        let lens = (-r2).exp();
        let vs = background - 900.0 * lens * if z < i1 { 1.0 } else { 0.0 };
        vs.max(900.0)
    }

    /// Target shear modulus `mu = rho vs^2` (Pa).
    pub fn mu(&self, x: f64, z: f64) -> f64 {
        let v = self.vs(x, z);
        self.rho * v * v
    }

    /// Convert a modulus back to shear velocity (for reporting in the
    /// paper's units).
    pub fn mu_to_vs(&self, mu: f64) -> f64 {
        (mu / self.rho).max(0.0).sqrt()
    }

    /// A homogeneous initial guess (the multiscale inversion starts from the
    /// 1x1 grid, i.e. one constant): paper Fig 3.2, first frame.
    pub fn homogeneous_guess_vs(&self) -> f64 {
        2200.0
    }

    /// Sample the target vs on an `(nx+1) x (nz+1)` vertex grid (row-major,
    /// x fastest), as the inversion grids do.
    pub fn vs_grid(&self, nx: usize, nz: usize) -> Vec<f64> {
        let mut g = Vec::with_capacity((nx + 1) * (nz + 1));
        for k in 0..=nz {
            let z = self.depth * k as f64 / nz as f64;
            for i in 0..=nx {
                let x = self.width * i as f64 / nx as f64;
                g.push(self.vs(x, z));
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn velocity_range_matches_paper_colorbar() {
        let s = Section2d::default();
        let g = s.vs_grid(64, 64);
        let min = g.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = g.iter().cloned().fold(0.0, f64::max);
        assert!((900.0..1300.0).contains(&min), "min {min}");
        assert!(max > 3400.0 && max <= 3600.0, "max {max}");
    }

    #[test]
    fn layers_have_sharp_interfaces() {
        let s = Section2d::default();
        // Cross the deep interface away from the lens.
        let x = 30_000.0;
        let i2 = 9_000.0 + 0.03 * x;
        let above = s.vs(x, i2 - 10.0);
        let below = s.vs(x, i2 + 10.0);
        assert!(below - above > 800.0, "{above} -> {below}");
    }

    #[test]
    fn basin_lens_is_soft_and_shallow() {
        let s = Section2d::default();
        assert!(s.vs(14_000.0, 0.0) < 1100.0);
        assert!(s.vs(14_000.0, 15_000.0) > 3000.0);
    }

    #[test]
    fn mu_roundtrip() {
        let s = Section2d::default();
        let v = s.vs(10_000.0, 5_000.0);
        assert!((s.mu_to_vs(s.mu(10_000.0, 5_000.0)) - v).abs() < 1e-9);
    }
}
