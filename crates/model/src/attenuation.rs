//! Elementwise least-squares Rayleigh damping.
//!
//! Material attenuation enters the discrete system as `alpha M + beta K`
//! (Section 2.2). Rayleigh damping gives a frequency-dependent damping ratio
//!
//! ```text
//! zeta(omega) = alpha / (2 omega) + beta omega / 2
//! ```
//!
//! which both blows up at low frequency and grows at high frequency; the
//! paper therefore fits `(alpha, beta)` *per element* by least squares so
//! that `zeta` is as close as possible to the constant target dictated by
//! the local soil type over the band of interest. (Very low and very high
//! frequencies end up overdamped — the known limitation the paper notes.)

/// A fitted Rayleigh pair and its residual.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RayleighFit {
    pub alpha: f64,
    pub beta: f64,
    /// RMS deviation of `zeta(omega)` from the target over the band.
    pub rms_error: f64,
}

/// Damping ratio of a Rayleigh pair at angular frequency `omega`.
pub fn rayleigh_zeta(alpha: f64, beta: f64, omega: f64) -> f64 {
    0.5 * (alpha / omega + beta * omega)
}

/// Least-squares fit of `(alpha, beta)` so that `zeta(omega) ~ zeta_target`
/// for `omega` in `[2 pi f_lo, 2 pi f_hi]` (uniformly sampled at `n` points).
///
/// The target comes from the local soil: the paper keys it to soil type; a
/// common seismological choice is `zeta = vs_ref / (2 Q vs)`-style rules —
/// callers pick the target, we do the fit.
pub fn fit_rayleigh(zeta_target: f64, f_lo: f64, f_hi: f64, n: usize) -> RayleighFit {
    assert!(zeta_target >= 0.0, "damping ratio must be non-negative");
    assert!(f_lo > 0.0 && f_hi > f_lo, "need 0 < f_lo < f_hi");
    assert!(n >= 2, "need at least two sample frequencies");
    // zeta = a * x1(w) + b * x2(w), x1 = 1/(2w), x2 = w/2: linear LSQ with a
    // 2x2 normal system.
    let (mut s11, mut s12, mut s22, mut r1, mut r2) = (0.0, 0.0, 0.0, 0.0, 0.0);
    for i in 0..n {
        let f = f_lo + (f_hi - f_lo) * i as f64 / (n - 1) as f64;
        let w = 2.0 * std::f64::consts::PI * f;
        let x1 = 0.5 / w;
        let x2 = 0.5 * w;
        s11 += x1 * x1;
        s12 += x1 * x2;
        s22 += x2 * x2;
        r1 += x1 * zeta_target;
        r2 += x2 * zeta_target;
    }
    let det = s11 * s22 - s12 * s12;
    assert!(det > 0.0, "degenerate frequency band");
    let alpha = (s22 * r1 - s12 * r2) / det;
    let beta = (s11 * r2 - s12 * r1) / det;
    let mut sq = 0.0;
    for i in 0..n {
        let f = f_lo + (f_hi - f_lo) * i as f64 / (n - 1) as f64;
        let w = 2.0 * std::f64::consts::PI * f;
        let e = rayleigh_zeta(alpha, beta, w) - zeta_target;
        sq += e * e;
    }
    RayleighFit { alpha, beta, rms_error: (sq / n as f64).sqrt() }
}

/// A simple soil-type rule for the damping-ratio target: softer soils damp
/// more. `zeta = min(0.05, 25 / vs)` — e.g. 5% for vs <= 500 m/s falling to
/// ~0.8% for hard rock at 3000 m/s.
pub fn damping_target_for_vs(vs: f64) -> f64 {
    assert!(vs > 0.0);
    (25.0 / vs).min(0.05)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_target_gives_zero_damping() {
        let f = fit_rayleigh(0.0, 0.1, 2.0, 16);
        assert_eq!(f.alpha, 0.0);
        assert_eq!(f.beta, 0.0);
        assert_eq!(f.rms_error, 0.0);
    }

    #[test]
    fn fit_is_close_to_target_inside_band() {
        let target = 0.05;
        let fit = fit_rayleigh(target, 0.2, 2.0, 64);
        assert!(fit.alpha > 0.0 && fit.beta > 0.0);
        // Inside the band, zeta within ~30% of the target.
        for f in [0.3, 0.5, 1.0, 1.8] {
            let w = 2.0 * std::f64::consts::PI * f;
            let z = rayleigh_zeta(fit.alpha, fit.beta, w);
            assert!((z - target).abs() < 0.3 * target, "f={f}: zeta={z}");
        }
        assert!(fit.rms_error < 0.2 * target);
    }

    #[test]
    fn out_of_band_frequencies_are_overdamped() {
        // The known Rayleigh limitation the paper notes.
        let target = 0.05;
        let fit = fit_rayleigh(target, 0.2, 2.0, 64);
        let z_low = rayleigh_zeta(fit.alpha, fit.beta, 2.0 * std::f64::consts::PI * 0.01);
        let z_high = rayleigh_zeta(fit.alpha, fit.beta, 2.0 * std::f64::consts::PI * 20.0);
        assert!(z_low > 2.0 * target, "low-frequency overdamping: {z_low}");
        assert!(z_high > 2.0 * target, "high-frequency overdamping: {z_high}");
    }

    #[test]
    fn soil_rule_is_monotone_and_capped() {
        assert_eq!(damping_target_for_vs(100.0), 0.05);
        assert_eq!(damping_target_for_vs(500.0), 0.05);
        assert!(damping_target_for_vs(1000.0) < damping_target_for_vs(600.0));
        assert!((damping_target_for_vs(2500.0) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn fit_exact_when_one_frequency_pair_spans_target() {
        // With exactly two sample points the 2-parameter fit interpolates.
        let target = 0.03;
        let fit = fit_rayleigh(target, 0.5, 1.5, 2);
        for f in [0.5, 1.5] {
            let w = 2.0 * std::f64::consts::PI * f;
            assert!((rayleigh_zeta(fit.alpha, fit.beta, w) - target).abs() < 1e-12);
        }
    }
}
