//! A synthetic LA-Basin velocity model.
//!
//! Substitutes for the SCEC Community Velocity Model (DESIGN.md): two
//! Gaussian sedimentary bowls (the San Fernando Valley and the Los Angeles
//! Basin proper) carved into layered bedrock, with a soft-sediment velocity
//! profile whose surface shear velocity is configurable down to the paper's
//! 100 m/s floor. What matters for the algorithms is preserved: ~1.5 decades
//! of shear-wavelength contrast concentrated in shallow pockets, smooth
//! lateral variation, and a sharp sediment/bedrock interface.

use crate::material::{Material, MaterialModel};

/// Synthetic LA-Basin model over an `extent x extent x extent` box
/// (meters; `z` down).
#[derive(Clone, Debug)]
pub struct LaBasinModel {
    /// Horizontal domain edge (m). The paper's box is 80 km.
    pub extent: f64,
    /// Surface shear velocity floor in the deepest basin (m/s).
    pub vs_min: f64,
    /// Basin bowls: (center_x, center_y, radius, max_depth), meters.
    bowls: Vec<[f64; 4]>,
}

impl LaBasinModel {
    /// The default two-bowl model on an 80 km box.
    pub fn standard(vs_min: f64) -> LaBasinModel {
        assert!((50.0..1000.0).contains(&vs_min), "vs_min {vs_min} out of range");
        LaBasinModel {
            extent: 80_000.0,
            vs_min,
            bowls: vec![
                // San Fernando Valley analogue: smaller, shallower bowl NW.
                [25_000.0, 30_000.0, 12_000.0, 5_000.0],
                // LA Basin proper: large deep bowl SE.
                [52_000.0, 50_000.0, 18_000.0, 9_000.0],
            ],
        }
    }

    /// A scaled copy: same shape on a domain of edge `extent` meters, bowls
    /// scaled proportionally. Used for the small meshes of the scalability
    /// series (LA10S .. LA1HB analogues).
    pub fn scaled(vs_min: f64, extent: f64) -> LaBasinModel {
        let std = LaBasinModel::standard(vs_min);
        let s = extent / std.extent;
        LaBasinModel {
            extent,
            vs_min,
            bowls: std.bowls.iter().map(|b| [b[0] * s, b[1] * s, b[2] * s, b[3] * s]).collect(),
        }
    }

    /// Depth of the sediment/bedrock interface under `(x, y)` (m; 0 =
    /// no sediments here).
    pub fn basin_depth(&self, x: f64, y: f64) -> f64 {
        let d = self
            .bowls
            .iter()
            .map(|b| {
                let r2 = ((x - b[0]).powi(2) + (y - b[1]).powi(2)) / (b[2] * b[2]);
                b[3] * (-3.0 * r2).exp()
            })
            .fold(0.0, f64::max);
        // The Gaussian tails never vanish; below a meter of fill this is
        // outcropping bedrock, not a basin.
        if d < 1.0 {
            0.0
        } else {
            d
        }
    }

    /// Sediment shear velocity at depth `z` where the local basin depth is
    /// `b`: a sqrt-profile from the surface floor to the bedrock contact.
    fn sediment_vs(&self, z: f64, b: f64) -> f64 {
        // Scale the surface value with bowl depth: deepest bowl reaches the
        // configured floor; shallow edges are somewhat stiffer.
        let deepest = self.bowls.iter().map(|w| w[3]).fold(0.0, f64::max);
        let vs_surf = self.vs_min * (1.0 + 2.0 * (1.0 - (b / deepest).min(1.0)));
        let vs_bottom = 2200.0;
        vs_surf + (vs_bottom - vs_surf) * (z / b).clamp(0.0, 1.0).sqrt()
    }

    /// Bedrock shear velocity (depth-dependent crustal gradient).
    fn bedrock_vs(&self, z: f64) -> f64 {
        // 2.8 km/s near the surface to 4.5 km/s at ~20 km depth.
        (2800.0 + z * 0.085).min(4500.0)
    }
}

/// Gardner's relation for density (vp in m/s -> rho in kg/m^3), floored to
/// avoid unrealistically light shallow sediments.
fn gardner_rho(vp: f64) -> f64 {
    (1741.0 * (vp / 1000.0).powf(0.25)).max(1600.0)
}

impl MaterialModel for LaBasinModel {
    fn sample(&self, x: f64, y: f64, z: f64) -> Material {
        let b = self.basin_depth(x, y);
        let vs = if z < b { self.sediment_vs(z, b) } else { self.bedrock_vs(z) };
        // Poisson-solid-ish vp, but soft sediments are water-saturated:
        // vp never below ~1500 m/s.
        let vp = (vs * 3.0f64.sqrt()).max(1500.0);
        Material { vp, vs, rho: gardner_rho(vp) }
    }

    fn min_vs_in_box(&self, lo: [f64; 3], hi: [f64; 3]) -> f64 {
        // vs decreases toward the surface and toward bowl centers; probing a
        // 3x3 grid on the box top plus the default probes is sufficient for
        // this smooth model.
        let mut min = f64::INFINITY;
        for i in 0..3 {
            for j in 0..3 {
                let x = lo[0] + (hi[0] - lo[0]) * i as f64 / 2.0;
                let y = lo[1] + (hi[1] - lo[1]) * j as f64 / 2.0;
                let m = self.sample(x, y, lo[2]);
                min = min.min(m.vs);
            }
        }
        let mid = [(lo[0] + hi[0]) / 2.0, (lo[1] + hi[1]) / 2.0, (lo[2] + hi[2]) / 2.0];
        min.min(self.sample(mid[0], mid[1], mid[2]).vs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn surface_of_deep_basin_hits_vs_floor() {
        let m = LaBasinModel::standard(100.0);
        // Center of the LA bowl.
        let mat = m.sample(52_000.0, 50_000.0, 0.0);
        assert!(mat.vs < 110.0, "vs at basin center surface: {}", mat.vs);
        mat.validate();
    }

    #[test]
    fn bedrock_far_from_basins_is_stiff() {
        let m = LaBasinModel::standard(100.0);
        let mat = m.sample(2_000.0, 2_000.0, 0.0);
        assert!(mat.vs > 2500.0, "vs in bedrock: {}", mat.vs);
        let deep = m.sample(2_000.0, 2_000.0, 20_000.0);
        assert!(deep.vs >= 4400.0);
    }

    #[test]
    fn velocity_increases_with_depth_in_basin() {
        let m = LaBasinModel::standard(100.0);
        let (x, y) = (52_000.0, 50_000.0);
        let mut last = 0.0;
        for k in 0..20 {
            let z = k as f64 * 500.0;
            let vs = m.sample(x, y, z).vs;
            assert!(vs >= last, "vs not monotone at z={z}: {vs} < {last}");
            last = vs;
        }
    }

    #[test]
    fn sediment_bedrock_interface_is_sharp() {
        let m = LaBasinModel::standard(200.0);
        let (x, y) = (52_000.0, 50_000.0);
        let b = m.basin_depth(x, y);
        let above = m.sample(x, y, b - 1.0).vs;
        let below = m.sample(x, y, b + 1.0).vs;
        assert!(below - above > 500.0, "interface jump {above} -> {below}");
    }

    #[test]
    fn all_samples_are_physical() {
        let m = LaBasinModel::standard(100.0);
        for i in 0..10 {
            for j in 0..10 {
                for k in 0..10 {
                    let mat = m.sample(i as f64 * 8_000.0, j as f64 * 8_000.0, k as f64 * 2_500.0);
                    mat.validate();
                }
            }
        }
    }

    #[test]
    fn scaled_model_preserves_velocity_range() {
        let full = LaBasinModel::standard(100.0);
        let small = LaBasinModel::scaled(100.0, 10_000.0);
        // Same vs at proportional positions (depth scales with the bowls).
        let a = full.sample(52_000.0, 50_000.0, 0.0).vs;
        let b = small.sample(6_500.0, 6_250.0, 0.0).vs;
        assert!((a - b).abs() < 1.0, "{a} vs {b}");
    }

    #[test]
    fn min_vs_in_box_not_larger_than_center_sample() {
        let m = LaBasinModel::standard(100.0);
        let lo = [45_000.0, 45_000.0, 0.0];
        let hi = [60_000.0, 60_000.0, 5_000.0];
        let min = m.min_vs_in_box(lo, hi);
        let center = m.sample(52_500.0, 52_500.0, 2_500.0);
        assert!(min <= center.vs);
        assert!(min >= 100.0);
    }
}
