//! Earthquake source models.
//!
//! The paper represents rupture as a displacement dislocation on a fault
//! plane, applied to the FEM system as equivalent body forces. Every point of
//! the fault carries a dislocation history `u0 * g(t; T, t0)` where `g` ramps
//! from 0 to 1 with a *triangular* slip-rate of duration `t0` starting at the
//! delay time `T` (Fig 3.1). The source inversion needs `dg/dT` and
//! `dg/dt0`, which are provided analytically.

/// Normalized dislocation history with delay `T`, rise time `t0` and
/// amplitude `u0` (total slip).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SlipFunction {
    /// Delay time T (s): rupture arrival at this fault point.
    pub delay: f64,
    /// Rise time t0 (s): duration of the triangular slip-rate pulse.
    pub rise: f64,
    /// Dislocation amplitude u0 (m): total slip.
    pub amplitude: f64,
}

impl SlipFunction {
    pub fn new(delay: f64, rise: f64, amplitude: f64) -> SlipFunction {
        assert!(rise > 0.0, "rise time must be positive");
        // Negative delays are allowed: they just shift the origin time
        // (the source inversion must be free to move arrivals both ways).
        SlipFunction { delay, rise, amplitude }
    }

    /// Normalized ramp r(tau) in [0,1] (integral of the unit triangle).
    fn ramp(&self, tau: f64) -> f64 {
        let t0 = self.rise;
        if tau <= 0.0 {
            0.0
        } else if tau < 0.5 * t0 {
            2.0 * tau * tau / (t0 * t0)
        } else if tau < t0 {
            1.0 - 2.0 * (t0 - tau) * (t0 - tau) / (t0 * t0)
        } else {
            1.0
        }
    }

    /// Slip `u0 * g(t)`.
    pub fn g(&self, t: f64) -> f64 {
        self.amplitude * self.ramp(t - self.delay)
    }

    /// Slip rate (the triangle of Fig 3.1), peak `2 u0 / t0`.
    pub fn g_dot(&self, t: f64) -> f64 {
        let tau = t - self.delay;
        let t0 = self.rise;
        let r = if tau <= 0.0 || tau >= t0 {
            0.0
        } else if tau < 0.5 * t0 {
            4.0 * tau / (t0 * t0)
        } else {
            4.0 * (t0 - tau) / (t0 * t0)
        };
        self.amplitude * r
    }

    /// `d g / d T` (analytic; equals `-g_dot`).
    pub fn dg_d_delay(&self, t: f64) -> f64 {
        -self.g_dot(t)
    }

    /// `d g / d t0` (analytic).
    pub fn dg_d_rise(&self, t: f64) -> f64 {
        let tau = t - self.delay;
        let t0 = self.rise;
        let d = if tau <= 0.0 || tau >= t0 {
            0.0
        } else if tau < 0.5 * t0 {
            -4.0 * tau * tau / (t0 * t0 * t0)
        } else {
            -4.0 * (t0 - tau) * tau / (t0 * t0 * t0)
        };
        self.amplitude * d
    }

    /// `d g / d u0` (the normalized ramp itself).
    pub fn dg_d_amplitude(&self, t: f64) -> f64 {
        self.ramp(t - self.delay)
    }
}

/// Double-couple moment tensors (Aki & Richards convention:
/// x north, y east, z down; angles in radians).
pub struct DoubleCouple;

impl DoubleCouple {
    /// Moment tensor of a shear dislocation with the given strike, dip, rake
    /// and scalar moment `m0` (N m). Symmetric, trace-free, with eigenvalues
    /// `(m0, 0, -m0)`.
    pub fn moment_tensor(strike: f64, dip: f64, rake: f64, m0: f64) -> [[f64; 3]; 3] {
        let (sf, cf) = strike.sin_cos();
        let (sd, cd) = dip.sin_cos();
        let (sl, cl) = rake.sin_cos();
        let s2f = 2.0 * sf * cf;
        let c2f = cf * cf - sf * sf;
        let s2d = 2.0 * sd * cd;
        let c2d = cd * cd - sd * sd;
        let mxx = -m0 * (sd * cl * s2f + s2d * sl * sf * sf);
        let mxy = m0 * (sd * cl * c2f + 0.5 * s2d * sl * s2f);
        let mxz = -m0 * (cd * cl * cf + c2d * sl * sf);
        let myy = m0 * (sd * cl * s2f - s2d * sl * cf * cf);
        let myz = -m0 * (cd * cl * sf - c2d * sl * cf);
        let mzz = m0 * s2d * sl;
        [[mxx, mxy, mxz], [mxy, myy, myz], [mxz, myz, mzz]]
    }
}

/// A point moment-tensor source.
#[derive(Clone, Copy, Debug)]
pub struct PointSource {
    /// Location (m): x north, y east, z down.
    pub position: [f64; 3],
    /// Moment tensor (N m); the time dependence is `moment * slip.g(t) /
    /// slip.amplitude` — i.e. `slip` carries the history, `moment` the
    /// final tensor.
    pub moment: [[f64; 3]; 3],
    pub slip: SlipFunction,
}

impl PointSource {
    /// Moment tensor at time `t` (ramps from zero to `moment`).
    pub fn moment_at(&self, t: f64) -> [[f64; 3]; 3] {
        let s = self.slip.dg_d_amplitude(t); // normalized ramp in [0,1]
        let mut m = self.moment;
        for row in &mut m {
            for v in row {
                *v *= s;
            }
        }
        m
    }
}

/// An extended fault: a rectangular rupture discretized into point sources
/// with a radially propagating rupture front (a Haskell-type model; the
/// paper's Northridge runs used the same idealization class).
#[derive(Clone, Debug)]
pub struct ExtendedFault {
    /// Geometric center of the rupture rectangle (m, x N / y E / z down).
    pub center: [f64; 3],
    /// Strike, dip, rake (radians).
    pub strike: f64,
    pub dip: f64,
    pub rake: f64,
    /// Along-strike length and down-dip width (m).
    pub length: f64,
    pub width: f64,
    /// Hypocenter position on the plane in fractional coordinates
    /// (`0..1` along strike, `0..1` down dip).
    pub hypocenter_frac: [f64; 2],
    /// Rupture-front speed (m/s).
    pub rupture_velocity: f64,
    /// Rise time of each subfault (s).
    pub rise_time: f64,
    /// Total seismic moment (N m).
    pub total_moment: f64,
}

impl ExtendedFault {
    /// Unit vector along strike.
    pub fn strike_dir(&self) -> [f64; 3] {
        [self.strike.cos(), self.strike.sin(), 0.0]
    }

    /// Unit vector down dip.
    pub fn dip_dir(&self) -> [f64; 3] {
        [-self.strike.sin() * self.dip.cos(), self.strike.cos() * self.dip.cos(), self.dip.sin()]
    }

    /// Fault-plane normal (strike x dip).
    pub fn normal(&self) -> [f64; 3] {
        let s = self.strike_dir();
        let d = self.dip_dir();
        [s[1] * d[2] - s[2] * d[1], s[2] * d[0] - s[0] * d[2], s[0] * d[1] - s[1] * d[0]]
    }

    fn point_on_plane(&self, u: f64, v: f64) -> [f64; 3] {
        // u, v in [0,1] along strike / down dip.
        let s = self.strike_dir();
        let d = self.dip_dir();
        let a = (u - 0.5) * self.length;
        let b = (v - 0.5) * self.width;
        [
            self.center[0] + a * s[0] + b * d[0],
            self.center[1] + a * s[1] + b * d[1],
            self.center[2] + a * s[2] + b * d[2],
        ]
    }

    /// Hypocenter in physical coordinates.
    pub fn hypocenter(&self) -> [f64; 3] {
        self.point_on_plane(self.hypocenter_frac[0], self.hypocenter_frac[1])
    }

    /// Discretize into `n_along x n_down` point sources with radial rupture
    /// delays and equal moment release.
    pub fn discretize(&self, n_along: usize, n_down: usize) -> Vec<PointSource> {
        assert!(n_along > 0 && n_down > 0);
        assert!(self.rupture_velocity > 0.0);
        let hypo = self.hypocenter();
        let m0_sub = self.total_moment / (n_along * n_down) as f64;
        let tensor = DoubleCouple::moment_tensor(self.strike, self.dip, self.rake, m0_sub);
        let mut out = Vec::with_capacity(n_along * n_down);
        for j in 0..n_down {
            let v = (j as f64 + 0.5) / n_down as f64;
            for i in 0..n_along {
                let u = (i as f64 + 0.5) / n_along as f64;
                let p = self.point_on_plane(u, v);
                let dist = ((p[0] - hypo[0]).powi(2)
                    + (p[1] - hypo[1]).powi(2)
                    + (p[2] - hypo[2]).powi(2))
                .sqrt();
                out.push(PointSource {
                    position: p,
                    moment: tensor,
                    slip: SlipFunction::new(dist / self.rupture_velocity, self.rise_time, 1.0),
                });
            }
        }
        out
    }

    /// A Northridge-like blind-thrust rupture scaled into a domain of edge
    /// `extent` meters (strike 122 deg, dip 40 deg, rake 101 deg, Mw ~ 6.7).
    pub fn northridge_like(extent: f64) -> ExtendedFault {
        let s = extent / 80_000.0;
        ExtendedFault {
            center: [30_000.0 * s, 28_000.0 * s, 13_000.0 * s],
            strike: 122f64.to_radians(),
            dip: 40f64.to_radians(),
            rake: 101f64.to_radians(),
            length: 18_000.0 * s,
            width: 14_000.0 * s,
            hypocenter_frac: [0.4, 0.85], // deep nucleation, up-dip rupture
            rupture_velocity: 2800.0,
            rise_time: 0.8,
            // Mw 6.7 -> M0 ~ 1.3e19 N m, scaled with rupture area.
            total_moment: 1.3e19 * s * s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slip_ramps_zero_to_amplitude() {
        let s = SlipFunction::new(2.0, 1.5, 0.8);
        assert_eq!(s.g(0.0), 0.0);
        assert_eq!(s.g(2.0), 0.0);
        assert!((s.g(2.75) - 0.4).abs() < 1e-12, "half slip at mid-rise");
        assert!((s.g(3.5) - 0.8).abs() < 1e-12);
        assert!((s.g(100.0) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn slip_rate_is_triangle_integrating_to_amplitude() {
        let s = SlipFunction::new(1.0, 2.0, 1.3);
        // Peak 2 u0 / t0 at mid-rise.
        assert!((s.g_dot(2.0) - 2.0 * 1.3 / 2.0).abs() < 1e-12);
        // Trapezoid integration of g_dot ~ amplitude.
        let dt = 1e-4;
        let mut acc = 0.0;
        let mut t = 0.0;
        while t < 4.0 {
            acc += 0.5 * (s.g_dot(t) + s.g_dot(t + dt)) * dt;
            t += dt;
        }
        assert!((acc - 1.3).abs() < 1e-6, "integral {acc}");
    }

    #[test]
    fn analytic_parameter_derivatives_match_finite_differences() {
        let s = SlipFunction::new(1.0, 2.0, 0.9);
        let eps = 1e-6;
        for &t in &[0.5, 1.2, 1.9, 2.4, 2.9, 3.5] {
            let fd_delay = (SlipFunction::new(1.0 + eps, 2.0, 0.9).g(t)
                - SlipFunction::new(1.0 - eps, 2.0, 0.9).g(t))
                / (2.0 * eps);
            assert!((s.dg_d_delay(t) - fd_delay).abs() < 1e-5, "dT at t={t}");
            let fd_rise = (SlipFunction::new(1.0, 2.0 + eps, 0.9).g(t)
                - SlipFunction::new(1.0, 2.0 - eps, 0.9).g(t))
                / (2.0 * eps);
            assert!((s.dg_d_rise(t) - fd_rise).abs() < 1e-5, "dt0 at t={t}");
            let fd_amp = (SlipFunction::new(1.0, 2.0, 0.9 + eps).g(t)
                - SlipFunction::new(1.0, 2.0, 0.9 - eps).g(t))
                / (2.0 * eps);
            assert!((s.dg_d_amplitude(t) - fd_amp).abs() < 1e-6, "du0 at t={t}");
        }
    }

    #[test]
    fn moment_tensor_is_symmetric_trace_free_double_couple() {
        for (strike, dip, rake) in
            [(0.0, 90.0, 0.0), (122.0, 40.0, 101.0), (45.0, 60.0, -90.0), (200.0, 30.0, 170.0)]
        {
            let m0 = 2.5e18;
            let m = DoubleCouple::moment_tensor(
                f64::to_radians(strike),
                f64::to_radians(dip),
                f64::to_radians(rake),
                m0,
            );
            let trace = m[0][0] + m[1][1] + m[2][2];
            assert!(trace.abs() < 1e-3 * m0, "trace {trace}");
            for i in 0..3 {
                for j in 0..3 {
                    assert_eq!(m[i][j], m[j][i]);
                }
            }
            // A double couple has Frobenius norm sqrt(2) m0 and zero det.
            let frob: f64 = m.iter().flatten().map(|v| v * v).sum();
            assert!((frob - 2.0 * m0 * m0).abs() < 1e-6 * m0 * m0, "frob {frob}");
            let det = m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
                - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
                + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0]);
            assert!(det.abs() < 1e-6 * m0 * m0 * m0, "det {det}");
        }
    }

    #[test]
    fn vertical_strike_slip_has_expected_entries() {
        // strike 0, dip 90, rake 0: Mxy = M0, everything else ~ 0.
        let m = DoubleCouple::moment_tensor(0.0, std::f64::consts::FRAC_PI_2, 0.0, 1.0);
        assert!((m[0][1] - 1.0).abs() < 1e-12);
        assert!(m[0][0].abs() < 1e-12 && m[1][1].abs() < 1e-12 && m[2][2].abs() < 1e-12);
        assert!(m[0][2].abs() < 1e-12 && m[1][2].abs() < 1e-12);
    }

    #[test]
    fn extended_fault_geometry_and_delays() {
        let f = ExtendedFault::northridge_like(80_000.0);
        let n = f.normal();
        let srcs = f.discretize(6, 4);
        assert_eq!(srcs.len(), 24);
        let hypo = f.hypocenter();
        for s in &srcs {
            // Subfaults lie on the plane through the center.
            let d = [
                s.position[0] - f.center[0],
                s.position[1] - f.center[1],
                s.position[2] - f.center[2],
            ];
            let off = d[0] * n[0] + d[1] * n[1] + d[2] * n[2];
            assert!(off.abs() < 1e-6, "subfault off plane by {off}");
            // Delay equals distance from the hypocenter over vr.
            let dist = ((s.position[0] - hypo[0]).powi(2)
                + (s.position[1] - hypo[1]).powi(2)
                + (s.position[2] - hypo[2]).powi(2))
            .sqrt();
            assert!((s.slip.delay - dist / f.rupture_velocity).abs() < 1e-9);
        }
        // Moment is conserved: sum of subfault Frobenius norms = total.
        let frob_sub: f64 =
            srcs.iter().map(|s| s.moment.iter().flatten().map(|v| v * v).sum::<f64>().sqrt()).sum();
        assert!((frob_sub - 2.0f64.sqrt() * f.total_moment).abs() < 1e-3 * f.total_moment);
    }

    #[test]
    fn point_source_moment_ramps() {
        let ps = PointSource {
            position: [0.0; 3],
            moment: DoubleCouple::moment_tensor(0.0, 1.0, 0.5, 1e18),
            slip: SlipFunction::new(1.0, 2.0, 1.0),
        };
        let zero = ps.moment_at(0.5);
        assert!(zero.iter().flatten().all(|&v| v == 0.0));
        let full = ps.moment_at(10.0);
        assert_eq!(full, ps.moment);
    }
}
