//! Material models: pointwise elastic properties of the ground.

/// Isotropic elastic material at a point. SI units.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Material {
    /// P-wave velocity (m/s).
    pub vp: f64,
    /// S-wave velocity (m/s).
    pub vs: f64,
    /// Density (kg/m^3).
    pub rho: f64,
}

impl Material {
    pub fn new(vp: f64, vs: f64, rho: f64) -> Material {
        let m = Material { vp, vs, rho };
        m.validate();
        m
    }

    /// Panics if the material is unphysical.
    pub fn validate(&self) {
        assert!(self.rho > 0.0, "density must be positive: {self:?}");
        assert!(self.vs > 0.0, "shear velocity must be positive: {self:?}");
        assert!(
            self.vp > self.vs * (4.0f64 / 3.0).sqrt(),
            "vp must exceed sqrt(4/3) vs (positive bulk modulus): {self:?}"
        );
    }

    /// Shear modulus `mu = rho vs^2` (Pa).
    pub fn mu(&self) -> f64 {
        self.rho * self.vs * self.vs
    }

    /// First Lame modulus `lambda = rho (vp^2 - 2 vs^2)` (Pa).
    pub fn lambda(&self) -> f64 {
        self.rho * (self.vp * self.vp - 2.0 * self.vs * self.vs)
    }

    /// Poisson's ratio.
    pub fn poisson(&self) -> f64 {
        let r = (self.vp / self.vs).powi(2);
        (r - 2.0) / (2.0 * (r - 1.0))
    }
}

/// A pointwise material model over the (cubic) computational domain.
///
/// Positions are in meters: `x` north, `y` east, `z` depth (down positive).
pub trait MaterialModel: Sync {
    fn sample(&self, x: f64, y: f64, z: f64) -> Material;

    /// Minimum shear velocity inside an axis-aligned box — used by the
    /// wavelength-adaptive mesher. The default probes the center, the 8
    /// corners and the 6 face centers; models with sharper structure should
    /// override.
    fn min_vs_in_box(&self, lo: [f64; 3], hi: [f64; 3]) -> f64 {
        let mid = [(lo[0] + hi[0]) / 2.0, (lo[1] + hi[1]) / 2.0, (lo[2] + hi[2]) / 2.0];
        let mut min = f64::INFINITY;
        let mut probe = |x: f64, y: f64, z: f64| {
            let m = self.sample(x, y, z);
            if m.vs < min {
                min = m.vs;
            }
        };
        probe(mid[0], mid[1], mid[2]);
        for cx in [lo[0], hi[0]] {
            for cy in [lo[1], hi[1]] {
                for cz in [lo[2], hi[2]] {
                    probe(cx, cy, cz);
                }
            }
        }
        probe(mid[0], mid[1], lo[2]);
        probe(mid[0], mid[1], hi[2]);
        probe(mid[0], lo[1], mid[2]);
        probe(mid[0], hi[1], mid[2]);
        probe(lo[0], mid[1], mid[2]);
        probe(hi[0], mid[1], mid[2]);
        min
    }
}

/// Uniform material everywhere.
#[derive(Clone, Copy, Debug)]
pub struct HomogeneousModel(pub Material);

impl MaterialModel for HomogeneousModel {
    fn sample(&self, _x: f64, _y: f64, _z: f64) -> Material {
        self.0
    }
}

/// Horizontally layered halfspace: layers ordered by increasing depth; the
/// last layer extends to infinity.
#[derive(Clone, Debug)]
pub struct LayeredModel {
    /// `(top_depth_m, material)`, sorted by `top_depth_m`, first at 0.
    layers: Vec<(f64, Material)>,
}

impl LayeredModel {
    pub fn new(layers: Vec<(f64, Material)>) -> LayeredModel {
        assert!(!layers.is_empty(), "need at least one layer");
        assert_eq!(layers[0].0, 0.0, "first layer must start at the free surface");
        for w in layers.windows(2) {
            assert!(w[0].0 < w[1].0, "layer tops must be strictly increasing");
        }
        for (_, m) in &layers {
            m.validate();
        }
        LayeredModel { layers }
    }

    pub fn layer_at(&self, z: f64) -> &Material {
        let i = self.layers.partition_point(|(top, _)| *top <= z);
        &self.layers[i.saturating_sub(1)].1
    }

    pub fn layers(&self) -> &[(f64, Material)] {
        &self.layers
    }
}

impl MaterialModel for LayeredModel {
    fn sample(&self, _x: f64, _y: f64, z: f64) -> Material {
        *self.layer_at(z)
    }

    fn min_vs_in_box(&self, lo: [f64; 3], hi: [f64; 3]) -> f64 {
        // vs is piecewise constant in depth; the minimum over the box is the
        // minimum over layers intersecting [lo.z, hi.z].
        let mut min = self.layer_at(lo[2]).vs;
        for (top, m) in &self.layers {
            if *top >= lo[2] && *top <= hi[2] && m.vs < min {
                min = m.vs;
            }
        }
        min
    }
}

/// The classic verification setup: a soft layer over a stiff halfspace
/// (Fig 2.2's geometry).
pub fn layer_over_halfspace(layer_depth: f64, soft: Material, stiff: Material) -> LayeredModel {
    LayeredModel::new(vec![(0.0, soft), (layer_depth, stiff)])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn soft() -> Material {
        Material::new(1000.0, 400.0, 1800.0)
    }

    fn stiff() -> Material {
        Material::new(5000.0, 2800.0, 2600.0)
    }

    #[test]
    fn moduli_roundtrip() {
        let m = Material::new(2000.0, 1000.0, 2200.0);
        assert!((m.mu() - 2200.0 * 1.0e6).abs() < 1e-3);
        assert!((m.lambda() - 2200.0 * (4.0e6 - 2.0e6)).abs() < 1e-3);
        // vp = sqrt((lambda + 2 mu) / rho) must recover vp.
        let vp = ((m.lambda() + 2.0 * m.mu()) / m.rho).sqrt();
        assert!((vp - m.vp).abs() < 1e-9);
        // Poisson for vp/vs = 2 is 1/3.
        assert!((m.poisson() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "vp must exceed")]
    fn unphysical_vp_vs_ratio_rejected() {
        Material::new(1000.0, 999.0, 2000.0);
    }

    #[test]
    fn layered_lookup() {
        let m = layer_over_halfspace(500.0, soft(), stiff());
        assert_eq!(m.sample(0.0, 0.0, 0.0).vs, 400.0);
        assert_eq!(m.sample(0.0, 0.0, 499.9).vs, 400.0);
        assert_eq!(m.sample(0.0, 0.0, 500.0).vs, 2800.0);
        assert_eq!(m.sample(1e5, -1e5, 1e4).vs, 2800.0);
    }

    #[test]
    fn layered_min_vs_sees_buried_soft_layer() {
        // Stiff crust over a soft low-velocity zone: a box spanning the
        // interface must report the soft vs even though its corners are stiff.
        let m = LayeredModel::new(vec![(0.0, stiff()), (1000.0, soft()), (1200.0, stiff())]);
        let min = m.min_vs_in_box([0.0, 0.0, 900.0], [100.0, 100.0, 1300.0]);
        assert_eq!(min, 400.0);
        // A box entirely above stays stiff.
        let min = m.min_vs_in_box([0.0, 0.0, 0.0], [100.0, 100.0, 800.0]);
        assert_eq!(min, 2800.0);
    }

    #[test]
    fn homogeneous_min_vs() {
        let h = HomogeneousModel(soft());
        assert_eq!(h.min_vs_in_box([0.0; 3], [1.0; 3]), 400.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_layers_rejected() {
        LayeredModel::new(vec![(0.0, soft()), (100.0, stiff()), (50.0, soft())]);
    }
}
