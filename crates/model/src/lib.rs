//! Material and source models for earthquake simulation.
//!
//! The paper drives its meshes and solvers from the SCEC Community Velocity
//! Model of the LA Basin and an idealized model of the 1994 Northridge
//! rupture. Neither dataset ships with this reproduction, so this crate
//! provides synthetic equivalents that exercise the same code paths (see
//! DESIGN.md for the substitution rationale):
//!
//! - [`material`]: the [`material::MaterialModel`] trait plus homogeneous and
//!   layered-halfspace models,
//! - [`labasin`]: a synthetic LA-basin velocity model — Gaussian-bowl basin
//!   geometry with a soft-sediment velocity profile over stiff bedrock,
//! - [`section2d`]: the 2-D basin cross-section used as the inversion target
//!   in Section 3 (Fig 3.2),
//! - [`source`]: dislocation slip functions `g(t; T, t0)` with analytic
//!   parameter derivatives (needed by the source inversion), double-couple
//!   moment tensors from (strike, dip, rake), and extended-fault ruptures,
//! - [`attenuation`]: the elementwise least-squares Rayleigh damping fit
//!   (`alpha M + beta K` matched to a target damping ratio over a band).
//!
//! Coordinate convention everywhere: `x` north, `y` east, `z` down (depth
//! positive), following Aki & Richards.

pub mod attenuation;
pub mod labasin;
pub mod material;
pub mod section2d;
pub mod source;

pub use attenuation::{fit_rayleigh, RayleighFit};
pub use labasin::LaBasinModel;
pub use material::{layer_over_halfspace, HomogeneousModel, LayeredModel, Material, MaterialModel};
pub use section2d::Section2d;
pub use source::{DoubleCouple, ExtendedFault, PointSource, SlipFunction};
