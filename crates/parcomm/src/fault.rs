//! Fault injection for SPMD runs.
//!
//! A [`FaultPlan`] scripts failures into a run the way a chaos harness
//! would: *kill rank R at step S* (the rank exits its step loop, dropping
//! its channel endpoints — peers subsequently observe
//! [`CommError::RankFailure`](crate::CommError::RankFailure) instead of
//! data), *delay an exchange* (the rank sleeps before communicating,
//! modeling a slow PE — results must be unchanged), or *drop an exchange*
//! (the rank skips one step's exchange entirely; with step-tagged exchanges
//! its peers detect the skew as a
//! [`CommError::Protocol`](crate::CommError::Protocol) mismatch instead of
//! silently absorbing stale data).
//!
//! The plan itself is pure data — consumers (the distributed solver's
//! recovery loop, the `bench_recover` binary) query it per `(rank, step)`
//! and act. Injection is a *test-time* capability: an empty plan is the
//! production configuration and costs three `Vec::is_empty` checks per step.

/// One scripted fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Rank exits its step loop before executing `step` (peers see its
    /// channels disconnect).
    Kill { rank: usize, step: u64 },
    /// Rank sleeps `millis` before the exchange of `step` (a slow PE;
    /// correctness must be unaffected).
    DelayExchange { rank: usize, step: u64, millis: u64 },
    /// Rank skips the exchange of `step` entirely (detected by peers via
    /// step-tag mismatch on the *next* exchange).
    DropExchange { rank: usize, step: u64 },
    /// Rank overwrites one entry of its solution state with NaN before
    /// executing `step` — a silent numerical corruption (bit flip, kernel
    /// bug) that no comm-layer check can see. Detection is the job of a
    /// numerics watchdog (the solver's `HealthHook`).
    CorruptState { rank: usize, step: u64, index: usize },
}

/// A scripted set of faults for one SPMD run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// The empty (production) plan.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Plan with a single rank kill.
    pub fn kill(rank: usize, step: u64) -> FaultPlan {
        FaultPlan::none().and(Fault::Kill { rank, step })
    }

    /// Add a fault (builder style).
    pub fn and(mut self, fault: Fault) -> FaultPlan {
        self.faults.push(fault);
        self
    }

    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Does `rank` die before executing `step`?
    pub fn should_kill(&self, rank: usize, step: u64) -> bool {
        self.faults
            .iter()
            .any(|f| matches!(f, Fault::Kill { rank: r, step: s } if *r == rank && *s == step))
    }

    /// Milliseconds of injected delay before the exchange of `step` on
    /// `rank` (sums if several delays are scripted).
    pub fn exchange_delay_ms(&self, rank: usize, step: u64) -> u64 {
        self.faults
            .iter()
            .filter_map(|f| match f {
                Fault::DelayExchange { rank: r, step: s, millis } if *r == rank && *s == step => {
                    Some(*millis)
                }
                _ => None,
            })
            .sum()
    }

    /// Does `rank` drop the exchange of `step`?
    pub fn drops_exchange(&self, rank: usize, step: u64) -> bool {
        self.faults.iter().any(
            |f| matches!(f, Fault::DropExchange { rank: r, step: s } if *r == rank && *s == step),
        )
    }

    /// The state index `rank` corrupts before executing `step`, if any
    /// (first scripted corruption wins).
    pub fn corrupts_state(&self, rank: usize, step: u64) -> Option<usize> {
        self.faults.iter().find_map(|f| match f {
            Fault::CorruptState { rank: r, step: s, index } if *r == rank && *s == step => {
                Some(*index)
            }
            _ => None,
        })
    }

    /// The earliest scripted kill step of any rank, if one exists (used by
    /// supervisors to sanity-check that checkpoints precede the fault).
    pub fn first_kill_step(&self) -> Option<u64> {
        self.faults
            .iter()
            .filter_map(|f| match f {
                Fault::Kill { step, .. } => Some(*step),
                _ => None,
            })
            .min()
    }

    /// This plan as seen from one rank — the view a per-rank step loop (or
    /// fault-injection hook) queries by step alone, without threading the
    /// full plan plus a rank id through its signature.
    pub fn rank_view(&self, rank: usize) -> RankFaults<'_> {
        RankFaults { plan: self, rank }
    }
}

/// One rank's view of a [`FaultPlan`] (see [`FaultPlan::rank_view`]).
#[derive(Clone, Copy, Debug)]
pub struct RankFaults<'p> {
    plan: &'p FaultPlan,
    rank: usize,
}

impl RankFaults<'_> {
    /// Does this rank die before executing `step`?
    pub fn kills(&self, step: u64) -> bool {
        self.plan.should_kill(self.rank, step)
    }

    /// Injected delay (ms) before this rank's exchange of `step`.
    pub fn delay_ms(&self, step: u64) -> u64 {
        self.plan.exchange_delay_ms(self.rank, step)
    }

    /// Does this rank drop the exchange of `step`?
    pub fn drops(&self, step: u64) -> bool {
        self.plan.drops_exchange(self.rank, step)
    }

    /// State index this rank corrupts before executing `step`, if any.
    pub fn corrupts(&self, step: u64) -> Option<usize> {
        self.plan.corrupts_state(self.rank, step)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_queries_match_scripted_faults() {
        let plan = FaultPlan::kill(2, 10)
            .and(Fault::DelayExchange { rank: 1, step: 4, millis: 3 })
            .and(Fault::DelayExchange { rank: 1, step: 4, millis: 2 })
            .and(Fault::DropExchange { rank: 0, step: 7 })
            .and(Fault::CorruptState { rank: 3, step: 8, index: 41 });
        assert!(plan.should_kill(2, 10));
        assert!(!plan.should_kill(2, 9));
        assert!(!plan.should_kill(1, 10));
        assert_eq!(plan.exchange_delay_ms(1, 4), 5);
        assert_eq!(plan.exchange_delay_ms(1, 5), 0);
        assert!(plan.drops_exchange(0, 7));
        assert!(!plan.drops_exchange(0, 8));
        assert_eq!(plan.corrupts_state(3, 8), Some(41));
        assert_eq!(plan.corrupts_state(3, 9), None);
        assert_eq!(plan.rank_view(3).corrupts(8), Some(41));
        assert_eq!(plan.first_kill_step(), Some(10));
        assert!(!plan.is_empty());
        assert!(FaultPlan::none().is_empty());
        assert_eq!(FaultPlan::none().first_kill_step(), None);
    }
}
