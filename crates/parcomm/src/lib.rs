//! SPMD rank/communicator layer — the MPI substitute (see DESIGN.md).
//!
//! The paper's solver is an owner-computes explicit code: each rank owns a
//! contiguous chunk of elements, assembles local forces, and sum-exchanges
//! the shared interface nodes with its neighbor ranks once per time step.
//! This crate reproduces that communication structure over OS threads:
//!
//! - [`run_spmd`] launches `P` ranks and hands each a [`Communicator`],
//! - point-to-point [`Communicator::send`]/[`Communicator::recv`] over
//!   per-pair unbounded channels,
//! - collectives: [`Communicator::barrier`],
//!   [`Communicator::allreduce_sum`], [`Communicator::allreduce_max`],
//! - the solver's workhorse [`Communicator::exchange_sum`]: symmetric
//!   neighbor lists of shared node ids, gather -> swap -> add.
//!
//! Correctness (data movement, ordering, determinism) is real; *timing* of a
//! 3000-PE machine is the job of `quake-machine`.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Barrier};

/// A message between ranks: a tag plus a payload of doubles.
#[derive(Clone, Debug, PartialEq)]
pub struct Message {
    pub tag: u64,
    pub data: Vec<f64>,
}

/// Per-rank handle to the communication fabric.
pub struct Communicator {
    rank: usize,
    size: usize,
    /// `senders[j]` sends to rank j (our channel into their inbox from us).
    senders: Vec<Sender<Message>>,
    /// `receivers[j]` receives messages sent by rank j to us.
    receivers: Vec<Receiver<Message>>,
    barrier: Arc<Barrier>,
}

impl Communicator {
    pub fn rank(&self) -> usize {
        self.rank
    }

    pub fn size(&self) -> usize {
        self.size
    }

    /// Send `data` to `to` with a tag (non-blocking; channels are unbounded).
    pub fn send(&self, to: usize, tag: u64, data: Vec<f64>) {
        assert!(to < self.size && to != self.rank, "invalid destination {to}");
        self.senders[to].send(Message { tag, data }).expect("peer rank hung up");
    }

    /// Blocking receive of the next message from `from`; panics on tag
    /// mismatch (our protocols are deterministic, so a mismatch is a bug).
    pub fn recv(&self, from: usize, tag: u64) -> Vec<f64> {
        assert!(from < self.size && from != self.rank, "invalid source {from}");
        let msg = self.receivers[from].recv().expect("peer rank hung up");
        assert_eq!(msg.tag, tag, "protocol mismatch: expected tag {tag}, got {}", msg.tag);
        msg.data
    }

    /// Synchronize all ranks.
    pub fn barrier(&self) {
        self.barrier.wait();
    }

    /// Elementwise global sum of `x` across ranks (gather at 0, broadcast).
    pub fn allreduce_sum(&self, x: &mut [f64]) {
        const TAG: u64 = 0xA11;
        if self.size == 1 {
            return;
        }
        if self.rank == 0 {
            for r in 1..self.size {
                let part = self.recv(r, TAG);
                assert_eq!(part.len(), x.len());
                for (a, b) in x.iter_mut().zip(&part) {
                    *a += b;
                }
            }
            for r in 1..self.size {
                self.send(r, TAG + 1, x.to_vec());
            }
        } else {
            self.send(0, TAG, x.to_vec());
            let total = self.recv(0, TAG + 1);
            x.copy_from_slice(&total);
        }
    }

    /// Elementwise global max of `x` across ranks (gather at 0, broadcast).
    pub fn allreduce_max_elems(&self, x: &mut [f64]) {
        self.allreduce_elems(x, f64::max, 0xC33)
    }

    /// Elementwise global min of `x` across ranks (gather at 0, broadcast).
    pub fn allreduce_min_elems(&self, x: &mut [f64]) {
        self.allreduce_elems(x, f64::min, 0xC44)
    }

    fn allreduce_elems(&self, x: &mut [f64], op: impl Fn(f64, f64) -> f64, tag: u64) {
        if self.size == 1 {
            return;
        }
        if self.rank == 0 {
            for r in 1..self.size {
                let part = self.recv(r, tag);
                assert_eq!(part.len(), x.len());
                for (a, b) in x.iter_mut().zip(&part) {
                    *a = op(*a, *b);
                }
            }
            for r in 1..self.size {
                self.send(r, tag + 1, x.to_vec());
            }
        } else {
            self.send(0, tag, x.to_vec());
            let total = self.recv(0, tag + 1);
            x.copy_from_slice(&total);
        }
    }

    /// Global max reduction of a scalar.
    pub fn allreduce_max(&self, v: f64) -> f64 {
        const TAG: u64 = 0xB22;
        if self.size == 1 {
            return v;
        }
        if self.rank == 0 {
            let mut m = v;
            for r in 1..self.size {
                m = m.max(self.recv(r, TAG)[0]);
            }
            for r in 1..self.size {
                self.send(r, TAG + 1, vec![m]);
            }
            m
        } else {
            self.send(0, TAG, vec![v]);
            self.recv(0, TAG + 1)[0]
        }
    }

    /// Sum-exchange shared entries with neighbor ranks.
    ///
    /// `neighbors` holds `(rank, shared_indices)` pairs; both sides must hold
    /// *identical* index lists (as produced by `quake_mesh::ExchangePlan`).
    /// For each neighbor, the values of `data` at the shared indices (ncomp
    /// per index) are sent; received contributions are added in place. Sends
    /// all go out before any receive, so the exchange cannot deadlock.
    pub fn exchange_sum(&self, neighbors: &[(usize, Vec<u32>)], data: &mut [f64], ncomp: usize) {
        const TAG: u64 = 0xE0;
        for (nbr, ids) in neighbors {
            let mut buf = Vec::with_capacity(ids.len() * ncomp);
            for &i in ids {
                for c in 0..ncomp {
                    buf.push(data[i as usize * ncomp + c]);
                }
            }
            self.send(*nbr, TAG, buf);
        }
        for (nbr, ids) in neighbors {
            let buf = self.recv(*nbr, TAG);
            assert_eq!(buf.len(), ids.len() * ncomp);
            for (k, &i) in ids.iter().enumerate() {
                for c in 0..ncomp {
                    data[i as usize * ncomp + c] += buf[k * ncomp + c];
                }
            }
        }
    }
}

/// Run `f` on `n_ranks` ranks, returning the per-rank results in rank order.
pub fn run_spmd<R: Send>(n_ranks: usize, f: impl Fn(&Communicator) -> R + Sync) -> Vec<R> {
    assert!(n_ranks > 0);
    // Channel matrix: chan[i][j] carries i -> j. The diagonal (self)
    // channels are created but never used — `send` asserts `to != rank`.
    let mut senders: Vec<Vec<Option<Sender<Message>>>> =
        (0..n_ranks).map(|_| (0..n_ranks).map(|_| None).collect()).collect();
    let mut receivers: Vec<Vec<Option<Receiver<Message>>>> =
        (0..n_ranks).map(|_| (0..n_ranks).map(|_| None).collect()).collect();
    for i in 0..n_ranks {
        for j in 0..n_ranks {
            let (s, r) = channel();
            senders[i][j] = Some(s);
            receivers[j][i] = Some(r);
        }
    }
    let barrier = Arc::new(Barrier::new(n_ranks));
    let mut comms: Vec<Communicator> = Vec::with_capacity(n_ranks);
    for (rank, (srow, rrow)) in senders.into_iter().zip(receivers).enumerate() {
        comms.push(Communicator {
            rank,
            size: n_ranks,
            senders: srow.into_iter().map(|s| s.unwrap()).collect(),
            receivers: rrow.into_iter().map(|r| r.unwrap()).collect(),
            barrier: barrier.clone(),
        });
    }

    // Each rank's Communicator moves into its own thread (mpsc receivers are
    // Send but not Sync); results come back in rank order via the handles.
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = comms.into_iter().map(|comm| scope.spawn(move || f(&comm))).collect();
        handles.into_iter().map(|h| h.join().expect("rank panicked")).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_pass_accumulates_all_ranks() {
        let n = 4;
        let results = run_spmd(n, |c| {
            // Pass a token around the ring, each rank adds its id.
            let mut token = if c.rank() == 0 { vec![0.0] } else { c.recv(c.rank() - 1, 7) };
            token[0] += c.rank() as f64;
            if c.rank() + 1 < c.size() {
                c.send(c.rank() + 1, 7, token.clone());
            }
            token[0]
        });
        assert_eq!(results[n - 1], (0..n).sum::<usize>() as f64);
    }

    #[test]
    fn allreduce_sum_is_consistent_on_all_ranks() {
        let results = run_spmd(5, |c| {
            let mut x = vec![c.rank() as f64, 1.0];
            c.allreduce_sum(&mut x);
            x
        });
        for r in &results {
            assert_eq!(r, &vec![10.0, 5.0]);
        }
    }

    #[test]
    fn allreduce_min_max_elems_are_elementwise_and_consistent() {
        let results = run_spmd(4, |c| {
            let r = c.rank() as f64;
            let mut mx = vec![r, -r, 10.0];
            let mut mn = mx.clone();
            c.allreduce_max_elems(&mut mx);
            c.allreduce_min_elems(&mut mn);
            (mx, mn)
        });
        for (mx, mn) in &results {
            assert_eq!(mx, &vec![3.0, 0.0, 10.0]);
            assert_eq!(mn, &vec![0.0, -3.0, 10.0]);
        }
    }

    #[test]
    fn allreduce_max_finds_global_max() {
        let results = run_spmd(6, |c| c.allreduce_max((c.rank() as f64 - 2.5).abs()));
        for r in results {
            assert_eq!(r, 2.5);
        }
    }

    #[test]
    fn exchange_sum_adds_symmetric_contributions() {
        // Two ranks share indices [1, 3] of a 5-entry, 2-component array.
        let results = run_spmd(2, |c| {
            let other = 1 - c.rank();
            let plan = vec![(other, vec![1u32, 3u32])];
            // data[i] = rank*100 + i for comp 0, negative for comp 1.
            let mut data: Vec<f64> = (0..10)
                .map(|k| {
                    let (i, comp) = (k / 2, k % 2);
                    let v = c.rank() as f64 * 100.0 + i as f64;
                    if comp == 0 {
                        v
                    } else {
                        -v
                    }
                })
                .collect();
            c.exchange_sum(&plan, &mut data, 2);
            data
        });
        // Shared entries hold the sum of both ranks' values; others untouched.
        for (rank, data) in results.iter().enumerate() {
            for i in 0..5usize {
                let expect0 = if i == 1 || i == 3 {
                    (i + i) as f64 + 100.0
                } else {
                    rank as f64 * 100.0 + i as f64
                };
                assert_eq!(data[2 * i], expect0, "rank {rank} node {i}");
                assert_eq!(data[2 * i + 1], -expect0, "rank {rank} node {i} comp 1");
            }
        }
    }

    #[test]
    fn barrier_orders_phases() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let phase1 = AtomicUsize::new(0);
        let results = run_spmd(4, |c| {
            phase1.fetch_add(1, Ordering::SeqCst);
            c.barrier();
            // After the barrier every rank must observe all 4 increments.
            phase1.load(Ordering::SeqCst)
        });
        assert!(results.iter().all(|&r| r == 4));
    }

    #[test]
    fn single_rank_collectives_are_identity() {
        let r = run_spmd(1, |c| {
            let mut x = vec![3.0, 4.0];
            c.allreduce_sum(&mut x);
            assert_eq!(c.allreduce_max(9.0), 9.0);
            c.barrier();
            x
        });
        assert_eq!(r[0], vec![3.0, 4.0]);
    }
}
