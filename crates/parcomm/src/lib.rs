//! SPMD rank/communicator layer — the MPI substitute (see DESIGN.md).
//!
//! The paper's solver is an owner-computes explicit code: each rank owns a
//! contiguous chunk of elements, assembles local forces, and sum-exchanges
//! the shared interface nodes with its neighbor ranks once per time step.
//! This crate reproduces that communication structure over OS threads:
//!
//! - [`run_spmd`] launches `P` ranks and hands each a [`Communicator`],
//! - point-to-point [`Communicator::send`]/[`Communicator::recv`] over
//!   per-pair unbounded channels,
//! - collectives: [`Communicator::barrier`],
//!   [`Communicator::allreduce_sum`], [`Communicator::allreduce_max`],
//! - the solver's workhorse [`Communicator::exchange_sum`]: symmetric
//!   neighbor lists of shared node ids, gather -> swap -> add.
//!
//! Correctness (data movement, ordering, determinism) is real; *timing* of a
//! 3000-PE machine is the job of `quake-machine`.
//!
//! # Failure semantics
//!
//! Every blocking primitive has a `try_*` twin returning
//! `Result<_, CommError>`: a peer that exits (voluntarily or through an
//! injected fault, see [`fault`]) drops its channel endpoints, and the next
//! operation against it observes [`CommError::RankFailure`] instead of data.
//! Because a rank that stops — for any reason — always drops its
//! `Communicator`, **no blocking receive can hang forever**: it either gets
//! a message or a disconnect. The panicking methods ([`Communicator::send`],
//! [`Communicator::recv`], the collectives) are thin wrappers over the
//! `try_*` forms, so pre-existing call sites keep their fail-stop behavior
//! unchanged while fault-tolerant callers (the distributed solver's
//! checkpoint/recovery supervisor) switch to the `Result` forms.

pub mod fault;

pub use fault::{Fault, FaultPlan, RankFaults};

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Barrier};

/// A communication failure observed by one rank. The fabric is deterministic
/// (fixed protocols, per-pair FIFO channels), so each variant pinpoints a
/// real event: a peer that went away, or a protocol skew such as a dropped
/// exchange shifting the step tags.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CommError {
    /// The peer's channel endpoints are gone: it exited, was killed by a
    /// fault plan, or aborted its own step loop.
    RankFailure { peer: usize },
    /// A message arrived with the wrong tag — the deterministic protocols
    /// make this a desynchronization (e.g. a peer skipped an exchange).
    Protocol { peer: usize, expected: u64, got: u64 },
    /// A payload had the wrong length for the agreed exchange plan.
    SizeMismatch { peer: usize, expected: usize, got: usize },
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::RankFailure { peer } => write!(f, "rank {peer} failed (peer rank hung up)"),
            CommError::Protocol { peer, expected, got } => {
                write!(
                    f,
                    "protocol mismatch with rank {peer}: expected tag {expected:#x}, got {got:#x}"
                )
            }
            CommError::SizeMismatch { peer, expected, got } => {
                write!(f, "size mismatch from rank {peer}: expected {expected} doubles, got {got}")
            }
        }
    }
}

impl std::error::Error for CommError {}

/// A message between ranks: a tag plus a payload of doubles.
#[derive(Clone, Debug, PartialEq)]
pub struct Message {
    pub tag: u64,
    pub data: Vec<f64>,
}

/// Per-rank handle to the communication fabric.
pub struct Communicator {
    rank: usize,
    size: usize,
    /// `senders[j]` sends to rank j (our channel into their inbox from us).
    senders: Vec<Sender<Message>>,
    /// `receivers[j]` receives messages sent by rank j to us.
    receivers: Vec<Receiver<Message>>,
    barrier: Arc<Barrier>,
}

impl Communicator {
    pub fn rank(&self) -> usize {
        self.rank
    }

    pub fn size(&self) -> usize {
        self.size
    }

    /// Send `data` to `to` with a tag (non-blocking; channels are unbounded).
    /// Returns [`CommError::RankFailure`] if the destination has exited.
    pub fn try_send(&self, to: usize, tag: u64, data: Vec<f64>) -> Result<(), CommError> {
        assert!(to < self.size && to != self.rank, "invalid destination {to}");
        self.senders[to]
            .send(Message { tag, data })
            .map_err(|_| CommError::RankFailure { peer: to })
    }

    /// Blocking receive of the next message from `from`. Returns
    /// [`CommError::RankFailure`] if the peer exits before sending and
    /// [`CommError::Protocol`] on a tag mismatch. Never hangs forever: a
    /// stopped peer always disconnects its channels.
    pub fn try_recv(&self, from: usize, tag: u64) -> Result<Vec<f64>, CommError> {
        assert!(from < self.size && from != self.rank, "invalid source {from}");
        let msg = self.receivers[from].recv().map_err(|_| CommError::RankFailure { peer: from })?;
        if msg.tag != tag {
            return Err(CommError::Protocol { peer: from, expected: tag, got: msg.tag });
        }
        Ok(msg.data)
    }

    /// Fail-stop [`Communicator::try_send`] (the original API; a dead peer
    /// is a bug for callers that opted out of recovery).
    pub fn send(&self, to: usize, tag: u64, data: Vec<f64>) {
        self.try_send(to, tag, data).expect("peer rank hung up");
    }

    /// Fail-stop [`Communicator::try_recv`]; panics on failure or tag
    /// mismatch (our protocols are deterministic, so a mismatch is a bug).
    pub fn recv(&self, from: usize, tag: u64) -> Vec<f64> {
        self.try_recv(from, tag).expect("peer rank hung up")
    }

    /// Synchronize all ranks.
    pub fn barrier(&self) {
        self.barrier.wait();
    }

    /// Elementwise global sum of `x` across ranks (gather at 0, broadcast);
    /// `Result`-based — a dead rank anywhere surfaces as an error on every
    /// survivor instead of a panic.
    pub fn try_allreduce_sum(&self, x: &mut [f64]) -> Result<(), CommError> {
        self.try_allreduce_elems_tagged(x, |a, b| a + b, 0xA11)
    }

    /// Fail-stop [`Communicator::try_allreduce_sum`].
    pub fn allreduce_sum(&self, x: &mut [f64]) {
        self.try_allreduce_sum(x).expect("peer rank hung up");
    }

    /// Elementwise global max of `x` across ranks (gather at 0, broadcast).
    pub fn allreduce_max_elems(&self, x: &mut [f64]) {
        self.try_allreduce_elems_tagged(x, f64::max, 0xC33).expect("peer rank hung up");
    }

    /// Elementwise global min of `x` across ranks (gather at 0, broadcast).
    pub fn allreduce_min_elems(&self, x: &mut [f64]) {
        self.try_allreduce_elems_tagged(x, f64::min, 0xC44).expect("peer rank hung up");
    }

    fn try_allreduce_elems_tagged(
        &self,
        x: &mut [f64],
        op: impl Fn(f64, f64) -> f64,
        tag: u64,
    ) -> Result<(), CommError> {
        if self.size == 1 {
            return Ok(());
        }
        if self.rank == 0 {
            for r in 1..self.size {
                let part = self.try_recv(r, tag)?;
                if part.len() != x.len() {
                    return Err(CommError::SizeMismatch {
                        peer: r,
                        expected: x.len(),
                        got: part.len(),
                    });
                }
                for (a, b) in x.iter_mut().zip(&part) {
                    *a = op(*a, *b);
                }
            }
            for r in 1..self.size {
                self.try_send(r, tag + 1, x.to_vec())?;
            }
        } else {
            self.try_send(0, tag, x.to_vec())?;
            let total = self.try_recv(0, tag + 1)?;
            if total.len() != x.len() {
                return Err(CommError::SizeMismatch {
                    peer: 0,
                    expected: x.len(),
                    got: total.len(),
                });
            }
            x.copy_from_slice(&total);
        }
        Ok(())
    }

    /// Global max reduction of a scalar; `Result`-based.
    pub fn try_allreduce_max(&self, v: f64) -> Result<f64, CommError> {
        const TAG: u64 = 0xB22;
        if self.size == 1 {
            return Ok(v);
        }
        if self.rank == 0 {
            let mut m = v;
            for r in 1..self.size {
                m = m.max(self.try_recv(r, TAG)?[0]);
            }
            for r in 1..self.size {
                self.try_send(r, TAG + 1, vec![m])?;
            }
            Ok(m)
        } else {
            self.try_send(0, TAG, vec![v])?;
            Ok(self.try_recv(0, TAG + 1)?[0])
        }
    }

    /// Fail-stop [`Communicator::try_allreduce_max`].
    pub fn allreduce_max(&self, v: f64) -> f64 {
        self.try_allreduce_max(v).expect("peer rank hung up")
    }

    /// Sum-exchange shared entries with neighbor ranks.
    ///
    /// `neighbors` holds `(rank, shared_indices)` pairs; both sides must hold
    /// *identical* index lists (as produced by `quake_mesh::ExchangePlan`).
    /// For each neighbor, the values of `data` at the shared indices (ncomp
    /// per index) are sent; received contributions are added in place. Sends
    /// all go out before any receive, so the exchange cannot deadlock — an
    /// *asymmetric* neighbor list (a rank listed us but we did not list it)
    /// therefore surfaces as a [`CommError`] when the forgotten rank's
    /// blocking receive observes our exit, never as a hang.
    ///
    /// `tag` distinguishes exchange generations. The recoverable distributed
    /// solver tags each time step's exchange with the step index, so a peer
    /// that skipped an exchange (see [`Fault::DropExchange`]) is detected as
    /// [`CommError::Protocol`] skew rather than silently summing stale data.
    pub fn try_exchange_sum(
        &self,
        neighbors: &[(usize, Vec<u32>)],
        data: &mut [f64],
        ncomp: usize,
        tag: u64,
    ) -> Result<(), CommError> {
        for (nbr, ids) in neighbors {
            let mut buf = Vec::with_capacity(ids.len() * ncomp);
            for &i in ids {
                for c in 0..ncomp {
                    buf.push(data[i as usize * ncomp + c]);
                }
            }
            self.try_send(*nbr, tag, buf)?;
        }
        for (nbr, ids) in neighbors {
            let buf = self.try_recv(*nbr, tag)?;
            if buf.len() != ids.len() * ncomp {
                return Err(CommError::SizeMismatch {
                    peer: *nbr,
                    expected: ids.len() * ncomp,
                    got: buf.len(),
                });
            }
            for (k, &i) in ids.iter().enumerate() {
                for c in 0..ncomp {
                    data[i as usize * ncomp + c] += buf[k * ncomp + c];
                }
            }
        }
        Ok(())
    }

    /// [`Communicator::try_exchange_sum`] with a wall-clock attribution of
    /// where the call spent its time: `wait` (blocked in receives, i.e. the
    /// neighbor had not sent yet — the load-imbalance signal) vs `copy`
    /// (packing, channel handoff, and unpack-add — the true data-movement
    /// cost). Timing accumulates into `timing` so one struct can cover a
    /// whole step. The untimed form stays separate so steady-state callers
    /// pay no clock reads.
    pub fn try_exchange_sum_timed(
        &self,
        neighbors: &[(usize, Vec<u32>)],
        data: &mut [f64],
        ncomp: usize,
        tag: u64,
        timing: &mut ExchangeTiming,
    ) -> Result<(), CommError> {
        let mut t = std::time::Instant::now();
        for (nbr, ids) in neighbors {
            let mut buf = Vec::with_capacity(ids.len() * ncomp);
            for &i in ids {
                for c in 0..ncomp {
                    buf.push(data[i as usize * ncomp + c]);
                }
            }
            self.try_send(*nbr, tag, buf)?;
        }
        timing.copy_ns += t.elapsed().as_nanos() as u64;
        for (nbr, ids) in neighbors {
            t = std::time::Instant::now();
            let buf = self.try_recv(*nbr, tag)?;
            timing.wait_ns += t.elapsed().as_nanos() as u64;
            t = std::time::Instant::now();
            if buf.len() != ids.len() * ncomp {
                return Err(CommError::SizeMismatch {
                    peer: *nbr,
                    expected: ids.len() * ncomp,
                    got: buf.len(),
                });
            }
            for (k, &i) in ids.iter().enumerate() {
                for c in 0..ncomp {
                    data[i as usize * ncomp + c] += buf[k * ncomp + c];
                }
            }
            timing.copy_ns += t.elapsed().as_nanos() as u64;
        }
        Ok(())
    }

    /// Fail-stop [`Communicator::try_exchange_sum`] at a fixed tag.
    pub fn exchange_sum(&self, neighbors: &[(usize, Vec<u32>)], data: &mut [f64], ncomp: usize) {
        const TAG: u64 = 0xE0;
        self.try_exchange_sum(neighbors, data, ncomp, TAG).expect("peer rank hung up");
    }
}

/// Wall-clock split of a timed sum-exchange (see
/// [`Communicator::try_exchange_sum_timed`]). Nanosecond accumulators; a
/// default value is a zeroed one.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExchangeTiming {
    /// Time blocked in receives — the peer had not posted its send yet.
    pub wait_ns: u64,
    /// Time packing/unpacking payloads and handing them to channels.
    pub copy_ns: u64,
}

impl ExchangeTiming {
    pub fn total_ns(&self) -> u64 {
        self.wait_ns + self.copy_ns
    }
}

/// Run `f` on `n_ranks` ranks, returning the per-rank results in rank order.
pub fn run_spmd<R: Send>(n_ranks: usize, f: impl Fn(&Communicator) -> R + Sync) -> Vec<R> {
    assert!(n_ranks > 0);
    // Channel matrix: chan[i][j] carries i -> j. The diagonal (self)
    // channels are created but never used — `send` asserts `to != rank`.
    // Rows are built by pushing in ascending order of the opposite index
    // (receivers[j] gains one entry per i, in i order), so both matrices
    // come out fully populated with no Option/unwrap step.
    let mut senders: Vec<Vec<Sender<Message>>> =
        (0..n_ranks).map(|_| Vec::with_capacity(n_ranks)).collect();
    let mut receivers: Vec<Vec<Receiver<Message>>> =
        (0..n_ranks).map(|_| Vec::with_capacity(n_ranks)).collect();
    for i in 0..n_ranks {
        for j in 0..n_ranks {
            let (s, r) = channel();
            senders[i].push(s); // senders[i][j]
            receivers[j].push(r); // receivers[j][i]
        }
    }
    let barrier = Arc::new(Barrier::new(n_ranks));
    let mut comms: Vec<Communicator> = Vec::with_capacity(n_ranks);
    for (rank, (srow, rrow)) in senders.into_iter().zip(receivers).enumerate() {
        comms.push(Communicator {
            rank,
            size: n_ranks,
            senders: srow,
            receivers: rrow,
            barrier: barrier.clone(),
        });
    }

    // Each rank's Communicator moves into its own thread (mpsc receivers are
    // Send but not Sync); results come back in rank order via the handles.
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = comms.into_iter().map(|comm| scope.spawn(move || f(&comm))).collect();
        handles.into_iter().map(|h| h.join().expect("rank panicked")).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_pass_accumulates_all_ranks() {
        let n = 4;
        let results = run_spmd(n, |c| {
            // Pass a token around the ring, each rank adds its id.
            let mut token = if c.rank() == 0 { vec![0.0] } else { c.recv(c.rank() - 1, 7) };
            token[0] += c.rank() as f64;
            if c.rank() + 1 < c.size() {
                c.send(c.rank() + 1, 7, token.clone());
            }
            token[0]
        });
        assert_eq!(results[n - 1], (0..n).sum::<usize>() as f64);
    }

    #[test]
    fn allreduce_sum_is_consistent_on_all_ranks() {
        let results = run_spmd(5, |c| {
            let mut x = vec![c.rank() as f64, 1.0];
            c.allreduce_sum(&mut x);
            x
        });
        for r in &results {
            assert_eq!(r, &vec![10.0, 5.0]);
        }
    }

    #[test]
    fn allreduce_min_max_elems_are_elementwise_and_consistent() {
        let results = run_spmd(4, |c| {
            let r = c.rank() as f64;
            let mut mx = vec![r, -r, 10.0];
            let mut mn = mx.clone();
            c.allreduce_max_elems(&mut mx);
            c.allreduce_min_elems(&mut mn);
            (mx, mn)
        });
        for (mx, mn) in &results {
            assert_eq!(mx, &vec![3.0, 0.0, 10.0]);
            assert_eq!(mn, &vec![0.0, -3.0, 10.0]);
        }
    }

    #[test]
    fn allreduce_max_finds_global_max() {
        let results = run_spmd(6, |c| c.allreduce_max((c.rank() as f64 - 2.5).abs()));
        for r in results {
            assert_eq!(r, 2.5);
        }
    }

    #[test]
    fn exchange_sum_adds_symmetric_contributions() {
        // Two ranks share indices [1, 3] of a 5-entry, 2-component array.
        let results = run_spmd(2, |c| {
            let other = 1 - c.rank();
            let plan = vec![(other, vec![1u32, 3u32])];
            // data[i] = rank*100 + i for comp 0, negative for comp 1.
            let mut data: Vec<f64> = (0..10)
                .map(|k| {
                    let (i, comp) = (k / 2, k % 2);
                    let v = c.rank() as f64 * 100.0 + i as f64;
                    if comp == 0 {
                        v
                    } else {
                        -v
                    }
                })
                .collect();
            c.exchange_sum(&plan, &mut data, 2);
            data
        });
        // Shared entries hold the sum of both ranks' values; others untouched.
        for (rank, data) in results.iter().enumerate() {
            for i in 0..5usize {
                let expect0 = if i == 1 || i == 3 {
                    (i + i) as f64 + 100.0
                } else {
                    rank as f64 * 100.0 + i as f64
                };
                assert_eq!(data[2 * i], expect0, "rank {rank} node {i}");
                assert_eq!(data[2 * i + 1], -expect0, "rank {rank} node {i} comp 1");
            }
        }
    }

    #[test]
    fn barrier_orders_phases() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let phase1 = AtomicUsize::new(0);
        let results = run_spmd(4, |c| {
            phase1.fetch_add(1, Ordering::SeqCst);
            c.barrier();
            // After the barrier every rank must observe all 4 increments.
            phase1.load(Ordering::SeqCst)
        });
        assert!(results.iter().all(|&r| r == 4));
    }

    #[test]
    fn single_rank_collectives_are_identity() {
        let r = run_spmd(1, |c| {
            let mut x = vec![3.0, 4.0];
            c.allreduce_sum(&mut x);
            assert_eq!(c.allreduce_max(9.0), 9.0);
            c.barrier();
            x
        });
        assert_eq!(r[0], vec![3.0, 4.0]);
    }

    #[test]
    fn exchange_sum_single_rank_no_neighbors_is_identity() {
        let r = run_spmd(1, |c| {
            let mut data = vec![1.0, 2.0, 3.0];
            c.try_exchange_sum(&[], &mut data, 3, 0xE0)?;
            Ok::<_, CommError>(data)
        });
        assert_eq!(r[0].as_ref().unwrap(), &vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn timed_exchange_matches_untimed_and_attributes_time() {
        // Same data movement as exchange_sum_adds_symmetric_contributions,
        // but through the timed form; rank 1 sleeps before exchanging so
        // rank 0 must observe genuine wait time.
        let results = run_spmd(2, |c| {
            let other = 1 - c.rank();
            let plan = vec![(other, vec![1u32, 3u32])];
            let mut data: Vec<f64> = (0..5).map(|i| c.rank() as f64 * 100.0 + i as f64).collect();
            if c.rank() == 1 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            let mut timing = ExchangeTiming::default();
            c.try_exchange_sum_timed(&plan, &mut data, 1, 0xE7, &mut timing)?;
            Ok::<_, CommError>((data, timing))
        });
        for (rank, r) in results.iter().enumerate() {
            let (data, timing) = r.as_ref().unwrap();
            for i in 0..5usize {
                let expect = if i == 1 || i == 3 {
                    (i + i) as f64 + 100.0
                } else {
                    rank as f64 * 100.0 + i as f64
                };
                assert_eq!(data[i], expect, "rank {rank} node {i}");
            }
            assert_eq!(timing.total_ns(), timing.wait_ns + timing.copy_ns);
        }
        // The sleeping rank finds rank 0's send already posted; rank 0 waits
        // out the 5ms sleep in its blocking receive.
        let (_, t0) = results[0].as_ref().unwrap();
        assert!(t0.wait_ns >= 4_000_000, "rank 0 wait {} ns", t0.wait_ns);
    }

    #[test]
    fn exchange_sum_empty_shared_indices_is_identity() {
        // Neighbors listed but with zero shared nodes: an empty message each
        // way, data unchanged, no deadlock.
        let results = run_spmd(2, |c| {
            let plan = vec![(1 - c.rank(), Vec::<u32>::new())];
            let mut data = vec![c.rank() as f64; 4];
            c.try_exchange_sum(&plan, &mut data, 2, 0xE0)?;
            Ok::<_, CommError>(data)
        });
        for (rank, r) in results.iter().enumerate() {
            assert_eq!(r.as_ref().unwrap(), &vec![rank as f64; 4]);
        }
    }

    #[test]
    fn exchange_sum_asymmetric_neighbor_lists_error_instead_of_deadlocking() {
        // Rank 0 lists rank 1, but rank 1 lists nobody and exits. Rank 0's
        // blocking receive must observe the disconnect as RankFailure.
        let results = run_spmd(2, |c| {
            if c.rank() == 0 {
                let plan = vec![(1usize, vec![0u32])];
                let mut data = vec![5.0];
                c.try_exchange_sum(&plan, &mut data, 1, 0xE0)
            } else {
                Ok(()) // drops its Communicator on return
            }
        });
        assert!(matches!(results[0], Err(CommError::RankFailure { peer: 1 })));
        assert!(results[1].is_ok());
    }

    #[test]
    fn try_recv_reports_tag_skew_as_protocol_error() {
        let results = run_spmd(2, |c| {
            if c.rank() == 0 {
                c.try_send(1, 0xE000_0000 + 3, vec![1.0])?;
                Ok(Vec::new())
            } else {
                c.try_recv(0, 0xE000_0000 + 4)
            }
        });
        match &results[1] {
            Err(CommError::Protocol { peer, expected, got }) => {
                assert_eq!((*peer, *expected, *got), (0, 0xE000_0000 + 4, 0xE000_0000 + 3));
            }
            other => panic!("expected Protocol error, got {other:?}"),
        }
    }

    #[test]
    fn allreduce_survivors_error_when_a_rank_dies() {
        // Rank 2 exits before the reduction; every survivor's allreduce must
        // return RankFailure rather than hang or panic.
        let results = run_spmd(3, |c| {
            if c.rank() == 2 {
                return None;
            }
            let mut x = vec![c.rank() as f64];
            Some(c.try_allreduce_sum(&mut x))
        });
        assert!(matches!(results[0], Some(Err(CommError::RankFailure { .. }))));
        assert!(matches!(results[1], Some(Err(CommError::RankFailure { .. }))));
        assert!(results[2].is_none());
    }
}
