//! The antiplane fault dislocation source (Fig 3.1).
//!
//! The source is a dipole along a vertical fault trace `Sigma`:
//! `b = -div(mu u0 g(t; T, t0) delta(Sigma) n)`. In weak form every fault
//! segment contributes nodal forces `mu u0 g(t) int_seg dN/dx dz`, which for
//! bilinear quads reduces to the classic antiplane double-couple stencil:
//! equal and opposite force columns one element either side of the trace.
//!
//! Every segment carries its own `(T, t0, u0)` (the fields the source
//! inversion of Fig 3.3 recovers), and the force derivatives with respect to
//! each are analytic — inherited from `quake_model::SlipFunction`.

use crate::grid::ShSolver;
use quake_model::SlipFunction;

/// Which source parameter field a derivative is taken against.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SourceParam {
    /// Delay time `T(s)` — rupture arrival.
    Delay,
    /// Rise time `t0(s)`.
    Rise,
    /// Dislocation amplitude `u0(s)`.
    Amplitude,
}

/// A discretized fault: one segment per element row along a vertical trace.
#[derive(Clone, Debug)]
pub struct FaultSource {
    /// Unit-slip nodal weights per segment (`g = 1`).
    pub seg_weights: Vec<Vec<(usize, f64)>>,
    /// Per-segment slip parameters.
    pub params: Vec<SlipFunction>,
    /// Segment center depths (m), for reporting against Fig 3.3.
    pub centers_z: Vec<f64>,
}

impl FaultSource {
    /// Build a fault along the grid line `x = i_fault * h`, spanning element
    /// rows `k_top..k_bot`, with per-segment parameters. `mu0` is the frozen
    /// modulus used in the dipole strength (kept independent of the inverted
    /// field so the discrete material gradient stays exact; see DESIGN.md).
    pub fn new(
        grid: &ShSolver,
        mu0: &[f64],
        i_fault: usize,
        k_top: usize,
        k_bot: usize,
        params: Vec<SlipFunction>,
    ) -> FaultSource {
        assert!(i_fault >= 1 && i_fault < grid.cfg.nx, "fault must be interior");
        assert!(k_top < k_bot && k_bot <= grid.cfg.nz);
        assert_eq!(params.len(), k_bot - k_top);
        assert_eq!(mu0.len(), grid.n_elements_pub());
        let mut seg_weights = Vec::with_capacity(k_bot - k_top);
        let mut centers_z = Vec::with_capacity(k_bot - k_top);
        for k in k_top..k_bot {
            let mut w: Vec<(usize, f64)> = Vec::with_capacity(8);
            // Left and right adjacent elements, each weighted 1/2 (the
            // dipole line sits on their shared edge).
            for (ei, side) in [(grid.elem(i_fault - 1, k), 0usize), (grid.elem(i_fault, k), 1)] {
                let m = mu0[ei];
                for c in 0..4usize {
                    let gx = if c & 1 == 0 { -1.0 } else { 1.0 };
                    // int_0^1 dN/dxi0 dxi1 = gx / 2; dipole split 1/2.
                    let weight = 0.5 * m * gx * 0.5;
                    let node = grid.elem_node_pub(ei, c);
                    let _ = side;
                    match w.iter_mut().find(|(nd, _)| *nd == node) {
                        Some((_, acc)) => *acc += weight,
                        None => w.push((node, weight)),
                    }
                }
            }
            w.retain(|(_, v)| v.abs() > 1e-300);
            seg_weights.push(w);
            centers_z.push((k as f64 + 0.5) * grid.cfg.h);
        }
        FaultSource { seg_weights, params, centers_z }
    }

    /// Uniform-slip fault with a radial rupture front from a hypocenter at
    /// element row `hypo_k` (delay = distance / rupture velocity).
    #[allow(clippy::too_many_arguments)]
    pub fn from_hypocenter(
        grid: &ShSolver,
        mu0: &[f64],
        i_fault: usize,
        k_top: usize,
        k_bot: usize,
        hypo_k: usize,
        rupture_velocity: f64,
        rise: f64,
        slip: f64,
    ) -> FaultSource {
        assert!(rupture_velocity > 0.0);
        let params = (k_top..k_bot)
            .map(|k| {
                let dist = (k as f64 - hypo_k as f64).abs() * grid.cfg.h;
                SlipFunction::new(dist / rupture_velocity, rise, slip)
            })
            .collect();
        FaultSource::new(grid, mu0, i_fault, k_top, k_bot, params)
    }

    pub fn n_segments(&self) -> usize {
        self.params.len()
    }

    /// Accumulate the source force at time `t`.
    pub fn add_force(&self, t: f64, f: &mut [f64]) {
        for (w, p) in self.seg_weights.iter().zip(&self.params) {
            let g = p.g(t);
            if g == 0.0 {
                continue;
            }
            for &(nd, wt) in w {
                f[nd] += wt * g;
            }
        }
    }

    /// Accumulate the force derivative against one segment's parameter.
    pub fn add_force_derivative(&self, which: SourceParam, seg: usize, t: f64, f: &mut [f64]) {
        let p = &self.params[seg];
        let dg = match which {
            SourceParam::Delay => p.dg_d_delay(t),
            SourceParam::Rise => p.dg_d_rise(t),
            SourceParam::Amplitude => p.dg_d_amplitude(t),
        };
        if dg == 0.0 {
            return;
        }
        for &(nd, wt) in &self.seg_weights[seg] {
            f[nd] += wt * dg;
        }
    }

    /// Accumulate the directional force derivative `sum_j (dT_j df/dT_j +
    /// dt0_j df/dt0_j + du0_j df/du0_j)` — the Jacobian-vector product the
    /// Gauss-Newton source inversion needs.
    pub fn add_force_direction(
        &self,
        d_delay: &[f64],
        d_rise: &[f64],
        d_amp: &[f64],
        t: f64,
        f: &mut [f64],
    ) {
        let ns = self.n_segments();
        assert_eq!(d_delay.len(), ns);
        assert_eq!(d_rise.len(), ns);
        assert_eq!(d_amp.len(), ns);
        for (j, (w, p)) in self.seg_weights.iter().zip(&self.params).enumerate() {
            let dg = d_delay[j] * p.dg_d_delay(t)
                + d_rise[j] * p.dg_d_rise(t)
                + d_amp[j] * p.dg_d_amplitude(t);
            if dg == 0.0 {
                continue;
            }
            for &(nd, wt) in w {
                f[nd] += wt * dg;
            }
        }
    }
}

// Small visibility helpers so FaultSource can stay in its own module.
impl ShSolver {
    pub(crate) fn n_elements_pub(&self) -> usize {
        use quake_solver::wave::ScalarWaveEq;
        self.n_elements()
    }

    pub(crate) fn elem_node_pub(&self, e: usize, c: usize) -> usize {
        self.elem_node(e, c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::ShConfig;
    use quake_solver::wave::{forward, ScalarWaveEq};

    fn solver() -> ShSolver {
        ShSolver::new(&ShConfig {
            nx: 20,
            nz: 14,
            h: 500.0,
            rho: 2200.0,
            dt: 0.04,
            n_steps: 100,
            receivers: vec![],
            mu_background: 2200.0 * 2000.0 * 2000.0,
            absorbing: [true; 3],
        })
    }

    fn uniform_mu(s: &ShSolver) -> Vec<f64> {
        vec![2200.0 * 2000.0 * 2000.0; s.n_elements()]
    }

    #[test]
    fn dipole_has_zero_net_force_and_correct_moment() {
        let s = solver();
        let mu = uniform_mu(&s);
        let fs = FaultSource::from_hypocenter(&s, &mu, 10, 4, 8, 6, 2800.0, 0.5, 1.0);
        let mut f = vec![0.0; s.n_nodes()];
        fs.add_force(100.0, &mut f); // fully ramped
        let net: f64 = f.iter().sum();
        assert!(net.abs() < 1e-6, "net force {net}");
        // Moment about the fault: sum f_i * (x_i - x_f) = mu * u0 * length.
        let mut moment = 0.0;
        for (i, &fi) in f.iter().enumerate() {
            let ix = i % (s.cfg.nx + 1);
            let x = ix as f64 * s.cfg.h;
            moment += fi * (x - 10.0 * s.cfg.h);
        }
        let expect = mu[0] * 1.0 * (4.0 * s.cfg.h);
        assert!((moment - expect).abs() < 1e-6 * expect, "moment {moment} vs {expect}");
    }

    #[test]
    fn radiated_field_is_antisymmetric_about_fault() {
        let s = solver();
        let mu = uniform_mu(&s);
        let fs = FaultSource::from_hypocenter(&s, &mu, 10, 4, 8, 6, 2800.0, 0.5, 1.0);
        let run = forward(&s, &mu, &mut |k, f| fs.add_force(k as f64 * s.cfg.dt, f), true);
        let u = &run.states[60];
        for k in 0..=s.cfg.nz {
            for d in 1..6 {
                let l = u[s.node(10 - d, k)];
                let r = u[s.node(10 + d, k)];
                assert!(
                    (l + r).abs() < 1e-9 * (1.0 + l.abs().max(r.abs())),
                    "asymmetry at k={k}, d={d}: {l} vs {r}"
                );
            }
        }
        // On the fault line itself the displacement is zero (the FEM field
        // is the average of the two sides).
        for k in 0..=s.cfg.nz {
            assert!(u[s.node(10, k)].abs() < 1e-9);
        }
    }

    #[test]
    fn force_derivatives_match_finite_differences() {
        let s = solver();
        let mu = uniform_mu(&s);
        let mk = |dt: f64, dr: f64, da: f64| {
            let params = (4..8)
                .map(|k| SlipFunction::new(0.3 * (k - 4) as f64 + 0.1 + dt, 0.8 + dr, 1.0 + da))
                .collect();
            FaultSource::new(&s, &mu, 10, 4, 8, params)
        };
        let base = mk(0.0, 0.0, 0.0);
        let eps = 1e-6;
        let nn = s.n_nodes();
        for (which, plus, minus) in [
            (SourceParam::Delay, mk(eps, 0.0, 0.0), mk(-eps, 0.0, 0.0)),
            (SourceParam::Rise, mk(0.0, eps, 0.0), mk(0.0, -eps, 0.0)),
            (SourceParam::Amplitude, mk(0.0, 0.0, eps), mk(0.0, 0.0, -eps)),
        ] {
            // Times chosen away from the slip ramp's kink points (where the
            // piecewise-quadratic g is not differentiable and FD disagrees
            // with the one-sided analytic value by construction).
            for &t in &[0.23, 0.57, 0.93, 1.33] {
                let mut fp = vec![0.0; nn];
                plus.add_force(t, &mut fp);
                let mut fm = vec![0.0; nn];
                minus.add_force(t, &mut fm);
                // FD perturbs ALL segments simultaneously: compare against
                // the sum of per-segment analytic derivatives.
                let mut fd_all = vec![0.0; nn];
                for (a, (p, m)) in fd_all.iter_mut().zip(fp.iter().zip(&fm)) {
                    *a = (p - m) / (2.0 * eps);
                }
                let mut analytic = vec![0.0; nn];
                for seg in 0..base.n_segments() {
                    base.add_force_derivative(which, seg, t, &mut analytic);
                }
                for (i, (a, b)) in analytic.iter().zip(&fd_all).enumerate() {
                    assert!(
                        (a - b).abs() < 1e-4 * (1.0 + b.abs()),
                        "{which:?} t={t} node {i}: {a} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn direction_derivative_combines_segments() {
        let s = solver();
        let mu = uniform_mu(&s);
        let fs = FaultSource::from_hypocenter(&s, &mu, 10, 4, 8, 6, 2800.0, 0.5, 1.0);
        let ns = fs.n_segments();
        let d_delay: Vec<f64> = (0..ns).map(|j| 0.1 * j as f64).collect();
        let d_rise = vec![0.2; ns];
        let d_amp: Vec<f64> = (0..ns).map(|j| 1.0 - 0.1 * j as f64).collect();
        let t = 0.7;
        let nn = s.n_nodes();
        let mut combined = vec![0.0; nn];
        fs.add_force_direction(&d_delay, &d_rise, &d_amp, t, &mut combined);
        let mut manual = vec![0.0; nn];
        for j in 0..ns {
            let mut tmp = vec![0.0; nn];
            fs.add_force_derivative(SourceParam::Delay, j, t, &mut tmp);
            for (m, v) in manual.iter_mut().zip(&tmp) {
                *m += d_delay[j] * v;
            }
            let mut tmp = vec![0.0; nn];
            fs.add_force_derivative(SourceParam::Rise, j, t, &mut tmp);
            for (m, v) in manual.iter_mut().zip(&tmp) {
                *m += d_rise[j] * v;
            }
            let mut tmp = vec![0.0; nn];
            fs.add_force_derivative(SourceParam::Amplitude, j, t, &mut tmp);
            for (m, v) in manual.iter_mut().zip(&tmp) {
                *m += d_amp[j] * v;
            }
        }
        for (a, b) in combined.iter().zip(&manual) {
            assert!((a - b).abs() < 1e-12 * (1.0 + b.abs()));
        }
    }

    #[test]
    fn hypocenter_delays_grow_with_distance() {
        let s = solver();
        let mu = uniform_mu(&s);
        let fs = FaultSource::from_hypocenter(&s, &mu, 10, 2, 12, 7, 2500.0, 0.5, 1.0);
        for (j, p) in fs.params.iter().enumerate() {
            let k = 2 + j;
            let expect = (k as f64 - 7.0).abs() * 500.0 / 2500.0;
            assert!((p.delay - expect).abs() < 1e-12);
        }
    }
}
