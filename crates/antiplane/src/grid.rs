//! The 2-D structured SH grid and its wave-equation implementation.

use quake_fem::quad4::scalar_quad_stiffness;
use quake_solver::wave::ScalarWaveEq;

/// Configuration of the antiplane solver. `x` is horizontal distance,
/// `z` is depth (down positive); the free surface is `z = 0`.
#[derive(Clone, Debug)]
pub struct ShConfig {
    /// Elements along x and z.
    pub nx: usize,
    pub nz: usize,
    /// Element edge (m).
    pub h: f64,
    /// Constant (known) density, kg/m^3 — the paper inverts mu only.
    pub rho: f64,
    pub dt: f64,
    pub n_steps: usize,
    /// Receiver node indices (typically on the free surface).
    pub receivers: Vec<usize>,
    /// Background modulus for the frozen absorbing-boundary impedance.
    pub mu_background: f64,
    /// Which edges absorb: [left, right, bottom]. The top (z = 0) is always
    /// the free surface.
    pub absorbing: [bool; 3],
}

/// The assembled 2-D solver.
pub struct ShSolver {
    pub cfg: ShConfig,
    mass: Vec<f64>,
    cab: Vec<f64>,
}

impl ShSolver {
    pub fn new(cfg: &ShConfig) -> ShSolver {
        assert!(cfg.nx > 0 && cfg.nz > 0 && cfg.h > 0.0 && cfg.rho > 0.0 && cfg.dt > 0.0);
        let nn = (cfg.nx + 1) * (cfg.nz + 1);
        let shell = ShSolver { cfg: cfg.clone(), mass: Vec::new(), cab: Vec::new() };
        // Lumped mass rho h^2/4 per incident element.
        let me = cfg.rho * cfg.h * cfg.h / 4.0;
        let mut mass = vec![0.0; nn];
        for e in 0..shell.n_elements() {
            for c in 0..4 {
                mass[shell.elem_node(e, c)] += me;
            }
        }
        // First-order ABC on left/right/bottom edges: impedance
        // sqrt(rho mu0) * h/2 per incident half-edge; top (z = 0) is free.
        let imp = (cfg.rho * cfg.mu_background).sqrt() * cfg.h / 2.0;
        let mut cab = vec![0.0; nn];
        for k in 0..=cfg.nz {
            for i in 0..=cfg.nx {
                let idx = shell.node(i, k);
                let mut halves = 0u32;
                if (cfg.absorbing[0] && i == 0) || (cfg.absorbing[1] && i == cfg.nx) {
                    halves += edge_mult(k, cfg.nz);
                }
                if cfg.absorbing[2] && k == cfg.nz {
                    halves += edge_mult(i, cfg.nx);
                }
                cab[idx] = imp * halves as f64;
            }
        }
        ShSolver { cfg: cfg.clone(), mass, cab }
    }

    pub fn node(&self, i: usize, k: usize) -> usize {
        debug_assert!(i <= self.cfg.nx && k <= self.cfg.nz);
        i + (self.cfg.nx + 1) * k
    }

    pub fn elem(&self, i: usize, k: usize) -> usize {
        debug_assert!(i < self.cfg.nx && k < self.cfg.nz);
        i + self.cfg.nx * k
    }

    /// Element corner node (bit 0 = +x, bit 1 = +z, matching quad4 order).
    #[inline]
    pub fn elem_node(&self, e: usize, c: usize) -> usize {
        let i = e % self.cfg.nx;
        let k = e / self.cfg.nx;
        self.node(i + (c & 1), k + ((c >> 1) & 1))
    }

    /// Element center (x, z) in meters.
    pub fn elem_center(&self, e: usize) -> [f64; 2] {
        let i = e % self.cfg.nx;
        let k = e / self.cfg.nx;
        [(i as f64 + 0.5) * self.cfg.h, (k as f64 + 0.5) * self.cfg.h]
    }

    /// Put `n` receivers uniformly on the free surface (builder style).
    pub fn with_surface_receivers(mut self, n: usize) -> ShSolver {
        let mut rec = Vec::with_capacity(n);
        for a in 0..n {
            let i = (a + 1) * self.cfg.nx / (n + 1);
            rec.push(i); // row k = 0 -> node index = i
        }
        rec.sort_unstable();
        rec.dedup();
        self.cfg.receivers = rec;
        self
    }

    /// Sample the element moduli from a pointwise field `mu(x, z)`.
    pub fn mu_from(&self, f: impl Fn(f64, f64) -> f64) -> Vec<f64> {
        (0..self.n_elements())
            .map(|e| {
                let c = self.elem_center(e);
                f(c[0], c[1])
            })
            .collect()
    }
}

fn edge_mult(i: usize, n: usize) -> u32 {
    if i == 0 || i == n {
        1
    } else {
        2
    }
}

impl ScalarWaveEq for ShSolver {
    fn n_nodes(&self) -> usize {
        (self.cfg.nx + 1) * (self.cfg.nz + 1)
    }

    fn n_elements(&self) -> usize {
        self.cfg.nx * self.cfg.nz
    }

    fn n_steps(&self) -> usize {
        self.cfg.n_steps
    }

    fn dt(&self) -> f64 {
        self.cfg.dt
    }

    fn receivers(&self) -> &[usize] {
        &self.cfg.receivers
    }

    fn mass(&self) -> &[f64] {
        &self.mass
    }

    fn abc_damping(&self) -> &[f64] {
        &self.cab
    }

    fn apply_k(&self, mu: &[f64], x: &[f64], y: &mut [f64], scale: f64) {
        assert_eq!(mu.len(), self.n_elements());
        let kq = scalar_quad_stiffness();
        for e in 0..self.n_elements() {
            let s = scale * mu[e];
            if s == 0.0 {
                continue;
            }
            let mut xe = [0.0; 4];
            let mut nid = [0usize; 4];
            for c in 0..4 {
                nid[c] = self.elem_node(e, c);
                xe[c] = x[nid[c]];
            }
            for r in 0..4 {
                let mut acc = 0.0;
                for c in 0..4 {
                    acc += kq[r][c] * xe[c];
                }
                y[nid[r]] += s * acc;
            }
        }
    }

    fn accumulate_dk(&self, u: &[f64], v: &[f64], out: &mut [f64]) {
        let kq = scalar_quad_stiffness();
        for e in 0..self.n_elements() {
            let mut ue = [0.0; 4];
            let mut ve = [0.0; 4];
            for c in 0..4 {
                let nid = self.elem_node(e, c);
                ue[c] = u[nid];
                ve[c] = v[nid];
            }
            let mut acc = 0.0;
            for r in 0..4 {
                for c in 0..4 {
                    acc += ue[r] * kq[r][c] * ve[c];
                }
            }
            out[e] += acc;
        }
    }

    fn apply_dk(&self, dmu: &[f64], x: &[f64], y: &mut [f64], scale: f64) {
        self.apply_k(dmu, x, y, scale);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quake_solver::wave::{adjoint, forward, material_gradient};

    fn cfg() -> ShConfig {
        ShConfig {
            nx: 24,
            nz: 16,
            h: 500.0,
            rho: 2200.0,
            dt: 0.05,
            n_steps: 80,
            receivers: vec![],
            mu_background: 2200.0 * 2000.0 * 2000.0,
            absorbing: [true; 3],
        }
    }

    #[test]
    fn mass_and_abc_layout() {
        let s = ShSolver::new(&cfg());
        let total: f64 = s.mass().iter().sum();
        let area = 24.0 * 16.0 * 500.0 * 500.0;
        assert!((total - 2200.0 * area).abs() < 1e-6 * total);
        let cab = s.abc_damping();
        assert_eq!(cab[s.node(12, 0)], 0.0, "free surface");
        assert!(cab[s.node(0, 8)] > 0.0, "left edge");
        assert!(cab[s.node(24, 8)] > 0.0, "right edge");
        assert!(cab[s.node(12, 16)] > 0.0, "bottom");
        assert_eq!(cab[s.node(12, 8)], 0.0, "interior");
    }

    #[test]
    fn sh_pulse_travels_at_shear_speed() {
        let mut c = cfg();
        c.n_steps = 120;
        let s = ShSolver::new(&c);
        let vs = 2000.0;
        let mu = vec![c.rho * vs * vs; s.n_elements()];
        let src = s.node(4, 8);
        let probe = s.node(16, 8); // 6 km away
        let run = forward(
            &s,
            &mu,
            &mut |k, f| {
                if k < 4 {
                    f[src] = 1e9;
                }
            },
            true,
        );
        let series: Vec<f64> = run.states.iter().map(|u| u[probe].abs()).collect();
        let peak = series.iter().cloned().fold(0.0f64, f64::max);
        let arrival = series.iter().position(|&v| v > 0.05 * peak).unwrap() as f64 * c.dt;
        let expected = 6000.0 / vs;
        assert!((arrival - expected).abs() < 0.5, "arrival {arrival} vs {expected}");
    }

    #[test]
    fn absorbing_edges_drain_energy_reflecting_edges_keep_it() {
        // Same pulse, with and without ABC: the absorbing run must end far
        // quieter (first-order ABCs absorb imperfectly at grazing incidence,
        // so we compare rather than demand near-zero).
        let mut c = cfg();
        c.n_steps = 400;
        let run_with = |absorbing: [bool; 3]| {
            let mut cc = c.clone();
            cc.absorbing = absorbing;
            let s = ShSolver::new(&cc);
            let mu = vec![cc.rho * 2000.0 * 2000.0; s.n_elements()];
            let src = s.node(12, 2);
            let run = forward(
                &s,
                &mu,
                &mut |k, f| {
                    if k < 4 {
                        f[src] = 1e9;
                    }
                },
                true,
            );
            let amp = |u: &Vec<f64>| u.iter().map(|v| v * v).sum::<f64>().sqrt();
            (amp(&run.states[100]), amp(&run.states[400]))
        };
        let (_, end_abc) = run_with([true; 3]);
        let (mid_ref, end_ref) = run_with([false; 3]);
        assert!(end_ref > 0.7 * mid_ref, "reflecting box lost energy");
        assert!(
            end_abc < 0.35 * end_ref,
            "ABC barely better than reflecting: {end_abc} vs {end_ref}"
        );
    }

    #[test]
    fn gradient_check_2d() {
        let mut c = cfg();
        c.nx = 12;
        c.nz = 8;
        c.n_steps = 50;
        let s = ShSolver::new(&c).with_surface_receivers(6);
        let ne = s.n_elements();
        let mu0: Vec<f64> =
            (0..ne).map(|e| 2200.0 * 2000.0f64.powi(2) * (1.0 + 0.1 * ((e % 4) as f64))).collect();
        let mut mu_true = mu0.clone();
        for (i, v) in mu_true.iter_mut().enumerate() {
            *v *= 1.0 + 0.03 * ((i % 3) as f64);
        }
        let src = s.node(6, 4);
        fn forcing(src: usize) -> impl FnMut(usize, &mut [f64]) {
            move |k, f| {
                if k < 6 {
                    f[src] = 1e8;
                }
            }
        }
        let data = forward(&s, &mu_true, &mut forcing(src), false).traces;
        let misfit = |mu: &[f64]| {
            let run = forward(&s, mu, &mut forcing(src), false);
            run.traces
                .iter()
                .zip(&data)
                .flat_map(|(t, d)| t.iter().zip(d))
                .map(|(a, b)| 0.5 * (a - b) * (a - b) * s.dt())
                .sum::<f64>()
        };
        let run = forward(&s, &mu0, &mut forcing(src), true);
        let residuals: Vec<Vec<f64>> = run
            .traces
            .iter()
            .zip(&data)
            .map(|(t, d)| t.iter().zip(d).map(|(a, b)| a - b).collect())
            .collect();
        let adj = adjoint(&s, &mu0, &residuals);
        let g = material_gradient(&s, &run.states, &adj.states);
        for &e in &[0usize, ne / 2, ne - 1] {
            let eps = mu0[e] * 1e-6;
            let mut mp = mu0.clone();
            mp[e] += eps;
            let mut mm = mu0.clone();
            mm[e] -= eps;
            let fd = (misfit(&mp) - misfit(&mm)) / (2.0 * eps);
            let rel = (g[e] - fd).abs() / (1.0 + fd.abs().max(g[e].abs()));
            assert!(rel < 1e-5, "element {e}: {} vs {fd}", g[e]);
        }
    }
}
