//! 2-D antiplane (SH) wave propagation — the inversion testbed of Section 3.
//!
//! A vertical basin cross-section undergoing antiplane motion: the single
//! out-of-plane displacement `u(x, z, t)` obeys
//! `rho u_tt - div(mu grad u) = -div(mu u0 g(t) delta(Sigma) n)`, with a free
//! surface on top, first-order absorbing boundaries on the sides and bottom
//! (eq. 3.2), and a dislocation (dipole) source along a fault line.
//!
//! The discretization is bilinear quads on a regular grid, implementing
//! [`quake_solver::wave::ScalarWaveEq`] so the shared marching engine
//! provides forward, exact discrete adjoint, and stiffness-derivative
//! products. A handy 2-D fact: the scalar quad stiffness is independent of
//! element size, so `K_e = mu_e K_Q` with one canonical 4x4 matrix.
//!
//! [`fault::FaultSource`] carries the per-point source parameters
//! `(T, t0, u0)` with analytic force derivatives for the source inversion of
//! Fig 3.3.

pub mod fault;
pub mod grid;

pub use fault::FaultSource;
pub use grid::{ShConfig, ShSolver};
