//! The on-disk snapshot format: little-endian, length-prefixed, CRC-checked.
//!
//! A checkpoint file is one framed payload:
//!
//! ```text
//! magic    "QCKP"                      4 bytes
//! version  u32 LE                      format revision (FORMAT_VERSION)
//! kind     u32 LE length + utf-8       Checkpointable::KIND, guards against
//!                                      restoring the wrong state type
//! step     u64 LE                      sequence number of the snapshot
//! len      u64 LE                      payload length in bytes
//! payload  len bytes                   Encoder output
//! crc      u32 LE                      CRC-32 (IEEE) of all preceding bytes
//! ```
//!
//! Every multi-byte integer and float is little-endian; `f64` slices are
//! stored as raw bit patterns (`to_bits`), so a restored state is
//! **bit-identical** to the saved one — the property the resume-equivalence
//! tests assert. The trailing CRC covers header *and* payload: a truncated
//! or bit-flipped file fails [`decode_file`] with [`CkptError::BadChecksum`]
//! (or [`CkptError::Truncated`]) and checkpoint discovery skips it.

use crate::CkptError;

/// Format revision written into every file. Bump on layout changes; readers
/// reject other revisions rather than guessing.
pub const FORMAT_VERSION: u32 = 1;

/// File magic.
pub const MAGIC: [u8; 4] = *b"QCKP";

/// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) over `data`.
/// Table-driven, computed once lazily — std-only, no external crates.
pub fn crc32(data: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *e = c;
        }
        t
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Append-only binary encoder for checkpoint payloads.
#[derive(Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    pub fn new() -> Encoder {
        Encoder::default()
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Length-prefixed utf-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Length-prefixed `f64` slice, raw LE bit patterns (bit-exact).
    pub fn put_f64_slice(&mut self, v: &[f64]) {
        self.put_u64(v.len() as u64);
        self.buf.reserve(v.len() * 8);
        for &x in v {
            self.buf.extend_from_slice(&x.to_bits().to_le_bytes());
        }
    }

    /// Length-prefixed `u64` slice.
    pub fn put_u64_slice(&mut self, v: &[u64]) {
        self.put_u64(v.len() as u64);
        self.buf.reserve(v.len() * 8);
        for &x in v {
            self.buf.extend_from_slice(&x.to_le_bytes());
        }
    }
}

/// Infallible fixed-width copy for slices whose length the caller has
/// already established (via `take(4)` or `chunks_exact(4)`) — reader paths
/// must stay panic-free on arbitrary on-disk bytes, so no
/// `try_into().unwrap()` (enforced by quake-lint's no-panic-in-comm rule).
/// Public so other length-prefixed stores (the `quake-serve` result cache)
/// share the one panic-free idiom instead of copying it.
pub fn arr4(b: &[u8]) -> [u8; 4] {
    [b[0], b[1], b[2], b[3]]
}

/// [`arr4`] for 8-byte fields (`u64`/`f64` little-endian payloads).
pub fn arr8(b: &[u8]) -> [u8; 8] {
    [b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]
}

/// Cursor-based decoder mirroring [`Encoder`]. Every take checks bounds and
/// returns [`CkptError::Truncated`] past the end — a short payload is a
/// decode error, never a panic.
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    pub fn new(buf: &'a [u8]) -> Decoder<'a> {
        Decoder { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CkptError> {
        if self.remaining() < n {
            return Err(CkptError::Truncated { needed: n, available: self.remaining() });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn take_u8(&mut self) -> Result<u8, CkptError> {
        Ok(self.take(1)?[0])
    }

    pub fn take_u32(&mut self) -> Result<u32, CkptError> {
        Ok(u32::from_le_bytes(arr4(self.take(4)?)))
    }

    pub fn take_u64(&mut self) -> Result<u64, CkptError> {
        Ok(u64::from_le_bytes(arr8(self.take(8)?)))
    }

    pub fn take_f64(&mut self) -> Result<f64, CkptError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    pub fn take_bool(&mut self) -> Result<bool, CkptError> {
        Ok(self.take_u8()? != 0)
    }

    /// A length prefix that must fit in the remaining buffer — guards the
    /// allocation below against a corrupt (huge) length.
    fn take_len(&mut self, elem_size: usize) -> Result<usize, CkptError> {
        let n = self.take_u64()? as usize;
        if n.checked_mul(elem_size).is_none_or(|bytes| bytes > self.remaining()) {
            return Err(CkptError::Truncated {
                needed: n.saturating_mul(elem_size),
                available: self.remaining(),
            });
        }
        Ok(n)
    }

    pub fn take_bytes(&mut self) -> Result<&'a [u8], CkptError> {
        let n = self.take_len(1)?;
        self.take(n)
    }

    pub fn take_str(&mut self) -> Result<&'a str, CkptError> {
        std::str::from_utf8(self.take_bytes()?).map_err(|_| CkptError::Malformed("bad utf-8"))
    }

    pub fn take_f64_vec(&mut self) -> Result<Vec<f64>, CkptError> {
        let n = self.take_len(8)?;
        let raw = self.take(8 * n)?;
        Ok(raw.chunks_exact(8).map(|c| f64::from_bits(u64::from_le_bytes(arr8(c)))).collect())
    }

    pub fn take_u64_vec(&mut self) -> Result<Vec<u64>, CkptError> {
        let n = self.take_len(8)?;
        let raw = self.take(8 * n)?;
        Ok(raw.chunks_exact(8).map(|c| u64::from_le_bytes(arr8(c))).collect())
    }

    /// Assert the payload was fully consumed (catches encode/decode drift).
    pub fn finish(self) -> Result<(), CkptError> {
        if self.remaining() != 0 {
            return Err(CkptError::Malformed("trailing bytes after payload"));
        }
        Ok(())
    }
}

/// Frame a payload into a complete checkpoint file image.
pub fn encode_file(kind: &str, step: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + 4 + 8 + kind.len() + 8 + 8 + payload.len() + 4);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(kind.len() as u32).to_le_bytes());
    out.extend_from_slice(kind.as_bytes());
    out.extend_from_slice(&step.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Verify a file image's framing and checksum; return `(step, payload)`.
pub fn decode_file<'a>(kind: &str, bytes: &'a [u8]) -> Result<(u64, &'a [u8]), CkptError> {
    // The CRC trailer is checked first: any truncation or corruption —
    // including of the header fields decoded below — surfaces as a checksum
    // mismatch rather than a confusing secondary error.
    if bytes.len() < 4 + 4 + 4 + 8 + 8 + 4 {
        return Err(CkptError::Truncated { needed: 32, available: bytes.len() });
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 4);
    let stored = u32::from_le_bytes(arr4(trailer));
    let actual = crc32(body);
    if stored != actual {
        return Err(CkptError::BadChecksum { stored, actual });
    }
    let mut d = Decoder::new(body);
    let magic = d.take(4)?;
    if magic != MAGIC {
        return Err(CkptError::Malformed("bad magic"));
    }
    let version = d.take_u32()?;
    if version != FORMAT_VERSION {
        return Err(CkptError::BadVersion { found: version, expected: FORMAT_VERSION });
    }
    let klen = d.take_u32()? as usize;
    let file_kind =
        std::str::from_utf8(d.take(klen)?).map_err(|_| CkptError::Malformed("bad kind utf-8"))?;
    if file_kind != kind {
        return Err(CkptError::KindMismatch {
            found: file_kind.to_string(),
            expected: kind.to_string(),
        });
    }
    let step = d.take_u64()?;
    let plen = d.take_u64()? as usize;
    if plen != d.remaining() {
        return Err(CkptError::Malformed("payload length disagrees with file size"));
    }
    Ok((step, d.take(plen)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF43926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn scalar_and_slice_roundtrip_is_bit_exact() {
        let mut e = Encoder::new();
        e.put_u8(7);
        e.put_u32(0xDEAD_BEEF);
        e.put_u64(u64::MAX - 1);
        e.put_f64(-0.0);
        e.put_f64(f64::from_bits(0x7FF0_0000_0000_0001)); // a signaling NaN pattern
        e.put_bool(true);
        e.put_str("état");
        let xs = vec![1.0, -2.5e-308, f64::INFINITY, 1.25e9];
        e.put_f64_slice(&xs);
        e.put_u64_slice(&[0, 1, u64::MAX]);
        let bytes = e.into_bytes();

        let mut d = Decoder::new(&bytes);
        assert_eq!(d.take_u8().unwrap(), 7);
        assert_eq!(d.take_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.take_u64().unwrap(), u64::MAX - 1);
        assert_eq!(d.take_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(d.take_f64().unwrap().to_bits(), 0x7FF0_0000_0000_0001);
        assert!(d.take_bool().unwrap());
        assert_eq!(d.take_str().unwrap(), "état");
        let got = d.take_f64_vec().unwrap();
        assert_eq!(
            got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            xs.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        assert_eq!(d.take_u64_vec().unwrap(), vec![0, 1, u64::MAX]);
        d.finish().unwrap();
    }

    #[test]
    fn short_reads_error_instead_of_panicking() {
        let mut d = Decoder::new(&[1, 2, 3]);
        assert!(matches!(d.take_u64(), Err(CkptError::Truncated { .. })));
        // A huge length prefix must not trigger a huge allocation.
        let mut e = Encoder::new();
        e.put_u64(u64::MAX / 2);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert!(matches!(d.take_f64_vec(), Err(CkptError::Truncated { .. })));
    }

    #[test]
    fn file_frame_roundtrips_and_detects_damage() {
        let payload = b"some state".to_vec();
        let img = encode_file("test.kind", 42, &payload);
        let (step, body) = decode_file("test.kind", &img).unwrap();
        assert_eq!(step, 42);
        assert_eq!(body, &payload[..]);

        // Any single bit flip fails the checksum.
        for pos in [0usize, 5, img.len() / 2, img.len() - 5] {
            let mut bad = img.clone();
            bad[pos] ^= 0x10;
            assert!(decode_file("test.kind", &bad).is_err(), "flip at {pos} went undetected");
        }
        // Truncation fails too.
        assert!(decode_file("test.kind", &img[..img.len() - 1]).is_err());
        assert!(decode_file("test.kind", &img[..10]).is_err());
        // Wrong kind is refused even with a valid checksum.
        assert!(matches!(decode_file("other.kind", &img), Err(CkptError::KindMismatch { .. })));
    }

    #[test]
    fn version_mismatch_is_reported() {
        let mut img = encode_file("k", 1, b"p");
        // Patch the version field (offset 4) and re-sign the file.
        img[4..8].copy_from_slice(&99u32.to_le_bytes());
        let n = img.len();
        let crc = crc32(&img[..n - 4]);
        img[n - 4..].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(decode_file("k", &img), Err(CkptError::BadVersion { found: 99, .. })));
    }
}
