//! Checkpoint files in a run directory: atomic writes, latest-valid discovery.
//!
//! A run directory holds one file per `(base, step)` pair:
//!
//! ```text
//! <dir>/<base>.<step:010>.qckpt
//! ```
//!
//! Writes go through `<name>.tmp` + rename, so a crash mid-write never
//! leaves a half-written file under the final name — the worst case is a
//! stale `.tmp` the reader ignores. Discovery walks the directory, parses
//! step numbers out of the names, and [`CheckpointReader::latest_valid`]
//! decodes candidates newest-first, *skipping* any file whose checksum or
//! framing fails — a corrupted latest checkpoint silently falls back to the
//! previous valid one (the acceptance scenario of the recover benchmark).

use crate::format::{decode_file, encode_file};
use crate::{Checkpointable, CkptError, Decoder, Encoder};
use quake_telemetry::Registry;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// File extension of finalized checkpoints.
pub const EXTENSION: &str = "qckpt";

fn file_name(base: &str, step: u64) -> String {
    format!("{base}.{step:010}.{EXTENSION}")
}

/// Parse `<base>.<step>.qckpt` back into the step number.
fn parse_step(base: &str, name: &str) -> Option<u64> {
    let rest = name.strip_prefix(base)?.strip_prefix('.')?;
    let digits = rest.strip_suffix(&format!(".{EXTENSION}"))?;
    if digits.len() != 10 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Writes checkpoints of one state stream into a run directory.
pub struct CheckpointWriter {
    dir: PathBuf,
    base: String,
    /// Keep at most this many finalized checkpoints (0 = keep everything).
    keep: usize,
}

impl CheckpointWriter {
    /// Create a writer for stream `base` under `dir` (created if missing).
    pub fn new(dir: &Path, base: &str) -> Result<CheckpointWriter, CkptError> {
        fs::create_dir_all(dir)?;
        Ok(CheckpointWriter { dir: dir.to_path_buf(), base: base.to_string(), keep: 0 })
    }

    /// Retain only the newest `keep` checkpoints, pruning older ones after
    /// each successful write. At least 2 are always kept so a corrupted
    /// newest file still has a fallback.
    pub fn with_retention(mut self, keep: usize) -> CheckpointWriter {
        self.keep = if keep == 0 { 0 } else { keep.max(2) };
        self
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    pub fn base(&self) -> &str {
        &self.base
    }

    /// Write `state` as the checkpoint for `step`: encode, frame, write to a
    /// `.tmp` sibling, fsync, rename into place, prune. Records a
    /// `ckpt_write` span and `ckpt/bytes_written` / `ckpt/writes` counters
    /// on `reg` (pass a disabled registry to skip).
    pub fn write<T: Checkpointable>(
        &self,
        step: u64,
        state: &T,
        reg: &Registry,
    ) -> Result<PathBuf, CkptError> {
        let _s = reg.span("ckpt_write");
        let mut enc = Encoder::new();
        state.encode(&mut enc);
        let img = encode_file(T::KIND, step, &enc.into_bytes());

        let final_path = self.dir.join(file_name(&self.base, step));
        let tmp_path = self.dir.join(format!("{}.tmp", file_name(&self.base, step)));
        {
            let mut f = fs::File::create(&tmp_path)?;
            f.write_all(&img)?;
            f.sync_all()?;
        }
        fs::rename(&tmp_path, &final_path)?;

        reg.add("ckpt/bytes_written", img.len() as u64);
        reg.add("ckpt/writes", 1);

        if self.keep > 0 {
            let mut steps = CheckpointReader::new(&self.dir, &self.base).steps();
            if steps.len() > self.keep {
                steps.truncate(steps.len() - self.keep);
                for old in steps {
                    let _ = fs::remove_file(self.dir.join(file_name(&self.base, old)));
                }
            }
        }
        Ok(final_path)
    }
}

/// Reads checkpoints of one state stream from a run directory.
pub struct CheckpointReader {
    dir: PathBuf,
    base: String,
}

impl CheckpointReader {
    pub fn new(dir: &Path, base: &str) -> CheckpointReader {
        CheckpointReader { dir: dir.to_path_buf(), base: base.to_string() }
    }

    /// Step numbers of all finalized checkpoints, ascending. Files that do
    /// not match the naming scheme (including `.tmp` leftovers) are ignored;
    /// validity of the *contents* is checked only on load.
    pub fn steps(&self) -> Vec<u64> {
        let mut steps = Vec::new();
        let Ok(entries) = fs::read_dir(&self.dir) else { return steps };
        for entry in entries.flatten() {
            if let Some(name) = entry.file_name().to_str() {
                if let Some(step) = parse_step(&self.base, name) {
                    steps.push(step);
                }
            }
        }
        steps.sort_unstable();
        steps.dedup();
        steps
    }

    /// Load and verify the checkpoint for one specific step.
    pub fn load<T: Checkpointable>(&self, step: u64) -> Result<(u64, T), CkptError> {
        let bytes = fs::read(self.dir.join(file_name(&self.base, step)))?;
        let (file_step, payload) = decode_file(T::KIND, &bytes)?;
        let mut dec = Decoder::new(payload);
        let state = T::decode(&mut dec)?;
        dec.finish()?;
        Ok((file_step, state))
    }

    /// The newest checkpoint that passes checksum + decode, scanning
    /// descending and *skipping* corrupted/truncated files. Records a
    /// `ckpt_restore` span, `ckpt/bytes_read`, and one `ckpt/skipped_invalid`
    /// count per rejected candidate. Returns `None` if no valid checkpoint
    /// exists.
    pub fn latest_valid<T: Checkpointable>(&self, reg: &Registry) -> Option<(u64, T)> {
        let _s = reg.span("ckpt_restore");
        for &step in self.steps().iter().rev() {
            match self.load::<T>(step) {
                Ok((file_step, state)) => {
                    debug_assert_eq!(file_step, step);
                    let path = self.dir.join(file_name(&self.base, step));
                    if let Ok(meta) = fs::metadata(&path) {
                        reg.add("ckpt/bytes_read", meta.len());
                    }
                    reg.add("ckpt/restores", 1);
                    return Some((step, state));
                }
                Err(_) => {
                    reg.add("ckpt/skipped_invalid", 1);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    struct Demo {
        k: u64,
        xs: Vec<f64>,
    }

    impl Checkpointable for Demo {
        const KIND: &'static str = "quake.ckpt.demo.v1";

        fn encode(&self, enc: &mut Encoder) {
            enc.put_u64(self.k);
            enc.put_f64_slice(&self.xs);
        }

        fn decode(dec: &mut Decoder) -> Result<Demo, CkptError> {
            Ok(Demo { k: dec.take_u64()?, xs: dec.take_f64_vec()? })
        }
    }

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("quake-ckpt-tests")
            .join(format!("{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn write_then_latest_valid_roundtrips() {
        let dir = tmpdir("roundtrip");
        let w = CheckpointWriter::new(&dir, "state").unwrap();
        let off = Registry::disabled();
        for k in [10u64, 20, 30] {
            let d = Demo { k, xs: vec![k as f64, -1.5, 0.0] };
            w.write(k, &d, &off).unwrap();
        }
        let r = CheckpointReader::new(&dir, "state");
        assert_eq!(r.steps(), vec![10, 20, 30]);
        let (step, got) = r.latest_valid::<Demo>(&off).unwrap();
        assert_eq!(step, 30);
        assert_eq!(got, Demo { k: 30, xs: vec![30.0, -1.5, 0.0] });
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn corrupted_newest_falls_back_to_previous_valid() {
        let dir = tmpdir("fallback");
        let w = CheckpointWriter::new(&dir, "state").unwrap();
        let reg = Registry::new(0);
        w.write(1, &Demo { k: 1, xs: vec![1.0] }, &reg).unwrap();
        let p2 = w.write(2, &Demo { k: 2, xs: vec![2.0] }, &reg).unwrap();
        // Flip a payload byte in the newest file.
        let mut bytes = fs::read(&p2).unwrap();
        let n = bytes.len();
        bytes[n - 10] ^= 0xFF;
        fs::write(&p2, &bytes).unwrap();

        let r = CheckpointReader::new(&dir, "state");
        let (step, got) = r.latest_valid::<Demo>(&reg).unwrap();
        assert_eq!(step, 1);
        assert_eq!(got.xs, vec![1.0]);
        assert_eq!(reg.counter("ckpt/skipped_invalid"), Some(1));
        assert!(reg.counter("ckpt/bytes_written").unwrap() > 0);
        assert_eq!(reg.span_stats("ckpt_write").unwrap().count, 2);
        assert_eq!(reg.span_stats("ckpt_restore").unwrap().count, 1);

        // Truncate it too: still falls back.
        fs::write(&p2, &bytes[..8]).unwrap();
        assert_eq!(r.latest_valid::<Demo>(&Registry::disabled()).unwrap().0, 1);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn tmp_leftovers_and_foreign_files_are_ignored() {
        let dir = tmpdir("ignore");
        let w = CheckpointWriter::new(&dir, "state").unwrap();
        let off = Registry::disabled();
        w.write(5, &Demo { k: 5, xs: vec![] }, &off).unwrap();
        // A crash could leave a stale tmp; unrelated files may coexist.
        fs::write(dir.join("state.0000000009.qckpt.tmp"), b"half-written").unwrap();
        fs::write(dir.join("other.0000000007.qckpt"), b"different stream").unwrap();
        fs::write(dir.join("notes.txt"), b"hi").unwrap();
        let r = CheckpointReader::new(&dir, "state");
        assert_eq!(r.steps(), vec![5]);
        assert_eq!(r.latest_valid::<Demo>(&off).unwrap().0, 5);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn retention_prunes_old_checkpoints() {
        let dir = tmpdir("retention");
        let w = CheckpointWriter::new(&dir, "s").unwrap().with_retention(3);
        let off = Registry::disabled();
        for k in 1..=8u64 {
            w.write(k, &Demo { k, xs: vec![] }, &off).unwrap();
        }
        let r = CheckpointReader::new(&dir, "s");
        assert_eq!(r.steps(), vec![6, 7, 8]);
        // Retention of 1 is bumped to 2 (fallback guarantee).
        let w = CheckpointWriter::new(&dir, "s").unwrap().with_retention(1);
        w.write(9, &Demo { k: 9, xs: vec![] }, &off).unwrap();
        assert_eq!(r.steps(), vec![8, 9]);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn wrong_kind_is_not_restored() {
        #[derive(Debug)]
        struct Other;
        impl Checkpointable for Other {
            const KIND: &'static str = "quake.ckpt.other.v1";
            fn encode(&self, _: &mut Encoder) {}
            fn decode(_: &mut Decoder) -> Result<Other, CkptError> {
                Ok(Other)
            }
        }
        let dir = tmpdir("kind");
        let w = CheckpointWriter::new(&dir, "s").unwrap();
        let off = Registry::disabled();
        w.write(1, &Demo { k: 1, xs: vec![] }, &off).unwrap();
        assert!(CheckpointReader::new(&dir, "s").latest_valid::<Other>(&off).is_none());
        fs::remove_dir_all(dir).unwrap();
    }
}
