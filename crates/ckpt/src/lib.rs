//! Checkpoint/restart substrate for long-running solves (std-only).
//!
//! The paper's terascale runs are hours-long jobs on thousands of PEs where
//! one lost PE kills the whole simulation; the standard robustness layer is
//! periodic checkpointing plus restart from the last valid snapshot. This
//! crate is that layer for the reproduction:
//!
//! - [`format`]: a versioned, CRC-32-checksummed, length-prefixed binary
//!   snapshot format. `f64` data is stored as raw bit patterns, so restored
//!   states are **bit-identical** — resume equivalence is exact, not
//!   approximate (the solver and inversion test suites assert byte-equal
//!   outputs for straight-vs-resumed runs).
//! - [`Checkpointable`]: the encode/decode contract a state type implements
//!   (the elastic solver's `SolverState`, the inversion's `GnCheckpoint`,
//!   the distributed per-rank states).
//! - [`store`]: [`CheckpointWriter`] (atomic write-to-temp-then-rename with
//!   fsync, optional retention pruning) and [`CheckpointReader`]
//!   (latest-*valid* discovery: corrupted or truncated files are detected by
//!   checksum and skipped in favor of the previous good one).
//! - [`CheckpointPolicy`]: cadence — every N steps and/or every T seconds.
//!
//! Telemetry: writers and readers record `ckpt_write`/`ckpt_restore` spans
//! and `ckpt/bytes_written`, `ckpt/bytes_read`, `ckpt/writes`,
//! `ckpt/restores`, `ckpt/skipped_invalid` counters on the registry they are
//! handed; a disabled registry makes all of it free.

pub mod format;
pub mod sink;
pub mod store;

pub use format::{crc32, decode_file, encode_file, Decoder, Encoder, FORMAT_VERSION};
pub use sink::{PeriodicSink, StepSink};
pub use store::{CheckpointReader, CheckpointWriter};

use std::time::Instant;

/// Everything that can go wrong writing or restoring a checkpoint.
#[derive(Debug)]
pub enum CkptError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// File shorter than the data it claims to hold.
    Truncated { needed: usize, available: usize },
    /// CRC-32 trailer does not match the file contents.
    BadChecksum { stored: u32, actual: u32 },
    /// Written by an incompatible format revision.
    BadVersion { found: u32, expected: u32 },
    /// The file holds a different state type than requested.
    KindMismatch { found: String, expected: String },
    /// Structurally invalid contents (bad magic, trailing bytes, ...).
    Malformed(&'static str),
}

impl std::fmt::Display for CkptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CkptError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            CkptError::Truncated { needed, available } => {
                write!(f, "checkpoint truncated: needed {needed} bytes, have {available}")
            }
            CkptError::BadChecksum { stored, actual } => {
                write!(
                    f,
                    "checkpoint checksum mismatch: stored {stored:#010x}, actual {actual:#010x}"
                )
            }
            CkptError::BadVersion { found, expected } => {
                write!(f, "checkpoint format version {found} (expected {expected})")
            }
            CkptError::KindMismatch { found, expected } => {
                write!(f, "checkpoint holds kind {found:?} (expected {expected:?})")
            }
            CkptError::Malformed(what) => write!(f, "malformed checkpoint: {what}"),
        }
    }
}

impl std::error::Error for CkptError {}

impl From<std::io::Error> for CkptError {
    fn from(e: std::io::Error) -> CkptError {
        CkptError::Io(e)
    }
}

/// A state type that can be snapshotted to, and restored from, a checkpoint.
///
/// The contract is symmetric: `decode(encode(x)) == x` *bit-for-bit* for
/// every reachable state — the resume-equivalence guarantees downstream rest
/// entirely on this. `KIND` names the state type inside the file header so a
/// reader never deserializes the wrong stream; include a version suffix
/// (`"...v1"`) and bump it when the encoding changes.
pub trait Checkpointable: Sized {
    /// Stable type tag embedded in the file header.
    const KIND: &'static str;

    /// Serialize the full state into `enc`.
    fn encode(&self, enc: &mut Encoder);

    /// Reconstruct the state; use the typed `take_*` accessors so truncation
    /// surfaces as [`CkptError::Truncated`], never a panic.
    fn decode(dec: &mut Decoder) -> Result<Self, CkptError>;
}

/// When to take a checkpoint: every N steps, every T seconds of wall time,
/// or both (whichever fires first). Step cadence is deterministic and is
/// what distributed runs must use (all ranks checkpoint the same steps);
/// wall-time cadence suits serial jobs running against a queue limit.
#[derive(Clone, Copy, Debug, Default)]
pub struct CheckpointPolicy {
    pub every_steps: Option<u64>,
    pub every_secs: Option<f64>,
}

impl CheckpointPolicy {
    /// Checkpoint after every `n` completed steps.
    pub fn every_steps(n: u64) -> CheckpointPolicy {
        assert!(n > 0, "step cadence must be positive");
        CheckpointPolicy { every_steps: Some(n), every_secs: None }
    }

    /// Checkpoint whenever `secs` of wall time elapsed since the last one.
    pub fn every_secs(secs: f64) -> CheckpointPolicy {
        assert!(secs > 0.0, "time cadence must be positive");
        CheckpointPolicy { every_steps: None, every_secs: Some(secs) }
    }

    /// Never checkpoint (useful as a neutral default).
    pub fn never() -> CheckpointPolicy {
        CheckpointPolicy::default()
    }

    /// Stateful cadence tracker for one run.
    pub fn ticker(&self) -> PolicyTicker {
        PolicyTicker { policy: *self, last_write: Instant::now() }
    }
}

/// Tracks the wall-clock side of a [`CheckpointPolicy`] across a run.
pub struct PolicyTicker {
    policy: CheckpointPolicy,
    last_write: Instant,
}

impl PolicyTicker {
    /// Should a checkpoint be taken after completing step `step` (0-based;
    /// the snapshot would be tagged `step + 1`, the next step to execute)?
    /// Calling this does not reset the timer — call [`PolicyTicker::wrote`]
    /// after a successful write.
    pub fn due(&self, step: u64) -> bool {
        if let Some(n) = self.policy.every_steps {
            if (step + 1).is_multiple_of(n) {
                return true;
            }
        }
        if let Some(secs) = self.policy.every_secs {
            if self.last_write.elapsed().as_secs_f64() >= secs {
                return true;
            }
        }
        false
    }

    /// Record that a checkpoint was just written (resets the time cadence).
    pub fn wrote(&mut self) {
        self.last_write = Instant::now();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_cadence_fires_on_multiples() {
        let t = CheckpointPolicy::every_steps(5).ticker();
        let due: Vec<u64> = (0..12).filter(|&k| t.due(k)).collect();
        assert_eq!(due, vec![4, 9]); // after steps 5 and 10 complete
    }

    #[test]
    fn never_policy_never_fires() {
        let t = CheckpointPolicy::never().ticker();
        assert!((0..100).all(|k| !t.due(k)));
    }

    #[test]
    fn time_cadence_fires_after_the_interval() {
        let mut t = CheckpointPolicy::every_secs(0.01).ticker();
        assert!(!t.due(0)); // immediately after creation: not due
        std::thread::sleep(std::time::Duration::from_millis(15));
        assert!(t.due(1));
        t.wrote();
        assert!(!t.due(2)); // timer reset
    }
}
