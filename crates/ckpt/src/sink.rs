//! The small persistence surface step loops drive.
//!
//! A time-integration harness should not know about writers, tickers, or
//! retention — it only needs somewhere to offer each completed step's state.
//! [`StepSink`] is that surface: one `offer` call per completed step, and the
//! sink decides whether anything hits disk. [`PeriodicSink`] is the standard
//! implementation (a [`CheckpointWriter`](crate::CheckpointWriter) plus a
//! [`CheckpointPolicy`](crate::CheckpointPolicy) cadence); tests substitute
//! counting or always-failing sinks.

use crate::{CheckpointPolicy, CheckpointWriter, Checkpointable, CkptError, PolicyTicker};
use quake_telemetry::Registry;

/// A cadence-owning destination for step-loop snapshots.
///
/// `offer` is called once per completed step with `next_step` = the index of
/// the *next* step to execute (the tag restore logic expects — see
/// `SolverState`'s convention). Implementations decide whether this step is
/// due and persist `state` if so; returning `Err` aborts the run that drives
/// the sink.
pub trait StepSink<T: Checkpointable> {
    /// Offer the state after a completed step; persist it if due.
    fn offer(&mut self, next_step: u64, state: &T, reg: &Registry) -> Result<(), CkptError>;
}

/// The standard [`StepSink`]: write through a [`CheckpointWriter`] whenever a
/// [`CheckpointPolicy`] says a step is due (atomic write-to-temp-then-rename
/// plus retention pruning, both inherited from the writer).
pub struct PeriodicSink<'w> {
    writer: &'w CheckpointWriter,
    ticker: PolicyTicker,
}

impl<'w> PeriodicSink<'w> {
    pub fn new(writer: &'w CheckpointWriter, policy: &CheckpointPolicy) -> PeriodicSink<'w> {
        PeriodicSink { writer, ticker: policy.ticker() }
    }
}

impl<T: Checkpointable> StepSink<T> for PeriodicSink<'_> {
    fn offer(&mut self, next_step: u64, state: &T, reg: &Registry) -> Result<(), CkptError> {
        // `due` speaks in completed-step indices; `next_step` is one past.
        if next_step > 0 && self.ticker.due(next_step - 1) {
            self.writer.write(next_step, state, reg)?;
            self.ticker.wrote();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CheckpointReader, Decoder, Encoder};

    #[derive(Clone, Debug, PartialEq)]
    struct Tiny(u64);

    impl Checkpointable for Tiny {
        const KIND: &'static str = "quake.test.tiny.v1";

        fn encode(&self, enc: &mut Encoder) {
            enc.put_u64(self.0);
        }

        fn decode(dec: &mut Decoder) -> Result<Tiny, CkptError> {
            Ok(Tiny(dec.take_u64()?))
        }
    }

    #[test]
    fn periodic_sink_writes_only_due_steps() {
        let dir = std::env::temp_dir()
            .join("quake-ckpt-tests")
            .join(format!("sink-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let writer = CheckpointWriter::new(&dir, "tiny").unwrap();
        let policy = CheckpointPolicy::every_steps(3);
        let mut sink = PeriodicSink::new(&writer, &policy);
        let reg = Registry::disabled();
        for completed in 0..8u64 {
            let next = completed + 1;
            StepSink::offer(&mut sink, next, &Tiny(next), &reg).unwrap();
        }
        let steps = CheckpointReader::new(&dir, "tiny").steps();
        assert_eq!(steps, vec![3, 6]);
        let (_, back): (u64, Tiny) = CheckpointReader::new(&dir, "tiny").load(6).unwrap();
        assert_eq!(back, Tiny(6));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
