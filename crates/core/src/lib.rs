//! End-to-end drivers for the SC2003 workflows.
//!
//! - [`forward`]: velocity model -> wavelength-adaptive octree mesh ->
//!   explicit elastic solve -> surface seismograms (the Section 2 pipeline,
//!   including the scaled Northridge scenario),
//! - [`inversion`]: the Section 3 scenarios — the 2-D basin cross-section
//!   material inversion (Fig 3.2) and the fault source inversion (Fig 3.3)
//!   with pseudo-observed data synthesized from the target models.

pub mod forward;
pub mod inversion;

pub use forward::{northridge_scenario, run_forward, ForwardOutcome, ForwardRun, ForwardScenario};
pub use inversion::{material_scenario, source_scenario, MaterialScenario, SourceScenario};
