//! Forward basin simulation: model -> mesh -> solve -> seismograms.

use quake_ckpt::{
    CheckpointPolicy, CheckpointReader, CheckpointWriter, CkptError, PeriodicSink, StepSink,
};
use quake_mesh::{mesh_from_model, HexMesh, MeshStats, MeshingParams};
use quake_model::{ExtendedFault, LaBasinModel, MaterialModel};
use quake_octree::LinearOctree;
use quake_solver::{
    assemble_point_sources, ElasticConfig, ElasticSolver, RunResult, SolverHarness, SolverState,
};
use quake_telemetry::Registry;
use std::path::{Path, PathBuf};

/// A complete forward-simulation scenario.
#[derive(Clone, Debug)]
pub struct ForwardScenario {
    pub meshing: MeshingParams,
    pub solve: ElasticConfig,
    pub fault: ExtendedFault,
    /// Subfault discretization (along strike, down dip).
    pub n_subfaults: (usize, usize),
    /// Receiver positions (m); they are snapped to the nearest surface node.
    pub receivers: Vec<[f64; 3]>,
}

/// Everything a forward run produces.
pub struct ForwardOutcome {
    pub tree: LinearOctree,
    pub mesh: HexMesh,
    pub mesh_stats: MeshStats,
    pub receiver_nodes: Vec<u32>,
    pub result: RunResult,
}

/// Builder configuring one forward solve: optional telemetry and optional
/// checkpoint/restart layered onto the same canonical pipeline.
///
/// Every combination runs the identical `model -> mesh -> assemble -> solve`
/// stages and drives the one `SolverHarness` step loop, so a traced or
/// resumable run is **bit-identical** to a plain one.
///
/// ```ignore
/// let out = ForwardRun::new(&model, &scenario)
///     .traced(&reg)                     // spans + mesh stats + per-phase costs
///     .resumable(&ckpt_dir, 50)         // snapshot every 50 steps, resume if possible
///     .execute()?;
/// ```
pub struct ForwardRun<'a, M: MaterialModel> {
    model: &'a M,
    scenario: &'a ForwardScenario,
    reg: Option<&'a Registry>,
    resume: Option<(PathBuf, u64)>,
}

impl<'a, M: MaterialModel> ForwardRun<'a, M> {
    pub fn new(model: &'a M, scenario: &'a ForwardScenario) -> ForwardRun<'a, M> {
        ForwardRun { model, scenario, reg: None, resume: None }
    }

    /// Record telemetry into `reg`: the meshing and assembly stages get
    /// spans, the mesh statistics land in the registry as `mesh/...`
    /// metrics, and the solve runs with an instrumented workspace, so `reg`
    /// afterwards holds the full per-phase breakdown of the run.
    pub fn traced(mut self, reg: &'a Registry) -> ForwardRun<'a, M> {
        self.reg = Some(reg);
        self
    }

    /// Checkpoint/restart: the solve snapshots its state into `ckpt_dir`
    /// every `every_steps` time steps, and if the directory already holds a
    /// valid checkpoint (from an interrupted earlier invocation) the run
    /// resumes from the newest one instead of starting at step zero. The
    /// meshing and assembly stages rerun on resume — they are deterministic
    /// functions of the scenario, so the restored state stays consistent.
    /// Corrupted or truncated checkpoint files are detected by their CRC and
    /// skipped in favor of the previous valid snapshot.
    pub fn resumable(mut self, ckpt_dir: &Path, every_steps: u64) -> ForwardRun<'a, M> {
        self.resume = Some((ckpt_dir.to_path_buf(), every_steps));
        self
    }

    /// Run the configured pipeline. The only error source is checkpoint I/O,
    /// so a run without [`resumable`](Self::resumable) cannot fail.
    pub fn execute(self) -> Result<ForwardOutcome, CkptError> {
        let disabled = Registry::disabled();
        let reg = self.reg.unwrap_or(&disabled);
        let scenario = self.scenario;
        let (tree, mesh) = {
            let _s = reg.span("forward/mesh");
            mesh_from_model(&scenario.meshing, self.model)
        };
        let mesh_stats = MeshStats::compute(&mesh);
        mesh_stats.record(reg);
        let (solver, sources) = {
            let _s = reg.span("forward/assemble");
            let solver = ElasticSolver::new(&mesh, &scenario.solve);
            let sources = assemble_point_sources(
                &mesh,
                &tree,
                &scenario.fault.discretize(scenario.n_subfaults.0, scenario.n_subfaults.1),
            );
            (solver, sources)
        };
        let receiver_nodes: Vec<u32> =
            scenario.receivers.iter().map(|&p| mesh.nearest_node(p)).collect();
        let persist = match &self.resume {
            Some((dir, every)) => {
                let writer = CheckpointWriter::new(dir, "forward")?;
                let policy = CheckpointPolicy::every_steps(*every);
                let state = match CheckpointReader::new(dir, "forward").latest_valid(reg) {
                    Some((step, state)) => {
                        reg.set("forward/resumed_step", step);
                        state
                    }
                    None => solver.initial_state(receiver_nodes.len(), None),
                };
                Some((writer, policy, state))
            }
            None => None,
        };
        let result = {
            let _s = reg.span("forward/solve");
            let mut ws = if reg.is_enabled() {
                solver.workspace_instrumented(reg.rank())
            } else {
                solver.workspace()
            };
            let harness = SolverHarness::new(&solver);
            let result = match persist {
                Some((writer, policy, state)) => {
                    let mut sink = PeriodicSink::new(&writer, &policy);
                    let sink: &mut dyn StepSink<SolverState> = &mut sink;
                    harness.run_simulation(&sources, &receiver_nodes, state, &mut ws, Some(sink))?.0
                }
                None => {
                    let state = solver.initial_state(receiver_nodes.len(), None);
                    harness.run_simulation(&sources, &receiver_nodes, state, &mut ws, None)?.0
                }
            };
            reg.absorb(&ws.into_registry());
            result
        };
        Ok(ForwardOutcome { tree, mesh, mesh_stats, receiver_nodes, result })
    }
}

/// Run a scenario against a material model — shorthand for
/// [`ForwardRun::new(..).execute()`](ForwardRun) with no telemetry or
/// checkpointing.
pub fn run_forward(model: &impl MaterialModel, scenario: &ForwardScenario) -> ForwardOutcome {
    ForwardRun::new(model, scenario).execute().expect("no checkpointing configured")
}

/// A Northridge-like scenario scaled into a cube of edge `extent` meters,
/// resolving `fmax` Hz down to `vs_min` m/s sediments, with `n_receivers`
/// stations along the surface diagonal.
pub fn northridge_scenario(
    extent: f64,
    fmax: f64,
    vs_min: f64,
    duration: f64,
    n_receivers: usize,
) -> (LaBasinModel, ForwardScenario) {
    let model = LaBasinModel::scaled(vs_min, extent);
    let mut meshing = MeshingParams::new(extent, fmax);
    meshing.max_level = 9;
    let receivers = (0..n_receivers)
        .map(|i| {
            let t = (i as f64 + 0.5) / n_receivers as f64;
            [extent * t, extent * (0.25 + 0.5 * t), 0.0]
        })
        .collect();
    let scenario = ForwardScenario {
        meshing,
        solve: ElasticConfig::new(duration),
        fault: ExtendedFault::northridge_like(extent),
        n_subfaults: (6, 4),
        receivers,
    };
    (model, scenario)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_northridge_run_produces_motion() {
        // A miniature end-to-end run: 8 km basin cube, 0.4 Hz.
        let (model, mut scenario) = northridge_scenario(8_000.0, 0.4, 400.0, 4.0, 4);
        scenario.meshing.min_level = 2;
        scenario.meshing.max_level = 5;
        let out = run_forward(&model, &scenario);
        assert!(out.mesh_stats.n_elements > 100);
        assert_eq!(out.result.seismograms.len(), 4);
        // Ground actually moved at every station, and nothing blew up.
        for s in &out.result.seismograms {
            let peak = (0..3).map(|c| s.peak(c)).fold(0.0f64, f64::max);
            assert!(peak.is_finite());
            assert!(peak > 0.0, "silent seismogram");
        }
        assert!(out.result.flops > 0);
        // Receivers snapped to the free surface.
        for &nd in &out.receiver_nodes {
            assert_eq!(out.mesh.grid_coords[nd as usize][2], 0);
        }
    }

    #[test]
    fn resumable_forward_run_matches_plain_run_bitwise() {
        let (model, mut scenario) = northridge_scenario(8_000.0, 0.4, 400.0, 2.0, 2);
        scenario.meshing.min_level = 2;
        scenario.meshing.max_level = 5;
        let plain = run_forward(&model, &scenario);

        let dir = std::env::temp_dir()
            .join("quake-core-tests")
            .join(format!("fwd-resume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        // Leg 1: interrupted halfway — run a truncated scenario that
        // checkpoints, leaving snapshots behind.
        let half_steps = plain.result.n_steps / 2;
        let mut short = scenario.clone();
        short.solve.duration = plain.result.dt * half_steps as f64 - plain.result.dt * 0.5;
        let reg = Registry::new(0);
        let partial =
            ForwardRun::new(&model, &short).traced(&reg).resumable(&dir, 3).execute().unwrap();
        assert!(partial.result.n_steps < plain.result.n_steps);
        assert!(CheckpointReader::new(&dir, "forward").steps().last().is_some());

        // Leg 2: the full scenario resumes from the newest snapshot.
        let reg2 = Registry::new(0);
        let resumed =
            ForwardRun::new(&model, &scenario).traced(&reg2).resumable(&dir, 3).execute().unwrap();
        assert!(reg2.counter("forward/resumed_step").unwrap() > 0);
        assert_eq!(resumed.result.n_steps, plain.result.n_steps);
        for (a, b) in resumed.result.seismograms.iter().zip(&plain.result.seismograms) {
            assert_eq!(a.data.len(), b.data.len());
            for (x, y) in a.data.iter().zip(&b.data) {
                assert_eq!(x.to_bits(), y.to_bits(), "resume changed the waveform");
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn traced_forward_run_populates_the_registry() {
        let (model, mut scenario) = northridge_scenario(8_000.0, 0.4, 400.0, 2.0, 2);
        scenario.meshing.min_level = 2;
        scenario.meshing.max_level = 5;
        let reg = Registry::new(0);
        let out = ForwardRun::new(&model, &scenario).traced(&reg).execute().unwrap();
        // Driver-stage spans are present and ran exactly once.
        for name in ["forward/mesh", "forward/assemble", "forward/solve"] {
            let s = reg.span_stats(name).unwrap_or_else(|| panic!("missing span {name}"));
            assert_eq!(s.count, 1, "{name}");
        }
        // Mesh statistics were recorded as metrics.
        assert_eq!(reg.counter("mesh/elements"), Some(out.mesh_stats.n_elements as u64));
        assert!(reg.gauge_value("mesh/h_min").is_some());
        // The solver workspace's per-phase breakdown was absorbed: one `step`
        // span per time step, plus the analytic cost counters.
        let step = reg.span_stats("step").expect("absorbed step span");
        assert_eq!(step.count, out.result.n_steps as u64);
        assert!(reg.counter("step/elements/flops").unwrap() > 0);
        // Step time is contained in the solve stage that absorbed it.
        let solve = reg.span_stats("forward/solve").unwrap();
        assert!(step.total_ns <= solve.total_ns);
    }
}
