//! The Section 3 inversion scenarios with pseudo-observed data.

use quake_antiplane::{FaultSource, ShConfig, ShSolver};
use quake_inverse::misfit::add_noise;
use quake_model::Section2d;
use quake_solver::wave::{forward, ScalarWaveEq};

/// The Fig 3.2 setup: a basin cross-section target, a known source, and
/// noisy pseudo-observed surface data.
pub struct MaterialScenario {
    pub solver: ShSolver,
    pub section: Section2d,
    /// Target moduli per element.
    pub mu_true: Vec<f64>,
    /// Frozen background moduli (also the fault dipole strength).
    pub mu_background: Vec<f64>,
    pub fault: FaultSource,
    /// Noisy observed traces.
    pub data: Vec<Vec<f64>>,
    /// Element centers as 3-vectors (z inactive) for `MaterialMap`.
    pub centers: Vec<[f64; 3]>,
    /// Physical domain for `MaterialMap` ([width, depth, 1]).
    pub domain: [f64; 3],
}

impl MaterialScenario {
    /// The known-source forcing closure.
    pub fn forcing(&self) -> impl Fn(usize, &mut [f64]) + Sync + '_ {
        let dt = self.solver.dt();
        move |k: usize, f: &mut [f64]| self.fault.add_force(k as f64 * dt, f)
    }
}

/// Build the Fig 3.2 scenario at a given wave-grid resolution.
///
/// `nx x nz` wave elements over the 35 km x 20 km section, `n_receivers`
/// uniformly on the free surface, `noise` relative data noise (paper: 0.05).
pub fn material_scenario(
    nx: usize,
    nz: usize,
    n_steps: usize,
    n_receivers: usize,
    noise: f64,
    seed: u64,
) -> MaterialScenario {
    let section = Section2d::default();
    let h = section.width / nx as f64;
    assert!(
        (section.depth / nz as f64 - h).abs() < 0.35 * h,
        "keep elements roughly square: nx/nz must match the 35x20 aspect"
    );
    let h = section.width / nx as f64;
    // CFL for the stiffest target material.
    let vs_max = 3600.0;
    let dt = 0.4 * h / vs_max;
    let solver = ShSolver::new(&ShConfig {
        nx,
        nz,
        h,
        rho: section.rho,
        dt,
        n_steps,
        receivers: vec![],
        mu_background: section.rho * 2200.0 * 2200.0,
        absorbing: [true; 3],
    })
    .with_surface_receivers(n_receivers);

    let mu_true = solver.mu_from(|x, z| section.mu(x, z));
    let mu_background = vec![section.rho * section.homogeneous_guess_vs().powi(2); mu_true.len()];

    // Strike-slip fault perpendicular to the section, mid-basin (the
    // vertical line of Fig 3.2's target frame), hypocenter at depth.
    let i_fault = nx / 2;
    let k_top = nz / 5;
    let k_bot = nz / 2;
    let hypo_k = (k_top + k_bot) / 2;
    let fault = FaultSource::from_hypocenter(
        &solver,
        &mu_background,
        i_fault,
        k_top,
        k_bot,
        hypo_k,
        2800.0,
        1.2,
        1.0,
    );

    let dt_solver = solver.dt();
    let mut data =
        forward(&solver, &mu_true, &mut |k, f| fault.add_force(k as f64 * dt_solver, f), false)
            .traces;
    if noise > 0.0 {
        add_noise(&mut data, noise, seed);
    }

    let centers: Vec<[f64; 3]> = (0..mu_true.len())
        .map(|e| {
            let c = solver.elem_center(e);
            [c[0], c[1], 0.0]
        })
        .collect();
    let domain = [section.width, section.depth, 1.0];
    MaterialScenario { solver, section, mu_true, mu_background, fault, data, centers, domain }
}

/// The Fig 3.3 setup: known material, unknown source fields.
pub struct SourceScenario {
    pub solver: ShSolver,
    pub mu: Vec<f64>,
    /// Fault with the *target* parameters.
    pub fault_true: FaultSource,
    pub data: Vec<Vec<f64>>,
    /// Initial-guess fields (delays, rises, amplitudes).
    pub initial: (Vec<f64>, Vec<f64>, Vec<f64>),
}

/// Build the source-inversion scenario.
pub fn source_scenario(
    nx: usize,
    nz: usize,
    n_steps: usize,
    n_receivers: usize,
    noise: f64,
    seed: u64,
) -> SourceScenario {
    let h = 17_500.0 / nx as f64; // ~6 km fault in a 17.5 km section
    let rho = 2200.0;
    let vs = 2000.0;
    let dt = 0.4 * h / vs;
    let solver = ShSolver::new(&ShConfig {
        nx,
        nz,
        h,
        rho,
        dt,
        n_steps,
        receivers: vec![],
        mu_background: rho * vs * vs,
        absorbing: [true; 3],
    })
    .with_surface_receivers(n_receivers);
    let mu = vec![rho * vs * vs; solver.n_elements()];
    let k_top = nz / 6;
    let k_bot = (nz as f64 * 0.55) as usize;
    let hypo_k = (k_top + 2 * k_bot) / 3;
    let fault_true =
        FaultSource::from_hypocenter(&solver, &mu, nx / 2, k_top, k_bot, hypo_k, 2800.0, 1.5, 1.0);
    let dt_solver = solver.dt();
    let mut data =
        forward(&solver, &mu, &mut |k, f| fault_true.add_force(k as f64 * dt_solver, f), false)
            .traces;
    if noise > 0.0 {
        add_noise(&mut data, noise, seed);
    }
    let ns = fault_true.n_segments();
    let initial = (vec![0.5; ns], vec![2.5; ns], vec![0.7; ns]);
    SourceScenario { solver, mu, fault_true, data, initial }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn material_scenario_is_consistent() {
        let sc = material_scenario(28, 16, 80, 16, 0.05, 1);
        assert_eq!(sc.mu_true.len(), 28 * 16);
        assert_eq!(sc.data.len(), 16);
        assert_eq!(sc.data[0].len(), 80);
        // The data actually contains signal.
        let peak = sc.data.iter().flatten().fold(0.0f64, |m, v| m.max(v.abs()));
        assert!(peak > 0.0);
        // Target moduli span the paper's velocity range.
        let vs_min =
            sc.mu_true.iter().map(|&m| (m / sc.section.rho).sqrt()).fold(f64::INFINITY, f64::min);
        let vs_max = sc.mu_true.iter().map(|&m| (m / sc.section.rho).sqrt()).fold(0.0f64, f64::max);
        assert!(vs_min < 1300.0 && vs_max > 3000.0, "{vs_min}..{vs_max}");
    }

    #[test]
    fn source_scenario_targets_differ_from_guess() {
        let sc = source_scenario(20, 12, 100, 12, 0.0, 2);
        let ns = sc.fault_true.n_segments();
        assert!(ns >= 3);
        assert_eq!(sc.initial.0.len(), ns);
        // Initial guess is genuinely wrong.
        for (j, p) in sc.fault_true.params.iter().enumerate() {
            assert!((sc.initial.1[j] - p.rise).abs() > 0.5);
        }
    }
}
