//! Step-loop observation surface.
//!
//! A time-stepping harness that wants to report progress should not know how
//! progress is consumed — an NDJSON trace, a TUI, a log line every N steps.
//! [`StepObserver`] is the small contract between the loop and those
//! consumers; [`ProgressEvents`] is the standard implementation, emitting
//! `run_start`/`run_progress`/`run_end` events onto a [`Registry`] so they
//! ride the existing NDJSON export.

use crate::Registry;

/// Receives coarse lifecycle notifications from a step loop.
///
/// All methods default to no-ops so implementations override only what they
/// consume. `step` arguments are the index of the *next* step to execute
/// (i.e. the number of steps completed so far from step zero).
pub trait StepObserver {
    /// The loop is about to execute its first step (`step` = first index).
    fn on_run_start(&mut self, _step: u64, _reg: &Registry) {}
    /// A step just completed; `step` is the next step to execute.
    fn on_step(&mut self, _step: u64, _reg: &Registry) {}
    /// The loop finished (or stopped) after executing `executed` steps.
    fn on_run_end(&mut self, _executed: u64, _reg: &Registry) {}
}

/// A [`StepObserver`] that emits registry events at a fixed step cadence,
/// suitable for tailing a long run through the NDJSON stream.
pub struct ProgressEvents {
    every_steps: u64,
}

impl ProgressEvents {
    /// Emit a `run_progress` event every `every_steps` completed steps
    /// (clamped to at least 1).
    pub fn every(every_steps: u64) -> ProgressEvents {
        ProgressEvents { every_steps: every_steps.max(1) }
    }
}

impl StepObserver for ProgressEvents {
    fn on_run_start(&mut self, step: u64, reg: &Registry) {
        reg.event("run_start", &[("step", step as f64)]);
    }

    fn on_step(&mut self, step: u64, reg: &Registry) {
        if step.is_multiple_of(self.every_steps) {
            reg.event("run_progress", &[("step", step as f64)]);
        }
    }

    fn on_run_end(&mut self, executed: u64, reg: &Registry) {
        reg.event("run_end", &[("executed", executed as f64)]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn progress_events_land_on_the_registry_at_cadence() {
        let reg = Registry::new(0);
        let mut obs = ProgressEvents::every(2);
        obs.on_run_start(0, &reg);
        for completed in 0..5u64 {
            obs.on_step(completed + 1, &reg);
        }
        obs.on_run_end(5, &reg);
        // run_start + progress at steps 2 and 4 + run_end.
        assert_eq!(reg.n_events(), 4);
    }

    #[test]
    fn disabled_registry_makes_observation_free() {
        let reg = Registry::disabled();
        let mut obs = ProgressEvents::every(1);
        obs.on_run_start(0, &reg);
        obs.on_step(1, &reg);
        obs.on_run_end(1, &reg);
        assert_eq!(reg.n_events(), 0);
    }
}
