//! Std-only observability substrate (the paper's Section 4 methodology as a
//! library).
//!
//! The paper characterizes its code almost entirely through measurement:
//! per-phase wall-clock breakdowns of the time loop, sustained Mflop/s per
//! PE, and communication-vs-compute ratios. This crate provides the
//! counterpart for the reproduction — a per-rank [`Registry`] of
//!
//! - **span timers** with nested scopes ([`Registry::span`] /
//!   [`Registry::enter`]/[`Registry::exit`]): each span accumulates call
//!   count, total wall time and the time spent in *child* spans, so a
//!   breakdown can report exclusive (self) time per phase,
//! - **monotonic counters** and **gauges** ([`Registry::add`],
//!   [`Registry::set`], [`Registry::gauge`]) for flop/byte/cache-event
//!   accounting,
//! - **fixed-bucket log-scale histograms** ([`Registry::observe`]) with
//!   p50/p95/p99 quantile readout,
//! - **NDJSON events** ([`Registry::event`]) for iteration traces
//!   (Gauss-Newton convergence histories, etc.),
//!
//! serialized to JSON ([`Registry::to_json`]) or NDJSON
//! ([`Registry::ndjson`]), and reduced across SPMD ranks with min/max/mean
//! semantics via `quake-parcomm` ([`reduce::reduce_across_ranks`]).
//!
//! # Cost discipline
//!
//! Telemetry is compiled in, never `cfg`'d out, so the *disabled* path must
//! be near-free: every public method checks a single `enabled` flag and
//! returns before touching the `RefCell`. Hot loops additionally intern
//! their span/counter names once ([`Registry::span_id`],
//! [`Registry::counter_id`]) so the steady state performs no string lookups
//! and no allocations — an enabled span costs two `Instant::now` calls and a
//! few integer updates. `bench_step --check-overhead` guards the enabled
//! overhead end to end.
//!
//! A `Registry` is deliberately `Send` but not `Sync`: in SPMD runs each
//! rank owns its registry (exactly like per-rank counters in an MPI code)
//! and cross-rank aggregation is an explicit reduction, not shared state.

pub mod hist;
pub mod json;
pub mod observe;
pub mod reduce;
pub mod trace;

pub use hist::Histogram;
pub use observe::{ProgressEvents, StepObserver};
pub use reduce::{reduce_across_ranks, try_reduce_across_ranks, ReduceError, Reduced};
pub use trace::{TraceBuffer, TraceEvent, TraceKind};

use trace::{RawEvent, TraceRing};

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::time::Instant;

/// Interned span handle (see [`Registry::span_id`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanId(u32);

/// Interned counter handle (see [`Registry::counter_id`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CtrId(u32);

/// Accumulated statistics of one span.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanStats {
    /// Number of completed enter/exit pairs.
    pub count: u64,
    /// Total (inclusive) wall time, nanoseconds.
    pub total_ns: u64,
    /// Wall time spent inside child spans, nanoseconds.
    pub child_ns: u64,
}

impl SpanStats {
    pub fn total_secs(&self) -> f64 {
        self.total_ns as f64 * 1e-9
    }

    /// Exclusive (self) time: total minus time attributed to children.
    pub fn self_secs(&self) -> f64 {
        self.total_ns.saturating_sub(self.child_ns) as f64 * 1e-9
    }
}

struct Frame {
    id: u32,
    start: Instant,
    /// Nanoseconds accumulated by direct children while this frame was open.
    child_ns: u64,
}

#[derive(Default)]
struct Inner {
    span_ids: BTreeMap<String, u32>,
    span_names: Vec<String>,
    spans: Vec<SpanStats>,
    stack: Vec<Frame>,
    ctr_ids: BTreeMap<String, u32>,
    ctr_names: Vec<String>,
    ctrs: Vec<u64>,
    gauges: BTreeMap<String, f64>,
    hists: BTreeMap<String, Histogram>,
    events: Vec<String>,
    /// Flight recorder, present only after [`Registry::enable_trace`].
    ring: Option<TraceRing>,
}

impl Inner {
    fn span_slot(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.span_ids.get(name) {
            return id;
        }
        let id = self.span_names.len() as u32;
        self.span_ids.insert(name.to_string(), id);
        self.span_names.push(name.to_string());
        self.spans.push(SpanStats::default());
        id
    }

    fn ctr_slot(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.ctr_ids.get(name) {
            return id;
        }
        let id = self.ctr_names.len() as u32;
        self.ctr_ids.insert(name.to_string(), id);
        self.ctr_names.push(name.to_string());
        self.ctrs.push(0);
        id
    }
}

/// Per-rank metric registry. See the crate docs for the model.
pub struct Registry {
    enabled: bool,
    rank: usize,
    epoch: Instant,
    inner: RefCell<Inner>,
}

impl Registry {
    /// An enabled registry for `rank`.
    pub fn new(rank: usize) -> Registry {
        Registry::with_epoch(rank, Instant::now())
    }

    /// An enabled registry whose timestamps (events, trace slices) are
    /// relative to a caller-supplied epoch. SPMD drivers pass one shared
    /// epoch to every rank so the per-rank flight recorders merge onto a
    /// single timeline.
    pub fn with_epoch(rank: usize, epoch: Instant) -> Registry {
        Registry { enabled: true, rank, epoch, inner: RefCell::default() }
    }

    /// A disabled registry: every operation is a checked no-op (one branch).
    pub fn disabled() -> Registry {
        Registry { enabled: false, rank: 0, epoch: Instant::now(), inner: RefCell::default() }
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    pub fn rank(&self) -> usize {
        self.rank
    }

    /// The instant all relative timestamps are measured from.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Nanoseconds from the registry epoch to `t` (saturating at zero).
    pub fn since_epoch_ns(&self, t: Instant) -> u64 {
        TraceRing::offset_ns(self.epoch, t)
    }

    // ---- spans ----

    /// Intern a span name; the returned id makes [`Registry::enter`] /
    /// [`Registry::exit`] allocation- and lookup-free. On a disabled
    /// registry the id is a dummy.
    pub fn span_id(&self, name: &str) -> SpanId {
        if !self.enabled {
            return SpanId(u32::MAX);
        }
        SpanId(self.inner.borrow_mut().span_slot(name))
    }

    /// Open the span. Must be matched by [`Registry::exit`] with the same id
    /// (spans strictly nest; the stack enforces it).
    #[inline]
    pub fn enter(&self, id: SpanId) {
        if !self.enabled {
            return;
        }
        let mut g = self.inner.borrow_mut();
        g.stack.push(Frame { id: id.0, start: Instant::now(), child_ns: 0 });
    }

    /// Close the span, accumulating its elapsed time and attributing it to
    /// the parent's child-time account.
    #[inline]
    pub fn exit(&self, id: SpanId) {
        if !self.enabled {
            return;
        }
        let mut g = self.inner.borrow_mut();
        let frame = g.stack.pop().expect("span exit without matching enter");
        assert_eq!(frame.id, id.0, "span exit does not match the innermost open span");
        let elapsed = frame.start.elapsed().as_nanos() as u64;
        let s = &mut g.spans[frame.id as usize];
        s.count += 1;
        s.total_ns += elapsed;
        s.child_ns += frame.child_ns;
        if let Some(parent) = g.stack.last_mut() {
            parent.child_ns += elapsed;
        }
        if g.ring.is_some() {
            let t0_ns = TraceRing::offset_ns(self.epoch, frame.start);
            if let Some(ring) = g.ring.as_mut() {
                ring.push(RawEvent {
                    name: frame.id,
                    kind: TraceKind::Slice,
                    t0_ns,
                    dur_ns: elapsed,
                    arg: f64::NAN,
                });
            }
        }
    }

    /// Record an externally timed interval into span `id`: the duration adds
    /// to the span's statistics (and to the currently open span's child-time
    /// account, exactly as a nested enter/exit pair would), and a slice is
    /// pushed to the flight recorder when tracing is on. Used by the
    /// distributed exchange to attribute `wait` vs `copy` sub-intervals it
    /// measured itself; `t0_ns` is nanoseconds from the registry epoch (see
    /// [`Registry::since_epoch_ns`]).
    pub fn record_span(&self, id: SpanId, t0_ns: u64, dur_ns: u64) {
        if !self.enabled {
            return;
        }
        let mut g = self.inner.borrow_mut();
        let s = &mut g.spans[id.0 as usize];
        s.count += 1;
        s.total_ns += dur_ns;
        if let Some(parent) = g.stack.last_mut() {
            parent.child_ns += dur_ns;
        }
        if let Some(ring) = g.ring.as_mut() {
            ring.push(RawEvent {
                name: id.0,
                kind: TraceKind::Slice,
                t0_ns,
                dur_ns,
                arg: f64::NAN,
            });
        }
    }

    /// RAII convenience: open a span by name, closed on guard drop.
    pub fn span<'a>(&'a self, name: &str) -> SpanGuard<'a> {
        let id = self.span_id(name);
        self.enter(id);
        SpanGuard { reg: self, id }
    }

    /// Statistics of a span by name (`None` if never interned).
    pub fn span_stats(&self, name: &str) -> Option<SpanStats> {
        let g = self.inner.borrow();
        g.span_ids.get(name).map(|&id| g.spans[id as usize])
    }

    // ---- counters / gauges ----

    /// Intern a counter name (same contract as [`Registry::span_id`]).
    pub fn counter_id(&self, name: &str) -> CtrId {
        if !self.enabled {
            return CtrId(u32::MAX);
        }
        CtrId(self.inner.borrow_mut().ctr_slot(name))
    }

    /// Add to an interned counter.
    #[inline]
    pub fn add_id(&self, id: CtrId, n: u64) {
        if !self.enabled {
            return;
        }
        self.inner.borrow_mut().ctrs[id.0 as usize] += n;
    }

    /// Add to a counter by name.
    pub fn add(&self, name: &str, n: u64) {
        if !self.enabled {
            return;
        }
        let id = self.counter_id(name);
        self.add_id(id, n);
    }

    /// Set a counter to an absolute value (for exporting externally
    /// accumulated statistics, e.g. a pager's cache counters).
    pub fn set(&self, name: &str, v: u64) {
        if !self.enabled {
            return;
        }
        let id = self.counter_id(name);
        self.inner.borrow_mut().ctrs[id.0 as usize] = v;
    }

    /// Counter value by name (`None` if never touched).
    pub fn counter(&self, name: &str) -> Option<u64> {
        let g = self.inner.borrow();
        g.ctr_ids.get(name).map(|&id| g.ctrs[id as usize])
    }

    /// Set a named floating-point gauge (last write wins).
    pub fn gauge(&self, name: &str, v: f64) {
        if !self.enabled {
            return;
        }
        self.inner.borrow_mut().gauges.insert(name.to_string(), v);
    }

    /// Gauge value by name.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.inner.borrow().gauges.get(name).copied()
    }

    // ---- histograms ----

    /// Record one observation into the named log-scale histogram.
    pub fn observe(&self, name: &str, v: f64) {
        if !self.enabled {
            return;
        }
        self.inner.borrow_mut().hists.entry(name.to_string()).or_default().record(v);
    }

    /// Snapshot of a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.inner.borrow().hists.get(name).cloned()
    }

    // ---- events ----

    /// Append an NDJSON event line: monotonic timestamp, rank, event name and
    /// numeric fields. The formatting round-trips `f64` exactly, so traces
    /// are reproducible from the log alone.
    pub fn event(&self, name: &str, fields: &[(&str, f64)]) {
        if !self.enabled {
            return;
        }
        let mut line = String::with_capacity(64 + 16 * fields.len());
        line.push_str("{\"t\":");
        json::push_f64(&mut line, self.epoch.elapsed().as_secs_f64());
        line.push_str(",\"rank\":");
        line.push_str(&self.rank.to_string());
        line.push_str(",\"event\":");
        json::push_str(&mut line, name);
        for (k, v) in fields {
            line.push(',');
            json::push_str(&mut line, k);
            line.push(':');
            json::push_f64(&mut line, *v);
        }
        line.push('}');
        self.inner.borrow_mut().events.push(line);
    }

    /// Number of recorded events.
    pub fn n_events(&self) -> usize {
        self.inner.borrow().events.len()
    }

    // ---- flight recorder ----

    /// Attach a fixed-capacity flight recorder: from now on every span exit
    /// (and [`Registry::record_span`] / [`Registry::trace_mark`]) also pushes
    /// a timestamped event into a preallocated ring that overwrites its
    /// oldest entry once full. No-op on a disabled registry; calling again
    /// replaces the ring.
    pub fn enable_trace(&self, capacity: usize) {
        if !self.enabled {
            return;
        }
        self.inner.borrow_mut().ring = Some(TraceRing::with_capacity(capacity));
    }

    /// Whether a flight recorder is attached (and the registry is enabled).
    pub fn trace_is_enabled(&self) -> bool {
        self.enabled && self.inner.borrow().ring.is_some()
    }

    /// Push an instantaneous mark (timestamped "now") with a payload value
    /// into the flight recorder. The name is a span-table id so marks share
    /// the span interner; a mark never touches the span statistics.
    pub fn trace_mark(&self, id: SpanId, arg: f64) {
        if !self.enabled {
            return;
        }
        let now = Instant::now();
        let mut g = self.inner.borrow_mut();
        if g.ring.is_none() {
            return;
        }
        let t0_ns = TraceRing::offset_ns(self.epoch, now);
        if let Some(ring) = g.ring.as_mut() {
            ring.push(RawEvent { name: id.0, kind: TraceKind::Mark, t0_ns, dur_ns: 0, arg });
        }
    }

    /// Resolve the flight recorder into name-bearing events (oldest →
    /// newest). Empty buffer if tracing was never enabled.
    pub fn trace_buffer(&self) -> TraceBuffer {
        let g = self.inner.borrow();
        let Some(ring) = g.ring.as_ref() else {
            return TraceBuffer { rank: self.rank, ..TraceBuffer::default() };
        };
        let events = ring
            .iter_ordered()
            .map(|ev| TraceEvent {
                name: g.span_names.get(ev.name as usize).cloned().unwrap_or_default(),
                kind: ev.kind,
                t0_ns: ev.t0_ns,
                dur_ns: ev.dur_ns,
                arg: if ev.arg.is_nan() { None } else { Some(ev.arg) },
            })
            .collect();
        TraceBuffer { rank: self.rank, capacity: ring.capacity(), dropped: ring.dropped(), events }
    }

    /// Fold every metric of `other` into this registry: span statistics and
    /// counters add, gauges take `other`'s value, histograms merge bucket-wise,
    /// events append in order. Used to merge a sub-component's registry (e.g.
    /// a solver workspace's) into a run-level one. No-op when either side is
    /// disabled; `other` must have no open spans.
    ///
    /// Name sets need not match: the result is the *union* — a metric known
    /// to only one side keeps its value, nothing is dropped. (Cross-rank
    /// reduction is stricter: [`reduce::try_reduce_across_ranks`] requires
    /// identical name sets and returns a typed error otherwise, because a
    /// positional element-wise reduction over diverging sets would silently
    /// pair unrelated metrics.) The flight recorder is per-rank state and is
    /// deliberately not merged here; export it via [`Registry::trace_buffer`]
    /// and merge buffers in [`json::chrome_trace`].
    pub fn absorb(&self, other: &Registry) {
        if !self.enabled || !other.enabled || std::ptr::eq(self, other) {
            return;
        }
        let o = other.inner.borrow();
        assert!(o.stack.is_empty(), "absorb of a registry with open spans");
        let mut g = self.inner.borrow_mut();
        for (name, &oid) in &o.span_ids {
            let os = o.spans[oid as usize];
            let id = g.span_slot(name);
            let s = &mut g.spans[id as usize];
            s.count += os.count;
            s.total_ns += os.total_ns;
            s.child_ns += os.child_ns;
        }
        for (name, &oid) in &o.ctr_ids {
            let id = g.ctr_slot(name);
            g.ctrs[id as usize] += o.ctrs[oid as usize];
        }
        for (name, &v) in &o.gauges {
            g.gauges.insert(name.clone(), v);
        }
        for (name, h) in &o.hists {
            g.hists.entry(name.clone()).or_default().merge(h);
        }
        g.events.extend(o.events.iter().cloned());
    }

    // ---- reset / snapshot / serialization ----

    /// Clear all accumulated statistics and events, keeping interned ids
    /// valid (e.g. to discard a warm-up trial).
    pub fn reset(&self) {
        if !self.enabled {
            return;
        }
        let mut g = self.inner.borrow_mut();
        assert!(g.stack.is_empty(), "reset with open spans");
        for s in g.spans.iter_mut() {
            *s = SpanStats::default();
        }
        for c in g.ctrs.iter_mut() {
            *c = 0;
        }
        g.gauges.clear();
        g.hists.clear();
        g.events.clear();
        if let Some(ring) = g.ring.as_mut() {
            ring.clear();
        }
    }

    /// Flat, name-sorted numeric snapshot of every metric — the unit of
    /// cross-rank reduction. Spans contribute `secs`/`self_secs`/`count`,
    /// counters and gauges their value, histograms count/mean/quantiles.
    pub fn snapshot(&self) -> Snapshot {
        let g = self.inner.borrow();
        let mut entries: Vec<(String, f64)> = Vec::new();
        for (name, &id) in &g.span_ids {
            let s = &g.spans[id as usize];
            entries.push((format!("span.{name}.secs"), s.total_secs()));
            entries.push((format!("span.{name}.self_secs"), s.self_secs()));
            entries.push((format!("span.{name}.count"), s.count as f64));
        }
        for (name, &id) in &g.ctr_ids {
            entries.push((format!("ctr.{name}"), g.ctrs[id as usize] as f64));
        }
        for (name, &v) in &g.gauges {
            entries.push((format!("gauge.{name}"), v));
        }
        for (name, h) in &g.hists {
            entries.push((format!("hist.{name}.count"), h.count() as f64));
            entries.push((format!("hist.{name}.mean"), h.mean()));
            entries.push((format!("hist.{name}.p50"), h.quantile(0.50)));
            entries.push((format!("hist.{name}.p95"), h.quantile(0.95)));
            entries.push((format!("hist.{name}.p99"), h.quantile(0.99)));
        }
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Snapshot { entries }
    }

    /// One JSON object with every metric, keyed by kind.
    pub fn to_json(&self) -> String {
        let g = self.inner.borrow();
        let mut s = String::from("{");
        s.push_str("\"rank\":");
        s.push_str(&self.rank.to_string());
        s.push_str(",\"spans\":{");
        for (i, (name, &id)) in g.span_ids.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let sp = &g.spans[id as usize];
            json::push_str(&mut s, name);
            s.push_str(":{\"count\":");
            s.push_str(&sp.count.to_string());
            s.push_str(",\"secs\":");
            json::push_f64(&mut s, sp.total_secs());
            s.push_str(",\"self_secs\":");
            json::push_f64(&mut s, sp.self_secs());
            s.push('}');
        }
        s.push_str("},\"counters\":{");
        for (i, (name, &id)) in g.ctr_ids.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            json::push_str(&mut s, name);
            s.push(':');
            s.push_str(&g.ctrs[id as usize].to_string());
        }
        s.push_str("},\"gauges\":{");
        for (i, (name, &v)) in g.gauges.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            json::push_str(&mut s, name);
            s.push(':');
            json::push_f64(&mut s, v);
        }
        s.push_str("},\"histograms\":{");
        for (i, (name, h)) in g.hists.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            json::push_str(&mut s, name);
            s.push(':');
            s.push_str(&h.to_json());
        }
        s.push_str("}}");
        s
    }

    /// NDJSON dump: one line per span/counter/gauge/histogram, then every
    /// recorded event line in order.
    pub fn ndjson(&self) -> String {
        let g = self.inner.borrow();
        let mut out = String::new();
        for (name, &id) in &g.span_ids {
            let sp = &g.spans[id as usize];
            out.push_str("{\"type\":\"span\",\"rank\":");
            out.push_str(&self.rank.to_string());
            out.push_str(",\"name\":");
            json::push_str(&mut out, name);
            out.push_str(",\"count\":");
            out.push_str(&sp.count.to_string());
            out.push_str(",\"secs\":");
            json::push_f64(&mut out, sp.total_secs());
            out.push_str(",\"self_secs\":");
            json::push_f64(&mut out, sp.self_secs());
            out.push_str("}\n");
        }
        for (name, &id) in &g.ctr_ids {
            out.push_str("{\"type\":\"counter\",\"rank\":");
            out.push_str(&self.rank.to_string());
            out.push_str(",\"name\":");
            json::push_str(&mut out, name);
            out.push_str(",\"value\":");
            out.push_str(&g.ctrs[id as usize].to_string());
            out.push_str("}\n");
        }
        for (name, &v) in &g.gauges {
            out.push_str("{\"type\":\"gauge\",\"rank\":");
            out.push_str(&self.rank.to_string());
            out.push_str(",\"name\":");
            json::push_str(&mut out, name);
            out.push_str(",\"value\":");
            json::push_f64(&mut out, v);
            out.push_str("}\n");
        }
        for (name, h) in &g.hists {
            out.push_str("{\"type\":\"histogram\",\"rank\":");
            out.push_str(&self.rank.to_string());
            out.push_str(",\"name\":");
            json::push_str(&mut out, name);
            out.push_str(",\"stats\":");
            out.push_str(&h.to_json());
            out.push_str("}\n");
        }
        for e in &g.events {
            out.push_str(e);
            out.push('\n');
        }
        out
    }
}

/// RAII span guard returned by [`Registry::span`].
pub struct SpanGuard<'a> {
    reg: &'a Registry,
    id: SpanId,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.reg.exit(self.id);
    }
}

/// Flat, name-sorted numeric view of a registry (see [`Registry::snapshot`]).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    pub entries: Vec<(String, f64)>,
}

impl Snapshot {
    /// Keep only entries whose name passes `keep`. Use before
    /// [`reduce_across_ranks`] when ranks may hold rank-local metric names
    /// (e.g. per-color element spans — color counts differ per partition).
    pub fn retain(&mut self, mut keep: impl FnMut(&str) -> bool) {
        self.entries.retain(|(n, _)| keep(n));
    }

    pub fn get(&self, name: &str) -> Option<f64> {
        self.entries.binary_search_by(|(k, _)| k.as_str().cmp(name)).ok().map(|i| self.entries[i].1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_spans_account_child_time_within_parent() {
        let reg = Registry::new(0);
        for _ in 0..5 {
            let _outer = reg.span("outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = reg.span("outer/work");
                std::thread::sleep(std::time::Duration::from_millis(3));
            }
            {
                let _inner = reg.span("outer/other");
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        let outer = reg.span_stats("outer").unwrap();
        let work = reg.span_stats("outer/work").unwrap();
        let other = reg.span_stats("outer/other").unwrap();
        assert_eq!(outer.count, 5);
        assert_eq!(work.count, 5);
        // Child time is fully contained in the parent's total...
        assert!(work.total_ns + other.total_ns <= outer.total_ns);
        // ...and equals the parent's child account exactly.
        assert_eq!(outer.child_ns, work.total_ns + other.total_ns);
        // Self time is positive (the parent slept 2ms per iteration itself).
        assert!(outer.self_secs() > 0.0);
        assert!(outer.self_secs() <= outer.total_secs());
        // Leaf spans have no children.
        assert_eq!(work.child_ns, 0);
    }

    #[test]
    fn interned_ids_match_string_api() {
        let reg = Registry::new(3);
        let id = reg.span_id("phase");
        reg.enter(id);
        reg.exit(id);
        let _g = reg.span("phase");
        drop(_g);
        assert_eq!(reg.span_stats("phase").unwrap().count, 2);
        let c = reg.counter_id("flops");
        reg.add_id(c, 10);
        reg.add("flops", 5);
        assert_eq!(reg.counter("flops"), Some(15));
        reg.set("flops", 7);
        assert_eq!(reg.counter("flops"), Some(7));
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let reg = Registry::disabled();
        {
            let _g = reg.span("anything");
            reg.add("ctr", 5);
            reg.gauge("g", 1.0);
            reg.observe("h", 2.0);
            reg.event("e", &[("x", 1.0)]);
        }
        assert!(reg.span_stats("anything").is_none());
        assert!(reg.counter("ctr").is_none());
        assert!(reg.gauge_value("g").is_none());
        assert!(reg.histogram("h").is_none());
        assert_eq!(reg.n_events(), 0);
        assert!(reg.snapshot().entries.is_empty());
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn mismatched_exit_panics() {
        let reg = Registry::new(0);
        let a = reg.span_id("a");
        let b = reg.span_id("b");
        reg.enter(a);
        reg.exit(b);
    }

    #[test]
    fn events_serialize_as_ndjson() {
        let reg = Registry::new(1);
        reg.event("gn_iter", &[("iter", 0.0), ("misfit", 1.25e-3)]);
        reg.event("gn_iter", &[("iter", 1.0), ("misfit", 6.0e-4)]);
        let nd = reg.ndjson();
        let lines: Vec<&str> = nd.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"event\":\"gn_iter\""));
        assert!(lines[0].contains("\"iter\":0"));
        assert!(lines[1].contains("\"misfit\":0.0006"));
        assert!(lines[0].contains("\"rank\":1"));
    }

    #[test]
    fn snapshot_is_sorted_and_searchable() {
        let reg = Registry::new(0);
        reg.add("z_ctr", 3);
        reg.gauge("a_gauge", 2.5);
        {
            let _g = reg.span("mid");
        }
        reg.observe("h", 4.0);
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.entries.iter().map(|(n, _)| n.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
        assert_eq!(snap.get("ctr.z_ctr"), Some(3.0));
        assert_eq!(snap.get("gauge.a_gauge"), Some(2.5));
        assert_eq!(snap.get("hist.h.count"), Some(1.0));
        assert_eq!(snap.get("span.mid.count"), Some(1.0));
        assert!(snap.get("nope").is_none());
    }

    #[test]
    fn reset_clears_stats_but_keeps_ids() {
        let reg = Registry::new(0);
        let id = reg.span_id("s");
        reg.enter(id);
        reg.exit(id);
        reg.add("c", 4);
        reg.event("e", &[]);
        reg.reset();
        assert_eq!(reg.span_stats("s").unwrap().count, 0);
        assert_eq!(reg.counter("c"), Some(0));
        assert_eq!(reg.n_events(), 0);
        // The old id is still valid after reset.
        reg.enter(id);
        reg.exit(id);
        assert_eq!(reg.span_stats("s").unwrap().count, 1);
    }

    #[test]
    fn to_json_is_structurally_sound() {
        let reg = Registry::new(2);
        {
            let _g = reg.span("a\"b");
        }
        reg.add("c", 1);
        reg.gauge("g", -0.5);
        reg.observe("h", 10.0);
        let j = reg.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"a\\\"b\""), "span name must be escaped: {j}");
        assert!(j.contains("\"counters\":{\"c\":1}"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn absorb_merges_every_metric_kind() {
        let a = Registry::new(0);
        let b = Registry::new(0);
        for reg in [&a, &b] {
            let _g = reg.span("shared");
            reg.add("n", 10);
            reg.observe("h", 4.0);
        }
        {
            let _g = b.span("only_b");
        }
        a.gauge("g", 1.0);
        b.gauge("g", 2.0);
        b.event("ev", &[("x", 1.0)]);
        a.absorb(&b);
        // Spans sum by name; names unknown to `a` are interned.
        assert_eq!(a.span_stats("shared").unwrap().count, 2);
        assert_eq!(a.span_stats("only_b").unwrap().count, 1);
        // Counters add, gauges take the absorbed value, histograms merge,
        // events append.
        assert_eq!(a.counter("n"), Some(20));
        assert_eq!(a.gauge_value("g"), Some(2.0));
        let h = a.histogram("h").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.mean(), 4.0);
        assert_eq!(a.n_events(), 1);
        // `b` is untouched, and self/disabled absorbs are no-ops.
        assert_eq!(b.counter("n"), Some(10));
        a.absorb(&a);
        assert_eq!(a.counter("n"), Some(20));
        a.absorb(&Registry::disabled());
        Registry::disabled().absorb(&a);
        assert_eq!(a.counter("n"), Some(20));
    }

    #[test]
    fn absorb_of_partially_overlapping_registries_is_a_union() {
        // Regression shape for the reduce-mismatch fix: merging registries
        // whose histogram/span/counter name sets only partially overlap must
        // keep everything (union), never silently drop the non-shared names.
        let a = Registry::new(0);
        let b = Registry::new(0);
        a.observe("shared_hist", 1.0);
        b.observe("shared_hist", 3.0);
        a.observe("only_a_hist", 10.0);
        b.observe("only_b_hist", 20.0);
        a.add("only_a_ctr", 1);
        b.add("only_b_ctr", 2);
        a.absorb(&b);
        assert_eq!(a.histogram("shared_hist").unwrap().count(), 2);
        assert_eq!(a.histogram("only_a_hist").unwrap().count(), 1);
        assert_eq!(a.histogram("only_b_hist").unwrap().count(), 1);
        assert_eq!(a.counter("only_a_ctr"), Some(1));
        assert_eq!(a.counter("only_b_ctr"), Some(2));
        // The union is visible in the snapshot (what reduction would see).
        let snap = a.snapshot();
        assert!(snap.get("hist.only_a_hist.count").is_some());
        assert!(snap.get("hist.only_b_hist.count").is_some());
    }

    #[test]
    fn span_exits_feed_the_flight_recorder() {
        let reg = Registry::new(1);
        reg.enable_trace(16);
        assert!(reg.trace_is_enabled());
        for _ in 0..3 {
            let _outer = reg.span("step");
            let _inner = reg.span("step/fill");
        }
        let buf = reg.trace_buffer();
        assert_eq!(buf.rank, 1);
        assert_eq!(buf.capacity, 16);
        assert_eq!(buf.dropped, 0);
        // Children exit before parents: fill, step, fill, step, ...
        let names: Vec<&str> = buf.events.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["step/fill", "step", "step/fill", "step", "step/fill", "step"]);
        assert!(buf.events.iter().all(|e| e.kind == TraceKind::Slice));
        // Timestamps are monotone in exit order for nested spans on one rank.
        assert!(buf.events.windows(2).all(|w| w[0].t0_ns <= w[1].t0_ns + w[1].dur_ns));
        // A child slice lies inside its parent slice.
        let (fill, step) = (&buf.events[0], &buf.events[1]);
        assert!(fill.t0_ns >= step.t0_ns);
        assert!(fill.t0_ns + fill.dur_ns <= step.t0_ns + step.dur_ns);
    }

    #[test]
    fn record_span_attributes_like_a_nested_span() {
        let reg = Registry::new(0);
        reg.enable_trace(8);
        let outer = reg.span_id("exchange");
        let wait = reg.span_id("exchange/wait");
        reg.enter(outer);
        reg.record_span(wait, 5, 1000);
        reg.exit(outer);
        let w = reg.span_stats("exchange/wait").unwrap();
        assert_eq!((w.count, w.total_ns), (1, 1000));
        // The recorded interval lands in the open parent's child account.
        let o = reg.span_stats("exchange").unwrap();
        assert_eq!(o.child_ns, 1000);
        let buf = reg.trace_buffer();
        assert_eq!(buf.events[0].name, "exchange/wait");
        assert_eq!((buf.events[0].t0_ns, buf.events[0].dur_ns), (5, 1000));
    }

    #[test]
    fn trace_marks_and_reset() {
        let reg = Registry::new(0);
        reg.enable_trace(4);
        let id = reg.span_id("imbalance");
        reg.trace_mark(id, 1.25);
        let buf = reg.trace_buffer();
        assert_eq!(buf.events.len(), 1);
        assert_eq!(buf.events[0].kind, TraceKind::Mark);
        assert_eq!(buf.events[0].arg, Some(1.25));
        reg.reset();
        assert!(reg.trace_buffer().events.is_empty());
        assert!(reg.trace_is_enabled(), "reset keeps the ring attached");
        // Disabled registries and ring-less registries ignore trace calls.
        let off = Registry::disabled();
        off.enable_trace(4);
        assert!(!off.trace_is_enabled());
        assert!(off.trace_buffer().events.is_empty());
        let no_ring = Registry::new(0);
        no_ring.trace_mark(no_ring.span_id("x"), 0.0);
        assert!(no_ring.trace_buffer().events.is_empty());
    }

    #[test]
    fn shared_epoch_aligns_ranks() {
        let epoch = Instant::now();
        let r0 = Registry::with_epoch(0, epoch);
        let r1 = Registry::with_epoch(1, epoch);
        r0.enable_trace(4);
        r1.enable_trace(4);
        {
            let _a = r0.span("a");
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
        {
            let _b = r1.span("b");
        }
        let (b0, b1) = (r0.trace_buffer(), r1.trace_buffer());
        // Rank 1's slice started after rank 0's on the shared timebase.
        assert!(b1.events[0].t0_ns > b0.events[0].t0_ns);
    }
}
