//! Std-only observability substrate (the paper's Section 4 methodology as a
//! library).
//!
//! The paper characterizes its code almost entirely through measurement:
//! per-phase wall-clock breakdowns of the time loop, sustained Mflop/s per
//! PE, and communication-vs-compute ratios. This crate provides the
//! counterpart for the reproduction — a per-rank [`Registry`] of
//!
//! - **span timers** with nested scopes ([`Registry::span`] /
//!   [`Registry::enter`]/[`Registry::exit`]): each span accumulates call
//!   count, total wall time and the time spent in *child* spans, so a
//!   breakdown can report exclusive (self) time per phase,
//! - **monotonic counters** and **gauges** ([`Registry::add`],
//!   [`Registry::set`], [`Registry::gauge`]) for flop/byte/cache-event
//!   accounting,
//! - **fixed-bucket log-scale histograms** ([`Registry::observe`]) with
//!   p50/p95/p99 quantile readout,
//! - **NDJSON events** ([`Registry::event`]) for iteration traces
//!   (Gauss-Newton convergence histories, etc.),
//!
//! serialized to JSON ([`Registry::to_json`]) or NDJSON
//! ([`Registry::ndjson`]), and reduced across SPMD ranks with min/max/mean
//! semantics via `quake-parcomm` ([`reduce::reduce_across_ranks`]).
//!
//! # Cost discipline
//!
//! Telemetry is compiled in, never `cfg`'d out, so the *disabled* path must
//! be near-free: every public method checks a single `enabled` flag and
//! returns before touching the `RefCell`. Hot loops additionally intern
//! their span/counter names once ([`Registry::span_id`],
//! [`Registry::counter_id`]) so the steady state performs no string lookups
//! and no allocations — an enabled span costs two `Instant::now` calls and a
//! few integer updates. `bench_step --check-overhead` guards the enabled
//! overhead end to end.
//!
//! A `Registry` is deliberately `Send` but not `Sync`: in SPMD runs each
//! rank owns its registry (exactly like per-rank counters in an MPI code)
//! and cross-rank aggregation is an explicit reduction, not shared state.

pub mod hist;
pub mod json;
pub mod observe;
pub mod reduce;

pub use hist::Histogram;
pub use observe::{ProgressEvents, StepObserver};
pub use reduce::{reduce_across_ranks, Reduced};

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::time::Instant;

/// Interned span handle (see [`Registry::span_id`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanId(u32);

/// Interned counter handle (see [`Registry::counter_id`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CtrId(u32);

/// Accumulated statistics of one span.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanStats {
    /// Number of completed enter/exit pairs.
    pub count: u64,
    /// Total (inclusive) wall time, nanoseconds.
    pub total_ns: u64,
    /// Wall time spent inside child spans, nanoseconds.
    pub child_ns: u64,
}

impl SpanStats {
    pub fn total_secs(&self) -> f64 {
        self.total_ns as f64 * 1e-9
    }

    /// Exclusive (self) time: total minus time attributed to children.
    pub fn self_secs(&self) -> f64 {
        self.total_ns.saturating_sub(self.child_ns) as f64 * 1e-9
    }
}

struct Frame {
    id: u32,
    start: Instant,
    /// Nanoseconds accumulated by direct children while this frame was open.
    child_ns: u64,
}

#[derive(Default)]
struct Inner {
    span_ids: BTreeMap<String, u32>,
    span_names: Vec<String>,
    spans: Vec<SpanStats>,
    stack: Vec<Frame>,
    ctr_ids: BTreeMap<String, u32>,
    ctr_names: Vec<String>,
    ctrs: Vec<u64>,
    gauges: BTreeMap<String, f64>,
    hists: BTreeMap<String, Histogram>,
    events: Vec<String>,
}

impl Inner {
    fn span_slot(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.span_ids.get(name) {
            return id;
        }
        let id = self.span_names.len() as u32;
        self.span_ids.insert(name.to_string(), id);
        self.span_names.push(name.to_string());
        self.spans.push(SpanStats::default());
        id
    }

    fn ctr_slot(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.ctr_ids.get(name) {
            return id;
        }
        let id = self.ctr_names.len() as u32;
        self.ctr_ids.insert(name.to_string(), id);
        self.ctr_names.push(name.to_string());
        self.ctrs.push(0);
        id
    }
}

/// Per-rank metric registry. See the crate docs for the model.
pub struct Registry {
    enabled: bool,
    rank: usize,
    epoch: Instant,
    inner: RefCell<Inner>,
}

impl Registry {
    /// An enabled registry for `rank`.
    pub fn new(rank: usize) -> Registry {
        Registry { enabled: true, rank, epoch: Instant::now(), inner: RefCell::default() }
    }

    /// A disabled registry: every operation is a checked no-op (one branch).
    pub fn disabled() -> Registry {
        Registry { enabled: false, rank: 0, epoch: Instant::now(), inner: RefCell::default() }
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    pub fn rank(&self) -> usize {
        self.rank
    }

    // ---- spans ----

    /// Intern a span name; the returned id makes [`Registry::enter`] /
    /// [`Registry::exit`] allocation- and lookup-free. On a disabled
    /// registry the id is a dummy.
    pub fn span_id(&self, name: &str) -> SpanId {
        if !self.enabled {
            return SpanId(u32::MAX);
        }
        SpanId(self.inner.borrow_mut().span_slot(name))
    }

    /// Open the span. Must be matched by [`Registry::exit`] with the same id
    /// (spans strictly nest; the stack enforces it).
    #[inline]
    pub fn enter(&self, id: SpanId) {
        if !self.enabled {
            return;
        }
        let mut g = self.inner.borrow_mut();
        g.stack.push(Frame { id: id.0, start: Instant::now(), child_ns: 0 });
    }

    /// Close the span, accumulating its elapsed time and attributing it to
    /// the parent's child-time account.
    #[inline]
    pub fn exit(&self, id: SpanId) {
        if !self.enabled {
            return;
        }
        let mut g = self.inner.borrow_mut();
        let frame = g.stack.pop().expect("span exit without matching enter");
        assert_eq!(frame.id, id.0, "span exit does not match the innermost open span");
        let elapsed = frame.start.elapsed().as_nanos() as u64;
        let s = &mut g.spans[frame.id as usize];
        s.count += 1;
        s.total_ns += elapsed;
        s.child_ns += frame.child_ns;
        if let Some(parent) = g.stack.last_mut() {
            parent.child_ns += elapsed;
        }
    }

    /// RAII convenience: open a span by name, closed on guard drop.
    pub fn span<'a>(&'a self, name: &str) -> SpanGuard<'a> {
        let id = self.span_id(name);
        self.enter(id);
        SpanGuard { reg: self, id }
    }

    /// Statistics of a span by name (`None` if never interned).
    pub fn span_stats(&self, name: &str) -> Option<SpanStats> {
        let g = self.inner.borrow();
        g.span_ids.get(name).map(|&id| g.spans[id as usize])
    }

    // ---- counters / gauges ----

    /// Intern a counter name (same contract as [`Registry::span_id`]).
    pub fn counter_id(&self, name: &str) -> CtrId {
        if !self.enabled {
            return CtrId(u32::MAX);
        }
        CtrId(self.inner.borrow_mut().ctr_slot(name))
    }

    /// Add to an interned counter.
    #[inline]
    pub fn add_id(&self, id: CtrId, n: u64) {
        if !self.enabled {
            return;
        }
        self.inner.borrow_mut().ctrs[id.0 as usize] += n;
    }

    /// Add to a counter by name.
    pub fn add(&self, name: &str, n: u64) {
        if !self.enabled {
            return;
        }
        let id = self.counter_id(name);
        self.add_id(id, n);
    }

    /// Set a counter to an absolute value (for exporting externally
    /// accumulated statistics, e.g. a pager's cache counters).
    pub fn set(&self, name: &str, v: u64) {
        if !self.enabled {
            return;
        }
        let id = self.counter_id(name);
        self.inner.borrow_mut().ctrs[id.0 as usize] = v;
    }

    /// Counter value by name (`None` if never touched).
    pub fn counter(&self, name: &str) -> Option<u64> {
        let g = self.inner.borrow();
        g.ctr_ids.get(name).map(|&id| g.ctrs[id as usize])
    }

    /// Set a named floating-point gauge (last write wins).
    pub fn gauge(&self, name: &str, v: f64) {
        if !self.enabled {
            return;
        }
        self.inner.borrow_mut().gauges.insert(name.to_string(), v);
    }

    /// Gauge value by name.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.inner.borrow().gauges.get(name).copied()
    }

    // ---- histograms ----

    /// Record one observation into the named log-scale histogram.
    pub fn observe(&self, name: &str, v: f64) {
        if !self.enabled {
            return;
        }
        self.inner.borrow_mut().hists.entry(name.to_string()).or_default().record(v);
    }

    /// Snapshot of a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.inner.borrow().hists.get(name).cloned()
    }

    // ---- events ----

    /// Append an NDJSON event line: monotonic timestamp, rank, event name and
    /// numeric fields. The formatting round-trips `f64` exactly, so traces
    /// are reproducible from the log alone.
    pub fn event(&self, name: &str, fields: &[(&str, f64)]) {
        if !self.enabled {
            return;
        }
        let mut line = String::with_capacity(64 + 16 * fields.len());
        line.push_str("{\"t\":");
        json::push_f64(&mut line, self.epoch.elapsed().as_secs_f64());
        line.push_str(",\"rank\":");
        line.push_str(&self.rank.to_string());
        line.push_str(",\"event\":");
        json::push_str(&mut line, name);
        for (k, v) in fields {
            line.push(',');
            json::push_str(&mut line, k);
            line.push(':');
            json::push_f64(&mut line, *v);
        }
        line.push('}');
        self.inner.borrow_mut().events.push(line);
    }

    /// Number of recorded events.
    pub fn n_events(&self) -> usize {
        self.inner.borrow().events.len()
    }

    /// Fold every metric of `other` into this registry: span statistics and
    /// counters add, gauges take `other`'s value, histograms merge bucket-wise,
    /// events append in order. Used to merge a sub-component's registry (e.g.
    /// a solver workspace's) into a run-level one. No-op when either side is
    /// disabled; `other` must have no open spans.
    pub fn absorb(&self, other: &Registry) {
        if !self.enabled || !other.enabled || std::ptr::eq(self, other) {
            return;
        }
        let o = other.inner.borrow();
        assert!(o.stack.is_empty(), "absorb of a registry with open spans");
        let mut g = self.inner.borrow_mut();
        for (name, &oid) in &o.span_ids {
            let os = o.spans[oid as usize];
            let id = g.span_slot(name);
            let s = &mut g.spans[id as usize];
            s.count += os.count;
            s.total_ns += os.total_ns;
            s.child_ns += os.child_ns;
        }
        for (name, &oid) in &o.ctr_ids {
            let id = g.ctr_slot(name);
            g.ctrs[id as usize] += o.ctrs[oid as usize];
        }
        for (name, &v) in &o.gauges {
            g.gauges.insert(name.clone(), v);
        }
        for (name, h) in &o.hists {
            g.hists.entry(name.clone()).or_default().merge(h);
        }
        g.events.extend(o.events.iter().cloned());
    }

    // ---- reset / snapshot / serialization ----

    /// Clear all accumulated statistics and events, keeping interned ids
    /// valid (e.g. to discard a warm-up trial).
    pub fn reset(&self) {
        if !self.enabled {
            return;
        }
        let mut g = self.inner.borrow_mut();
        assert!(g.stack.is_empty(), "reset with open spans");
        for s in g.spans.iter_mut() {
            *s = SpanStats::default();
        }
        for c in g.ctrs.iter_mut() {
            *c = 0;
        }
        g.gauges.clear();
        g.hists.clear();
        g.events.clear();
    }

    /// Flat, name-sorted numeric snapshot of every metric — the unit of
    /// cross-rank reduction. Spans contribute `secs`/`self_secs`/`count`,
    /// counters and gauges their value, histograms count/mean/quantiles.
    pub fn snapshot(&self) -> Snapshot {
        let g = self.inner.borrow();
        let mut entries: Vec<(String, f64)> = Vec::new();
        for (name, &id) in &g.span_ids {
            let s = &g.spans[id as usize];
            entries.push((format!("span.{name}.secs"), s.total_secs()));
            entries.push((format!("span.{name}.self_secs"), s.self_secs()));
            entries.push((format!("span.{name}.count"), s.count as f64));
        }
        for (name, &id) in &g.ctr_ids {
            entries.push((format!("ctr.{name}"), g.ctrs[id as usize] as f64));
        }
        for (name, &v) in &g.gauges {
            entries.push((format!("gauge.{name}"), v));
        }
        for (name, h) in &g.hists {
            entries.push((format!("hist.{name}.count"), h.count() as f64));
            entries.push((format!("hist.{name}.mean"), h.mean()));
            entries.push((format!("hist.{name}.p50"), h.quantile(0.50)));
            entries.push((format!("hist.{name}.p95"), h.quantile(0.95)));
            entries.push((format!("hist.{name}.p99"), h.quantile(0.99)));
        }
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Snapshot { entries }
    }

    /// One JSON object with every metric, keyed by kind.
    pub fn to_json(&self) -> String {
        let g = self.inner.borrow();
        let mut s = String::from("{");
        s.push_str("\"rank\":");
        s.push_str(&self.rank.to_string());
        s.push_str(",\"spans\":{");
        for (i, (name, &id)) in g.span_ids.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let sp = &g.spans[id as usize];
            json::push_str(&mut s, name);
            s.push_str(":{\"count\":");
            s.push_str(&sp.count.to_string());
            s.push_str(",\"secs\":");
            json::push_f64(&mut s, sp.total_secs());
            s.push_str(",\"self_secs\":");
            json::push_f64(&mut s, sp.self_secs());
            s.push('}');
        }
        s.push_str("},\"counters\":{");
        for (i, (name, &id)) in g.ctr_ids.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            json::push_str(&mut s, name);
            s.push(':');
            s.push_str(&g.ctrs[id as usize].to_string());
        }
        s.push_str("},\"gauges\":{");
        for (i, (name, &v)) in g.gauges.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            json::push_str(&mut s, name);
            s.push(':');
            json::push_f64(&mut s, v);
        }
        s.push_str("},\"histograms\":{");
        for (i, (name, h)) in g.hists.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            json::push_str(&mut s, name);
            s.push(':');
            s.push_str(&h.to_json());
        }
        s.push_str("}}");
        s
    }

    /// NDJSON dump: one line per span/counter/gauge/histogram, then every
    /// recorded event line in order.
    pub fn ndjson(&self) -> String {
        let g = self.inner.borrow();
        let mut out = String::new();
        for (name, &id) in &g.span_ids {
            let sp = &g.spans[id as usize];
            out.push_str("{\"type\":\"span\",\"rank\":");
            out.push_str(&self.rank.to_string());
            out.push_str(",\"name\":");
            json::push_str(&mut out, name);
            out.push_str(",\"count\":");
            out.push_str(&sp.count.to_string());
            out.push_str(",\"secs\":");
            json::push_f64(&mut out, sp.total_secs());
            out.push_str(",\"self_secs\":");
            json::push_f64(&mut out, sp.self_secs());
            out.push_str("}\n");
        }
        for (name, &id) in &g.ctr_ids {
            out.push_str("{\"type\":\"counter\",\"rank\":");
            out.push_str(&self.rank.to_string());
            out.push_str(",\"name\":");
            json::push_str(&mut out, name);
            out.push_str(",\"value\":");
            out.push_str(&g.ctrs[id as usize].to_string());
            out.push_str("}\n");
        }
        for (name, &v) in &g.gauges {
            out.push_str("{\"type\":\"gauge\",\"rank\":");
            out.push_str(&self.rank.to_string());
            out.push_str(",\"name\":");
            json::push_str(&mut out, name);
            out.push_str(",\"value\":");
            json::push_f64(&mut out, v);
            out.push_str("}\n");
        }
        for (name, h) in &g.hists {
            out.push_str("{\"type\":\"histogram\",\"rank\":");
            out.push_str(&self.rank.to_string());
            out.push_str(",\"name\":");
            json::push_str(&mut out, name);
            out.push_str(",\"stats\":");
            out.push_str(&h.to_json());
            out.push_str("}\n");
        }
        for e in &g.events {
            out.push_str(e);
            out.push('\n');
        }
        out
    }
}

/// RAII span guard returned by [`Registry::span`].
pub struct SpanGuard<'a> {
    reg: &'a Registry,
    id: SpanId,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.reg.exit(self.id);
    }
}

/// Flat, name-sorted numeric view of a registry (see [`Registry::snapshot`]).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    pub entries: Vec<(String, f64)>,
}

impl Snapshot {
    /// Keep only entries whose name passes `keep`. Use before
    /// [`reduce_across_ranks`] when ranks may hold rank-local metric names
    /// (e.g. per-color element spans — color counts differ per partition).
    pub fn retain(&mut self, mut keep: impl FnMut(&str) -> bool) {
        self.entries.retain(|(n, _)| keep(n));
    }

    pub fn get(&self, name: &str) -> Option<f64> {
        self.entries.binary_search_by(|(k, _)| k.as_str().cmp(name)).ok().map(|i| self.entries[i].1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_spans_account_child_time_within_parent() {
        let reg = Registry::new(0);
        for _ in 0..5 {
            let _outer = reg.span("outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = reg.span("outer/work");
                std::thread::sleep(std::time::Duration::from_millis(3));
            }
            {
                let _inner = reg.span("outer/other");
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        let outer = reg.span_stats("outer").unwrap();
        let work = reg.span_stats("outer/work").unwrap();
        let other = reg.span_stats("outer/other").unwrap();
        assert_eq!(outer.count, 5);
        assert_eq!(work.count, 5);
        // Child time is fully contained in the parent's total...
        assert!(work.total_ns + other.total_ns <= outer.total_ns);
        // ...and equals the parent's child account exactly.
        assert_eq!(outer.child_ns, work.total_ns + other.total_ns);
        // Self time is positive (the parent slept 2ms per iteration itself).
        assert!(outer.self_secs() > 0.0);
        assert!(outer.self_secs() <= outer.total_secs());
        // Leaf spans have no children.
        assert_eq!(work.child_ns, 0);
    }

    #[test]
    fn interned_ids_match_string_api() {
        let reg = Registry::new(3);
        let id = reg.span_id("phase");
        reg.enter(id);
        reg.exit(id);
        let _g = reg.span("phase");
        drop(_g);
        assert_eq!(reg.span_stats("phase").unwrap().count, 2);
        let c = reg.counter_id("flops");
        reg.add_id(c, 10);
        reg.add("flops", 5);
        assert_eq!(reg.counter("flops"), Some(15));
        reg.set("flops", 7);
        assert_eq!(reg.counter("flops"), Some(7));
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let reg = Registry::disabled();
        {
            let _g = reg.span("anything");
            reg.add("ctr", 5);
            reg.gauge("g", 1.0);
            reg.observe("h", 2.0);
            reg.event("e", &[("x", 1.0)]);
        }
        assert!(reg.span_stats("anything").is_none());
        assert!(reg.counter("ctr").is_none());
        assert!(reg.gauge_value("g").is_none());
        assert!(reg.histogram("h").is_none());
        assert_eq!(reg.n_events(), 0);
        assert!(reg.snapshot().entries.is_empty());
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn mismatched_exit_panics() {
        let reg = Registry::new(0);
        let a = reg.span_id("a");
        let b = reg.span_id("b");
        reg.enter(a);
        reg.exit(b);
    }

    #[test]
    fn events_serialize_as_ndjson() {
        let reg = Registry::new(1);
        reg.event("gn_iter", &[("iter", 0.0), ("misfit", 1.25e-3)]);
        reg.event("gn_iter", &[("iter", 1.0), ("misfit", 6.0e-4)]);
        let nd = reg.ndjson();
        let lines: Vec<&str> = nd.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"event\":\"gn_iter\""));
        assert!(lines[0].contains("\"iter\":0"));
        assert!(lines[1].contains("\"misfit\":0.0006"));
        assert!(lines[0].contains("\"rank\":1"));
    }

    #[test]
    fn snapshot_is_sorted_and_searchable() {
        let reg = Registry::new(0);
        reg.add("z_ctr", 3);
        reg.gauge("a_gauge", 2.5);
        {
            let _g = reg.span("mid");
        }
        reg.observe("h", 4.0);
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.entries.iter().map(|(n, _)| n.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
        assert_eq!(snap.get("ctr.z_ctr"), Some(3.0));
        assert_eq!(snap.get("gauge.a_gauge"), Some(2.5));
        assert_eq!(snap.get("hist.h.count"), Some(1.0));
        assert_eq!(snap.get("span.mid.count"), Some(1.0));
        assert!(snap.get("nope").is_none());
    }

    #[test]
    fn reset_clears_stats_but_keeps_ids() {
        let reg = Registry::new(0);
        let id = reg.span_id("s");
        reg.enter(id);
        reg.exit(id);
        reg.add("c", 4);
        reg.event("e", &[]);
        reg.reset();
        assert_eq!(reg.span_stats("s").unwrap().count, 0);
        assert_eq!(reg.counter("c"), Some(0));
        assert_eq!(reg.n_events(), 0);
        // The old id is still valid after reset.
        reg.enter(id);
        reg.exit(id);
        assert_eq!(reg.span_stats("s").unwrap().count, 1);
    }

    #[test]
    fn to_json_is_structurally_sound() {
        let reg = Registry::new(2);
        {
            let _g = reg.span("a\"b");
        }
        reg.add("c", 1);
        reg.gauge("g", -0.5);
        reg.observe("h", 10.0);
        let j = reg.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"a\\\"b\""), "span name must be escaped: {j}");
        assert!(j.contains("\"counters\":{\"c\":1}"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn absorb_merges_every_metric_kind() {
        let a = Registry::new(0);
        let b = Registry::new(0);
        for reg in [&a, &b] {
            let _g = reg.span("shared");
            reg.add("n", 10);
            reg.observe("h", 4.0);
        }
        {
            let _g = b.span("only_b");
        }
        a.gauge("g", 1.0);
        b.gauge("g", 2.0);
        b.event("ev", &[("x", 1.0)]);
        a.absorb(&b);
        // Spans sum by name; names unknown to `a` are interned.
        assert_eq!(a.span_stats("shared").unwrap().count, 2);
        assert_eq!(a.span_stats("only_b").unwrap().count, 1);
        // Counters add, gauges take the absorbed value, histograms merge,
        // events append.
        assert_eq!(a.counter("n"), Some(20));
        assert_eq!(a.gauge_value("g"), Some(2.0));
        let h = a.histogram("h").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.mean(), 4.0);
        assert_eq!(a.n_events(), 1);
        // `b` is untouched, and self/disabled absorbs are no-ops.
        assert_eq!(b.counter("n"), Some(10));
        a.absorb(&a);
        assert_eq!(a.counter("n"), Some(20));
        a.absorb(&Registry::disabled());
        Registry::disabled().absorb(&a);
        assert_eq!(a.counter("n"), Some(20));
    }
}
