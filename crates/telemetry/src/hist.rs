//! Fixed-bucket log-scale histograms with quantile readout.
//!
//! The bucket grid is fixed at construction (no rebalancing, no allocation
//! after the first record): `SUB` buckets per octave spanning `2^MIN_EXP ..
//! 2^MAX_EXP`, plus one underflow bucket (which also absorbs zero and
//! negative values) and one overflow bucket. With `SUB = 4` the relative
//! quantile resolution is `2^(1/4) - 1 ~ 19%` — plenty for latency/size
//! distributions that span orders of magnitude.

/// Sub-buckets per octave (power of two).
const SUB: i32 = 4;
/// Smallest representable exponent: values below `2^MIN_EXP` underflow.
const MIN_EXP: i32 = -32;
/// Largest representable exponent: values at or above `2^MAX_EXP` overflow.
const MAX_EXP: i32 = 64;
/// Regular buckets between the bounds.
const N_REGULAR: usize = ((MAX_EXP - MIN_EXP) * SUB) as usize;
/// Total buckets: underflow + regular + overflow.
const N_BUCKETS: usize = N_REGULAR + 2;

/// A log-scale histogram (see the module docs for the bucket layout).
#[derive(Clone)]
pub struct Histogram {
    buckets: Box<[u64; N_BUCKETS]>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: Box::new([0; N_BUCKETS]),
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("mean", &self.mean())
            .field("min", &self.min)
            .field("max", &self.max)
            .finish()
    }
}

/// Bucket index of a value: 0 = underflow (incl. zero/negative/NaN),
/// `N_BUCKETS - 1` = overflow.
fn bucket_of(v: f64) -> usize {
    if v.is_nan() || v <= 0.0 {
        return 0;
    }
    let idx = (v.log2() * SUB as f64).floor() as i64 - (MIN_EXP * SUB) as i64;
    if idx < 0 {
        0
    } else if idx >= N_REGULAR as i64 {
        N_BUCKETS - 1
    } else {
        idx as usize + 1
    }
}

/// Geometric midpoint of a regular bucket (its representative value).
fn bucket_mid(idx: usize) -> f64 {
    debug_assert!((1..=N_REGULAR).contains(&idx));
    let lo_exp = (idx as f64 - 1.0) / SUB as f64 + MIN_EXP as f64;
    2.0f64.powf(lo_exp + 0.5 / SUB as f64)
}

impl Histogram {
    pub fn record(&mut self, v: f64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> f64 {
        self.sum
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    pub fn min(&self) -> f64 {
        self.min
    }

    pub fn max(&self) -> f64 {
        self.max
    }

    /// The `q`-quantile (`0 <= q <= 1`): the representative value of the
    /// bucket containing the `ceil(q * count)`-th smallest observation,
    /// clamped to the observed `[min, max]`. Resolution is one bucket
    /// (`~19%` relative); exact for `q = 0` and `q = 1`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
        if self.count == 0 {
            return 0.0;
        }
        if q <= 0.0 {
            return self.min;
        }
        if q >= 1.0 {
            return self.max;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= target {
                let rep = if idx == 0 {
                    self.min
                } else if idx == N_BUCKETS - 1 {
                    self.max
                } else {
                    bucket_mid(idx)
                };
                return rep.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Fold another histogram into this one. The bucket grid is identical by
    /// construction, so this is exact: bucket-wise addition plus merged
    /// count/sum/min/max.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, &o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// JSON object with the summary statistics and standard quantiles.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"count\":");
        s.push_str(&self.count.to_string());
        for (k, v) in [
            ("mean", self.mean()),
            ("min", if self.count == 0 { 0.0 } else { self.min }),
            ("max", if self.count == 0 { 0.0 } else { self.max }),
            ("p50", self.quantile(0.5)),
            ("p95", self.quantile(0.95)),
            ("p99", self.quantile(0.99)),
        ] {
            s.push_str(",\"");
            s.push_str(k);
            s.push_str("\":");
            crate::json::push_f64(&mut s, v);
        }
        s.push('}');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Assert a quantile is within one bucket (~19% relative) of `expect`.
    fn assert_close(got: f64, expect: f64, what: &str) {
        let rel = (got - expect).abs() / expect;
        assert!(rel < 0.20, "{what}: got {got}, expected ~{expect} (rel {rel:.3})");
    }

    #[test]
    fn quantiles_of_uniform_distribution() {
        // 1..=10000 uniformly: p50 ~ 5000, p95 ~ 9500, p99 ~ 9900.
        let mut h = Histogram::default();
        for i in 1..=10_000 {
            h.record(i as f64);
        }
        assert_eq!(h.count(), 10_000);
        assert_close(h.quantile(0.50), 5_000.0, "p50");
        assert_close(h.quantile(0.95), 9_500.0, "p95");
        assert_close(h.quantile(0.99), 9_900.0, "p99");
        assert_eq!(h.quantile(0.0), 1.0);
        assert_eq!(h.quantile(1.0), 10_000.0);
        assert!((h.mean() - 5_000.5).abs() < 1e-9);
    }

    #[test]
    fn quantiles_of_log_uniform_distribution() {
        // Powers of 2 from 2^0 to 2^19, one each: p50 between 2^9 and 2^10.
        let mut h = Histogram::default();
        for e in 0..20 {
            h.record(2f64.powi(e));
        }
        let p50 = h.quantile(0.5);
        assert!((2f64.powi(9) * 0.8..=2f64.powi(10) * 1.2).contains(&p50), "p50 = {p50}");
        assert_close(h.quantile(0.95), 2f64.powi(18), "p95");
    }

    #[test]
    fn quantiles_of_bimodal_distribution() {
        // 90 fast (~1ms) + 10 slow (~1s): p50 in the fast mode, p95/p99 in
        // the slow mode — the classic latency-histogram shape.
        let mut h = Histogram::default();
        for _ in 0..90 {
            h.record(1e-3);
        }
        for _ in 0..10 {
            h.record(1.0);
        }
        assert_close(h.quantile(0.50), 1e-3, "p50");
        assert_close(h.quantile(0.95), 1.0, "p95");
        assert_close(h.quantile(0.99), 1.0, "p99");
    }

    #[test]
    fn constant_distribution_is_exact() {
        let mut h = Histogram::default();
        for _ in 0..100 {
            h.record(42.0);
        }
        // All mass in one bucket; clamping to [min, max] makes it exact.
        assert_eq!(h.quantile(0.5), 42.0);
        assert_eq!(h.quantile(0.99), 42.0);
        assert_eq!(h.min(), 42.0);
        assert_eq!(h.max(), 42.0);
    }

    #[test]
    fn nonpositive_and_extreme_values_do_not_lose_mass() {
        let mut h = Histogram::default();
        h.record(0.0);
        h.record(-5.0);
        h.record(1e-300); // underflows the grid
        h.record(1e300); // overflows the grid
        assert_eq!(h.count(), 4);
        // Quantiles stay within the observed range.
        for q in [0.1, 0.5, 0.9] {
            let v = h.quantile(q);
            assert!((-5.0..=1e300).contains(&v), "q{q} = {v}");
        }
    }

    #[test]
    fn empty_histogram_is_benign() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert!(h.to_json().contains("\"count\":0"));
    }
}
