//! Flight recorder — a fixed-capacity ring buffer of timestamped trace
//! events, the timeline counterpart to the aggregate span statistics.
//!
//! Aggregates (spans/counters/histograms) answer *how much*; the flight
//! recorder answers *when*: it keeps the last `capacity` span slices and
//! instant marks so that a crash, a watchdog abort, or a Perfetto timeline
//! can reconstruct the recent past of each rank. The design constraints
//! mirror the rest of the crate:
//!
//! - **allocation-free in steady state** — the ring is preallocated at
//!   [`crate::Registry::enable_trace`] time; recording overwrites the oldest
//!   slot once full (`dropped` counts the overwritten events),
//! - **gated by the same `enabled` check as spans** — a registry without a
//!   ring (the default) pays one `Option` test per span exit,
//! - **compact raw events** — an interned name id plus two `u64` timestamps
//!   (nanoseconds from the registry epoch), resolved to strings only at
//!   export time ([`crate::Registry::trace_buffer`]).
//!
//! Sizing: one [`RawEvent`] is 32 bytes, so the default capacity used by the
//! distributed driver (65536) is 2 MiB per rank — roughly 4000 steps of the
//! instrumented elastic loop (step + 7 phases + exchange wait/copy slices
//! per step) before the ring wraps.

use std::time::Instant;

use crate::json;

/// What a trace event represents.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// A duration slice (a completed span, or an externally timed interval
    /// recorded via [`crate::Registry::record_span`]).
    Slice,
    /// An instantaneous mark with an attached value (e.g. a per-step
    /// imbalance sample or a watchdog violation).
    Mark,
}

/// Compact in-ring event: interned name + epoch-relative timestamps.
#[derive(Clone, Copy, Debug)]
pub(crate) struct RawEvent {
    /// Interned span-table id (resolved to a string at export time).
    pub name: u32,
    pub kind: TraceKind,
    /// Start, nanoseconds since the registry epoch.
    pub t0_ns: u64,
    /// Duration in nanoseconds (0 for marks).
    pub dur_ns: u64,
    /// Mark payload (NaN = absent).
    pub arg: f64,
}

/// Fixed-capacity overwrite-oldest ring of [`RawEvent`]s.
pub(crate) struct TraceRing {
    events: Vec<RawEvent>,
    /// Index of the oldest event once the ring is full.
    head: usize,
    dropped: u64,
    cap: usize,
}

impl TraceRing {
    pub(crate) fn with_capacity(capacity: usize) -> TraceRing {
        let cap = capacity.max(1);
        TraceRing { events: Vec::with_capacity(cap), head: 0, dropped: 0, cap }
    }

    // lint:hot-path — the flight-recorder record path runs once per span
    // exit in the instrumented time loop; it must stay allocation-free
    // (push below fills preallocated capacity, then overwrites in place).
    /// Record one event, overwriting the oldest once the ring is full.
    pub(crate) fn push(&mut self, ev: RawEvent) {
        if self.events.len() < self.cap {
            self.events.push(ev);
        } else {
            self.events[self.head] = ev;
            self.head += 1;
            if self.head == self.cap {
                self.head = 0;
            }
            self.dropped += 1;
        }
    }

    /// Nanoseconds from `epoch` to `t` (saturating at zero). Wall-clock by
    /// construction: trace timestamps are observability metadata and never
    /// feed back into the numerics.
    // lint:wall-clock-ok(timestamps are telemetry output, never kernel input)
    pub(crate) fn offset_ns(epoch: Instant, t: Instant) -> u64 {
        t.saturating_duration_since(epoch).as_nanos() as u64
    }
    // lint:hot-path-end

    pub(crate) fn clear(&mut self) {
        self.events.clear();
        self.head = 0;
        self.dropped = 0;
    }

    pub(crate) fn dropped(&self) -> u64 {
        self.dropped
    }

    pub(crate) fn capacity(&self) -> usize {
        self.cap
    }

    /// Events oldest → newest.
    pub(crate) fn iter_ordered(&self) -> impl Iterator<Item = &RawEvent> {
        let (wrapped, recent) = self.events.split_at(self.head.min(self.events.len()));
        recent.iter().chain(wrapped.iter())
    }
}

/// One resolved trace event (names looked up, ready for export).
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    pub name: String,
    pub kind: TraceKind,
    /// Start, nanoseconds since the registry epoch.
    pub t0_ns: u64,
    /// Duration in nanoseconds (0 for marks).
    pub dur_ns: u64,
    /// Mark payload, if any.
    pub arg: Option<f64>,
}

/// A rank's resolved flight-recorder contents (oldest → newest), the unit
/// the Chrome exporter ([`crate::json::chrome_trace`]) merges.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceBuffer {
    pub rank: usize,
    /// Ring capacity the buffer was recorded with.
    pub capacity: usize,
    /// Events overwritten because the ring wrapped.
    pub dropped: u64,
    pub events: Vec<TraceEvent>,
}

impl TraceBuffer {
    /// NDJSON rendering (one `{"type":"trace",...}` line per event) of the
    /// last `last_n` events — the post-mortem dump format used by the
    /// solver's health watchdog.
    pub fn ndjson_tail(&self, last_n: usize) -> String {
        let skip = self.events.len().saturating_sub(last_n);
        let mut out = String::new();
        for ev in &self.events[skip..] {
            out.push_str("{\"type\":\"trace\",\"rank\":");
            out.push_str(&self.rank.to_string());
            out.push_str(",\"name\":");
            json::push_str(&mut out, &ev.name);
            out.push_str(",\"kind\":");
            json::push_str(
                &mut out,
                match ev.kind {
                    TraceKind::Slice => "slice",
                    TraceKind::Mark => "mark",
                },
            );
            out.push_str(",\"t0_ns\":");
            out.push_str(&ev.t0_ns.to_string());
            out.push_str(",\"dur_ns\":");
            out.push_str(&ev.dur_ns.to_string());
            if let Some(a) = ev.arg {
                out.push_str(",\"arg\":");
                json::push_f64(&mut out, a);
            }
            out.push_str("}\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(name: u32, t0: u64) -> RawEvent {
        RawEvent { name, kind: TraceKind::Slice, t0_ns: t0, dur_ns: 1, arg: f64::NAN }
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let mut r = TraceRing::with_capacity(3);
        for i in 0..5 {
            r.push(raw(i, u64::from(i)));
        }
        assert_eq!(r.dropped(), 2);
        let order: Vec<u32> = r.iter_ordered().map(|e| e.name).collect();
        assert_eq!(order, vec![2, 3, 4]);
        r.clear();
        assert_eq!(r.iter_ordered().count(), 0);
        assert_eq!(r.dropped(), 0);
        // Capacity survives a clear; refill works.
        r.push(raw(7, 0));
        assert_eq!(r.iter_ordered().map(|e| e.name).collect::<Vec<_>>(), vec![7]);
    }

    #[test]
    fn ring_under_capacity_preserves_insertion_order() {
        let mut r = TraceRing::with_capacity(8);
        for i in 0..4 {
            r.push(raw(i, u64::from(i)));
        }
        assert_eq!(r.dropped(), 0);
        let order: Vec<u32> = r.iter_ordered().map(|e| e.name).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn ndjson_tail_takes_last_n() {
        let buf = TraceBuffer {
            rank: 2,
            capacity: 8,
            dropped: 0,
            events: (0..5)
                .map(|i| TraceEvent {
                    name: format!("ev{i}"),
                    kind: if i == 4 { TraceKind::Mark } else { TraceKind::Slice },
                    t0_ns: i * 10,
                    dur_ns: 3,
                    arg: if i == 4 { Some(1.5) } else { None },
                })
                .collect(),
        };
        let nd = buf.ndjson_tail(2);
        let lines: Vec<&str> = nd.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"name\":\"ev3\""));
        assert!(lines[1].contains("\"kind\":\"mark\""));
        assert!(lines[1].contains("\"arg\":1.5"));
        assert!(lines[1].contains("\"rank\":2"));
    }
}
