//! Minimal JSON emission helpers (std-only; this workspace is offline).
//!
//! Only what the telemetry serializers need: escaped strings and `f64`
//! values that round-trip. Rust's `{}` formatting of `f64` already produces
//! the shortest digit string that parses back to the same bits, so numeric
//! trace lines are lossless.

/// Append `v` as a JSON number. Non-finite values (which JSON cannot
/// represent) are emitted as `null`.
pub fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // Shortest round-trip formatting; integral values get a ".0" so the
        // token is unambiguously a float for typed readers.
        if v == v.trunc() && v.abs() < 1e15 {
            out.push_str(&format!("{v:.1}"));
        } else {
            out.push_str(&format!("{v}"));
        }
    } else {
        out.push_str("null");
    }
}

/// Append `s` as a quoted, escaped JSON string.
pub fn push_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(v: f64) -> String {
        let mut s = String::new();
        push_f64(&mut s, v);
        s
    }

    #[test]
    fn numbers_round_trip() {
        assert_eq!(f(0.0), "0.0");
        assert_eq!(f(-3.0), "-3.0");
        assert_eq!(f(0.1), "0.1");
        let v = 1.2345678901234567e-8;
        assert_eq!(f(v).parse::<f64>().unwrap(), v);
        assert_eq!(f(f64::NAN), "null");
        assert_eq!(f(f64::INFINITY), "null");
    }

    #[test]
    fn strings_escape_specials() {
        let mut s = String::new();
        push_str(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }
}
