//! Minimal JSON emission helpers (std-only; this workspace is offline).
//!
//! Only what the telemetry serializers need: escaped strings and `f64`
//! values that round-trip. Rust's `{}` formatting of `f64` already produces
//! the shortest digit string that parses back to the same bits, so numeric
//! trace lines are lossless.

/// Append `v` as a JSON number. Non-finite values (which JSON cannot
/// represent) are emitted as `null`.
pub fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // Shortest round-trip formatting; integral values get a ".0" so the
        // token is unambiguously a float for typed readers.
        if v == v.trunc() && v.abs() < 1e15 {
            out.push_str(&format!("{v:.1}"));
        } else {
            out.push_str(&format!("{v}"));
        }
    } else {
        out.push_str("null");
    }
}

use crate::trace::{TraceBuffer, TraceKind};

/// Merge per-rank flight-recorder buffers into one Chrome `trace_event`
/// JSON document, loadable in Perfetto (<https://ui.perfetto.dev>) or
/// `chrome://tracing`. One process ("quake"), one track per rank (`tid` =
/// rank): span slices become complete events (`ph:"X"`, microsecond
/// timestamps measured from the shared registry epoch), marks become
/// thread-scoped instant events (`ph:"i"`) carrying their value in `args`.
/// Buffers that wrapped announce the overwritten-event count in the track
/// name so a truncated timeline is never mistaken for a complete one.
pub fn chrome_trace(buffers: &[TraceBuffer]) -> String {
    let mut s = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    s.push_str("{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":0,\"tid\":0,");
    s.push_str("\"args\":{\"name\":\"quake\"}}");
    for buf in buffers {
        let tid = buf.rank.to_string();
        s.push_str(",{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":0,\"tid\":");
        s.push_str(&tid);
        s.push_str(",\"args\":{\"name\":");
        if buf.dropped > 0 {
            push_str(&mut s, &format!("rank {} (ring wrapped, {} dropped)", buf.rank, buf.dropped));
        } else {
            push_str(&mut s, &format!("rank {}", buf.rank));
        }
        s.push_str("}},{\"ph\":\"M\",\"name\":\"thread_sort_index\",\"pid\":0,\"tid\":");
        s.push_str(&tid);
        s.push_str(",\"args\":{\"sort_index\":");
        s.push_str(&tid);
        s.push_str("}}");
        for ev in &buf.events {
            s.push_str(",{\"name\":");
            push_str(&mut s, &ev.name);
            s.push_str(",\"cat\":\"quake\",\"pid\":0,\"tid\":");
            s.push_str(&tid);
            s.push_str(",\"ts\":");
            push_f64(&mut s, ev.t0_ns as f64 / 1e3);
            match ev.kind {
                TraceKind::Slice => {
                    s.push_str(",\"ph\":\"X\",\"dur\":");
                    push_f64(&mut s, ev.dur_ns as f64 / 1e3);
                }
                TraceKind::Mark => {
                    s.push_str(",\"ph\":\"i\",\"s\":\"t\"");
                }
            }
            if let Some(arg) = ev.arg {
                s.push_str(",\"args\":{\"value\":");
                push_f64(&mut s, arg);
                s.push('}');
            }
            s.push('}');
        }
    }
    s.push_str("]}");
    s
}

/// Append `s` as a quoted, escaped JSON string.
pub fn push_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(v: f64) -> String {
        let mut s = String::new();
        push_f64(&mut s, v);
        s
    }

    #[test]
    fn numbers_round_trip() {
        assert_eq!(f(0.0), "0.0");
        assert_eq!(f(-3.0), "-3.0");
        assert_eq!(f(0.1), "0.1");
        let v = 1.2345678901234567e-8;
        assert_eq!(f(v).parse::<f64>().unwrap(), v);
        assert_eq!(f(f64::NAN), "null");
        assert_eq!(f(f64::INFINITY), "null");
    }

    #[test]
    fn strings_escape_specials() {
        let mut s = String::new();
        push_str(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn chrome_trace_merges_ranks_into_tracks() {
        use crate::trace::{TraceEvent, TraceKind};
        let mk = |rank: usize, dropped: u64, events: Vec<TraceEvent>| TraceBuffer {
            rank,
            capacity: 8,
            dropped,
            events,
        };
        let slice = |name: &str, t0: u64, dur: u64| TraceEvent {
            name: name.to_string(),
            kind: TraceKind::Slice,
            t0_ns: t0,
            dur_ns: dur,
            arg: None,
        };
        let mark = TraceEvent {
            name: "imbalance".to_string(),
            kind: TraceKind::Mark,
            t0_ns: 2500,
            dur_ns: 0,
            arg: Some(1.5),
        };
        let j = chrome_trace(&[
            mk(0, 0, vec![slice("step", 1000, 3000)]),
            mk(1, 2, vec![slice("step/exchange/wait", 1500, 500), mark]),
        ]);
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        // Per-rank tracks with metadata names.
        assert!(j.contains("\"name\":\"rank 0\""));
        assert!(j.contains("rank 1 (ring wrapped, 2 dropped)"));
        // Slices carry microsecond ts/dur on the right track.
        assert!(j.contains("\"tid\":0,\"ts\":1.0,\"ph\":\"X\",\"dur\":3.0"));
        assert!(j.contains("\"name\":\"step/exchange/wait\""));
        // Marks become instant events with their value attached.
        assert!(j.contains("\"ph\":\"i\",\"s\":\"t\",\"args\":{\"value\":1.5}"));
    }
}
