//! Cross-rank registry reduction over `quake-parcomm`.
//!
//! SPMD runs produce one [`crate::Registry`] per rank; the paper's tables
//! report min/max/mean across PEs (load imbalance is exactly the min-to-max
//! spread of the compute phase). [`reduce_across_ranks`] is a collective:
//! every rank calls it with its own [`crate::Snapshot`], every rank returns
//! the same reduced view. Metric name sets must agree across ranks (they do
//! in an SPMD code by construction — the same instrumented code runs
//! everywhere); a fingerprint check turns a divergence into a typed
//! [`ReduceError`] ([`try_reduce_across_ranks`]) or a loud panic
//! ([`reduce_across_ranks`]) instead of a silently misaligned reduction.
//! Ranks holding rank-local names (per-color spans, say) must
//! [`Snapshot::retain`] down to the common subset first.

use crate::Snapshot;
use quake_parcomm::Communicator;

/// Min/max/mean of one metric across ranks.
#[derive(Clone, Debug, PartialEq)]
pub struct Reduced {
    pub name: String,
    pub min: f64,
    pub max: f64,
    pub mean: f64,
}

/// Why a cross-rank reduction refused to run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReduceError {
    /// The metric name sets (or their order) differ between ranks: an
    /// element-wise reduction would pair unrelated metrics. Every rank
    /// observes the same error — the check itself is a collective.
    NameSetMismatch {
        /// This rank's snapshot fingerprint (two 32-bit FNV-1a halves).
        local: (u32, u32),
    },
}

impl std::fmt::Display for ReduceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReduceError::NameSetMismatch { local } => write!(
                f,
                "metric name sets differ across ranks (local fingerprint {:08x}{:08x}); \
                 retain() rank-local names before reducing",
                local.0, local.1
            ),
        }
    }
}

impl std::error::Error for ReduceError {}

/// FNV-1a over the metric names — the cross-rank consistency fingerprint,
/// split into two exactly-representable 32-bit halves.
fn name_fingerprint(snap: &Snapshot) -> (f64, f64) {
    let mut h: u64 = 0xcbf29ce484222325;
    for (name, _) in &snap.entries {
        for b in name.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h ^= 0xff; // name separator
        h = h.wrapping_mul(0x100000001b3);
    }
    ((h >> 32) as u32 as f64, h as u32 as f64)
}

/// Reduce a per-rank snapshot to min/max/mean per metric. Collective: every
/// rank must call with a snapshot holding the *same metric names* in the
/// same (sorted) order; all ranks receive the full reduced list, or all
/// ranks receive [`ReduceError::NameSetMismatch`].
pub fn try_reduce_across_ranks(
    comm: &Communicator,
    snap: &Snapshot,
) -> Result<Vec<Reduced>, ReduceError> {
    let (hi, lo) = name_fingerprint(snap);
    let agree = |half: f64| comm.allreduce_max(half) == -comm.allreduce_max(-half);
    // Both halves must be allreduced on every rank (the check is itself a
    // collective), so evaluate eagerly before combining.
    let hi_ok = agree(hi);
    let lo_ok = agree(lo);
    if !hi_ok || !lo_ok {
        return Err(ReduceError::NameSetMismatch { local: (hi as u32, lo as u32) });
    }

    let vals: Vec<f64> = snap.entries.iter().map(|(_, v)| *v).collect();
    let mut sum = vals.clone();
    comm.allreduce_sum(&mut sum);
    let mut max = vals.clone();
    comm.allreduce_max_elems(&mut max);
    let mut min = vals;
    comm.allreduce_min_elems(&mut min);

    let p = comm.size() as f64;
    Ok(snap
        .entries
        .iter()
        .enumerate()
        .map(|(i, (name, _))| Reduced {
            name: name.clone(),
            min: min[i],
            max: max[i],
            mean: sum[i] / p,
        })
        .collect())
}

/// Panicking wrapper around [`try_reduce_across_ranks`] for drivers where a
/// name-set divergence is a programming error (the SPMD solver paths, which
/// instrument identically on every rank).
pub fn reduce_across_ranks(comm: &Communicator, snap: &Snapshot) -> Vec<Reduced> {
    match try_reduce_across_ranks(comm, snap) {
        Ok(reduced) => reduced,
        Err(e) => panic!("metric name sets differ across ranks: {e}"),
    }
}

/// Render a reduced metric list as NDJSON lines (one per metric).
pub fn reduced_ndjson(reduced: &[Reduced], n_ranks: usize) -> String {
    let mut out = String::new();
    for r in reduced {
        out.push_str("{\"type\":\"reduced\",\"ranks\":");
        out.push_str(&n_ranks.to_string());
        out.push_str(",\"name\":");
        crate::json::push_str(&mut out, &r.name);
        for (k, v) in [("min", r.min), ("max", r.max), ("mean", r.mean)] {
            out.push_str(",\"");
            out.push_str(k);
            out.push_str("\":");
            crate::json::push_f64(&mut out, v);
        }
        out.push_str("}\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;
    use quake_parcomm::run_spmd;

    #[test]
    fn four_rank_reduction_computes_min_max_mean() {
        // Each rank records the same metric names with rank-dependent values;
        // the reduction must agree on every rank.
        let all = run_spmd(4, |comm| {
            let reg = Registry::new(comm.rank());
            let r = comm.rank() as f64;
            reg.add("work_items", 10 + comm.rank() as u64);
            reg.gauge("imbalance", 1.0 + 0.1 * r);
            {
                let _g = reg.span("phase");
            }
            reduce_across_ranks(comm, &reg.snapshot())
        });
        for reduced in &all {
            assert_eq!(reduced, &all[0], "reduction differs across ranks");
        }
        let by_name = |n: &str| all[0].iter().find(|r| r.name == n).unwrap().clone();
        let w = by_name("ctr.work_items");
        assert_eq!(w.min, 10.0);
        assert_eq!(w.max, 13.0);
        assert_eq!(w.mean, 11.5);
        let g = by_name("gauge.imbalance");
        assert!((g.min - 1.0).abs() < 1e-12);
        assert!((g.max - 1.3).abs() < 1e-12);
        assert!((g.mean - 1.15).abs() < 1e-12);
        let c = by_name("span.phase.count");
        assert_eq!((c.min, c.max, c.mean), (1.0, 1.0, 1.0));
        // Span seconds reduce to sane values: min <= mean <= max.
        let s = by_name("span.phase.secs");
        assert!(s.min <= s.mean && s.mean <= s.max);
    }

    // Every rank detects the mismatch via the fingerprint allreduce and
    // panics; `run_spmd` propagates the first as "rank panicked".
    #[test]
    #[should_panic(expected = "rank panicked")]
    fn mismatched_metric_names_panic() {
        run_spmd(2, |comm| {
            let reg = Registry::new(comm.rank());
            if comm.rank() == 0 {
                reg.add("only_on_rank0", 1);
            } else {
                reg.add("only_on_rank1", 1);
            }
            reduce_across_ranks(comm, &reg.snapshot())
        });
    }

    #[test]
    fn partially_overlapping_registries_yield_typed_error_on_every_rank() {
        // Shared names plus one rank-local histogram each: the fingerprints
        // diverge, and *every* rank gets the typed error (the check is a
        // collective, so no rank is left hanging in a half-finished
        // reduction). After retain()-ing to the shared subset the same
        // snapshots reduce fine.
        let outcomes = run_spmd(3, |comm| {
            let reg = Registry::new(comm.rank());
            reg.add("shared_ctr", 1 + comm.rank() as u64);
            reg.observe(&format!("hist_rank{}", comm.rank()), 1.0);
            let full = reg.snapshot();
            let err = try_reduce_across_ranks(comm, &full).unwrap_err();
            let mut common = full.clone();
            common.retain(|n| !n.starts_with("hist."));
            let ok = try_reduce_across_ranks(comm, &common).unwrap();
            (err, ok)
        });
        for (err, ok) in &outcomes {
            assert!(matches!(err, ReduceError::NameSetMismatch { .. }));
            assert!(err.to_string().contains("retain()"));
            let c = ok.iter().find(|r| r.name == "ctr.shared_ctr").unwrap();
            assert_eq!((c.min, c.max, c.mean), (1.0, 3.0, 2.0));
        }
        // Fingerprints differ because the name sets do.
        let (e0, _) = &outcomes[0];
        let (e1, _) = &outcomes[1];
        assert_ne!(e0, e1);
    }

    #[test]
    fn reduced_ndjson_emits_one_line_per_metric() {
        let reduced = vec![Reduced { name: "ctr.x".into(), min: 1.0, max: 3.0, mean: 2.0 }];
        let nd = reduced_ndjson(&reduced, 4);
        assert_eq!(nd.lines().count(), 1);
        assert!(nd.contains("\"ranks\":4"));
        assert!(nd.contains("\"mean\":2.0"));
    }
}
