//! A calibrated terascale-machine performance model.
//!
//! Table 2.1 of the paper measures sustained Mflop/s per processor as the
//! LeMieux AlphaServer scales from 1 to 3000 PEs. This host has one core, so
//! (per the substitution policy in DESIGN.md) multi-PE timings are *modeled*:
//!
//! - per-rank compute time comes from an analytic flop count of the explicit
//!   update (the same count the paper used to report flop rates) divided by
//!   a single-PE rate *measured live* on this machine,
//! - per-rank communication time is an alpha-beta model of the Quadrics
//!   interconnect applied to the rank's real ghost-exchange volume from the
//!   real partition of the real mesh,
//! - the step time of the machine is `max over ranks (compute + comm)`, and
//!   parallel efficiency is the per-PE rate degradation relative to 1 PE —
//!   exactly the paper's metric.
//!
//! Everything physical about the run (mesh, partition, exchange volumes,
//! flops) is computed, not assumed; only the hardware constants are modeled.

/// Analytic flop counts for the explicit solvers.
pub mod flops {
    /// Flops of one elastic hex element force evaluation in the *paper's*
    /// kernel: gather + two 24x24 dense mat-vecs (mul+add, one per Lamé
    /// modulus) + modulus combination + scatter-add. Kept for the Table 2.1
    /// LeMieux-shape model; the production solver now runs the template
    /// kernel ([`TEMPLATE_HEX_ELEMENT`]).
    pub const ELASTIC_HEX_ELEMENT: u64 = 2 * (24 * 24 * 2) + 3 * 24 + 24;

    /// Flops of one elastic hex element force evaluation in the production
    /// *template* kernel: the per-class combined stiffness
    /// `T = h (lambda K_L + mu K_M)` is precomputed once per distinct
    /// `(h, lambda, mu)`, so each element pays one gather-combine
    /// (`x = dt^2 u + s w`, 3 flops per entry), ONE 24x24 mat-vec
    /// (mul+add), and the scatter-subtract — half the flops of
    /// [`ELASTIC_HEX_ELEMENT`]'s two-matvec form.
    pub const TEMPLATE_HEX_ELEMENT: u64 = 24 * 24 * 2 + 3 * 24 + 24;

    /// Flops of one scalar hex element force evaluation (8x8 dense).
    pub const SCALAR_HEX_ELEMENT: u64 = 8 * 8 * 2 + 2 * 8 + 8;

    /// Per-node update flops of the central-difference step (3 components):
    /// the eq. (2.4) diagonal solve plus the two history combinations.
    pub const ELASTIC_NODE_UPDATE: u64 = 3 * 12;

    /// The initial-fill share of [`ELASTIC_NODE_UPDATE`]: damping increment
    /// `w = u_k - u_{k-1}`, source scaling and the owner's diagonal damping
    /// term (per node, 3 components).
    pub const ELASTIC_NODE_FILL: u64 = 3 * 5;

    /// The fused-tail share of [`ELASTIC_NODE_UPDATE`]: history combination
    /// and diagonal solve (per node, 3 components). Fill + tail = the whole
    /// node update.
    pub const ELASTIC_NODE_TAIL: u64 = 3 * 7;

    /// Per-node update flops for a scalar field.
    pub const SCALAR_NODE_UPDATE: u64 = 12;

    /// Per-boundary-face flops of the Stacey terms (damping + tangential
    /// coupling, 12x12 face kernel).
    pub const ABC_FACE: u64 = 12 * 12 * 2 + 24;

    /// Total flops of `n_steps` of the elastic solver as shipped (template
    /// element kernel). This is the count the harness reports for measured
    /// runs; the Table 2.1 model keeps the paper's per-element count.
    pub fn elastic_total(n_elements: u64, n_nodes: u64, n_abc_faces: u64, n_steps: u64) -> u64 {
        n_steps
            * (n_elements * TEMPLATE_HEX_ELEMENT
                + n_nodes * ELASTIC_NODE_UPDATE
                + n_abc_faces * ABC_FACE)
    }
}

/// Bytes-moved model of the explicit elastic step — the denominator of
/// arithmetic intensity.
///
/// Two tiers are counted. The *canonical-matrix sweep* (both 24x24 matrices,
/// 9216 bytes) is cache-resident across elements, so it prices register/L1
/// traffic: it is the term the fused two-vector matvec halves for damped
/// elements (one sweep serves both input vectors instead of one each). The
/// *state traffic* (gather/scatter of nodal vectors, diagonal reads) streams
/// from whatever level holds the mesh-sized arrays and dominates DRAM
/// movement at scale.
pub mod bytes {
    const F64: u64 = 8;

    /// One sweep over both canonical 24x24 elastic matrices.
    pub const CANONICAL_SWEEP: u64 = 2 * 24 * 24 * F64;

    /// One sweep over a single combined 24x24 stiffness template — half the
    /// matrix traffic of [`CANONICAL_SWEEP`], and shared by every element of
    /// the same `(h, lambda, mu)` class (a handful of templates on an octree
    /// mesh, L1-resident across a color run).
    pub const TEMPLATE_SWEEP: u64 = 24 * 24 * F64;

    /// Bytes moved by one element update of the production template kernel:
    /// one template sweep, the two gathered input vectors (`u_now` and the
    /// damping increment — every element takes the fused two-vector gather
    /// now, branch-free), the rhs read-modify-write, node ids and the
    /// per-element damping scale.
    pub fn template_element() -> u64 {
        TEMPLATE_SWEEP        // combined-template reads
            + 2 * 24 * F64    // gather u and w
            + 2 * 24 * F64    // rhs read-modify-write
            + 8 * 4           // node ids
            + F64 // per-element damping scale
    }

    /// Bytes moved by one elastic element update. `damped` elements gather a
    /// second input vector (the damping increment) and, without the fused
    /// kernel, pay a second canonical sweep.
    pub fn elastic_element(damped: bool, fused: bool) -> u64 {
        let sweeps = if damped && !fused { 2 } else { 1 };
        let vecs: u64 = if damped { 2 } else { 1 };
        sweeps * CANONICAL_SWEEP   // canonical-matrix reads
            + vecs * 24 * F64      // gather u (and w when damped)
            + 2 * 24 * F64         // rhs read-modify-write
            + 8 * 4                // node ids
            + 6 * F64 // h, lambda, mu, rho, beta, dt-scale
    }

    /// Bytes moved per node by the fused fill + tail passes: the fill reads
    /// `u_now, u_prev, f_ext, damp_diag` and writes `w, rhs`; the tail reads
    /// `rhs, u_now, u_prev, mass_f, cdiag_f, lhs_inv` and rewrites `rhs` —
    /// 13 f64 streams per dof, 3 dofs per node.
    pub const ELASTIC_NODE_UPDATE: u64 = 3 * 13 * F64;

    /// Total bytes of `n_steps` of the elastic step (ABC faces ignored: a
    /// surface term, asymptotically negligible).
    pub fn elastic_total(
        n_damped: u64,
        n_undamped: u64,
        n_nodes: u64,
        n_steps: u64,
        fused: bool,
    ) -> u64 {
        n_steps
            * (n_damped * elastic_element(true, fused)
                + n_undamped * elastic_element(false, fused)
                + n_nodes * ELASTIC_NODE_UPDATE)
    }

    /// Bytes moved per node by the fused initial fill alone: reads `u_now,
    /// u_prev, f_ext, damp_diag`, writes `w, rhs` — 6 f64 streams per dof.
    pub const ELASTIC_NODE_FILL: u64 = 3 * 6 * F64;

    /// Bytes moved per node by the fused tail alone: reads `rhs, u_now,
    /// u_prev, mass_f, cdiag_f, lhs_inv`, rewrites `rhs` — 7 f64 streams per
    /// dof. Fill + tail = [`ELASTIC_NODE_UPDATE`].
    pub const ELASTIC_NODE_TAIL: u64 = 3 * 7 * F64;

    /// Bytes moved per Stacey boundary face: gather 4 nodes x 3 comps of
    /// `u_now`, read-modify-write the same 12 rhs entries, face constants
    /// and node ids.
    pub const ABC_FACE: u64 = (12 + 2 * 12 + 6) * F64 + 4 * 4;

    /// Bytes moved per hanging node by one constraint pass (fold or
    /// interpolate): the slave's 3 dofs plus read-modify-write of up to 4
    /// masters' dofs.
    pub const HANGING_NODE_PASS: u64 = 3 * (1 + 2 * 4) * F64;

    /// Arithmetic intensity (flop/byte).
    pub fn arithmetic_intensity(flops: u64, bytes: u64) -> f64 {
        flops as f64 / bytes as f64
    }
}

/// Per-phase analytic cost model of one explicit elastic step — the
/// denominators of the paper-style per-phase breakdown (Section 4's tables
/// report exactly this: where the step's time, flops and traffic go).
///
/// Phase names match the solver's telemetry spans (`step/<phase>`), so a
/// measured wall-time breakdown can be joined with these counts to get
/// sustained flop rates and roofline efficiencies per phase.
pub mod phases {
    use super::{bytes, flops};

    /// Analytic flop/byte cost of one phase of one step.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct PhaseCost {
        /// Telemetry span suffix (`step/<name>`).
        pub name: &'static str,
        pub flops: u64,
        pub bytes: u64,
    }

    /// Shape of one rank's share of an elastic step.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct ElasticStepShape {
        /// Elements with a nonzero Rayleigh beta (take the fused two-vector
        /// gather).
        pub n_damped: u64,
        pub n_undamped: u64,
        /// Nodes of the *full* mesh: the fill/tail passes are replicated
        /// over all dofs on every rank.
        pub n_nodes: u64,
        pub n_hanging: u64,
        /// Absorbing faces assembled by this rank.
        pub n_abc_faces: u64,
        /// Interface values (f64 count) exchanged per step; zero for a
        /// serial run.
        pub exchange_doubles: u64,
    }

    /// Per-step costs of each phase of the fused elastic step, in execution
    /// order. Constraint passes (`fold`, `interp`) and the exchange move
    /// data but perform (next to) no flops; the exchange's byte count is the
    /// wire traffic, not a memory-hierarchy estimate.
    pub fn elastic_step_phases(shape: &ElasticStepShape) -> Vec<PhaseCost> {
        let hanging_flops = shape.n_hanging * 3 * 8; // 4 mul + 4 add per dof
        vec![
            PhaseCost {
                name: "fill",
                flops: shape.n_nodes * flops::ELASTIC_NODE_FILL,
                bytes: shape.n_nodes * bytes::ELASTIC_NODE_FILL,
            },
            PhaseCost {
                name: "elements",
                flops: (shape.n_damped + shape.n_undamped) * flops::TEMPLATE_HEX_ELEMENT,
                bytes: (shape.n_damped + shape.n_undamped) * bytes::template_element(),
            },
            PhaseCost {
                name: "abc",
                flops: shape.n_abc_faces * flops::ABC_FACE,
                bytes: shape.n_abc_faces * bytes::ABC_FACE,
            },
            PhaseCost {
                name: "fold",
                flops: hanging_flops,
                bytes: shape.n_hanging * bytes::HANGING_NODE_PASS,
            },
            PhaseCost { name: "exchange", flops: 0, bytes: shape.exchange_doubles * 8 },
            PhaseCost {
                name: "tail",
                flops: shape.n_nodes * flops::ELASTIC_NODE_TAIL,
                bytes: shape.n_nodes * bytes::ELASTIC_NODE_TAIL,
            },
            PhaseCost {
                name: "interp",
                flops: hanging_flops,
                bytes: shape.n_hanging * bytes::HANGING_NODE_PASS,
            },
        ]
    }
}

/// Hardware constants of the modeled machine (defaults ~ LeMieux: 1 GHz
/// Alpha EV68, 2 Gflop/s peak, Quadrics interconnect).
#[derive(Clone, Copy, Debug)]
pub struct MachineModel {
    /// Sustained flop rate of one PE on this kernel (flop/s). Calibrate with
    /// [`MachineModel::calibrated`] from a measured run.
    pub flops_per_sec_per_pe: f64,
    /// Network injection latency per message (s). Quadrics ~ 5 us.
    pub latency: f64,
    /// Per-link bandwidth (bytes/s). Quadrics ~ 250 MB/s sustained.
    pub bandwidth: f64,
    /// Per-step synchronization overhead that grows with log2(P) (s).
    pub sync_per_log_pe: f64,
    /// Peak flop rate of one PE (flop/s). EV68 at 1 GHz: 2 Gflop/s.
    pub peak_flops_per_pe: f64,
    /// Sustained memory bandwidth of one PE (bytes/s). ES45 node ~ 2 GB/s
    /// per-processor share.
    pub mem_bandwidth_per_pe: f64,
}

impl Default for MachineModel {
    fn default() -> Self {
        MachineModel {
            // 25% of the EV68's 2 Gflop/s peak — the paper's measured rate.
            flops_per_sec_per_pe: 0.5e9,
            latency: 5e-6,
            bandwidth: 250e6,
            sync_per_log_pe: 2e-6,
            peak_flops_per_pe: 2.0e9,
            mem_bandwidth_per_pe: 2.0e9,
        }
    }
}

/// Per-rank workload description for one time step.
#[derive(Clone, Debug)]
pub struct RankWork {
    /// Flops this rank executes per step.
    pub flops: u64,
    /// Number of neighbor ranks it exchanges with.
    pub n_neighbors: usize,
    /// Total bytes sent per step (sum over neighbors).
    pub bytes_sent: u64,
}

/// Predicted timing of one machine step.
#[derive(Clone, Copy, Debug)]
pub struct StepPrediction {
    /// Wall time of the step (max over ranks), seconds.
    pub step_time: f64,
    /// Aggregate sustained flop rate (flop/s).
    pub total_flop_rate: f64,
    /// Sustained Mflop/s per PE.
    pub mflops_per_pe: f64,
}

impl MachineModel {
    /// Build a model whose single-PE rate was measured on this host: pass
    /// the measured flops and wall seconds of a real single-rank run.
    pub fn calibrated(measured_flops: u64, measured_secs: f64) -> MachineModel {
        assert!(measured_secs > 0.0 && measured_flops > 0);
        MachineModel {
            flops_per_sec_per_pe: measured_flops as f64 / measured_secs,
            ..MachineModel::default()
        }
    }

    /// Predict one explicit time step of a partitioned mesh.
    pub fn predict_step(&self, ranks: &[RankWork]) -> StepPrediction {
        assert!(!ranks.is_empty());
        let p = ranks.len() as f64;
        let sync = self.sync_per_log_pe * p.log2().max(0.0);
        let mut worst = 0.0f64;
        let mut total_flops = 0u64;
        for r in ranks {
            let t_comp = r.flops as f64 / self.flops_per_sec_per_pe;
            let t_comm = r.n_neighbors as f64 * self.latency + r.bytes_sent as f64 / self.bandwidth;
            worst = worst.max(t_comp + t_comm + sync);
            total_flops += r.flops;
        }
        let total_flop_rate = total_flops as f64 / worst;
        StepPrediction {
            step_time: worst,
            total_flop_rate,
            mflops_per_pe: total_flop_rate / p / 1e6,
        }
    }

    /// Parallel efficiency of `pred` relative to a single-PE prediction —
    /// the paper's Table 2.1 metric (Mflop/s-per-PE degradation).
    pub fn efficiency(&self, single: &StepPrediction, pred: &StepPrediction) -> f64 {
        pred.mflops_per_pe / single.mflops_per_pe
    }

    /// Attainable flop rate (flop/s) of a kernel with arithmetic intensity
    /// `intensity` (flop/byte) under the roofline model:
    /// `min(peak, intensity * bandwidth)`.
    pub fn roofline_rate(&self, intensity: f64) -> f64 {
        self.peak_flops_per_pe.min(intensity * self.mem_bandwidth_per_pe)
    }

    /// The intensity at which the kernel transitions from memory-bound to
    /// compute-bound (the roofline ridge point, flop/byte).
    pub fn ridge_intensity(&self) -> f64 {
        self.peak_flops_per_pe / self.mem_bandwidth_per_pe
    }

    /// Fraction of the roofline-attainable rate a measured kernel achieved.
    pub fn roofline_efficiency(&self, measured_flops_per_sec: f64, intensity: f64) -> f64 {
        measured_flops_per_sec / self.roofline_rate(intensity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_ranks(p: usize, elems_total: u64, shared_per_rank: u64) -> Vec<RankWork> {
        let per = elems_total / p as u64;
        (0..p)
            .map(|_| RankWork {
                flops: per * flops::ELASTIC_HEX_ELEMENT,
                n_neighbors: if p == 1 { 0 } else { 6.min(p - 1) },
                bytes_sent: if p == 1 { 0 } else { shared_per_rank * 24 },
            })
            .collect()
    }

    #[test]
    fn single_pe_runs_at_calibrated_rate() {
        let m = MachineModel::default();
        let pred = m.predict_step(&uniform_ranks(1, 1_000_000, 0));
        assert!((pred.mflops_per_pe - 500.0).abs() < 1.0, "{}", pred.mflops_per_pe);
    }

    #[test]
    fn efficiency_degrades_with_granularity() {
        // Fixed problem, growing P: fewer elements per PE -> comm overhead
        // share grows -> efficiency falls monotonically.
        let m = MachineModel::default();
        let single = m.predict_step(&uniform_ranks(1, 8_000_000, 0));
        let mut last_eff = 1.01;
        for &p in &[16usize, 128, 512, 2048] {
            // Surface-to-volume: shared nodes ~ (elems/P)^(2/3) * 6.
            let per = 8_000_000u64 / p as u64;
            let shared = 6 * (per as f64).powf(2.0 / 3.0) as u64;
            let pred = m.predict_step(&uniform_ranks(p, 8_000_000, shared));
            let eff = m.efficiency(&single, &pred);
            assert!(eff < last_eff, "P={p}: {eff} !< {last_eff}");
            assert!(eff > 0.5, "P={p}: unreasonably low {eff}");
            last_eff = eff;
        }
    }

    #[test]
    fn weak_scaling_stays_efficient() {
        // Constant elements per PE and constant surface: efficiency ~ 1.
        let m = MachineModel::default();
        let single = m.predict_step(&uniform_ranks(1, 100_000, 0));
        let per = 100_000u64;
        let shared = 6 * (per as f64).powf(2.0 / 3.0) as u64;
        let pred = m.predict_step(&uniform_ranks(1024, per * 1024, shared));
        let eff = m.efficiency(&single, &pred);
        assert!(eff > 0.85, "weak scaling efficiency {eff}");
    }

    #[test]
    fn imbalance_hurts() {
        let m = MachineModel::default();
        let balanced = m.predict_step(&uniform_ranks(4, 4_000_000, 1000));
        let mut skewed = uniform_ranks(4, 4_000_000, 1000);
        skewed[0].flops *= 2; // one overloaded rank
        let bad = m.predict_step(&skewed);
        assert!(bad.step_time > 1.4 * balanced.step_time);
        assert!(bad.mflops_per_pe < balanced.mflops_per_pe);
    }

    #[test]
    fn calibration_reproduces_measured_rate() {
        let m = MachineModel::calibrated(2_000_000_000, 4.0);
        assert!((m.flops_per_sec_per_pe - 5e8).abs() < 1.0);
    }

    #[test]
    fn phase_costs_are_consistent_with_the_aggregate_models() {
        // Fill + tail constants partition the node update exactly.
        assert_eq!(flops::ELASTIC_NODE_FILL + flops::ELASTIC_NODE_TAIL, flops::ELASTIC_NODE_UPDATE);
        assert_eq!(bytes::ELASTIC_NODE_FILL + bytes::ELASTIC_NODE_TAIL, bytes::ELASTIC_NODE_UPDATE);
        // On a mesh without hanging nodes or exchange, the per-phase flops
        // sum to the aggregate elastic_total for one step.
        let shape = phases::ElasticStepShape {
            n_damped: 700,
            n_undamped: 300,
            n_nodes: 1331,
            n_abc_faces: 240,
            ..Default::default()
        };
        let total: u64 = phases::elastic_step_phases(&shape).iter().map(|p| p.flops).sum();
        assert_eq!(total, flops::elastic_total(1000, 1331, 240, 1));
        // And the fill/elements/tail bytes match the template kernel plus
        // the node-update streams (ABC faces ignored as a surface term).
        let by_name = |costs: &[phases::PhaseCost], n: &str| {
            costs.iter().find(|p| p.name == n).unwrap().bytes
        };
        let costs = phases::elastic_step_phases(&shape);
        let core = by_name(&costs, "fill") + by_name(&costs, "elements") + by_name(&costs, "tail");
        assert_eq!(core, 1000 * bytes::template_element() + 1331 * bytes::ELASTIC_NODE_UPDATE);
    }

    #[test]
    fn template_kernel_halves_the_element_matvec() {
        // The combined template replaces the two canonical mat-vecs with
        // one: the 24x24 flops halve exactly, leaving the shared
        // gather-combine + scatter (3*24 + 24) unchanged.
        assert_eq!(
            flops::ELASTIC_HEX_ELEMENT - flops::TEMPLATE_HEX_ELEMENT,
            24 * 24 * 2,
            "template must save exactly one 24x24 mat-vec"
        );
        // Matrix traffic halves too, and the template element moves strictly
        // fewer bytes than even the fused two-matvec damped element.
        assert_eq!(2 * bytes::TEMPLATE_SWEEP, bytes::CANONICAL_SWEEP);
        assert!(bytes::template_element() < bytes::elastic_element(true, true));
        // Same flops over fewer bytes: intensity goes up.
        let i_fused = bytes::arithmetic_intensity(
            flops::ELASTIC_HEX_ELEMENT,
            bytes::elastic_element(true, true),
        );
        let i_tmpl =
            bytes::arithmetic_intensity(flops::TEMPLATE_HEX_ELEMENT, bytes::template_element());
        assert!(i_tmpl > 0.5 * i_fused, "{i_tmpl} vs {i_fused}");
    }

    #[test]
    fn flop_counts_scale_linearly() {
        let a = flops::elastic_total(100, 120, 10, 50);
        let b = flops::elastic_total(200, 240, 20, 50);
        assert_eq!(2 * a, b);
        let (elastic, scalar) = (flops::ELASTIC_HEX_ELEMENT, flops::SCALAR_HEX_ELEMENT);
        assert!(elastic > scalar);
    }

    #[test]
    fn fused_kernel_halves_canonical_traffic_for_damped_elements() {
        let two_pass = bytes::elastic_element(true, false);
        let fused = bytes::elastic_element(true, true);
        assert_eq!(two_pass - fused, bytes::CANONICAL_SWEEP);
        // Undamped elements are unaffected by fusion.
        assert_eq!(bytes::elastic_element(false, false), bytes::elastic_element(false, true));
        // A whole damped step moves strictly fewer bytes fused.
        let a = bytes::elastic_total(1000, 0, 1300, 50, false);
        let b = bytes::elastic_total(1000, 0, 1300, 50, true);
        assert!(b < a, "{b} !< {a}");
    }

    #[test]
    fn fusion_raises_arithmetic_intensity() {
        // Same flops, fewer bytes -> higher flop/byte for the damped element.
        let f = 2 * flops::ELASTIC_HEX_ELEMENT;
        let i_two = bytes::arithmetic_intensity(f, bytes::elastic_element(true, false));
        let i_fused = bytes::arithmetic_intensity(f, bytes::elastic_element(true, true));
        assert!(i_fused > 1.5 * i_two, "{i_fused} vs {i_two}");
    }

    #[test]
    fn roofline_has_memory_and_compute_regimes() {
        let m = MachineModel::default();
        let ridge = m.ridge_intensity();
        assert!(ridge > 0.0);
        // Below the ridge: bandwidth-limited and linear in intensity.
        assert!((m.roofline_rate(ridge / 2.0) - m.peak_flops_per_pe / 2.0).abs() < 1.0);
        // Above the ridge: flat at peak.
        assert!((m.roofline_rate(10.0 * ridge) - m.peak_flops_per_pe).abs() < 1.0);
        // The elastic element kernel sits above the node update in intensity.
        let i_elem = bytes::arithmetic_intensity(
            flops::ELASTIC_HEX_ELEMENT,
            bytes::elastic_element(false, true),
        );
        let i_node =
            bytes::arithmetic_intensity(flops::ELASTIC_NODE_UPDATE, bytes::ELASTIC_NODE_UPDATE);
        assert!(i_elem > i_node, "{i_elem} !> {i_node}");
        // The paper's sustained 0.5 Gflop/s is right at the DRAM roofline for
        // the element kernel's intensity — efficiency ~ 1 (slightly above is
        // possible because the canonical matrices actually run from cache).
        let eff = m.roofline_efficiency(0.5e9, i_elem);
        assert!(eff > 0.8 && eff < 1.5, "{eff}");
    }
}
