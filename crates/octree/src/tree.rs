//! Linear octrees: sorted leaf sets with construction, point location and
//! 2-to-1 balancing.

use crate::morton::{morton_encode, GRID, LEVEL_BITS, MAX_LEVEL};
use crate::octant::Octant;
use std::collections::{BTreeMap, VecDeque};

/// Which neighbor relations the 2-to-1 constraint is enforced across.
///
/// The mesher uses [`BalanceMode::Full`] (faces, edges and corners), which
/// keeps the hanging-node rules of the paper — midside = average of 2 edge
/// masters, midface = average of 4 — sufficient everywhere.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BalanceMode {
    /// Across shared faces only.
    Face,
    /// Faces and edges.
    FaceEdge,
    /// Faces, edges and corners (26-neighborhood).
    Full,
}

impl BalanceMode {
    fn admits(&self, d: (i32, i32, i32)) -> bool {
        let taxicab = d.0.abs() + d.1.abs() + d.2.abs();
        match self {
            BalanceMode::Face => taxicab <= 1,
            BalanceMode::FaceEdge => taxicab <= 2,
            BalanceMode::Full => true,
        }
    }

    /// The admitted direction set.
    pub fn directions(&self) -> Vec<(i32, i32, i32)> {
        Octant::all_directions().filter(|&d| self.admits(d)).collect()
    }
}

/// A complete linear octree: the leaves, sorted by locational key.
#[derive(Clone, Debug)]
pub struct LinearOctree {
    leaves: Vec<Octant>,
}

impl LinearOctree {
    /// Build by recursive refinement from the root: `refine(o)` decides
    /// whether octant `o` is subdivided. This is the in-core equivalent of
    /// the etree *auto-navigation* construct step.
    pub fn build(mut refine: impl FnMut(&Octant) -> bool) -> LinearOctree {
        let mut leaves = Vec::new();
        let mut stack = vec![Octant::ROOT];
        while let Some(o) = stack.pop() {
            if o.level < MAX_LEVEL && refine(&o) {
                stack.extend(o.children());
            } else {
                leaves.push(o);
            }
        }
        leaves.sort_unstable_by_key(Octant::key);
        LinearOctree { leaves }
    }

    /// Wrap an existing leaf set (sorted internally). The caller must supply
    /// a complete, disjoint cover; `debug_assert`ed via
    /// [`LinearOctree::validate_complete`].
    pub fn from_leaves(mut leaves: Vec<Octant>) -> LinearOctree {
        leaves.sort_unstable_by_key(Octant::key);
        let t = LinearOctree { leaves };
        debug_assert!(t.validate_complete(), "leaf set is not a complete disjoint cover");
        t
    }

    /// A uniform tree at the given level (`8^level` leaves).
    pub fn uniform(level: u8) -> LinearOctree {
        LinearOctree::build(|o| o.level < level)
    }

    pub fn leaves(&self) -> &[Octant] {
        &self.leaves
    }

    pub fn len(&self) -> usize {
        self.leaves.len()
    }

    pub fn is_empty(&self) -> bool {
        self.leaves.is_empty()
    }

    pub fn max_level(&self) -> u8 {
        self.leaves.iter().map(|o| o.level).max().unwrap_or(0)
    }

    pub fn min_level(&self) -> u8 {
        self.leaves.iter().map(|o| o.level).min().unwrap_or(0)
    }

    /// Leaf counts per level, indexed by level.
    pub fn level_histogram(&self) -> Vec<usize> {
        level_histogram_of(self.leaves.iter().map(|o| o.level))
    }

    /// Index of the leaf containing the grid point, by binary search on keys.
    pub fn find_containing_index(&self, px: u32, py: u32, pz: u32) -> Option<usize> {
        if px >= GRID || py >= GRID || pz >= GRID || self.leaves.is_empty() {
            return None;
        }
        let key = (morton_encode(px, py, pz) << LEVEL_BITS) | MAX_LEVEL as u64;
        let idx = match self.leaves.binary_search_by_key(&key, Octant::key) {
            Ok(i) => i,
            Err(0) => return None,
            Err(i) => i - 1,
        };
        let leaf = &self.leaves[idx];
        leaf.contains_point(px, py, pz).then_some(idx)
    }

    /// The leaf containing a grid point.
    pub fn find_containing(&self, px: u32, py: u32, pz: u32) -> Option<&Octant> {
        self.find_containing_index(px, py, pz).map(|i| &self.leaves[i])
    }

    /// Enforce the 2-to-1 constraint by global ripple refinement. Produces
    /// the unique minimal balanced refinement of the current leaf set.
    pub fn balance(&mut self, mode: BalanceMode) {
        let mut map: BTreeMap<u64, Octant> = self.leaves.iter().map(|o| (o.key(), *o)).collect();
        let queue: VecDeque<Octant> = self.leaves.iter().copied().collect();
        ripple(&mut map, queue, mode, None);
        self.leaves = map.into_values().collect();
    }

    /// True if every pair of touching leaves (per `mode`) differs by at most
    /// one level.
    pub fn is_balanced(&self, mode: BalanceMode) -> bool {
        let dirs = mode.directions();
        for o in &self.leaves {
            if o.level == 0 {
                continue;
            }
            for &d in &dirs {
                if let Some(p) = sample_point(o, d) {
                    let n = self
                        .find_containing(p.0, p.1, p.2)
                        .expect("complete octree must cover sample point");
                    if n.level + 1 < o.level {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Check that the leaves are disjoint and tile the whole domain.
    pub fn validate_complete(&self) -> bool {
        let mut vol: u128 = 0;
        for w in self.leaves.windows(2) {
            if w[0].contains(&w[1]) || w[1].contains(&w[0]) {
                return false;
            }
        }
        for o in &self.leaves {
            vol += (o.size() as u128).pow(3);
        }
        vol == (GRID as u128).pow(3)
    }
}

/// Counts per level (index = level) of a level sequence — the single
/// histogram routine behind [`LinearOctree::level_histogram`] and the mesh
/// statistics in `quake-mesh` (`MeshStats`). Empty input yields an empty
/// histogram; otherwise the result has `max(level) + 1` entries.
pub fn level_histogram_of(levels: impl IntoIterator<Item = u8>) -> Vec<usize> {
    let mut h = Vec::new();
    for level in levels {
        if h.len() <= level as usize {
            h.resize(level as usize + 1, 0);
        }
        h[level as usize] += 1;
    }
    h
}

/// Sample grid point just outside `o` in direction `d` (None if outside the
/// domain). One point per direction suffices to detect a *coarser* toucher,
/// because a leaf at a coarser level that touches `o` across `d` necessarily
/// covers the aligned block this point lies in.
pub fn sample_point(o: &Octant, d: (i32, i32, i32)) -> Option<(u32, u32, u32)> {
    let s = o.size() as i64;
    let comp = |base: u32, di: i32| -> i64 {
        match di {
            -1 => base as i64 - 1,
            0 => base as i64,
            1 => base as i64 + s,
            _ => unreachable!(),
        }
    };
    let (px, py, pz) = (comp(o.x, d.0), comp(o.y, d.1), comp(o.z, d.2));
    let g = GRID as i64;
    if px < 0 || py < 0 || pz < 0 || px >= g || py >= g || pz >= g {
        return None;
    }
    Some((px as u32, py as u32, pz as u32))
}

/// Core ripple-refinement loop shared by global balancing and the local
/// (block-wise) balancing of the etree paper. When `within` is given,
/// constraints whose sample point falls outside that octant are skipped
/// (used for the internal-balance step of local balancing).
pub fn ripple(
    map: &mut BTreeMap<u64, Octant>,
    mut queue: VecDeque<Octant>,
    mode: BalanceMode,
    within: Option<Octant>,
) {
    let dirs = mode.directions();
    while let Some(o) = queue.pop_front() {
        if !map.contains_key(&o.key()) {
            continue; // split away since enqueued
        }
        if o.level <= 1 {
            continue; // nothing can violate against level <= 1
        }
        for &d in &dirs {
            let Some(p) = sample_point(&o, d) else { continue };
            if let Some(w) = &within {
                if !w.contains_point(p.0, p.1, p.2) {
                    continue;
                }
            }
            // Split the covering leaf until it is within one level of o.
            loop {
                let n = *find_in_map(map, p).expect("complete octree must cover sample point");
                if n.level + 1 >= o.level {
                    break;
                }
                map.remove(&n.key());
                for c in n.children() {
                    map.insert(c.key(), c);
                    queue.push_back(c);
                }
            }
        }
    }
}

fn find_in_map(map: &BTreeMap<u64, Octant>, p: (u32, u32, u32)) -> Option<&Octant> {
    let key = (morton_encode(p.0, p.1, p.2) << LEVEL_BITS) | MAX_LEVEL as u64;
    let (_, o) = map.range(..=key).next_back()?;
    o.contains_point(p.0, p.1, p.2).then_some(o)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_tree_counts() {
        for level in 0..4u8 {
            let t = LinearOctree::uniform(level);
            assert_eq!(t.len(), 8usize.pow(level as u32));
            assert!(t.validate_complete());
            assert!(t.is_balanced(BalanceMode::Full));
        }
    }

    #[test]
    fn build_refines_only_where_asked() {
        // Refine only the octant containing the origin corner, three times.
        let t = LinearOctree::build(|o| o.level < 3 && o.x == 0 && o.y == 0 && o.z == 0);
        // Each refinement of one octant adds 7 leaves: 1 -> 8 -> 15 -> 22.
        assert_eq!(t.len(), 22);
        assert!(t.validate_complete());
        assert_eq!(t.max_level(), 3);
        assert_eq!(t.min_level(), 1);
    }

    #[test]
    fn point_location_finds_the_right_leaf() {
        let t = LinearOctree::build(|o| {
            o.level < 2 || (o.level < 4 && o.x == 0 && o.y == 0 && o.z == 0)
        });
        assert!(t.validate_complete());
        for o in t.leaves() {
            let c = (o.x + o.size() / 2, o.y + o.size() / 2, o.z + o.size() / 2);
            assert_eq!(t.find_containing(c.0, c.1, c.2), Some(o));
            assert_eq!(t.find_containing(o.x, o.y, o.z), Some(o));
        }
        assert!(t.find_containing(GRID, 0, 0).is_none());
    }

    #[test]
    fn unbalanced_seed_becomes_balanced_minimally() {
        // Deep refinement around the domain center: across the center planes
        // the deep leaves touch level-1 leaves, violating 2:1 badly. (A tree
        // refined toward a *domain corner* is automatically balanced — each
        // leaf's outward neighbors are exactly one level coarser.)
        let deep = 6u8;
        let half = 1u32 << (MAX_LEVEL - 1);
        let mut t = LinearOctree::build(|o| o.level < deep && o.contains_point(half, half, half));
        assert!(!t.is_balanced(BalanceMode::Face));
        let before = t.len();
        t.balance(BalanceMode::Full);
        assert!(t.validate_complete());
        assert!(t.is_balanced(BalanceMode::Full));
        assert!(t.len() > before);
        // The deep leaves must be untouched (balance only refines).
        assert_eq!(t.max_level(), deep);
    }

    #[test]
    fn balance_is_idempotent() {
        let mut t = LinearOctree::build(|o| o.level < 5 && o.x == 0 && o.y == 0 && o.z == 0);
        t.balance(BalanceMode::Full);
        let once = t.leaves().to_vec();
        t.balance(BalanceMode::Full);
        assert_eq!(once, t.leaves());
    }

    #[test]
    fn face_mode_is_weaker_than_full() {
        let mut tf = LinearOctree::build(|o| o.level < 5 && o.x == 0 && o.y == 0 && o.z == 0);
        let mut tc = tf.clone();
        tf.balance(BalanceMode::Face);
        tc.balance(BalanceMode::Full);
        assert!(tf.len() <= tc.len());
        assert!(tf.is_balanced(BalanceMode::Face));
        assert!(tc.is_balanced(BalanceMode::Full));
    }

    #[test]
    fn prop_balance_produces_balanced_complete_tree() {
        // Deterministic LCG-driven cases (randomized-property test without
        // an external crate — the build is offline): refine around a few
        // seed corners to depth, then balance.
        let mut state = 0xD001u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 11
        };
        for _ in 0..16 {
            let r = next();
            let n_seeds = 1 + (r % 3) as usize;
            let depth = (3 + (r >> 8) % 3) as u8;
            let seeds: Vec<(u32, u32, u32)> = (0..n_seeds)
                .map(|_| {
                    let q = next();
                    ((q as u32) % 8, ((q >> 8) as u32) % 8, ((q >> 16) as u32) % 8)
                })
                .collect();
            let mut t = LinearOctree::build(|o| {
                o.level < depth
                    && seeds.iter().any(|&(sx, sy, sz)| {
                        let s = 1u32 << (MAX_LEVEL - 3);
                        o.contains_point(sx * s, sy * s, sz * s)
                    })
            });
            t.balance(BalanceMode::Full);
            assert!(t.validate_complete());
            assert!(t.is_balanced(BalanceMode::Full));
        }
    }
}
