//! Linear octrees for multiresolution hexahedral meshing.
//!
//! The SC2003 meshes are *linear octrees*: the leaves of an octree over a
//! cubic domain, each identified by a locational key that interleaves the
//! Morton code of its lower corner with its level ([`morton`], [`octant`]).
//! [`tree::LinearOctree`] stores the sorted leaf set and provides
//! construction by recursive refinement ("auto-navigation" in etree
//! terminology), point location, neighbor queries and 2-to-1 balancing;
//! [`balance`] adds the paper's *local balancing* algorithm (block partition,
//! internal balance, boundary balance); [`adapt`] builds wavelength-adaptive
//! trees from a shear-velocity field (`h <= vs / (p * fmax)`).

pub mod adapt;
pub mod balance;
pub mod morton;
pub mod octant;
pub mod tree;

pub use adapt::build_wavelength_adaptive;
pub use balance::balance_local;
pub use morton::{morton_decode, morton_encode, MAX_LEVEL};
pub use octant::Octant;
pub use tree::{level_histogram_of, ripple, sample_point, BalanceMode, LinearOctree};
