//! Morton (Z-order) codes — the linearization behind the etree keys.
//!
//! Coordinates live on a virtual `2^MAX_LEVEL`-cube integer grid. A Morton
//! code interleaves the bits of `(x, y, z)`; appending the octant level gives
//! a total order over all octants of all sizes that coincides with a preorder
//! traversal of the octree (the paper's B-tree key, after Gargantini).

/// Maximum octree depth. `3 * MAX_LEVEL + LEVEL_BITS` must fit in 64 bits.
pub const MAX_LEVEL: u8 = 19;

/// Bits reserved for the level in a locational key.
pub const LEVEL_BITS: u32 = 5;

/// Side length of the virtual grid (`2^MAX_LEVEL`).
pub const GRID: u32 = 1 << MAX_LEVEL;

/// Spread the low 20 bits of `v` so they occupy every third bit.
#[inline]
fn spread3(v: u32) -> u64 {
    let mut x = (v as u64) & 0xf_ffff; // 20 bits
    x = (x | (x << 32)) & 0x1f00000000ffff;
    x = (x | (x << 16)) & 0x1f0000ff0000ff;
    x = (x | (x << 8)) & 0x100f00f00f00f00f;
    x = (x | (x << 4)) & 0x10c30c30c30c30c3;
    x = (x | (x << 2)) & 0x1249249249249249;
    x
}

/// Collapse every third bit back into the low 20 bits.
#[inline]
fn collapse3(v: u64) -> u32 {
    let mut x = v & 0x1249249249249249;
    x = (x | (x >> 2)) & 0x10c30c30c30c30c3;
    x = (x | (x >> 4)) & 0x100f00f00f00f00f;
    x = (x | (x >> 8)) & 0x1f0000ff0000ff;
    x = (x | (x >> 16)) & 0x1f00000000ffff;
    x = (x | (x >> 32)) & 0xf_ffff;
    x as u32
}

/// Interleaved Morton code of a grid point.
///
/// Coordinates up to `2^20 - 1` are accepted (one bit beyond `MAX_LEVEL`):
/// *node* coordinates include the far domain face at `GRID` itself.
#[inline]
pub fn morton_encode(x: u32, y: u32, z: u32) -> u64 {
    debug_assert!(x < (1 << 20) && y < (1 << 20) && z < (1 << 20));
    spread3(x) | (spread3(y) << 1) | (spread3(z) << 2)
}

/// Inverse of [`morton_encode`].
#[inline]
pub fn morton_decode(m: u64) -> (u32, u32, u32) {
    (collapse3(m), collapse3(m >> 1), collapse3(m >> 2))
}

/// 2-D Morton code (used by the antiplane inversion grids and quadtree tests).
#[inline]
pub fn morton_encode_2d(x: u32, y: u32) -> u64 {
    spread2(x) | (spread2(y) << 1)
}

#[inline]
fn spread2(v: u32) -> u64 {
    let mut x = v as u64;
    x = (x | (x << 16)) & 0x0000ffff0000ffff;
    x = (x | (x << 8)) & 0x00ff00ff00ff00ff;
    x = (x | (x << 4)) & 0x0f0f0f0f0f0f0f0f;
    x = (x | (x << 2)) & 0x3333333333333333;
    x = (x | (x << 1)) & 0x5555555555555555;
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip_corners() {
        for &(x, y, z) in &[(0, 0, 0), (GRID - 1, GRID - 1, GRID - 1), (1, 2, 3), (GRID - 1, 0, 1)]
        {
            assert_eq!(morton_decode(morton_encode(x, y, z)), (x, y, z));
        }
    }

    #[test]
    fn morton_orders_quadrants_z_shaped() {
        // Within one level, z-order visits the 8 children in bit order.
        let half = GRID / 2;
        let kids = [
            (0, 0, 0),
            (half, 0, 0),
            (0, half, 0),
            (half, half, 0),
            (0, 0, half),
            (half, 0, half),
            (0, half, half),
            (half, half, half),
        ];
        let codes: Vec<u64> = kids.iter().map(|&(x, y, z)| morton_encode(x, y, z)).collect();
        for w in codes.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn morton_code_of_child_shares_parent_prefix() {
        // A child's code differs from its parent corner code only in the
        // 3-bit group at the child's level.
        let (x, y, z) = (12 << 10, 7 << 10, 3 << 10);
        let parent = morton_encode(x, y, z);
        let child = morton_encode(x + (1 << 9), y, z + (1 << 9));
        // High bits above the child's refinement bits agree.
        assert_eq!(parent >> 30, child >> 30);
    }

    /// Deterministic LCG over sampled coordinates (randomized-property
    /// tests without an external crate — the build is offline).
    fn samples(seed: u64, n: usize) -> impl Iterator<Item = u64> {
        let mut state = seed;
        (0..n).map(move |_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 11
        })
    }

    #[test]
    fn prop_roundtrip() {
        for s in samples(0xA001, 600) {
            let (x, y, z) =
                ((s as u32) % GRID, ((s >> 16) as u32) % GRID, ((s >> 32) as u32) % GRID);
            assert_eq!(morton_decode(morton_encode(x, y, z)), (x, y, z));
        }
    }

    #[test]
    fn prop_monotone_along_axes() {
        // Morton order is monotone when only one coordinate grows and the
        // others are fixed (x and x+1 may differ in many bits, but the
        // interleaved compare still follows the highest changed bit).
        for s in samples(0xA002, 600) {
            let x = (s as u32) % (GRID - 1);
            let (y, z) = (((s >> 16) as u32) % GRID, ((s >> 32) as u32) % GRID);
            assert!(morton_encode(x, y, z) < morton_encode(x + 1, y, z));
        }
    }

    #[test]
    fn prop_2d_roundtrip_order() {
        for s in samples(0xA003, 600) {
            let (x, y) = ((s as u32) % 65536, ((s >> 20) as u32) % 65536);
            let m = morton_encode_2d(x, y);
            // Decode by collapsing alternate bits.
            let mut dx = 0u32;
            let mut dy = 0u32;
            for b in 0..32 {
                dx |= (((m >> (2 * b)) & 1) as u32) << b;
                dy |= (((m >> (2 * b + 1)) & 1) as u32) << b;
            }
            assert_eq!((dx, dy), (x, y));
        }
    }
}
