//! Octants: axis-aligned cubes on the virtual grid, with locational keys.

use crate::morton::{morton_decode, morton_encode, GRID, LEVEL_BITS, MAX_LEVEL};

/// An octant of an octree over the unit cube, addressed on the
/// `2^MAX_LEVEL` virtual integer grid.
///
/// `(x, y, z)` is the lower corner in grid units and must be aligned to the
/// octant's size `2^(MAX_LEVEL - level)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Octant {
    pub x: u32,
    pub y: u32,
    pub z: u32,
    pub level: u8,
}

impl Octant {
    /// The root octant covering the whole domain.
    pub const ROOT: Octant = Octant { x: 0, y: 0, z: 0, level: 0 };

    pub fn new(x: u32, y: u32, z: u32, level: u8) -> Octant {
        let o = Octant { x, y, z, level };
        debug_assert!(level <= MAX_LEVEL);
        debug_assert!(
            x.is_multiple_of(o.size()) && y.is_multiple_of(o.size()) && z.is_multiple_of(o.size()),
            "octant corner not aligned to its size"
        );
        debug_assert!(x < GRID && y < GRID && z < GRID);
        o
    }

    /// Edge length in virtual-grid units.
    #[inline]
    pub fn size(&self) -> u32 {
        1 << (MAX_LEVEL - self.level)
    }

    /// Locational key: Morton code of the lower corner, then the level.
    ///
    /// Lexicographic order on keys = preorder traversal order; in particular
    /// an ancestor sorts immediately before its first descendant.
    #[inline]
    pub fn key(&self) -> u64 {
        (morton_encode(self.x, self.y, self.z) << LEVEL_BITS) | self.level as u64
    }

    /// Inverse of [`Octant::key`].
    pub fn from_key(key: u64) -> Octant {
        let level = (key & ((1 << LEVEL_BITS) - 1)) as u8;
        let (x, y, z) = morton_decode(key >> LEVEL_BITS);
        Octant::new(x, y, z, level)
    }

    /// The `i`-th child (bit-coded: bit0 = +x, bit1 = +y, bit2 = +z).
    pub fn child(&self, i: usize) -> Octant {
        assert!(self.level < MAX_LEVEL, "cannot refine below MAX_LEVEL");
        let s = self.size() / 2;
        Octant::new(
            self.x + if i & 1 != 0 { s } else { 0 },
            self.y + if i & 2 != 0 { s } else { 0 },
            self.z + if i & 4 != 0 { s } else { 0 },
            self.level + 1,
        )
    }

    /// All eight children, in Morton order.
    pub fn children(&self) -> [Octant; 8] {
        std::array::from_fn(|i| self.child(i))
    }

    /// The parent octant (None for the root).
    pub fn parent(&self) -> Option<Octant> {
        if self.level == 0 {
            return None;
        }
        let s = self.size() * 2;
        Some(Octant::new(self.x / s * s, self.y / s * s, self.z / s * s, self.level - 1))
    }

    /// The ancestor at `level` (<= self.level).
    pub fn ancestor_at(&self, level: u8) -> Octant {
        assert!(level <= self.level);
        let s = 1u32 << (MAX_LEVEL - level);
        Octant::new(self.x / s * s, self.y / s * s, self.z / s * s, level)
    }

    /// True if `self` contains (or equals) `other`.
    pub fn contains(&self, other: &Octant) -> bool {
        if other.level < self.level {
            return false;
        }
        other.ancestor_at(self.level) == *self
    }

    /// True if the grid point `(px, py, pz)` lies inside this octant.
    pub fn contains_point(&self, px: u32, py: u32, pz: u32) -> bool {
        let s = self.size();
        px >= self.x
            && px < self.x + s
            && py >= self.y
            && py < self.y + s
            && pz >= self.z
            && pz < self.z + s
    }

    /// Center of the octant in unit-cube coordinates.
    pub fn center_unit(&self) -> [f64; 3] {
        let s = self.size() as f64;
        let g = GRID as f64;
        [
            (self.x as f64 + 0.5 * s) / g,
            (self.y as f64 + 0.5 * s) / g,
            (self.z as f64 + 0.5 * s) / g,
        ]
    }

    /// Lower corner in unit-cube coordinates.
    pub fn corner_unit(&self) -> [f64; 3] {
        let g = GRID as f64;
        [self.x as f64 / g, self.y as f64 / g, self.z as f64 / g]
    }

    /// Edge length in unit-cube coordinates.
    pub fn size_unit(&self) -> f64 {
        self.size() as f64 / GRID as f64
    }

    /// Same-level neighbor displaced by `(dx, dy, dz)` octant-sizes; `None`
    /// when it would leave the domain.
    pub fn neighbor(&self, dx: i32, dy: i32, dz: i32) -> Option<Octant> {
        let s = self.size() as i64;
        let nx = self.x as i64 + dx as i64 * s;
        let ny = self.y as i64 + dy as i64 * s;
        let nz = self.z as i64 + dz as i64 * s;
        let g = GRID as i64;
        if nx < 0 || ny < 0 || nz < 0 || nx >= g || ny >= g || nz >= g {
            return None;
        }
        Some(Octant::new(nx as u32, ny as u32, nz as u32, self.level))
    }

    /// The 26 neighbor direction triples (faces, edges, corners).
    pub fn all_directions() -> impl Iterator<Item = (i32, i32, i32)> {
        (-1..=1).flat_map(move |dx| {
            (-1..=1).flat_map(move |dy| {
                (-1..=1).filter_map(move |dz| {
                    if dx == 0 && dy == 0 && dz == 0 {
                        None
                    } else {
                        Some((dx, dy, dz))
                    }
                })
            })
        })
    }

    /// The 6 face directions.
    pub fn face_directions() -> [(i32, i32, i32); 6] {
        [(-1, 0, 0), (1, 0, 0), (0, -1, 0), (0, 1, 0), (0, 0, -1), (0, 0, 1)]
    }
}

impl PartialOrd for Octant {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Octant {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_roundtrip_and_preorder() {
        let o = Octant::new(0, 0, 0, 2);
        assert_eq!(Octant::from_key(o.key()), o);
        // Parent sorts before first child, child 0 before child 1.
        let kids = o.children();
        assert!(o.key() < kids[0].key());
        for w in kids.windows(2) {
            assert!(w[0].key() < w[1].key());
        }
    }

    #[test]
    fn children_tile_parent() {
        let o = Octant::new(1 << 18, 0, 1 << 18, 1);
        let mut vol = 0u64;
        for c in o.children() {
            assert!(o.contains(&c));
            assert_eq!(c.parent(), Some(o));
            vol += (c.size() as u64).pow(3);
        }
        assert_eq!(vol, (o.size() as u64).pow(3));
    }

    #[test]
    fn neighbor_respects_domain_bounds() {
        let o = Octant::new(0, 0, 0, 3);
        assert!(o.neighbor(-1, 0, 0).is_none());
        let n = o.neighbor(1, 0, 0).unwrap();
        assert_eq!(n.x, o.size());
        let far = Octant::new(GRID - (1 << (MAX_LEVEL - 3)), 0, 0, 3);
        assert!(far.neighbor(1, 0, 0).is_none());
    }

    #[test]
    fn ancestor_and_contains() {
        let leaf = Octant::new(3 << 14, 5 << 14, 9 << 14, 5);
        let anc = leaf.ancestor_at(2);
        assert!(anc.contains(&leaf));
        assert!(!leaf.contains(&anc));
        assert!(anc.contains_point(leaf.x, leaf.y, leaf.z));
    }

    #[test]
    fn directions_counts() {
        assert_eq!(Octant::all_directions().count(), 26);
        assert_eq!(Octant::face_directions().len(), 6);
    }

    /// Deterministic LCG sample stream (randomized-property tests without
    /// an external crate — the build is offline).
    fn samples(seed: u64, n: usize) -> impl Iterator<Item = u64> {
        let mut state = seed;
        (0..n).map(move |_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 11
        })
    }

    #[test]
    fn prop_key_roundtrip() {
        for r in samples(0xB001, 400) {
            let (xb, yb, zb) =
                ((r as u32) % 256, ((r >> 8) as u32) % 256, ((r >> 16) as u32) % 256);
            let level = ((r >> 24) % 9) as u8;
            let s = 1u32 << (MAX_LEVEL - level);
            let o = Octant::new(
                (xb % (1 << level)) * s,
                (yb % (1 << level)) * s,
                (zb % (1 << level)) * s,
                level,
            );
            assert_eq!(Octant::from_key(o.key()), o);
        }
    }

    #[test]
    fn prop_child_parent_roundtrip() {
        for r in samples(0xB002, 400) {
            let (xb, yb, zb) = ((r as u32) % 64, ((r >> 8) as u32) % 64, ((r >> 16) as u32) % 64);
            let level = ((r >> 24) % 7) as u8;
            let i = ((r >> 28) % 8) as usize;
            let s = 1u32 << (MAX_LEVEL - level);
            let o = Octant::new(
                (xb % (1 << level)) * s,
                (yb % (1 << level)) * s,
                (zb % (1 << level)) * s,
                level,
            );
            assert_eq!(o.child(i).parent(), Some(o));
        }
    }

    #[test]
    fn prop_descendant_keys_nest_between_siblings() {
        // Every descendant of child i keys between child i and child i+1.
        for i in 0..8usize {
            for j in 0..8usize {
                let o = Octant::ROOT;
                let ci = o.child(i);
                let desc = ci.child(j);
                assert!(desc.key() > ci.key());
                if i < 7 {
                    assert!(desc.key() < o.child(i + 1).key());
                }
            }
        }
    }
}
