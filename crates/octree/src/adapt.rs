//! Wavelength-adaptive octree construction.
//!
//! Given a local shear-wave velocity field `vs(x)`, the highest frequency to
//! resolve `fmax` and a points-per-wavelength target `p` (the paper uses
//! p = 10 for trilinear hexes), the local element size must satisfy
//!
//! ```text
//! h <= vs / (p * fmax)
//! ```
//!
//! Soft sediments (low `vs`) therefore get small elements and stiff bedrock
//! large ones — the mechanism that buys the paper its factor-~2000 grid-point
//! saving over a uniform mesh.

use crate::octant::Octant;
use crate::tree::{BalanceMode, LinearOctree};

/// Parameters for wavelength-adaptive refinement.
#[derive(Clone, Copy, Debug)]
pub struct AdaptParams {
    /// Physical edge length of the (cubic) meshed domain in meters.
    pub domain_size: f64,
    /// Highest frequency to resolve (Hz).
    pub fmax: f64,
    /// Grid points per shortest wavelength (paper: 10).
    pub points_per_wavelength: f64,
    /// Hard cap on refinement depth (also bounded by `MAX_LEVEL`).
    pub max_level: u8,
    /// Floor on refinement depth (elements never coarser than this).
    pub min_level: u8,
}

impl AdaptParams {
    /// Target maximum element size for local shear velocity `vs` (m/s).
    pub fn target_h(&self, vs: f64) -> f64 {
        assert!(vs > 0.0, "shear velocity must be positive, got {vs}");
        vs / (self.points_per_wavelength * self.fmax)
    }
}

/// Build a wavelength-adaptive, 2-to-1 balanced octree.
///
/// `vs_min_in` must return a lower bound for the shear velocity inside the
/// given octant (sampling the center and corners of the octant is typical;
/// the driver in `quake-mesh` does exactly that). An octant is refined while
/// its physical size exceeds the target `h` of that bound.
pub fn build_wavelength_adaptive(
    params: &AdaptParams,
    mut vs_min_in: impl FnMut(&Octant, f64) -> f64,
) -> LinearOctree {
    let l = params.domain_size;
    let mut tree = LinearOctree::build(|o| {
        if o.level < params.min_level {
            return true;
        }
        if o.level >= params.max_level {
            return false;
        }
        let h = o.size_unit() * l;
        let vs = vs_min_in(o, l);
        h > params.target_h(vs)
    });
    tree.balance(BalanceMode::Full);
    tree
}

/// Number of grid points a *uniform* mesh resolving the same `fmax` with the
/// same `p` at the globally smallest velocity would need — the paper's
/// "factor of ~2000" comparison (Section 2.4).
pub fn uniform_equivalent_points(params: &AdaptParams, vs_min_global: f64) -> u128 {
    let h = params.target_h(vs_min_global);
    let n = (params.domain_size / h).ceil() as u128 + 1;
    n * n * n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(fmax: f64) -> AdaptParams {
        AdaptParams {
            domain_size: 1000.0,
            fmax,
            points_per_wavelength: 10.0,
            max_level: 7,
            min_level: 1,
        }
    }

    #[test]
    fn homogeneous_medium_gives_uniform_tree() {
        // vs = 1000 m/s, fmax = 0.5 Hz -> h_target = 200 m -> level 3
        // (h = 1000/2^3 = 125 <= 200; level 2 gives 250 > 200).
        let p = params(0.5);
        let t = build_wavelength_adaptive(&p, |_, _| 1000.0);
        assert!(t.leaves().iter().all(|o| o.level == 3));
        assert_eq!(t.len(), 512);
    }

    #[test]
    fn soft_inclusion_refines_locally() {
        // Soft half-space in the upper half (low z = shallow): refine there.
        let p = params(0.5);
        let t = build_wavelength_adaptive(&p, |o, l| {
            let c = o.center_unit();
            // The *minimum* vs inside octants straddling the interface is the
            // soft value.
            let z_top = c[2] - 0.5 * o.size_unit();
            if z_top * l < 300.0 {
                250.0
            } else {
                1000.0
            }
        });
        assert!(t.validate_complete());
        assert!(t.is_balanced(BalanceMode::Full));
        // Soft region wants h <= 50 m -> level 5; stiff region level 3.
        assert_eq!(t.max_level(), 5);
        assert!(t.len() > 512);
        // Shallow leaves are fine, deep leaves coarse.
        for o in t.leaves() {
            let c = o.center_unit();
            if c[2] < 0.2 {
                assert!(o.level >= 5, "shallow leaf too coarse: {o:?}");
            }
        }
    }

    #[test]
    fn doubling_frequency_octuples_elements() {
        // The paper: each frequency doubling is ~8x the grid size.
        let t1 = build_wavelength_adaptive(&params(0.25), |_, _| 500.0);
        let t2 = build_wavelength_adaptive(&params(0.5), |_, _| 500.0);
        assert_eq!(t2.len(), 8 * t1.len());
    }

    #[test]
    fn uniform_equivalent_is_much_larger_for_heterogeneous_model() {
        let p = params(1.0);
        // Adaptive mesh for a model that is soft only in a thin layer.
        let t = build_wavelength_adaptive(&p, |o, l| {
            let c = o.center_unit();
            let z_top = (c[2] - 0.5 * o.size_unit()) * l;
            if z_top < 20.0 {
                100.0
            } else {
                2000.0
            }
        });
        let adaptive_elems = t.len() as u128;
        let uniform_pts = uniform_equivalent_points(&p, 100.0);
        // The paper reports a factor ~2000 for the real LA basin; a tiny test
        // tree with its balance-transition layers still shows a solid 10x.
        assert!(
            uniform_pts > 10 * adaptive_elems,
            "uniform {uniform_pts} vs adaptive {adaptive_elems}"
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_velocity_rejected() {
        params(1.0).target_h(0.0);
    }
}
