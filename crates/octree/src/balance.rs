//! Local balancing — the etree paper's block-wise 2-to-1 enforcement.
//!
//! Balancing a huge octree with a single global ripple pass touches octants
//! all over the key space. The paper's *local balancing* instead
//!
//! 1. partitions the domain into equal-size blocks,
//! 2. enforces the constraint *internally* within each block (touching only
//!    that block's key range — this is where the 8-28x speedup on disk came
//!    from), and then
//! 3. runs a *boundary* pass to resolve interactions across block faces.
//!
//! Because the minimal balanced refinement of a leaf set is unique, the
//! result is identical to global balancing; we assert exactly that in tests
//! and measure the difference in the etree benchmarks.

use crate::octant::Octant;
use crate::tree::{ripple, sample_point, BalanceMode, LinearOctree};
use std::collections::{BTreeMap, VecDeque};

/// Balance `tree` using block-wise local balancing with `8^block_level`
/// blocks. Equivalent to `tree.balance(mode)`.
pub fn balance_local(tree: &mut LinearOctree, mode: BalanceMode, block_level: u8) {
    let mut map: BTreeMap<u64, Octant> = tree.leaves().iter().map(|o| (o.key(), *o)).collect();

    // Step 1+2: internal balancing, one block at a time. Leaves coarser than
    // the block level span several blocks; they cannot violate the constraint
    // (a violator needs level >= 2) unless block_level is large, so they are
    // simply skipped here and handled by the boundary pass.
    let blocks = LinearOctree::uniform(block_level);
    for block in blocks.leaves() {
        let range = block.key()..=max_descendant_key(block);
        let members: VecDeque<Octant> =
            map.range(range).map(|(_, o)| *o).filter(|o| block.contains(o)).collect();
        ripple(&mut map, members, mode, Some(*block));
    }

    // Step 3: boundary balancing. Only leaves whose constraint sample points
    // cross a block boundary can still be in violation; a full ripple over
    // the (already mostly balanced) set resolves them with little work.
    let queue: VecDeque<Octant> = map.values().copied().collect();
    ripple(&mut map, queue, mode, None);

    *tree = LinearOctree::from_leaves(map.into_values().collect());
}

/// Largest key of any descendant of `o` (for key-range scans of a subtree).
fn max_descendant_key(o: &Octant) -> u64 {
    // The deepest, last descendant is the far corner cell at MAX_LEVEL.
    let s = o.size();
    let last = Octant::new(o.x + s - 1, o.y + s - 1, o.z + s - 1, crate::morton::MAX_LEVEL);
    last.key()
}

/// Count, for reporting, how many leaves violate the constraint (used by the
/// etree pipeline to show internal vs boundary work).
pub fn violation_count(tree: &LinearOctree, mode: BalanceMode) -> usize {
    let dirs = mode.directions();
    tree.leaves()
        .iter()
        .filter(|o| {
            o.level >= 2
                && dirs.iter().any(|&d| {
                    sample_point(o, d)
                        .and_then(|p| tree.find_containing(p.0, p.1, p.2))
                        .is_some_and(|n| n.level + 1 < o.level)
                })
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::morton::MAX_LEVEL;

    fn corner_seeded(depth: u8) -> LinearOctree {
        LinearOctree::build(|o| o.level < depth && o.x == 0 && o.y == 0 && o.z == 0)
    }

    #[test]
    fn local_matches_global() {
        for block_level in 1..=2u8 {
            let mut a = corner_seeded(6);
            let mut b = a.clone();
            a.balance(BalanceMode::Full);
            balance_local(&mut b, BalanceMode::Full, block_level);
            assert_eq!(a.leaves(), b.leaves(), "block_level={block_level}");
        }
    }

    #[test]
    fn local_balances_cross_block_violation() {
        // Deep refinement right at the center corner: the violation spans
        // all eight level-1 blocks.
        let half = 1u32 << (MAX_LEVEL - 1);
        let mut t = LinearOctree::build(|o| o.level < 6 && o.contains_point(half, half, half));
        assert!(violation_count(&t, BalanceMode::Full) > 0);
        balance_local(&mut t, BalanceMode::Full, 1);
        assert!(t.is_balanced(BalanceMode::Full));
        assert_eq!(violation_count(&t, BalanceMode::Full), 0);
    }

    #[test]
    fn prop_local_equals_global() {
        // Deterministic LCG-driven cases (randomized-property test without
        // an external crate — the build is offline).
        let mut state = 0xC001u64;
        for _ in 0..10 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let r = state >> 11;
            let (sx, sy, sz) = ((r as u32) % 8, ((r >> 8) as u32) % 8, ((r >> 16) as u32) % 8);
            let depth = (3 + (r >> 24) % 3) as u8;
            let block = (1 + (r >> 28) % 2) as u8;
            let s = 1u32 << (MAX_LEVEL - 3);
            let mut a = LinearOctree::build(|o| {
                o.level < depth && o.contains_point(sx * s, sy * s, sz * s)
            });
            let mut b = a.clone();
            a.balance(BalanceMode::FaceEdge);
            balance_local(&mut b, BalanceMode::FaceEdge, block);
            assert_eq!(a.leaves(), b.leaves());
        }
    }
}
