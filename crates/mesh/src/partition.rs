//! Element partitioning and communication plans (the ParMETIS substitute).
//!
//! Two partitioners are provided:
//!
//! - [`partition_morton`]: contiguous chunks of the Morton-ordered element
//!   list — the natural zero-cost partition of a linear octree (space-filling
//!   curve partitioning),
//! - [`partition_rcb`]: recursive coordinate bisection on element centroids.
//!
//! [`ExchangePlan`] derives, for any partition, the shared-node lists each
//! rank pair must sum-exchange every time step, plus the statistics shown in
//! Fig 2.3d (balance, interface size).

use crate::hexmesh::HexMesh;

/// Assign elements to `n_parts` contiguous Morton chunks of equal count.
pub fn partition_morton(n_elements: usize, n_parts: usize) -> Vec<u32> {
    assert!(n_parts > 0);
    (0..n_elements)
        .map(|i| ((i as u64 * n_parts as u64) / n_elements.max(1) as u64) as u32)
        .collect()
}

/// Recursive coordinate bisection on element centroids.
pub fn partition_rcb(centroids: &[[f64; 3]], n_parts: usize) -> Vec<u32> {
    assert!(n_parts > 0);
    let mut out = vec![0u32; centroids.len()];
    let mut idx: Vec<usize> = (0..centroids.len()).collect();
    rcb_rec(centroids, &mut idx, 0, n_parts as u32, &mut out);
    out
}

fn rcb_rec(c: &[[f64; 3]], idx: &mut [usize], first_part: u32, n_parts: u32, out: &mut [u32]) {
    if n_parts == 1 || idx.len() <= 1 {
        for &i in idx.iter() {
            out[i] = first_part;
        }
        return;
    }
    // Split along the axis of largest centroid extent.
    let mut lo = [f64::INFINITY; 3];
    let mut hi = [f64::NEG_INFINITY; 3];
    for &i in idx.iter() {
        for d in 0..3 {
            lo[d] = lo[d].min(c[i][d]);
            hi[d] = hi[d].max(c[i][d]);
        }
    }
    let axis = (0..3).max_by(|&a, &b| (hi[a] - lo[a]).total_cmp(&(hi[b] - lo[b]))).unwrap();
    let left_parts = n_parts / 2;
    let split = idx.len() * left_parts as usize / n_parts as usize;
    idx.select_nth_unstable_by(split.min(idx.len() - 1), |&a, &b| {
        c[a][axis].total_cmp(&c[b][axis])
    });
    let (l, r) = idx.split_at_mut(split);
    rcb_rec(c, l, first_part, left_parts, out);
    rcb_rec(c, r, first_part + left_parts, n_parts - left_parts, out);
}

/// Partition quality + communication statistics.
#[derive(Clone, Debug)]
pub struct PartitionStats {
    pub n_parts: usize,
    pub elements_per_part: Vec<usize>,
    /// max / average element count.
    pub imbalance: f64,
    /// Nodes touched by elements of more than one part.
    pub interface_nodes: usize,
    /// Sum over nodes of (touching parts choose 2) — the pairwise
    /// communication volume in node values per exchange.
    pub cut_pairs: usize,
    /// Largest number of neighbor parts of any part.
    pub max_neighbors: usize,
}

/// Shared-node exchange lists: `plan[p]` is a sorted list of
/// `(neighbor_part, shared_node_ids)`; both sides hold identical node lists,
/// so a sum-exchange is a single buffer swap + add.
#[derive(Clone, Debug)]
pub struct ExchangePlan {
    pub plans: Vec<Vec<(u32, Vec<u32>)>>,
    pub stats: PartitionStats,
}

impl ExchangePlan {
    pub fn build(mesh: &HexMesh, parts: &[u32], n_parts: usize) -> ExchangePlan {
        assert_eq!(parts.len(), mesh.n_elements());
        // Which parts touch each node.
        let mut node_parts: Vec<Vec<u32>> = vec![Vec::new(); mesh.n_nodes()];
        for (e, &p) in mesh.elements.iter().zip(parts) {
            for &n in &e.nodes {
                let v = &mut node_parts[n as usize];
                if !v.contains(&p) {
                    v.push(p);
                }
            }
        }
        // Hanging-node constraints couple a hanging node's parts to its
        // masters' parts (the fold/interpolate steps communicate too).
        for c in &mesh.constraints {
            let hp = node_parts[c.node as usize].clone();
            for &(m, _) in &c.masters {
                for &p in &hp {
                    let v = &mut node_parts[m as usize];
                    if !v.contains(&p) {
                        v.push(p);
                    }
                }
            }
        }

        let mut pair_nodes: std::collections::BTreeMap<(u32, u32), Vec<u32>> =
            std::collections::BTreeMap::new();
        let mut interface_nodes = 0;
        let mut cut_pairs = 0;
        for (n, ps) in node_parts.iter().enumerate() {
            if ps.len() > 1 {
                interface_nodes += 1;
                let mut sorted = ps.clone();
                sorted.sort_unstable();
                for i in 0..sorted.len() {
                    for j in i + 1..sorted.len() {
                        cut_pairs += 1;
                        pair_nodes.entry((sorted[i], sorted[j])).or_default().push(n as u32);
                    }
                }
            }
        }

        let mut plans: Vec<Vec<(u32, Vec<u32>)>> = vec![Vec::new(); n_parts];
        for ((a, b), nodes) in pair_nodes {
            plans[a as usize].push((b, nodes.clone()));
            plans[b as usize].push((a, nodes));
        }
        for p in &mut plans {
            p.sort_by_key(|(q, _)| *q);
        }

        let mut elements_per_part = vec![0usize; n_parts];
        for &p in parts {
            elements_per_part[p as usize] += 1;
        }
        let max = elements_per_part.iter().copied().max().unwrap_or(0);
        let avg = mesh.n_elements() as f64 / n_parts as f64;
        let stats = PartitionStats {
            n_parts,
            imbalance: max as f64 / avg.max(1e-300),
            elements_per_part,
            interface_nodes,
            cut_pairs,
            max_neighbors: plans.iter().map(Vec::len).max().unwrap_or(0),
        };
        ExchangePlan { plans, stats }
    }

    /// Total node values exchanged per step by rank `p`.
    pub fn exchange_volume(&self, p: usize) -> usize {
        self.plans[p].iter().map(|(_, v)| v.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hexmesh::ElemMaterial;
    use quake_octree::LinearOctree;

    fn mesh(level: u8) -> HexMesh {
        HexMesh::from_octree(&LinearOctree::uniform(level), 1.0, |_, _, _, _| ElemMaterial {
            lambda: 1.0,
            mu: 1.0,
            rho: 1.0,
        })
    }

    #[test]
    fn morton_partition_is_contiguous_and_balanced() {
        let p = partition_morton(100, 8);
        assert_eq!(p.len(), 100);
        // Non-decreasing (contiguous chunks) and balanced to within 1.
        assert!(p.windows(2).all(|w| w[0] <= w[1]));
        let mut counts = [0usize; 8];
        for &x in &p {
            counts[x as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c == 12 || c == 13));
    }

    #[test]
    fn rcb_is_balanced_and_spatially_compact() {
        let m = mesh(3); // 512 elements
        let centroids: Vec<[f64; 3]> = m
            .elements
            .iter()
            .map(|e| {
                let lo = m.coords[e.nodes[0] as usize];
                [lo[0] + e.h / 2.0, lo[1] + e.h / 2.0, lo[2] + e.h / 2.0]
            })
            .collect();
        let parts = partition_rcb(&centroids, 8);
        let mut counts = [0usize; 8];
        for &p in &parts {
            counts[p as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c == 64), "{counts:?}");
        // Compactness: 8 parts of a cube should be the octants; every part's
        // bounding box has half the domain extent.
        for target in 0..8u32 {
            let mut lo = [f64::INFINITY; 3];
            let mut hi = [f64::NEG_INFINITY; 3];
            for (c, &p) in centroids.iter().zip(&parts) {
                if p == target {
                    for d in 0..3 {
                        lo[d] = lo[d].min(c[d]);
                        hi[d] = hi[d].max(c[d]);
                    }
                }
            }
            for d in 0..3 {
                assert!(hi[d] - lo[d] < 0.5, "part {target} spans {:?}", hi[d] - lo[d]);
            }
        }
    }

    #[test]
    fn exchange_plan_is_symmetric_with_identical_node_lists() {
        let m = mesh(2);
        let parts = partition_morton(m.n_elements(), 4);
        let plan = ExchangePlan::build(&m, &parts, 4);
        for p in 0..4usize {
            for (q, nodes) in &plan.plans[p] {
                let back = plan.plans[*q as usize]
                    .iter()
                    .find(|(r, _)| *r == p as u32)
                    .expect("exchange must be symmetric");
                assert_eq!(&back.1, nodes);
            }
        }
        assert!(plan.stats.interface_nodes > 0);
        assert!((plan.stats.imbalance - 1.0).abs() < 0.05);
    }

    #[test]
    fn single_part_has_no_interfaces() {
        let m = mesh(2);
        let parts = partition_morton(m.n_elements(), 1);
        let plan = ExchangePlan::build(&m, &parts, 1);
        assert_eq!(plan.stats.interface_nodes, 0);
        assert_eq!(plan.stats.cut_pairs, 0);
        assert!(plan.plans[0].is_empty());
    }

    #[test]
    fn rcb_beats_or_matches_morton_on_interface_size_for_cube() {
        let m = mesh(3);
        let centroids: Vec<[f64; 3]> = m
            .elements
            .iter()
            .map(|e| {
                let lo = m.coords[e.nodes[0] as usize];
                [lo[0] + e.h / 2.0, lo[1] + e.h / 2.0, lo[2] + e.h / 2.0]
            })
            .collect();
        let pm = ExchangePlan::build(&m, &partition_morton(m.n_elements(), 8), 8);
        let pr = ExchangePlan::build(&m, &partition_rcb(&centroids, 8), 8);
        assert!(
            pr.stats.interface_nodes <= pm.stats.interface_nodes,
            "rcb {} vs morton {}",
            pr.stats.interface_nodes,
            pm.stats.interface_nodes
        );
    }
}
