//! Hexahedral finite-element meshes from balanced octrees.
//!
//! - [`hexmesh`]: the mesh data structure — Morton-ordered cube elements with
//!   per-element `(h, lambda, mu, rho)` (no element matrices are ever
//!   stored), global node numbering, hanging-node constraints (midside = mean
//!   of 2 edge masters, midface = mean of 4 face masters, chains resolved),
//!   and domain-boundary face lists for the free surface and absorbing
//!   boundaries,
//! - [`driver`]: wavelength-adaptive meshing straight from a
//!   `quake_model::MaterialModel` (`h <= vs / (p fmax)`),
//! - [`partition`]: element partitioning — Morton (space-filling-curve)
//!   chunking and recursive coordinate bisection — plus communication plans
//!   (shared-node exchange lists) and edge-cut/imbalance statistics
//!   (the ParMETIS substitute, see DESIGN.md),
//! - [`coloring`]: node-disjoint element coloring for race-free parallel
//!   assembly in the explicit step,
//! - [`stats`]: the mesh summaries behind Fig 2.3.

pub mod coloring;
pub mod driver;
pub mod hexmesh;
pub mod partition;
pub mod stats;

pub use coloring::{color_elements, ElementColoring};
pub use driver::{mesh_from_model, MeshingParams};
pub use hexmesh::{BoundaryFace, Constraint, ElemMaterial, Element, HexMesh};
pub use partition::{partition_morton, partition_rcb, ExchangePlan, PartitionStats};
pub use stats::MeshStats;
