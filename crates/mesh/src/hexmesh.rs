//! The hexahedral mesh data structure and its construction from a balanced
//! linear octree.

use quake_octree::morton::{morton_encode, GRID};
use quake_octree::{BalanceMode, LinearOctree, Octant};

/// Per-element material (derived from the velocity model at mesh time).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ElemMaterial {
    pub lambda: f64,
    pub mu: f64,
    pub rho: f64,
}

impl ElemMaterial {
    pub fn vs(&self) -> f64 {
        (self.mu / self.rho).sqrt()
    }

    pub fn vp(&self) -> f64 {
        ((self.lambda + 2.0 * self.mu) / self.rho).sqrt()
    }
}

/// One cube element: node ids in the bit-coded corner order of `quake-fem`
/// (`corner i = (i&1, (i>>1)&1, (i>>2)&1)`).
#[derive(Clone, Copy, Debug)]
pub struct Element {
    pub nodes: [u32; 8],
    /// Physical edge length (m).
    pub h: f64,
    pub level: u8,
    pub material: ElemMaterial,
}

/// A hanging-node constraint: `u[node] = sum_j w_j u[master_j]` with all
/// masters regular (chains already resolved).
#[derive(Clone, Debug)]
pub struct Constraint {
    pub node: u32,
    pub masters: Vec<(u32, f64)>,
}

/// An element face on the domain boundary. Face ids: 0/1 = -x/+x,
/// 2/3 = -y/+y, 4/5 = -z/+z (z down, so face 4 is the free surface).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BoundaryFace {
    pub element: u32,
    pub face: u8,
}

/// Local corner indices of each face, in the quad4 order of `quake-fem`
/// (bit-coded on the two in-face axes).
pub const FACE_CORNERS: [[usize; 4]; 6] = [
    [0, 2, 4, 6], // -x: (y,z) bits
    [1, 3, 5, 7], // +x
    [0, 1, 4, 5], // -y: (x,z) bits
    [2, 3, 6, 7], // +y
    [0, 1, 2, 3], // -z: (x,y) bits (free surface)
    [4, 5, 6, 7], // +z
];

/// A hexahedral finite-element mesh over a cubic physical domain.
#[derive(Clone, Debug)]
pub struct HexMesh {
    /// Physical edge length of the domain (m).
    pub domain_size: f64,
    /// Node coordinates (m), indexed by node id; includes hanging nodes.
    pub coords: Vec<[f64; 3]>,
    /// Grid coordinates of each node on the octree vertex grid.
    pub grid_coords: Vec<[u32; 3]>,
    pub elements: Vec<Element>,
    /// Hanging-node constraints (masters fully resolved to regular nodes).
    pub constraints: Vec<Constraint>,
    /// `true` for hanging nodes, indexed by node id.
    pub hanging: Vec<bool>,
    /// Faces of elements on each domain boundary.
    pub boundary_faces: Vec<BoundaryFace>,
}

impl HexMesh {
    /// Build a mesh from a 2-to-1 balanced octree; materials are sampled at
    /// element centers via `material(x, y, z, h)`.
    pub fn from_octree(
        tree: &LinearOctree,
        domain_size: f64,
        mut material: impl FnMut(f64, f64, f64, f64) -> ElemMaterial,
    ) -> HexMesh {
        assert!(
            tree.is_balanced(BalanceMode::Full),
            "mesh construction requires a fully balanced octree"
        );
        let leaves = tree.leaves();

        // --- Node numbering: Morton-sorted distinct corner keys. ---
        let mut keys: Vec<u64> = Vec::with_capacity(leaves.len() * 8);
        for o in leaves {
            for c in 0..8usize {
                keys.push(node_key(corner(o, c)));
            }
        }
        keys.sort_unstable();
        keys.dedup();
        let node_id = |k: u64| -> u32 {
            keys.binary_search(&k).expect("corner key must be registered") as u32
        };

        let scale = domain_size / GRID as f64;
        let mut coords = Vec::with_capacity(keys.len());
        let mut grid_coords = Vec::with_capacity(keys.len());
        for &k in &keys {
            let (x, y, z) = quake_octree::morton_decode(k);
            grid_coords.push([x, y, z]);
            coords.push([x as f64 * scale, y as f64 * scale, z as f64 * scale]);
        }

        // --- Elements. ---
        let mut elements = Vec::with_capacity(leaves.len());
        for o in leaves {
            let mut nodes = [0u32; 8];
            for c in 0..8usize {
                nodes[c] = node_id(node_key(corner(o, c)));
            }
            let h = o.size_unit() * domain_size;
            let ctr = o.center_unit();
            elements.push(Element {
                nodes,
                h,
                level: o.level,
                material: material(
                    ctr[0] * domain_size,
                    ctr[1] * domain_size,
                    ctr[2] * domain_size,
                    h,
                ),
            });
        }

        // --- Hanging classification and first-level masters. ---
        let mut hanging = vec![false; keys.len()];
        let mut raw_masters: Vec<Option<Vec<(u32, f64)>>> = vec![None; keys.len()];
        for (id, gc) in grid_coords.iter().enumerate() {
            if let Some(m) = hanging_masters(tree, *gc, &node_id) {
                hanging[id] = true;
                raw_masters[id] = Some(m);
            }
        }

        // --- Resolve constraint chains (a master may itself hang from a
        // still-coarser neighbor). Depth is bounded by the level range. ---
        let mut constraints = Vec::new();
        for id in 0..keys.len() {
            let Some(masters) = &raw_masters[id] else { continue };
            let mut resolved: Vec<(u32, f64)> = Vec::new();
            let mut work: Vec<(u32, f64)> = masters.clone();
            let mut depth = 0;
            while let Some((m, w)) = work.pop() {
                if let Some(mm) = &raw_masters[m as usize] {
                    depth += 1;
                    assert!(depth < 64, "constraint chain does not terminate");
                    for (m2, w2) in mm {
                        work.push((*m2, w * w2));
                    }
                } else {
                    match resolved.iter_mut().find(|(r, _)| *r == m) {
                        Some((_, rw)) => *rw += w,
                        None => resolved.push((m, w)),
                    }
                }
            }
            resolved.sort_unstable_by_key(|(m, _)| *m);
            debug_assert!(
                (resolved.iter().map(|(_, w)| w).sum::<f64>() - 1.0).abs() < 1e-12,
                "constraint weights must sum to 1"
            );
            constraints.push(Constraint { node: id as u32, masters: resolved });
        }

        // --- Domain-boundary faces. ---
        let mut boundary_faces = Vec::new();
        for (ei, o) in leaves.iter().enumerate() {
            let s = o.size();
            let checks = [
                (0u8, o.x == 0),
                (1, o.x + s == GRID),
                (2, o.y == 0),
                (3, o.y + s == GRID),
                (4, o.z == 0),
                (5, o.z + s == GRID),
            ];
            for (face, on) in checks {
                if on {
                    boundary_faces.push(BoundaryFace { element: ei as u32, face });
                }
            }
        }

        HexMesh { domain_size, coords, grid_coords, elements, constraints, hanging, boundary_faces }
    }

    pub fn n_nodes(&self) -> usize {
        self.coords.len()
    }

    pub fn n_elements(&self) -> usize {
        self.elements.len()
    }

    pub fn n_hanging(&self) -> usize {
        self.constraints.len()
    }

    // lint:hot-path — hanging-node fold/interpolate run on every vector in
    // every step (and inside CG); they may not allocate or branch on
    // anything nondeterministic.
    /// Fold hanging entries of a force-like vector into their masters
    /// (`f <- B^T f`); hanging entries are zeroed. `ncomp` components per
    /// node, node-major (`dof = ncomp*node + comp`).
    pub fn fold_hanging(&self, f: &mut [f64], ncomp: usize) {
        assert_eq!(f.len(), self.n_nodes() * ncomp);
        for c in &self.constraints {
            for comp in 0..ncomp {
                let v = f[c.node as usize * ncomp + comp];
                if v != 0.0 {
                    for &(m, w) in &c.masters {
                        f[m as usize * ncomp + comp] += w * v;
                    }
                }
                f[c.node as usize * ncomp + comp] = 0.0;
            }
        }
    }

    /// Fold hanging entries of a *diagonal* (squared weights):
    /// `diag(B^T A B) = A_mm + sum_h w_hm^2 A_hh`. Hanging entries are set
    /// to 1 so they can never produce a division by zero.
    pub fn fold_hanging_diag(&self, diag: &mut [f64], ncomp: usize) {
        assert_eq!(diag.len(), self.n_nodes() * ncomp);
        for c in &self.constraints {
            for comp in 0..ncomp {
                let v = diag[c.node as usize * ncomp + comp];
                for &(m, w) in &c.masters {
                    diag[m as usize * ncomp + comp] += w * w * v;
                }
                diag[c.node as usize * ncomp + comp] = 1.0;
            }
        }
    }

    /// Interpolate hanging values from their masters (`u <- B u_bar`).
    pub fn interpolate_hanging(&self, u: &mut [f64], ncomp: usize) {
        assert_eq!(u.len(), self.n_nodes() * ncomp);
        for c in &self.constraints {
            for comp in 0..ncomp {
                let mut v = 0.0;
                for &(m, w) in &c.masters {
                    v += w * u[m as usize * ncomp + comp];
                }
                u[c.node as usize * ncomp + comp] = v;
            }
        }
    }

    /// [`fold_hanging`](Self::fold_hanging) for planar (structure-of-arrays)
    /// storage: component planes of `n_nodes` values each, `dof = comp *
    /// n_nodes + node`. Per-dof arithmetic and accumulation order are
    /// identical to the node-major variant — only the indexing differs — so
    /// each dof's result is bit-identical to folding the interleaved vector.
    pub fn fold_hanging_planar(&self, f: &mut [f64], ncomp: usize) {
        let n = self.n_nodes();
        assert_eq!(f.len(), n * ncomp);
        for c in &self.constraints {
            for comp in 0..ncomp {
                let v = f[comp * n + c.node as usize];
                if v != 0.0 {
                    for &(m, w) in &c.masters {
                        f[comp * n + m as usize] += w * v;
                    }
                }
                f[comp * n + c.node as usize] = 0.0;
            }
        }
    }

    /// [`interpolate_hanging`](Self::interpolate_hanging) for planar
    /// (structure-of-arrays) storage (`dof = comp * n_nodes + node`).
    pub fn interpolate_hanging_planar(&self, u: &mut [f64], ncomp: usize) {
        let n = self.n_nodes();
        assert_eq!(u.len(), n * ncomp);
        for c in &self.constraints {
            for comp in 0..ncomp {
                let mut v = 0.0;
                for &(m, w) in &c.masters {
                    v += w * u[comp * n + m as usize];
                }
                u[comp * n + c.node as usize] = v;
            }
        }
    }
    // lint:hot-path-end

    /// Node id nearest to a physical point (for receiver placement).
    pub fn nearest_node(&self, p: [f64; 3]) -> u32 {
        let mut best = 0u32;
        let mut best_d = f64::INFINITY;
        for (i, c) in self.coords.iter().enumerate() {
            let d = (c[0] - p[0]).powi(2) + (c[1] - p[1]).powi(2) + (c[2] - p[2]).powi(2);
            if d < best_d && !self.hanging[i] {
                best_d = d;
                best = i as u32;
            }
        }
        best
    }

    /// The element containing a physical point, with the point's local
    /// reference coordinates in `[0,1]^3`.
    pub fn locate(&self, tree: &LinearOctree, p: [f64; 3]) -> Option<(u32, [f64; 3])> {
        if p.iter().any(|&v| v < 0.0 || v > self.domain_size) {
            return None;
        }
        let g = GRID as f64 / self.domain_size;
        let to_grid = |v: f64| -> u32 { ((v * g).floor().max(0.0) as u32).min(GRID - 1) };
        let idx = tree.find_containing_index(to_grid(p[0]), to_grid(p[1]), to_grid(p[2]))?;
        let e = &self.elements[idx];
        let lo = self.coords[e.nodes[0] as usize];
        let xi = [
            ((p[0] - lo[0]) / e.h).clamp(0.0, 1.0),
            ((p[1] - lo[1]) / e.h).clamp(0.0, 1.0),
            ((p[2] - lo[2]) / e.h).clamp(0.0, 1.0),
        ];
        Some((idx as u32, xi))
    }

    /// Estimated solver memory per grid point in bytes (for the
    /// hex-vs-tet memory comparison): the hex solver stores only nodal
    /// vectors plus per-element scalars.
    pub fn memory_estimate_bytes(&self, ncomp: usize) -> usize {
        // 3 state vectors + mass/damping diagonals + force, ncomp each.
        let per_node = 8 * ncomp * 6;
        let per_elem = 8 * 4 + 4 * 8 + 8; // materials + node ids + h
        self.n_nodes() * per_node + self.n_elements() * per_elem
    }
}

/// Grid coordinates of corner `c` of octant `o`.
fn corner(o: &Octant, c: usize) -> [u32; 3] {
    let s = o.size();
    [
        o.x + if c & 1 != 0 { s } else { 0 },
        o.y + if c & 2 != 0 { s } else { 0 },
        o.z + if c & 4 != 0 { s } else { 0 },
    ]
}

fn node_key(c: [u32; 3]) -> u64 {
    morton_encode(c[0], c[1], c[2])
}

/// If node `p` is hanging, return its (first-level) masters with weights.
///
/// `p` hangs iff some incident leaf does not have it as a corner; it then
/// sits at an edge midpoint (2 masters, 1/2 each) or face center (4 masters,
/// 1/4 each) of the *coarsest* such leaf.
fn hanging_masters(
    tree: &LinearOctree,
    p: [u32; 3],
    node_id: &impl Fn(u64) -> u32,
) -> Option<Vec<(u32, f64)>> {
    let mut coarsest: Option<&Octant> = None;
    for dz in 0..2u32 {
        for dy in 0..2u32 {
            for dx in 0..2u32 {
                if dx > p[0] || dy > p[1] || dz > p[2] {
                    continue;
                }
                let q = (p[0] - dx, p[1] - dy, p[2] - dz);
                if q.0 >= GRID || q.1 >= GRID || q.2 >= GRID {
                    continue;
                }
                let Some(leaf) = tree.find_containing(q.0, q.1, q.2) else { continue };
                let s = leaf.size();
                let is_corner = (p[0] == leaf.x || p[0] == leaf.x + s)
                    && (p[1] == leaf.y || p[1] == leaf.y + s)
                    && (p[2] == leaf.z || p[2] == leaf.z + s);
                if !is_corner && coarsest.is_none_or(|c| leaf.level < c.level) {
                    coarsest = Some(leaf);
                }
            }
        }
    }
    let leaf = coarsest?;
    let s = leaf.size();
    let rel = [p[0] - leaf.x, p[1] - leaf.y, p[2] - leaf.z];
    let mut mid_axes = Vec::new();
    for (a, &r) in rel.iter().enumerate() {
        if r == s / 2 {
            mid_axes.push(a);
        } else {
            assert!(r == 0 || r == s, "node off the half-grid of a balanced tree");
        }
    }
    match mid_axes.len() {
        1 => {
            // Edge midpoint: endpoints along the mid axis.
            let a = mid_axes[0];
            let mut m = Vec::with_capacity(2);
            for v in [0, s] {
                let mut q = [leaf.x + rel[0], leaf.y + rel[1], leaf.z + rel[2]];
                q[a] = [leaf.x, leaf.y, leaf.z][a] + v;
                m.push((node_id(node_key(q)), 0.5));
            }
            Some(m)
        }
        2 => {
            // Face center: the four face corners.
            let (a, b) = (mid_axes[0], mid_axes[1]);
            let lo = [leaf.x, leaf.y, leaf.z];
            let mut m = Vec::with_capacity(4);
            for va in [0, s] {
                for vb in [0, s] {
                    let mut q = [leaf.x + rel[0], leaf.y + rel[1], leaf.z + rel[2]];
                    q[a] = lo[a] + va;
                    q[b] = lo[b] + vb;
                    m.push((node_id(node_key(q)), 0.25));
                }
            }
            Some(m)
        }
        n => panic!("impossible hanging-node configuration with {n} mid axes"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quake_octree::MAX_LEVEL;

    fn mat(_x: f64, _y: f64, _z: f64, _h: f64) -> ElemMaterial {
        ElemMaterial { lambda: 1.0, mu: 1.0, rho: 1.0 }
    }

    fn one_refined() -> (LinearOctree, HexMesh) {
        let t = LinearOctree::build(|o| {
            o.level == 0 || (o.level == 1 && o.x == 0 && o.y == 0 && o.z == 0)
        });
        let m = HexMesh::from_octree(&t, 100.0, mat);
        (t, m)
    }

    #[test]
    fn known_two_level_mesh_counts() {
        let (_, m) = one_refined();
        assert_eq!(m.n_elements(), 15);
        assert_eq!(m.n_nodes(), 46);
        assert_eq!(m.n_hanging(), 12);
        // All six domain boundaries are present.
        for face in 0..6u8 {
            assert!(m.boundary_faces.iter().any(|b| b.face == face));
        }
    }

    #[test]
    fn uniform_mesh_counts_and_no_constraints() {
        let t = LinearOctree::uniform(2);
        let m = HexMesh::from_octree(&t, 80.0, mat);
        assert_eq!(m.n_elements(), 64);
        assert_eq!(m.n_nodes(), 125);
        assert_eq!(m.n_hanging(), 0);
        // 4x4 faces on each of the 6 sides.
        assert_eq!(m.boundary_faces.len(), 6 * 16);
        // Element sizes all equal domain/4.
        for e in &m.elements {
            assert!((e.h - 20.0).abs() < 1e-12);
        }
    }

    #[test]
    fn hanging_interpolation_reproduces_linear_fields() {
        // The defining property of the constraints: a globally linear field
        // restricted to the regular nodes interpolates *exactly* at hanging
        // nodes. Use a deeper adaptive tree including constraint chains.
        let half = 1u32 << (MAX_LEVEL - 1);
        let mut t = LinearOctree::build(|o| o.level < 4 && o.contains_point(half, half, half));
        t.balance(BalanceMode::Full);
        let m = HexMesh::from_octree(&t, 1.0, mat);
        assert!(m.n_hanging() > 0);
        let f = |p: [f64; 3]| 3.0 * p[0] - 2.0 * p[1] + 0.5 * p[2] + 7.0;
        let mut u: Vec<f64> = m.coords.iter().map(|&c| f(c)).collect();
        // Scribble on the hanging entries, then restore by interpolation.
        for c in &m.constraints {
            u[c.node as usize] = -999.0;
        }
        m.interpolate_hanging(&mut u, 1);
        for (i, c) in m.coords.iter().enumerate() {
            assert!((u[i] - f(*c)).abs() < 1e-9, "node {i} at {c:?}: {} vs {}", u[i], f(*c));
        }
    }

    #[test]
    fn fold_and_interpolate_are_adjoint() {
        let (_, m) = one_refined();
        let n = m.n_nodes();
        // Deterministic pseudo-random vectors.
        let mut s = 1234567u64;
        let mut rnd = || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let f: Vec<f64> = (0..n).map(|_| rnd()).collect();
        let mut ub: Vec<f64> = (0..n).map(|_| rnd()).collect();
        // u_bar lives on regular nodes: zero hanging entries.
        for c in &m.constraints {
            ub[c.node as usize] = 0.0;
        }
        // <B^T f, u_bar> == <f, B u_bar>.
        let mut ftf = f.clone();
        m.fold_hanging(&mut ftf, 1);
        let lhs: f64 = ftf.iter().zip(&ub).map(|(a, b)| a * b).sum();
        let mut bu = ub.clone();
        m.interpolate_hanging(&mut bu, 1);
        let rhs: f64 = f.iter().zip(&bu).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-12 * (1.0 + lhs.abs()), "{lhs} vs {rhs}");
    }

    #[test]
    fn planar_fold_and_interpolate_match_interleaved_bitwise() {
        let (_, m) = one_refined();
        let n = m.n_nodes();
        let ncomp = 3;
        let mut s = 987654321u64;
        let mut rnd = || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let inter: Vec<f64> = (0..n * ncomp).map(|_| rnd()).collect();
        // Planar copy of the same field: dof = comp * n + node.
        let mut planar = vec![0.0; n * ncomp];
        for nd in 0..n {
            for c in 0..ncomp {
                planar[c * n + nd] = inter[nd * ncomp + c];
            }
        }
        let mut fi = inter.clone();
        let mut fp = planar.clone();
        m.fold_hanging(&mut fi, ncomp);
        m.fold_hanging_planar(&mut fp, ncomp);
        for nd in 0..n {
            for c in 0..ncomp {
                assert_eq!(fi[nd * ncomp + c].to_bits(), fp[c * n + nd].to_bits());
            }
        }
        let mut ui = inter;
        let mut up = planar;
        m.interpolate_hanging(&mut ui, ncomp);
        m.interpolate_hanging_planar(&mut up, ncomp);
        for nd in 0..n {
            for c in 0..ncomp {
                assert_eq!(ui[nd * ncomp + c].to_bits(), up[c * n + nd].to_bits());
            }
        }
    }

    #[test]
    fn fold_diag_uses_squared_weights() {
        let (_, m) = one_refined();
        let n = m.n_nodes();
        let mut diag = vec![2.0; n];
        m.fold_hanging_diag(&mut diag, 1);
        // An edge-hanging node contributes 0.25 * 2.0 to each of 2 masters;
        // face-hanging 0.0625 * 2.0 to each of 4. Every master got >= 2.0.
        for c in &m.constraints {
            assert_eq!(diag[c.node as usize], 1.0);
            for &(mst, _) in &c.masters {
                assert!(diag[mst as usize] > 2.0);
            }
        }
    }

    #[test]
    fn locate_finds_containing_element() {
        let (t, m) = one_refined();
        let (ei, xi) = m.locate(&t, [10.0, 10.0, 10.0]).unwrap();
        let e = &m.elements[ei as usize];
        assert!((e.h - 25.0).abs() < 1e-9, "should land in a fine element");
        for v in xi {
            assert!((0.0..=1.0).contains(&v));
        }
        // Interpolating node coordinates at xi recovers the point.
        let n = quake_fem_shape(xi);
        let mut p = [0.0; 3];
        for (c, w) in e.nodes.iter().zip(&n) {
            for d in 0..3 {
                p[d] += w * m.coords[*c as usize][d];
            }
        }
        for d in 0..3 {
            assert!((p[d] - 10.0).abs() < 1e-9);
        }
    }

    // Minimal local copy of the trilinear shape functions to avoid a test
    // dependency cycle.
    fn quake_fem_shape(xi: [f64; 3]) -> [f64; 8] {
        let mut n = [0.0; 8];
        for (i, ni) in n.iter_mut().enumerate() {
            let fx = if i & 1 == 0 { 1.0 - xi[0] } else { xi[0] };
            let fy = if (i >> 1) & 1 == 0 { 1.0 - xi[1] } else { xi[1] };
            let fz = if (i >> 2) & 1 == 0 { 1.0 - xi[2] } else { xi[2] };
            *ni = fx * fy * fz;
        }
        n
    }

    #[test]
    fn mesh_agrees_with_etree_transform_counts() {
        // Differential test: the in-core mesher and the out-of-core etree
        // transform must agree on element/node/hanging counts.
        use quake_etree::{EtreePipeline, MaterialRec, MemStore, PipelineStats};
        let half = 1u32 << (MAX_LEVEL - 1);
        let refine = |o: &Octant| o.level < 4 && o.contains_point(half, half, 0);
        let mut t = LinearOctree::build(refine);
        t.balance(BalanceMode::Full);
        let m = HexMesh::from_octree(&t, 1.0, mat);

        let dir = std::env::temp_dir().join(format!("quake-mesh-etree-{}", std::process::id()));
        let mut store = MemStore::new();
        let p = EtreePipeline::default();
        let mut stats = PipelineStats::default();
        p.construct(&mut store, refine, |_| MaterialRec::default(), &mut stats).unwrap();
        p.balance(&mut store, |_| MaterialRec::default(), &mut stats).unwrap();
        let db = p.transform(&mut store, &dir, &mut stats).unwrap();
        assert_eq!(db.n_elements as usize, m.n_elements());
        assert_eq!(db.n_nodes as usize, m.n_nodes());
        assert_eq!(db.n_hanging as usize, m.n_hanging());
        std::fs::remove_dir_all(dir).unwrap();
    }
}
