//! Node-disjoint element coloring for race-free parallel assembly.
//!
//! The explicit step scatters each element's 24 force contributions into the
//! global rhs through its 8 corner nodes. Two elements that share no node can
//! scatter concurrently without synchronization, so we greedily partition the
//! elements into *colors* such that within one color all corner-node sets are
//! pairwise disjoint. The solver then runs color-by-color: a barrier between
//! colors, free parallelism inside one.
//!
//! Because each node is written by at most one element per color, the sum
//! order at every node is fixed by the coloring alone — a threaded sweep over
//! a color produces bit-identical results to the serial color-major sweep,
//! regardless of thread count or schedule.

use crate::hexmesh::HexMesh;

/// A node-disjoint coloring of an element subset, stored color-major.
#[derive(Clone, Debug)]
pub struct ElementColoring {
    /// Element ids grouped by color; within a color, ascending id (Morton)
    /// order.
    pub order: Vec<u32>,
    /// Half-open ranges into `order`: color `c` is
    /// `order[offsets[c]..offsets[c+1]]`.
    pub offsets: Vec<usize>,
}

impl ElementColoring {
    pub fn n_colors(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// The element ids of color `c`.
    pub fn color(&self, c: usize) -> &[u32] {
        &self.order[self.offsets[c]..self.offsets[c + 1]]
    }

    /// Iterate the colors as slices of element ids.
    pub fn colors(&self) -> impl Iterator<Item = &[u32]> {
        (0..self.n_colors()).map(move |c| self.color(c))
    }
}

/// Greedy first-fit coloring of `elems` (a subset of `mesh` element ids, in
/// ascending order) such that no two elements of one color share a corner
/// node. Deterministic; a 2-to-1 balanced hex mesh needs ~8-16 colors (up to
/// 8 same-size elements meet at a regular node), far below the 128-color cap.
pub fn color_elements(mesh: &HexMesh, elems: &[u32]) -> ElementColoring {
    let mut node_mask = vec![0u128; mesh.coords.len()];
    let mut colors = Vec::with_capacity(elems.len());
    let mut n_colors = 0usize;
    for &e in elems {
        let nodes = mesh.elements[e as usize].nodes;
        let mut used: u128 = 0;
        for &n in &nodes {
            used |= node_mask[n as usize];
        }
        let c = (!used).trailing_zeros() as usize;
        assert!(c < 128, "element coloring exceeded 128 colors");
        for &n in &nodes {
            node_mask[n as usize] |= 1u128 << c;
        }
        n_colors = n_colors.max(c + 1);
        colors.push(c);
    }

    // Bucket color-major, keeping ascending element order within each color.
    let mut offsets = vec![0usize; n_colors + 1];
    for &c in &colors {
        offsets[c + 1] += 1;
    }
    for i in 1..=n_colors {
        offsets[i] += offsets[i - 1];
    }
    let mut cursor = offsets.clone();
    let mut order = vec![0u32; elems.len()];
    for (i, &e) in elems.iter().enumerate() {
        let c = colors[i];
        order[cursor[c]] = e;
        cursor[c] += 1;
    }
    ElementColoring { order, offsets }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hexmesh::ElemMaterial;
    use quake_octree::{BalanceMode, LinearOctree, MAX_LEVEL};

    fn mat(_: f64, _: f64, _: f64, _: f64) -> ElemMaterial {
        ElemMaterial { lambda: 2.0, mu: 1.0, rho: 1.0 }
    }

    fn check_valid(mesh: &HexMesh, elems: &[u32], coloring: &ElementColoring) {
        // Permutation of the input subset.
        let mut sorted = coloring.order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, elems);
        // Node-disjoint within each color.
        let mut owner = vec![u32::MAX; mesh.coords.len()];
        for color in coloring.colors() {
            owner.iter_mut().for_each(|o| *o = u32::MAX);
            for &e in color {
                for &n in &mesh.elements[e as usize].nodes {
                    assert_eq!(owner[n as usize], u32::MAX, "node {n} shared within a color");
                    owner[n as usize] = e;
                }
            }
        }
    }

    #[test]
    fn uniform_mesh_coloring_is_valid_and_compact() {
        let mesh = HexMesh::from_octree(&LinearOctree::uniform(3), 8.0, mat);
        let elems: Vec<u32> = (0..mesh.elements.len() as u32).collect();
        let c = color_elements(&mesh, &elems);
        check_valid(&mesh, &elems, &c);
        // A uniform grid 8-colors like a 3-D checkerboard.
        assert_eq!(c.n_colors(), 8);
    }

    #[test]
    fn hanging_node_mesh_coloring_is_valid() {
        let half = 1u32 << (MAX_LEVEL - 1);
        let mut tree = LinearOctree::build(|o| o.level < 3 || (o.level < 4 && o.x < half));
        tree.balance(BalanceMode::Full);
        let mesh = HexMesh::from_octree(&tree, 8.0, mat);
        let elems: Vec<u32> = (0..mesh.elements.len() as u32).collect();
        let c = color_elements(&mesh, &elems);
        check_valid(&mesh, &elems, &c);
        assert!(c.n_colors() <= 32, "unexpectedly many colors: {}", c.n_colors());
    }

    #[test]
    fn subset_coloring_is_valid() {
        let mesh = HexMesh::from_octree(&LinearOctree::uniform(3), 8.0, mat);
        let elems: Vec<u32> = (0..mesh.elements.len() as u32).filter(|e| e % 3 != 0).collect();
        let c = color_elements(&mesh, &elems);
        check_valid(&mesh, &elems, &c);
    }
}
