//! Mesh summaries (the numbers behind Fig 2.3 and the etree table).

use crate::hexmesh::HexMesh;
use quake_octree::level_histogram_of;
use quake_telemetry::Registry;

/// Aggregate statistics of a hexahedral mesh.
#[derive(Clone, Debug)]
pub struct MeshStats {
    pub n_elements: usize,
    pub n_nodes: usize,
    pub n_hanging: usize,
    pub hanging_fraction: f64,
    /// Elements per octree level (index = level).
    pub level_histogram: Vec<usize>,
    pub h_min: f64,
    pub h_max: f64,
    pub vs_min: f64,
    pub vs_max: f64,
    /// Solver memory estimate for a 3-component field (bytes).
    pub memory_bytes: usize,
}

impl MeshStats {
    pub fn compute(mesh: &HexMesh) -> MeshStats {
        let level_histogram = level_histogram_of(mesh.elements.iter().map(|e| e.level));
        let (mut h_min, mut h_max) = (f64::INFINITY, 0.0f64);
        let (mut vs_min, mut vs_max) = (f64::INFINITY, 0.0f64);
        for e in &mesh.elements {
            h_min = h_min.min(e.h);
            h_max = h_max.max(e.h);
            let vs = e.material.vs();
            vs_min = vs_min.min(vs);
            vs_max = vs_max.max(vs);
        }
        MeshStats {
            n_elements: mesh.n_elements(),
            n_nodes: mesh.n_nodes(),
            n_hanging: mesh.n_hanging(),
            hanging_fraction: mesh.n_hanging() as f64 / mesh.n_nodes().max(1) as f64,
            level_histogram,
            h_min,
            h_max,
            vs_min,
            vs_max,
            memory_bytes: mesh.memory_estimate_bytes(3),
        }
    }

    /// Export the statistics into a telemetry registry: `mesh/...` counters
    /// for the integer sizes (including one `mesh/level<L>/elements` counter
    /// per populated octree level) and gauges for the continuous ranges.
    pub fn record(&self, reg: &Registry) {
        if !reg.is_enabled() {
            return;
        }
        for (k, v) in [
            ("mesh/elements", self.n_elements),
            ("mesh/nodes", self.n_nodes),
            ("mesh/hanging", self.n_hanging),
            ("mesh/memory_bytes", self.memory_bytes),
        ] {
            reg.set(k, v as u64);
        }
        for (level, &n) in self.level_histogram.iter().enumerate() {
            if n > 0 {
                reg.set(&format!("mesh/level{level}/elements"), n as u64);
            }
        }
        reg.gauge("mesh/hanging_fraction", self.hanging_fraction);
        reg.gauge("mesh/h_min", self.h_min);
        reg.gauge("mesh/h_max", self.h_max);
        reg.gauge("mesh/vs_min", self.vs_min);
        reg.gauge("mesh/vs_max", self.vs_max);
    }

    /// Multi-line human-readable report.
    pub fn report(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "elements {}  nodes {}  hanging {} ({:.1}%)\n",
            self.n_elements,
            self.n_nodes,
            self.n_hanging,
            100.0 * self.hanging_fraction
        ));
        s.push_str(&format!(
            "h: {:.1} .. {:.1} m   vs: {:.0} .. {:.0} m/s   mem ~ {:.1} MB\n",
            self.h_min,
            self.h_max,
            self.vs_min,
            self.vs_max,
            self.memory_bytes as f64 / 1e6
        ));
        for (level, n) in self.level_histogram.iter().enumerate() {
            if *n > 0 {
                s.push_str(&format!("  level {level:2}: {n} elements\n"));
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hexmesh::ElemMaterial;
    use quake_octree::LinearOctree;

    #[test]
    fn stats_of_uniform_mesh() {
        let m = HexMesh::from_octree(&LinearOctree::uniform(2), 100.0, |_, _, _, _| ElemMaterial {
            lambda: 2e9,
            mu: 1e9,
            rho: 2000.0,
        });
        let s = MeshStats::compute(&m);
        assert_eq!(s.n_elements, 64);
        assert_eq!(s.n_nodes, 125);
        assert_eq!(s.level_histogram, vec![0, 0, 64]);
        assert!((s.h_min - 25.0).abs() < 1e-12);
        assert_eq!(s.h_min, s.h_max);
        assert!((s.vs_min - (1e9f64 / 2000.0).sqrt()).abs() < 1e-9);
        assert!(s.report().contains("level  2: 64 elements"));
    }

    #[test]
    fn stats_and_octree_share_one_histogram() {
        // The mesh's per-level counts must be the octree's (identity mesh:
        // one element per leaf), now that both go through the same routine.
        let tree = LinearOctree::uniform(2);
        let m = HexMesh::from_octree(&tree, 100.0, |_, _, _, _| ElemMaterial {
            lambda: 2e9,
            mu: 1e9,
            rho: 2000.0,
        });
        assert_eq!(MeshStats::compute(&m).level_histogram, tree.level_histogram());
    }

    #[test]
    fn stats_record_into_registry() {
        let m = HexMesh::from_octree(&LinearOctree::uniform(2), 100.0, |_, _, _, _| ElemMaterial {
            lambda: 2e9,
            mu: 1e9,
            rho: 2000.0,
        });
        let s = MeshStats::compute(&m);
        let reg = quake_telemetry::Registry::new(0);
        s.record(&reg);
        assert_eq!(reg.counter("mesh/elements"), Some(64));
        assert_eq!(reg.counter("mesh/nodes"), Some(125));
        assert_eq!(reg.counter("mesh/level2/elements"), Some(64));
        assert_eq!(reg.counter("mesh/level1/elements"), None, "empty levels stay unrecorded");
        assert_eq!(reg.gauge_value("mesh/h_min"), Some(25.0));
    }
}
