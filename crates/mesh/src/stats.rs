//! Mesh summaries (the numbers behind Fig 2.3 and the etree table).

use crate::hexmesh::HexMesh;

/// Aggregate statistics of a hexahedral mesh.
#[derive(Clone, Debug)]
pub struct MeshStats {
    pub n_elements: usize,
    pub n_nodes: usize,
    pub n_hanging: usize,
    pub hanging_fraction: f64,
    /// Elements per octree level (index = level).
    pub level_histogram: Vec<usize>,
    pub h_min: f64,
    pub h_max: f64,
    pub vs_min: f64,
    pub vs_max: f64,
    /// Solver memory estimate for a 3-component field (bytes).
    pub memory_bytes: usize,
}

impl MeshStats {
    pub fn compute(mesh: &HexMesh) -> MeshStats {
        let mut level_histogram = Vec::new();
        let (mut h_min, mut h_max) = (f64::INFINITY, 0.0f64);
        let (mut vs_min, mut vs_max) = (f64::INFINITY, 0.0f64);
        for e in &mesh.elements {
            if level_histogram.len() <= e.level as usize {
                level_histogram.resize(e.level as usize + 1, 0);
            }
            level_histogram[e.level as usize] += 1;
            h_min = h_min.min(e.h);
            h_max = h_max.max(e.h);
            let vs = e.material.vs();
            vs_min = vs_min.min(vs);
            vs_max = vs_max.max(vs);
        }
        MeshStats {
            n_elements: mesh.n_elements(),
            n_nodes: mesh.n_nodes(),
            n_hanging: mesh.n_hanging(),
            hanging_fraction: mesh.n_hanging() as f64 / mesh.n_nodes().max(1) as f64,
            level_histogram,
            h_min,
            h_max,
            vs_min,
            vs_max,
            memory_bytes: mesh.memory_estimate_bytes(3),
        }
    }

    /// Multi-line human-readable report.
    pub fn report(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "elements {}  nodes {}  hanging {} ({:.1}%)\n",
            self.n_elements,
            self.n_nodes,
            self.n_hanging,
            100.0 * self.hanging_fraction
        ));
        s.push_str(&format!(
            "h: {:.1} .. {:.1} m   vs: {:.0} .. {:.0} m/s   mem ~ {:.1} MB\n",
            self.h_min,
            self.h_max,
            self.vs_min,
            self.vs_max,
            self.memory_bytes as f64 / 1e6
        ));
        for (level, n) in self.level_histogram.iter().enumerate() {
            if *n > 0 {
                s.push_str(&format!("  level {level:2}: {n} elements\n"));
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hexmesh::ElemMaterial;
    use quake_octree::LinearOctree;

    #[test]
    fn stats_of_uniform_mesh() {
        let m = HexMesh::from_octree(&LinearOctree::uniform(2), 100.0, |_, _, _, _| ElemMaterial {
            lambda: 2e9,
            mu: 1e9,
            rho: 2000.0,
        });
        let s = MeshStats::compute(&m);
        assert_eq!(s.n_elements, 64);
        assert_eq!(s.n_nodes, 125);
        assert_eq!(s.level_histogram, vec![0, 0, 64]);
        assert!((s.h_min - 25.0).abs() < 1e-12);
        assert_eq!(s.h_min, s.h_max);
        assert!((s.vs_min - (1e9f64 / 2000.0).sqrt()).abs() < 1e-9);
        assert!(s.report().contains("level  2: 64 elements"));
    }
}
