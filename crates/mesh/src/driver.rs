//! Model-driven wavelength-adaptive meshing.
//!
//! This is the front door used by the solvers and benchmarks: give it a
//! material model plus `(fmax, points-per-wavelength)` and it returns the
//! balanced octree and the finite-element mesh, with element materials
//! sampled at element centers.

use crate::hexmesh::{ElemMaterial, HexMesh};
use quake_model::MaterialModel;
use quake_octree::adapt::{build_wavelength_adaptive, AdaptParams};
use quake_octree::LinearOctree;

/// Meshing parameters (paper defaults: 10 points per wavelength).
#[derive(Clone, Copy, Debug)]
pub struct MeshingParams {
    /// Physical edge of the cubic domain (m).
    pub domain_size: f64,
    /// Highest resolved frequency (Hz).
    pub fmax: f64,
    /// Grid points per shortest wavelength.
    pub points_per_wavelength: f64,
    /// Octree depth bounds.
    pub min_level: u8,
    pub max_level: u8,
}

impl MeshingParams {
    pub fn new(domain_size: f64, fmax: f64) -> MeshingParams {
        MeshingParams {
            domain_size,
            fmax,
            points_per_wavelength: 10.0,
            min_level: 2,
            max_level: 10,
        }
    }
}

/// Build the wavelength-adaptive octree and mesh for a material model.
pub fn mesh_from_model(
    params: &MeshingParams,
    model: &impl MaterialModel,
) -> (LinearOctree, HexMesh) {
    let adapt = AdaptParams {
        domain_size: params.domain_size,
        fmax: params.fmax,
        points_per_wavelength: params.points_per_wavelength,
        max_level: params.max_level,
        min_level: params.min_level,
    };
    let tree = build_wavelength_adaptive(&adapt, |o, l| {
        let c = o.corner_unit();
        let s = o.size_unit();
        let lo = [c[0] * l, c[1] * l, c[2] * l];
        let hi = [(c[0] + s) * l, (c[1] + s) * l, (c[2] + s) * l];
        model.min_vs_in_box(lo, hi)
    });
    let mesh = HexMesh::from_octree(&tree, params.domain_size, |x, y, z, _h| {
        let m = model.sample(x, y, z);
        ElemMaterial { lambda: m.lambda(), mu: m.mu(), rho: m.rho }
    });
    (tree, mesh)
}

#[cfg(test)]
mod tests {
    use super::*;
    use quake_model::{layer_over_halfspace, HomogeneousModel, Material};

    #[test]
    fn homogeneous_model_meshes_uniformly() {
        let model = HomogeneousModel(Material::new(4000.0, 2000.0, 2500.0));
        let p = MeshingParams {
            domain_size: 5_000.0,
            fmax: 0.5,
            points_per_wavelength: 10.0,
            min_level: 1,
            max_level: 6,
        };
        // target h = 2000 / 5 = 400 m -> level 4 (h = 312.5).
        let (tree, mesh) = mesh_from_model(&p, &model);
        assert!(tree.leaves().iter().all(|o| o.level == 4));
        assert_eq!(mesh.n_elements(), 4_096);
        assert_eq!(mesh.n_hanging(), 0);
        let e = &mesh.elements[0];
        assert!((e.material.vs() - 2000.0).abs() < 1e-9);
        assert!((e.material.vp() - 4000.0).abs() < 1e-9);
    }

    #[test]
    fn layered_model_refines_the_soft_layer() {
        let soft = Material::new(1500.0, 600.0, 1900.0);
        let stiff = Material::new(5000.0, 2800.0, 2600.0);
        let model = layer_over_halfspace(1_000.0, soft, stiff);
        let p = MeshingParams {
            domain_size: 5_000.0,
            fmax: 0.3,
            points_per_wavelength: 10.0,
            min_level: 1,
            max_level: 7,
        };
        let (tree, mesh) = mesh_from_model(&p, &model);
        // Soft layer wants h <= 200 -> level 5 (156 m); halfspace h <= 933
        // -> level 3 (625 m).
        assert_eq!(tree.max_level(), 5);
        assert!(mesh.n_hanging() > 0, "layer transition must create hanging nodes");
        // Shallow elements are soft, deep elements stiff.
        for e in &mesh.elements {
            let z_top = mesh.coords[e.nodes[0] as usize][2];
            if z_top + e.h < 1_000.0 {
                assert!((e.material.vs() - 600.0).abs() < 1e-9);
                assert_eq!(e.level, 5);
            }
            if z_top > 1_700.0 {
                assert!((e.material.vs() - 2800.0).abs() < 1e-9);
            }
        }
    }
}
