//! Octant stores: the abstraction the etree pipeline runs against.
//!
//! [`DiskStore`] is the real thing (octants + material records in the disk
//! B-tree); [`MemStore`] is an in-memory model used for tests, differential
//! testing of the disk engine, and for callers that know their tree fits in
//! RAM.

use crate::btree::BTree;
use quake_octree::{Octant, MAX_LEVEL};
use std::collections::BTreeMap;
use std::io;
use std::path::Path;

/// Material properties attached to each octant (what the paper's mesher
/// queries from the velocity model database).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MaterialRec {
    /// P-wave velocity (m/s).
    pub vp: f64,
    /// S-wave velocity (m/s).
    pub vs: f64,
    /// Density (kg/m^3).
    pub rho: f64,
}

impl MaterialRec {
    pub const ENCODED_SIZE: usize = 24;

    pub fn encode(&self) -> [u8; Self::ENCODED_SIZE] {
        let mut b = [0u8; Self::ENCODED_SIZE];
        b[..8].copy_from_slice(&self.vp.to_le_bytes());
        b[8..16].copy_from_slice(&self.vs.to_le_bytes());
        b[16..].copy_from_slice(&self.rho.to_le_bytes());
        b
    }

    pub fn decode(b: &[u8]) -> MaterialRec {
        assert_eq!(b.len(), Self::ENCODED_SIZE);
        MaterialRec {
            vp: f64::from_le_bytes(b[..8].try_into().unwrap()),
            vs: f64::from_le_bytes(b[8..16].try_into().unwrap()),
            rho: f64::from_le_bytes(b[16..24].try_into().unwrap()),
        }
    }
}

/// Keyed storage of octree leaves with material payloads.
pub trait OctantStore {
    fn insert(&mut self, oct: Octant, mat: MaterialRec) -> io::Result<()>;
    fn remove(&mut self, oct: &Octant) -> io::Result<bool>;
    fn get(&mut self, oct: &Octant) -> io::Result<Option<MaterialRec>>;
    /// Greatest entry with key `<= key`.
    fn floor(&mut self, key: u64) -> io::Result<Option<(Octant, MaterialRec)>>;
    /// In-order visit of entries with key in `[lo, hi]`.
    fn scan_range(
        &mut self,
        lo: u64,
        hi: u64,
        f: &mut dyn FnMut(Octant, MaterialRec),
    ) -> io::Result<()>;
    fn len(&self) -> u64;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The leaf containing a grid point (the tree must be a complete cover).
    fn find_containing(&mut self, p: (u32, u32, u32)) -> io::Result<Option<(Octant, MaterialRec)>> {
        // The containing leaf is the floor of the finest key at this point
        // (see quake-octree): any key between them would be a descendant of
        // the containing leaf, contradicting leaf disjointness.
        if p.0 >= quake_octree::morton::GRID
            || p.1 >= quake_octree::morton::GRID
            || p.2 >= quake_octree::morton::GRID
        {
            return Ok(None);
        }
        let key = Octant::new(p.0, p.1, p.2, MAX_LEVEL).key();
        match self.floor(key)? {
            Some((o, m)) if o.contains_point(p.0, p.1, p.2) => Ok(Some((o, m))),
            _ => Ok(None),
        }
    }

    /// Visit everything in key (Morton preorder) order.
    fn scan_all(&mut self, f: &mut dyn FnMut(Octant, MaterialRec)) -> io::Result<()> {
        self.scan_range(0, u64::MAX, f)
    }
}

/// In-memory store backed by a `BTreeMap`.
#[derive(Default)]
pub struct MemStore {
    map: BTreeMap<u64, MaterialRec>,
}

impl MemStore {
    pub fn new() -> MemStore {
        MemStore::default()
    }
}

impl OctantStore for MemStore {
    fn insert(&mut self, oct: Octant, mat: MaterialRec) -> io::Result<()> {
        self.map.insert(oct.key(), mat);
        Ok(())
    }

    fn remove(&mut self, oct: &Octant) -> io::Result<bool> {
        Ok(self.map.remove(&oct.key()).is_some())
    }

    fn get(&mut self, oct: &Octant) -> io::Result<Option<MaterialRec>> {
        Ok(self.map.get(&oct.key()).copied())
    }

    fn floor(&mut self, key: u64) -> io::Result<Option<(Octant, MaterialRec)>> {
        Ok(self.map.range(..=key).next_back().map(|(&k, &m)| (Octant::from_key(k), m)))
    }

    fn scan_range(
        &mut self,
        lo: u64,
        hi: u64,
        f: &mut dyn FnMut(Octant, MaterialRec),
    ) -> io::Result<()> {
        for (&k, &m) in self.map.range(lo..=hi) {
            f(Octant::from_key(k), m);
        }
        Ok(())
    }

    fn len(&self) -> u64 {
        self.map.len() as u64
    }
}

/// Disk-backed store: a [`BTree`] of material records keyed by locational
/// code.
pub struct DiskStore {
    tree: BTree,
}

impl DiskStore {
    pub fn create(path: &Path, cache_pages: usize) -> io::Result<DiskStore> {
        Ok(DiskStore { tree: BTree::create(path, MaterialRec::ENCODED_SIZE, cache_pages)? })
    }

    pub fn open(path: &Path, cache_pages: usize) -> io::Result<DiskStore> {
        let tree = BTree::open(path, cache_pages)?;
        if tree.value_size() != MaterialRec::ENCODED_SIZE {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "not an octant store"));
        }
        Ok(DiskStore { tree })
    }

    pub fn flush(&mut self) -> io::Result<()> {
        self.tree.flush()
    }

    pub fn io_stats(&self) -> crate::pager::PagerStats {
        self.tree.io_stats()
    }
}

impl OctantStore for DiskStore {
    fn insert(&mut self, oct: Octant, mat: MaterialRec) -> io::Result<()> {
        self.tree.insert(oct.key(), &mat.encode())?;
        Ok(())
    }

    fn remove(&mut self, oct: &Octant) -> io::Result<bool> {
        self.tree.remove(oct.key())
    }

    fn get(&mut self, oct: &Octant) -> io::Result<Option<MaterialRec>> {
        Ok(self.tree.get(oct.key())?.map(|v| MaterialRec::decode(&v)))
    }

    fn floor(&mut self, key: u64) -> io::Result<Option<(Octant, MaterialRec)>> {
        Ok(self.tree.floor(key)?.map(|(k, v)| (Octant::from_key(k), MaterialRec::decode(&v))))
    }

    fn scan_range(
        &mut self,
        lo: u64,
        hi: u64,
        f: &mut dyn FnMut(Octant, MaterialRec),
    ) -> io::Result<()> {
        self.tree.range_scan(lo, hi, |k, v| f(Octant::from_key(k), MaterialRec::decode(v)))
    }

    fn len(&self) -> u64 {
        self.tree.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quake_octree::LinearOctree;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("quake-etree-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("store-{}-{}", name, std::process::id()))
    }

    fn mat(i: u64) -> MaterialRec {
        MaterialRec { vp: 1000.0 + i as f64, vs: 500.0 + i as f64, rho: 2000.0 }
    }

    #[test]
    fn material_rec_roundtrip() {
        let m = MaterialRec { vp: 5500.0, vs: 3200.5, rho: 2700.25 };
        assert_eq!(MaterialRec::decode(&m.encode()), m);
    }

    #[test]
    fn mem_and_disk_agree_on_octree_workload() {
        let path = tmp("diff");
        let mut mem = MemStore::new();
        let mut disk = DiskStore::create(&path, 32).unwrap();
        let tree = LinearOctree::build(|o| o.level < 3);
        for (i, o) in tree.leaves().iter().enumerate() {
            mem.insert(*o, mat(i as u64)).unwrap();
            disk.insert(*o, mat(i as u64)).unwrap();
        }
        assert_eq!(mem.len(), disk.len());
        // Point location agrees everywhere on a sample of points.
        for p in [(0u32, 0u32, 0u32), (123_456, 7, 99_999), (1 << 18, 1 << 17, 3)] {
            let a = mem.find_containing(p).unwrap().unwrap();
            let b = disk.find_containing(p).unwrap().unwrap();
            assert_eq!(a, b);
        }
        // Remove + rescan agree.
        let victim = tree.leaves()[100];
        assert!(mem.remove(&victim).unwrap());
        assert!(disk.remove(&victim).unwrap());
        let mut a = Vec::new();
        let mut b = Vec::new();
        mem.scan_all(&mut |o, m| a.push((o, m))).unwrap();
        disk.scan_all(&mut |o, m| b.push((o, m))).unwrap();
        assert_eq!(a, b);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn find_containing_identifies_leaf() {
        let mut mem = MemStore::new();
        let tree = LinearOctree::build(|o| {
            o.level < 2 || (o.level < 4 && o.x == 0 && o.y == 0 && o.z == 0)
        });
        for o in tree.leaves() {
            mem.insert(*o, MaterialRec::default()).unwrap();
        }
        for o in tree.leaves() {
            let c = (o.x + o.size() / 2, o.y + o.size() / 2, o.z + o.size() / 2);
            let (found, _) = mem.find_containing(c).unwrap().unwrap();
            assert_eq!(&found, o);
        }
    }
}
