//! A disk B-tree with `u64` keys and fixed-size values.
//!
//! This is the primary-key index of the etree method: octants keyed by their
//! locational code. The tree is order-preserving (so Morton-ordered octant
//! scans are sequential leaf walks), supports `floor` queries (point location
//! = "greatest octant key <= key of the query point") and chained-leaf range
//! scans. Deletion is lazy (no page merging): the balance step deletes a
//! coarse octant and immediately inserts its eight children into the same key
//! neighborhood, so pages stay well filled in practice.

use crate::pager::{Pager, PagerStats, PAGE_SIZE};
use std::io;
use std::path::Path;

const MAGIC: &[u8; 8] = b"QETREE01";
const NIL: u32 = u32::MAX;
const TAG_INTERNAL: u8 = 0;
const TAG_LEAF: u8 = 1;
const HDR_ENTRIES_OFF: usize = 16;

/// Max keys in an internal node: layout is 16-byte header, keys, children.
const INTERNAL_MAX: usize = (PAGE_SIZE - 16 - 4) / 12;

fn leaf_max(value_size: usize) -> usize {
    (PAGE_SIZE - 16) / (8 + value_size)
}

struct Internal {
    keys: Vec<u64>,
    children: Vec<u32>,
}

struct Leaf {
    prev: u32,
    next: u32,
    entries: Vec<(u64, Vec<u8>)>,
}

enum Node {
    Internal(Internal),
    Leaf(Leaf),
}

/// Disk B-tree. See module docs.
pub struct BTree {
    pager: Pager,
    value_size: usize,
    root: u32,
    first_leaf: u32,
    count: u64,
}

impl BTree {
    /// Create a new tree at `path` with values of exactly `value_size` bytes.
    pub fn create(path: &Path, value_size: usize, cache_pages: usize) -> io::Result<BTree> {
        assert!(value_size > 0 && leaf_max(value_size) >= 4, "value_size {value_size} too large");
        let mut pager = Pager::create(path, cache_pages)?;
        let hdr = pager.allocate()?;
        debug_assert_eq!(hdr, 0);
        let root = pager.allocate()?;
        let mut t = BTree { pager, value_size, root, first_leaf: root, count: 0 };
        t.write_node(root, &Node::Leaf(Leaf { prev: NIL, next: NIL, entries: Vec::new() }))?;
        t.write_header()?;
        Ok(t)
    }

    /// Open an existing tree.
    pub fn open(path: &Path, cache_pages: usize) -> io::Result<BTree> {
        let mut pager = Pager::open(path, cache_pages)?;
        let hdr = pager.read(0)?;
        if &hdr[..8] != MAGIC {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "bad etree magic"));
        }
        let value_size = u32::from_le_bytes(hdr[8..12].try_into().unwrap()) as usize;
        let root = u32::from_le_bytes(hdr[12..16].try_into().unwrap());
        let count = u64::from_le_bytes(hdr[HDR_ENTRIES_OFF..24].try_into().unwrap());
        let first_leaf = u32::from_le_bytes(hdr[24..28].try_into().unwrap());
        Ok(BTree { pager, value_size, root, first_leaf, count })
    }

    pub fn len(&self) -> u64 {
        self.count
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    pub fn value_size(&self) -> usize {
        self.value_size
    }

    pub fn io_stats(&self) -> PagerStats {
        self.pager.stats()
    }

    fn write_header(&mut self) -> io::Result<()> {
        let mut page = Box::new([0u8; PAGE_SIZE]);
        page[..8].copy_from_slice(MAGIC);
        page[8..12].copy_from_slice(&(self.value_size as u32).to_le_bytes());
        page[12..16].copy_from_slice(&self.root.to_le_bytes());
        page[HDR_ENTRIES_OFF..24].copy_from_slice(&self.count.to_le_bytes());
        page[24..28].copy_from_slice(&self.first_leaf.to_le_bytes());
        self.pager.write(0, page)
    }

    /// Flush header and all dirty pages.
    pub fn flush(&mut self) -> io::Result<()> {
        self.write_header()?;
        self.pager.flush()
    }

    fn read_node(&mut self, id: u32) -> io::Result<Node> {
        let page = self.pager.read(id)?;
        let nkeys = u16::from_le_bytes(page[2..4].try_into().unwrap()) as usize;
        match page[0] {
            TAG_INTERNAL => {
                let mut keys = Vec::with_capacity(nkeys);
                let mut children = Vec::with_capacity(nkeys + 1);
                let koff = 16;
                let coff = 16 + INTERNAL_MAX * 8;
                for i in 0..nkeys {
                    keys.push(u64::from_le_bytes(
                        page[koff + 8 * i..koff + 8 * i + 8].try_into().unwrap(),
                    ));
                }
                for i in 0..=nkeys {
                    children.push(u32::from_le_bytes(
                        page[coff + 4 * i..coff + 4 * i + 4].try_into().unwrap(),
                    ));
                }
                Ok(Node::Internal(Internal { keys, children }))
            }
            TAG_LEAF => {
                let prev = u32::from_le_bytes(page[4..8].try_into().unwrap());
                let next = u32::from_le_bytes(page[8..12].try_into().unwrap());
                let stride = 8 + self.value_size;
                let mut entries = Vec::with_capacity(nkeys);
                for i in 0..nkeys {
                    let off = 16 + stride * i;
                    let key = u64::from_le_bytes(page[off..off + 8].try_into().unwrap());
                    entries.push((key, page[off + 8..off + stride].to_vec()));
                }
                Ok(Node::Leaf(Leaf { prev, next, entries }))
            }
            t => Err(io::Error::new(io::ErrorKind::InvalidData, format!("bad node tag {t}"))),
        }
    }

    fn write_node(&mut self, id: u32, node: &Node) -> io::Result<()> {
        let mut page = Box::new([0u8; PAGE_SIZE]);
        match node {
            Node::Internal(n) => {
                assert!(n.keys.len() <= INTERNAL_MAX);
                assert_eq!(n.children.len(), n.keys.len() + 1);
                page[0] = TAG_INTERNAL;
                page[2..4].copy_from_slice(&(n.keys.len() as u16).to_le_bytes());
                let koff = 16;
                let coff = 16 + INTERNAL_MAX * 8;
                for (i, k) in n.keys.iter().enumerate() {
                    page[koff + 8 * i..koff + 8 * i + 8].copy_from_slice(&k.to_le_bytes());
                }
                for (i, c) in n.children.iter().enumerate() {
                    page[coff + 4 * i..coff + 4 * i + 4].copy_from_slice(&c.to_le_bytes());
                }
            }
            Node::Leaf(n) => {
                assert!(n.entries.len() <= leaf_max(self.value_size));
                page[0] = TAG_LEAF;
                page[2..4].copy_from_slice(&(n.entries.len() as u16).to_le_bytes());
                page[4..8].copy_from_slice(&n.prev.to_le_bytes());
                page[8..12].copy_from_slice(&n.next.to_le_bytes());
                let stride = 8 + self.value_size;
                for (i, (k, v)) in n.entries.iter().enumerate() {
                    assert_eq!(v.len(), self.value_size);
                    let off = 16 + stride * i;
                    page[off..off + 8].copy_from_slice(&k.to_le_bytes());
                    page[off + 8..off + stride].copy_from_slice(v);
                }
            }
        }
        self.pager.write(id, page)
    }

    /// Child index for `key` in an internal node: first key > `key`.
    fn child_index(keys: &[u64], key: u64) -> usize {
        keys.partition_point(|&k| k <= key)
    }

    /// Insert (or replace). Returns `true` if the key was already present.
    pub fn insert(&mut self, key: u64, value: &[u8]) -> io::Result<bool> {
        assert_eq!(value.len(), self.value_size);
        let (replaced, split) = self.insert_rec(self.root, key, value)?;
        if let Some((sep, right)) = split {
            let new_root = self.pager.allocate()?;
            let node =
                Node::Internal(Internal { keys: vec![sep], children: vec![self.root, right] });
            self.write_node(new_root, &node)?;
            self.root = new_root;
        }
        if !replaced {
            self.count += 1;
        }
        Ok(replaced)
    }

    fn insert_rec(
        &mut self,
        page: u32,
        key: u64,
        value: &[u8],
    ) -> io::Result<(bool, Option<(u64, u32)>)> {
        match self.read_node(page)? {
            Node::Leaf(mut leaf) => {
                let replaced = match leaf.entries.binary_search_by_key(&key, |e| e.0) {
                    Ok(i) => {
                        leaf.entries[i].1 = value.to_vec();
                        true
                    }
                    Err(i) => {
                        leaf.entries.insert(i, (key, value.to_vec()));
                        false
                    }
                };
                if leaf.entries.len() <= leaf_max(self.value_size) {
                    self.write_node(page, &Node::Leaf(leaf))?;
                    return Ok((replaced, None));
                }
                // Split: right half moves to a fresh page.
                let mid = leaf.entries.len() / 2;
                let right_entries = leaf.entries.split_off(mid);
                let sep = right_entries[0].0;
                let right_id = self.pager.allocate()?;
                let right = Leaf { prev: page, next: leaf.next, entries: right_entries };
                if right.next != NIL {
                    if let Node::Leaf(mut nn) = self.read_node(right.next)? {
                        nn.prev = right_id;
                        self.write_node(right.next, &Node::Leaf(nn))?;
                    }
                }
                leaf.next = right_id;
                self.write_node(right_id, &Node::Leaf(right))?;
                self.write_node(page, &Node::Leaf(leaf))?;
                Ok((replaced, Some((sep, right_id))))
            }
            Node::Internal(mut node) => {
                let ci = Self::child_index(&node.keys, key);
                let (replaced, split) = self.insert_rec(node.children[ci], key, value)?;
                let Some((sep, right)) = split else {
                    return Ok((replaced, None));
                };
                node.keys.insert(ci, sep);
                node.children.insert(ci + 1, right);
                if node.keys.len() <= INTERNAL_MAX {
                    self.write_node(page, &Node::Internal(node))?;
                    return Ok((replaced, None));
                }
                // Split internal: middle key is promoted (not kept).
                let mid = node.keys.len() / 2;
                let promote = node.keys[mid];
                let right_keys = node.keys.split_off(mid + 1);
                node.keys.pop();
                let right_children = node.children.split_off(mid + 1);
                let right_id = self.pager.allocate()?;
                self.write_node(
                    right_id,
                    &Node::Internal(Internal { keys: right_keys, children: right_children }),
                )?;
                self.write_node(page, &Node::Internal(node))?;
                Ok((replaced, Some((promote, right_id))))
            }
        }
    }

    /// Point lookup.
    pub fn get(&mut self, key: u64) -> io::Result<Option<Vec<u8>>> {
        let mut page = self.root;
        loop {
            match self.read_node(page)? {
                Node::Internal(n) => page = n.children[Self::child_index(&n.keys, key)],
                Node::Leaf(leaf) => {
                    return Ok(leaf
                        .entries
                        .binary_search_by_key(&key, |e| e.0)
                        .ok()
                        .map(|i| leaf.entries[i].1.clone()));
                }
            }
        }
    }

    /// Remove a key. Returns `true` if it was present. Lazy: pages are never
    /// merged, which suits the etree balance workload (delete parent, insert
    /// eight children in the same neighborhood).
    pub fn remove(&mut self, key: u64) -> io::Result<bool> {
        let mut page = self.root;
        loop {
            match self.read_node(page)? {
                Node::Internal(n) => page = n.children[Self::child_index(&n.keys, key)],
                Node::Leaf(mut leaf) => {
                    let Ok(i) = leaf.entries.binary_search_by_key(&key, |e| e.0) else {
                        return Ok(false);
                    };
                    leaf.entries.remove(i);
                    self.write_node(page, &Node::Leaf(leaf))?;
                    self.count -= 1;
                    return Ok(true);
                }
            }
        }
    }

    /// Greatest entry with key `<= key` (point location for linear octrees).
    pub fn floor(&mut self, key: u64) -> io::Result<Option<(u64, Vec<u8>)>> {
        let mut page = self.root;
        loop {
            match self.read_node(page)? {
                Node::Internal(n) => page = n.children[Self::child_index(&n.keys, key)],
                Node::Leaf(leaf) => {
                    let i = leaf.entries.partition_point(|e| e.0 <= key);
                    if i > 0 {
                        return Ok(Some(leaf.entries[i - 1].clone()));
                    }
                    // All entries in this leaf are > key (or it is empty):
                    // walk left through the chain.
                    let mut prev = leaf.prev;
                    while prev != NIL {
                        if let Node::Leaf(l) = self.read_node(prev)? {
                            if let Some(e) = l.entries.last() {
                                return Ok(Some(e.clone()));
                            }
                            prev = l.prev;
                        } else {
                            unreachable!("leaf chain points at internal node");
                        }
                    }
                    return Ok(None);
                }
            }
        }
    }

    /// In-order scan of all entries with `lo <= key <= hi`, via leaf chaining.
    pub fn range_scan(
        &mut self,
        lo: u64,
        hi: u64,
        mut f: impl FnMut(u64, &[u8]),
    ) -> io::Result<()> {
        // Find the leaf that would contain `lo`.
        let mut page = self.root;
        while let Node::Internal(n) = self.read_node(page)? {
            page = n.children[Self::child_index(&n.keys, lo)];
        }
        let mut current = page;
        while current != NIL {
            let Node::Leaf(leaf) = self.read_node(current)? else {
                unreachable!("leaf chain points at internal node");
            };
            for (k, v) in &leaf.entries {
                if *k < lo {
                    continue;
                }
                if *k > hi {
                    return Ok(());
                }
                f(*k, v);
            }
            current = leaf.next;
        }
        Ok(())
    }

    /// Scan everything in key order.
    pub fn scan_all(&mut self, f: impl FnMut(u64, &[u8])) -> io::Result<()> {
        self.range_scan(0, u64::MAX, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("quake-etree-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("bt-{}-{}-{}", name, std::process::id(), rand_suffix()))
    }

    fn rand_suffix() -> u64 {
        use std::time::{SystemTime, UNIX_EPOCH};
        SystemTime::now().duration_since(UNIX_EPOCH).unwrap().subsec_nanos() as u64
    }

    fn val(k: u64) -> Vec<u8> {
        let mut v = vec![0u8; 16];
        v[..8].copy_from_slice(&k.to_le_bytes());
        v[8..].copy_from_slice(&(!k).to_le_bytes());
        v
    }

    #[test]
    fn insert_get_thousands_with_splits() {
        let path = tmp("bulk");
        let mut t = BTree::create(&path, 16, 16).unwrap();
        // Shuffled insertion order to force non-append splits.
        let n = 20_000u64;
        let mut keys: Vec<u64> = (0..n).map(|i| i.wrapping_mul(0x9E3779B97F4A7C15)).collect();
        keys.sort_unstable();
        keys.dedup();
        for i in 0..keys.len() {
            // Insert in a scrambled order.
            let k = keys[(i * 7919) % keys.len()];
            t.insert(k, &val(k)).unwrap();
        }
        assert_eq!(t.len(), keys.len() as u64);
        for &k in keys.iter().step_by(97) {
            assert_eq!(t.get(k).unwrap(), Some(val(k)));
        }
        assert_eq!(t.get(keys[0].wrapping_add(1)).unwrap(), None);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn scan_is_sorted_and_complete() {
        let path = tmp("scan");
        let mut t = BTree::create(&path, 16, 16).unwrap();
        let keys: Vec<u64> = (0..5000u64).map(|i| i * 3 + 1).rev().collect();
        for &k in &keys {
            t.insert(k, &val(k)).unwrap();
        }
        let mut seen = Vec::new();
        t.scan_all(|k, v| {
            assert_eq!(v, &val(k)[..]);
            seen.push(k);
        })
        .unwrap();
        let mut expect = keys.clone();
        expect.sort_unstable();
        assert_eq!(seen, expect);
        // Bounded range.
        let mut part = Vec::new();
        t.range_scan(100, 200, |k, _| part.push(k)).unwrap();
        assert_eq!(part, (100..=200).filter(|k| k % 3 == 1).collect::<Vec<_>>());
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn floor_semantics() {
        let path = tmp("floor");
        let mut t = BTree::create(&path, 16, 16).unwrap();
        for k in [10u64, 20, 30, 4000, 50_000] {
            t.insert(k, &val(k)).unwrap();
        }
        assert_eq!(t.floor(9).unwrap(), None);
        assert_eq!(t.floor(10).unwrap().unwrap().0, 10);
        assert_eq!(t.floor(29).unwrap().unwrap().0, 20);
        assert_eq!(t.floor(u64::MAX).unwrap().unwrap().0, 50_000);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn remove_then_reinsert() {
        let path = tmp("remove");
        let mut t = BTree::create(&path, 16, 16).unwrap();
        for k in 0..1000u64 {
            t.insert(k, &val(k)).unwrap();
        }
        for k in (0..1000u64).step_by(2) {
            assert!(t.remove(k).unwrap());
        }
        assert!(!t.remove(0).unwrap());
        assert_eq!(t.len(), 500);
        assert_eq!(t.get(2).unwrap(), None);
        assert_eq!(t.get(3).unwrap(), Some(val(3)));
        // floor skips over emptied regions.
        assert_eq!(t.floor(2).unwrap().unwrap().0, 1);
        t.insert(2, &val(2)).unwrap();
        assert_eq!(t.get(2).unwrap(), Some(val(2)));
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn persistence_across_reopen() {
        let path = tmp("persist");
        {
            let mut t = BTree::create(&path, 16, 16).unwrap();
            for k in 0..3000u64 {
                t.insert(k * 11, &val(k * 11)).unwrap();
            }
            t.flush().unwrap();
        }
        let mut t = BTree::open(&path, 16).unwrap();
        assert_eq!(t.len(), 3000);
        assert_eq!(t.value_size(), 16);
        assert_eq!(t.get(11 * 1234).unwrap(), Some(val(11 * 1234)));
        assert_eq!(t.floor(10).unwrap().unwrap().0, 0);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn prop_differential_against_btreemap() {
        // Deterministic LCG-driven op sequences (randomized differential
        // test without an external crate — the build is offline).
        let mut state = 0xE001u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 11
        };
        for case in 0..12 {
            let path = tmp(&format!("prop{case}"));
            let mut t = BTree::create(&path, 16, 8).unwrap();
            let mut model: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
            let n_ops = 1 + (next() % 399) as usize;
            for _ in 0..n_ops {
                let r = next();
                let op = (r % 3) as u8;
                let k = (r >> 8) % 500;
                match op {
                    0 => {
                        t.insert(k, &val(k)).unwrap();
                        model.insert(k, val(k));
                    }
                    1 => {
                        let got = t.remove(k).unwrap();
                        let expect = model.remove(&k).is_some();
                        assert_eq!(got, expect);
                    }
                    _ => {
                        let got = t.floor(k).unwrap().map(|(fk, _)| fk);
                        let expect = model.range(..=k).next_back().map(|(&fk, _)| fk);
                        assert_eq!(got, expect);
                    }
                }
                assert_eq!(t.len(), model.len() as u64);
            }
            let mut scanned = Vec::new();
            t.scan_all(|k, _| scanned.push(k)).unwrap();
            let expect: Vec<u64> = model.keys().copied().collect();
            assert_eq!(scanned, expect);
            std::fs::remove_file(path).unwrap();
        }
    }
}
