//! A paged file with an LRU write-back cache.
//!
//! All disk structures in this crate (the B-tree, the element/node databases)
//! sit on top of this pager. Pages are 4 KiB; the cache holds a configurable
//! number of pages and tracks hit/miss/read/write statistics so the etree
//! benchmarks can report the I/O saved by locality (the whole point of
//! Morton-ordered keys and local balancing).

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io;
use std::os::unix::fs::FileExt;
use std::path::Path;

/// Page size in bytes.
pub const PAGE_SIZE: usize = 4096;

/// I/O statistics of a pager.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PagerStats {
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub disk_reads: u64,
    pub disk_writes: u64,
    pub evictions: u64,
    /// Bytes transferred from disk (always `disk_reads * PAGE_SIZE` for this
    /// whole-page pager, but kept explicit so reports never hardcode the
    /// page size).
    pub bytes_read: u64,
    /// Bytes transferred to disk.
    pub bytes_written: u64,
}

impl PagerStats {
    /// Cache hit rate in [0, 1] (1.0 for an untouched pager).
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            1.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Export the statistics into a telemetry registry as absolute counters
    /// `<prefix>/cache_hits`, `<prefix>/bytes_read`, ... plus the
    /// `<prefix>/hit_rate` gauge. Repeated calls overwrite (the stats are
    /// cumulative already).
    pub fn record(&self, reg: &quake_telemetry::Registry, prefix: &str) {
        if !reg.is_enabled() {
            return;
        }
        for (k, v) in [
            ("cache_hits", self.cache_hits),
            ("cache_misses", self.cache_misses),
            ("disk_reads", self.disk_reads),
            ("disk_writes", self.disk_writes),
            ("evictions", self.evictions),
            ("bytes_read", self.bytes_read),
            ("bytes_written", self.bytes_written),
        ] {
            reg.set(&format!("{prefix}/{k}"), v);
        }
        reg.gauge(&format!("{prefix}/hit_rate"), self.hit_rate());
    }
}

struct CachedPage {
    data: Box<[u8; PAGE_SIZE]>,
    dirty: bool,
    last_used: u64,
}

/// Paged file with LRU write-back caching.
pub struct Pager {
    file: File,
    cache: HashMap<u32, CachedPage>,
    capacity: usize,
    clock: u64,
    page_count: u32,
    stats: PagerStats,
}

impl Pager {
    /// Create (truncating) a pager at `path` with a cache of `cache_pages`.
    pub fn create(path: &Path, cache_pages: usize) -> io::Result<Pager> {
        let file =
            OpenOptions::new().read(true).write(true).create(true).truncate(true).open(path)?;
        Ok(Pager {
            file,
            cache: HashMap::new(),
            capacity: cache_pages.max(8),
            clock: 0,
            page_count: 0,
            stats: PagerStats::default(),
        })
    }

    /// Open an existing pager file.
    pub fn open(path: &Path, cache_pages: usize) -> io::Result<Pager> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        if len % PAGE_SIZE as u64 != 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("file length {len} is not a multiple of the page size"),
            ));
        }
        Ok(Pager {
            file,
            cache: HashMap::new(),
            capacity: cache_pages.max(8),
            clock: 0,
            page_count: (len / PAGE_SIZE as u64) as u32,
            stats: PagerStats::default(),
        })
    }

    /// Number of pages in the file (including cached, not-yet-flushed ones).
    pub fn page_count(&self) -> u32 {
        self.page_count
    }

    pub fn stats(&self) -> PagerStats {
        self.stats
    }

    /// Allocate a fresh zeroed page, returning its id.
    pub fn allocate(&mut self) -> io::Result<u32> {
        let id = self.page_count;
        self.page_count += 1;
        self.install(id, Box::new([0u8; PAGE_SIZE]), true)?;
        Ok(id)
    }

    /// Read a page (through the cache) into a caller-owned buffer.
    pub fn read(&mut self, id: u32) -> io::Result<Box<[u8; PAGE_SIZE]>> {
        assert!(id < self.page_count, "page {id} out of range ({})", self.page_count);
        self.clock += 1;
        if let Some(p) = self.cache.get_mut(&id) {
            p.last_used = self.clock;
            self.stats.cache_hits += 1;
            return Ok(p.data.clone());
        }
        self.stats.cache_misses += 1;
        self.stats.disk_reads += 1;
        self.stats.bytes_read += PAGE_SIZE as u64;
        let mut buf = Box::new([0u8; PAGE_SIZE]);
        self.file.read_exact_at(&mut buf[..], id as u64 * PAGE_SIZE as u64)?;
        let out = buf.clone();
        self.install(id, buf, false)?;
        Ok(out)
    }

    /// Write a page (into the cache; flushed on eviction or [`Pager::flush`]).
    pub fn write(&mut self, id: u32, data: Box<[u8; PAGE_SIZE]>) -> io::Result<()> {
        assert!(id < self.page_count, "page {id} out of range ({})", self.page_count);
        self.clock += 1;
        self.install(id, data, true)
    }

    fn install(&mut self, id: u32, data: Box<[u8; PAGE_SIZE]>, dirty: bool) -> io::Result<()> {
        self.clock += 1;
        if let Some(existing) = self.cache.get_mut(&id) {
            existing.data = data;
            existing.dirty |= dirty;
            existing.last_used = self.clock;
            return Ok(());
        }
        if self.cache.len() >= self.capacity {
            self.evict_one()?;
        }
        self.cache.insert(id, CachedPage { data, dirty, last_used: self.clock });
        Ok(())
    }

    fn evict_one(&mut self) -> io::Result<()> {
        let victim = self
            .cache
            .iter()
            .min_by_key(|(_, p)| p.last_used)
            .map(|(&id, _)| id)
            .expect("evict_one called on empty cache");
        let page = self.cache.remove(&victim).unwrap();
        self.stats.evictions += 1;
        if page.dirty {
            self.stats.disk_writes += 1;
            self.stats.bytes_written += PAGE_SIZE as u64;
            self.file.write_all_at(&page.data[..], victim as u64 * PAGE_SIZE as u64)?;
        }
        Ok(())
    }

    /// Number of dirty (cached, not yet written back) pages.
    pub fn dirty_pages(&self) -> usize {
        self.cache.values().filter(|p| p.dirty).count()
    }

    /// Write all dirty pages to disk (cache contents are kept).
    pub fn flush(&mut self) -> io::Result<()> {
        // Ensure the file is long enough even if tail pages are clean zeros.
        self.file.set_len(self.page_count as u64 * PAGE_SIZE as u64)?;
        let mut dirty: Vec<u32> =
            self.cache.iter().filter(|(_, p)| p.dirty).map(|(&id, _)| id).collect();
        dirty.sort_unstable();
        for id in dirty {
            let p = self.cache.get_mut(&id).unwrap();
            self.stats.disk_writes += 1;
            self.stats.bytes_written += PAGE_SIZE as u64;
            self.file.write_all_at(&p.data[..], id as u64 * PAGE_SIZE as u64)?;
            p.dirty = false;
        }
        self.file.sync_data()?;
        Ok(())
    }
}

/// Dropping a pager flushes every dirty page, so a database closed by simply
/// going out of scope is complete on disk — the property the checkpoint
/// subsystem's kill-and-restart tests rely on when they reopen an etree
/// between runs. The one caveat of the RAII form: `drop` cannot report I/O
/// errors, so code that must *know* the data is durable (rather than merely
/// request it) calls [`Pager::flush`] explicitly first and checks the result;
/// after a successful flush the drop is a no-op write-wise.
impl Drop for Pager {
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("quake-etree-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{}-{}", name, std::process::id()))
    }

    #[test]
    fn pages_roundtrip_through_cache_and_disk() {
        let path = tmp("roundtrip");
        let mut pager = Pager::create(&path, 8).unwrap();
        let mut ids = Vec::new();
        for i in 0..32u32 {
            let id = pager.allocate().unwrap();
            let mut page = Box::new([0u8; PAGE_SIZE]);
            page[0] = i as u8;
            page[PAGE_SIZE - 1] = (i * 3) as u8;
            pager.write(id, page).unwrap();
            ids.push(id);
        }
        // With capacity 8, most pages were evicted to disk; read them back.
        for (i, &id) in ids.iter().enumerate() {
            let page = pager.read(id).unwrap();
            assert_eq!(page[0], i as u8);
            assert_eq!(page[PAGE_SIZE - 1], (i * 3) as u8);
        }
        assert!(pager.stats().evictions > 0);
        assert!(pager.stats().disk_reads > 0);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn flush_then_reopen_preserves_data() {
        let path = tmp("reopen");
        {
            let mut pager = Pager::create(&path, 8).unwrap();
            for i in 0..10u32 {
                let id = pager.allocate().unwrap();
                let mut page = Box::new([0u8; PAGE_SIZE]);
                page[7] = 100 + i as u8;
                pager.write(id, page).unwrap();
            }
            pager.flush().unwrap();
        }
        let mut pager = Pager::open(&path, 8).unwrap();
        assert_eq!(pager.page_count(), 10);
        for i in 0..10u32 {
            assert_eq!(pager.read(i).unwrap()[7], 100 + i as u8);
        }
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn drop_without_explicit_flush_persists_dirty_pages() {
        let path = tmp("drop-flush");
        {
            let mut pager = Pager::create(&path, 8).unwrap();
            for i in 0..6u32 {
                let id = pager.allocate().unwrap();
                let mut page = Box::new([0u8; PAGE_SIZE]);
                page[11] = 50 + i as u8;
                pager.write(id, page).unwrap();
            }
            assert!(pager.dirty_pages() > 0);
            // No flush() — the Drop impl must write the dirty pages back.
        }
        let mut pager = Pager::open(&path, 8).unwrap();
        assert_eq!(pager.page_count(), 6);
        assert_eq!(pager.dirty_pages(), 0);
        for i in 0..6u32 {
            assert_eq!(pager.read(i).unwrap()[11], 50 + i as u8);
        }
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn byte_counters_track_page_traffic_and_export_to_telemetry() {
        let path = tmp("bytes");
        let mut pager = Pager::create(&path, 8).unwrap();
        for i in 0..24u32 {
            let id = pager.allocate().unwrap();
            let mut page = Box::new([0u8; PAGE_SIZE]);
            page[0] = i as u8;
            pager.write(id, page).unwrap();
        }
        for id in 0..24u32 {
            let _ = pager.read(id).unwrap();
        }
        let _ = pager.read(23).unwrap(); // still cached: guarantees >= 1 hit
        pager.flush().unwrap();
        let s = pager.stats();
        // Whole-page transfers: the byte counters are exact multiples.
        assert_eq!(s.bytes_read, s.disk_reads * PAGE_SIZE as u64);
        assert_eq!(s.bytes_written, s.disk_writes * PAGE_SIZE as u64);
        assert!(s.bytes_read > 0 && s.bytes_written > 0);
        assert!(s.hit_rate() > 0.0 && s.hit_rate() < 1.0);

        let reg = quake_telemetry::Registry::new(0);
        s.record(&reg, "etree/pager");
        assert_eq!(reg.counter("etree/pager/bytes_read"), Some(s.bytes_read));
        assert_eq!(reg.counter("etree/pager/cache_hits"), Some(s.cache_hits));
        let hr = reg.gauge_value("etree/pager/hit_rate").unwrap();
        assert!((hr - s.hit_rate()).abs() < 1e-15);

        // A disabled registry records nothing.
        let off = quake_telemetry::Registry::disabled();
        s.record(&off, "etree/pager");
        assert!(off.counter("etree/pager/bytes_read").is_none());
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn hot_page_stays_cached() {
        let path = tmp("hot");
        let mut pager = Pager::create(&path, 8).unwrap();
        let hot = pager.allocate().unwrap();
        for _ in 0..40 {
            let id = pager.allocate().unwrap();
            pager.write(id, Box::new([1u8; PAGE_SIZE])).unwrap();
            let _ = pager.read(hot).unwrap(); // keep it recently used
        }
        let before = pager.stats().disk_reads;
        let _ = pager.read(hot).unwrap();
        assert_eq!(pager.stats().disk_reads, before, "hot page should not hit disk");
        std::fs::remove_file(path).unwrap();
    }
}
