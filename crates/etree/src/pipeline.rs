//! The etree mesh-generation pipeline: construct -> balance -> transform.
//!
//! Mirrors Fig 2.1 of the paper. All three stages run against an
//! [`OctantStore`], so the same code drives the in-memory backend and the
//! out-of-core disk backend; with the disk backend the largest mesh is
//! limited by disk space, not RAM (the paper generated a 1.2-billion-element
//! LA Basin mesh this way).
//!
//! - **construct**: auto-navigation — the traversal logic lives here, the
//!   application only supplies "should this octant subdivide?" plus the
//!   material sampler.
//! - **balance**: the paper's *local balancing*: enforce 2-to-1 inside each
//!   block of a regular block partition (pure intra-block key-range work,
//!   cache-friendly on disk), then a boundary pass for the inter-block
//!   constraints.
//! - **transform**: scan the leaves in Morton order, number the nodes,
//!   classify hanging nodes, and emit the element and node databases.

use crate::btree::BTree;
use crate::store::{MaterialRec, OctantStore};
use quake_octree::morton::{morton_encode, GRID};
use quake_octree::{ripple, sample_point, BalanceMode, LinearOctree, Octant, MAX_LEVEL};
use std::collections::{BTreeMap, VecDeque};
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Stage statistics of a pipeline run (Fig 2.1 / the etree table).
#[derive(Clone, Copy, Debug, Default)]
pub struct PipelineStats {
    pub constructed_octants: u64,
    pub after_balance_octants: u64,
    pub boundary_queue_len: u64,
    pub elements: u64,
    pub nodes: u64,
    pub hanging_nodes: u64,
    pub construct_secs: f64,
    pub balance_secs: f64,
    pub transform_secs: f64,
}

/// One element record of the element database.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ElementRec {
    pub octant: Octant,
    pub nodes: [u64; 8],
    pub material: MaterialRec,
}

/// One node record of the node database.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NodeRec {
    /// Grid coordinates (0..=GRID on each axis).
    pub coords: [u32; 3],
    pub id: u64,
    pub hanging: bool,
}

/// Paths and counts of the transform output.
#[derive(Clone, Debug)]
pub struct MeshDatabases {
    pub element_db: PathBuf,
    pub node_db: PathBuf,
    pub n_elements: u64,
    pub n_nodes: u64,
    pub n_hanging: u64,
}

const ELEM_REC_SIZE: usize = 8 + 64 + MaterialRec::ENCODED_SIZE;
const NODE_REC_SIZE: usize = 8 + 8 + 8; // morton, id, flags(+pad)

impl MeshDatabases {
    /// Stream the element database in Morton order.
    pub fn read_elements(&self) -> io::Result<impl Iterator<Item = io::Result<ElementRec>>> {
        let mut r = BufReader::new(std::fs::File::open(&self.element_db)?);
        let n = self.n_elements;
        let mut i = 0u64;
        Ok(std::iter::from_fn(move || {
            if i >= n {
                return None;
            }
            i += 1;
            let mut buf = [0u8; ELEM_REC_SIZE];
            Some(r.read_exact(&mut buf).map(|()| {
                let key = u64::from_le_bytes(buf[..8].try_into().unwrap());
                let mut nodes = [0u64; 8];
                for (j, n) in nodes.iter_mut().enumerate() {
                    *n = u64::from_le_bytes(buf[8 + 8 * j..16 + 8 * j].try_into().unwrap());
                }
                let material = MaterialRec::decode(&buf[72..72 + MaterialRec::ENCODED_SIZE]);
                ElementRec { octant: Octant::from_key(key), nodes, material }
            }))
        }))
    }

    /// Stream the node database in Morton order.
    pub fn read_nodes(&self) -> io::Result<impl Iterator<Item = io::Result<NodeRec>>> {
        let mut r = BufReader::new(std::fs::File::open(&self.node_db)?);
        let n = self.n_nodes;
        let mut i = 0u64;
        Ok(std::iter::from_fn(move || {
            if i >= n {
                return None;
            }
            i += 1;
            let mut buf = [0u8; NODE_REC_SIZE];
            Some(r.read_exact(&mut buf).map(|()| {
                let m = u64::from_le_bytes(buf[..8].try_into().unwrap());
                let id = u64::from_le_bytes(buf[8..16].try_into().unwrap());
                let hanging = buf[16] != 0;
                let (x, y, z) = quake_octree::morton_decode(m);
                NodeRec { coords: [x, y, z], id, hanging }
            }))
        }))
    }
}

/// Configuration of an etree pipeline run.
#[derive(Clone, Copy, Debug)]
pub struct EtreePipeline {
    pub mode: BalanceMode,
    /// `8^block_level` blocks in the local-balancing step.
    pub block_level: u8,
}

impl Default for EtreePipeline {
    fn default() -> Self {
        EtreePipeline { mode: BalanceMode::Full, block_level: 1 }
    }
}

impl EtreePipeline {
    /// Construct step: auto-navigation refinement, leaves written to `store`.
    pub fn construct<S: OctantStore>(
        &self,
        store: &mut S,
        mut refine: impl FnMut(&Octant) -> bool,
        mut material: impl FnMut(&Octant) -> MaterialRec,
        stats: &mut PipelineStats,
    ) -> io::Result<()> {
        let t0 = Instant::now();
        let mut stack = vec![Octant::ROOT];
        while let Some(o) = stack.pop() {
            if o.level < MAX_LEVEL && refine(&o) {
                stack.extend(o.children());
            } else {
                store.insert(o, material(&o))?;
                stats.constructed_octants += 1;
            }
        }
        stats.construct_secs = t0.elapsed().as_secs_f64();
        Ok(())
    }

    /// Balance step: local balancing (per-block internal pass + boundary
    /// pass). New octants created by splitting get their material from
    /// `material`.
    pub fn balance<S: OctantStore>(
        &self,
        store: &mut S,
        mut material: impl FnMut(&Octant) -> MaterialRec,
        stats: &mut PipelineStats,
    ) -> io::Result<()> {
        let t0 = Instant::now();
        let blocks = LinearOctree::uniform(self.block_level);

        // Internal pass: per block, load its key range, ripple in memory
        // (skipping constraints that cross the block boundary), write diffs.
        for block in blocks.leaves() {
            let lo = block.key();
            let hi = max_descendant_key(block);
            let mut members: BTreeMap<u64, Octant> = BTreeMap::new();
            store.scan_range(lo, hi, &mut |o, _| {
                members.insert(o.key(), o);
            })?;
            members.retain(|_, o| block.contains(o));
            if members.is_empty() {
                continue;
            }
            let before: Vec<u64> = members.keys().copied().collect();
            let queue: VecDeque<Octant> = members.values().copied().collect();
            let mut map = members;
            ripple(&mut map, queue, self.mode, Some(*block));
            // Apply the diff to the store.
            for k in &before {
                if !map.contains_key(k) {
                    store.remove(&Octant::from_key(*k))?;
                }
            }
            for (k, o) in &map {
                if before.binary_search(k).is_err() {
                    store.insert(*o, material(o))?;
                }
            }
        }

        // Boundary pass: only leaves whose constraint samples cross a block
        // boundary can still violate; ripple them against the whole store.
        let dirs = self.mode.directions();
        let block_size = 1u32 << (MAX_LEVEL - self.block_level);
        let mut queue: VecDeque<Octant> = VecDeque::new();
        let mut all: Vec<Octant> = Vec::new();
        store.scan_all(&mut |o, _| all.push(o))?;
        for o in all {
            let crosses = dirs.iter().any(|&d| {
                sample_point(&o, d).is_some_and(|p| {
                    (p.0 / block_size, p.1 / block_size, p.2 / block_size)
                        != (o.x / block_size, o.y / block_size, o.z / block_size)
                })
            });
            if crosses {
                queue.push_back(o);
            }
        }
        stats.boundary_queue_len = queue.len() as u64;
        ripple_store(store, queue, self.mode, &mut material)?;
        stats.after_balance_octants = store.len();
        stats.balance_secs = t0.elapsed().as_secs_f64();
        Ok(())
    }

    /// Transform step: derive the element and node databases.
    ///
    /// `scratch_dir` receives three files: the node-id B-tree (an index used
    /// during the build), the element DB and the node DB.
    pub fn transform<S: OctantStore>(
        &self,
        store: &mut S,
        scratch_dir: &Path,
        stats: &mut PipelineStats,
    ) -> io::Result<MeshDatabases> {
        let t0 = Instant::now();
        std::fs::create_dir_all(scratch_dir)?;
        let node_index_path = scratch_dir.join("node_index.btree");
        let element_db = scratch_dir.join("elements.db");
        let node_db = scratch_dir.join("nodes.db");

        // Pass 1: register every element corner in the node index.
        let mut node_index = BTree::create(&node_index_path, 8, 256)?;
        let mut leaves: Vec<(Octant, MaterialRec)> = Vec::new();
        store.scan_all(&mut |o, m| leaves.push((o, m)))?;
        for (o, _) in &leaves {
            for c in 0..8usize {
                let k = node_key(corner_coords(o, c));
                node_index.insert(k, &0u64.to_le_bytes())?;
            }
        }
        let n_nodes = node_index.len();

        // Pass 2: assign ids in Morton order, classify hanging nodes, emit
        // the node DB, and record ids back into the index for pass 3.
        let mut node_keys: Vec<u64> = Vec::with_capacity(n_nodes as usize);
        node_index.scan_all(|k, _| node_keys.push(k))?;
        let mut node_file = BufWriter::new(std::fs::File::create(&node_db)?);
        let mut n_hanging = 0u64;
        for (id, &k) in node_keys.iter().enumerate() {
            node_index.insert(k, &(id as u64).to_le_bytes())?;
            let (x, y, z) = quake_octree::morton_decode(k);
            let hanging = is_hanging(store, [x, y, z])?;
            if hanging {
                n_hanging += 1;
            }
            let mut rec = [0u8; NODE_REC_SIZE];
            rec[..8].copy_from_slice(&k.to_le_bytes());
            rec[8..16].copy_from_slice(&(id as u64).to_le_bytes());
            rec[16] = hanging as u8;
            node_file.write_all(&rec)?;
        }
        node_file.flush()?;

        // Pass 3: emit element records with resolved node ids.
        let mut elem_file = BufWriter::new(std::fs::File::create(&element_db)?);
        for (o, m) in &leaves {
            let mut rec = [0u8; ELEM_REC_SIZE];
            rec[..8].copy_from_slice(&o.key().to_le_bytes());
            for c in 0..8usize {
                let k = node_key(corner_coords(o, c));
                let id = node_index.get(k)?.expect("element corner missing from node index");
                rec[8 + 8 * c..16 + 8 * c].copy_from_slice(&id);
            }
            rec[72..72 + MaterialRec::ENCODED_SIZE].copy_from_slice(&m.encode());
            elem_file.write_all(&rec)?;
        }
        elem_file.flush()?;

        stats.elements = leaves.len() as u64;
        stats.nodes = n_nodes;
        stats.hanging_nodes = n_hanging;
        stats.transform_secs = t0.elapsed().as_secs_f64();
        Ok(MeshDatabases {
            element_db,
            node_db,
            n_elements: leaves.len() as u64,
            n_nodes,
            n_hanging,
        })
    }
}

/// Grid coordinates of corner `c` (bit-coded) of an octant.
fn corner_coords(o: &Octant, c: usize) -> [u32; 3] {
    let s = o.size();
    [
        o.x + if c & 1 != 0 { s } else { 0 },
        o.y + if c & 2 != 0 { s } else { 0 },
        o.z + if c & 4 != 0 { s } else { 0 },
    ]
}

/// Morton key of a node grid point (coordinates may equal GRID).
fn node_key(c: [u32; 3]) -> u64 {
    morton_encode(c[0], c[1], c[2])
}

/// A node is hanging iff some leaf incident to it does not have it as one of
/// its corners (then the node sits on that leaf's edge or face interior).
fn is_hanging<S: OctantStore>(store: &mut S, p: [u32; 3]) -> io::Result<bool> {
    for dz in 0..2u32 {
        for dy in 0..2u32 {
            for dx in 0..2u32 {
                // Probe the cell whose far corner (in this octant direction)
                // is p: its interior-adjacent grid point is p - (dx,dy,dz).
                if (dx > p[0]) || (dy > p[1]) || (dz > p[2]) {
                    continue;
                }
                let q = (p[0] - dx, p[1] - dy, p[2] - dz);
                if q.0 >= GRID || q.1 >= GRID || q.2 >= GRID {
                    continue;
                }
                let Some((leaf, _)) = store.find_containing(q)? else { continue };
                let s = leaf.size();
                let is_corner = (p[0] == leaf.x || p[0] == leaf.x + s)
                    && (p[1] == leaf.y || p[1] == leaf.y + s)
                    && (p[2] == leaf.z || p[2] == leaf.z + s);
                if !is_corner {
                    return Ok(true);
                }
            }
        }
    }
    Ok(false)
}

/// Ripple 2-to-1 enforcement running directly against a store.
fn ripple_store<S: OctantStore>(
    store: &mut S,
    mut queue: VecDeque<Octant>,
    mode: BalanceMode,
    material: &mut impl FnMut(&Octant) -> MaterialRec,
) -> io::Result<()> {
    let dirs = mode.directions();
    while let Some(o) = queue.pop_front() {
        if store.get(&o)?.is_none() {
            continue;
        }
        if o.level <= 1 {
            continue;
        }
        for &d in &dirs {
            let Some(p) = sample_point(&o, d) else { continue };
            loop {
                let (n, _) =
                    store.find_containing(p)?.expect("complete octree must cover sample point");
                if n.level + 1 >= o.level {
                    break;
                }
                store.remove(&n)?;
                for c in n.children() {
                    store.insert(c, material(&c))?;
                    queue.push_back(c);
                }
            }
        }
    }
    Ok(())
}

/// Largest key of any descendant of `o`.
fn max_descendant_key(o: &Octant) -> u64 {
    let s = o.size();
    Octant::new(o.x + s - 1, o.y + s - 1, o.z + s - 1, MAX_LEVEL).key()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{DiskStore, MemStore};

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("quake-etree-tests").join(format!(
            "pipe-{}-{}",
            name,
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn mat(o: &Octant) -> MaterialRec {
        MaterialRec { vp: 2000.0, vs: 1000.0 + o.level as f64, rho: 2200.0 }
    }

    /// One refined child of the root: 15 elements, 46 nodes, 12 hanging.
    fn one_refined<S: OctantStore>(store: &mut S) -> PipelineStats {
        let p = EtreePipeline::default();
        let mut stats = PipelineStats::default();
        p.construct(
            store,
            |o| o.level == 0 || (o.level == 1 && o.x == 0 && o.y == 0 && o.z == 0),
            mat,
            &mut stats,
        )
        .unwrap();
        stats
    }

    #[test]
    fn transform_counts_on_known_two_level_mesh() {
        let dir = tmpdir("known");
        let mut store = MemStore::new();
        let mut stats = one_refined(&mut store);
        assert_eq!(stats.constructed_octants, 15);
        let p = EtreePipeline::default();
        let db = p.transform(&mut store, &dir, &mut stats).unwrap();
        assert_eq!(db.n_elements, 15);
        assert_eq!(db.n_nodes, 46);
        assert_eq!(db.n_hanging, 12);
        // Element records resolve to valid, distinct corner node ids.
        let mut elem_count = 0;
        for e in db.read_elements().unwrap() {
            let e = e.unwrap();
            let mut ids = e.nodes.to_vec();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), 8, "element has duplicate corner nodes");
            assert!(ids.iter().all(|&i| i < db.n_nodes));
            elem_count += 1;
        }
        assert_eq!(elem_count, 15);
        // Node ids are sequential in Morton order.
        let nodes: Vec<NodeRec> = db.read_nodes().unwrap().map(|n| n.unwrap()).collect();
        for (i, n) in nodes.iter().enumerate() {
            assert_eq!(n.id, i as u64);
        }
        assert_eq!(nodes.iter().filter(|n| n.hanging).count(), 12);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn uniform_mesh_has_no_hanging_nodes() {
        let dir = tmpdir("uniform");
        let mut store = MemStore::new();
        let p = EtreePipeline::default();
        let mut stats = PipelineStats::default();
        p.construct(&mut store, |o| o.level < 2, mat, &mut stats).unwrap();
        p.balance(&mut store, mat, &mut stats).unwrap();
        let db = p.transform(&mut store, &dir, &mut stats).unwrap();
        assert_eq!(db.n_elements, 64);
        assert_eq!(db.n_nodes, 125);
        assert_eq!(db.n_hanging, 0);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn balance_on_store_matches_in_core_balance() {
        // Center-refined tree (genuinely unbalanced, crossing all blocks).
        let half = 1u32 << (MAX_LEVEL - 1);
        let refine = |o: &Octant| o.level < 5 && o.contains_point(half, half, half);

        let mut store = MemStore::new();
        let p = EtreePipeline { mode: BalanceMode::Full, block_level: 1 };
        let mut stats = PipelineStats::default();
        p.construct(&mut store, refine, mat, &mut stats).unwrap();
        p.balance(&mut store, mat, &mut stats).unwrap();
        let mut got: Vec<Octant> = Vec::new();
        store.scan_all(&mut |o, _| got.push(o)).unwrap();

        let mut reference = LinearOctree::build(refine);
        reference.balance(BalanceMode::Full);
        assert_eq!(got, reference.leaves());
        assert_eq!(stats.after_balance_octants, reference.len() as u64);
        assert!(stats.boundary_queue_len > 0, "center refinement must cross blocks");
    }

    #[test]
    fn disk_pipeline_matches_memory_pipeline() {
        let dir = tmpdir("diskmem");
        let half = 1u32 << (MAX_LEVEL - 1);
        let refine = |o: &Octant| o.level < 4 && o.contains_point(half, half, half);
        let p = EtreePipeline::default();

        let mut mem = MemStore::new();
        let mut s1 = PipelineStats::default();
        p.construct(&mut mem, refine, mat, &mut s1).unwrap();
        p.balance(&mut mem, mat, &mut s1).unwrap();
        let db_mem = p.transform(&mut mem, &dir.join("mem"), &mut s1).unwrap();

        let mut disk = DiskStore::create(&dir.join("octants.btree"), 64).unwrap();
        let mut s2 = PipelineStats::default();
        p.construct(&mut disk, refine, mat, &mut s2).unwrap();
        p.balance(&mut disk, mat, &mut s2).unwrap();
        let db_disk = p.transform(&mut disk, &dir.join("disk"), &mut s2).unwrap();

        assert_eq!(db_mem.n_elements, db_disk.n_elements);
        assert_eq!(db_mem.n_nodes, db_disk.n_nodes);
        assert_eq!(db_mem.n_hanging, db_disk.n_hanging);
        let em: Vec<ElementRec> = db_mem.read_elements().unwrap().map(|e| e.unwrap()).collect();
        let ed: Vec<ElementRec> = db_disk.read_elements().unwrap().map(|e| e.unwrap()).collect();
        assert_eq!(em, ed);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn hanging_ratio_is_sizeable_on_adaptive_mesh() {
        // The paper's LA mesh had ~15% hanging nodes; check we see the same
        // order of magnitude on a small adaptive tree.
        let dir = tmpdir("ratio");
        let mut store = MemStore::new();
        let p = EtreePipeline::default();
        let mut stats = PipelineStats::default();
        let half = 1u32 << (MAX_LEVEL - 1);
        p.construct(
            &mut store,
            |o| o.level < 3 || (o.level < 5 && o.contains_point(half, half, 0)),
            mat,
            &mut stats,
        )
        .unwrap();
        p.balance(&mut store, mat, &mut stats).unwrap();
        let db = p.transform(&mut store, &dir, &mut stats).unwrap();
        let ratio = db.n_hanging as f64 / db.n_nodes as f64;
        assert!(ratio > 0.01 && ratio < 0.5, "hanging ratio {ratio}");
        std::fs::remove_dir_all(dir).unwrap();
    }
}
