//! Etree: out-of-core octree storage and mesh-generation pipeline.
//!
//! The SC2003 meshes (10^8..10^9 elements) were generated on desktop machines
//! by keeping the octree on disk: octants are keyed by their locational code
//! (Morton code + level) and stored in a B-tree, "the most commonly used
//! primary key indexing structure in database systems". This crate rebuilds
//! that stack:
//!
//! - [`pager`]: a 4 KiB-paged file with an LRU page cache and I/O statistics,
//! - [`btree`]: a disk B-tree with fixed-size values, floor/range queries and
//!   leaf chaining (keys are the `u64` locational codes of `quake-octree`),
//! - [`store`]: the [`store::OctantStore`] abstraction with both the disk
//!   backend and an in-memory backend (for tests and for differential
//!   testing of the disk engine),
//! - [`pipeline`]: the three etree steps — **construct** (auto-navigation
//!   refinement writing leaves to the store), **balance** (block-local 2-to-1
//!   enforcement followed by a boundary pass, after the paper's *local
//!   balancing*), and **transform** (scan leaves in Morton order, emit the
//!   element and node databases, classifying hanging nodes).

pub mod btree;
pub mod pager;
pub mod pipeline;
pub mod store;

pub use btree::BTree;
pub use pager::{Pager, PagerStats, PAGE_SIZE};
pub use pipeline::{ElementRec, EtreePipeline, MeshDatabases, NodeRec, PipelineStats};
pub use store::{DiskStore, MaterialRec, MemStore, OctantStore};
