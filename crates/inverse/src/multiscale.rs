//! Multiscale (grid + frequency) continuation — Section 3.1's remedy for
//! the local minima of inverse wave propagation.
//!
//! The inversion is solved on a cascade of material grids (Fig 3.2:
//! 1x1 -> 2x2 -> ... -> 257x257), each warm-started by prolonging the
//! previous solution; the basin of Newton convergence scales with the
//! wavelength, so coarse grids (optionally combined with low-pass-filtered
//! data — frequency continuation) keep each level inside it.

use crate::gncg::{invert_material, GnConfig, GnStats};
use crate::matmap::{prolong, MaterialMap};
use crate::regularization::TvReg;
use quake_solver::receivers::lowpass_filtfilt;
use quake_solver::wave::ScalarWaveEq;

/// Continuation schedule.
#[derive(Clone, Debug)]
pub struct MultiscaleConfig {
    /// Material grids, coarse to fine (vertices per axis).
    pub grids: Vec<[usize; 3]>,
    /// Physical domain extents (m per axis; 1.0 for inactive axes).
    pub domain: [f64; 3],
    /// TV smoothing parameter and weight.
    pub tv_eps: f64,
    pub tv_beta: f64,
    /// Per-level Gauss-Newton settings.
    pub per_level: GnConfig,
    /// Optional frequency continuation: low-pass corner (Hz) per level
    /// (must match `grids` in length); `None` = use raw data everywhere.
    pub freq_schedule: Option<Vec<f64>>,
}

/// Outcome of one continuation level.
#[derive(Clone, Debug)]
pub struct LevelResult {
    pub dims: [usize; 3],
    pub m: Vec<f64>,
    pub stats: GnStats,
}

/// Run the full continuation. `centers` are the wave-grid element centers
/// (3-D coordinates; put 0 on inactive axes), `m0_value` the homogeneous
/// starting guess. Returns the finest-level field plus per-level records.
pub fn invert_multiscale(
    eq: &dyn ScalarWaveEq,
    forcing: &(dyn Fn(usize, &mut [f64]) + Sync),
    data: &[Vec<f64>],
    centers: &[[f64; 3]],
    m0_value: f64,
    cfg: &MultiscaleConfig,
) -> (Vec<f64>, Vec<LevelResult>) {
    assert!(!cfg.grids.is_empty());
    if let Some(fs) = &cfg.freq_schedule {
        assert_eq!(fs.len(), cfg.grids.len());
    }
    let mut results: Vec<LevelResult> = Vec::with_capacity(cfg.grids.len());
    let mut m_prev: Vec<f64> = vec![m0_value];
    let mut dims_prev = [1usize, 1, 1];
    for (level, &dims) in cfg.grids.iter().enumerate() {
        let map = MaterialMap::new(centers, cfg.domain, dims);
        let spacing = std::array::from_fn(|a| {
            if dims[a] > 1 {
                cfg.domain[a] / (dims[a] - 1) as f64
            } else {
                1.0
            }
        });
        let tv = TvReg { dims, spacing, eps: cfg.tv_eps, beta: cfg.tv_beta };
        let m_init = prolong(&m_prev, dims_prev, dims);
        // A corner at/above Nyquist means "unfiltered" (typical for the
        // finest level of a frequency-continuation schedule).
        let nyquist = 0.5 / eq.dt();
        let level_data: Vec<Vec<f64>> = match &cfg.freq_schedule {
            Some(fs) if fs[level] < nyquist => {
                data.iter().map(|t| lowpass_filtfilt(t, eq.dt(), fs[level])).collect()
            }
            _ => data.to_vec(),
        };
        let (m, stats) =
            invert_material(eq, forcing, &level_data, &map, &tv, &m_init, &cfg.per_level);
        m_prev = m.clone();
        dims_prev = dims;
        results.push(LevelResult { dims, m, stats });
    }
    (m_prev, results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use quake_antiplane::{ShConfig, ShSolver};
    use quake_solver::wave::forward;

    #[test]
    fn continuation_refines_through_levels() {
        let s = ShSolver::new(&ShConfig {
            nx: 12,
            nz: 8,
            h: 500.0,
            rho: 2200.0,
            dt: 0.05,
            n_steps: 60,
            receivers: vec![],
            mu_background: 2200.0 * 2000.0 * 2000.0,
            absorbing: [true; 3],
        })
        .with_surface_receivers(8);
        let centers: Vec<[f64; 3]> = (0..quake_solver::wave::ScalarWaveEq::n_elements(&s))
            .map(|e| {
                let c = s.elem_center(e);
                [c[0], c[1], 0.0]
            })
            .collect();
        let base = 2200.0 * 2000.0f64.powi(2);
        // Target representable on the finest level (4x3).
        let fine = [4usize, 3, 1];
        let map_fine = MaterialMap::new(&centers, [6000.0, 4000.0, 1.0], fine);
        let mut m_true = vec![base; map_fine.n_param()];
        m_true[5] = 1.3 * base;
        let forcing = move |k: usize, f: &mut [f64]| {
            if k < 8 {
                f[40] += 1e8;
            }
        };
        let data =
            forward(&s, &map_fine.interpolate(&m_true), &mut |k, f| forcing(k, f), false).traces;
        let cfg = MultiscaleConfig {
            grids: vec![[2, 2, 1], [3, 2, 1], [4, 3, 1]],
            domain: [6000.0, 4000.0, 1.0],
            tv_eps: 0.01 * base / 2000.0,
            tv_beta: 1e-26,
            per_level: GnConfig {
                max_gn_iters: 12,
                grad_tol: 1e-4,
                barrier: Some((0.1 * base, 1e-6)),
                ..GnConfig::default()
            },
            freq_schedule: None,
        };
        let (m, levels) = invert_multiscale(&s, &forcing, &data, &centers, base, &cfg);
        assert_eq!(levels.len(), 3);
        assert_eq!(m.len(), 12);
        // Misfit decreases down the cascade.
        let j_first = levels[0].stats.misfit_history.last().copied().unwrap();
        let j_last = levels[2].stats.misfit_history.last().copied().unwrap();
        assert!(j_last < j_first, "cascade did not improve: {j_first} -> {j_last}");
        // The anomalous vertex is recovered at the finest level.
        let rel = (m[5] - m_true[5]).abs() / m_true[5];
        assert!(rel < 0.08, "vertex 5: {} vs {} ({rel})", m[5], m_true[5]);

        // Frequency continuation: low-pass the coarse levels' data. The
        // final level sees (almost) unfiltered data, so the recovery should
        // remain comparable.
        let cfg_fc = MultiscaleConfig { freq_schedule: Some(vec![0.5, 1.0, 1e9]), ..cfg.clone() };
        let (m_fc, levels_fc) = invert_multiscale(&s, &forcing, &data, &centers, base, &cfg_fc);
        assert_eq!(levels_fc.len(), 3);
        let rel_fc = (m_fc[5] - m_true[5]).abs() / m_true[5];
        assert!(rel_fc < 0.15, "freq continuation degraded recovery: {rel_fc}");
    }
}
