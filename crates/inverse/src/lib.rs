//! Seismic inversion framework (Section 3 of the paper).
//!
//! Solves the nonlinear least-squares problem (3.1): find the material field
//! `mu(x)` and/or the source parameter fields `(T, t0, u0)` along the fault
//! that minimize the misfit between predicted and observed seismograms,
//! subject to the wave equation, with total-variation regularization on the
//! material and Tikhonov regularization on the source.
//!
//! The machinery:
//!
//! - [`matmap`]: the inversion-grid -> element-moduli interpolation operator
//!   `P` (the paper's material grid is independent of the wave grid;
//!   Table 3.1 sweeps it from 5^3 to 129^3 vertices),
//! - [`regularization`]: smoothed total variation (with the lagged-
//!   diffusivity Gauss-Newton Hessian) and Tikhonov smoothing,
//! - [`misfit`]: trace misfits, residuals and the 5% noise model,
//! - [`frankel`]: the Frankel two-step stationary iteration (used by the
//!   reduced-Hessian preconditioner experiments),
//! - [`gncg`]: the multiscale Gauss-Newton-Krylov driver — matrix-free CG on
//!   the reduced Hessian (each product = one incremental forward + one
//!   incremental adjoint solve), Morales-Nocedal L-BFGS preconditioning from
//!   CG secant pairs, Armijo line search and a log-barrier keeping the
//!   moduli positive,
//! - [`multiscale`]: grid-continuation driver (Fig 3.2's 1x1 -> 257x257
//!   cascade) and frequency continuation via progressive low-pass data,
//! - [`source`]: Gauss-Newton inversion for the fault's delay-time,
//!   rise-time and amplitude fields (Fig 3.3).

pub mod checkpoint;
pub mod frankel;
pub mod gncg;
pub mod matmap;
pub mod misfit;
pub mod multiscale;
pub mod regularization;
pub mod source;

pub use checkpoint::GnCheckpoint;
pub use gncg::{
    invert_material, invert_material_resumable, invert_material_traced, GnConfig, GnStats,
};
pub use matmap::MaterialMap;
pub use misfit::{add_noise, misfit_value, residuals};
pub use multiscale::{invert_multiscale, LevelResult, MultiscaleConfig};
pub use regularization::{TikhonovReg, TvReg};
pub use source::{invert_source, SourceInversionConfig, SourceInversionResult};
