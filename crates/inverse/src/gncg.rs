//! The multiscale Gauss-Newton-Krylov material inversion driver.
//!
//! Each Gauss-Newton iteration solves the reduced-Hessian system
//! `H dm = -g` by preconditioned conjugate gradients, where every
//! Hessian-vector product costs one *incremental forward* solve (forcing
//! `-dK(P v) u_k` from the stored state history) and one *incremental
//! adjoint* solve — exactly the structure of the paper: "each CG iteration
//! requires one forward and one adjoint wave propagation solution".
//!
//! `H = P^T G^T W G P + beta TV'' + barrier''` is symmetric positive
//! definite with appropriate regularization, so CG applies; the
//! preconditioner is a Morales-Nocedal limited-memory BFGS operator built
//! from the *secant pairs `(p, Hp)` that CG itself produces* — free, exact
//! curvature information reused across Gauss-Newton iterations. An
//! Armijo backtracking line search guarantees global convergence and a
//! logarithmic barrier keeps the moduli positive (Section 3.1).

use crate::checkpoint::GnCheckpoint;
use crate::matmap::MaterialMap;
use crate::misfit::{misfit_value, residuals};
use crate::regularization::TvReg;
use quake_ckpt::{CheckpointWriter, CkptError};
use quake_solver::wave::{adjoint, forward, material_gradient, ScalarWaveEq};
use quake_telemetry::Registry;
use std::collections::VecDeque;

/// Gauss-Newton configuration.
#[derive(Clone, Debug)]
pub struct GnConfig {
    pub max_gn_iters: usize,
    pub max_cg_iters: usize,
    /// Relative CG tolerance (the "forcing term" eta).
    pub cg_tol: f64,
    /// Stop when `||g|| <= grad_tol * ||g_0||`.
    pub grad_tol: f64,
    /// Stop when the data misfit falls below this (exact-fit problems).
    pub misfit_tol: f64,
    pub armijo_c1: f64,
    pub max_linesearch: usize,
    /// L-BFGS preconditioner memory (0 disables preconditioning).
    pub lbfgs_memory: usize,
    /// Log-barrier `(m_min, relative_weight)` enforcing `m > m_min`. The
    /// effective weight is `relative_weight * J_data(m_0)`, making the
    /// setting unit-free (the misfit and the moduli live on wildly
    /// different scales).
    pub barrier: Option<(f64, f64)>,
}

impl Default for GnConfig {
    fn default() -> Self {
        GnConfig {
            max_gn_iters: 30,
            max_cg_iters: 60,
            cg_tol: 0.1,
            grad_tol: 1e-3,
            misfit_tol: 0.0,
            armijo_c1: 1e-4,
            max_linesearch: 25,
            lbfgs_memory: 10,
            barrier: None,
        }
    }
}

/// Convergence record of one inversion (feeds Table 3.1).
#[derive(Clone, Debug, Default)]
pub struct GnStats {
    pub gn_iters: usize,
    pub cg_iters_total: usize,
    pub cg_iters_per_gn: Vec<usize>,
    pub objective_history: Vec<f64>,
    pub misfit_history: Vec<f64>,
    pub grad_norms: Vec<f64>,
    pub converged: bool,
}

/// Limited-memory BFGS operator from secant pairs, applied via the two-loop
/// recursion (Morales & Nocedal's automatic preconditioner).
#[derive(Clone, Debug, Default)]
pub struct Lbfgs {
    pairs: VecDeque<(Vec<f64>, Vec<f64>, f64)>,
    memory: usize,
}

impl Lbfgs {
    pub fn new(memory: usize) -> Lbfgs {
        Lbfgs { pairs: VecDeque::new(), memory }
    }

    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Record a secant pair `(s, y = H s)`; skipped unless `s.y > 0`.
    pub fn push(&mut self, s: Vec<f64>, y: Vec<f64>) {
        if self.memory == 0 {
            return;
        }
        let sy: f64 = s.iter().zip(&y).map(|(a, b)| a * b).sum();
        if sy <= 0.0 || !sy.is_finite() {
            return;
        }
        if self.pairs.len() == self.memory {
            self.pairs.pop_front();
        }
        self.pairs.push_back((s, y, 1.0 / sy));
    }

    /// The stored secant pairs `(s, y)` in insertion order (for
    /// checkpointing; `rho` is an invariant of the pair and is recomputed by
    /// [`Lbfgs::push`] on rebuild).
    pub fn pairs_cloned(&self) -> Vec<(Vec<f64>, Vec<f64>)> {
        self.pairs.iter().map(|(s, y, _)| (s.clone(), y.clone())).collect()
    }

    /// `H^{-1} r` approximation by the two-loop recursion.
    pub fn apply(&self, r: &[f64]) -> Vec<f64> {
        let mut q = r.to_vec();
        if self.pairs.is_empty() {
            return q;
        }
        let mut alphas = vec![0.0; self.pairs.len()];
        for (i, (s, y, rho)) in self.pairs.iter().enumerate().rev() {
            let a = rho * s.iter().zip(&q).map(|(x, z)| x * z).sum::<f64>();
            alphas[i] = a;
            for (qi, yi) in q.iter_mut().zip(y) {
                *qi -= a * yi;
            }
        }
        // H0 = gamma I from the newest pair.
        let (s, y, _) = self.pairs.back().unwrap();
        let sy: f64 = s.iter().zip(y).map(|(a, b)| a * b).sum();
        let yy: f64 = y.iter().map(|v| v * v).sum();
        let gamma = if yy > 0.0 { sy / yy } else { 1.0 };
        for qi in q.iter_mut() {
            *qi *= gamma;
        }
        for (i, (s, y, rho)) in self.pairs.iter().enumerate() {
            let b = rho * y.iter().zip(&q).map(|(x, z)| x * z).sum::<f64>();
            for (qi, si) in q.iter_mut().zip(s) {
                *qi += (alphas[i] - b) * si;
            }
        }
        q
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Preconditioned CG on `H x = b`; returns `(x, iterations)` and pushes the
/// secant pairs it generates into `precond_next`.
pub fn pcg(
    hess: &mut dyn FnMut(&[f64]) -> Vec<f64>,
    b: &[f64],
    rel_tol: f64,
    max_iters: usize,
    precond: &Lbfgs,
    precond_next: &mut Lbfgs,
) -> (Vec<f64>, usize) {
    let n = b.len();
    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let b_norm = dot(b, b).sqrt();
    if b_norm == 0.0 {
        return (x, 0);
    }
    let mut z = precond.apply(&r);
    let mut p = z.clone();
    let mut rz = dot(&r, &z);
    let mut iters = 0;
    for _ in 0..max_iters {
        let q = hess(&p);
        iters += 1;
        let pq = dot(&p, &q);
        if pq <= 0.0 || !pq.is_finite() {
            // Negative curvature or breakdown: keep what we have (fall back
            // to the preconditioned steepest-descent direction at start).
            if iters == 1 {
                x = z.clone();
            }
            break;
        }
        precond_next.push(p.clone(), q.clone());
        let alpha = rz / pq;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * q[i];
        }
        if dot(&r, &r).sqrt() <= rel_tol * b_norm {
            break;
        }
        z = precond.apply(&r);
        let rz_new = dot(&r, &z);
        let beta = rz_new / rz;
        rz = rz_new;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
    }
    (x, iters)
}

// The barrier is normalized per parameter (a density functional): without
// the 1/n factor its Hessian floor would grow with the inversion grid and
// spoil the mesh independence of the CG iteration counts (Table 3.1).
fn barrier_value(m: &[f64], barrier: Option<(f64, f64)>) -> f64 {
    let Some((m_min, w)) = barrier else { return 0.0 };
    let wn = w / m.len().max(1) as f64;
    let mut acc = 0.0;
    for &v in m {
        if v <= m_min {
            return f64::INFINITY;
        }
        acc -= (v - m_min).ln();
    }
    wn * acc
}

fn barrier_gradient(m: &[f64], barrier: Option<(f64, f64)>, g: &mut [f64]) {
    let Some((m_min, w)) = barrier else { return };
    let wn = w / m.len().max(1) as f64;
    for (gi, &v) in g.iter_mut().zip(m) {
        *gi -= wn / (v - m_min);
    }
}

fn barrier_hess(m: &[f64], barrier: Option<(f64, f64)>, v: &[f64], out: &mut [f64]) {
    let Some((m_min, w)) = barrier else { return };
    let wn = w / m.len().max(1) as f64;
    for ((oi, &mi), &vi) in out.iter_mut().zip(m).zip(v) {
        *oi += wn / ((mi - m_min) * (mi - m_min)) * vi;
    }
}

/// Invert for the material parameter field on the inversion grid.
///
/// `forcing` is the (fixed, known for material inversion) source term;
/// `data` the observed receiver traces; `m0` the initial guess on the
/// inversion grid. Returns the recovered field and convergence statistics.
pub fn invert_material(
    eq: &dyn ScalarWaveEq,
    forcing: &(dyn Fn(usize, &mut [f64]) + Sync),
    data: &[Vec<f64>],
    map: &MaterialMap,
    tv: &TvReg,
    m0: &[f64],
    cfg: &GnConfig,
) -> (Vec<f64>, GnStats) {
    invert_material_traced(eq, forcing, data, map, tv, m0, cfg, &Registry::disabled())
}

/// [`invert_material`] with telemetry: spans around the forward, adjoint,
/// CG, and line-search stages of every Gauss-Newton iteration, plus one
/// `gn_iter` NDJSON event per outer iteration carrying the convergence
/// quantities of the paper's Fig 3.2/3.3 (misfit, objective, gradient norm,
/// TV and barrier terms, CG iterations, accepted step). A disabled registry
/// makes this exactly [`invert_material`].
pub fn invert_material_traced(
    eq: &dyn ScalarWaveEq,
    forcing: &(dyn Fn(usize, &mut [f64]) + Sync),
    data: &[Vec<f64>],
    map: &MaterialMap,
    tv: &TvReg,
    m0: &[f64],
    cfg: &GnConfig,
    reg: &Registry,
) -> (Vec<f64>, GnStats) {
    // Without a checkpoint writer the resumable driver cannot fail.
    invert_material_resumable(eq, forcing, data, map, tv, m0, cfg, reg, None, None).unwrap()
}

/// [`invert_material_traced`] with checkpoint/restart: pass `resume` to
/// continue from a [`GnCheckpoint`] (the inversion is then **bit-identical**
/// to one that never stopped — the checkpoint carries the iterate, the
/// L-BFGS pairs, the statistics, and the run-scaling scalars `jd0` and
/// `g0_norm`), and `ckpt = (writer, every_iters)` to persist a checkpoint
/// after every `every_iters` accepted outer iterations.
#[allow(clippy::too_many_arguments)]
pub fn invert_material_resumable(
    eq: &dyn ScalarWaveEq,
    forcing: &(dyn Fn(usize, &mut [f64]) + Sync),
    data: &[Vec<f64>],
    map: &MaterialMap,
    tv: &TvReg,
    m0: &[f64],
    cfg: &GnConfig,
    reg: &Registry,
    resume: Option<GnCheckpoint>,
    ckpt: Option<(&CheckpointWriter, u64)>,
) -> Result<(Vec<f64>, GnStats), CkptError> {
    if let Some((_, every)) = ckpt {
        assert!(every > 0, "checkpoint cadence must be positive");
    }
    let (mut m, mut stats, mut precond, mut g0_norm, jd0, start_iter) = match resume {
        Some(c) => {
            assert_eq!(c.m.len(), map.n_param(), "checkpoint is for a different grid");
            let mut precond = Lbfgs::new(cfg.lbfgs_memory);
            for (s, y) in c.lbfgs_pairs {
                precond.push(s, y);
            }
            (c.m, c.stats, precond, c.g0_norm, c.jd0, c.next_iter as usize)
        }
        None => {
            assert_eq!(m0.len(), map.n_param());
            // Scale the barrier relative to the initial data misfit so the
            // setting is unit-free.
            let jd0 = {
                let mu = map.interpolate(m0);
                let run = forward(eq, &mu, &mut |k, f| forcing(k, f), false);
                misfit_value(&run.traces, data, eq.dt())
            };
            (m0.to_vec(), GnStats::default(), Lbfgs::new(cfg.lbfgs_memory), None, jd0, 0)
        }
    };
    let barrier = cfg.barrier.map(|(m_min, w)| (m_min, w * jd0.max(1e-300)));

    let objective = |m: &[f64]| -> f64 {
        let bar = barrier_value(m, barrier);
        if !bar.is_finite() {
            return f64::INFINITY;
        }
        let mu = map.interpolate(m);
        if mu.iter().any(|&v| v <= 0.0) {
            return f64::INFINITY;
        }
        let run = forward(eq, &mu, &mut |k, f| forcing(k, f), false);
        misfit_value(&run.traces, data, eq.dt()) + tv.value(m) + bar
    };

    for it in start_iter..cfg.max_gn_iters {
        // Forward + adjoint: objective and gradient.
        let mu = map.interpolate(&m);
        let run = {
            let _s = reg.span("gn/forward");
            forward(eq, &mu, &mut |k, f| forcing(k, f), true)
        };
        let jd = misfit_value(&run.traces, data, eq.dt());
        let tv_val = tv.value(&m);
        let bar_val = barrier_value(&m, barrier);
        let jtot = jd + tv_val + bar_val;
        let res = residuals(&run.traces, data);
        let adj = {
            let _s = reg.span("gn/adjoint");
            adjoint(eq, &mu, &res)
        };
        let ge = material_gradient(eq, &run.states, &adj.states);
        let mut g = map.transpose_apply(&ge);
        tv.gradient(&m, &mut g);
        barrier_gradient(&m, barrier, &mut g);
        let g_norm = dot(&g, &g).sqrt();

        stats.objective_history.push(jtot);
        stats.misfit_history.push(jd);
        stats.grad_norms.push(g_norm);
        let g0 = *g0_norm.get_or_insert(g_norm);
        if g_norm <= cfg.grad_tol * g0.max(1e-300) || jd <= cfg.misfit_tol {
            stats.converged = true;
            reg.event(
                "gn_iter",
                &[
                    ("iter", it as f64),
                    ("misfit", jd),
                    ("objective", jtot),
                    ("grad_norm", g_norm),
                    ("tv", tv_val),
                    ("barrier", bar_val),
                    ("cg_iters", 0.0),
                    ("alpha", 0.0),
                    ("dir", -1.0),
                    ("converged", 1.0),
                ],
            );
            break;
        }
        stats.gn_iters += 1;

        // Matrix-free reduced-Hessian product.
        let diffus = tv.diffusivity(&m);
        let mut hess = |v: &[f64]| -> Vec<f64> {
            let dmu = map.interpolate(v);
            // Incremental forward: A du_{k+1} = B du_k + C du_{k-1}
            //                      - dt^2 dK(dmu) u_k.
            let inc =
                forward(eq, &mu, &mut |k, f| eq.apply_dk(&dmu, &run.states[k], f, -1.0), false);
            // Incremental adjoint from the incremental traces.
            let dadj = adjoint(eq, &mu, &inc.traces);
            let he = material_gradient(eq, &run.states, &dadj.states);
            let mut hv = map.transpose_apply(&he);
            tv.hess_apply(&diffus, v, &mut hv);
            barrier_hess(&m, barrier, v, &mut hv);
            hv
        };
        let minus_g: Vec<f64> = g.iter().map(|v| -v).collect();
        let mut precond_next = Lbfgs::new(cfg.lbfgs_memory);
        let (dm, cg_iters) = {
            let _s = reg.span("gn/cg");
            pcg(&mut hess, &minus_g, cfg.cg_tol, cfg.max_cg_iters, &precond, &mut precond_next)
        };
        if !precond_next.is_empty() {
            precond = precond_next;
        }
        stats.cg_iters_per_gn.push(cg_iters);
        stats.cg_iters_total += cg_iters;

        // Armijo backtracking along the GN direction, retrying along
        // steepest descent if that fails (nonsmooth kinks of the slip ramp
        // or a poor GN model can spoil the CG direction).
        let mut accepted = false;
        let mut step_alpha = 0.0;
        let mut step_dir = -1.0; // 0 = Gauss-Newton, 1 = steepest descent
        {
            let _s = reg.span("gn/linesearch");
            'directions: for (di, dir) in [&dm, &minus_g].into_iter().enumerate() {
                let slope = dot(&g, dir);
                if slope >= 0.0 {
                    continue;
                }
                let mut alpha = 1.0;
                for _ in 0..cfg.max_linesearch {
                    let trial: Vec<f64> =
                        m.iter().zip(dir.iter()).map(|(a, b)| a + alpha * b).collect();
                    let jt = objective(&trial);
                    if jt <= jtot + cfg.armijo_c1 * alpha * slope {
                        m = trial;
                        accepted = true;
                        step_alpha = alpha;
                        step_dir = di as f64;
                        break 'directions;
                    }
                    alpha *= 0.5;
                }
            }
        }
        reg.event(
            "gn_iter",
            &[
                ("iter", it as f64),
                ("misfit", jd),
                ("objective", jtot),
                ("grad_norm", g_norm),
                ("tv", tv_val),
                ("barrier", bar_val),
                ("cg_iters", cg_iters as f64),
                ("alpha", step_alpha),
                ("dir", step_dir),
                ("converged", 0.0),
            ],
        );
        if !accepted {
            // Stuck: can't descend along any available direction.
            break;
        }
        if let Some((writer, every)) = ckpt {
            if ((it + 1) as u64).is_multiple_of(every) {
                let snap = GnCheckpoint {
                    next_iter: (it + 1) as u64,
                    m: m.clone(),
                    lbfgs_pairs: precond.pairs_cloned(),
                    stats: stats.clone(),
                    g0_norm,
                    jd0,
                };
                writer.write(snap.next_iter, &snap, reg)?;
            }
        }
    }
    Ok((m, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use quake_antiplane::{ShConfig, ShSolver};

    fn solver() -> ShSolver {
        ShSolver::new(&ShConfig {
            nx: 12,
            nz: 8,
            h: 500.0,
            rho: 2200.0,
            dt: 0.05,
            n_steps: 60,
            receivers: vec![],
            mu_background: 2200.0 * 2000.0 * 2000.0,
            absorbing: [true; 3],
        })
        .with_surface_receivers(8)
    }

    fn centers(s: &ShSolver) -> Vec<[f64; 3]> {
        (0..s.n_elements())
            .map(|e| {
                let c = s.elem_center(e);
                [c[0], c[1], 0.0]
            })
            .collect()
    }

    fn forcing_fn(src: usize) -> impl Fn(usize, &mut [f64]) + Sync {
        move |k: usize, f: &mut [f64]| {
            if k < 8 {
                f[src] += 1e8 * ((k as f64 + 1.0) / 8.0);
            }
        }
    }

    #[test]
    fn lbfgs_two_loop_inverts_diagonal_exactly() {
        // For a diagonal H with enough independent pairs, L-BFGS applied to
        // a vector in the span reproduces H^{-1} v.
        let diag = [2.0, 0.5, 4.0];
        let mut l = Lbfgs::new(8);
        for i in 0..3 {
            let mut s = vec![0.0; 3];
            s[i] = 1.0;
            let y: Vec<f64> = s.iter().zip(&diag).map(|(a, d)| a * d).collect();
            l.push(s, y);
        }
        let v = vec![1.0, 1.0, 1.0];
        let got = l.apply(&v);
        for (g, d) in got.iter().zip(&diag) {
            assert!((g - 1.0 / d).abs() < 1e-10, "{got:?}");
        }
    }

    #[test]
    fn pcg_solves_spd_system() {
        // H = diag + rank-1, SPD.
        let n = 12;
        let hess = |v: &[f64]| -> Vec<f64> {
            let s: f64 = v.iter().sum();
            v.iter().enumerate().map(|(i, &x)| (2.0 + i as f64) * x + 0.5 * s).collect()
        };
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
        let b = hess(&x_true);
        let none = Lbfgs::new(0);
        let mut next = Lbfgs::new(0);
        let (x, iters) = pcg(&mut |v| hess(v), &b, 1e-10, 100, &none, &mut next);
        assert!(iters <= n + 2, "CG used {iters} iterations");
        for (a, b) in x.iter().zip(&x_true) {
            assert!((a - b).abs() < 1e-7);
        }
    }

    #[test]
    fn gn_hessian_is_symmetric_psd() {
        let s = solver();
        let map = MaterialMap::new(&centers(&s), [6000.0, 4000.0, 1.0], [4, 3, 1]);
        let tv = TvReg { dims: [4, 3, 1], spacing: [2000.0, 2000.0, 1.0], eps: 1e3, beta: 1e-4 };
        let m: Vec<f64> = (0..map.n_param())
            .map(|i| 2200.0 * 2000.0f64.powi(2) * (1.0 + 0.05 * (i % 3) as f64))
            .collect();
        let mu = map.interpolate(&m);
        let forcing = forcing_fn(40);
        let run = forward(&s, &mu, &mut |k, f| forcing(k, f), true);
        let diffus = tv.diffusivity(&m);
        let hess = |v: &[f64]| -> Vec<f64> {
            let dmu = map.interpolate(v);
            let inc =
                forward(&s, &mu, &mut |k, f| s.apply_dk(&dmu, &run.states[k], f, -1.0), false);
            let dadj = adjoint(&s, &mu, &inc.traces);
            let he = material_gradient(&s, &run.states, &dadj.states);
            let mut hv = map.transpose_apply(&he);
            tv.hess_apply(&diffus, v, &mut hv);
            hv
        };
        let mut st = 77u64;
        let mut rnd = || {
            st = st.wrapping_mul(6364136223846793005).wrapping_add(1);
            (st >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let a: Vec<f64> = (0..map.n_param()).map(|_| rnd() * 1e9).collect();
        let b: Vec<f64> = (0..map.n_param()).map(|_| rnd() * 1e9).collect();
        let ha = hess(&a);
        let hb = hess(&b);
        let ahb = dot(&a, &hb);
        let bha = dot(&b, &ha);
        assert!((ahb - bha).abs() < 1e-9 * (1.0 + ahb.abs()), "H not symmetric: {ahb} vs {bha}");
        assert!(dot(&a, &ha) >= -1e-9 * dot(&a, &a), "H not PSD");
    }

    #[test]
    fn recovers_representable_target() {
        // Inverse crime on purpose: the target lives on the inversion grid,
        // so Gauss-Newton must drive the misfit (essentially) to zero and
        // recover the vertex values.
        let s = solver();
        let dims = [4, 3, 1];
        let map = MaterialMap::new(&centers(&s), [6000.0, 4000.0, 1.0], dims);
        let base = 2200.0 * 2000.0f64.powi(2);
        let mut m_true = vec![base; map.n_param()];
        m_true[5] = base * 1.25;
        m_true[6] = base * 0.8;
        let forcing = forcing_fn(40);
        let data = forward(&s, &map.interpolate(&m_true), &mut |k, f| forcing(k, f), false).traces;
        let tv =
            TvReg { dims, spacing: [2000.0, 2000.0, 1.0], eps: 0.01 * base / 2000.0, beta: 1e-26 };
        let m0 = vec![base; map.n_param()];
        let cfg = GnConfig {
            max_gn_iters: 20,
            grad_tol: 1e-5,
            barrier: Some((0.1 * base, 1e-6)),
            ..GnConfig::default()
        };
        let (m, stats) = invert_material(&s, &forcing, &data, &map, &tv, &m0, &cfg);
        assert!(stats.gn_iters >= 1);
        let j0 = stats.misfit_history[0];
        let jn = *stats.misfit_history.last().unwrap();
        assert!(jn < 1e-4 * j0, "misfit only fell {j0} -> {jn}");
        // Interior vertices recovered; edge vertices are weakly constrained.
        for &i in &[5usize, 6] {
            let rel = (m[i] - m_true[i]).abs() / m_true[i];
            assert!(rel < 0.05, "vertex {i}: {} vs {} ({rel})", m[i], m_true[i]);
        }
    }

    #[test]
    fn traced_inversion_emits_one_event_per_gn_iteration() {
        let s = solver();
        let dims = [4, 3, 1];
        let map = MaterialMap::new(&centers(&s), [6000.0, 4000.0, 1.0], dims);
        let base = 2200.0 * 2000.0f64.powi(2);
        let mut m_true = vec![base; map.n_param()];
        m_true[5] = base * 1.2;
        let forcing = forcing_fn(40);
        let data = forward(&s, &map.interpolate(&m_true), &mut |k, f| forcing(k, f), false).traces;
        let tv =
            TvReg { dims, spacing: [2000.0, 2000.0, 1.0], eps: 0.01 * base / 2000.0, beta: 1e-26 };
        let m0 = vec![base; map.n_param()];
        let cfg = GnConfig { max_gn_iters: 3, ..GnConfig::default() };

        let reg = Registry::new(0);
        let (m_traced, stats) =
            invert_material_traced(&s, &forcing, &data, &map, &tv, &m0, &cfg, &reg);

        // One gn_iter event per objective evaluation (including a converged
        // final pass, if any), each a parseable NDJSON line.
        assert_eq!(reg.n_events(), stats.objective_history.len());
        let nd = reg.ndjson();
        assert!(nd.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
        assert!(nd.contains("\"event\":\"gn_iter\""));
        assert!(nd.contains("\"misfit\":"));
        assert!(nd.contains("\"cg_iters\":"));
        // The staged spans were timed as often as the stages ran.
        let fwd = reg.span_stats("gn/forward").unwrap();
        assert_eq!(fwd.count as usize, stats.objective_history.len());
        assert_eq!(reg.span_stats("gn/cg").unwrap().count as usize, stats.gn_iters);
        assert!(reg.span_stats("gn/linesearch").unwrap().total_secs() >= 0.0);

        // Tracing must not perturb the optimization.
        let (m_plain, _) = invert_material(&s, &forcing, &data, &map, &tv, &m0, &cfg);
        assert_eq!(m_traced, m_plain);
    }

    #[test]
    fn checkpointed_inversion_resumes_bit_identically() {
        use quake_ckpt::{CheckpointReader, CheckpointWriter};
        let s = solver();
        let dims = [4, 3, 1];
        let map = MaterialMap::new(&centers(&s), [6000.0, 4000.0, 1.0], dims);
        let base = 2200.0 * 2000.0f64.powi(2);
        let mut m_true = vec![base; map.n_param()];
        m_true[5] = base * 1.2;
        m_true[6] = base * 0.85;
        let forcing = forcing_fn(40);
        let data = forward(&s, &map.interpolate(&m_true), &mut |k, f| forcing(k, f), false).traces;
        let tv =
            TvReg { dims, spacing: [2000.0, 2000.0, 1.0], eps: 0.01 * base / 2000.0, beta: 1e-26 };
        let m0 = vec![base; map.n_param()];
        // Barrier + preconditioner on, so the checkpoint must carry jd0,
        // g0_norm, AND the L-BFGS pairs to reproduce the straight run.
        let cfg = GnConfig {
            max_gn_iters: 4,
            grad_tol: 1e-12,
            barrier: Some((0.1 * base, 1e-6)),
            ..GnConfig::default()
        };
        let reg = Registry::disabled();

        let (m_straight, st_straight) = invert_material(&s, &forcing, &data, &map, &tv, &m0, &cfg);

        let dir = std::env::temp_dir()
            .join("quake-inverse-tests")
            .join(format!("gn-resume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let writer = CheckpointWriter::new(&dir, "gncg").unwrap();
        // Leg 1: stop after 2 outer iterations, checkpointing every one.
        let cfg_half = GnConfig { max_gn_iters: 2, ..cfg.clone() };
        let (_, st_half) = invert_material_resumable(
            &s,
            &forcing,
            &data,
            &map,
            &tv,
            &m0,
            &cfg_half,
            &reg,
            None,
            Some((&writer, 1)),
        )
        .unwrap();
        assert_eq!(st_half.gn_iters, 2);

        // Leg 2: restore from disk and run the remaining iterations.
        let reader = CheckpointReader::new(&dir, "gncg");
        let (step, snap): (u64, GnCheckpoint) = reader.latest_valid(&reg).unwrap();
        assert_eq!(step, 2);
        assert!(!snap.lbfgs_pairs.is_empty(), "CG must have harvested secant pairs");
        let (m_resumed, st_resumed) = invert_material_resumable(
            &s,
            &forcing,
            &data,
            &map,
            &tv,
            &m0,
            &cfg,
            &reg,
            Some(snap),
            None,
        )
        .unwrap();

        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&m_straight), bits(&m_resumed), "iterates diverged across resume");
        assert_eq!(st_straight.gn_iters, st_resumed.gn_iters);
        assert_eq!(st_straight.cg_iters_per_gn, st_resumed.cg_iters_per_gn);
        assert_eq!(bits(&st_straight.objective_history), bits(&st_resumed.objective_history));
        assert_eq!(bits(&st_straight.misfit_history), bits(&st_resumed.misfit_history));
        assert_eq!(bits(&st_straight.grad_norms), bits(&st_resumed.grad_norms));
        assert_eq!(st_straight.converged, st_resumed.converged);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn barrier_keeps_modulus_positive() {
        let m = vec![1.0, 2.0];
        assert!(barrier_value(&m, Some((0.5, 1.0))).is_finite());
        assert_eq!(barrier_value(&[0.4, 2.0], Some((0.5, 1.0))), f64::INFINITY);
        // Gradient pushes away from the bound.
        let mut g = vec![0.0; 2];
        barrier_gradient(&[0.6, 2.0], Some((0.5, 1.0)), &mut g);
        assert!(g[0] < -1.0, "barrier should push up near the bound: {g:?}");
        assert!(g[1] > -1.0);
    }
}
