//! Source inversion (Fig 3.3): recover the fault's delay-time `T(s)`,
//! rise-time `t0(s)` and dislocation-amplitude `u0(s)` fields.
//!
//! The material model is known; the unknowns parameterize the forcing, so
//! the reduced gradient is `dJ/dtheta_j = -dt^2 sum_k lambda_{k+1}^T
//! df_k/dtheta_j` with the same adjoint field as the material problem, and
//! every Gauss-Newton Hessian product is one incremental forward (forcing
//! `df/dtheta . v`) plus one incremental adjoint. Tikhonov terms
//! (`beta_2 |grad u0|^2 + beta_3 |grad t0|^2 + beta_4 |grad T|^2`) penalize
//! oscillation along the fault.

use crate::gncg::{pcg, GnConfig, GnStats, Lbfgs};
use crate::misfit::{misfit_value, residuals};
use crate::regularization::TikhonovReg;
use quake_antiplane::{FaultSource, ShSolver};
use quake_model::SlipFunction;
use quake_solver::wave::{adjoint, forward, ScalarWaveEq};

/// Configuration of the source inversion.
#[derive(Clone, Debug)]
pub struct SourceInversionConfig {
    pub gn: GnConfig,
    /// Tikhonov weights for (delay, rise, amplitude) — beta_4, beta_3,
    /// beta_2 in the paper's numbering.
    pub beta_delay: f64,
    pub beta_rise: f64,
    pub beta_amplitude: f64,
    /// Lower bounds keeping the parameters physical.
    pub min_rise: f64,
    pub min_amplitude: f64,
}

impl Default for SourceInversionConfig {
    fn default() -> Self {
        SourceInversionConfig {
            gn: GnConfig { max_gn_iters: 25, grad_tol: 1e-4, ..GnConfig::default() },
            beta_delay: 1e-3,
            beta_rise: 1e-3,
            beta_amplitude: 1e-3,
            min_rise: 0.05,
            min_amplitude: 0.0,
        }
    }
}

/// Result: the three recovered fields plus selected iterates (for the
/// initial / 5th / converged columns of Fig 3.3).
#[derive(Clone, Debug)]
pub struct SourceInversionResult {
    pub delays: Vec<f64>,
    pub rises: Vec<f64>,
    pub amplitudes: Vec<f64>,
    pub stats: GnStats,
    /// `(iteration, delays, rises, amplitudes)` snapshots.
    pub iterates: Vec<(usize, Vec<f64>, Vec<f64>, Vec<f64>)>,
}

struct Theta {
    delays: Vec<f64>,
    rises: Vec<f64>,
    amps: Vec<f64>,
}

impl Theta {
    fn from_flat(v: &[f64], ns: usize) -> Theta {
        Theta {
            delays: v[..ns].to_vec(),
            rises: v[ns..2 * ns].to_vec(),
            amps: v[2 * ns..].to_vec(),
        }
    }

    fn to_flat(&self) -> Vec<f64> {
        let mut v = self.delays.clone();
        v.extend_from_slice(&self.rises);
        v.extend_from_slice(&self.amps);
        v
    }
}

fn fault_with(template: &FaultSource, th: &Theta) -> FaultSource {
    let mut f = template.clone();
    f.params = th
        .delays
        .iter()
        .zip(&th.rises)
        .zip(&th.amps)
        .map(|((&d, &r), &a)| SlipFunction::new(d, r, a))
        .collect();
    f
}

/// Reduced gradient assembly: `-dt^2 sum_k lambda_{k+1}^T df_k/dtheta`.
fn assemble_source_gradient(eq: &ShSolver, fault: &FaultSource, lambda: &[Vec<f64>]) -> Vec<f64> {
    let ns = fault.n_segments();
    let dt = eq.dt();
    let dt2 = dt * dt;
    let mut g = vec![0.0; 3 * ns];
    for k in 0..eq.n_steps() {
        let t = k as f64 * dt;
        let lam = &lambda[k + 1];
        for (j, (w, p)) in fault.seg_weights.iter().zip(&fault.params).enumerate() {
            let lamw: f64 = w.iter().map(|&(nd, wt)| wt * lam[nd]).sum();
            if lamw == 0.0 {
                continue;
            }
            g[j] -= dt2 * p.dg_d_delay(t) * lamw;
            g[ns + j] -= dt2 * p.dg_d_rise(t) * lamw;
            g[2 * ns + j] -= dt2 * p.dg_d_amplitude(t) * lamw;
        }
    }
    g
}

/// Invert for the source parameter fields along the fault.
pub fn invert_source(
    eq: &ShSolver,
    template: &FaultSource,
    mu: &[f64],
    data: &[Vec<f64>],
    initial: (&[f64], &[f64], &[f64]),
    cfg: &SourceInversionConfig,
) -> SourceInversionResult {
    let ns = template.n_segments();
    assert_eq!(initial.0.len(), ns);
    assert_eq!(initial.1.len(), ns);
    assert_eq!(initial.2.len(), ns);
    let spacing_h = eq.cfg.h;
    let reg = |beta: f64| TikhonovReg { dims: [ns, 1, 1], spacing: [spacing_h, 1.0, 1.0], beta };
    let reg_d = reg(cfg.beta_delay);
    let reg_r = reg(cfg.beta_rise);
    let reg_a = reg(cfg.beta_amplitude);

    let reg_value = |th: &Theta| -> f64 {
        if th.rises.iter().any(|&r| r < cfg.min_rise)
            || th.amps.iter().any(|&a| a < cfg.min_amplitude)
        {
            return f64::INFINITY;
        }
        reg_d.value(&th.delays) + reg_r.value(&th.rises) + reg_a.value(&th.amps)
    };

    let objective = |th: &Theta| -> f64 {
        let rv = reg_value(th);
        if !rv.is_finite() {
            return f64::INFINITY;
        }
        let fault = fault_with(template, th);
        let run = forward(eq, mu, &mut |k, f| fault.add_force(k as f64 * eq.dt(), f), false);
        misfit_value(&run.traces, data, eq.dt()) + rv
    };

    let mut th =
        Theta { delays: initial.0.to_vec(), rises: initial.1.to_vec(), amps: initial.2.to_vec() };
    let mut stats = GnStats::default();
    let mut iterates = vec![(0usize, th.delays.clone(), th.rises.clone(), th.amps.clone())];
    let mut precond = Lbfgs::new(cfg.gn.lbfgs_memory);
    let mut g0_norm: Option<f64> = None;

    for it in 0..cfg.gn.max_gn_iters {
        let fault = fault_with(template, &th);
        let run = forward(eq, mu, &mut |k, f| fault.add_force(k as f64 * eq.dt(), f), false);
        let jd = misfit_value(&run.traces, data, eq.dt());
        let jtot = jd + reg_value(&th);
        let res = residuals(&run.traces, data);
        let adj = adjoint(eq, mu, &res);
        let mut g = assemble_source_gradient(eq, &fault, &adj.states);
        reg_d.gradient(&th.delays, &mut g[..ns]);
        reg_r.gradient(&th.rises, &mut g[ns..2 * ns]);
        reg_a.gradient(&th.amps, &mut g[2 * ns..]);
        let g_norm = g.iter().map(|v| v * v).sum::<f64>().sqrt();

        stats.objective_history.push(jtot);
        stats.misfit_history.push(jd);
        stats.grad_norms.push(g_norm);
        let g0 = *g0_norm.get_or_insert(g_norm);
        if g_norm <= cfg.gn.grad_tol * g0.max(1e-300) || jd <= cfg.gn.misfit_tol {
            stats.converged = true;
            break;
        }
        stats.gn_iters += 1;

        // GN Hessian-vector product.
        let mut hess = |v: &[f64]| -> Vec<f64> {
            let vt = Theta::from_flat(v, ns);
            let inc = forward(
                eq,
                mu,
                &mut |k, f| {
                    fault.add_force_direction(
                        &vt.delays,
                        &vt.rises,
                        &vt.amps,
                        k as f64 * eq.dt(),
                        f,
                    )
                },
                false,
            );
            let dadj = adjoint(eq, mu, &inc.traces);
            let mut hv = assemble_source_gradient(eq, &fault, &dadj.states);
            reg_d.hess_apply(&vt.delays, &mut hv[..ns]);
            reg_r.hess_apply(&vt.rises, &mut hv[ns..2 * ns]);
            reg_a.hess_apply(&vt.amps, &mut hv[2 * ns..]);
            hv
        };
        let minus_g: Vec<f64> = g.iter().map(|v| -v).collect();
        let mut precond_next = Lbfgs::new(cfg.gn.lbfgs_memory);
        let (mut dth, cg_iters) = pcg(
            &mut hess,
            &minus_g,
            cfg.gn.cg_tol,
            cfg.gn.max_cg_iters,
            &precond,
            &mut precond_next,
        );
        if !precond_next.is_empty() {
            precond = precond_next;
        }
        stats.cg_iters_per_gn.push(cg_iters);
        stats.cg_iters_total += cg_iters;

        let slope: f64 = g.iter().zip(&dth).map(|(a, b)| a * b).sum();
        if slope >= 0.0 {
            dth = minus_g.clone();
        }
        let slope: f64 = g.iter().zip(&dth).map(|(a, b)| a * b).sum();

        let flat = th.to_flat();
        let mut accepted = false;
        'directions: for dir in [&dth, &minus_g] {
            let slope: f64 = g.iter().zip(dir.iter()).map(|(a, b)| a * b).sum();
            if slope >= 0.0 {
                continue;
            }
            let mut alpha = 1.0;
            for _ in 0..cfg.gn.max_linesearch {
                let trial: Vec<f64> =
                    flat.iter().zip(dir.iter()).map(|(a, b)| a + alpha * b).collect();
                let trial_th = Theta::from_flat(&trial, ns);
                if objective(&trial_th) <= jtot + cfg.gn.armijo_c1 * alpha * slope {
                    th = trial_th;
                    accepted = true;
                    break 'directions;
                }
                alpha *= 0.5;
            }
        }
        let _ = slope;
        iterates.push((it + 1, th.delays.clone(), th.rises.clone(), th.amps.clone()));
        if !accepted {
            break;
        }
    }

    SourceInversionResult {
        delays: th.delays,
        rises: th.rises,
        amplitudes: th.amps,
        stats,
        iterates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quake_antiplane::ShConfig;

    fn setup() -> (ShSolver, Vec<f64>, FaultSource) {
        let s = ShSolver::new(&ShConfig {
            nx: 20,
            nz: 12,
            h: 500.0,
            rho: 2200.0,
            dt: 0.04,
            n_steps: 250,
            receivers: vec![],
            mu_background: 2200.0 * 2000.0 * 2000.0,
            absorbing: [true; 3],
        })
        .with_surface_receivers(16);
        let mu = vec![2200.0 * 2000.0 * 2000.0; quake_solver::wave::ScalarWaveEq::n_elements(&s)];
        // Rise times must be resolvable by the grid's usable bandwidth
        // (~0.4 Hz here), so the target uses 1.5 s.
        let fault = FaultSource::from_hypocenter(&s, &mu, 10, 3, 8, 5, 2800.0, 1.5, 1.0);
        (s, mu, fault)
    }

    #[test]
    fn source_gradient_matches_finite_differences() {
        let (s, mu, template) = setup();
        let ns = template.n_segments();
        // Target data from the template's own parameters.
        let data =
            forward(&s, &mu, &mut |k, f| template.add_force(k as f64 * s.dt(), f), false).traces;
        // Evaluate the gradient at a perturbed point.
        let th = Theta {
            delays: template.params.iter().map(|p| p.delay + 0.13).collect(),
            rises: template.params.iter().map(|p| p.rise + 0.07).collect(),
            amps: template.params.iter().map(|p| p.amplitude * 1.1).collect(),
        };
        let fault = fault_with(&template, &th);
        let run = forward(&s, &mu, &mut |k, f| fault.add_force(k as f64 * s.dt(), f), false);
        let res = residuals(&run.traces, &data);
        let adj = adjoint(&s, &mu, &res);
        let g = assemble_source_gradient(&s, &fault, &adj.states);

        let misfit_of = |flat: &[f64]| -> f64 {
            let t = Theta::from_flat(flat, ns);
            let fault = fault_with(&template, &t);
            let run = forward(&s, &mu, &mut |k, f| fault.add_force(k as f64 * s.dt(), f), false);
            misfit_value(&run.traces, &data, s.dt())
        };
        let flat = th.to_flat();
        for &i in &[0usize, ns / 2, ns, ns + 2, 2 * ns, 3 * ns - 1] {
            let eps = 1e-5;
            let mut p = flat.clone();
            p[i] += eps;
            let mut m = flat.clone();
            m[i] -= eps;
            let fd = (misfit_of(&p) - misfit_of(&m)) / (2.0 * eps);
            let rel = (g[i] - fd).abs() / (1.0 + fd.abs().max(g[i].abs()));
            assert!(rel < 2e-3, "theta[{i}]: adjoint {} vs fd {fd} ({rel})", g[i]);
        }
    }

    #[test]
    fn recovers_target_source() {
        let (s, mu, template) = setup();
        let data =
            forward(&s, &mu, &mut |k, f| template.add_force(k as f64 * s.dt(), f), false).traces;
        let ns = template.n_segments();
        // Start from a wrong guess: constant delay, slower rise, weaker slip.
        let d0 = vec![0.5; ns];
        let r0 = vec![2.5; ns];
        let a0 = vec![0.7; ns];
        let cfg = SourceInversionConfig {
            gn: GnConfig { max_gn_iters: 40, grad_tol: 1e-8, ..GnConfig::default() },
            beta_delay: 1e-6,
            beta_rise: 1e-6,
            beta_amplitude: 1e-6,
            ..SourceInversionConfig::default()
        };
        let out = invert_source(&s, &template, &mu, &data, (&d0, &r0, &a0), &cfg);
        let j0 = out.stats.misfit_history[0];
        let jn = *out.stats.misfit_history.last().unwrap();
        assert!(jn < 1e-5 * j0, "misfit {j0} -> {jn}");
        for (j, p) in template.params.iter().enumerate() {
            assert!(
                (out.delays[j] - p.delay).abs() < 0.03,
                "delay {j}: {} vs {}",
                out.delays[j],
                p.delay
            );
            assert!(
                (out.rises[j] - p.rise).abs() < 0.05,
                "rise {j}: {} vs {}",
                out.rises[j],
                p.rise
            );
            assert!(
                (out.amplitudes[j] - p.amplitude).abs() < 0.1,
                "amp {j}: {} vs {}",
                out.amplitudes[j],
                p.amplitude
            );
        }
        // Iterate history is recorded for the Fig 3.3 reproduction.
        assert!(out.iterates.len() >= 3);
        assert_eq!(out.iterates[0].0, 0);
    }
}
