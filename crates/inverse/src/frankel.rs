//! The Frankel two-step (second-order Richardson) stationary iteration.
//!
//! For an SPD system `A x = b` with spectrum in `[lmin, lmax]`, Frankel's
//! method (Axelsson, *Iterative Solution Methods*) iterates
//!
//! ```text
//! x_{k+1} = x_k + omega (b - A x_k) + gamma (x_k - x_{k-1})
//! ```
//!
//! with the optimal Chebyshev parameters. The paper seeds its reduced-
//! Hessian L-BFGS preconditioner with several Frankel sweeps; here the
//! method backs the preconditioner ablation bench and serves as a reference
//! stationary solver.

/// Optimal Frankel parameters for spectrum bounds `[lmin, lmax]`.
pub fn frankel_params(lmin: f64, lmax: f64) -> (f64, f64) {
    assert!(lmin > 0.0 && lmax >= lmin);
    let kappa = lmax / lmin;
    let rho = (kappa.sqrt() - 1.0) / (kappa.sqrt() + 1.0);
    let gamma = rho * rho;
    let omega = (1.0 + gamma) * 2.0 / (lmax + lmin);
    (omega, gamma)
}

/// Run `sweeps` Frankel iterations from zero; returns the approximate
/// solution of `A x = b`.
pub fn frankel_two_step(
    apply_a: &mut dyn FnMut(&[f64], &mut [f64]),
    b: &[f64],
    lmin: f64,
    lmax: f64,
    sweeps: usize,
) -> Vec<f64> {
    let n = b.len();
    let (omega, gamma) = frankel_params(lmin, lmax);
    let mut x_prev = vec![0.0; n];
    let mut x = vec![0.0; n];
    let mut ax = vec![0.0; n];
    for k in 0..sweeps {
        ax.iter_mut().for_each(|v| *v = 0.0);
        apply_a(&x, &mut ax);
        let momentum = if k == 0 { 0.0 } else { gamma };
        let mut x_new = vec![0.0; n];
        for i in 0..n {
            x_new[i] = x[i] + omega * (b[i] - ax[i]) + momentum * (x[i] - x_prev[i]);
        }
        x_prev = std::mem::replace(&mut x, x_new);
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Small SPD test matrix: 1-D Laplacian + shift.
    fn apply(x: &[f64], y: &mut [f64]) {
        let n = x.len();
        for i in 0..n {
            let left = if i > 0 { x[i - 1] } else { 0.0 };
            let right = if i + 1 < n { x[i + 1] } else { 0.0 };
            y[i] += 2.5 * x[i] - left - right;
        }
    }

    fn spectrum_bounds(n: usize) -> (f64, f64) {
        // Eigenvalues: 2.5 - 2 cos(pi k/(n+1)).
        let lmin = 2.5 - 2.0 * (std::f64::consts::PI / (n as f64 + 1.0)).cos();
        let lmax = 2.5 + 2.0 * (std::f64::consts::PI / (n as f64 + 1.0)).cos();
        (lmin, lmax)
    }

    #[test]
    fn converges_to_solution() {
        let n = 40;
        let x_true: Vec<f64> = (0..n).map(|i| ((i * 7 % 5) as f64) - 2.0).collect();
        let mut b = vec![0.0; n];
        apply(&x_true, &mut b);
        let (lmin, lmax) = spectrum_bounds(n);
        let x = frankel_two_step(&mut |v, y| apply(v, y), &b, lmin, lmax, 200);
        let err: f64 = x.iter().zip(&x_true).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt();
        assert!(err < 1e-6, "error {err}");
    }

    #[test]
    fn two_step_beats_one_step_richardson() {
        // With momentum disabled (gamma = 0 would be plain Richardson), the
        // Chebyshev-accelerated iteration must reduce the residual faster
        // for the same sweep count.
        let n = 40;
        let x_true = vec![1.0; n];
        let mut b = vec![0.0; n];
        apply(&x_true, &mut b);
        let (lmin, lmax) = spectrum_bounds(n);
        let sweeps = 30;
        let x2 = frankel_two_step(&mut |v, y| apply(v, y), &b, lmin, lmax, sweeps);
        // Plain Richardson with optimal omega = 2/(lmin+lmax).
        let omega = 2.0 / (lmin + lmax);
        let mut x1 = vec![0.0; n];
        let mut ax = vec![0.0; n];
        for _ in 0..sweeps {
            ax.iter_mut().for_each(|v| *v = 0.0);
            apply(&x1, &mut ax);
            for i in 0..n {
                x1[i] += omega * (b[i] - ax[i]);
            }
        }
        let err = |x: &[f64]| -> f64 {
            x.iter().zip(&x_true).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt()
        };
        assert!(err(&x2) < 0.5 * err(&x1), "frankel {} vs richardson {}", err(&x2), err(&x1));
    }

    #[test]
    fn params_are_sane() {
        let (omega, gamma) = frankel_params(1.0, 1.0);
        assert!((gamma - 0.0).abs() < 1e-12);
        assert!((omega - 1.0).abs() < 1e-12);
        let (_, gamma) = frankel_params(1.0, 100.0);
        assert!(gamma > 0.5 && gamma < 1.0);
    }
}
