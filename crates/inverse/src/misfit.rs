//! Trace misfits, residuals and the synthetic-noise model.

/// `1/2 dt sum_r sum_k (u - d)^2` — the data misfit of (3.1), continuous in
/// time (trapezoid-grade) and pointwise at receivers.
pub fn misfit_value(traces: &[Vec<f64>], data: &[Vec<f64>], dt: f64) -> f64 {
    assert_eq!(traces.len(), data.len());
    let mut j = 0.0;
    for (t, d) in traces.iter().zip(data) {
        assert_eq!(t.len(), d.len());
        for (a, b) in t.iter().zip(d) {
            j += 0.5 * (a - b) * (a - b) * dt;
        }
    }
    j
}

/// Residual traces `u - d`.
pub fn residuals(traces: &[Vec<f64>], data: &[Vec<f64>]) -> Vec<Vec<f64>> {
    traces.iter().zip(data).map(|(t, d)| t.iter().zip(d).map(|(a, b)| a - b).collect()).collect()
}

/// Add zero-mean uniform noise with RMS `level * rms(trace)` to each trace
/// (the paper adds 5% random noise to the pseudo-observed data).
pub fn add_noise(data: &mut [Vec<f64>], level: f64, seed: u64) {
    let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).max(1);
    let mut rnd = || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    for trace in data.iter_mut() {
        let rms = (trace.iter().map(|v| v * v).sum::<f64>() / trace.len().max(1) as f64).sqrt();
        // Uniform on [-1/2, 1/2] has RMS 1/sqrt(12); scale accordingly.
        let amp = level * rms * 12.0f64.sqrt();
        for v in trace.iter_mut() {
            *v += amp * rnd();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn misfit_zero_for_identical_traces() {
        let t = vec![vec![1.0, 2.0, 3.0], vec![-1.0, 0.5, 0.0]];
        assert_eq!(misfit_value(&t, &t, 0.1), 0.0);
        let r = residuals(&t, &t);
        assert!(r.iter().flatten().all(|&v| v == 0.0));
    }

    #[test]
    fn misfit_scales_quadratically() {
        let d = vec![vec![0.0; 4]];
        let t1 = vec![vec![1.0; 4]];
        let t2 = vec![vec![2.0; 4]];
        let j1 = misfit_value(&t1, &d, 0.5);
        let j2 = misfit_value(&t2, &d, 0.5);
        assert!((j2 - 4.0 * j1).abs() < 1e-12);
        assert!((j1 - 0.5 * 4.0 * 0.5).abs() < 1e-12);
    }

    #[test]
    fn noise_has_requested_level_and_is_reproducible() {
        let clean: Vec<f64> = (0..5000).map(|k| (k as f64 * 0.01).sin()).collect();
        let mut a = vec![clean.clone()];
        add_noise(&mut a, 0.05, 42);
        let mut b = vec![clean.clone()];
        add_noise(&mut b, 0.05, 42);
        assert_eq!(a, b, "same seed must give same noise");
        let rms_clean = (clean.iter().map(|v| v * v).sum::<f64>() / 5000.0).sqrt();
        let rms_noise =
            (a[0].iter().zip(&clean).map(|(x, y)| (x - y) * (x - y)).sum::<f64>() / 5000.0).sqrt();
        let ratio = rms_noise / rms_clean;
        assert!((ratio - 0.05).abs() < 0.01, "noise level {ratio}");
        let mut c = vec![clean.clone()];
        add_noise(&mut c, 0.05, 43);
        assert_ne!(a, c, "different seeds must differ");
    }
}
