//! Checkpointable Gauss-Newton state — restartable inversions.
//!
//! The paper's inversions are the expensive half of the pipeline (each outer
//! iteration costs a forward solve, an adjoint solve, and one
//! forward+adjoint pair *per CG iteration*), so losing a multiscale run to a
//! failure is far costlier than losing one forward simulation. A
//! [`GnCheckpoint`] captures the full outer-iteration state of
//! [`invert_material_resumable`](crate::gncg::invert_material_resumable):
//! the material iterate, the L-BFGS secant pairs harvested from CG, the
//! convergence statistics, and the two run-scaling scalars (`jd0`, the
//! initial data misfit that scales the barrier, and `g0_norm`, the reference
//! gradient norm of the relative stopping test). Restoring all of it makes a
//! resumed inversion **bit-identical** to an uninterrupted one — recomputing
//! `jd0` would give the same bits but costs a forward solve; *not* restoring
//! `g0_norm` would silently change the stopping test.

use quake_ckpt::{Checkpointable, CkptError, Decoder, Encoder};

use crate::gncg::GnStats;

/// Resumable outer-iteration state of a Gauss-Newton-CG inversion.
/// `next_iter` is the next outer iteration to execute.
#[derive(Clone, Debug)]
pub struct GnCheckpoint {
    /// Next Gauss-Newton iteration to execute (0-based).
    pub next_iter: u64,
    /// Current material iterate on the inversion grid.
    pub m: Vec<f64>,
    /// L-BFGS secant pairs `(s, y)` in insertion order; `rho = 1/(s.y)` is
    /// recomputed on rebuild (bit-identical: same inputs, same expression).
    pub lbfgs_pairs: Vec<(Vec<f64>, Vec<f64>)>,
    /// Convergence record so far (histories keep growing across the resume).
    pub stats: GnStats,
    /// Reference gradient norm of the relative stopping test (`None` until
    /// the first iteration evaluated a gradient).
    pub g0_norm: Option<f64>,
    /// Initial data misfit `J_d(m_0)` — scales the log barrier.
    pub jd0: f64,
}

impl Checkpointable for GnCheckpoint {
    const KIND: &'static str = "quake.inverse.gncg.v1";

    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.next_iter);
        enc.put_f64_slice(&self.m);
        enc.put_u64(self.lbfgs_pairs.len() as u64);
        for (s, y) in &self.lbfgs_pairs {
            enc.put_f64_slice(s);
            enc.put_f64_slice(y);
        }
        match self.g0_norm {
            Some(v) => {
                enc.put_bool(true);
                enc.put_f64(v);
            }
            None => enc.put_bool(false),
        }
        enc.put_f64(self.jd0);
        enc.put_u64(self.stats.gn_iters as u64);
        enc.put_u64(self.stats.cg_iters_total as u64);
        let cg: Vec<u64> = self.stats.cg_iters_per_gn.iter().map(|&v| v as u64).collect();
        enc.put_u64_slice(&cg);
        enc.put_f64_slice(&self.stats.objective_history);
        enc.put_f64_slice(&self.stats.misfit_history);
        enc.put_f64_slice(&self.stats.grad_norms);
        enc.put_bool(self.stats.converged);
    }

    fn decode(dec: &mut Decoder) -> Result<GnCheckpoint, CkptError> {
        let next_iter = dec.take_u64()?;
        let m = dec.take_f64_vec()?;
        let n_pairs = dec.take_u64()? as usize;
        let mut lbfgs_pairs = Vec::with_capacity(n_pairs.min(1 << 16));
        for _ in 0..n_pairs {
            let s = dec.take_f64_vec()?;
            let y = dec.take_f64_vec()?;
            if s.len() != y.len() || s.len() != m.len() {
                return Err(CkptError::Malformed("secant pair length mismatch"));
            }
            lbfgs_pairs.push((s, y));
        }
        let g0_norm = if dec.take_bool()? { Some(dec.take_f64()?) } else { None };
        let jd0 = dec.take_f64()?;
        let stats = GnStats {
            gn_iters: dec.take_u64()? as usize,
            cg_iters_total: dec.take_u64()? as usize,
            cg_iters_per_gn: dec.take_u64_vec()?.into_iter().map(|v| v as usize).collect(),
            objective_history: dec.take_f64_vec()?,
            misfit_history: dec.take_f64_vec()?,
            grad_norms: dec.take_f64_vec()?,
            converged: dec.take_bool()?,
        };
        Ok(GnCheckpoint { next_iter, m, lbfgs_pairs, stats, g0_norm, jd0 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gn_checkpoint_roundtrips_bit_exactly() -> Result<(), CkptError> {
        let c = GnCheckpoint {
            next_iter: 3,
            m: vec![1.0e10, 2.5e9, -0.0],
            lbfgs_pairs: vec![(vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0])],
            stats: GnStats {
                gn_iters: 3,
                cg_iters_total: 17,
                cg_iters_per_gn: vec![5, 6, 6],
                objective_history: vec![9.0, 4.0, 1.0],
                misfit_history: vec![8.5, 3.5, 0.5],
                grad_norms: vec![1e3, 1e1, 1e-1],
                converged: false,
            },
            g0_norm: Some(1e3),
            jd0: 8.5,
        };
        let mut enc = Encoder::new();
        c.encode(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let back = GnCheckpoint::decode(&mut dec)?;
        dec.finish()?;
        assert_eq!(back.next_iter, 3);
        assert_eq!(back.m, c.m);
        assert_eq!(back.lbfgs_pairs, c.lbfgs_pairs);
        assert_eq!(back.g0_norm, c.g0_norm);
        assert_eq!(back.jd0, c.jd0);
        assert_eq!(back.stats.cg_iters_per_gn, c.stats.cg_iters_per_gn);
        assert_eq!(back.stats.objective_history, c.stats.objective_history);
        assert!(!back.stats.converged);
        Ok(())
    }

    #[test]
    fn mismatched_pair_lengths_are_rejected() {
        let mut enc = Encoder::new();
        enc.put_u64(0);
        enc.put_f64_slice(&[1.0, 2.0]); // m: 2 params
        enc.put_u64(1);
        enc.put_f64_slice(&[1.0, 2.0, 3.0]); // s: 3 (wrong)
        enc.put_f64_slice(&[1.0, 2.0, 3.0]);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert!(matches!(GnCheckpoint::decode(&mut dec), Err(CkptError::Malformed(_))));
    }
}
