//! Regularization functionals on inversion grids.
//!
//! - [`TvReg`]: smoothed total variation
//!   `beta int sqrt(|grad m|^2 + eps^2)` — penalizes oscillation while
//!   *preserving sharp interfaces* (the layered-geology prior of the paper).
//!   Its Gauss-Newton Hessian uses lagged diffusivity: `H v = -beta
//!   div(c grad v)` with `c = 1/sqrt(|grad m|^2 + eps^2)` frozen at the
//!   current iterate.
//! - [`TikhonovReg`]: plain `beta/2 int |grad m|^2` (used for the source
//!   parameter fields along the fault).
//!
//! Gradients are evaluated cell-wise by forward differences; axes with a
//! single vertex plane are inactive.

/// Iterate over active-axis forward-difference stencils of a grid.
fn for_each_cell(
    dims: [usize; 3],
    spacing: [f64; 3],
    mut f: impl FnMut(usize, &[(usize, usize, f64)]),
) {
    // For each vertex with a successor along every active axis, the "cell"
    // gradient uses the forward difference along each active axis.
    let active: Vec<usize> = (0..3).filter(|&a| dims[a] > 1).collect();
    let idx = |i: usize, j: usize, k: usize| i + dims[0] * (j + dims[1] * k);
    let stride = [1usize, dims[0], dims[0] * dims[1]];
    let mut buf: Vec<(usize, usize, f64)> = Vec::with_capacity(3);
    for k in 0..dims[2].saturating_sub(1).max(1) {
        for j in 0..dims[1].saturating_sub(1).max(1) {
            for i in 0..dims[0].saturating_sub(1).max(1) {
                let v = idx(i, j, k);
                buf.clear();
                for &a in &active {
                    buf.push((v, v + stride[a], spacing[a]));
                }
                f(v, &buf);
            }
        }
    }
}

/// Smoothed total variation.
#[derive(Clone, Debug)]
pub struct TvReg {
    pub dims: [usize; 3],
    /// Vertex spacing per axis (m).
    pub spacing: [f64; 3],
    /// Smoothing parameter (in gradient units, 1/m times field units).
    pub eps: f64,
    /// Regularization weight `beta_1`.
    pub beta: f64,
}

impl TvReg {
    fn cell_measure(&self) -> f64 {
        (0..3).filter(|&a| self.dims[a] > 1).map(|a| self.spacing[a]).product()
    }

    /// `beta int sqrt(|grad m|^2 + eps^2) dV` (cellwise midpoint rule).
    pub fn value(&self, m: &[f64]) -> f64 {
        let mut acc = 0.0;
        let meas = self.cell_measure();
        for_each_cell(self.dims, self.spacing, |_, diffs| {
            let g2: f64 = diffs.iter().map(|&(a, b, h)| ((m[b] - m[a]) / h).powi(2)).sum();
            acc += (g2 + self.eps * self.eps).sqrt() * meas;
        });
        self.beta * acc
    }

    /// Adds `beta dR/dm` into `g`.
    pub fn gradient(&self, m: &[f64], g: &mut [f64]) {
        let meas = self.cell_measure();
        for_each_cell(self.dims, self.spacing, |_, diffs| {
            let g2: f64 = diffs.iter().map(|&(a, b, h)| ((m[b] - m[a]) / h).powi(2)).sum();
            let denom = (g2 + self.eps * self.eps).sqrt();
            for &(a, b, h) in diffs {
                let d = (m[b] - m[a]) / h / denom * meas / h;
                g[b] += self.beta * d;
                g[a] -= self.beta * d;
            }
        });
    }

    /// Frozen lagged-diffusivity coefficients, one per cell (in iteration
    /// order of [`for_each_cell`]).
    pub fn diffusivity(&self, m: &[f64]) -> Vec<f64> {
        let mut c = Vec::new();
        for_each_cell(self.dims, self.spacing, |_, diffs| {
            let g2: f64 = diffs.iter().map(|&(a, b, h)| ((m[b] - m[a]) / h).powi(2)).sum();
            c.push(1.0 / (g2 + self.eps * self.eps).sqrt());
        });
        c
    }

    /// Adds the lagged-diffusivity GN Hessian product
    /// `beta * (-div(c grad v))` into `out`.
    pub fn hess_apply(&self, diffusivity: &[f64], v: &[f64], out: &mut [f64]) {
        let meas = self.cell_measure();
        let mut cell = 0usize;
        for_each_cell(self.dims, self.spacing, |_, diffs| {
            let c = diffusivity[cell];
            cell += 1;
            for &(a, b, h) in diffs {
                let d = c * (v[b] - v[a]) / h * meas / h;
                out[b] += self.beta * d;
                out[a] -= self.beta * d;
            }
        });
    }
}

/// Plain Tikhonov (H1 seminorm) smoothing.
#[derive(Clone, Debug)]
pub struct TikhonovReg {
    pub dims: [usize; 3],
    pub spacing: [f64; 3],
    pub beta: f64,
}

impl TikhonovReg {
    fn cell_measure(&self) -> f64 {
        (0..3).filter(|&a| self.dims[a] > 1).map(|a| self.spacing[a]).product()
    }

    /// `beta/2 int |grad m|^2`.
    pub fn value(&self, m: &[f64]) -> f64 {
        let mut acc = 0.0;
        let meas = self.cell_measure();
        for_each_cell(self.dims, self.spacing, |_, diffs| {
            for &(a, b, h) in diffs {
                acc += ((m[b] - m[a]) / h).powi(2) * meas;
            }
        });
        0.5 * self.beta * acc
    }

    /// Adds `beta L m` (graph Laplacian scaled) into `g`.
    pub fn gradient(&self, m: &[f64], g: &mut [f64]) {
        let meas = self.cell_measure();
        for_each_cell(self.dims, self.spacing, |_, diffs| {
            for &(a, b, h) in diffs {
                let d = (m[b] - m[a]) / h * meas / h;
                g[b] += self.beta * d;
                g[a] -= self.beta * d;
            }
        });
    }

    /// The Hessian is constant: same operator applied to `v`.
    pub fn hess_apply(&self, v: &[f64], out: &mut [f64]) {
        self.gradient(v, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rnd_vec(n: usize, seed: u64) -> Vec<f64> {
        let mut s = seed;
        (0..n)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            })
            .collect()
    }

    #[test]
    fn tv_of_constant_is_eps_measure() {
        let tv = TvReg { dims: [5, 5, 1], spacing: [1.0, 1.0, 1.0], eps: 0.01, beta: 2.0 };
        let m = vec![3.0; 25];
        // 16 cells, each contributing eps * 1.
        assert!((tv.value(&m) - 2.0 * 16.0 * 0.01).abs() < 1e-12);
        let mut g = vec![0.0; 25];
        tv.gradient(&m, &mut g);
        assert!(g.iter().all(|&v| v.abs() < 1e-12));
    }

    #[test]
    fn tv_penalizes_oscillation_more_than_jump() {
        // Same total variation budget: TV of a single step equals TV of a
        // smooth ramp (that is the interface-preserving property); an
        // oscillating field costs much more.
        let dims = [9, 1, 1];
        let tv = TvReg { dims, spacing: [1.0, 1.0, 1.0], eps: 1e-6, beta: 1.0 };
        let step: Vec<f64> = (0..9).map(|i| if i < 4 { 0.0 } else { 1.0 }).collect();
        let ramp: Vec<f64> = (0..9).map(|i| i as f64 / 8.0).collect();
        let osc: Vec<f64> = (0..9).map(|i| if i % 2 == 0 { 0.0 } else { 1.0 }).collect();
        let vs = tv.value(&step);
        let vr = tv.value(&ramp);
        let vo = tv.value(&osc);
        assert!((vs - vr).abs() < 1e-3, "step {vs} vs ramp {vr}");
        assert!(vo > 5.0 * vs, "oscillation {vo} vs step {vs}");
    }

    #[test]
    fn tv_gradient_matches_finite_differences() {
        let tv = TvReg { dims: [4, 3, 1], spacing: [2.0, 3.0, 1.0], eps: 0.1, beta: 1.7 };
        let m = rnd_vec(12, 11);
        let mut g = vec![0.0; 12];
        tv.gradient(&m, &mut g);
        for i in 0..12 {
            let eps = 1e-7;
            let mut mp = m.clone();
            mp[i] += eps;
            let mut mm = m.clone();
            mm[i] -= eps;
            let fd = (tv.value(&mp) - tv.value(&mm)) / (2.0 * eps);
            assert!((g[i] - fd).abs() < 1e-6 * (1.0 + fd.abs()), "{}: {} vs {fd}", i, g[i]);
        }
    }

    #[test]
    fn tv_hessian_is_spd_and_symmetric() {
        let tv = TvReg { dims: [5, 4, 1], spacing: [1.0, 1.0, 1.0], eps: 0.05, beta: 1.0 };
        let m = rnd_vec(20, 3);
        let c = tv.diffusivity(&m);
        let v = rnd_vec(20, 7);
        let w = rnd_vec(20, 9);
        let mut hv = vec![0.0; 20];
        tv.hess_apply(&c, &v, &mut hv);
        let mut hw = vec![0.0; 20];
        tv.hess_apply(&c, &w, &mut hw);
        let vhw: f64 = v.iter().zip(&hw).map(|(a, b)| a * b).sum();
        let whv: f64 = w.iter().zip(&hv).map(|(a, b)| a * b).sum();
        assert!((vhw - whv).abs() < 1e-10 * (1.0 + vhw.abs()));
        let vhv: f64 = v.iter().zip(&hv).map(|(a, b)| a * b).sum();
        assert!(vhv >= -1e-12, "TV Hessian not PSD: {vhv}");
    }

    #[test]
    fn tikhonov_gradient_matches_finite_differences() {
        let tik = TikhonovReg { dims: [6, 1, 1], spacing: [0.5, 1.0, 1.0], beta: 2.5 };
        let m = rnd_vec(6, 21);
        let mut g = vec![0.0; 6];
        tik.gradient(&m, &mut g);
        for i in 0..6 {
            let eps = 1e-7;
            let mut mp = m.clone();
            mp[i] += eps;
            let mut mm = m.clone();
            mm[i] -= eps;
            let fd = (tik.value(&mp) - tik.value(&mm)) / (2.0 * eps);
            assert!((g[i] - fd).abs() < 1e-6 * (1.0 + fd.abs()));
        }
        // Nullspace: constants.
        let mut gc = vec![0.0; 6];
        tik.gradient(&[9.0; 6], &mut gc);
        assert!(gc.iter().all(|&v| v.abs() < 1e-12));
    }
}
