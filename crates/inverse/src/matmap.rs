//! The material map `P`: inversion-grid vertex values -> element moduli.
//!
//! The inversion parameterizes `mu` on a (usually coarser) vertex grid and
//! the wave solver needs one modulus per element; `P` is multilinear
//! interpolation evaluated at element centers. Gradients pull back through
//! `P^T`. Axes with a single vertex plane are inactive (that is how the 2-D
//! problems reuse the 3-D map).

/// Sparse multilinear interpolation operator.
#[derive(Clone, Debug)]
pub struct MaterialMap {
    /// Per element: up to 8 `(param index, weight)` entries.
    entries: Vec<Vec<(u32, f64)>>,
    n_param: usize,
    /// Vertices per axis.
    pub dims: [usize; 3],
}

impl MaterialMap {
    /// Build for element centers inside `domain` (meters per axis) and an
    /// inversion grid with `dims` vertices per axis (an axis with `dims = 1`
    /// is constant along that axis).
    pub fn new(centers: &[[f64; 3]], domain: [f64; 3], dims: [usize; 3]) -> MaterialMap {
        assert!(dims.iter().all(|&d| d >= 1));
        let n_param = dims[0] * dims[1] * dims[2];
        let idx =
            |i: usize, j: usize, k: usize| -> u32 { (i + dims[0] * (j + dims[1] * k)) as u32 };
        let entries = centers
            .iter()
            .map(|c| {
                // Per axis: lower vertex + fractional weight.
                let mut lo = [0usize; 3];
                let mut frac = [0.0f64; 3];
                for a in 0..3 {
                    if dims[a] == 1 {
                        lo[a] = 0;
                        frac[a] = 0.0;
                    } else {
                        let t = (c[a] / domain[a]).clamp(0.0, 1.0) * (dims[a] - 1) as f64;
                        let fl = t.floor().min((dims[a] - 2) as f64);
                        lo[a] = fl as usize;
                        frac[a] = t - fl;
                    }
                }
                let mut ent: Vec<(u32, f64)> = Vec::with_capacity(8);
                for bz in 0..2usize {
                    if bz == 1 && dims[2] == 1 {
                        continue;
                    }
                    for by in 0..2usize {
                        if by == 1 && dims[1] == 1 {
                            continue;
                        }
                        for bx in 0..2usize {
                            if bx == 1 && dims[0] == 1 {
                                continue;
                            }
                            let wx = if dims[0] == 1 {
                                1.0
                            } else if bx == 0 {
                                1.0 - frac[0]
                            } else {
                                frac[0]
                            };
                            let wy = if dims[1] == 1 {
                                1.0
                            } else if by == 0 {
                                1.0 - frac[1]
                            } else {
                                frac[1]
                            };
                            let wz = if dims[2] == 1 {
                                1.0
                            } else if bz == 0 {
                                1.0 - frac[2]
                            } else {
                                frac[2]
                            };
                            let w = wx * wy * wz;
                            if w != 0.0 {
                                ent.push((idx(lo[0] + bx, lo[1] + by, lo[2] + bz), w));
                            }
                        }
                    }
                }
                ent
            })
            .collect();
        MaterialMap { entries, n_param, dims }
    }

    pub fn n_param(&self) -> usize {
        self.n_param
    }

    pub fn n_elements(&self) -> usize {
        self.entries.len()
    }

    /// `mu_e = P m`.
    pub fn interpolate(&self, m: &[f64]) -> Vec<f64> {
        assert_eq!(m.len(), self.n_param);
        self.entries.iter().map(|ent| ent.iter().map(|&(p, w)| w * m[p as usize]).sum()).collect()
    }

    /// `g_m = P^T g_e`.
    pub fn transpose_apply(&self, g_e: &[f64]) -> Vec<f64> {
        assert_eq!(g_e.len(), self.entries.len());
        let mut g = vec![0.0; self.n_param];
        for (ent, &ge) in self.entries.iter().zip(g_e) {
            for &(p, w) in ent {
                g[p as usize] += w * ge;
            }
        }
        g
    }
}

/// Multilinear prolongation of a vertex field from `from_dims` to `to_dims`
/// over the same domain (the multiscale-continuation transfer operator).
pub fn prolong(m: &[f64], from_dims: [usize; 3], to_dims: [usize; 3]) -> Vec<f64> {
    assert_eq!(m.len(), from_dims.iter().product::<usize>());
    let sample = |t: [f64; 3]| -> f64 {
        // Multilinear sample of `m` at normalized coordinates t in [0,1]^3.
        let mut lo = [0usize; 3];
        let mut frac = [0.0f64; 3];
        for a in 0..3 {
            if from_dims[a] == 1 {
                continue;
            }
            let x = t[a].clamp(0.0, 1.0) * (from_dims[a] - 1) as f64;
            let fl = x.floor().min((from_dims[a] - 2) as f64);
            lo[a] = fl as usize;
            frac[a] = x - fl;
        }
        let idx = |i: usize, j: usize, k: usize| m[i + from_dims[0] * (j + from_dims[1] * k)];
        let mut acc = 0.0;
        for bz in 0..2usize {
            if bz == 1 && from_dims[2] == 1 {
                continue;
            }
            for by in 0..2usize {
                if by == 1 && from_dims[1] == 1 {
                    continue;
                }
                for bx in 0..2usize {
                    if bx == 1 && from_dims[0] == 1 {
                        continue;
                    }
                    let w = axis_w(from_dims[0], bx, frac[0])
                        * axis_w(from_dims[1], by, frac[1])
                        * axis_w(from_dims[2], bz, frac[2]);
                    acc += w * idx(lo[0] + bx, lo[1] + by, lo[2] + bz);
                }
            }
        }
        acc
    };
    let mut out = Vec::with_capacity(to_dims.iter().product());
    for k in 0..to_dims[2] {
        for j in 0..to_dims[1] {
            for i in 0..to_dims[0] {
                let t = [
                    norm_coord(i, to_dims[0]),
                    norm_coord(j, to_dims[1]),
                    norm_coord(k, to_dims[2]),
                ];
                out.push(sample(t));
            }
        }
    }
    out
}

fn axis_w(dim: usize, b: usize, frac: f64) -> f64 {
    if dim == 1 {
        1.0
    } else if b == 0 {
        1.0 - frac
    } else {
        frac
    }
}

fn norm_coord(i: usize, dim: usize) -> f64 {
    if dim == 1 {
        0.0
    } else {
        i as f64 / (dim - 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn centers_2d(nx: usize, nz: usize, h: f64) -> Vec<[f64; 3]> {
        let mut c = Vec::new();
        for k in 0..nz {
            for i in 0..nx {
                c.push([(i as f64 + 0.5) * h, (k as f64 + 0.5) * h, 0.0]);
            }
        }
        c
    }

    #[test]
    fn constant_field_maps_to_constant() {
        let centers = centers_2d(8, 6, 100.0);
        let map = MaterialMap::new(&centers, [800.0, 600.0, 1.0], [5, 4, 1]);
        let m = vec![3.5; map.n_param()];
        let mu = map.interpolate(&m);
        for v in mu {
            assert!((v - 3.5).abs() < 1e-12);
        }
    }

    #[test]
    fn linear_field_is_reproduced_exactly() {
        let centers = centers_2d(10, 10, 50.0);
        let domain = [500.0, 500.0, 1.0];
        let dims = [6, 6, 1];
        let map = MaterialMap::new(&centers, domain, dims);
        let f = |x: f64, y: f64| 2.0 + 3.0 * x / 500.0 - 1.5 * y / 500.0;
        let mut m = vec![0.0; map.n_param()];
        for j in 0..6 {
            for i in 0..6 {
                m[i + 6 * j] = f(i as f64 * 100.0, j as f64 * 100.0);
            }
        }
        let mu = map.interpolate(&m);
        for (v, c) in mu.iter().zip(&centers) {
            assert!((v - f(c[0], c[1])).abs() < 1e-12);
        }
    }

    #[test]
    fn transpose_is_adjoint() {
        let centers = centers_2d(7, 5, 80.0);
        let map = MaterialMap::new(&centers, [560.0, 400.0, 1.0], [4, 3, 1]);
        let mut s = 5u64;
        let mut rnd = || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let m: Vec<f64> = (0..map.n_param()).map(|_| rnd()).collect();
        let g: Vec<f64> = (0..map.n_elements()).map(|_| rnd()).collect();
        let pm = map.interpolate(&m);
        let ptg = map.transpose_apply(&g);
        let lhs: f64 = pm.iter().zip(&g).map(|(a, b)| a * b).sum();
        let rhs: f64 = m.iter().zip(&ptg).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-12 * (1.0 + lhs.abs()));
    }

    #[test]
    fn single_vertex_grid_is_a_global_constant() {
        let centers = centers_2d(6, 6, 10.0);
        let map = MaterialMap::new(&centers, [60.0, 60.0, 1.0], [1, 1, 1]);
        assert_eq!(map.n_param(), 1);
        let mu = map.interpolate(&[7.0]);
        assert!(mu.iter().all(|&v| v == 7.0));
        let back = map.transpose_apply(&vec![1.0; map.n_elements()]);
        assert!((back[0] - 36.0).abs() < 1e-12);
    }

    #[test]
    fn prolongation_preserves_linear_fields() {
        // A linear field on a 3x3 grid prolonged to 5x5 stays linear.
        let f = |x: f64, y: f64| 1.0 + 2.0 * x + 3.0 * y;
        let mut coarse = Vec::new();
        for j in 0..3 {
            for i in 0..3 {
                coarse.push(f(i as f64 / 2.0, j as f64 / 2.0));
            }
        }
        let fine = prolong(&coarse, [3, 3, 1], [5, 5, 1]);
        for j in 0..5 {
            for i in 0..5 {
                let expect = f(i as f64 / 4.0, j as f64 / 4.0);
                assert!((fine[i + 5 * j] - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn prolongation_from_constant_1x1() {
        let fine = prolong(&[4.2], [1, 1, 1], [9, 9, 1]);
        assert_eq!(fine.len(), 81);
        assert!(fine.iter().all(|&v| v == 4.2));
    }
}
