//! Shared reporting helpers for the experiment binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md's experiment index); EXPERIMENTS.md records the outputs
//! against the published values.

/// Render a fixed-width table: header row + data rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line: String = header.iter().zip(&widths).map(|(h, w)| format!("{h:>w$}  ")).collect();
    println!("{line}");
    println!("{}", "-".repeat(line.len()));
    for row in rows {
        let line: String = row.iter().zip(&widths).map(|(c, w)| format!("{c:>w$}  ")).collect();
        println!("{line}");
    }
}

/// ASCII heatmap of a row-major field (`nx` fastest), normalized to its own
/// min/max — enough to see the basin shapes of Fig 3.2 in a terminal.
pub fn ascii_heatmap(title: &str, field: &[f64], nx: usize, max_cols: usize) {
    let ny = field.len() / nx;
    println!("\n-- {title} ({nx} x {ny}) --");
    let lo = field.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = field.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let ramp: &[u8] = b" .:-=+*#%@";
    let step = nx.div_ceil(max_cols).max(1);
    for j in (0..ny).step_by(step) {
        let mut line = String::new();
        for i in (0..nx).step_by(step) {
            let v = field[i + nx * j];
            let t = if hi > lo { (v - lo) / (hi - lo) } else { 0.5 };
            let c = ramp[((t * (ramp.len() - 1) as f64).round() as usize).min(ramp.len() - 1)];
            line.push(c as char);
        }
        println!("  {line}");
    }
    println!("  [{lo:.3e} .. {hi:.3e}]");
}

/// Relative L2 error between two fields.
pub fn rel_l2(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let mut num = 0.0;
    let mut den = 0.0;
    for (x, y) in a.iter().zip(b) {
        num += (x - y) * (x - y);
        den += y * y;
    }
    (num / den.max(1e-300)).sqrt()
}

/// `QUAKE_SCALE=full` runs paper-sized (hours); default is `small`
/// (minutes, same shapes).
pub fn full_scale() -> bool {
    std::env::var("QUAKE_SCALE").map(|v| v == "full").unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rel_l2_basic() {
        assert_eq!(rel_l2(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        let e = rel_l2(&[2.0, 0.0], &[1.0, 0.0]);
        assert!((e - 1.0).abs() < 1e-12);
    }
}
