//! Table 3.1 — algorithmic scalability of the inversion: Gauss-Newton and
//! CG iteration counts vs the number of inversion parameters (3-D scalar
//! wave equation, fixed wave grid, material grid swept).
//!
//! The paper's result is *mesh independence*: nonlinear and linear
//! iteration counts stay essentially flat from 125 to 2,146,689 material
//! parameters. We sweep scaled material grids over a fixed scaled wave grid
//! and report the same three columns.

use quake_bench::{full_scale, print_table};
use quake_inverse::{invert_material, GnConfig, MaterialMap, TvReg};
use quake_solver::wave::{forward, ScalarWaveEq};
use quake_solver::{Scalar3dConfig, Scalar3dSolver};

fn main() {
    // Fixed wave grid (the paper used 65^3 = 274,625 unknowns).
    let nw = if full_scale() { 24 } else { 12 };
    let n_steps = if full_scale() { 120 } else { 60 };
    let h = 400.0;
    let rho = 2000.0;
    let base = rho * 1500.0 * 1500.0;
    let solver = Scalar3dSolver::new(&Scalar3dConfig {
        nx: nw,
        ny: nw,
        nz: nw,
        h,
        rho,
        dt: 0.3 * h / 3000.0,
        n_steps,
        abc: [true, true, true, true, false, true],
        receivers: vec![],
        mu_background: base,
    })
    .with_receivers_at_surface(5);
    let domain = [nw as f64 * h; 3];
    println!(
        "wave grid: {}^3 elements = {} unknowns, {} steps, {} receivers",
        nw,
        solver.n_nodes(),
        n_steps,
        solver.receivers().len()
    );

    // A smooth physical target (independent of the inversion grids): a soft
    // blob over a vertical gradient.
    let mu_true: Vec<f64> = (0..solver.n_elements())
        .map(|e| {
            let c = solver.elem_center(e);
            let r2 = ((c[0] - domain[0] * 0.5) / (0.25 * domain[0])).powi(2)
                + ((c[1] - domain[1] * 0.5) / (0.25 * domain[1])).powi(2)
                + ((c[2] - domain[2] * 0.3) / (0.2 * domain[2])).powi(2);
            base * (1.0 + 0.3 * c[2] / domain[2] - 0.35 * (-r2).exp())
        })
        .collect();
    let src = solver.node(nw / 2, nw / 2, nw / 2);
    let forcing = move |k: usize, f: &mut [f64]| {
        if k < 10 {
            f[src] += 1e9 * ((k as f64 + 1.0) / 10.0);
        }
    };
    let data = forward(&solver, &mu_true, &mut |k, f| forcing(k, f), false).traces;

    // The material-grid sweep (scaled analogue of 125 .. 2,146,689).
    let grids: Vec<usize> =
        if full_scale() { vec![3, 5, 9, 13, 17, 25] } else { vec![3, 5, 7, 9, 13] };
    let mut rows = Vec::new();
    for &g in &grids {
        let dims = [g, g, g];
        let map = MaterialMap::new(
            &(0..solver.n_elements()).map(|e| solver.elem_center(e)).collect::<Vec<_>>(),
            domain,
            dims,
        );
        let sp = domain[0] / (g - 1).max(1) as f64;
        // The paper's mesh independence *requires* real regularization: the
        // TV term must add curvature on the fine scales the data cannot
        // constrain. beta is tunable via QUAKE_TV_BETA for the ablation.
        let beta =
            std::env::var("QUAKE_TV_BETA").ok().and_then(|v| v.parse().ok()).unwrap_or(1e-28);
        let tv = TvReg { dims, spacing: [sp; 3], eps: 0.02 * base / sp, beta };
        let m0 = vec![base; map.n_param()];
        let cfg = GnConfig {
            max_gn_iters: 40,
            max_cg_iters: 100,
            grad_tol: 1e-3,
            cg_tol: 0.1,
            barrier: Some((0.05 * base, 1e-7)),
            ..GnConfig::default()
        };
        let t0 = std::time::Instant::now();
        let (_m, stats) = invert_material(&solver, &forcing, &data, &map, &tv, &m0, &cfg);
        let avg = stats.cg_iters_total as f64 / stats.gn_iters.max(1) as f64;
        rows.push(vec![
            format!("{}", map.n_param()),
            format!("{}", stats.gn_iters),
            format!("{}", stats.cg_iters_total),
            format!("{avg:.1}"),
            format!(
                "{:.2e}",
                stats.misfit_history.last().copied().unwrap_or(0.0)
                    / stats.misfit_history.first().copied().unwrap_or(1.0)
            ),
            format!("{}", stats.converged),
            format!("{:.1}", t0.elapsed().as_secs_f64()),
        ]);
    }
    print_table(
        "Table 3.1: inversion algorithmic scalability (scaled)",
        &[
            "material grid",
            "nonlinear iter",
            "total linear iter",
            "avg linear iter",
            "misfit drop",
            "converged",
            "secs",
        ],
        &rows,
    );
    println!(
        "\npaper values (125 .. 2,146,689 parameters): 17/12/12/25/19/22\n\
         nonlinear and 144..439 total linear iterations — flat in problem\n\
         size. The reproduced shape: iteration counts essentially level as\n\
         the material grid is refined (each linear iteration = one forward\n\
         + one adjoint wave solve)."
    );
}
