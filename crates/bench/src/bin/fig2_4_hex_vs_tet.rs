//! Fig 2.4 — hexahedral vs tetrahedral seismograms at two frequencies.
//!
//! The paper compares its new hex code against the verified tet baseline:
//! at the tet code's resolution limit (0.5 Hz there) the two agree; at the
//! hex code's higher resolution (1 Hz) the hex run shows larger amplitudes
//! and high-frequency content the coarse tet model cannot represent. We
//! reproduce the protocol at scaled frequencies on a scaled basin: both
//! codes on the conforming coarse mesh (agreement + memory comparison),
//! then the hex code on a 2x finer mesh, with the waveform comparison made
//! after low-pass filtering at the "low" and "high" corners.

use quake_bench::{full_scale, print_table};
use quake_mesh::hexmesh::ElemMaterial;
use quake_mesh::HexMesh;
use quake_model::{ExtendedFault, LaBasinModel, MaterialModel};
use quake_octree::LinearOctree;
use quake_solver::receivers::{correlation, lowpass_filtfilt};
use quake_solver::tet::TetSolver;
use quake_solver::{assemble_point_sources, ElasticConfig, ElasticSolver};

fn uniform_basin_mesh(model: &LaBasinModel, extent: f64, level: u8) -> (LinearOctree, HexMesh) {
    let tree = LinearOctree::uniform(level);
    let mesh = HexMesh::from_octree(&tree, extent, |x, y, z, _| {
        let m = model.sample(x, y, z);
        ElemMaterial { lambda: m.lambda(), mu: m.mu(), rho: m.rho }
    });
    (tree, mesh)
}

fn main() {
    let extent = 20_000.0;
    let model = LaBasinModel::scaled(400.0, extent);
    let fault = ExtendedFault::northridge_like(extent);
    let duration = if full_scale() { 12.0 } else { 8.0 };
    let coarse_level = 5; // 32^3 elements -> tet baseline resolution
    let fine_level = 6; // 64^3 -> hex-only resolution

    let (tree_c, mesh_c) = uniform_basin_mesh(&model, extent, coarse_level);
    let (tree_f, mesh_f) = uniform_basin_mesh(&model, extent, fine_level);
    // Two stations: one over the basin ("JFP"-like), one near bedrock
    // ("TAR"-like).
    let stations = [[extent * 0.65, extent * 0.62, 0.0], [extent * 0.15, extent * 0.2, 0.0]];
    let rec_c: Vec<u32> = stations.iter().map(|&p| mesh_c.nearest_node(p)).collect();
    let rec_f: Vec<u32> = stations.iter().map(|&p| mesh_f.nearest_node(p)).collect();

    // Matched time step so traces can be compared sample-by-sample.
    let dt = {
        let s = ElasticSolver::new(&mesh_f, &ElasticConfig::new(duration));
        s.dt
    };
    let mut cfg = ElasticConfig::new(duration);
    cfg.dt = Some(dt);
    let n_steps = (duration / dt).ceil() as usize;

    let srcs_c = assemble_point_sources(&mesh_c, &tree_c, &fault.discretize(4, 3));
    let srcs_f = assemble_point_sources(&mesh_f, &tree_f, &fault.discretize(4, 3));

    let hex_c = ElasticSolver::new(&mesh_c, &cfg).run(&srcs_c, &rec_c, None);
    let hex_f = ElasticSolver::new(&mesh_f, &cfg).run(&srcs_f, &rec_f, None);
    let tet_c = TetSolver::new(&mesh_c, dt, cfg.abc).run(&srcs_c, &rec_c, n_steps);

    // The coarse mesh resolves vs_min/(10 h) Hz; the fine mesh double that.
    let h_c = extent / 2f64.powi(coarse_level as i32);
    let f_low = 400.0 / (10.0 * h_c);
    let f_high = 2.0 * f_low;
    println!("low corner {f_low:.2} Hz (tet-resolvable), high corner {f_high:.2} Hz (hex only)");

    let mut rows = Vec::new();
    for (st, name) in ["basin (JFP-like)", "bedrock (TAR-like)"].iter().enumerate() {
        for comp in 0..3usize {
            let th = hex_c.seismograms[st].component(comp);
            let tt = tet_c[st].component(comp);
            let tf = hex_f.seismograms[st].component(comp);
            let lp = |x: &[f64], fc: f64| lowpass_filtfilt(x, dt, fc);
            let c_low = correlation(&lp(&th, f_low), &lp(&tt, f_low));
            let c_high = correlation(&lp(&tf, f_high), &lp(&tt, f_high));
            let peak = |x: &[f64]| x.iter().fold(0.0f64, |m, v| m.max(v.abs()));
            rows.push(vec![
                name.to_string(),
                ["x", "y", "z"][comp].to_string(),
                format!("{c_low:.3}"),
                format!("{c_high:.3}"),
                format!("{:.2}", peak(&lp(&tf, f_high)) / peak(&lp(&tt, f_high)).max(1e-30)),
            ]);
        }
    }
    print_table(
        "Fig 2.4: hex vs tet waveform agreement",
        &[
            "station",
            "comp",
            "corr @ low f (hex-c vs tet)",
            "corr @ high f (hex-f vs tet)",
            "peak ratio @ high f (hex-f/tet)",
        ],
        &rows,
    );

    // The memory claim of Section 2.
    let tet_mem = TetSolver::new(&mesh_c, dt, cfg.abc).k.memory_bytes();
    let hex_mem = mesh_c.memory_estimate_bytes(3);
    print_table(
        "memory per solver (same coarse mesh)",
        &["solver", "bytes", "bytes/point"],
        &[
            vec![
                "tet (CSR stiffness)".into(),
                format!("{tet_mem}"),
                format!("{:.0}", tet_mem as f64 / mesh_c.n_nodes() as f64),
            ],
            vec![
                "hex (matrix-free)".into(),
                format!("{hex_mem}"),
                format!("{:.0}", hex_mem as f64 / mesh_c.n_nodes() as f64),
            ],
        ],
    );
    println!(
        "expected shape: high correlation at the low corner, degraded\n\
         correlation and peak ratio > 1 at the high corner (the fine hex run\n\
         carries energy the coarse tet model cannot), ~10x memory gap."
    );
}
