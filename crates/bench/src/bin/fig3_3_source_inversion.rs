//! Fig 3.3 — source inversion: recover the delay-time T(x), amplitude
//! u0(x) and rise-time t0(x) fields along the fault, showing the initial
//! guess, the 5th iterate and the converged solution against the target.

use quake_bench::{full_scale, print_table, rel_l2};
use quake_core::source_scenario;
use quake_inverse::{invert_source, GnConfig, SourceInversionConfig};
use quake_solver::wave::{forward, ScalarWaveEq};

fn main() {
    let (nx, nz, steps) = if full_scale() { (40, 24, 500) } else { (20, 12, 250) };
    let sc = source_scenario(nx, nz, steps, 16, 0.0, 7);
    let cfg = SourceInversionConfig {
        gn: GnConfig { max_gn_iters: 40, grad_tol: 1e-8, ..GnConfig::default() },
        beta_delay: 1e-6,
        beta_rise: 1e-6,
        beta_amplitude: 1e-6,
        ..SourceInversionConfig::default()
    };
    let t0 = std::time::Instant::now();
    let out = invert_source(
        &sc.solver,
        &sc.fault_true,
        &sc.mu,
        &sc.data,
        (&sc.initial.0, &sc.initial.1, &sc.initial.2),
        &cfg,
    );
    let secs = t0.elapsed().as_secs_f64();
    println!(
        "GN iterations: {}, CG iterations: {}, misfit {:.3e} -> {:.3e} ({secs:.0}s)",
        out.stats.gn_iters,
        out.stats.cg_iters_total,
        out.stats.misfit_history.first().unwrap(),
        out.stats.misfit_history.last().unwrap()
    );

    // The paper's three columns: initial guess, 5th iteration, converged.
    let pick = |it: usize| {
        out.iterates.iter().min_by_key(|(k, _, _, _)| k.abs_diff(it)).expect("iterates recorded")
    };
    let fifth = pick(5);
    let ns = sc.fault_true.n_segments();
    let mut rows = Vec::new();
    for j in 0..ns {
        let p = &sc.fault_true.params[j];
        rows.push(vec![
            format!("{:.2}", sc.fault_true.centers_z[j] / 1000.0),
            format!("{:.3}", sc.initial.0[j]),
            format!("{:.3}", fifth.1[j]),
            format!("{:.3}", out.delays[j]),
            format!("{:.3}", p.delay),
            format!("{:.2}", sc.initial.1[j]),
            format!("{:.2}", fifth.2[j]),
            format!("{:.2}", out.rises[j]),
            format!("{:.2}", p.rise),
            format!("{:.2}", sc.initial.2[j]),
            format!("{:.2}", fifth.3[j]),
            format!("{:.2}", out.amplitudes[j]),
            format!("{:.2}", p.amplitude),
        ]);
    }
    print_table(
        "Fig 3.3: source fields along the fault (initial / 5th / converged / target)",
        &[
            "depth km", "T init", "T 5th", "T conv", "T tgt", "t0 init", "t0 5th", "t0 conv",
            "t0 tgt", "u0 init", "u0 5th", "u0 conv", "u0 tgt",
        ],
        &rows,
    );

    // Displacement history at a receiver (bottom row of Fig 3.3).
    let dt = sc.solver.dt();
    let receiver0 = 0usize; // first receiver trace
    let with_params = |d: &[f64], r: &[f64], a: &[f64]| {
        let mut fault = sc.fault_true.clone();
        fault.params = d
            .iter()
            .zip(r)
            .zip(a)
            .map(|((&dd, &rr), &aa)| quake_model::SlipFunction::new(dd, rr, aa))
            .collect();
        forward(&sc.solver, &sc.mu, &mut |k, f| fault.add_force(k as f64 * dt, f), false).traces
            [receiver0]
            .clone()
    };
    let target_tr = &sc.data[receiver0];
    let init_tr = with_params(&sc.initial.0, &sc.initial.1, &sc.initial.2);
    let conv_tr = with_params(&out.delays, &out.rises, &out.amplitudes);
    println!(
        "\nreceiver displacement, rel L2 vs target: initial {:.3}, converged {:.4}",
        rel_l2(&init_tr, target_tr),
        rel_l2(&conv_tr, target_tr)
    );
    println!(
        "expected shape (paper): the converged solution essentially\n\
         coincides with the target in all three fields and in the waveform."
    );
    let _ = ScalarWaveEq::n_nodes(&sc.solver);
}
