//! Serving-throughput benchmark: the `quake-serve` engine under a
//! closed-loop ensemble workload.
//!
//! Builds one engine (shared mesh, prebuilt per-worker solvers, a fresh
//! result cache) and drives the same N-member scenario ensemble through it
//! twice:
//!
//! - **cold**: every request misses the cache and is computed by a worker
//!   on its preallocated scratch,
//! - **warm**: the identical ensemble is resubmitted; every request must
//!   replay from the content-addressed store (`cache_hit_ratio == 1.0`).
//!
//! Reported per pass: requests/sec, p50/p99 ticket latency (submit to
//! reply), cache-hit ratio, and the cold pass's measured element-update
//! throughput (the admission knob's calibration number). The cold/warm
//! requests/sec ratio is the cache speedup.
//!
//! Gates (CI runs `--smoke --check`):
//! - both passes completed every request (none lost, none rejected),
//! - `requests_per_sec > 0` in both passes,
//! - warm `cache_hit_ratio == 1.0` and cold `== 0.0`,
//! - warm/cold speedup ≥ 5x (the cache must beat recomputation soundly),
//! - a warm trace bit-matches its cold counterpart (replay integrity).
//!
//! Outputs: the full run writes `BENCH_serve.json` at the repo root;
//! `--smoke` prints the JSON to stdout instead. Both modes dump the merged
//! engine registry (engine spans + all worker counters/histograms) as
//! NDJSON to `target/BENCH_serve_trace.ndjson`.

use quake_mesh::MeshingParams;
use quake_model::{ExtendedFault, LaBasinModel};
use quake_serve::{EngineConfig, ScenarioRequest, ServeEngine, Ticket};
use quake_solver::ElasticConfig;
use std::time::Instant;

struct PassStats {
    secs: f64,
    served: usize,
    hits: u64,
    misses: u64,
    p50_ms: f64,
    p99_ms: f64,
}

impl PassStats {
    fn rps(&self) -> f64 {
        self.served as f64 / self.secs
    }

    fn hit_ratio(&self) -> f64 {
        let n = self.hits + self.misses;
        if n == 0 {
            0.0
        } else {
            self.hits as f64 / n as f64
        }
    }
}

/// Submit the whole ensemble, wait for every ticket, measure per-request
/// latency client-side (submit -> reply).
fn run_pass(
    engine: &ServeEngine,
    requests: &[ScenarioRequest],
    hits_before: (u64, u64),
) -> (PassStats, Vec<quake_serve::CachedResult>) {
    let t0 = Instant::now();
    let submitted: Vec<(Ticket, Instant)> = requests
        .iter()
        .map(|r| {
            (engine.submit(r.clone()).expect("bench queue sized for the ensemble"), Instant::now())
        })
        .collect();
    let mut latencies_ms: Vec<f64> = Vec::with_capacity(submitted.len());
    let mut results = Vec::with_capacity(submitted.len());
    for (t, at) in submitted {
        let resp = t.wait().expect("no worker may die mid-bench");
        latencies_ms.push(at.elapsed().as_secs_f64() * 1e3);
        results.push(resp.result);
    }
    let secs = t0.elapsed().as_secs_f64();
    latencies_ms.sort_by(|a, b| a.total_cmp(b));
    let q = |p: f64| latencies_ms[((latencies_ms.len() - 1) as f64 * p).round() as usize];
    let stats = engine.stats();
    (
        PassStats {
            secs,
            served: results.len(),
            hits: stats.cache_hits - hits_before.0,
            misses: stats.cache_misses - hits_before.1,
            p50_ms: q(0.50),
            p99_ms: q(0.99),
        },
        results,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let check = args.iter().any(|a| a == "--check");

    // Smoke: a coarse 8 km basin, short runs — seconds total. Full: finer
    // mesh and full-duration members for a steady-state-like workload.
    let extent = 8_000.0;
    let (max_level, duration, n_members, n_steps, workers) =
        if smoke { (4, 1.0, 8, Some(12), 2) } else { (5, 4.0, 24, None, 4) };
    let model = LaBasinModel::scaled(400.0, extent);
    let mut meshing = MeshingParams::new(extent, 0.4);
    meshing.min_level = 2;
    meshing.max_level = max_level;

    let cache_dir = std::env::temp_dir()
        .join("quake-serve-bench")
        .join(format!("cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let mut cfg =
        EngineConfig::new(meshing, ElasticConfig::new(duration)).with_cache(cache_dir.clone(), 0);
    cfg.workers = workers;
    cfg.queue_capacity = 4 * n_members;

    let t_build = Instant::now();
    let engine = ServeEngine::start(&model, cfg).expect("cache dir is writable");
    let build_secs = t_build.elapsed().as_secs_f64();
    let (n_elements, dt, full_steps) = {
        let v = &engine.variants()[0];
        (v.n_elements, v.dt, v.n_steps)
    };
    let member_steps = n_steps.map_or(full_steps, |b: u64| b.min(full_steps));
    println!(
        "engine: {n_elements} elements / {workers} workers, dt = {dt:.4}, \
         {member_steps} steps/member, built in {build_secs:.2}s"
    );

    // The ensemble: one extended fault, members varying rupture timing —
    // the hazard-sweep shape (distinct content keys, one shared layout).
    let receivers: Vec<[f64; 3]> = (0..6)
        .map(|i| {
            let t = (i as f64 + 0.5) / 6.0;
            [extent * t, extent * (0.25 + 0.5 * t), 0.0]
        })
        .collect();
    let requests: Vec<ScenarioRequest> = (0..n_members)
        .map(|i| {
            let mut s = ExtendedFault::northridge_like(extent).discretize(3, 2);
            for src in &mut s {
                src.slip.delay += i as f64 * 0.02;
            }
            let r = ScenarioRequest::new(s, receivers.clone());
            match n_steps {
                Some(b) => r.with_steps(b),
                None => r,
            }
        })
        .collect();

    let (cold, cold_results) = run_pass(&engine, &requests, (0, 0));
    println!(
        "cold : {:>7.2} req/s  p50 {:>8.2} ms  p99 {:>8.2} ms  hit ratio {:.2}",
        cold.rps(),
        cold.p50_ms,
        cold.p99_ms,
        cold.hit_ratio()
    );
    let (warm, warm_results) = run_pass(&engine, &requests, (cold.hits, cold.misses));
    println!(
        "warm : {:>7.2} req/s  p50 {:>8.2} ms  p99 {:>8.2} ms  hit ratio {:.2}",
        warm.rps(),
        warm.p50_ms,
        warm.p99_ms,
        warm.hit_ratio()
    );
    let speedup = warm.rps() / cold.rps();
    println!("cache speedup: {speedup:.1}x requests/s (warm vs cold)");

    // Replay integrity: the warm pass served the same bits the cold pass
    // computed.
    let mut replay_identical = true;
    'outer: for (a, b) in warm_results.iter().zip(&cold_results) {
        for (ta, tb) in a.traces.iter().zip(&b.traces) {
            if ta.data.len() != tb.data.len()
                || ta.data.iter().zip(&tb.data).any(|(x, y)| x.to_bits() != y.to_bits())
            {
                replay_identical = false;
                break 'outer;
            }
        }
    }

    let reg = engine.shutdown();
    let update_rate = ServeEngine::measured_update_rate(&reg).unwrap_or(0.0);
    println!("measured element-update rate (median worker): {update_rate:.3e} updates/s");

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"mesh_elements\": {n_elements},\n"));
    json.push_str(&format!("  \"workers\": {workers},\n"));
    json.push_str(&format!("  \"ensemble_members\": {n_members},\n"));
    json.push_str(&format!("  \"steps_per_member\": {member_steps},\n"));
    json.push_str(&format!("  \"engine_build_secs\": {build_secs:.3},\n"));
    json.push_str(&format!(
        "  \"cold\": {{ \"requests_per_sec\": {:.3}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \
         \"cache_hit_ratio\": {:.4} }},\n",
        cold.rps(),
        cold.p50_ms,
        cold.p99_ms,
        cold.hit_ratio()
    ));
    json.push_str(&format!(
        "  \"warm\": {{ \"requests_per_sec\": {:.3}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \
         \"cache_hit_ratio\": {:.4} }},\n",
        warm.rps(),
        warm.p50_ms,
        warm.p99_ms,
        warm.hit_ratio()
    ));
    json.push_str(&format!("  \"cache_speedup\": {speedup:.3},\n"));
    json.push_str(&format!("  \"replay_bit_identical\": {replay_identical},\n"));
    json.push_str(&format!("  \"element_updates_per_sec\": {update_rate:.1}\n"));
    json.push_str("}\n");

    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let trace_path = format!("{root}/target/BENCH_serve_trace.ndjson");
    let _ = std::fs::create_dir_all(format!("{root}/target"));
    std::fs::write(&trace_path, reg.ndjson()).expect("write NDJSON trace");
    println!("\nwrote {trace_path}");
    if smoke {
        println!("\n{json}");
        println!("smoke mode: committed JSON not written");
    } else {
        let p = format!("{root}/BENCH_serve.json");
        std::fs::write(&p, &json).expect("write BENCH_serve.json");
        println!("wrote {p}");
    }
    let _ = std::fs::remove_dir_all(&cache_dir);

    if check {
        assert_eq!(cold.served, n_members, "cold pass lost requests");
        assert_eq!(warm.served, n_members, "warm pass lost requests");
        assert!(cold.rps() > 0.0 && warm.rps() > 0.0, "degenerate requests/sec");
        assert_eq!(cold.hit_ratio(), 0.0, "cold pass must start from an empty cache");
        assert_eq!(
            warm.hit_ratio(),
            1.0,
            "warm pass must be pure cache replay (hit ratio {})",
            warm.hit_ratio()
        );
        assert!(replay_identical, "cached replay diverged from the computed results");
        assert!(speedup >= 5.0, "cache speedup {speedup:.1}x is below the 5x acceptance bar");
        println!("check: all serving gates passed");
    }
}
